// Ablation: why CSThr touches its buffer *randomly*. The paper argues the
// random order (a) defeats the prefetcher and (b) rarely revisits a line's
// neighbours, maximizing private-cache misses and therefore L3 residency
// pressure. This bench compares random vs linear touch order in terms of
// the L3 share the interference thread actually denies a co-running probe.
#include "bench_util.hpp"

namespace {

/// CSThr variant with a linear (element-order) touch pattern.
class LinearCS final : public am::sim::Agent {
 public:
  LinearCS(am::sim::MemorySystem& ms, std::uint64_t bytes)
      : am::sim::Agent("linear-cs"), base_(ms.alloc(bytes, 64)),
        elements_(bytes / 4) {}

  void step(am::sim::AgentContext& ctx) override {
    std::array<am::sim::Addr, 4> batch;
    for (auto& addr : batch) {
      addr = base_ + (cursor_ % elements_) * 4;
      ++cursor_;
    }
    ctx.load_batch(batch);
    ctx.store_batch(batch);
    ctx.compute(4);
  }
  bool finished() const override { return false; }

 private:
  am::sim::Addr base_;
  std::uint64_t elements_;
  std::uint64_t cursor_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  am::Cli cli(argc, argv);
  const auto ctx = am::bench::make_context(cli, /*default_scale=*/8);
  const auto accesses =
      static_cast<std::uint64_t>(cli.get_int("accesses", 250'000));
  const std::uint64_t probe_elements = ctx.machine.l3.size_bytes / 2;

  am::Table t({"CSThr pattern", "Probe miss rate", "Effective capacity (MB)",
               "Denied (MB)"});
  const auto dist =
      am::model::AccessDistribution::uniform(probe_elements, "Uni");
  const am::model::EhrModel model(dist, 4);
  const double mb = 1024.0 * 1024.0;

  double base_capacity = 0.0;
  for (const std::string pattern : {"none", "random", "linear"}) {
    am::sim::Engine engine(ctx.machine, ctx.seed);
    am::apps::SyntheticConfig cfg{dist, 4, 1, probe_elements * 2, accesses};
    const auto idx = engine.add_agent(
        std::make_unique<am::apps::SyntheticBenchmarkAgent>(engine.memory(),
                                                            cfg),
        0);
    if (pattern == "random")
      engine.add_agent(std::make_unique<am::interfere::CSThrAgent>(
                           engine.memory(), ctx.cs_config()),
                       1, false);
    else if (pattern == "linear")
      engine.add_agent(std::make_unique<LinearCS>(
                           engine.memory(), ctx.cs_config().buffer_bytes),
                       1, false);
    engine.run();
    const double miss = engine.agent_counters(idx).l3_miss_rate();
    const double capacity = model.invert_capacity(miss);
    if (pattern == "none") base_capacity = capacity;
    t.add_row({pattern, am::Table::num(miss, 3),
               am::Table::num(capacity / mb, 3),
               am::Table::num((base_capacity - capacity) / mb, 3)});
  }
  am::bench::emit(t, ctx,
                  "Ablation: CSThr touch order (paper: random denies more "
                  "because every touch misses the private caches)");
  return 0;
}

// Ablation: the EHR model's fully-associative assumption. The paper blames
// its small-buffer error on set-associativity (Fig. 5 discussion, citing
// Hill & Smith); here we re-run the Fig. 5 experiment against simulated
// L3s of varying associativity, including a fully associative one, and
// also compare against Che's approximation (our refinement).
#include <atomic>

#include "bench_util.hpp"
#include "model/che_approximation.hpp"
#include "model/distributions.hpp"

int main(int argc, char** argv) {
  am::Cli cli(argc, argv);
  const auto base_ctx = am::bench::make_context(cli, /*default_scale=*/16);
  const auto accesses =
      static_cast<std::uint64_t>(cli.get_int("accesses", 200'000));
  const std::uint64_t buffer = base_ctx.machine.l3.size_bytes * 3 / 2;

  am::Table t({"L3 ways", "Avg |err| Eq.4", "Avg |err| Che"});
  for (const std::uint32_t ways : {4u, 8u, 20u, 0u /*fully assoc*/}) {
    auto ctx = base_ctx;
    auto& l3 = ctx.machine.l3;
    l3.ways = ways == 0
                  ? static_cast<std::uint32_t>(l3.num_lines())
                  : ways;
    ctx.machine.validate();

    am::RunningStats err_eq4, err_che;
    am::ThreadPool pool;
    std::mutex mu;
    const auto dists =
        am::model::AccessDistribution::table2(buffer / 4);
    for (std::size_t di = 0; di < dists.size(); ++di) {
      pool.submit([&, di] {
        const auto& dist = dists[di];
        const auto outcome =
            am::bench::run_synth_experiment(ctx, dist, 1, 0, accesses);
        const am::model::EhrModel eq4(dist, 4);
        const am::model::CheApproximation che(dist, 4, 64);
        const double m_eq4 =
            eq4.expected_miss_rate(ctx.machine.l3.size_bytes);
        const double m_che =
            che.expected_miss_rate(ctx.machine.l3.size_bytes);
        std::lock_guard lock(mu);
        err_eq4.add(std::abs(outcome.miss_rate - m_eq4));
        err_che.add(std::abs(outcome.miss_rate - m_che));
      });
    }
    pool.wait_idle();
    t.add_row({ways == 0 ? "full" : std::to_string(ways),
               am::Table::num(err_eq4.mean(), 4),
               am::Table::num(err_che.mean(), 4)});
  }
  am::bench::emit(t, base_ctx,
                  "Ablation: model error vs L3 associativity "
                  "(paper: error stems from the fully-associative "
                  "assumption; Che's approximation is our refinement)");
  return 0;
}

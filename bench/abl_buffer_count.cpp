// Ablation: BWThr throughput vs the number of concurrent buffers. The
// paper found 44 buffers sufficient to maximize concurrent memory traffic;
// this sweep shows the saturation curve on the simulator (throughput rises
// with memory-level parallelism until the line-fill-buffer limit).
#include "bench_util.hpp"

int main(int argc, char** argv) {
  am::Cli cli(argc, argv);
  const auto ctx = am::bench::make_context(cli, /*default_scale=*/8);
  const auto window = static_cast<am::sim::Cycles>(
      cli.get_int("cycles", 10'000'000));

  am::Table t({"Buffers", "BWThr GB/s", "GB/s per buffer"});
  for (const std::uint32_t nbuf : {1u, 2u, 4u, 8u, 16u, 32u, 44u, 64u}) {
    am::sim::Engine engine(ctx.machine, ctx.seed);
    struct Timer final : am::sim::Agent {
      explicit Timer(am::sim::Cycles d) : am::sim::Agent("t"), left(d) {}
      void step(am::sim::AgentContext& c) override {
        const auto chunk = std::min<am::sim::Cycles>(left, 10'000);
        c.compute(chunk);
        left -= chunk;
      }
      bool finished() const override { return left == 0; }
      am::sim::Cycles left;
    };
    engine.add_agent(std::make_unique<Timer>(window), 0);
    auto cfg = ctx.bw_config();
    cfg.num_buffers = nbuf;
    engine.add_agent(std::make_unique<am::interfere::BWThrAgent>(
                         engine.memory(), cfg),
                     1, /*primary=*/false);
    const auto end = engine.run();
    const double seconds = ctx.machine.cycles_to_seconds(end);
    const double bw =
        static_cast<double>(engine.agent_counters(1).bytes_from_mem) /
        seconds;
    t.add_row({std::to_string(nbuf), am::Table::num(bw / 1e9, 2),
               am::Table::num(bw / 1e9 / nbuf, 3)});
  }
  am::bench::emit(t, ctx,
                  "Ablation: BWThr bandwidth vs buffer count "
                  "(paper: 44 buffers found sufficient)");
  return 0;
}

// Ablation: what the banked DRAM backend adds over the flat channel pipe.
// A DRAM-bound synthetic probe (uniform over a buffer several L3s large,
// so essentially every access is a row-level DRAM event) is swept against
// CSThr and BWThr interference under each memory backend. The channel
// pipe sees bandwidth interference only as queueing on one serial bus;
// the banked backends additionally resolve row-buffer locality, bank
// conflicts and refresh — so the same interference sweep separates where
// the models disagree. Results flow through the ordinary
// ExperimentPlan/ResultStore path: backends produce distinct machine
// fingerprints, so their records coexist in one store with zero format
// changes.
//
// Worker/probe modes (--shard/--lease/--emit-plan) run the plan under the
// single backend `--mem-backend` selected, like every other driver; the
// full run sweeps all of channel/ddr4/hbm in-process. A side table prints
// the banked backends' row-hit/conflict/refresh tallies from a direct
// engine run (MemoryBackendStats is diagnostic-only and never enters the
// store).
#include "bench_util.hpp"
#include "measure/app_workloads.hpp"
#include "measure/experiment_plan.hpp"

namespace {

using am::measure::Resource;

am::measure::ExperimentPlan make_plan(const am::bench::BenchContext& ctx,
                                      std::uint64_t accesses,
                                      std::uint32_t max_cs,
                                      std::uint32_t max_bw,
                                      am::measure::WorkloadId* id_out) {
  // Buffer ~4x the (scaled) L3 so the probe misses everywhere and the
  // backend, not the hierarchy, sets the pace.
  const std::uint64_t elements = ctx.machine.l3.size_bytes * 4 / 4;
  const am::apps::SyntheticConfig cfg{
      am::model::AccessDistribution::uniform(elements, "Uni"), 4,
      /*compute_ops=*/1, /*warmup=*/elements / 2, accesses};
  am::measure::ExperimentPlan plan;
  const auto id = plan.add_workload(
      {"dram-probe uniform elements=" + std::to_string(elements) +
           " accesses=" + std::to_string(accesses),
       am::measure::make_synthetic_workload(cfg)});
  plan.add_sweep(id, Resource::kCacheStorage, 0, max_cs);
  plan.add_sweep(id, Resource::kBandwidth, 0, max_bw);
  *id_out = id;
  return plan;
}

am::sim::MachineConfig backend_machine(const am::bench::BenchContext& ctx,
                                       const std::string& spec) {
  auto m = ctx.machine;
  am::sim::apply_mem_backend(m, spec);
  return m;
}

int abl(const am::Cli& cli, am::bench::BenchContext& ctx) {
  const auto accesses =
      static_cast<std::uint64_t>(cli.get_int("accesses", 60'000));
  const auto max_cs = static_cast<std::uint32_t>(cli.get_int("max-cs", 3));
  const auto max_bw = static_cast<std::uint32_t>(cli.get_int("max-bw", 2));

  am::measure::WorkloadId probe = 0;
  const auto plan = make_plan(ctx, accesses, max_cs, max_bw, &probe);
  auto store = am::bench::make_store(ctx);
  am::ThreadPool pool;

  am::measure::SweepRunnerOptions opts;
  opts.seed = ctx.seed;
  opts.cs = ctx.cs_config();
  opts.bw = ctx.bw_config();
  opts.checkpoint = store.checkpointer();

  // Worker/probe invocations: the plan under ctx.machine, orchestrated
  // like any fig driver (the scheduler picks the backend per invocation
  // via --mem-backend).
  if (!ctx.emit_plan_path.empty() || !ctx.lease_path.empty() ||
      ctx.shard.sharded()) {
    const am::measure::SweepRunner runner(ctx.machine, opts);
    (void)am::bench::execute_plan(ctx, plan, runner, store, &pool);
    return 0;
  }

  // Full run: the same plan under each backend, one shared store.
  const std::vector<std::string> backends{"channel", "ddr4", "hbm"};
  am::Table t({"backend", "interference", "threads", "time (ms)",
               "slowdown"});
  for (const auto& spec : backends) {
    const auto machine = backend_machine(ctx, spec);
    const am::measure::SweepRunner runner(machine, opts);
    std::size_t executed = 0;
    const auto table = runner.run(plan, &pool, store.store(), ctx.shard,
                                  &executed);
    store.finish(executed, table.size(), std::cout);
    for (const auto resource :
         {Resource::kCacheStorage, Resource::kBandwidth}) {
      for (std::uint32_t k = 0; table.has(probe, resource, k); ++k)
        t.add_row({spec, am::measure::resource_name(resource),
                   std::to_string(k),
                   am::Table::num(table.at(probe, resource, k).seconds * 1e3,
                                  2),
                   am::bench::slowdown_cell(table, probe, resource, k)});
    }
  }
  am::bench::emit(t, ctx, "Ablation: memory backend vs interference");

  // Side table: bank/row/refresh event tallies from direct engine runs of
  // the probe alone (k = 0) under the banked presets.
  am::Table s({"backend", "row hits", "row empties", "row conflicts",
               "refreshes", "refresh stall cyc", "GB/s"});
  for (const auto& spec : backends) {
    if (spec == "channel") continue;
    const auto machine = backend_machine(ctx, spec);
    am::sim::Engine engine(machine, ctx.seed);
    const std::uint64_t elements = machine.l3.size_bytes * 4 / 4;
    const am::apps::SyntheticConfig cfg{
        am::model::AccessDistribution::uniform(elements, "Uni"), 4,
        /*compute_ops=*/1, /*warmup=*/elements / 2, accesses};
    engine.add_agent(std::make_unique<am::apps::SyntheticBenchmarkAgent>(
                         engine.memory(), cfg),
                     0);
    const auto end = engine.run();
    const auto& st = engine.memory().mem_backend(0).stats();
    const double seconds = machine.cycles_to_seconds(end);
    const double bw =
        static_cast<double>(engine.memory().mem_backend(0).total_bytes()) /
        seconds;
    s.add_row({spec, std::to_string(st.row_hits),
               std::to_string(st.row_empties),
               std::to_string(st.row_conflicts),
               std::to_string(st.refreshes),
               std::to_string(st.refresh_stall_cycles),
               am::Table::num(bw / 1e9, 2)});
  }
  am::bench::emit(s, ctx, "Banked-backend event tallies (probe alone)");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return am::bench::run_driver(argc, argv, "abl_dram_backend",
                               /*default_scale=*/16, /*nodes=*/1, abl);
}

// Ablation: L3 insertion policy. The repo's default is plain MRU-insert
// LRU, which reproduces the paper's empirical finding that 3+ BWThrs begin
// stealing cache capacity (Fig. 8). SRRIP-style distant insertion
// (`insert_age`) protects re-used lines from streaming — making BWThr
// *more* orthogonal than the paper's machine — at the cost of flattening
// the Fig. 8 capacity-theft knee. This bench shows both regimes.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  am::Cli cli(argc, argv);
  const auto base_ctx = am::bench::make_context(cli, /*default_scale=*/8);
  const auto operations =
      static_cast<std::uint64_t>(cli.get_int("operations", 300'000));

  am::Table t({"L3 insertion", "BWThrs", "CSThr ns/op", "CSThr miss rate"});
  for (const bool distant : {false, true}) {
    auto ctx = base_ctx;
    ctx.machine.l3.insert_age =
        distant ? ctx.machine.l3.num_lines() / 2 : 0;
    for (const std::uint32_t k : {0u, 2u, 4u}) {
      am::sim::Engine engine(ctx.machine, ctx.seed);
      struct BoundedCS final : am::sim::Agent {
        BoundedCS(am::sim::MemorySystem& ms, am::interfere::CSThrConfig cfg,
                  std::uint64_t target)
            : am::sim::Agent("csthr"), inner(ms, cfg), target_(target) {}
        void step(am::sim::AgentContext& c) override { inner.step(c); }
        bool finished() const override {
          return inner.operations() >= target_;
        }
        am::interfere::CSThrAgent inner;
        std::uint64_t target_;
      };
      const auto idx = engine.add_agent(
          std::make_unique<BoundedCS>(engine.memory(), ctx.cs_config(),
                                      operations),
          0);
      for (std::uint32_t i = 0; i < k; ++i)
        engine.add_agent(std::make_unique<am::interfere::BWThrAgent>(
                             engine.memory(), ctx.bw_config()),
                         1 + i, /*primary=*/false);
      const auto end = engine.run();
      const auto& ctr = engine.agent_counters(idx);
      t.add_row({distant ? "distant (SRRIP-like)" : "MRU (default)",
                 std::to_string(k),
                 am::Table::num(ctx.machine.cycles_to_seconds(end) * 1e9 /
                                    static_cast<double>(operations),
                                2),
                 am::Table::num(ctr.l3_miss_rate(), 3)});
    }
  }
  am::bench::emit(t, base_ctx,
                  "Ablation: L3 insertion policy vs BWThr capacity theft "
                  "(paper's machine behaves like the MRU rows)");
  return 0;
}

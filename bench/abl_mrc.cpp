// Ablation: ground-truth miss-rate curve vs the paper's analytic model.
// A synthetic benchmark's access trace is captured from the simulator and
// fed to exact LRU stack-distance analysis; the resulting miss-rate curve
// is compared, capacity by capacity, against Eq. 4 and against Che's
// approximation. This quantifies how much of Fig. 5's error is the
// *analytic* approximation vs set-associativity.
#include "bench_util.hpp"

#include "model/che_approximation.hpp"
#include "model/distributions.hpp"
#include "model/stack_distance.hpp"
#include "sim/trace.hpp"

int main(int argc, char** argv) {
  am::Cli cli(argc, argv);
  const auto ctx = am::bench::make_context(cli, /*default_scale=*/16);
  const auto accesses =
      static_cast<std::uint64_t>(cli.get_int("accesses", 400'000));
  const auto dist_idx =
      static_cast<std::size_t>(cli.get_int("dist", 4));  // Exp_6

  const std::uint64_t elements = ctx.machine.l3.size_bytes * 2 / 4;
  const auto dist = am::model::AccessDistribution::table2(elements)[dist_idx];

  // Capture the trace of the benchmark running on the simulator.
  am::sim::Engine engine(ctx.machine, ctx.seed);
  am::apps::SyntheticConfig cfg{dist, 4, 1, /*warmup=*/0, accesses};
  const auto idx = engine.add_agent(
      std::make_unique<am::apps::SyntheticBenchmarkAgent>(engine.memory(),
                                                          cfg),
      0);
  am::sim::TraceBuffer trace;
  engine.set_trace(idx, &trace);
  engine.run();

  const auto lines = trace.line_addresses(ctx.machine.l3.line_bytes);
  const am::model::MissRateCurve mrc(
      am::model::StackDistanceAnalyzer::analyze(lines));
  const am::model::EhrModel eq4(dist, 4);
  const am::model::CheApproximation che(dist, 4, ctx.machine.l3.line_bytes);

  am::Table t({"Capacity (MB)", "Exact MRC", "Eq. 4", "Che", "Eq.4 err",
               "Che err"});
  for (int step = 1; step <= 8; ++step) {
    const std::uint64_t capacity = ctx.machine.l3.size_bytes * step / 4;
    const auto cap_lines = capacity / ctx.machine.l3.line_bytes;
    const double exact = mrc.warm_miss_rate(cap_lines);
    const double m_eq4 = eq4.expected_miss_rate(capacity);
    const double m_che = che.expected_miss_rate(capacity);
    t.add_row({am::Table::num(capacity / 1048576.0, 2),
               am::Table::num(exact, 3), am::Table::num(m_eq4, 3),
               am::Table::num(m_che, 3),
               am::Table::num(std::abs(m_eq4 - exact), 3),
               am::Table::num(std::abs(m_che - exact), 3)});
  }
  am::bench::emit(t, ctx,
                  "Ablation: exact LRU miss-rate curve (stack distances of " +
                      std::to_string(lines.size()) + " accesses, " +
                      dist.name() + ") vs analytic models");
  return 0;
}

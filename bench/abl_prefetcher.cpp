// Ablation: the stream prefetcher's contribution to consumable bandwidth.
// The paper chose a constant stride for BWThr specifically so the hardware
// prefetcher would "help use up more bandwidth"; this bench quantifies the
// effect on the simulator for a sequential stream, a prefetchable small
// stride, the BWThr's large prime stride, and a random pattern.
#include "bench_util.hpp"

namespace {

/// Strided/random walker over one large buffer.
class Walker final : public am::sim::Agent {
 public:
  Walker(am::sim::MemorySystem& ms, std::uint64_t bytes, std::int64_t stride,
         std::uint64_t target_loads)
      : am::sim::Agent("walker"),
        base_(ms.alloc(bytes, 64)),
        lines_(bytes / 64),
        stride_(stride),
        target_(target_loads) {}

  void step(am::sim::AgentContext& ctx) override {
    std::array<am::sim::Addr, 8> batch;
    for (auto& addr : batch) {
      const std::uint64_t line =
          stride_ == 0 ? ctx.rng().bounded(lines_)
                       : (cursor_ += static_cast<std::uint64_t>(stride_)) %
                             lines_;
      addr = base_ + line * 64;
    }
    ctx.load_batch(batch);
    done_ += batch.size();
  }
  bool finished() const override { return done_ >= target_; }

 private:
  am::sim::Addr base_;
  std::uint64_t lines_;
  std::int64_t stride_;  // lines; 0 = random
  std::uint64_t cursor_ = 0;
  std::uint64_t target_;
  std::uint64_t done_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  am::Cli cli(argc, argv);
  const auto ctx = am::bench::make_context(cli, /*default_scale=*/8);
  const auto loads =
      static_cast<std::uint64_t>(cli.get_int("loads", 400'000));
  const std::uint64_t bytes = ctx.machine.l3.size_bytes * 4;

  am::Table t({"Pattern", "Prefetcher", "GB/s", "Prefetch cover %"});
  struct Case {
    const char* name;
    std::int64_t stride;
  };
  for (const Case c : {Case{"sequential", 1}, Case{"stride 3", 3},
                       Case{"stride 17 (BWThr)", 17}, Case{"random", 0}}) {
    for (const bool pf : {true, false}) {
      auto m = ctx.machine;
      m.prefetcher.enabled = pf;
      am::sim::Engine engine(m, ctx.seed);
      engine.add_agent(
          std::make_unique<Walker>(engine.memory(), bytes, c.stride, loads),
          0);
      const auto end = engine.run();
      const auto& ctr = engine.agent_counters(0);
      const double seconds = m.cycles_to_seconds(end);
      const double bw = static_cast<double>(ctr.bytes_from_mem) / seconds;
      const double cover =
          100.0 * static_cast<double>(ctr.prefetch_issued) /
          static_cast<double>(ctr.prefetch_issued + ctr.mem_accesses);
      t.add_row({c.name, pf ? "on" : "off", am::Table::num(bw / 1e9, 2),
                 am::Table::num(cover, 1)});
    }
  }
  am::bench::emit(t, ctx,
                  "Ablation: prefetcher contribution per access pattern");
  return 0;
}

#pragma once
// Shared plumbing for the per-figure bench drivers: scaled machine
// construction, scaled interference configurations, the synthetic-
// benchmark experiment used by Fig. 5 and Fig. 6, and the `run_driver`
// entry-point wrapper that makes a driver exec-able as a supervised
// shard worker (`--worker`, see measure::SweepOrchestrator).
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/cli.hpp"
#include "common/heartbeat.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "common/work_lease.hpp"
#include "apps/synthetic_benchmark.hpp"
#include "common/units.hpp"
#include "interfere/bwthr_agent.hpp"
#include "interfere/csthr_agent.hpp"
#include "measure/active_measurer.hpp"
#include "measure/experiment_plan.hpp"
#include "measure/lease.hpp"
#include "measure/orchestrator.hpp"
#include "measure/result_store.hpp"
#include "model/ehr_model.hpp"
#include "sim/engine.hpp"

namespace am::bench {

struct BenchContext {
  sim::MachineConfig machine;
  std::uint32_t scale = 1;
  std::string csv_path;     // empty = no CSV dump
  std::uint64_t seed = 1;
  std::string results_dir;  // empty = no persistent result store
  ShardRange shard;         // --shard i/n; default = whole plan
  std::string lease_path;   // --lease FILE: dynamic lease-worker mode
  std::string emit_plan_path;  // --emit-plan FILE: scheduler probe mode
  std::string driver;       // store-file naming stem (set by run_driver)
  bool worker = false;      // --worker: supervised worker mode

  interfere::CSThrConfig cs_config() const {
    interfere::CSThrConfig c;
    c.buffer_bytes = std::max<std::uint64_t>(4096, 4ull * 1024 * 1024 / scale);
    return c;
  }
  interfere::BWThrConfig bw_config() const {
    interfere::BWThrConfig c;
    c.buffer_bytes = std::max<std::uint64_t>(4096, 520ull * 1024 / scale);
    return c;
  }
  /// Buffer sizes in the paper's 30-74 MB range (scaled), `count` steps.
  std::vector<std::uint64_t> paper_buffer_bytes(std::size_t count) const {
    std::vector<std::uint64_t> out;
    const double lo = 30.0 * 1024 * 1024 / scale;
    const double hi = 74.0 * 1024 * 1024 / scale;
    for (std::size_t i = 0; i < count; ++i) {
      const double frac =
          count > 1 ? static_cast<double>(i) / (count - 1) : 0.0;
      out.push_back(static_cast<std::uint64_t>(lo + frac * (hi - lo)) /
                    64 * 64);
    }
    return out;
  }
};

/// Parses the common flags: --scale N (default 16, geometry-preserving),
/// --full (paper-size machine), --nodes, --csv path, --seed,
/// --l1-filter true|false and --l2-filter true|false (the engine's filter
/// fast paths, default on — host-speed knobs whose outputs are
/// bit-identical either way), --set-hash mask|h3 (the shared L3's
/// set-index function, see sim::apply_set_hash — h3 changes placement and
/// therefore results and store keys),
/// --mem-backend channel|banked|ddr4|hbm (memory model below the L3, see
/// sim::apply_mem_backend — unlike --l1-filter this changes results and
/// store keys) with banked-DRAM overrides --dram-channels, --dram-banks,
/// --dram-row-bytes, --dram-refresh-interval and --dram-refresh-cycles
/// (cycles; applied after the preset, validated together),
/// --results-dir DIR (persistent result store), --shard i/n (static
/// slice), --lease FILE (dynamic lease-worker mode), --emit-plan FILE
/// (scheduler probe). The three scheduling flags are mutually exclusive
/// — each fixes the invocation's entire control flow.
inline BenchContext make_context(const Cli& cli,
                                 std::uint32_t default_scale = 16,
                                 std::uint32_t nodes = 1) {
  BenchContext ctx;
  ctx.scale = cli.get_bool("full", false)
                  ? 1
                  : static_cast<std::uint32_t>(
                        cli.get_int("scale", default_scale));
  ctx.machine = sim::MachineConfig::xeon20mb_scaled(
      ctx.scale, static_cast<std::uint32_t>(cli.get_int("nodes", nodes)));
  ctx.machine.l1_filter = cli.get_bool("l1-filter", true);
  ctx.machine.l2_filter = cli.get_bool("l2-filter", true);
  sim::apply_set_hash(ctx.machine, cli.get("set-hash", "mask"));
  sim::apply_mem_backend(ctx.machine, cli.get("mem-backend", "channel"));
  {
    auto& d = ctx.machine.dram;
    auto u32 = [&](const char* flag, std::uint32_t cur) {
      return static_cast<std::uint32_t>(
          cli.get_int(flag, static_cast<std::int64_t>(cur)));
    };
    d.channels = u32("dram-channels", d.channels);
    d.banks = u32("dram-banks", d.banks);
    d.row_bytes = u32("dram-row-bytes", d.row_bytes);
    d.refresh_interval = static_cast<sim::Cycles>(cli.get_int(
        "dram-refresh-interval", static_cast<std::int64_t>(d.refresh_interval)));
    d.refresh_cycles = static_cast<sim::Cycles>(cli.get_int(
        "dram-refresh-cycles", static_cast<std::int64_t>(d.refresh_cycles)));
    ctx.machine.validate();
  }
  ctx.csv_path = cli.get("csv", "");
  ctx.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  ctx.results_dir = cli.get("results-dir", "");
  const auto sched = measure::parse_scheduling_flags(cli);
  ctx.shard = sched.shard;
  ctx.lease_path = sched.lease_path;
  ctx.emit_plan_path = sched.emit_plan_path;
  // (--shard without --results-dir is rejected by ResultStoreFile.)
  if ((ctx.shard.sharded() || !ctx.lease_path.empty()) &&
      !ctx.csv_path.empty())
    throw std::invalid_argument(
        "--csv cannot be combined with --shard/--lease: a worker emits no "
        "tables — merge the stores, then re-run unsharded with --csv");
  return ctx;
}

/// The persistent store backing one driver invocation (see
/// measure::ResultStoreFile); disabled when --results-dir is unset. A
/// lease worker's store lives next to its lease file and is seeded from
/// the canonical cache, so re-sweeps stay fully cached no matter which
/// worker ran a point last time.
inline measure::ResultStoreFile make_store(const BenchContext& ctx,
                                           const std::string& driver) {
  if (!ctx.lease_path.empty())
    return measure::ResultStoreFile::for_lease(ctx.results_dir, driver,
                                               ctx.lease_path);
  return measure::ResultStoreFile(ctx.results_dir, driver, ctx.shard);
}

/// make_store using the driver name run_driver stamped into the context.
inline measure::ResultStoreFile make_store(const BenchContext& ctx) {
  return make_store(ctx, ctx.driver);
}

/// Entry-point wrapper every orchestratable driver routes its main
/// through: parses the common flags, then runs `body(cli, ctx)`. What it
/// adds over a bare main is the worker contract of
/// measure::SweepOrchestrator:
///
///   * Machine-readable exit codes — flag/plan rejections
///     (std::invalid_argument) exit kWorkerExitUsage so the orchestrator
///     fails fast instead of retrying a doomed command, any other
///     exception exits kWorkerExitRunFailed (retryable); no exception
///     escapes to std::terminate's ambiguous SIGABRT.
///   * `--worker` mode (requires --results-dir or --lease): maintains a
///     heartbeat file next to this worker's store (static shards) or
///     lease file (lease mode) for liveness supervision.
///   * `--test-crash-marker PATH` fault injection: the first invocation
///     to claim (atomically delete) the marker file dies via SIGKILL
///     before any work, so orchestrator kill/retry paths are testable
///     deterministically. Probe runs (`--emit-plan`) never claim the
///     marker — the injection targets workers, and a probe stealing it
///     would leave the kill/retry path untested.
template <typename Body>
int run_driver(int argc, char** argv, const std::string& driver,
               std::uint32_t default_scale, std::uint32_t nodes,
               Body&& body) {
  try {
    const Cli cli(argc, argv);
    BenchContext ctx = make_context(cli, default_scale, nodes);
    ctx.driver = driver;
    ctx.worker = cli.get_bool("worker", false);
    if (ctx.worker && ctx.results_dir.empty() && ctx.lease_path.empty())
      throw std::invalid_argument(
          "--worker requires --results-dir or --lease: a worker's only "
          "output is its store file");
    const auto marker = cli.get("test-crash-marker", "");
    if (!marker.empty() && ctx.emit_plan_path.empty() &&
        std::filesystem::remove(marker)) {
      std::fprintf(stderr, "%s: crash marker claimed, raising SIGKILL\n",
                   driver.c_str());
      std::raise(SIGKILL);
    }
    std::optional<HeartbeatWriter> heartbeat;
    if (ctx.worker)
      heartbeat.emplace(
          !ctx.lease_path.empty()
              ? lease_heartbeat_path(ctx.lease_path)
              : measure::store_path(ctx.results_dir, driver, ctx.shard) +
                    ".hb");
    return body(cli, ctx);
  } catch (const std::invalid_argument& e) {
    std::cerr << driver << ": " << e.what() << "\n";
    return measure::kWorkerExitUsage;
  } catch (const std::exception& e) {
    std::cerr << driver << ": " << e.what() << "\n";
    return measure::kWorkerExitRunFailed;
  }
}

/// Executes a plan under whichever scheduling mode this invocation asked
/// for — the one call a SweepRunner-style driver (fig9/fig11/
/// mcb_mapping_study) makes instead of wiring the modes itself:
///
///   * `--emit-plan FILE`: write plan size + per-point cost estimates
///     for the scheduler and stop.
///   * `--lease FILE`: loop running leased batches until the scheduler
///     drains its queue.
///   * `--shard i/n`: run the static slice, persist it, print the merge
///     handoff.
///   * otherwise: the full (cache-aware) run.
///
/// Returns the assembled table only in the last case; nullopt means the
/// invocation was a worker/probe whose entire output is store or plan
/// files, and the driver should exit 0 without emitting figures.
inline std::optional<measure::ResultTable> execute_plan(
    const BenchContext& ctx, const measure::ExperimentPlan& plan,
    const measure::SweepRunner& runner, measure::ResultStoreFile& store,
    ThreadPool* pool) {
  if (!ctx.emit_plan_path.empty()) {
    measure::emit_plan_info(plan, runner, store.store(), ctx.emit_plan_path);
    std::cout << "plan info: " << plan.size() << " point(s) -> "
              << ctx.emit_plan_path << "\n";
    return std::nullopt;
  }
  if (!ctx.lease_path.empty()) {
    const auto report = measure::run_lease_worker(plan, runner, pool, store,
                                                  ctx.lease_path, std::cout);
    store.finish(report.executed, report.points, std::cout);
    return std::nullopt;
  }
  std::size_t executed = 0;
  auto table = runner.run(plan, pool, store.store(), ctx.shard, &executed);
  if (store.finish(executed, table.size(), std::cout))
    return std::nullopt;  // shard: merge, then re-run to emit
  return table;
}

/// The grid-request counterpart of execute_plan for ActiveMeasurer-style
/// drivers (fig10/fig12/coschedule_advisor). The measurer must already
/// have its pool and store configured (set_store with this `store`'s
/// ResultStore). True = the invocation was a probe/lease/shard worker
/// and is fully handled — the driver should exit 0 without assembling
/// sweeps.
inline bool grid_worker_modes(const BenchContext& ctx,
                              measure::ActiveMeasurer& measurer,
                              const std::vector<measure::GridRequest>& requests,
                              measure::ResultStoreFile& store,
                              const interfere::CSThrConfig& cs,
                              const interfere::BWThrConfig& bw) {
  if (!ctx.emit_plan_path.empty()) {
    measurer.sweep_grid_emit_plan(requests, ctx.emit_plan_path, cs, bw);
    std::cout << "plan info -> " << ctx.emit_plan_path << "\n";
    return true;
  }
  if (!ctx.lease_path.empty()) {
    const auto executed =
        measurer.sweep_grid_lease(requests, store, ctx.lease_path,
                                  std::cout, cs, bw);
    store.finish(executed, measurer.last_planned(), std::cout);
    return true;
  }
  if (ctx.shard.sharded()) {
    const auto executed = measurer.sweep_grid_shard(requests, ctx.shard,
                                                    cs, bw);
    store.finish(executed, measurer.last_planned(), std::cout);
    return true;
  }
  return false;
}

inline void emit(const Table& table, const BenchContext& ctx,
                 const std::string& title) {
  std::cout << "\n== " << title << " ==\n";
  std::cout << "machine: " << ctx.machine.name
            << " (L3 " << format_bytes(
                   static_cast<double>(ctx.machine.l3.size_bytes))
            << ", scale 1:" << ctx.scale << ")\n";
  table.print(std::cout);
  if (!ctx.csv_path.empty()) {
    if (table.save_csv(ctx.csv_path))
      std::cout << "csv written to " << ctx.csv_path << "\n";
    else
      std::cerr << "failed to write " << ctx.csv_path << "\n";
  }
}

/// Memoizes (mapping, size) → workload id so two sweeps that visit the
/// same grid cell (fig9/fig11: the mapping sweep's p=1 row is also the
/// size sweep's first row) share a single workload — one set of runs in
/// the plan and one set of records in the store, instead of the identical
/// experiment simulated twice under two names.
class CellMemo {
 public:
  /// `make_spec` is invoked only on the first sighting of (a, b).
  template <typename MakeSpec>
  measure::WorkloadId get(measure::ExperimentPlan& plan, std::uint32_t a,
                          std::uint32_t b, MakeSpec&& make_spec) {
    const auto key = std::make_pair(a, b);
    if (const auto it = cells_.find(key); it != cells_.end())
      return it->second;
    const auto id = plan.add_workload(make_spec());
    cells_.emplace(key, id);
    return id;
  }

 private:
  std::map<std::pair<std::uint32_t, std::uint32_t>, measure::WorkloadId>
      cells_;
};

/// One row group of a degradation table (fig9/fig11): a plan workload plus
/// the axis value (mapping, particle count, cube edge) it varies.
struct DegradationRow {
  measure::WorkloadId workload;
  std::string label;
  std::uint32_t axis;
};

/// Slowdown column entry; "n/a" when the baseline run is absent (e.g. a
/// trimmed sweep) instead of a division by a defaulted zero.
inline std::string slowdown_cell(const measure::ResultTable& table,
                                 measure::WorkloadId w, measure::Resource r,
                                 std::uint32_t k) {
  if (!table.has_baseline(w)) return "n/a";
  return Table::num(table.slowdown(w, r, k), 3);
}

/// Emits one table per resource for the rows matching `label`, iterating
/// thread counts straight out of the ResultTable (bandwidth tables skip
/// the k = 0 baseline row, as the paper's figures do).
inline void emit_degradation_tables(const measure::ResultTable& table,
                                    const std::vector<DegradationRow>& rows,
                                    const std::string& label,
                                    const char* axis_name,
                                    const std::string& title_prefix,
                                    const BenchContext& ctx) {
  for (const auto resource :
       {measure::Resource::kCacheStorage, measure::Resource::kBandwidth}) {
    Table t({axis_name, "threads", "time (ms)", "slowdown"});
    for (const auto& row : rows) {
      if (row.label != label) continue;
      const std::uint32_t first =
          resource == measure::Resource::kBandwidth ? 1 : 0;
      for (std::uint32_t k = first; table.has(row.workload, resource, k); ++k)
        t.add_row(
            {std::to_string(row.axis), std::to_string(k),
             Table::num(table.at(row.workload, resource, k).seconds * 1e3, 2),
             slowdown_cell(table, row.workload, resource, k)});
    }
    emit(t, ctx,
         title_prefix + measure::resource_name(resource) + " interference");
  }
}

/// One synthetic-benchmark experiment: the probe runs against `k` CSThrs
/// on the same socket; returns the measured L3 miss rate in steady state.
struct SynthOutcome {
  double miss_rate = 0.0;
  double seconds = 0.0;
  double effective_capacity = 0.0;  // via inverted Eq. 4
};

inline SynthOutcome run_synth_experiment(
    const BenchContext& ctx, const model::AccessDistribution& dist,
    std::uint32_t compute_ops, std::uint32_t k_csthr,
    std::uint64_t measured_accesses) {
  sim::Engine engine(ctx.machine, ctx.seed);
  apps::SyntheticConfig cfg{dist, 4, compute_ops,
                            /*warmup=*/dist.n() * 3 / 2, measured_accesses};
  auto bench = std::make_unique<apps::SyntheticBenchmarkAgent>(
      engine.memory(), cfg);
  auto* bench_raw = bench.get();
  const auto idx = engine.add_agent(std::move(bench), 0);
  for (std::uint32_t i = 0; i < k_csthr; ++i)
    engine.add_agent(std::make_unique<interfere::CSThrAgent>(engine.memory(),
                                                             ctx.cs_config()),
                     1 + i, /*primary=*/false);
  const sim::Cycles end = engine.run();
  SynthOutcome out;
  out.miss_rate = engine.agent_counters(idx).l3_miss_rate();
  out.seconds =
      ctx.machine.cycles_to_seconds(end - bench_raw->measure_start_cycle());
  out.effective_capacity =
      model::EhrModel(dist, 4).invert_capacity(out.miss_rate);
  return out;
}

}  // namespace am::bench

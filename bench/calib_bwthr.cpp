// §II-A / §III-A calibration: bandwidth drawn by k BWThrs and the
// STREAM-style peak. Paper reference points: one BWThr uses ~2.8 GB/s of
// the Xeon20MB's 17 GB/s; ~7 threads consume approximately all of it.
#include "bench_util.hpp"

#include "measure/calibration.hpp"

int main(int argc, char** argv) {
  am::Cli cli(argc, argv);
  const auto ctx = am::bench::make_context(cli, /*default_scale=*/8);
  const auto max_threads = static_cast<std::uint32_t>(
      cli.get_int("max-threads", ctx.machine.cores_per_socket - 1));

  const auto calib = am::measure::calibrate_bandwidth(
      ctx.machine, ctx.bw_config(), max_threads, ctx.seed);

  am::Table t({"BWThrs", "Used GB/s", "Available GB/s", "Used % of peak"});
  for (std::uint32_t k = 0; k <= max_threads; ++k) {
    t.add_row({std::to_string(k),
               am::Table::num(calib.used_bytes_per_sec[k] / 1e9, 2),
               am::Table::num(calib.available(k) / 1e9, 2),
               am::Table::num(100.0 * calib.used_bytes_per_sec[k] /
                                  calib.peak_bytes_per_sec,
                              1)});
  }
  am::bench::emit(t, ctx,
                  "BWThr bandwidth calibration (STREAM peak " +
                      am::Table::num(calib.peak_bytes_per_sec / 1e9, 2) +
                      " GB/s; paper: 2.8 GB/s per thread of 17 GB/s)");
  return 0;
}

// Fig. 10 of the paper: MCB's per-process resource consumption (L3 storage
// and memory bandwidth) as a function of the MPI mapping, derived from the
// degradation sweeps via the §IV bounds recipe.
//
// Paper reference shape (20k particles): storage use is roughly constant
// (~3.5-7 MB/process) across mappings, while per-process bandwidth use
// grows as processes spread out (~3.5-4.25 GB/s at 4/processor up to
// ~11.4-14.2 GB/s at 1/processor) because all communication then crosses
// the memory bus.
#include "bench_util.hpp"
#include "measure/active_measurer.hpp"
#include "measure/app_workloads.hpp"
#include "measure/calibration.hpp"

namespace {

int fig10(const am::Cli& cli, am::bench::BenchContext& ctx) {
  const auto ranks = static_cast<std::uint32_t>(cli.get_int("ranks", 24));
  const auto steps = static_cast<std::uint32_t>(cli.get_int("steps", 3));
  const auto particles =
      static_cast<std::uint32_t>(cli.get_int("particles", 20'000));
  const double tolerance = cli.get_double("tolerance", 0.05);
  // --quick trims calibration and the mapping sweep for smoke runs.
  const bool quick = cli.get_bool("quick", false);
  const std::vector<std::uint32_t> mappings =
      quick ? std::vector<std::uint32_t>{1, 4}
            : std::vector<std::uint32_t>{1, 2, 3, 4};
  const std::uint32_t sweep_cs = quick ? 2 : 5;
  const std::uint32_t sweep_bw = quick ? 1 : 2;

  // Constructed before calibration: flag-pairing errors (e.g. --shard
  // without --results-dir) must fire before minutes of calibration work.
  auto store = am::bench::make_store(ctx);

  am::measure::CalibrationOptions copts;
  copts.max_threads = quick ? 2 : 5;
  copts.buffer_to_l3_ratios = {2.5};
  copts.probe_distributions = {9};
  copts.accesses_per_probe = quick ? 20'000 : 150'000;
  copts.seed = ctx.seed;
  const auto cap_calib =
      am::measure::calibrate_capacity(ctx.machine, ctx.cs_config(), copts);
  const auto bw_calib = am::measure::calibrate_bandwidth(
      ctx.machine, ctx.bw_config(), 2, ctx.seed);

  am::measure::SimBackend backend(ctx.machine, ctx.seed);
  am::measure::ActiveMeasurer measurer(backend, cap_calib, bw_calib);
  am::ThreadPool pool;
  measurer.set_pool(&pool);
  measurer.set_store(store.store(), store.checkpointer());

  auto cfg = am::apps::McbConfig::paper(particles, ctx.scale);
  cfg.steps = steps;

  // One grid for every mapping: both resources of one mapping share a
  // single baseline run, and the whole plan runs over the pool at once.
  // Names embed every run-shaping parameter — they key the ResultStore.
  std::vector<am::measure::GridRequest> requests;
  for (const std::uint32_t p : mappings)
    requests.push_back({am::measure::make_mcb_workload(ranks, p, cfg),
                        "mcb r" + std::to_string(ranks) + " s" +
                            std::to_string(steps) + " particles=" +
                            std::to_string(particles) + " p=" +
                            std::to_string(p),
                        std::min(sweep_cs, ctx.machine.cores_per_socket - p),
                        std::min(sweep_bw, ctx.machine.cores_per_socket - p)});
  if (am::bench::grid_worker_modes(ctx, measurer, requests, store,
                                   ctx.cs_config(), ctx.bw_config()))
    return 0;  // worker/probe: merge the stores, then re-run to print
  const auto sweeps =
      measurer.sweep_grid(requests, ctx.cs_config(), ctx.bw_config());
  store.finish(measurer.last_executed(), measurer.last_planned(), std::cout);

  const double mb = 1024.0 * 1024.0;
  am::Table t({"p/processor", "capacity lo (MB)", "capacity hi (MB)",
               "bandwidth lo (GB/s)", "bandwidth hi (GB/s)"});
  for (std::size_t i = 0; i < mappings.size(); ++i) {
    const std::uint32_t p = mappings[i];
    const auto cs_bounds =
        am::measure::ActiveMeasurer::bounds(sweeps[i].storage, p, tolerance);
    const auto bw_bounds =
        am::measure::ActiveMeasurer::bounds(sweeps[i].bandwidth, p, tolerance);
    auto cap_str = [&](double v) {
      return am::Table::num(v / mb * ctx.scale, 2);  // rescaled to 20MB L3
    };
    t.add_row({std::to_string(p), cap_str(cs_bounds.lower),
               cap_str(cs_bounds.upper),
               am::Table::num(bw_bounds.lower / 1e9, 2),
               am::Table::num(bw_bounds.upper / 1e9, 2)});
  }
  am::bench::emit(t, ctx,
                  "Fig. 10: MCB per-process resource use vs mapping "
                  "(capacities rescaled to the 20 MB machine; paper: "
                  "storage ~3.5-7 MB flat, bandwidth rising as spread out)");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return am::bench::run_driver(argc, argv, "fig10_mcb_resources",
                               /*default_scale=*/16, /*nodes=*/12, fig10);
}

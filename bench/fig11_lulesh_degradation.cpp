// Fig. 11 of the paper: Lulesh (64 MPI ranks) performance degradation.
//   Top:    22^3 per-rank domains across mappings p in {1,2,4}.
//   Bottom: 1 process/processor, cube edges 22..36.
//
// Paper reference shape: with 4 processes/processor any CSThr overflows
// the L3 (every process needs > 3.5 MB); with 1/processor, cubes <= 32
// degrade < 5% for 1-2 CSThrs but > 10% at 5; larger cubes degrade with
// any storage interference; bandwidth interference costs > 10% for cubes
// 32 and 36.
#include "bench_util.hpp"
#include "measure/app_workloads.hpp"
#include "measure/experiment_plan.hpp"

namespace {
using am::measure::Resource;
}  // namespace

namespace {

int fig11(const am::Cli& cli, am::bench::BenchContext& ctx) {
  const auto ranks = static_cast<std::uint32_t>(cli.get_int("ranks", 64));
  const auto steps = static_cast<std::uint32_t>(cli.get_int("steps", 2));
  const auto max_cs = static_cast<std::uint32_t>(cli.get_int("max-cs", 5));
  const auto max_bw = static_cast<std::uint32_t>(cli.get_int("max-bw", 2));
  // --quick trims the hard-coded mapping/cube sweeps for smoke runs.
  const bool quick = cli.get_bool("quick", false);
  const std::vector<std::uint32_t> mappings =
      quick ? std::vector<std::uint32_t>{1, 4}
            : std::vector<std::uint32_t>{1, 2, 4};
  const std::vector<std::uint32_t> edges =
      quick ? std::vector<std::uint32_t>{22, 30}
            : std::vector<std::uint32_t>{22, 25, 28, 30, 32, 36};

  auto lulesh_cfg = [&](std::uint32_t edge) {
    auto cfg = am::apps::LuleshConfig::paper(edge, ctx.scale);
    cfg.steps = steps;
    return cfg;
  };

  // Names embed ranks/steps/cube/mapping: a workload's name is its
  // identity in the ResultStore, so distinct configurations must never
  // share one — while the one cell both sweeps visit (p=1 × 22^3) is
  // memoized into a single workload, simulated and stored once.
  am::measure::ExperimentPlan plan;
  am::bench::CellMemo cells;
  auto cell = [&](std::uint32_t p, std::uint32_t edge) {
    return cells.get(plan, p, edge, [&] {
      return am::measure::WorkloadSpec{
          "lulesh r" + std::to_string(ranks) + " s" + std::to_string(steps) +
              " map p=" + std::to_string(p) + " cube " +
              std::to_string(edge) + "^3",
          am::measure::make_lulesh_workload(ranks, p, lulesh_cfg(edge))};
    });
  };
  std::vector<am::bench::DegradationRow> rows;
  for (const std::uint32_t p : mappings) {
    const std::uint32_t free_cores = ctx.machine.cores_per_socket - p;
    const auto id = cell(p, 22);
    plan.add_sweep(id, Resource::kCacheStorage, 0,
                   std::min(max_cs, free_cores));
    plan.add_sweep(id, Resource::kBandwidth, 0, std::min(max_bw, free_cores));
    rows.push_back({id, "map", p});
  }
  for (const std::uint32_t edge : edges) {
    const auto id = cell(1, edge);
    plan.add_sweep(id, Resource::kCacheStorage, 0, max_cs);
    plan.add_sweep(id, Resource::kBandwidth, 0, max_bw);
    rows.push_back({id, "cube", edge});
  }

  auto store = am::bench::make_store(ctx);
  am::measure::SweepRunnerOptions opts;
  opts.seed = ctx.seed;
  opts.mix_seed_per_point = false;  // all levels share the workload seed
  opts.cs = ctx.cs_config();
  opts.bw = ctx.bw_config();
  opts.checkpoint = store.checkpointer();  // keep finished runs on a crash
  const am::measure::SweepRunner runner(ctx.machine, opts);
  am::ThreadPool pool;
  const auto table =
      am::bench::execute_plan(ctx, plan, runner, store, &pool);
  if (!table) return 0;  // worker/probe: output is store or plan files

  am::bench::emit_degradation_tables(
      *table, rows, "map", "p/processor",
      "Fig. 11 top: Lulesh 22^3, mapping sweep vs ", ctx);
  am::bench::emit_degradation_tables(
      *table, rows, "cube", "cube edge",
      "Fig. 11 bottom: Lulesh cube sweep (1 process/processor) vs ", ctx);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return am::bench::run_driver(argc, argv, "fig11_lulesh_degradation",
                               /*default_scale=*/16, /*nodes=*/32, fig11);
}

// Fig. 11 of the paper: Lulesh (64 MPI ranks) performance degradation.
//   Top:    22^3 per-rank domains across mappings p in {1,2,4}.
//   Bottom: 1 process/processor, cube edges 22..36.
//
// Paper reference shape: with 4 processes/processor any CSThr overflows
// the L3 (every process needs > 3.5 MB); with 1/processor, cubes <= 32
// degrade < 5% for 1-2 CSThrs but > 10% at 5; larger cubes degrade with
// any storage interference; bandwidth interference costs > 10% for cubes
// 32 and 36.
#include <atomic>

#include "bench_util.hpp"
#include "measure/app_workloads.hpp"
#include "measure/sim_backend.hpp"

namespace {

struct Run {
  std::string label;
  am::measure::Resource resource;
  std::uint32_t threads;
  std::uint32_t per_socket;
  std::uint32_t edge;
  double seconds = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  am::Cli cli(argc, argv);
  auto ctx = am::bench::make_context(cli, /*default_scale=*/16, /*nodes=*/32);
  const auto ranks = static_cast<std::uint32_t>(cli.get_int("ranks", 64));
  const auto steps = static_cast<std::uint32_t>(cli.get_int("steps", 2));
  const auto max_cs = static_cast<std::uint32_t>(cli.get_int("max-cs", 5));
  const auto max_bw = static_cast<std::uint32_t>(cli.get_int("max-bw", 2));
  // --quick trims the hard-coded mapping/cube sweeps for smoke runs.
  const bool quick = cli.get_bool("quick", false);
  const std::vector<std::uint32_t> mappings =
      quick ? std::vector<std::uint32_t>{1, 4}
            : std::vector<std::uint32_t>{1, 2, 4};
  const std::vector<std::uint32_t> edges =
      quick ? std::vector<std::uint32_t>{22, 30}
            : std::vector<std::uint32_t>{22, 25, 28, 30, 32, 36};

  am::measure::SimBackend backend(ctx.machine, ctx.seed);
  auto lulesh_cfg = [&](std::uint32_t edge) {
    auto cfg = am::apps::LuleshConfig::paper(edge, ctx.scale);
    cfg.steps = steps;
    return cfg;
  };

  std::vector<Run> runs;
  for (const std::uint32_t p : mappings) {
    const std::uint32_t free_cores = ctx.machine.cores_per_socket - p;
    for (std::uint32_t k = 0; k <= std::min(max_cs, free_cores); ++k)
      runs.push_back({"map", am::measure::Resource::kCacheStorage, k, p, 22});
    for (std::uint32_t k = 1; k <= std::min(max_bw, free_cores); ++k)
      runs.push_back({"map", am::measure::Resource::kBandwidth, k, p, 22});
  }
  for (const std::uint32_t edge : edges) {
    for (std::uint32_t k = 0; k <= max_cs; ++k)
      runs.push_back({"cube", am::measure::Resource::kCacheStorage, k, 1,
                      edge});
    for (std::uint32_t k = 1; k <= max_bw; ++k)
      runs.push_back({"cube", am::measure::Resource::kBandwidth, k, 1, edge});
  }

  am::ThreadPool pool;
  for (auto& run : runs) {
    pool.submit([&ctx, &backend, &lulesh_cfg, &run, ranks] {
      am::measure::InterferenceSpec spec =
          run.resource == am::measure::Resource::kCacheStorage
              ? am::measure::InterferenceSpec::storage(run.threads,
                                                       ctx.cs_config())
              : am::measure::InterferenceSpec::bandwidth(run.threads,
                                                         ctx.bw_config());
      const auto result = backend.run(
          am::measure::make_lulesh_workload(ranks, run.per_socket,
                                            lulesh_cfg(run.edge)),
          spec);
      run.seconds = result.seconds;
    });
  }
  pool.wait_idle();

  auto baseline = [&](const std::string& label, std::uint32_t p,
                      std::uint32_t edge) {
    for (const auto& r : runs)
      if (r.label == label && r.per_socket == p && r.edge == edge &&
          r.threads == 0 &&
          r.resource == am::measure::Resource::kCacheStorage)
        return r.seconds;
    return 0.0;
  };

  for (const auto resource : {am::measure::Resource::kCacheStorage,
                              am::measure::Resource::kBandwidth}) {
    am::Table t({"p/processor", "threads", "time (ms)", "slowdown"});
    for (const auto& r : runs) {
      if (r.label != "map" || r.resource != resource) continue;
      if (resource == am::measure::Resource::kBandwidth && r.threads == 0)
        continue;
      t.add_row({std::to_string(r.per_socket), std::to_string(r.threads),
                 am::Table::num(r.seconds * 1e3, 2),
                 am::Table::num(r.seconds / baseline("map", r.per_socket, 22),
                                3)});
    }
    am::bench::emit(t, ctx,
                    std::string("Fig. 11 top: Lulesh 22^3, mapping sweep vs ") +
                        am::measure::resource_name(resource) +
                        " interference");
  }

  for (const auto resource : {am::measure::Resource::kCacheStorage,
                              am::measure::Resource::kBandwidth}) {
    am::Table t({"cube edge", "threads", "time (ms)", "slowdown"});
    for (const auto& r : runs) {
      if (r.label != "cube" || r.resource != resource) continue;
      if (resource == am::measure::Resource::kBandwidth && r.threads == 0)
        continue;
      t.add_row({std::to_string(r.edge), std::to_string(r.threads),
                 am::Table::num(r.seconds * 1e3, 2),
                 am::Table::num(r.seconds / baseline("cube", 1, r.edge), 3)});
    }
    am::bench::emit(t, ctx,
                    std::string("Fig. 11 bottom: Lulesh cube sweep (1 "
                                "process/processor) vs ") +
                        am::measure::resource_name(resource) +
                        " interference");
  }
  return 0;
}

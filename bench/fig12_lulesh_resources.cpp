// Fig. 12 of the paper: Lulesh per-process resource consumption vs mapping,
// for 22^3 and 36^3 per-rank cubes, via the §IV bounds recipe.
//
// Paper reference shape: 22^3 processes need ~3.5-7 MB of L3, 36^3
// processes ~7-20 MB (overflowing); per-process bandwidth use rises as
// processes spread out, and (for 22^3) storage use rises too because MPI
// buffers linger in cache during cross-socket transfers.
#include "bench_util.hpp"
#include "measure/active_measurer.hpp"
#include "measure/app_workloads.hpp"
#include "measure/calibration.hpp"

namespace {

int fig12(const am::Cli& cli, am::bench::BenchContext& ctx) {
  const auto ranks = static_cast<std::uint32_t>(cli.get_int("ranks", 64));
  const auto steps = static_cast<std::uint32_t>(cli.get_int("steps", 2));
  const double tolerance = cli.get_double("tolerance", 0.05);
  // --quick trims calibration and the cube/mapping sweeps for smoke runs.
  const bool quick = cli.get_bool("quick", false);
  const std::vector<std::uint32_t> edges =
      quick ? std::vector<std::uint32_t>{22}
            : std::vector<std::uint32_t>{22, 36};
  const std::vector<std::uint32_t> mappings =
      quick ? std::vector<std::uint32_t>{1, 4}
            : std::vector<std::uint32_t>{1, 2, 4};
  const std::uint32_t sweep_cs = quick ? 2 : 5;
  const std::uint32_t sweep_bw = quick ? 1 : 2;

  // Constructed before calibration: flag-pairing errors (e.g. --shard
  // without --results-dir) must fire before minutes of calibration work.
  auto store = am::bench::make_store(ctx);

  am::measure::CalibrationOptions copts;
  copts.max_threads = quick ? 2 : 5;
  copts.buffer_to_l3_ratios = {2.5};
  copts.probe_distributions = {9};
  copts.accesses_per_probe = quick ? 20'000 : 150'000;
  copts.seed = ctx.seed;
  const auto cap_calib =
      am::measure::calibrate_capacity(ctx.machine, ctx.cs_config(), copts);
  const auto bw_calib = am::measure::calibrate_bandwidth(
      ctx.machine, ctx.bw_config(), 2, ctx.seed);

  am::measure::SimBackend backend(ctx.machine, ctx.seed);
  am::measure::ActiveMeasurer measurer(backend, cap_calib, bw_calib);
  am::ThreadPool pool;
  measurer.set_pool(&pool);
  measurer.set_store(store.store(), store.checkpointer());

  // Every (edge × mapping) cell goes into one grid: both resources of a
  // cell share one baseline run and the whole plan runs over the pool.
  // Names embed every run-shaping parameter — they key the ResultStore.
  std::vector<am::measure::GridRequest> requests;
  for (const std::uint32_t edge : edges) {
    auto cfg = am::apps::LuleshConfig::paper(edge, ctx.scale);
    cfg.steps = steps;
    for (const std::uint32_t p : mappings)
      requests.push_back(
          {am::measure::make_lulesh_workload(ranks, p, cfg),
           "lulesh r" + std::to_string(ranks) + " s" + std::to_string(steps) +
               " cube " + std::to_string(edge) + "^3 p=" + std::to_string(p),
           std::min(sweep_cs, ctx.machine.cores_per_socket - p),
           std::min(sweep_bw, ctx.machine.cores_per_socket - p)});
  }
  if (am::bench::grid_worker_modes(ctx, measurer, requests, store,
                                   ctx.cs_config(), ctx.bw_config()))
    return 0;  // worker/probe: merge the stores, then re-run to print
  const auto sweeps =
      measurer.sweep_grid(requests, ctx.cs_config(), ctx.bw_config());
  store.finish(measurer.last_executed(), measurer.last_planned(), std::cout);

  const double mb = 1024.0 * 1024.0;
  std::size_t cell = 0;
  for (const std::uint32_t edge : edges) {
    am::Table t({"p/processor", "capacity lo (MB)", "capacity hi (MB)",
                 "bandwidth lo (GB/s)", "bandwidth hi (GB/s)"});
    for (const std::uint32_t p : mappings) {
      const auto& grid = sweeps[cell++];
      const auto cs_bounds =
          am::measure::ActiveMeasurer::bounds(grid.storage, p, tolerance);
      const auto bw_bounds =
          am::measure::ActiveMeasurer::bounds(grid.bandwidth, p, tolerance);
      auto cap_str = [&](double v) {
        return am::Table::num(v / mb * ctx.scale, 2);
      };
      t.add_row({std::to_string(p), cap_str(cs_bounds.lower),
                 cap_str(cs_bounds.upper),
                 am::Table::num(bw_bounds.lower / 1e9, 2),
                 am::Table::num(bw_bounds.upper / 1e9, 2)});
    }
    am::bench::emit(t, ctx,
                    "Fig. 12: Lulesh " + std::to_string(edge) +
                        "^3 per-process resource use vs mapping "
                        "(capacities rescaled to the 20 MB machine)");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return am::bench::run_driver(argc, argv, "fig12_lulesh_resources",
                               /*default_scale=*/16, /*nodes=*/32, fig12);
}

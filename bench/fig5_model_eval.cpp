// Fig. 5 of the paper: accuracy of the EHR model (Eq. 4) without
// interference. For each buffer size, run all ten Table II distributions,
// compare the measured L3 miss rate to the model's prediction for the full
// L3, and report avg |error| and stddev across the distributions.
//
// Paper reference shape: average absolute error < 10% everywhere, avg+std
// <= 15%, error shrinking as buffers grow (associativity effects fade),
// < 5% once miss rates exceed ~50%.
#include <atomic>

#include "bench_util.hpp"
#include "model/distributions.hpp"

int main(int argc, char** argv) {
  am::Cli cli(argc, argv);
  const auto ctx = am::bench::make_context(cli, /*default_scale=*/16);
  const auto num_sizes =
      static_cast<std::size_t>(cli.get_int("sizes", cli.get_bool("full", false) ? 22 : 8));
  const auto accesses = static_cast<std::uint64_t>(
      cli.get_int("accesses", 300'000));

  const auto sizes = ctx.paper_buffer_bytes(num_sizes);
  struct Cell {
    double measured = 0.0, predicted = 0.0;
  };
  std::vector<std::vector<Cell>> grid(sizes.size(),
                                      std::vector<Cell>(10));

  am::ThreadPool pool;
  std::atomic<std::size_t> done{0};
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    for (std::size_t di = 0; di < 10; ++di) {
      pool.submit([&, si, di] {
        const std::uint64_t elements = sizes[si] / 4;
        const auto dist =
            am::model::AccessDistribution::table2(elements)[di];
        const auto outcome =
            am::bench::run_synth_experiment(ctx, dist, 1, 0, accesses);
        const am::model::EhrModel model(dist, 4);
        grid[si][di] = {outcome.miss_rate,
                        model.expected_miss_rate(ctx.machine.l3.size_bytes)};
        ++done;
      });
    }
  }
  pool.wait_idle();

  am::Table t({"Buffer", "Avg miss (meas)", "Avg miss (model)",
               "Avg |error|", "Stddev |error|", "Avg+Std"});
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    am::RunningStats err, meas, pred;
    for (const auto& cell : grid[si]) {
      err.add(std::abs(cell.measured - cell.predicted));
      meas.add(cell.measured);
      pred.add(cell.predicted);
    }
    t.add_row({am::format_bytes(static_cast<double>(sizes[si])),
               am::Table::num(meas.mean(), 3), am::Table::num(pred.mean(), 3),
               am::Table::num(err.mean(), 3), am::Table::num(err.stddev(), 3),
               am::Table::num(err.mean() + err.stddev(), 3)});
  }
  am::bench::emit(t, ctx,
                  "Fig. 5: EHR model error vs buffer size "
                  "(paper: avg < 0.10, avg+std <= 0.15, shrinking with size)");
  return 0;
}

// Fig. 6 of the paper: effective cache capacity available to the synthetic
// benchmarks under 0..5 CSThrs, for three compute intensities (1, 10, 100
// integer ops between loads). Each chart cell aggregates the ten Table II
// distributions: mean effective capacity (inverted Eq. 4) +- stddev.
//
// Paper reference shape (20 MB L3, 4 MB CSThr buffers):
//   k=0 -> ~20 MB, k=1 -> ~15 MB, k=2 -> ~12 MB, k=3 -> ~7 MB,
//   k=4 -> ~5 MB, k=5 -> ~2.5 MB; dispersion grows with access frequency
//   (i.e. is largest for the 1-op variant under heavy interference).
#include <atomic>

#include "bench_util.hpp"
#include "model/distributions.hpp"

int main(int argc, char** argv) {
  am::Cli cli(argc, argv);
  const auto ctx = am::bench::make_context(cli, /*default_scale=*/16);
  const bool full = cli.get_bool("full", false);
  const auto num_sizes =
      static_cast<std::size_t>(cli.get_int("sizes", full ? 22 : 3));
  const auto num_dists =
      static_cast<std::size_t>(cli.get_int("dists", full ? 10 : 4));
  const auto max_threads =
      static_cast<std::uint32_t>(cli.get_int("max-threads", 5));
  const auto accesses =
      static_cast<std::uint64_t>(cli.get_int("accesses", 150'000));
  const std::vector<std::uint32_t> ops_levels{1, 10, 100};

  const auto sizes = ctx.paper_buffer_bytes(num_sizes);

  struct Key {
    std::size_t ops_i, k, size_i, dist_i;
  };
  std::vector<Key> jobs;
  for (std::size_t oi = 0; oi < ops_levels.size(); ++oi)
    for (std::uint32_t k = 0; k <= max_threads; ++k)
      for (std::size_t si = 0; si < sizes.size(); ++si)
        for (std::size_t di = 0; di < num_dists; ++di)
          jobs.push_back({oi, k, si, di});

  std::vector<double> capacity(jobs.size());
  am::ThreadPool pool;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    pool.submit([&, j] {
      const auto& key = jobs[j];
      const std::uint64_t elements = sizes[key.size_i] / 4;
      const auto dist =
          am::model::AccessDistribution::table2(elements)[key.dist_i];
      const auto outcome = am::bench::run_synth_experiment(
          ctx, dist, ops_levels[key.ops_i],
          static_cast<std::uint32_t>(key.k), accesses);
      capacity[j] = outcome.effective_capacity;
    });
  }
  pool.wait_idle();

  const double mb = 1024.0 * 1024.0;
  for (std::size_t oi = 0; oi < ops_levels.size(); ++oi) {
    am::Table t({"CSThrs", "Eff. capacity mean (MB)", "Stddev (MB)",
                 "Paper @20MB (MB)"});
    const char* paper_ref[] = {"20", "15", "12", "7", "5", "2.5"};
    for (std::uint32_t k = 0; k <= max_threads; ++k) {
      am::RunningStats agg;
      for (std::size_t j = 0; j < jobs.size(); ++j)
        if (jobs[j].ops_i == oi && jobs[j].k == k) agg.add(capacity[j]);
      t.add_row({std::to_string(k), am::Table::num(agg.mean() / mb, 3),
                 am::Table::num(agg.stddev() / mb, 3),
                 k < 6 ? paper_ref[k] : "-"});
    }
    am::bench::emit(
        t, ctx,
        "Fig. 6: effective capacity under CSThr interference, " +
            std::to_string(ops_levels[oi]) + " int op(s) between loads" +
            " (paper column assumes the unscaled 20 MB L3)");
  }
  return 0;
}

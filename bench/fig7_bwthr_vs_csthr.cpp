// Fig. 7 of the paper: orthogonality, part 1. One BWThr runs while 0..5
// CSThrs interfere on the same socket. Reported per CSThr count: the
// BWThr's memory bandwidth, its L3 miss rate, and the time to complete a
// fixed number of main-loop iterations.
//
// Paper reference shape: all three metrics stay flat — CSThrs do not
// disturb the bandwidth thread.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  am::Cli cli(argc, argv);
  const auto ctx = am::bench::make_context(cli, /*default_scale=*/8);
  const auto max_threads =
      static_cast<std::uint32_t>(cli.get_int("max-threads", 5));
  // Paper: time for 1e7 iterations; scaled down for bench runtime.
  const auto iterations = static_cast<std::uint64_t>(
      cli.get_int("iterations", cli.get_bool("full", false) ? 10'000'000
                                                            : 10'000));

  am::Table t({"CSThrs", "BWThr GB/s", "BWThr L3 miss rate",
               "Time for iterations (ms)"});
  for (std::uint32_t k = 0; k <= max_threads; ++k) {
    am::sim::Engine engine(ctx.machine, ctx.seed);

    // The BWThr is the primary here: it finishes after `iterations` rounds.
    struct BoundedBW final : am::sim::Agent {
      BoundedBW(am::sim::MemorySystem& ms, am::interfere::BWThrConfig cfg,
                std::uint64_t target)
          : am::sim::Agent("bwthr"), inner(ms, cfg), target_(target) {}
      void step(am::sim::AgentContext& ctx2) override { inner.step(ctx2); }
      bool finished() const override { return inner.iterations() >= target_; }
      am::interfere::BWThrAgent inner;
      std::uint64_t target_;
    };
    auto bw = std::make_unique<BoundedBW>(engine.memory(), ctx.bw_config(),
                                          iterations);
    const auto idx = engine.add_agent(std::move(bw), 0);
    for (std::uint32_t i = 0; i < k; ++i)
      engine.add_agent(std::make_unique<am::interfere::CSThrAgent>(
                           engine.memory(), ctx.cs_config()),
                       1 + i, /*primary=*/false);
    const am::sim::Cycles end = engine.run();
    const double seconds = ctx.machine.cycles_to_seconds(end);
    const auto& ctr = engine.agent_counters(idx);
    t.add_row({std::to_string(k),
               am::Table::num(
                   static_cast<double>(ctr.bytes_from_mem) / seconds / 1e9, 2),
               am::Table::num(static_cast<double>(ctr.mem_accesses) /
                                  static_cast<double>(ctr.loads),
                              3),
               am::Table::num(seconds * 1e3, 2)});
  }
  am::bench::emit(t, ctx,
                  "Fig. 7: BWThr behaviour vs CSThr count (paper: flat)");
  return 0;
}

// Fig. 8 of the paper: orthogonality, part 2. One CSThr runs while 0..5
// BWThrs interfere. Reported per BWThr count: the CSThr's memory
// bandwidth, L3 miss rate, and the average time of one
// read-add-write operation.
//
// Paper reference shape: a lone CSThr uses very little bandwidth; 1-2
// BWThrs barely affect it, 3+ BWThrs start stealing cache capacity, which
// raises the CSThr's miss rate, op time and bandwidth use.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  am::Cli cli(argc, argv);
  const auto ctx = am::bench::make_context(cli, /*default_scale=*/8);
  const auto max_threads =
      static_cast<std::uint32_t>(cli.get_int("max-threads", 5));
  const auto operations = static_cast<std::uint64_t>(
      cli.get_int("operations", cli.get_bool("full", false) ? 10'000'000
                                                            : 400'000));

  am::Table t({"BWThrs", "CSThr GB/s", "CSThr L3 miss rate",
               "ns per read+add+write"});
  for (std::uint32_t k = 0; k <= max_threads; ++k) {
    am::sim::Engine engine(ctx.machine, ctx.seed);

    struct BoundedCS final : am::sim::Agent {
      BoundedCS(am::sim::MemorySystem& ms, am::interfere::CSThrConfig cfg,
                std::uint64_t target)
          : am::sim::Agent("csthr"), inner(ms, cfg), target_(target) {}
      void step(am::sim::AgentContext& ctx2) override { inner.step(ctx2); }
      bool finished() const override { return inner.operations() >= target_; }
      am::interfere::CSThrAgent inner;
      std::uint64_t target_;
    };
    auto cs = std::make_unique<BoundedCS>(engine.memory(), ctx.cs_config(),
                                          operations);
    const auto idx = engine.add_agent(std::move(cs), 0);
    for (std::uint32_t i = 0; i < k; ++i)
      engine.add_agent(std::make_unique<am::interfere::BWThrAgent>(
                           engine.memory(), ctx.bw_config()),
                       1 + i, /*primary=*/false);
    const am::sim::Cycles end = engine.run();
    const double seconds = ctx.machine.cycles_to_seconds(end);
    const auto& ctr = engine.agent_counters(idx);
    t.add_row({std::to_string(k),
               am::Table::num(
                   static_cast<double>(ctr.bytes_from_mem) / seconds / 1e9, 3),
               am::Table::num(ctr.l3_miss_rate(), 3),
               am::Table::num(seconds * 1e9 / static_cast<double>(operations),
                              2)});
  }
  am::bench::emit(t, ctx,
                  "Fig. 8: CSThr behaviour vs BWThr count "
                  "(paper: flat through 2 BWThrs, degrading at 3+)");
  return 0;
}

// Fig. 9 of the paper: MCB (24 MPI ranks) performance degradation under
// interference.
//   Top charts:    20k particles, process mappings p in {1,2,3,4,6} per
//                  processor, vs number of CSThrs (left) / BWThrs (right).
//   Bottom charts: 1 process per processor, particle counts 20k..260k.
//
// Paper reference shape: (a) the more processes per processor, the fewer
// CSThrs it takes to degrade; (b) with 20k-260k particles, <= 3 CSThrs
// cause little degradation while 4-5 cause ~20-25%; (c) BW interference
// impact grows to ~90k particles, then falls as MCB becomes compute-bound.
#include <atomic>

#include "bench_util.hpp"
#include "measure/app_workloads.hpp"
#include "measure/sim_backend.hpp"

namespace {

struct Run {
  std::string label;
  am::measure::Resource resource;
  std::uint32_t threads;
  std::uint32_t per_socket;
  std::uint32_t particles;
  double seconds = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  am::Cli cli(argc, argv);
  auto ctx = am::bench::make_context(cli, /*default_scale=*/16, /*nodes=*/12);
  const auto ranks = static_cast<std::uint32_t>(cli.get_int("ranks", 24));
  const auto steps = static_cast<std::uint32_t>(cli.get_int("steps", 3));
  const auto max_cs = static_cast<std::uint32_t>(cli.get_int("max-cs", 5));
  const auto max_bw = static_cast<std::uint32_t>(cli.get_int("max-bw", 2));
  // --quick trims the hard-coded mapping/particle sweeps for smoke runs.
  const bool quick = cli.get_bool("quick", false);
  const std::vector<std::uint32_t> mappings =
      quick ? std::vector<std::uint32_t>{1, 4}
            : std::vector<std::uint32_t>{1, 2, 3, 4, 6};
  const std::vector<std::uint32_t> particle_counts =
      quick ? std::vector<std::uint32_t>{20'000, 90'000}
            : std::vector<std::uint32_t>{20'000, 60'000, 90'000, 140'000,
                                         180'000, 220'000, 260'000};

  am::measure::SimBackend backend(ctx.machine, ctx.seed);
  auto mcb_cfg = [&](std::uint32_t particles) {
    auto cfg = am::apps::McbConfig::paper(particles, ctx.scale);
    cfg.steps = steps;
    return cfg;
  };

  std::vector<Run> runs;
  // Top: mapping sweep at 20k particles.
  for (const std::uint32_t p : mappings) {
    const std::uint32_t free_cores = ctx.machine.cores_per_socket - p;
    for (std::uint32_t k = 0; k <= std::min(max_cs, free_cores); ++k)
      runs.push_back({"map", am::measure::Resource::kCacheStorage, k, p,
                      20'000});
    for (std::uint32_t k = 1; k <= std::min(max_bw, free_cores); ++k)
      runs.push_back({"map", am::measure::Resource::kBandwidth, k, p,
                      20'000});
  }
  // Bottom: particle sweep at 1 process per processor.
  for (const std::uint32_t particles : particle_counts) {
    for (std::uint32_t k = 0; k <= max_cs; ++k)
      runs.push_back({"particles", am::measure::Resource::kCacheStorage, k, 1,
                      particles});
    for (std::uint32_t k = 1; k <= max_bw; ++k)
      runs.push_back({"particles", am::measure::Resource::kBandwidth, k, 1,
                      particles});
  }

  am::ThreadPool pool;
  for (auto& run : runs) {
    pool.submit([&ctx, &backend, &mcb_cfg, &run, ranks] {
      am::measure::InterferenceSpec spec =
          run.resource == am::measure::Resource::kCacheStorage
              ? am::measure::InterferenceSpec::storage(run.threads,
                                                       ctx.cs_config())
              : am::measure::InterferenceSpec::bandwidth(run.threads,
                                                         ctx.bw_config());
      const auto result = backend.run(
          am::measure::make_mcb_workload(ranks, run.per_socket,
                                         mcb_cfg(run.particles)),
          spec);
      run.seconds = result.seconds;
    });
  }
  pool.wait_idle();

  auto baseline = [&](const std::string& label, std::uint32_t p,
                      std::uint32_t particles) {
    for (const auto& r : runs)
      if (r.label == label && r.per_socket == p && r.particles == particles &&
          r.threads == 0 &&
          r.resource == am::measure::Resource::kCacheStorage)
        return r.seconds;
    return 0.0;
  };

  for (const auto resource : {am::measure::Resource::kCacheStorage,
                              am::measure::Resource::kBandwidth}) {
    am::Table t({"p/processor", "threads", "time (ms)", "slowdown"});
    for (const auto& r : runs) {
      if (r.label != "map" || r.resource != resource) continue;
      if (resource == am::measure::Resource::kBandwidth && r.threads == 0)
        continue;
      const double base = baseline("map", r.per_socket, 20'000);
      t.add_row({std::to_string(r.per_socket), std::to_string(r.threads),
                 am::Table::num(r.seconds * 1e3, 2),
                 am::Table::num(r.seconds / base, 3)});
    }
    am::bench::emit(t, ctx,
                    std::string("Fig. 9 top: MCB 20k particles, mapping "
                                "sweep vs ") +
                        am::measure::resource_name(resource) +
                        " interference");
  }

  for (const auto resource : {am::measure::Resource::kCacheStorage,
                              am::measure::Resource::kBandwidth}) {
    am::Table t({"particles", "threads", "time (ms)", "slowdown"});
    for (const auto& r : runs) {
      if (r.label != "particles" || r.resource != resource) continue;
      if (resource == am::measure::Resource::kBandwidth && r.threads == 0)
        continue;
      const double base = baseline("particles", 1, r.particles);
      t.add_row({std::to_string(r.particles), std::to_string(r.threads),
                 am::Table::num(r.seconds * 1e3, 2),
                 am::Table::num(r.seconds / base, 3)});
    }
    am::bench::emit(t, ctx,
                    std::string("Fig. 9 bottom: MCB particle sweep (1 "
                                "process/processor) vs ") +
                        am::measure::resource_name(resource) +
                        " interference");
  }
  return 0;
}

// Fig. 9 of the paper: MCB (24 MPI ranks) performance degradation under
// interference.
//   Top charts:    20k particles, process mappings p in {1,2,3,4,6} per
//                  processor, vs number of CSThrs (left) / BWThrs (right).
//   Bottom charts: 1 process per processor, particle counts 20k..260k.
//
// Paper reference shape: (a) the more processes per processor, the fewer
// CSThrs it takes to degrade; (b) with 20k-260k particles, <= 3 CSThrs
// cause little degradation while 4-5 cause ~20-25%; (c) BW interference
// impact grows to ~90k particles, then falls as MCB becomes compute-bound.
#include "bench_util.hpp"
#include "measure/app_workloads.hpp"
#include "measure/experiment_plan.hpp"

namespace {
using am::measure::Resource;
}  // namespace

namespace {

int fig9(const am::Cli& cli, am::bench::BenchContext& ctx) {
  const auto ranks = static_cast<std::uint32_t>(cli.get_int("ranks", 24));
  const auto steps = static_cast<std::uint32_t>(cli.get_int("steps", 3));
  const auto max_cs = static_cast<std::uint32_t>(cli.get_int("max-cs", 5));
  const auto max_bw = static_cast<std::uint32_t>(cli.get_int("max-bw", 2));
  // --quick trims the hard-coded mapping/particle sweeps for smoke runs.
  const bool quick = cli.get_bool("quick", false);
  const std::vector<std::uint32_t> mappings =
      quick ? std::vector<std::uint32_t>{1, 4}
            : std::vector<std::uint32_t>{1, 2, 3, 4, 6};
  const std::vector<std::uint32_t> particle_counts =
      quick ? std::vector<std::uint32_t>{20'000, 90'000}
            : std::vector<std::uint32_t>{20'000, 60'000, 90'000, 140'000,
                                         180'000, 220'000, 260'000};

  auto mcb_cfg = [&](std::uint32_t particles) {
    auto cfg = am::apps::McbConfig::paper(particles, ctx.scale);
    cfg.steps = steps;
    return cfg;
  };

  // Declare the whole grid once; the runner owns pooling, seeds and the
  // baseline table.
  // Workload names embed every parameter that shapes the runs (ranks,
  // steps, particles, mapping): the name is the workload's identity in the
  // ResultStore, so distinct configurations must never share one — while
  // the one cell both sweeps visit (p=1 × 20k particles) is memoized into
  // a single workload, so its runs are simulated and stored once.
  am::measure::ExperimentPlan plan;
  am::bench::CellMemo cells;
  auto cell = [&](std::uint32_t p, std::uint32_t particles) {
    return cells.get(plan, p, particles, [&] {
      return am::measure::WorkloadSpec{
          "mcb r" + std::to_string(ranks) + " s" + std::to_string(steps) +
              " map p=" + std::to_string(p) + " particles=" +
              std::to_string(particles),
          am::measure::make_mcb_workload(ranks, p, mcb_cfg(particles))};
    });
  };
  std::vector<am::bench::DegradationRow> rows;
  // Top: mapping sweep at 20k particles.
  for (const std::uint32_t p : mappings) {
    const std::uint32_t free_cores = ctx.machine.cores_per_socket - p;
    const auto id = cell(p, 20'000);
    plan.add_sweep(id, Resource::kCacheStorage, 0,
                   std::min(max_cs, free_cores));
    plan.add_sweep(id, Resource::kBandwidth, 0, std::min(max_bw, free_cores));
    rows.push_back({id, "map", p});
  }
  // Bottom: particle sweep at 1 process per processor.
  for (const std::uint32_t particles : particle_counts) {
    const auto id = cell(1, particles);
    plan.add_sweep(id, Resource::kCacheStorage, 0, max_cs);
    plan.add_sweep(id, Resource::kBandwidth, 0, max_bw);
    rows.push_back({id, "particles", particles});
  }

  auto store = am::bench::make_store(ctx);
  am::measure::SweepRunnerOptions opts;
  opts.seed = ctx.seed;
  opts.mix_seed_per_point = false;  // all levels share the workload seed
  opts.cs = ctx.cs_config();
  opts.bw = ctx.bw_config();
  opts.checkpoint = store.checkpointer();  // keep finished runs on a crash
  const am::measure::SweepRunner runner(ctx.machine, opts);
  am::ThreadPool pool;
  const auto table =
      am::bench::execute_plan(ctx, plan, runner, store, &pool);
  if (!table) return 0;  // worker/probe: output is store or plan files

  am::bench::emit_degradation_tables(
      *table, rows, "map", "p/processor",
      "Fig. 9 top: MCB 20k particles, mapping sweep vs ", ctx);
  am::bench::emit_degradation_tables(
      *table, rows, "particles", "particles",
      "Fig. 9 bottom: MCB particle sweep (1 process/processor) vs ", ctx);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return am::bench::run_driver(argc, argv, "fig9_mcb_degradation",
                               /*default_scale=*/16, /*nodes=*/12, fig9);
}

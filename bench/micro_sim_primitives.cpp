// google-benchmark microbenchmarks for the simulator's hot primitives:
// cache lookups, hierarchy walks, distribution sampling. These guard the
// simulation throughput that makes the full-figure sweeps laptop-feasible.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "model/distributions.hpp"
#include "sim/memory_system.hpp"

namespace {

void BM_CacheHit(benchmark::State& state) {
  am::sim::Cache cache({32 * 1024, 64, 8, "L1"});
  cache.access(42, 0);
  for (auto _ : state) benchmark::DoNotOptimize(cache.access(42, 0).hit);
}
BENCHMARK(BM_CacheHit);

void BM_CacheMissEvict(benchmark::State& state) {
  am::sim::Cache cache({32 * 1024, 64, 8, "L1"});
  am::sim::Addr line = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(cache.access(line++, 0).evicted);
}
BENCHMARK(BM_CacheMissEvict);

// The headline filter-fast-path workload tracked by scripts/bench_engine.py:
// an 8-byte sequential walk over an L1-resident buffer — every access is an
// L1 hit and 7 of 8 land on the set's MRU line, the access mix the filter
// exists for. Arg: MachineConfig::l1_filter off (0) / on (1). Every access
// advances simulated time by exactly l1_latency, so simulated cycles/sec is
// items/sec x l1_latency.
void BM_L1HitSequential(benchmark::State& state) {
  auto cfg = am::sim::MachineConfig::xeon20mb_scaled(16);
  cfg.l1_filter = state.range(0) != 0;
  am::sim::MemorySystem ms(cfg);
  const std::uint64_t bytes = cfg.l1.size_bytes;  // power of two
  const am::sim::Addr base = ms.alloc(bytes, bytes);
  am::sim::Cycles now = 0;
  std::uint64_t off = 0;
  for (auto _ : state) {
    const auto res =
        ms.access(0, base + off, am::sim::AccessKind::kLoad, now);
    now = res.complete;
    off = (off + 8) & (bytes - 1);
    benchmark::DoNotOptimize(res.complete);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_L1HitSequential)->Arg(0)->Arg(1);

void BM_HierarchyWalkRandom(benchmark::State& state) {
  auto cfg = am::sim::MachineConfig::xeon20mb_scaled(
      static_cast<std::uint32_t>(state.range(0)));
  cfg.prefetcher.enabled = state.range(1) != 0;
  am::sim::MemorySystem ms(cfg);
  const am::sim::Addr base = ms.alloc(cfg.l3.size_bytes * 2);
  const std::uint64_t lines = cfg.l3.size_bytes * 2 / 64;
  am::Rng rng(7);
  am::sim::Cycles now = 0;
  for (auto _ : state) {
    const auto res = ms.access(0, base + rng.bounded(lines) * 64,
                               am::sim::AccessKind::kLoad, now);
    now = res.complete;
    benchmark::DoNotOptimize(res.level);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HierarchyWalkRandom)->Args({16, 0})->Args({16, 1})->Args({1, 0});

// The memory-backend-path workload tracked by scripts/bench_engine.py:
// a 64-byte-strided walk over a buffer 8x the (scaled) L3, so nearly every
// access misses through to the backend — host cost is dominated by the
// hierarchy walk plus the backend's scheduling arithmetic, which is what
// the banked model adds. Arg: MachineConfig::mem_backend, channel (0) /
// banked ddr4 (1).
void BM_DramBoundStream(benchmark::State& state) {
  auto cfg = am::sim::MachineConfig::xeon20mb_scaled(16);
  if (state.range(0) != 0) am::sim::apply_mem_backend(cfg, "ddr4");
  am::sim::MemorySystem ms(cfg);
  const std::uint64_t bytes = cfg.l3.size_bytes * 8;
  const std::uint64_t lines = bytes / 64;
  const am::sim::Addr base = ms.alloc(bytes);
  am::sim::Cycles now = 0;
  std::uint64_t line = 0;
  for (auto _ : state) {
    const auto res = ms.access(0, base + line * 64,
                               am::sim::AccessKind::kLoad, now);
    now = res.complete;
    line = (line + 1) % lines;
    benchmark::DoNotOptimize(res.complete);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramBoundStream)->Arg(0)->Arg(1);

// The L2-filter-band workload tracked by scripts/bench_engine.py: ways+1
// lines strided to share one L1 set (cyclic LRU -> 100% L1 misses) while
// owning distinct L2 sets (the L2 is enlarged 8x so the strides spread),
// each warm-placed at the deepest way behind 7 fillers — so with the L2
// filter off every access pays the full-depth L2 walk, and with it on the
// set's MRU slot resolves it in one compare. Arg: MachineConfig::l2_filter
// off (0) / on (1).
void BM_L2HitBand(benchmark::State& state) {
  auto cfg = am::sim::MachineConfig::xeon20mb_scaled(16);
  cfg.l2.size_bytes *= 8;  // 256 L2 sets: hot lines land in distinct sets
  cfg.l2_filter = state.range(0) != 0;
  am::sim::MemorySystem ms(cfg);
  const std::uint64_t l1_sets = cfg.l1.num_sets();
  const std::uint64_t l2_sets = cfg.l2.num_sets();
  const std::uint32_t hot = cfg.l1.ways + 1;
  const am::sim::Addr base = ms.alloc(cfg.l2.size_bytes, cfg.l2.size_bytes);
  const auto addr_of = [&](std::uint64_t i, std::uint64_t filler) {
    // Same L1 set for every i (stride = l1 set count); same L2 set for
    // every filler of a given i (stride = l2 set count).
    return base + (i + filler * l2_sets) * l1_sets * 64;
  };
  am::sim::Cycles now = 0;
  // Warm: 7 fillers then the hot line per set, so the hot line sits at
  // the set's deepest way with the filler tags probed before it.
  for (std::uint64_t i = 0; i < hot; ++i) {
    for (std::uint64_t f = 1; f < cfg.l2.ways; ++f)
      now = ms.access(0, addr_of(i, f), am::sim::AccessKind::kLoad, now)
                .complete;
    now = ms.access(0, addr_of(i, 0), am::sim::AccessKind::kLoad, now)
              .complete;
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    const auto res =
        ms.access(0, addr_of(i, 0), am::sim::AccessKind::kLoad, now);
    now = res.complete;
    i = i + 1 == hot ? 0 : i + 1;
    benchmark::DoNotOptimize(res.complete);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_L2HitBand)->Arg(0)->Arg(1);

// The access_batch software-pipelining workload tracked by
// scripts/bench_engine.py: 64-access random batches over a 4x-L3 buffer,
// the miss-heavy shape the line-fill-buffer window models. The pipelining
// (next access's L1 set prefetched while the current one retires) has no
// toggle — it cannot change simulated results — so this tracks absolute
// batch throughput.
void BM_BatchPipelined(benchmark::State& state) {
  auto cfg = am::sim::MachineConfig::xeon20mb_scaled(16);
  am::sim::MemorySystem ms(cfg);
  const std::uint64_t bytes = cfg.l3.size_bytes * 4;
  const std::uint64_t lines = bytes / 64;
  const am::sim::Addr base = ms.alloc(bytes);
  am::Rng rng(11);
  std::vector<am::sim::Addr> batch(64);
  am::sim::Cycles now = 0;
  for (auto _ : state) {
    for (auto& a : batch) a = base + rng.bounded(lines) * 64;
    now = ms.access_batch(0, batch, am::sim::AccessKind::kLoad, now);
    benchmark::DoNotOptimize(now);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_BatchPipelined);

void BM_DistributionSample(benchmark::State& state) {
  const auto dists = am::model::AccessDistribution::table2(1 << 20);
  const auto& dist = dists[static_cast<std::size_t>(state.range(0))];
  am::Rng rng(3);
  for (auto _ : state) benchmark::DoNotOptimize(dist.sample(rng));
  state.SetLabel(dist.name());
}
BENCHMARK(BM_DistributionSample)->DenseRange(0, 9);

void BM_EngineStepOverhead(benchmark::State& state) {
  // Measures raw per-access engine cost with a same-line walker (the
  // filter's best case: 100% MRU hits). Arg: l1_filter off (0) / on (1).
  auto cfg = am::sim::MachineConfig::xeon20mb_scaled(16);
  cfg.l1_filter = state.range(0) != 0;
  am::sim::MemorySystem ms(cfg);
  const am::sim::Addr addr = ms.alloc(64);
  am::sim::Cycles now = 0;
  for (auto _ : state) {
    const auto res = ms.access(0, addr, am::sim::AccessKind::kLoad, now);
    now = res.complete;
    benchmark::DoNotOptimize(res.complete);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineStepOverhead)->Arg(0)->Arg(1);

}  // namespace

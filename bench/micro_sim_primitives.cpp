// google-benchmark microbenchmarks for the simulator's hot primitives:
// cache lookups, hierarchy walks, distribution sampling. These guard the
// simulation throughput that makes the full-figure sweeps laptop-feasible.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "model/distributions.hpp"
#include "sim/memory_system.hpp"

namespace {

void BM_CacheHit(benchmark::State& state) {
  am::sim::Cache cache({32 * 1024, 64, 8, "L1"});
  cache.access(42, 0);
  for (auto _ : state) benchmark::DoNotOptimize(cache.access(42, 0).hit);
}
BENCHMARK(BM_CacheHit);

void BM_CacheMissEvict(benchmark::State& state) {
  am::sim::Cache cache({32 * 1024, 64, 8, "L1"});
  am::sim::Addr line = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(cache.access(line++, 0).evicted);
}
BENCHMARK(BM_CacheMissEvict);

// The headline filter-fast-path workload tracked by scripts/bench_engine.py:
// an 8-byte sequential walk over an L1-resident buffer — every access is an
// L1 hit and 7 of 8 land on the set's MRU line, the access mix the filter
// exists for. Arg: MachineConfig::l1_filter off (0) / on (1). Every access
// advances simulated time by exactly l1_latency, so simulated cycles/sec is
// items/sec x l1_latency.
void BM_L1HitSequential(benchmark::State& state) {
  auto cfg = am::sim::MachineConfig::xeon20mb_scaled(16);
  cfg.l1_filter = state.range(0) != 0;
  am::sim::MemorySystem ms(cfg);
  const std::uint64_t bytes = cfg.l1.size_bytes;  // power of two
  const am::sim::Addr base = ms.alloc(bytes, bytes);
  am::sim::Cycles now = 0;
  std::uint64_t off = 0;
  for (auto _ : state) {
    const auto res =
        ms.access(0, base + off, am::sim::AccessKind::kLoad, now);
    now = res.complete;
    off = (off + 8) & (bytes - 1);
    benchmark::DoNotOptimize(res.complete);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_L1HitSequential)->Arg(0)->Arg(1);

void BM_HierarchyWalkRandom(benchmark::State& state) {
  auto cfg = am::sim::MachineConfig::xeon20mb_scaled(
      static_cast<std::uint32_t>(state.range(0)));
  cfg.prefetcher.enabled = state.range(1) != 0;
  am::sim::MemorySystem ms(cfg);
  const am::sim::Addr base = ms.alloc(cfg.l3.size_bytes * 2);
  const std::uint64_t lines = cfg.l3.size_bytes * 2 / 64;
  am::Rng rng(7);
  am::sim::Cycles now = 0;
  for (auto _ : state) {
    const auto res = ms.access(0, base + rng.bounded(lines) * 64,
                               am::sim::AccessKind::kLoad, now);
    now = res.complete;
    benchmark::DoNotOptimize(res.level);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HierarchyWalkRandom)->Args({16, 0})->Args({16, 1})->Args({1, 0});

// The memory-backend-path workload tracked by scripts/bench_engine.py:
// a 64-byte-strided walk over a buffer 8x the (scaled) L3, so nearly every
// access misses through to the backend — host cost is dominated by the
// hierarchy walk plus the backend's scheduling arithmetic, which is what
// the banked model adds. Arg: MachineConfig::mem_backend, channel (0) /
// banked ddr4 (1).
void BM_DramBoundStream(benchmark::State& state) {
  auto cfg = am::sim::MachineConfig::xeon20mb_scaled(16);
  if (state.range(0) != 0) am::sim::apply_mem_backend(cfg, "ddr4");
  am::sim::MemorySystem ms(cfg);
  const std::uint64_t bytes = cfg.l3.size_bytes * 8;
  const std::uint64_t lines = bytes / 64;
  const am::sim::Addr base = ms.alloc(bytes);
  am::sim::Cycles now = 0;
  std::uint64_t line = 0;
  for (auto _ : state) {
    const auto res = ms.access(0, base + line * 64,
                               am::sim::AccessKind::kLoad, now);
    now = res.complete;
    line = (line + 1) % lines;
    benchmark::DoNotOptimize(res.complete);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramBoundStream)->Arg(0)->Arg(1);

void BM_DistributionSample(benchmark::State& state) {
  const auto dists = am::model::AccessDistribution::table2(1 << 20);
  const auto& dist = dists[static_cast<std::size_t>(state.range(0))];
  am::Rng rng(3);
  for (auto _ : state) benchmark::DoNotOptimize(dist.sample(rng));
  state.SetLabel(dist.name());
}
BENCHMARK(BM_DistributionSample)->DenseRange(0, 9);

void BM_EngineStepOverhead(benchmark::State& state) {
  // Measures raw per-access engine cost with a same-line walker (the
  // filter's best case: 100% MRU hits). Arg: l1_filter off (0) / on (1).
  auto cfg = am::sim::MachineConfig::xeon20mb_scaled(16);
  cfg.l1_filter = state.range(0) != 0;
  am::sim::MemorySystem ms(cfg);
  const am::sim::Addr addr = ms.alloc(64);
  am::sim::Cycles now = 0;
  for (auto _ : state) {
    const auto res = ms.access(0, addr, am::sim::AccessKind::kLoad, now);
    now = res.complete;
    benchmark::DoNotOptimize(res.complete);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineStepOverhead)->Arg(0)->Arg(1);

}  // namespace

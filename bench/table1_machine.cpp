// Table I of the paper: the Xeon20MB memory hierarchy. Prints the simulated
// machine's geometry (full size and the bench default scale) so every other
// bench's platform is documented.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  am::Cli cli(argc, argv);
  const auto ctx = am::bench::make_context(cli, /*default_scale=*/1);

  am::Table t({"Cache", "Scope", "Capacity", "Line Size", "Associativity",
               "Latency (cyc)"});
  const auto& m = ctx.machine;
  auto row = [&](const char* name, const char* scope,
                 const am::sim::CacheConfig& c, am::sim::Cycles lat) {
    t.add_row({name, scope, am::format_bytes(static_cast<double>(c.size_bytes)),
               std::to_string(c.line_bytes) + " bytes",
               std::to_string(c.ways) + "-way", std::to_string(lat)});
  };
  row("L1 D", "Private", m.l1, m.l1_latency);
  row("L2", "Private", m.l2, m.l2_latency);
  row("L3", "Shared", m.l3, m.l3_latency);
  am::bench::emit(t, ctx, "Table I: memory hierarchy (simulated Xeon E5-2670)");

  am::Table sys({"Parameter", "Value"});
  sys.add_row({"Cores per socket", std::to_string(m.cores_per_socket)});
  sys.add_row({"Sockets per node", std::to_string(m.sockets_per_node)});
  sys.add_row({"Frequency", am::Table::num(m.frequency_ghz, 1) + " GHz"});
  sys.add_row({"Memory bandwidth / socket",
               am::format_bandwidth(m.mem_bandwidth_bytes_per_sec)});
  sys.add_row({"Interconnect",
               am::format_bandwidth(m.link_bandwidth_bytes_per_sec) + ", " +
                   std::to_string(m.link_latency) + " cyc"});
  sys.add_row({"Line-fill buffers / core",
               std::to_string(m.max_outstanding_misses)});
  am::bench::emit(sys, ctx, "Platform parameters");
  return 0;
}

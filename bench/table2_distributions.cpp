// Table II of the paper: the ten probabilistic access patterns with their
// parameters and standard deviations, plus the concentration integral that
// drives the EHR model.
#include "bench_util.hpp"

#include "model/distributions.hpp"

int main(int argc, char** argv) {
  am::Cli cli(argc, argv);
  const auto ctx = am::bench::make_context(cli, 1);
  const std::uint64_t n =
      static_cast<std::uint64_t>(cli.get_int("elements", 1'000'000));

  am::Table t({"Pattern", "Distribution", "Parameters", "Stddev/n",
               "n*integral(p^2)"});
  const auto dists = am::model::AccessDistribution::table2(n);
  const char* params[] = {
      "mu=n/2 sigma=n/4", "mu=n/2 sigma=n/6", "mu=n/2 sigma=n/8",
      "lambda=4/n",       "lambda=6/n",       "lambda=8/n",
      "a=0 b=0.4n c=n",   "a=0 b=0.6n c=n",   "a=0 b=0.8n c=n",
      "a=0 b=n"};
  const char* kinds[] = {"Normal",      "Normal",      "Normal",
                         "Exponential", "Exponential", "Exponential",
                         "Triangular",  "Triangular",  "Triangular",
                         "Uniform"};
  for (std::size_t i = 0; i < dists.size(); ++i) {
    t.add_row({dists[i].name(), kinds[i], params[i],
               am::Table::num(dists[i].stddev() / static_cast<double>(n), 4),
               am::Table::num(
                   dists[i].integral_pdf_sq() * static_cast<double>(n), 3)});
  }
  am::bench::emit(t, ctx, "Table II: memory access patterns (n = " +
                              std::to_string(n) + " elements)");
  return 0;
}

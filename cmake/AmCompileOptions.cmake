# Shared warning/sanitizer flags for every target in the project.
#
# Defines the INTERFACE target `am_compile_options`; link it PRIVATE from
# libraries and executables. Warnings are always on; -Werror and the
# ASan/UBSan pair are opt-in via AM_WERROR / AM_SANITIZE so local builds
# stay forgiving while CI is strict.

add_library(am_compile_options INTERFACE)
add_library(am::compile_options ALIAS am_compile_options)

target_compile_features(am_compile_options INTERFACE cxx_std_20)

set(AM_GNU_LIKE "$<COMPILE_LANG_AND_ID:CXX,GNU,Clang,AppleClang>")

target_compile_options(am_compile_options INTERFACE
  "$<${AM_GNU_LIKE}:-Wall;-Wextra;-Wpedantic;-Wshadow;-Wnon-virtual-dtor;-Wcast-align;-Wunused;-Woverloaded-virtual;-Wdouble-promotion>"
  "$<$<COMPILE_LANG_AND_ID:CXX,MSVC>:/W4>")

if(AM_WERROR)
  target_compile_options(am_compile_options INTERFACE
    "$<${AM_GNU_LIKE}:-Werror>"
    "$<$<COMPILE_LANG_AND_ID:CXX,MSVC>:/WX>")
endif()

if(AM_SANITIZE)
  set(AM_SAN_FLAGS -fsanitize=address,undefined -fno-omit-frame-pointer -fno-sanitize-recover=all)
  target_compile_options(am_compile_options INTERFACE ${AM_SAN_FLAGS})
  target_link_options(am_compile_options INTERFACE ${AM_SAN_FLAGS})
endif()

# Shared warning/sanitizer flags for every target in the project.
#
# Defines the INTERFACE target `am_compile_options`; link it PRIVATE from
# libraries and executables. Warnings are always on; -Werror and the
# sanitizers are opt-in via AM_WERROR / AM_SANITIZE / AM_TSAN so local
# builds stay forgiving while CI is strict.

add_library(am_compile_options INTERFACE)
add_library(am::compile_options ALIAS am_compile_options)

target_compile_features(am_compile_options INTERFACE cxx_std_20)

set(AM_GNU_LIKE "$<COMPILE_LANG_AND_ID:CXX,GNU,Clang,AppleClang>")

target_compile_options(am_compile_options INTERFACE
  "$<${AM_GNU_LIKE}:-Wall;-Wextra;-Wpedantic;-Wshadow;-Wnon-virtual-dtor;-Wcast-align;-Wunused;-Woverloaded-virtual;-Wdouble-promotion>"
  "$<$<COMPILE_LANG_AND_ID:CXX,MSVC>:/W4>")

# Clang's static lock-discipline analysis; reads the AM_GUARDED_BY /
# AM_REQUIRES annotations from common/thread_annotations.hpp. GCC has no
# equivalent (the annotations expand to nothing there) — TSan covers the
# same property dynamically in the tsan preset.
target_compile_options(am_compile_options INTERFACE
  "$<$<COMPILE_LANG_AND_ID:CXX,Clang,AppleClang>:-Wthread-safety>")

if(AM_WERROR)
  target_compile_options(am_compile_options INTERFACE
    "$<${AM_GNU_LIKE}:-Werror>"
    "$<$<COMPILE_LANG_AND_ID:CXX,MSVC>:/WX>")
endif()

if(AM_SANITIZE AND AM_TSAN)
  # TSan is incompatible with ASan at the runtime level; failing here is
  # clearer than whatever the link would produce.
  message(FATAL_ERROR "AM_SANITIZE (ASan/UBSan) and AM_TSAN are mutually "
                      "exclusive; configure one build tree per sanitizer.")
endif()

if(AM_SANITIZE)
  set(AM_SAN_FLAGS -fsanitize=address,undefined -fno-omit-frame-pointer -fno-sanitize-recover=all)
  target_compile_options(am_compile_options INTERFACE ${AM_SAN_FLAGS})
  target_link_options(am_compile_options INTERFACE ${AM_SAN_FLAGS})
endif()

if(AM_TSAN)
  # -O1 keeps the ~5-15x TSan slowdown tolerable while staying accurate;
  # the preset sets CMAKE_BUILD_TYPE accordingly. Frame pointers make the
  # race reports readable.
  set(AM_TSAN_FLAGS -fsanitize=thread -fno-omit-frame-pointer)
  target_compile_options(am_compile_options INTERFACE ${AM_TSAN_FLAGS})
  target_link_options(am_compile_options INTERFACE ${AM_TSAN_FLAGS})
endif()

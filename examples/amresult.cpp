// amresult — inspect, validate and merge persistent result stores.
//
// The sharded-sweep workflow: every `--shard i/n` driver invocation writes
// its slice of a figure grid into its own store file; amresult folds those
// shard files into the store the unsharded driver reads, validating format
// versions, per-record integrity and key collisions on the way. A
// subsequent driver run with the same --results-dir then prints the figure
// with zero engine runs. (Single-machine sweeps don't need the manual
// merge: `amsweep` supervises the shard processes and performs this merge
// as a library call — amresult remains the tool for shards gathered from
// different machines, and for inspection.)
//
//   amresult show     <store.tsv>            # records as an ASCII table
//   amresult validate <store.tsv>...         # integrity + provenance check
//   amresult merge --out <merged.tsv> <shard.tsv>...
//            [--allow-mixed-hosts]           # fold shard stores into one
//
// Merging refuses to combine records produced on different physical hosts
// unless --allow-mixed-hosts is given: simulator results are deterministic
// and host-independent, so the flag is safe for sim stores, but the
// refusal is what keeps two machines' *host-measured* numbers from being
// silently blended.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "interfere/host_identity.hpp"
#include "measure/result_store.hpp"

namespace {

using am::measure::ResultStore;

int usage() {
  std::fprintf(
      stderr,
      "usage: amresult show <store.tsv>\n"
      "       amresult validate <store.tsv>...\n"
      "       amresult merge --out <merged.tsv> [--allow-mixed-hosts] "
      "<store.tsv>...\n");
  return 2;
}

void print_store(const ResultStore& store) {
  am::Table t({"workload", "resource", "thr", "seconds", "timed out",
               "machine", "host"});
  for (const auto* rec : store.records())
    t.add_row({rec->key.workload, resource_name(rec->key.resource),
               std::to_string(rec->key.threads),
               am::Table::num(rec->result.seconds * 1e3, 3) + " ms",
               rec->result.timed_out ? "yes" : "no",
               rec->key.machine.substr(0, 8), rec->host.substr(0, 8)});
  t.print(std::cout);
}

int show(const std::string& path) {
  const auto store = ResultStore::load(path);
  std::printf("%s: %zu records\n", path.c_str(), store.size());
  print_store(store);
  return 0;
}

int validate(const std::vector<std::string>& paths) {
  bool ok = true;
  for (const auto& path : paths) {
    try {
      const auto store = ResultStore::load(path);
      const auto hosts = store.hosts();
      std::printf("%s: OK, %zu records, %zu host%s\n", path.c_str(),
                  store.size(), hosts.size(), hosts.size() == 1 ? "" : "s");
    } catch (const std::exception& e) {
      std::printf("%s: INVALID — %s\n", path.c_str(), e.what());
      ok = false;
    }
  }
  return ok ? 0 : 1;
}

int merge(const std::string& out, bool allow_mixed_hosts,
          const std::vector<std::string>& paths) {
  ResultStore merged;
  for (const auto& path : paths) {
    const auto store = ResultStore::load(path);
    merged.merge(store);
    std::printf("merged %s (%zu records)\n", path.c_str(), store.size());
  }
  const auto hosts = merged.hosts();
  if (hosts.size() > 1 && !allow_mixed_hosts) {
    std::fprintf(stderr,
                 "error: inputs were measured on %zu different hosts; "
                 "refusing to mix machines' numbers.\n"
                 "Simulator stores are host-independent — pass "
                 "--allow-mixed-hosts to merge them anyway.\n",
                 hosts.size());
    return 1;
  }
  merged.save(out);
  std::printf("wrote %zu records to %s\n", merged.size(), out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const am::Cli cli(argc, argv);
  const auto& args = cli.positional();
  if (args.empty()) return usage();
  const std::string& command = args[0];
  const std::vector<std::string> paths(args.begin() + 1, args.end());

  try {
    if (command == "show" && paths.size() == 1) return show(paths[0]);
    if (command == "validate" && !paths.empty()) return validate(paths);
    if (command == "merge" && !paths.empty()) {
      const auto out = cli.get("out", "");
      if (out.empty()) {
        std::fprintf(stderr, "amresult merge: --out is required\n");
        return 2;
      }
      return merge(out, cli.get_bool("allow-mixed-hosts", false), paths);
    }
    if (command == "host") {  // undocumented helper: this host's fingerprint
      const auto id = am::interfere::HostIdentity::detect();
      std::printf("%s  (%s, %u cpus)\n", id.fingerprint().c_str(),
                  id.hostname.c_str(), id.logical_cpus);
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "amresult: %s\n", e.what());
    return 1;
  }
  return usage();
}

// amsweep — multi-process sweep orchestrator over the shard/store
// machinery.
//
// Takes a figure driver command and runs its experiment grid as `--shards`
// disjoint slices on `--workers` concurrent worker processes, each writing
// its own per-shard ResultStore file. Workers are supervised (exit status
// + heartbeat files); a crashed or wedged worker is retried on the next
// free slot up to `--retries` extra attempts. Workers checkpoint their
// store as points complete (throttled to ~1 save/s), so a retry re-runs
// only the points since the dead attempt's last checkpoint. When
// every shard lands, the shard stores are merged (the same library path as
// `amresult merge`) into the canonical store the unsharded driver reads,
// and a run manifest (host fingerprint, per-attempt wall-clock/exit
// status/heartbeats, retry log) is written next to it.
//
//   amsweep --results-dir DIR [--workers N] [--shards M] [--retries K]
//           [--driver-name NAME] [--poll-seconds S] [--stall-timeout S]
//           -- <figure driver> [driver flags...]
//
//   amsweep --results-dir results --workers 4
//       -- bench/fig9_mcb_degradation --quick       (one shell line)
//
// Everything after `--` is the worker command; amsweep appends
// `--results-dir DIR --shard i/M --worker` per shard. `--driver-name`
// (default: the worker binary's basename) must match the store-file stem
// the driver uses. Exit status: 0 = merged store written; 1 = sweep
// failed (see the manifest for which shards are missing); 2 = usage.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/cli.hpp"
#include "measure/orchestrator.hpp"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: amsweep --results-dir DIR [--workers N] [--shards M]\n"
      "               [--retries K] [--driver-name NAME] [--poll-seconds S]\n"
      "               [--stall-timeout S] -- <figure driver> [flags...]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  // Everything after the first bare "--" is the worker command, untouched
  // by flag parsing (driver flags must reach the driver verbatim).
  std::vector<std::string> own{argv[0]};
  std::vector<std::string> worker;
  bool split = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!split && arg == "--") {
      split = true;
      continue;
    }
    (split ? worker : own).push_back(std::move(arg));
  }
  if (!split || worker.empty()) return usage();

  std::vector<char*> own_argv;
  own_argv.reserve(own.size());
  for (auto& s : own) own_argv.push_back(s.data());

  try {
    const am::Cli cli(static_cast<int>(own_argv.size()), own_argv.data());
    am::measure::OrchestratorOptions opts;
    opts.worker_command = worker;
    opts.results_dir = cli.get("results-dir", "");
    if (opts.results_dir.empty()) {
      std::fprintf(stderr, "amsweep: --results-dir is required\n");
      return usage();
    }
    // Validate signs before the size_t casts: a negative typo must be a
    // usage error, not SIZE_MAX workers or an effectively infinite retry
    // budget.
    const auto positive = [&cli](const char* name, std::int64_t def) {
      const auto v = cli.get_int(name, def);
      if (v <= 0)
        throw std::invalid_argument(std::string("--") + name +
                                    " must be positive");
      return static_cast<std::size_t>(v);
    };
    const auto non_negative = [&cli](const char* name, double def) {
      const auto v = cli.get_double(name, def);
      // strtod happily parses "nan" and "inf"; neither may reach
      // sleep_for (NaN: unspecified, inf: sleeps forever) or silently
      // disable stall supervision.
      if (!std::isfinite(v) || v < 0.0)
        throw std::invalid_argument(std::string("--") + name +
                                    " must be a finite value >= 0");
      return v;
    };
    opts.workers = positive("workers", 2);
    opts.shards =
        positive("shards", static_cast<std::int64_t>(opts.workers));
    const auto retries = cli.get_int("retries", 1);
    if (retries < 0)
      throw std::invalid_argument("--retries must be >= 0");
    opts.retries = static_cast<std::size_t>(retries);
    opts.poll_seconds = non_negative("poll-seconds", 0.05);
    opts.stall_timeout_seconds = non_negative("stall-timeout", 0.0);
    opts.driver = cli.get(
        "driver-name", std::filesystem::path(worker[0]).stem().string());

    am::measure::SweepOrchestrator orchestrator(std::move(opts));
    const auto report = orchestrator.run(std::cout);
    if (!report.success) return 1;
    std::cout << "print the figure from cache with:\n  ";
    for (const auto& a : worker) std::cout << a << " ";
    std::cout << "--results-dir " << cli.get("results-dir", "") << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "amsweep: %s\n", e.what());
    return 2;
  }
}

// amsweep — multi-process sweep orchestrator over the shard/store
// machinery.
//
// Takes a figure driver command and runs its experiment grid across
// `--workers` supervised worker processes under one of two schedules:
//
//   * `--schedule static` (default): `--shards` fixed round-robin slices
//     chosen at spawn (`--shard i/M` per worker), retries per shard —
//     the simple mode, fine for homogeneous grids.
//   * `--schedule lease`: dynamic work-queue scheduling for the paper's
//     wildly heterogeneous grids. amsweep first probes the driver
//     (`--emit-plan`) for the plan size and per-point cost estimates
//     (measured run times from previous sweeps when the store has them,
//     a thread-count heuristic otherwise), splits the plan into
//     size-aware batches (`--batches`, default a few per worker), and
//     leases batches to whichever worker frees up next through
//     atomically-written lease files (`--lease FILE` per worker).
//     Crashed or stalled workers get their batch re-queued with a
//     per-point retry budget.
//
// Workers are supervised either way (exit status + heartbeat sequence
// progress); workers checkpoint their store as points complete, so a
// retry re-runs only the points since the dead attempt's last
// checkpoint. When the grid completes, the worker stores are merged
// (the same library path as `amresult merge`) into the canonical store
// the unsharded driver reads, and a run manifest (host fingerprint,
// per-attempt and per-lease log, per-worker busy-time/batch/steal
// stats) is written next to it. The merged store is bit-identical to a
// direct serial run's under both schedules.
//
//   amsweep --results-dir DIR [--schedule static|lease] [--workers N]
//           [--shards M] [--batches K] [--cost-model measured|uniform]
//           [--retries K] [--driver-name NAME] [--poll-seconds S]
//           [--stall-timeout S] -- <figure driver> [driver flags...]
//
//   amsweep --results-dir results --schedule lease --workers 4
//       -- bench/fig9_mcb_degradation --quick       (one shell line)
//
// Everything after `--` is the worker command; amsweep appends
// `--results-dir DIR` plus `--shard i/M --worker` (static) or
// `--lease FILE --worker` (lease) per worker, and `--emit-plan FILE`
// for the probe. `--driver-name` (default: the worker binary's
// basename) must match the store-file stem the driver uses.
//
// Exit status:
//   0  merged store written (bit-identical to a serial run)
//   1  sweep failed — the manifest names the missing shards (static) or
//      plan points (lease), and records driver flag rejections and
//      failed lease-mode plan probes as the fatal error
//   2  usage: bad amsweep flags (unparseable numbers, unknown
//      --schedule/--cost-model values, missing --results-dir or "--")
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/cli.hpp"
#include "measure/orchestrator.hpp"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: amsweep --results-dir DIR [--schedule static|lease]\n"
      "               [--workers N] [--shards M] [--batches K]\n"
      "               [--cost-model measured|uniform] [--retries K]\n"
      "               [--driver-name NAME] [--poll-seconds S]\n"
      "               [--stall-timeout S] -- <figure driver> [flags...]\n"
      "exit: 0 merged, 1 sweep failed (see manifest), 2 usage\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  // Everything after the first bare "--" is the worker command, untouched
  // by flag parsing (driver flags must reach the driver verbatim).
  std::vector<std::string> own{argv[0]};
  std::vector<std::string> worker;
  bool split = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!split && arg == "--") {
      split = true;
      continue;
    }
    (split ? worker : own).push_back(std::move(arg));
  }
  if (!split || worker.empty()) return usage();

  std::vector<char*> own_argv;
  own_argv.reserve(own.size());
  for (auto& s : own) own_argv.push_back(s.data());

  try {
    const am::Cli cli(static_cast<int>(own_argv.size()), own_argv.data());
    am::measure::OrchestratorOptions opts;
    opts.worker_command = worker;
    opts.results_dir = cli.get("results-dir", "");
    if (opts.results_dir.empty()) {
      std::fprintf(stderr, "amsweep: --results-dir is required\n");
      return usage();
    }
    const auto schedule = cli.get("schedule", "static");
    if (schedule == "lease")
      opts.schedule = am::measure::Schedule::kLease;
    else if (schedule != "static")
      throw std::invalid_argument(
          "--schedule must be 'static' or 'lease', got '" + schedule + "'");
    const auto cost_model = cli.get("cost-model", "measured");
    if (cost_model == "uniform")
      opts.use_measured_costs = false;
    else if (cost_model != "measured")
      throw std::invalid_argument(
          "--cost-model must be 'measured' or 'uniform', got '" +
          cost_model + "'");
    // Validate signs before the size_t casts: a negative typo must be a
    // usage error, not SIZE_MAX workers or an effectively infinite retry
    // budget.
    const auto positive = [&cli](const char* name, std::int64_t def) {
      const auto v = cli.get_int(name, def);
      if (v <= 0)
        throw std::invalid_argument(std::string("--") + name +
                                    " must be positive");
      return static_cast<std::size_t>(v);
    };
    const auto non_negative = [&cli](const char* name, double def) {
      const auto v = cli.get_double(name, def);
      // strtod happily parses "nan" and "inf"; neither may reach
      // sleep_for (NaN: unspecified, inf: sleeps forever) or silently
      // disable stall supervision.
      if (!std::isfinite(v) || v < 0.0)
        throw std::invalid_argument(std::string("--") + name +
                                    " must be a finite value >= 0");
      return v;
    };
    opts.workers = positive("workers", 2);
    opts.shards =
        positive("shards", static_cast<std::int64_t>(opts.workers));
    // 0 = auto (a few batches per worker slot); explicit counts must be
    // positive.
    const auto batches = cli.get_int("batches", 0);
    if (batches < 0)
      throw std::invalid_argument("--batches must be >= 0 (0 = auto)");
    opts.lease_batches = static_cast<std::size_t>(batches);
    const auto retries = cli.get_int("retries", 1);
    if (retries < 0)
      throw std::invalid_argument("--retries must be >= 0");
    opts.retries = static_cast<std::size_t>(retries);
    opts.poll_seconds = non_negative("poll-seconds", 0.05);
    opts.stall_timeout_seconds = non_negative("stall-timeout", 0.0);
    opts.driver = cli.get(
        "driver-name", std::filesystem::path(worker[0]).stem().string());

    am::measure::SweepOrchestrator orchestrator(std::move(opts));
    const auto report = orchestrator.run(std::cout);
    if (!report.success) return 1;
    std::cout << "print the figure from cache with:\n  ";
    for (const auto& a : worker) std::cout << a << " ";
    std::cout << "--results-dir " << cli.get("results-dir", "") << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "amsweep: %s\n", e.what());
    return 2;
  }
}

// amsweep — multi-process sweep orchestrator over the shard/store
// machinery, plus the client side of the amsweepd daemon protocol.
//
// Two personalities, picked by the first argument:
//
// 1. Daemon client subcommands (first arg is a word, not a flag):
//
//      amsweep mkplan [--workloads L] [--max-cs N] [--max-bw N]
//              [--scale S] [--nodes N] [--backend B] [--seed S]
//              [--accesses N] [--compute-ops N] [--out FILE]
//      amsweep submit --socket PATH --ns NAME [--plan FILE]
//              [--wait [--timeout S]]
//      amsweep status --socket PATH --job ID
//      amsweep cancel --socket PATH --job ID
//      amsweep wait   --socket PATH --job ID [--timeout S]
//      amsweep run-local --plan FILE --out STORE.tsv
//
//    mkplan emits a serialized plan spec (measure/plan_wire) for a
//    synthetic-workload grid: `--workloads uni:2048,norm:4096` names
//    distributions (uni/norm/exp/tri) with buffer element counts;
//    each workload gets a baseline point plus cache-storage and
//    bandwidth interference sweeps. submit sends a plan (from --plan
//    or stdin) to an amsweepd under a tenant namespace; status/
//    cancel/wait manage the returned job id. run-local executes a
//    plan in-process, serially, into a plain store file — the
//    baseline the daemon's per-namespace stores are byte-compared
//    against. Every subcommand accepting --socket also accepts
//    --tcp PORT for a loopback-TCP daemon.
//
//    Client exit status:
//      0  success (wait: job done)
//      1  daemon reported an error / job failed or cancelled
//      2  usage
//      3  retry later: daemon draining or unreachable
//
// 2. Orchestrator mode (everything else — the PR-5 interface):
//
//      amsweep --results-dir DIR [--schedule static|lease] [--workers N]
//              [--shards M] [--batches K] [--cost-model measured|uniform]
//              [--retries K] [--driver-name NAME] [--poll-seconds S]
//              [--stall-timeout S] -- <figure driver> [driver flags...]
//
//    Runs a figure driver's grid across supervised worker processes
//    under a static or dynamic (lease) schedule; the merged store is
//    bit-identical to a direct serial run. Exit: 0 merged, 1 sweep
//    failed (see manifest), 2 usage.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/cli.hpp"
#include "common/socket.hpp"
#include "measure/daemon.hpp"
#include "measure/orchestrator.hpp"
#include "measure/plan_wire.hpp"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: amsweep --results-dir DIR [--schedule static|lease]\n"
      "               [--workers N] [--shards M] [--batches K]\n"
      "               [--cost-model measured|uniform] [--retries K]\n"
      "               [--driver-name NAME] [--poll-seconds S]\n"
      "               [--stall-timeout S] -- <figure driver> [flags...]\n"
      "       amsweep mkplan|submit|status|cancel|wait|run-local ...\n"
      "exit: 0 ok, 1 failed, 2 usage, 3 retry later (client)\n");
  return 2;
}

// ---------------------------------------------------------------------------
// Daemon client subcommands

/// Connects per --socket PATH / --tcp PORT. Throws std::invalid_argument
/// on missing flags (usage) and SocketError when nothing answers (the
/// caller maps that to exit 3, retry later).
am::measure::DaemonClient connect(const am::Cli& cli) {
  const auto timeout = cli.get_double("connect-timeout", 5.0);
  const auto tcp = cli.get_int("tcp", -1);
  if (tcp >= 0) {
    if (tcp > 65535)
      throw std::invalid_argument("--tcp must be a port in [0, 65535]");
    return am::measure::DaemonClient::connect_tcp(
        static_cast<std::uint16_t>(tcp), timeout);
  }
  const auto socket = cli.get("socket", "");
  if (socket.empty())
    throw std::invalid_argument("--socket PATH (or --tcp PORT) is required");
  return am::measure::DaemonClient::connect_unix(socket, timeout);
}

void print_reply(const am::measure::DaemonReply& r) {
  std::cout << "job " << r.job << ": " << am::measure::job_state_name(r.state)
            << " (" << r.done_points << "/" << r.points << " points, "
            << r.executed << " engine runs)";
  if (!r.error.empty()) std::cout << " — " << r.error;
  std::cout << "\n";
}

/// Exit code for a reply: retry-later beats error beats success, and
/// `wait` additionally fails on terminal-but-not-done states.
int reply_exit(const am::measure::DaemonReply& r, bool require_done) {
  if (r.retry) {
    std::cout << "retry later: "
              << (r.error.empty() ? "daemon is draining" : r.error) << "\n";
    return 3;
  }
  if (!r.ok) {
    std::fprintf(stderr, "amsweep: daemon error: %s\n", r.error.c_str());
    return 1;
  }
  if (require_done && r.state != am::measure::JobState::kDone) return 1;
  return 0;
}

std::uint64_t job_flag(const am::Cli& cli) {
  const auto job = cli.get_int("job", -1);
  if (job < 0) throw std::invalid_argument("--job ID is required");
  return static_cast<std::uint64_t>(job);
}

std::string read_plan_text(const am::Cli& cli) {
  const auto path = cli.get("plan", "");
  std::ostringstream text;
  if (path.empty()) {
    text << std::cin.rdbuf();  // `amsweep mkplan | amsweep submit`
  } else {
    std::ifstream in(path);
    if (!in)
      throw std::invalid_argument("cannot read plan file '" + path + "'");
    text << in.rdbuf();
  }
  return text.str();
}

int cmd_submit(const am::Cli& cli) {
  const auto ns = cli.get("ns", "");
  if (ns.empty()) throw std::invalid_argument("--ns NAME is required");
  const auto plan = read_plan_text(cli);
  auto client = connect(cli);
  auto reply = client.submit(ns, plan);
  const int rc = reply_exit(reply, false);
  if (rc != 0) return rc;
  std::cout << "submitted as job " << reply.job << " (" << reply.points
            << " points, namespace " << ns << ")\n";
  if (!cli.get_bool("wait", false)) return 0;
  reply = client.wait(reply.job, cli.get_double("timeout", 0.0));
  print_reply(reply);
  return reply_exit(reply, true);
}

int cmd_status(const am::Cli& cli) {
  auto client = connect(cli);
  const auto reply = client.status(job_flag(cli));
  if (reply.ok) print_reply(reply);
  return reply_exit(reply, false);
}

int cmd_cancel(const am::Cli& cli) {
  auto client = connect(cli);
  const auto reply = client.cancel(job_flag(cli));
  if (reply.ok) print_reply(reply);
  return reply_exit(reply, false);
}

int cmd_wait(const am::Cli& cli) {
  auto client = connect(cli);
  const auto reply = client.wait(job_flag(cli), cli.get_double("timeout", 0.0));
  if (reply.ok) print_reply(reply);
  return reply_exit(reply, true);
}

/// Builds a synthetic-workload grid spec. The cs/bw configs follow the
/// bench drivers' geometry-preserving scaling (4 MiB and 520 KiB at
/// scale 1, floored at a page), so daemon results line up with what the
/// figure pipeline would measure at the same --scale.
int cmd_mkplan(const am::Cli& cli) {
  am::measure::PlanSpec spec;
  const auto scale = cli.get_int("scale", 256);
  const auto nodes = cli.get_int("nodes", 1);
  if (scale < 1 || nodes < 1)
    throw std::invalid_argument("--scale and --nodes must be >= 1");
  spec.machine_scale = static_cast<std::uint32_t>(scale);
  spec.machine_nodes = static_cast<std::uint32_t>(nodes);
  spec.mem_backend = cli.get("backend", "channel");
  spec.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  spec.cs.buffer_bytes =
      std::max<std::uint64_t>(4096, 4ull * 1024 * 1024 / spec.machine_scale);
  spec.bw.buffer_bytes =
      std::max<std::uint64_t>(4096, 520ull * 1024 / spec.machine_scale);

  const auto accesses = cli.get_int("accesses", 20000);
  const auto compute_ops = cli.get_int("compute-ops", 1);
  if (accesses < 1 || compute_ops < 1)
    throw std::invalid_argument("--accesses and --compute-ops must be >= 1");
  const auto max_cs = cli.get_int("max-cs", 2);
  const auto max_bw = cli.get_int("max-bw", 2);
  if (max_cs < 0 || max_bw < 0)
    throw std::invalid_argument("--max-cs and --max-bw must be >= 0");

  // uni:2048,norm:4096,... — distribution kind and buffer element count.
  // Distribution parameters derive from n, and the derivation is baked
  // into the workload name so stores can never alias two shapes.
  const auto list = cli.get("workloads", "uni:2048,norm:2048");
  std::istringstream items(list);
  std::string item;
  while (std::getline(items, item, ',')) {
    if (item.empty()) continue;
    const auto colon = item.find(':');
    if (colon == std::string::npos || colon + 1 >= item.size())
      throw std::invalid_argument("--workloads entries are kind:elements, got '" +
                                  item + "'");
    const std::string kind = item.substr(0, colon);
    const long n = std::strtol(item.c_str() + colon + 1, nullptr, 10);
    if (n < 16)
      throw std::invalid_argument("--workloads element count must be >= 16");
    am::measure::WorkloadWire w;
    w.kind = am::measure::WorkloadWire::Kind::kSynthetic;
    w.n = static_cast<std::uint64_t>(n);
    w.measured_accesses = static_cast<std::uint64_t>(accesses);
    w.compute_ops = static_cast<std::uint32_t>(compute_ops);
    if (kind == "uni") {
      w.dist = am::model::DistKind::kUniform;
    } else if (kind == "norm") {
      w.dist = am::model::DistKind::kNormal;
      w.dist_a = static_cast<double>(n) / 2.0;  // mu
      w.dist_b = static_cast<double>(n) / 8.0;  // sigma
    } else if (kind == "exp") {
      w.dist = am::model::DistKind::kExponential;
      w.dist_a = 8.0 / static_cast<double>(n);  // lambda
    } else if (kind == "tri") {
      w.dist = am::model::DistKind::kTriangular;
      w.dist_a = static_cast<double>(n) / 3.0;  // mode
    } else {
      throw std::invalid_argument(
          "--workloads kind must be uni|norm|exp|tri, got '" + kind + "'");
    }
    w.name = kind + "-n" + std::to_string(n);
    w.dist_name = w.name;
    spec.workloads.push_back(std::move(w));
  }
  if (spec.workloads.empty())
    throw std::invalid_argument("--workloads named no workloads");

  for (std::size_t wi = 0; wi < spec.workloads.size(); ++wi) {
    spec.points.push_back({wi, am::measure::Resource::kCacheStorage, 0});
    for (std::uint32_t t = 1; t <= static_cast<std::uint32_t>(max_cs); ++t)
      spec.points.push_back({wi, am::measure::Resource::kCacheStorage, t});
    for (std::uint32_t t = 1; t <= static_cast<std::uint32_t>(max_bw); ++t)
      spec.points.push_back({wi, am::measure::Resource::kBandwidth, t});
  }

  const auto text = am::measure::serialize_plan_spec(spec);
  const auto out = cli.get("out", "");
  if (out.empty()) {
    std::cout << text;
  } else {
    std::ofstream file(out);
    file << text;
    if (!file.flush())
      throw std::runtime_error("cannot write plan to '" + out + "'");
    std::cout << "wrote " << spec.points.size() << "-point plan to " << out
              << "\n";
  }
  return 0;
}

/// Serial in-process execution of a plan spec — the reference a daemon
/// namespace store is byte-compared against.
int cmd_run_local(const am::Cli& cli) {
  const auto out = cli.get("out", "");
  if (out.empty()) throw std::invalid_argument("--out STORE.tsv is required");
  const auto spec = am::measure::parse_plan_spec(read_plan_text(cli));
  const auto plan = am::measure::build_plan(spec);
  const auto runner = am::measure::make_runner(spec);
  auto store = am::measure::ResultStore::load_or_empty(out);
  std::vector<std::size_t> owned(plan.size());
  for (std::size_t i = 0; i < owned.size(); ++i) owned[i] = i;
  std::size_t executed = 0;
  runner.run_points(plan, nullptr, &store, owned, &executed);
  store.save(out);
  std::cout << "ran " << plan.size() << " points (" << executed
            << " executed, " << (plan.size() - executed)
            << " cached) into " << out << "\n";
  return 0;
}

/// Hidden fault injector for the protocol test suite: opens a real
/// connection and sends deliberately malformed bytes, then reports what
/// the daemon did. Exit 0 = the daemon failed exactly this connection
/// (error reply and/or close), nonzero = unexpected behaviour.
int cmd_inject(const am::Cli& cli) {
  const auto mode = cli.get("mode", "");
  auto client = connect(cli);

  const auto put16 = [](std::string& s, std::uint16_t v) {
    s.push_back(static_cast<char>(v & 0xff));
    s.push_back(static_cast<char>((v >> 8) & 0xff));
  };
  const auto put32 = [&](std::string& s, std::uint32_t v) {
    put16(s, static_cast<std::uint16_t>(v & 0xffff));
    put16(s, static_cast<std::uint16_t>(v >> 16));
  };
  const auto put64 = [&](std::string& s, std::uint64_t v) {
    put32(s, static_cast<std::uint32_t>(v & 0xffffffffu));
    put32(s, static_cast<std::uint32_t>(v >> 32));
  };
  const auto header = [&](std::uint16_t version, std::uint16_t type,
                          std::uint64_t payload_len) {
    std::string h;
    put32(h, am::kFrameMagic);
    put16(h, version);
    put16(h, type);
    put64(h, payload_len);
    return h;
  };

  bool expect_reply = true;
  std::string bytes;
  if (mode == "garbage") {
    bytes = "this is not a frame header at all................";
  } else if (mode == "badversion") {
    bytes = header(99, am::measure::kFrameStatus, 0);
  } else if (mode == "oversize") {
    bytes = header(am::kProtocolVersion, am::measure::kFrameSubmit,
                   1ull << 40);
  } else if (mode == "truncate") {
    // A valid submit frame cut mid-payload, then an abrupt close: the
    // daemon must treat EOF-with-pending-bytes as a protocol error.
    const auto whole =
        am::encode_frame({am::measure::kFrameSubmit, "ns\talice\n#am-plan"});
    bytes = whole.substr(0, whole.size() / 2);
    expect_reply = false;
  } else {
    throw std::invalid_argument(
        "--mode must be garbage|badversion|oversize|truncate");
  }

  client.send_raw(bytes);
  if (!expect_reply) {
    client.socket().close();
    std::cout << "inject " << mode << ": sent and closed mid-frame\n";
    return 0;
  }
  try {
    am::set_io_timeout(client.socket(), cli.get_double("timeout", 10.0));
    const auto frame = am::read_frame(client.socket());
    const auto reply = am::measure::parse_reply(frame.payload);
    if (!reply || reply->ok) {
      std::fprintf(stderr, "inject %s: daemon accepted malformed input\n",
                   mode.c_str());
      return 1;
    }
    std::cout << "inject " << mode << ": rejected — " << reply->error << "\n";
  } catch (const am::SocketError&) {
    // Connection dropped without a reply: also a clean containment.
    std::cout << "inject " << mode << ": connection failed by daemon\n";
  }
  return 0;
}

int run_client(int argc, char** argv) {
  const std::string cmd = argv[1];
  // Re-parse without the subcommand word so Cli sees only flags.
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 2; i < argc; ++i) rest.push_back(argv[i]);
  try {
    const am::Cli cli(static_cast<int>(rest.size()), rest.data());
    if (cmd == "submit") return cmd_submit(cli);
    if (cmd == "status") return cmd_status(cli);
    if (cmd == "cancel") return cmd_cancel(cli);
    if (cmd == "wait") return cmd_wait(cli);
    if (cmd == "mkplan") return cmd_mkplan(cli);
    if (cmd == "run-local") return cmd_run_local(cli);
    if (cmd == "_inject") return cmd_inject(cli);
    std::fprintf(stderr, "amsweep: unknown subcommand '%s'\n", cmd.c_str());
    return usage();
  } catch (const am::SocketError& e) {
    // No daemon answered (or it went away mid-request): retryable.
    std::fprintf(stderr, "amsweep %s: %s\n", cmd.c_str(), e.what());
    return 3;
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "amsweep %s: %s\n", cmd.c_str(), e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "amsweep %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  // A bare word first is a daemon-client subcommand; flags (or nothing)
  // mean the original orchestrator interface.
  if (argc >= 2 && argv[1][0] != '\0' && argv[1][0] != '-')
    return run_client(argc, argv);

  // Everything after the first bare "--" is the worker command, untouched
  // by flag parsing (driver flags must reach the driver verbatim).
  std::vector<std::string> own{argv[0]};
  std::vector<std::string> worker;
  bool split = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!split && arg == "--") {
      split = true;
      continue;
    }
    (split ? worker : own).push_back(std::move(arg));
  }
  if (!split || worker.empty()) return usage();

  std::vector<char*> own_argv;
  own_argv.reserve(own.size());
  for (auto& s : own) own_argv.push_back(s.data());

  try {
    const am::Cli cli(static_cast<int>(own_argv.size()), own_argv.data());
    am::measure::OrchestratorOptions opts;
    opts.worker_command = worker;
    opts.results_dir = cli.get("results-dir", "");
    if (opts.results_dir.empty()) {
      std::fprintf(stderr, "amsweep: --results-dir is required\n");
      return usage();
    }
    const auto schedule = cli.get("schedule", "static");
    if (schedule == "lease")
      opts.schedule = am::measure::Schedule::kLease;
    else if (schedule != "static")
      throw std::invalid_argument(
          "--schedule must be 'static' or 'lease', got '" + schedule + "'");
    const auto cost_model = cli.get("cost-model", "measured");
    if (cost_model == "uniform")
      opts.use_measured_costs = false;
    else if (cost_model != "measured")
      throw std::invalid_argument(
          "--cost-model must be 'measured' or 'uniform', got '" +
          cost_model + "'");
    // Validate signs before the size_t casts: a negative typo must be a
    // usage error, not SIZE_MAX workers or an effectively infinite retry
    // budget.
    const auto positive = [&cli](const char* name, std::int64_t def) {
      const auto v = cli.get_int(name, def);
      if (v <= 0)
        throw std::invalid_argument(std::string("--") + name +
                                    " must be positive");
      return static_cast<std::size_t>(v);
    };
    const auto non_negative = [&cli](const char* name, double def) {
      const auto v = cli.get_double(name, def);
      // strtod happily parses "nan" and "inf"; neither may reach
      // sleep_for (NaN: unspecified, inf: sleeps forever) or silently
      // disable stall supervision.
      if (!std::isfinite(v) || v < 0.0)
        throw std::invalid_argument(std::string("--") + name +
                                    " must be a finite value >= 0");
      return v;
    };
    opts.workers = positive("workers", 2);
    opts.shards =
        positive("shards", static_cast<std::int64_t>(opts.workers));
    // 0 = auto (a few batches per worker slot); explicit counts must be
    // positive.
    const auto batches = cli.get_int("batches", 0);
    if (batches < 0)
      throw std::invalid_argument("--batches must be >= 0 (0 = auto)");
    opts.lease_batches = static_cast<std::size_t>(batches);
    const auto retries = cli.get_int("retries", 1);
    if (retries < 0)
      throw std::invalid_argument("--retries must be >= 0");
    opts.retries = static_cast<std::size_t>(retries);
    opts.poll_seconds = non_negative("poll-seconds", 0.05);
    opts.stall_timeout_seconds = non_negative("stall-timeout", 0.0);
    opts.driver = cli.get(
        "driver-name", std::filesystem::path(worker[0]).stem().string());

    am::measure::SweepOrchestrator orchestrator(std::move(opts));
    const auto report = orchestrator.run(std::cout);
    if (!report.success) return 1;
    std::cout << "print the figure from cache with:\n  ";
    for (const auto& a : worker) std::cout << a << " ";
    std::cout << "--results-dir " << cli.get("results-dir", "") << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "amsweep: %s\n", e.what());
    return 2;
  }
}

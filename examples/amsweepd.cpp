// amsweepd — the sweep machinery as a long-running, multi-tenant
// daemon (measure::SweepDaemon).
//
// Serves framed protocol requests (submit/status/cancel/wait — see
// `amsweep submit`) on a Unix-domain socket, optionally also on a
// loopback-TCP port, and runs accepted ExperimentPlans across a fleet
// of supervised worker processes. Workers are this same binary in
// `--worker` mode: the daemon re-execs itself, so one installed file
// is the whole service.
//
//   amsweepd --socket PATH --results-dir DIR [--workers N]
//            [--retries K] [--batches K] [--tcp-port P]
//            [--poll-seconds S] [--stall-timeout S]
//            [--client-timeout S] [--idle-timeout S]
//            [--test-crash-marker FILE]
//
//   amsweepd --worker --lease FILE [--poll-seconds S]
//            [--idle-timeout S] [--test-crash-marker FILE]
//
// `--workers 0` is accept-only mode: submissions queue durably but
// nothing dispatches until a restart with workers. `--tcp-port 0`
// asks the kernel for a port (written to <results-dir>/daemon/tcp.port).
// `--test-crash-marker` is forwarded to every worker: the first worker
// to claim a batch while FILE exists deletes it and SIGKILLs itself —
// the deterministic crash the smoke test recovers from.
//
// SIGTERM/SIGINT request a graceful drain: in-flight leases finish,
// every completed point is checkpointed, waiting submitters get
// retry-later replies, and the queue persists for the next start.
//
// Exit status (daemon mode):
//   0  drained cleanly; queue file resumable
//   1  serving failed (bind error, unwritable results dir, ...)
//   2  usage
// Worker mode follows the orchestrator's worker contract:
//   0 done, 2 bad offer/plan (no retry), 3 retryable failure.
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "measure/daemon.hpp"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: amsweepd --socket PATH --results-dir DIR [--workers N]\n"
      "                [--retries K] [--batches K] [--tcp-port P]\n"
      "                [--poll-seconds S] [--stall-timeout S]\n"
      "                [--client-timeout S] [--idle-timeout S]\n"
      "                [--test-crash-marker FILE]\n"
      "       amsweepd --worker --lease FILE [--poll-seconds S]\n"
      "                [--idle-timeout S] [--test-crash-marker FILE]\n"
      "exit: 0 drained, 1 serving failed, 2 usage (worker: 0/2/3)\n");
  return 2;
}

am::measure::SweepDaemon* g_daemon = nullptr;

void on_signal(int) {
  // request_drain is an atomic store — async-signal-safe by design.
  if (g_daemon) g_daemon->request_drain();
}

/// The path this binary re-execs for worker slots. argv[0] survives
/// PATH lookup through posix_spawnp, but an absolute path is immune to
/// a daemon that later chdirs or a caller with a doctored PATH.
std::string self_path(const char* argv0) {
  std::error_code ec;
  const auto exe = std::filesystem::read_symlink("/proc/self/exe", ec);
  if (!ec) return exe.string();
  return argv0;
}

int run_worker(const am::Cli& cli) {
  am::measure::DaemonWorkerOptions opts;
  opts.lease_path = cli.get("lease", "");
  if (opts.lease_path.empty()) {
    std::fprintf(stderr, "amsweepd --worker: --lease is required\n");
    return 2;
  }
  opts.poll_seconds = cli.get_double("poll-seconds", opts.poll_seconds);
  opts.idle_timeout_seconds =
      cli.get_double("idle-timeout", opts.idle_timeout_seconds);
  opts.test_crash_marker = cli.get("test-crash-marker", "");
  try {
    const auto report = am::measure::run_daemon_worker(opts, std::cout);
    std::cout << "worker done: " << report.leases << " leases, "
              << report.points << " points, " << report.executed
              << " executed\n";
    return 0;
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "amsweepd --worker: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "amsweepd --worker: %s\n", e.what());
    return 3;
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const am::Cli cli(argc, argv);
    if (cli.get_bool("worker", false)) return run_worker(cli);

    am::measure::SweepDaemonOptions opts;
    opts.socket_path = cli.get("socket", "");
    opts.results_dir = cli.get("results-dir", "");
    if (opts.socket_path.empty() || opts.results_dir.empty()) {
      std::fprintf(stderr,
                   "amsweepd: --socket and --results-dir are required\n");
      return usage();
    }
    const auto workers = cli.get_int("workers", 2);
    if (workers < 0)
      throw std::invalid_argument("--workers must be >= 0 (0 = accept-only)");
    opts.workers = static_cast<std::size_t>(workers);
    const auto retries = cli.get_int("retries", 1);
    if (retries < 0) throw std::invalid_argument("--retries must be >= 0");
    opts.retries = static_cast<std::size_t>(retries);
    const auto batches = cli.get_int("batches", 0);
    if (batches < 0)
      throw std::invalid_argument("--batches must be >= 0 (0 = auto)");
    opts.batches_per_job = static_cast<std::size_t>(batches);
    opts.poll_seconds = cli.get_double("poll-seconds", opts.poll_seconds);
    opts.stall_timeout_seconds =
        cli.get_double("stall-timeout", opts.stall_timeout_seconds);
    opts.client_io_timeout_seconds =
        cli.get_double("client-timeout", opts.client_io_timeout_seconds);
    const auto tcp = cli.get_int("tcp-port", -1);
    if (tcp < -1 || tcp > 65535)
      throw std::invalid_argument("--tcp-port must be in [-1, 65535]");
    opts.tcp_port = static_cast<int>(tcp);

    // Worker slots re-exec this binary; forward the knobs a worker
    // understands (queried here so they never trip unused-flag checks).
    opts.worker_command = {self_path(argv[0]), "--worker"};
    opts.worker_command.push_back("--poll-seconds");
    opts.worker_command.push_back(std::to_string(opts.poll_seconds));
    const auto idle = cli.get_double("idle-timeout", 600.0);
    opts.worker_command.push_back("--idle-timeout");
    opts.worker_command.push_back(std::to_string(idle));
    const auto marker = cli.get("test-crash-marker", "");
    if (!marker.empty()) {
      opts.worker_command.push_back("--test-crash-marker");
      opts.worker_command.push_back(marker);
    }

    am::measure::SweepDaemon daemon(std::move(opts));
    g_daemon = &daemon;
    struct sigaction sa = {};
    sa.sa_handler = on_signal;
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);

    const auto report = daemon.run(std::cout);
    g_daemon = nullptr;
    if (!report.clean_exit) {
      std::fprintf(stderr, "amsweepd: %s\n",
                   report.error.empty() ? "serving failed"
                                        : report.error.c_str());
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "amsweepd: %s\n", e.what());
    return 2;
  }
}

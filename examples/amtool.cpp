// amtool — command-line front end to the Active Measurement library.
//
//   amtool calibrate [--scale N]          calibrate CSThr/BWThr tables
//   amtool profile   [--scale N] [--app mcb|lulesh|synthetic] [...]
//                                         sweep both resources, print the
//                                         §IV per-process resource bounds
//   amtool host      [--threads K] [--buffer-mb M]
//                                         Fig. 1 sweep on *this* machine
//
// Run `amtool` with no arguments for usage.
#include <cstdio>
#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "measure/active_measurer.hpp"
#include "measure/app_workloads.hpp"
#include "measure/calibration.hpp"
#include "measure/host_measurer.hpp"
#include "model/distributions.hpp"

namespace {

struct Setup {
  am::sim::MachineConfig machine;
  std::uint32_t scale;
  am::interfere::CSThrConfig cs;
  am::interfere::BWThrConfig bw;
};

Setup make_setup(const am::Cli& cli, std::uint32_t nodes) {
  Setup s;
  s.scale = static_cast<std::uint32_t>(cli.get_int("scale", 16));
  s.machine = am::sim::MachineConfig::xeon20mb_scaled(s.scale, nodes);
  am::sim::apply_mem_backend(s.machine, cli.get("mem-backend", "channel"));
  s.cs.buffer_bytes = std::max<std::uint64_t>(4096, 4ull * 1024 * 1024 / s.scale);
  s.bw.buffer_bytes = std::max<std::uint64_t>(4096, 520ull * 1024 / s.scale);
  return s;
}

int cmd_calibrate(const am::Cli& cli) {
  const auto s = make_setup(cli, 1);
  am::measure::CalibrationOptions copts;
  copts.buffer_to_l3_ratios = {2.5};
  copts.probe_distributions = {9};
  copts.accesses_per_probe =
      static_cast<std::uint64_t>(cli.get_int("accesses", 120'000));
  copts.max_threads =
      static_cast<std::uint32_t>(cli.get_int("max-threads", copts.max_threads));
  const auto cap = am::measure::calibrate_capacity(s.machine, s.cs, copts);
  const auto bw = am::measure::calibrate_bandwidth(s.machine, s.bw, 2);
  am::Table t({"threads", "L3 left (MB)", "BW left (GB/s)"});
  for (std::size_t k = 0; k < cap.available_bytes.size(); ++k)
    t.add_row({std::to_string(k),
               am::Table::num(cap.available_bytes[k] / 1e6, 3),
               k < bw.used_bytes_per_sec.size()
                   ? am::Table::num(bw.available(static_cast<std::uint32_t>(k)) / 1e9, 2)
                   : "-"});
  std::printf("calibration on %s:\n", s.machine.name.c_str());
  t.print(std::cout);
  return 0;
}

int cmd_profile(const am::Cli& cli) {
  const std::string app = cli.get("app", "synthetic");
  const auto ranks = static_cast<std::uint32_t>(cli.get_int("ranks", 24));
  const auto per_socket =
      static_cast<std::uint32_t>(cli.get_int("per-socket", 1));
  const std::uint32_t nodes =
      app == "synthetic" ? 1u
                         : (ranks / per_socket + 1) / 2 + 1;
  const auto s = make_setup(cli, nodes);

  am::measure::SimBackend backend(s.machine);
  am::measure::CalibrationOptions copts;
  copts.buffer_to_l3_ratios = {2.5};
  copts.probe_distributions = {9};
  copts.accesses_per_probe = 120'000;
  const auto cap_calib =
      am::measure::calibrate_capacity(s.machine, s.cs, copts);
  const auto bw_calib = am::measure::calibrate_bandwidth(s.machine, s.bw, 2);
  am::measure::ActiveMeasurer measurer(backend, cap_calib, bw_calib);

  am::measure::SimBackend::WorkloadFactory factory;
  if (app == "mcb") {
    auto cfg = am::apps::McbConfig::paper(
        static_cast<std::uint32_t>(cli.get_int("particles", 20'000)),
        s.scale);
    cfg.steps = 2;
    factory = am::measure::make_mcb_workload(ranks, per_socket, cfg);
  } else if (app == "lulesh") {
    auto cfg = am::apps::LuleshConfig::paper(
        static_cast<std::uint32_t>(cli.get_int("edge", 22)), s.scale);
    cfg.steps = 2;
    factory = am::measure::make_lulesh_workload(ranks, per_socket, cfg);
  } else {
    const auto elements = static_cast<std::uint64_t>(
        cli.get_double("l3-fraction", 0.5) * s.machine.l3.size_bytes / 4);
    factory = am::measure::make_synthetic_workload(am::apps::SyntheticConfig{
        am::model::AccessDistribution::uniform(elements, "Uni"), 4, 1,
        elements * 2, 150'000});
  }

  const auto max_cs = std::min(5u, s.machine.cores_per_socket - per_socket);
  const auto max_bw = std::min(2u, s.machine.cores_per_socket - per_socket);
  const auto cs_sweep = measurer.sweep(
      factory, am::measure::Resource::kCacheStorage, max_cs, s.cs, s.bw);
  const auto bw_sweep = measurer.sweep(
      factory, am::measure::Resource::kBandwidth, max_bw, s.cs, s.bw);

  am::Table t({"resource", "threads", "time (ms)", "slowdown"});
  for (const auto* sweep : {&cs_sweep, &bw_sweep})
    for (const auto& p : sweep->points)
      t.add_row({am::measure::resource_name(sweep->resource),
                 std::to_string(p.threads),
                 am::Table::num(p.seconds * 1e3, 3),
                 am::Table::num(p.seconds / sweep->points.front().seconds, 3)});
  std::printf("profile of '%s' on %s:\n", app.c_str(),
              s.machine.name.c_str());
  t.print(std::cout);

  const auto cap_bounds =
      am::measure::ActiveMeasurer::bounds(cs_sweep, per_socket);
  const auto bw_bounds =
      am::measure::ActiveMeasurer::bounds(bw_sweep, per_socket);
  std::printf("\nper-process resource use (§IV bounds):\n");
  std::printf("  cache capacity : %.2f - %.2f MB%s\n",
              cap_bounds.lower / 1e6, cap_bounds.upper / 1e6,
              cap_bounds.fits_at_all_levels ? " (upper bound only)" : "");
  std::printf("  memory bandwidth: %.2f - %.2f GB/s%s\n",
              bw_bounds.lower / 1e9, bw_bounds.upper / 1e9,
              bw_bounds.fits_at_all_levels ? " (upper bound only)" : "");
  return 0;
}

int cmd_host(const am::Cli& cli) {
  const auto buffer_mb =
      static_cast<std::uint64_t>(cli.get_int("buffer-mb", 8));
  am::measure::HostSweepOptions opts;
  opts.max_threads = static_cast<std::uint32_t>(cli.get_int("threads", 3));
  opts.repetitions = static_cast<std::uint32_t>(cli.get_int("reps", 3));

  std::vector<std::uint32_t> buf(buffer_mb * 1024 * 1024 / 4);
  std::iota(buf.begin(), buf.end(), 0u);
  volatile std::uint64_t sink = 0;
  am::measure::HostMeasurer measurer;
  const auto result = measurer.sweep(
      [&] {
        std::uint64_t acc = 0;
        std::size_t idx = 0;
        for (int pass = 0; pass < 2; ++pass)
          for (std::size_t i = 0; i < buf.size(); ++i) {
            idx = (idx * 1103515245 + 12345) % buf.size();
            acc += buf[idx];
          }
        sink = acc;
      },
      opts);
  am::Table t({"CSThrs", "mean (ms)", "stddev (ms)"});
  for (const auto& p : result.points)
    t.add_row({std::to_string(p.threads),
               am::Table::num(p.seconds_mean * 1e3, 1),
               am::Table::num(p.seconds_stddev * 1e3, 1)});
  t.print(std::cout);
  const int onset = result.degradation_onset(0.10);
  if (onset >= 0)
    std::printf("degradation onset at %d interference thread(s)\n", onset);
  else
    std::printf("no onset detected (quiet machine required)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  am::Cli cli(argc, argv);
  const auto& pos = cli.positional();
  const std::string cmd = pos.empty() ? "" : pos[0];
  if (cmd == "calibrate") return cmd_calibrate(cli);
  if (cmd == "profile") return cmd_profile(cli);
  if (cmd == "host") return cmd_host(cli);
  std::printf(
      "amtool — Active Measurement of memory resource consumption\n"
      "usage:\n"
      "  amtool calibrate [--scale N]\n"
      "  amtool profile [--scale N] [--app synthetic|mcb|lulesh]\n"
      "                 [--ranks R] [--per-socket P] [--particles N]\n"
      "                 [--edge E] [--l3-fraction F]\n"
      "  amtool host [--threads K] [--buffer-mb M] [--reps R]\n");
  return cmd.empty() ? 0 : 1;
}

// Domain scenario 4: co-scheduling two applications on one socket. Each
// application is profiled *in isolation* with Active Measurement; the
// advisor then predicts the cost of co-location — and we validate the
// prediction by actually co-running the pair on the simulator.
//
// Build & run:  ./build/examples/coschedule_advisor [--scale N] [--accesses N]
//               [--results-dir DIR] [--shard i/n | --lease FILE |
//               --emit-plan FILE] [--worker]
//
// The scheduling flags make the advisor orchestratable by amsweep (see
// mcb_mapping_study for the contract); worker exits follow
// measure::SweepOrchestrator (2 = usage, 3 = run failure).
#include <cstdio>
#include <iostream>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/heartbeat.hpp"
#include "common/work_lease.hpp"
#include "measure/active_measurer.hpp"
#include "measure/app_workloads.hpp"
#include "measure/calibration.hpp"
#include "measure/coschedule.hpp"
#include "measure/lease.hpp"
#include "measure/orchestrator.hpp"
#include "model/distributions.hpp"

namespace {

am::apps::SyntheticConfig make_app(const am::sim::MachineConfig& m,
                                   double l3_fraction,
                                   std::uint64_t accesses) {
  const auto elements = static_cast<std::uint64_t>(
      l3_fraction * static_cast<double>(m.l3.size_bytes) / 4.0);
  return am::apps::SyntheticConfig{
      am::model::AccessDistribution::uniform(elements, "Uni"), 4, 1,
      elements * 2, accesses};
}

int advise(const am::Cli& cli) {
  const auto kScale = static_cast<std::uint32_t>(cli.get_int("scale", 16));
  const auto accesses =
      static_cast<std::uint64_t>(cli.get_int("accesses", 150'000));
  // One scheduling mode at most (shared contract with the bench
  // drivers); the --shard/--results-dir pairing is validated by
  // ResultStoreFile, which is disabled when no results dir is given.
  const auto [shard, lease, emit_plan] =
      am::measure::parse_scheduling_flags(cli);
  auto store =
      lease.empty()
          ? am::measure::ResultStoreFile(cli.get("results-dir", ""),
                                         "coschedule_advisor", shard)
          : am::measure::ResultStoreFile::for_lease(
                cli.get("results-dir", ""), "coschedule_advisor", lease);
  std::optional<am::HeartbeatWriter> heartbeat;
  if (cli.get_bool("worker", false))
    heartbeat.emplace(lease.empty() ? store.path() + ".hb"
                                    : am::lease_heartbeat_path(lease));
  auto machine = am::sim::MachineConfig::xeon20mb_scaled(kScale);
  am::sim::apply_mem_backend(machine, cli.get("mem-backend", "channel"));
  am::interfere::CSThrConfig cs;
  cs.buffer_bytes = 4ull * 1024 * 1024 / kScale;
  am::interfere::BWThrConfig bw;
  bw.buffer_bytes = 520ull * 1024 / kScale;

  am::measure::CalibrationOptions copts;
  copts.buffer_to_l3_ratios = {2.5};
  copts.probe_distributions = {9};
  copts.accesses_per_probe = accesses * 2 / 3;  // 100k at the 150k default
  const auto cap_calib = am::measure::calibrate_capacity(machine, cs, copts);
  const auto bw_calib = am::measure::calibrate_bandwidth(machine, bw, 2);

  am::measure::SimBackend backend(machine);
  am::measure::ActiveMeasurer measurer(backend, cap_calib, bw_calib);
  am::ThreadPool pool;
  measurer.set_pool(&pool);

  measurer.set_store(store.store(), store.checkpointer());

  // Profile two applications in isolation: one light (25% of L3), one
  // heavy (60% of L3). Both profiles go into one experiment grid, so each
  // app's storage and bandwidth sweeps share a single baseline run and the
  // whole plan executes over the pool at once. Parameters live in the
  // workload names — they key the ResultStore.
  const auto light_cfg = make_app(machine, 0.25, accesses);
  const auto heavy_cfg = make_app(machine, 0.60, accesses);
  const auto atag = " a=" + std::to_string(accesses);
  const std::vector<am::measure::GridRequest> requests{
      {am::measure::make_synthetic_workload(light_cfg), "light l3=0.25" + atag,
       5, 2},
      {am::measure::make_synthetic_workload(heavy_cfg), "heavy l3=0.60" + atag,
       5, 2}};
  if (!emit_plan.empty()) {
    measurer.sweep_grid_emit_plan(requests, emit_plan, cs, bw);
    std::cout << "plan info -> " << emit_plan << "\n";
    return 0;
  }
  if (!lease.empty()) {
    const auto executed =
        measurer.sweep_grid_lease(requests, store, lease, std::cout, cs, bw);
    store.finish(executed, measurer.last_planned(), std::cout);
    return 0;
  }
  if (shard.sharded()) {
    const auto executed = measurer.sweep_grid_shard(requests, shard, cs, bw);
    store.finish(executed, measurer.last_planned(), std::cout);
    return 0;  // merge the shard stores with amresult, then re-run
  }
  const auto sweeps = measurer.sweep_grid(requests, cs, bw);
  store.finish(measurer.last_executed(), measurer.last_planned(), std::cout);
  auto profile = [](const char* name, const am::measure::GridSweeps& s) {
    auto p = am::measure::AppProfile::from_sweeps(name, s.storage,
                                                  s.bandwidth, 1);
    std::printf("  %-6s uses %.2f-%.2f MB of L3 (baseline %.2f ms)\n", name,
                p.capacity.lower / 1e6, p.capacity.upper / 1e6,
                s.storage.points.front().seconds * 1e3);
    return std::pair{p, s.storage.points.front().seconds};
  };
  std::printf("Profiling in isolation on %s:\n", machine.name.c_str());
  const auto [light, light_base] = profile("light", sweeps[0]);
  const auto [heavy, heavy_base] = profile("heavy", sweeps[1]);

  const am::measure::CoScheduleAdvisor advisor(
      static_cast<double>(machine.l3.size_bytes),
      machine.mem_bandwidth_bytes_per_sec);
  const auto verdict = advisor.advise(light, heavy);
  std::printf("\nAdvisor prediction for co-location on one socket:\n");
  std::printf("  light: %.2fx   heavy: %.2fx   (capacity %s)\n",
              verdict.slowdown_a, verdict.slowdown_b,
              verdict.capacity_oversubscribed ? "OVERSUBSCRIBED" : "fits");

  // Validate: actually co-run the two applications on one socket.
  am::sim::Engine engine(machine);
  auto a1 = std::make_unique<am::apps::SyntheticBenchmarkAgent>(
      engine.memory(), light_cfg, "light");
  auto a2 = std::make_unique<am::apps::SyntheticBenchmarkAgent>(
      engine.memory(), heavy_cfg, "heavy");
  auto* light_raw = a1.get();
  auto* heavy_raw = a2.get();
  const auto i1 = engine.add_agent(std::move(a1), 0);
  const auto i2 = engine.add_agent(std::move(a2), 1);
  engine.run();
  const double light_colo =
      machine.cycles_to_seconds(engine.agent_clock(i1) -
                                light_raw->measure_start_cycle());
  const double heavy_colo =
      machine.cycles_to_seconds(engine.agent_clock(i2) -
                                heavy_raw->measure_start_cycle());
  std::printf("\nActual co-run:\n  light: %.2fx   heavy: %.2fx\n",
              light_colo / light_base, heavy_colo / heavy_base);
  std::printf(
      "\n(Predictions come from isolated profiles only — the two apps never\n"
      "ran together during profiling. They are conservative by construction:\n"
      "the sensitivity curves were measured against CSThr interference, and a\n"
      "CSThr denies cache far more aggressively than a co-running application\n"
      "with its own locality. A 'safe' verdict is therefore trustworthy, an\n"
      "'unsafe' one errs toward caution.)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Machine-readable exits for supervisors (measure::SweepOrchestrator).
  try {
    const am::Cli cli(argc, argv);
    return advise(cli);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "coschedule_advisor: %s\n", e.what());
    return am::measure::kWorkerExitUsage;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "coschedule_advisor: %s\n", e.what());
    return am::measure::kWorkerExitRunFailed;
  }
}

// Domain scenario 3: the host-native deployment path. Runs a real
// workload on *this* machine under the paper's actual interference
// threads (Fig. 2 / Fig. 3 code), timing it with and without them — the
// same measurement a user would make on a dedicated Xeon node. Hardware
// counters are used when the kernel permits (perf_event_open), and
// skipped gracefully otherwise.
//
// Build & run:  ./build/examples/host_probe [buffer-mb] [threads]
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "measure/host_backend.hpp"

namespace {

/// A cache-sensitive workload: repeated random-ish walks over a buffer.
double run_walk(std::vector<std::uint32_t>& buf, int passes) {
  std::uint64_t acc = 0;
  const std::size_t n = buf.size();
  std::size_t idx = 0;
  for (int p = 0; p < passes; ++p)
    for (std::size_t i = 0; i < n; ++i) {
      idx = (idx * 1103515245 + 12345) % n;
      acc += buf[idx];
    }
  return static_cast<double>(acc);
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t buffer_mb =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8;
  const std::uint32_t max_threads =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 3;

  std::vector<std::uint32_t> buf(buffer_mb * 1024 * 1024 / 4);
  std::iota(buf.begin(), buf.end(), 0u);

  am::measure::HostBackend backend;
  volatile double sink = 0.0;

  std::printf("Host probe: %llu MB random walk vs CSThr interference\n",
              static_cast<unsigned long long>(buffer_mb));
  double baseline = 0.0;
  for (std::uint32_t k = 0; k <= max_threads; ++k) {
    am::measure::HostRunOptions opts;
    opts.resource = am::measure::Resource::kCacheStorage;
    opts.count = k;
    const auto result =
        backend.run([&] { sink = run_walk(buf, 3); }, opts);
    if (k == 0) baseline = result.seconds;
    std::printf("  %u CSThr(s): %7.1f ms (%.1f%% slowdown)", k,
                result.seconds * 1e3,
                (result.seconds / baseline - 1.0) * 100.0);
    if (result.counters)
      std::printf("  [LLC miss rate %.3f]",
                  result.counters->cache_miss_rate());
    else if (k == 0)
      std::printf("  [perf counters unavailable here]");
    std::printf("\n");
  }
  std::printf(
      "\nNote: in a container or on a busy machine these numbers are\n"
      "noisy; on a quiet multi-core host the slowdown onset marks the\n"
      "walk's shared-cache footprint, as in the paper's Fig. 1.\n");
  return 0;
}

// Domain scenario 1: the paper's §IV study — where should MCB's 24 MPI
// processes be placed? Packing more processes per processor shares the L3
// between them but keeps communication on-chip; spreading them out gives
// each process a whole L3 but routes all messages over the memory bus.
// Active Measurement quantifies both effects.
//
// Build & run:  ./build/examples/mcb_mapping_study [--scale N]
//               [--particles N] [--steps N]
//               [--results-dir DIR] [--shard i/n | --lease FILE |
//               --emit-plan FILE] [--worker]
//
// The scheduling flags make the study orchestratable by amsweep: --shard
// is a static slice, --lease joins a dynamic work queue, --emit-plan
// answers a scheduler's plan probe. Worker exit codes follow the
// measure::SweepOrchestrator contract (2 = usage, 3 = run failure).
#include <cstdio>
#include <iostream>
#include <optional>
#include <stdexcept>
#include <vector>

#include "common/cli.hpp"
#include "common/heartbeat.hpp"
#include "common/thread_pool.hpp"
#include "common/work_lease.hpp"
#include "measure/app_workloads.hpp"
#include "measure/experiment_plan.hpp"
#include "measure/lease.hpp"
#include "measure/orchestrator.hpp"

namespace {

int study(const am::Cli& cli) {
  const auto kScale = static_cast<std::uint32_t>(cli.get_int("scale", 16));
  // One scheduling mode at most (shared contract with the bench
  // drivers); the --shard/--results-dir pairing is validated by
  // ResultStoreFile, which is disabled when no results dir is given.
  const auto [shard, lease, emit_plan] =
      am::measure::parse_scheduling_flags(cli);
  auto store =
      lease.empty()
          ? am::measure::ResultStoreFile(cli.get("results-dir", ""),
                                         "mcb_mapping_study", shard)
          : am::measure::ResultStoreFile::for_lease(
                cli.get("results-dir", ""), "mcb_mapping_study", lease);
  std::optional<am::HeartbeatWriter> heartbeat;
  if (cli.get_bool("worker", false))
    heartbeat.emplace(lease.empty()
                          ? store.path() + ".hb"
                          : am::lease_heartbeat_path(lease));
  auto machine =
      am::sim::MachineConfig::xeon20mb_scaled(kScale, /*nodes=*/12);
  // The backend is part of the machine fingerprint (when not the default
  // channel), so banked runs cache under their own store keys.
  am::sim::apply_mem_backend(machine, cli.get("mem-backend", "channel"));
  am::interfere::CSThrConfig cs;
  cs.buffer_bytes = 4ull * 1024 * 1024 / kScale;

  const auto particles =
      static_cast<std::uint32_t>(cli.get_int("particles", 20'000));
  auto cfg = am::apps::McbConfig::paper(particles, kScale);
  cfg.steps = static_cast<std::uint32_t>(cli.get_int("steps", 3));

  // Declare the whole mapping study as one plan: the runner owns the
  // thread pool, per-experiment seeds and the baseline table.
  const std::vector<std::uint32_t> mappings{1, 2, 4};
  am::measure::ExperimentPlan plan;
  std::vector<std::pair<am::measure::WorkloadId, std::uint32_t>> cells;
  for (const std::uint32_t p : mappings) {
    // Parameters live in the name: it keys the ResultStore.
    const auto id = plan.add_workload(
        {"mcb r24 s" + std::to_string(cfg.steps) + " particles=" +
             std::to_string(particles) + " p=" + std::to_string(p),
         am::measure::make_mcb_workload(24, p, cfg)});
    const std::uint32_t k = std::min(4u, machine.cores_per_socket - p);
    plan.add_point(id, am::measure::Resource::kCacheStorage, 0);
    plan.add_point(id, am::measure::Resource::kCacheStorage, k);
    cells.emplace_back(id, k);
  }

  am::measure::SweepRunnerOptions opts;
  opts.mix_seed_per_point = false;  // baseline and interfered share a seed
  opts.cs = cs;
  opts.checkpoint = store.checkpointer();  // keep finished runs on a crash
  const am::measure::SweepRunner runner(machine, opts);
  am::ThreadPool pool;

  if (!emit_plan.empty()) {
    am::measure::emit_plan_info(plan, runner, store.store(), emit_plan);
    std::cout << "plan info: " << plan.size() << " point(s) -> " << emit_plan
              << "\n";
    return 0;
  }
  if (!lease.empty()) {
    const auto report = am::measure::run_lease_worker(plan, runner, &pool,
                                                      store, lease,
                                                      std::cout);
    store.finish(report.executed, report.points, std::cout);
    return 0;
  }
  std::size_t executed = 0;
  const auto table = runner.run(plan, &pool, store.store(), shard, &executed);
  if (store.finish(executed, table.size(), std::cout))
    return 0;  // shard: merge with amresult, then re-run to print

  std::printf("MCB, 24 ranks, %u particles on %s\n\n", particles,
              machine.name.c_str());
  std::printf("%-14s %-12s %-16s %-18s\n", "p/processor", "nodes",
              "baseline (ms)", "+4 CSThr (ms)");
  for (std::size_t i = 0; i < mappings.size(); ++i) {
    const std::uint32_t p = mappings[i];
    const auto& [id, k] = cells[i];
    const auto& base = table.baseline(id);
    const auto& interfered =
        table.at(id, am::measure::Resource::kCacheStorage, k);
    std::printf("%-14u %-12u %-16.3f %-10.3f (+%.1f%%)\n", p, 24 / (2 * p),
                base.seconds * 1e3, interfered.seconds * 1e3,
                (table.slowdown(id, am::measure::Resource::kCacheStorage, k) -
                 1.0) *
                    100.0);
  }
  std::printf(
      "\nReading the table: if packed mappings degrade at fewer CSThrs,\n"
      "each process needs a bigger share of the L3 than packing leaves it;\n"
      "if the spread-out mapping uses more bandwidth, co-scheduling other\n"
      "jobs on the free cores will hurt (see bench/fig9, fig10 for the\n"
      "full sweeps).\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Machine-readable exits for supervisors (measure::SweepOrchestrator):
  // flag rejections are usage errors no retry can fix; anything else out
  // of the sweep is a retryable run failure.
  try {
    const am::Cli cli(argc, argv);
    return study(cli);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "mcb_mapping_study: %s\n", e.what());
    return am::measure::kWorkerExitUsage;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mcb_mapping_study: %s\n", e.what());
    return am::measure::kWorkerExitRunFailed;
  }
}

// Domain scenario 2: the paper's headline use case — predict how an
// application will perform on a *future, memory-starved* machine (the
// paper's Exascale motivation: 1-2 orders of magnitude less capacity and
// bandwidth per core) without owning such a machine. The sensitivity
// curves measured via interference become a predictor.
//
// Build & run:  ./build/examples/predict_future_machine [--scale N]
//               [--accesses N]
#include <cstdio>

#include "common/cli.hpp"
#include "measure/active_measurer.hpp"
#include "measure/app_workloads.hpp"
#include "measure/calibration.hpp"
#include "model/distributions.hpp"

int main(int argc, char** argv) {
  const am::Cli cli(argc, argv);
  const auto kScale = static_cast<std::uint32_t>(cli.get_int("scale", 16));
  const auto accesses =
      static_cast<std::uint64_t>(cli.get_int("accesses", 200'000));
  const auto machine = am::sim::MachineConfig::xeon20mb_scaled(kScale);
  am::interfere::CSThrConfig cs;
  cs.buffer_bytes = 4ull * 1024 * 1024 / kScale;
  am::interfere::BWThrConfig bw;
  bw.buffer_bytes = 520ull * 1024 / kScale;

  am::measure::CalibrationOptions copts;
  copts.buffer_to_l3_ratios = {2.5};
  copts.probe_distributions = {9};
  copts.accesses_per_probe = accesses / 2;
  const auto capacity = am::measure::calibrate_capacity(machine, cs, copts);
  const auto bandwidth = am::measure::calibrate_bandwidth(machine, bw, 2);

  // Application under study: a cache-hungry probabilistic kernel.
  const std::uint64_t elements = machine.l3.size_bytes * 5 / 4 / 4;
  const auto dist = am::model::AccessDistribution::exponential(
      elements, 6.0 / static_cast<double>(elements), "Exp_6");
  const auto workload =
      am::measure::make_synthetic_workload(am::apps::SyntheticConfig{
          dist, 4, 1, elements * 2, accesses});

  am::measure::SimBackend backend(machine);
  am::measure::ActiveMeasurer measurer(backend, capacity, bandwidth);
  const auto sweep = measurer.sweep(
      workload, am::measure::Resource::kCacheStorage, 5, cs, bw);
  const auto curve = sweep.curve();

  std::printf("Measured sensitivity on %s (L3 %.2f MB):\n",
              machine.name.c_str(), machine.l3.size_bytes / 1e6);
  for (const auto& p : sweep.points)
    std::printf("  %.2f MB available -> %.3f ms\n",
                p.resource_available / 1e6, p.seconds * 1e3);

  std::printf("\nPredicted slowdown on hypothetical future nodes:\n");
  for (const double fraction : {0.75, 0.5, 0.25, 0.125}) {
    const double future_l3 =
        static_cast<double>(machine.l3.size_bytes) * fraction;
    std::printf("  L3 scaled to %4.1f%% (%.2f MB): %.2fx\n",
                fraction * 100.0, future_l3 / 1e6,
                curve.predict_slowdown(future_l3));
  }
  std::printf(
      "\nThe application needs >= %.2f MB of shared cache to run without\n"
      "degradation; below that the curve above is the expected cost.\n",
      curve.active_use_threshold(0.05) / 1e6);
  return 0;
}

// Quickstart: actively measure how much shared-cache capacity a workload
// uses, exactly as in Fig. 1 of the paper.
//
//   1. Calibrate the CSThr interference thread (how much capacity do k
//      threads deny?).
//   2. Run the workload under 0..5 CSThrs and record its runtime.
//   3. The level where performance starts to degrade reveals the
//      application's active capacity use.
//
// Build & run:  ./build/examples/quickstart [--scale N] [--accesses N]
#include <cstdio>

#include "common/cli.hpp"
#include "measure/active_measurer.hpp"
#include "measure/app_workloads.hpp"
#include "measure/calibration.hpp"
#include "model/distributions.hpp"

int main(int argc, char** argv) {
  const am::Cli cli(argc, argv);
  // Default: a 1:16 scale model of the paper's Xeon20MB node (1.25 MB L3).
  const auto scale =
      static_cast<std::uint32_t>(cli.get_int("scale", 16));
  const auto accesses =
      static_cast<std::uint64_t>(cli.get_int("accesses", 200'000));
  auto machine = am::sim::MachineConfig::xeon20mb_scaled(scale);
  // Optional: swap the memory model under the whole measurement
  // (--mem-backend channel|banked|ddr4|hbm).
  am::sim::apply_mem_backend(machine, cli.get("mem-backend", "channel"));

  am::interfere::CSThrConfig cs;
  cs.buffer_bytes = 4ull * 1024 * 1024 / scale;
  am::interfere::BWThrConfig bw;
  bw.buffer_bytes = 520ull * 1024 / scale;

  std::printf("Calibrating interference threads on %s...\n",
              machine.name.c_str());
  am::measure::CalibrationOptions copts;
  copts.buffer_to_l3_ratios = {2.5};
  copts.probe_distributions = {9};  // uniform probe
  copts.accesses_per_probe = accesses / 2;
  const auto capacity = am::measure::calibrate_capacity(machine, cs, copts);
  const auto bandwidth =
      am::measure::calibrate_bandwidth(machine, bw, /*max_threads=*/2);
  for (std::size_t k = 0; k < capacity.available_bytes.size(); ++k)
    std::printf("  %zu CSThr(s) -> %.2f MB of L3 left\n", k,
                capacity.available_bytes[k] / 1e6);

  // The workload under study: a probabilistic kernel whose working set is
  // about 60%% of the L3 (so it should tolerate mild interference only).
  const std::uint64_t elements = machine.l3.size_bytes * 6 / 10 / 4;
  const auto dist = am::model::AccessDistribution::normal(
      elements, elements / 2.0, elements / 6.0, "Norm_6");
  const auto workload =
      am::measure::make_synthetic_workload(am::apps::SyntheticConfig{
          dist, 4, /*compute_ops=*/1, /*warmup=*/elements * 2, accesses});

  am::measure::SimBackend backend(machine);
  am::measure::ActiveMeasurer measurer(backend, capacity, bandwidth);

  std::printf("\nSweeping cache-storage interference...\n");
  const auto sweep = measurer.sweep(
      workload, am::measure::Resource::kCacheStorage, 5, cs, bw);
  for (const auto& p : sweep.points)
    std::printf("  %u CSThr(s): %.3f ms (%.1f%% slowdown, %.2f MB left)\n",
                p.threads, p.seconds * 1e3,
                (p.seconds / sweep.points.front().seconds - 1.0) * 100.0,
                p.resource_available / 1e6);

  const auto bounds = am::measure::ActiveMeasurer::bounds(sweep, 1, 0.05);
  if (bounds.degraded_at_any_level)
    std::printf("\nThe workload actively uses between %.2f and %.2f MB of "
                "shared cache.\n",
                bounds.lower / 1e6, bounds.upper / 1e6);
  else
    std::printf("\nThe workload fits in %.2f MB or less of shared cache "
                "(never degraded).\n",
                bounds.upper / 1e6);
  return 0;
}

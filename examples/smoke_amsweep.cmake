# End-to-end exercise of the amsweep orchestrator (ctest smoke entry):
# run a scaled-down fig9 grid serially, then the same grid through amsweep
# with 2 worker processes and one injected worker kill (claimed crash
# marker -> SIGKILL -> retried on the next free slot), in both static-shard
# and lease (dynamic work-queue) modes, and require
#   1. each orchestrated merged store to be bit-identical to the serial
#      one (kill + retry included),
#   2. an unsharded driver re-run against the merged store to be fully
#      cached (zero engine runs),
#   3. repeated amsweeps over the same store to execute zero engine runs,
#   4. the new scheduling flags to be strictly parsed (exit 2 on junk).
# Driven by -D vars:
#   AMSWEEP — path to the amsweep binary
#   FIG9    — path to the fig9_mcb_degradation binary
#   WORKDIR — scratch directory (wiped on entry)
file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}")

set(fig9_args --scale 64 --ranks 8 --steps 1 --quick --max-cs 1 --max-bw 1)

function(run_checked out_var)
  execute_process(COMMAND ${ARGN}
    OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE code)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "command failed (${code}): ${ARGN}\n${out}\n${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

# 1. The ground truth: the same grid run serially into its own store.
run_checked(direct "${FIG9}" ${fig9_args} --results-dir "${WORKDIR}/direct")

# 2. The orchestrated run, with exactly one worker dying mid-shard: the
#    first worker to claim (delete) the marker raises SIGKILL before doing
#    any work, and amsweep must retry that shard.
file(WRITE "${WORKDIR}/crash.marker" "")
run_checked(orchestrated "${AMSWEEP}"
  --results-dir "${WORKDIR}/orch" --workers 2 --shards 2 --retries 1 --
  "${FIG9}" ${fig9_args} --test-crash-marker "${WORKDIR}/crash.marker")
if(EXISTS "${WORKDIR}/crash.marker")
  message(FATAL_ERROR "no worker claimed the crash marker:\n${orchestrated}")
endif()
if(NOT orchestrated MATCHES "signal 9")
  message(FATAL_ERROR
    "expected a SIGKILLed worker attempt in the log:\n${orchestrated}")
endif()
if(NOT EXISTS "${WORKDIR}/orch/fig9_mcb_degradation.manifest.tsv")
  message(FATAL_ERROR "amsweep did not write a run manifest")
endif()

# 3. Kill + retry must not change a single byte of the merged store.
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
  "${WORKDIR}/direct/fig9_mcb_degradation.tsv"
  "${WORKDIR}/orch/fig9_mcb_degradation.tsv"
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
    "orchestrated store differs from the direct serial run's store")
endif()

# 4. The merged store must make an unsharded driver re-run fully cached.
run_checked(cached "${FIG9}" ${fig9_args} --results-dir "${WORKDIR}/orch")
if(NOT cached MATCHES "\\(0 executed")
  message(FATAL_ERROR
    "expected a fully cached re-run against the merged store, got:\n"
    "${cached}")
endif()

# 5. And a repeated amsweep over the same store runs zero engine runs
#    (every shard worker finds its slice already persisted).
run_checked(resweep "${AMSWEEP}"
  --results-dir "${WORKDIR}/orch" --workers 2 --shards 2 --retries 1 --
  "${FIG9}" ${fig9_args})
if(NOT resweep MATCHES "0 engine runs total")
  message(FATAL_ERROR
    "expected a fully cached amsweep re-run, got:\n${resweep}")
endif()

# 6. A partially cached resume — a retry's view of the world: one shard's
#    checkpoint present, the rest still to run — must record every fresh
#    result under its own plan point's key, so completing the store leaves
#    it byte-identical to the direct serial run's.
file(MAKE_DIRECTORY "${WORKDIR}/partial")
configure_file("${WORKDIR}/orch/fig9_mcb_degradation.shard0of2.tsv"
  "${WORKDIR}/partial/fig9_mcb_degradation.tsv" COPYONLY)
run_checked(partial "${FIG9}" ${fig9_args} --results-dir "${WORKDIR}/partial")
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
  "${WORKDIR}/direct/fig9_mcb_degradation.tsv"
  "${WORKDIR}/partial/fig9_mcb_degradation.tsv"
  RESULT_VARIABLE pdiff)
if(NOT pdiff EQUAL 0)
  message(FATAL_ERROR
    "partially cached resume corrupted the store (fresh records keyed by "
    "the wrong plan point?)")
endif()

# 7. Malformed numeric flags are usage errors (exit 2) — strtod happily
#    parses "nan" and "inf", but neither may reach sleep_for or disable
#    stall supervision.
foreach(bad nan inf)
  execute_process(COMMAND "${AMSWEEP}" --results-dir "${WORKDIR}/orch"
    --poll-seconds ${bad} -- "${FIG9}" ${fig9_args}
    OUTPUT_QUIET ERROR_QUIET RESULT_VARIABLE bad_code)
  if(NOT bad_code EQUAL 2)
    message(FATAL_ERROR
      "expected --poll-seconds ${bad} to exit 2 (usage), got ${bad_code}")
  endif()
endforeach()

# 8. The dynamic scheduler: the same grid through lease-mode amsweep with
#    one injected worker SIGKILL mid-lease. The killed lease must be
#    re-queued (retry budget is per-point now) and the merged store must
#    still be bit-identical to the direct serial run.
file(WRITE "${WORKDIR}/lease-crash.marker" "")
run_checked(leased "${AMSWEEP}"
  --results-dir "${WORKDIR}/lease" --schedule lease --workers 2 --retries 1
  --stall-timeout 120 --
  "${FIG9}" ${fig9_args} --test-crash-marker "${WORKDIR}/lease-crash.marker")
if(EXISTS "${WORKDIR}/lease-crash.marker")
  message(FATAL_ERROR "no lease worker claimed the crash marker:\n${leased}")
endif()
if(NOT leased MATCHES "signal 9")
  message(FATAL_ERROR
    "expected a SIGKILLed lease worker in the log:\n${leased}")
endif()
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
  "${WORKDIR}/direct/fig9_mcb_degradation.tsv"
  "${WORKDIR}/lease/fig9_mcb_degradation.tsv"
  RESULT_VARIABLE ldiff)
if(NOT ldiff EQUAL 0)
  message(FATAL_ERROR
    "lease-scheduled store differs from the direct serial run's store")
endif()
file(READ "${WORKDIR}/lease/fig9_mcb_degradation.manifest.tsv" lease_manifest)
if(NOT lease_manifest MATCHES "schedule\tlease")
  message(FATAL_ERROR "lease manifest does not record its schedule")
endif()

# 9. A repeated lease-mode sweep over the merged store must execute zero
#    engine runs — even though the cost model (now fed by recorded run
#    times) may batch the points differently than the first pass.
run_checked(lease_resweep "${AMSWEEP}"
  --results-dir "${WORKDIR}/lease" --schedule lease --workers 2 --
  "${FIG9}" ${fig9_args})
if(NOT lease_resweep MATCHES "0 engine runs total")
  message(FATAL_ERROR
    "expected a fully cached lease re-sweep, got:\n${lease_resweep}")
endif()

# 10. The new scheduling flags are strictly parsed: unknown enum values
#     and negative batch counts are usage errors (exit 2), as is --lease
#     without a path on the driver side.
foreach(bad_flags
    "--schedule;sometimes" "--cost-model;vibes" "--batches;-1")
  execute_process(COMMAND "${AMSWEEP}" --results-dir "${WORKDIR}/lease"
    ${bad_flags} -- "${FIG9}" ${fig9_args}
    OUTPUT_QUIET ERROR_QUIET RESULT_VARIABLE bad_code)
  if(NOT bad_code EQUAL 2)
    message(FATAL_ERROR
      "expected amsweep ${bad_flags} to exit 2 (usage), got ${bad_code}")
  endif()
endforeach()
execute_process(COMMAND "${FIG9}" ${fig9_args} --lease
  OUTPUT_QUIET ERROR_QUIET RESULT_VARIABLE bad_code)
if(NOT bad_code EQUAL 2)
  message(FATAL_ERROR
    "expected a value-less --lease to exit 2 (usage), got ${bad_code}")
endif()
execute_process(COMMAND "${FIG9}" ${fig9_args}
  --lease "${WORKDIR}/x" --shard 0/2
  OUTPUT_QUIET ERROR_QUIET RESULT_VARIABLE bad_code)
if(NOT bad_code EQUAL 2)
  message(FATAL_ERROR
    "expected --lease with --shard to exit 2 (usage), got ${bad_code}")
endif()

# End-to-end exercise of the amsweepd serving path (ctest smoke entry):
# a real daemon with 2 supervised worker processes serving two tenants
# concurrently, with one injected worker SIGKILL and a barrage of
# malformed-frame clients mid-flight, then a SIGTERM drain, a restart,
# and a fully cached resume. Requirements:
#   1. each tenant's namespace store is bit-identical to `amsweep
#      run-local` over the same plan (kill + retry + hostile clients
#      included),
#   2. the malformed-frame clients are each contained (error reply or
#      close; `amsweep _inject` exits 0) and counted in the manifest,
#   3. SIGTERM drains: exit 0, socket file removed, resumable queue,
#   4. a restarted daemon resumes the persisted queue (job ids and all),
#      and a plan resubmitted over a complete namespace store is served
#      with ZERO re-executed engine runs,
#   5. an unreachable daemon maps to client exit 3 (retry later),
#   6. the manifest records per-worker balance (busy_max_over_mean).
# Driven by -D vars:
#   AMSWEEP  — path to the amsweep binary (client subcommands)
#   AMSWEEPD — path to the amsweepd binary
#   WORKDIR  — scratch directory (wiped on entry)
file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}")

# sun_path caps Unix socket paths around 100 bytes and build trees run
# long; keep the socket in /tmp under a random name.
string(RANDOM LENGTH 8 rand)
set(SOCK "/tmp/amsd_${rand}.sock")
set(RESULTS "${WORKDIR}/results")

function(run_checked out_var)
  execute_process(COMMAND ${ARGN}
    OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE code)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "command failed (${code}): ${ARGN}\n${out}\n${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

# Starts amsweepd in the background; writes its pid to ${tag}.pid and,
# once it exits, its exit status to ${tag}.code (both under WORKDIR).
function(start_daemon tag)
  string(JOIN "' '" argv ${AMSWEEPD} ${ARGN})
  execute_process(COMMAND sh -c
    "{ '${argv}' > '${WORKDIR}/${tag}.log' 2>&1 & \
       echo $! > '${WORKDIR}/${tag}.pid'; wait $!; \
       echo $? > '${WORKDIR}/${tag}.code'; } > /dev/null 2>&1 &"
    RESULT_VARIABLE code)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "could not launch daemon '${tag}'")
  endif()
endfunction()

# SIGTERMs daemon ${tag} and requires a clean drain: exit 0 within 60 s
# and the socket file gone.
function(drain_daemon tag)
  file(READ "${WORKDIR}/${tag}.pid" pid)
  string(STRIP "${pid}" pid)
  execute_process(COMMAND sh -c "kill -TERM ${pid}")
  foreach(i RANGE 600)
    if(EXISTS "${WORKDIR}/${tag}.code")
      break()
    endif()
    execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
  endforeach()
  if(NOT EXISTS "${WORKDIR}/${tag}.code")
    execute_process(COMMAND sh -c "kill -KILL ${pid}")
    file(READ "${WORKDIR}/${tag}.log" log)
    message(FATAL_ERROR "daemon '${tag}' did not drain on SIGTERM:\n${log}")
  endif()
  file(READ "${WORKDIR}/${tag}.code" code)
  string(STRIP "${code}" code)
  if(NOT code EQUAL 0)
    file(READ "${WORKDIR}/${tag}.log" log)
    message(FATAL_ERROR "daemon '${tag}' drained with exit ${code}:\n${log}")
  endif()
  if(EXISTS "${SOCK}")
    message(FATAL_ERROR "daemon '${tag}' left its socket file behind")
  endif()
endfunction()

# 1. Two tenants' plans — overlapping grids so fair-share interleaving
#    has identical points in flight for different namespaces — and their
#    serial ground truths.
run_checked(out "${AMSWEEP}" mkplan --workloads uni:1024,norm:1024
  --scale 1024 --accesses 4000 --max-cs 1 --max-bw 1 --seed 5
  --out "${WORKDIR}/alice.plan")
run_checked(out "${AMSWEEP}" mkplan --workloads norm:1024,exp:1024
  --scale 1024 --accesses 4000 --max-cs 1 --max-bw 1 --seed 5
  --out "${WORKDIR}/bob.plan")
run_checked(out "${AMSWEEP}" run-local --plan "${WORKDIR}/alice.plan"
  --out "${WORKDIR}/direct_alice.tsv")
run_checked(out "${AMSWEEP}" run-local --plan "${WORKDIR}/bob.plan"
  --out "${WORKDIR}/direct_bob.tsv")

# 2. Generation 1: a 2-worker daemon with one pre-armed worker kill —
#    the first worker to claim a batch while the marker exists deletes
#    it and SIGKILLs itself mid-lease.
file(WRITE "${WORKDIR}/crash.marker" "")
start_daemon(gen1 --socket "${SOCK}" --results-dir "${RESULTS}"
  --workers 2 --retries 1 --poll-seconds 0.01
  --test-crash-marker "${WORKDIR}/crash.marker")

# 3. Both tenants submit while the daemon is (re)spawning workers.
run_checked(sub_a "${AMSWEEP}" submit --socket "${SOCK}" --ns alice
  --plan "${WORKDIR}/alice.plan")
if(NOT sub_a MATCHES "submitted as job 1 ")
  message(FATAL_ERROR "unexpected submit reply for alice:\n${sub_a}")
endif()
run_checked(sub_b "${AMSWEEP}" submit --socket "${SOCK}" --ns bob
  --plan "${WORKDIR}/bob.plan")
if(NOT sub_b MATCHES "submitted as job 2 ")
  message(FATAL_ERROR "unexpected submit reply for bob:\n${sub_b}")
endif()

# 4. Hostile clients attack the serving path mid-sweep. Each injection
#    opens a real connection and sends malformed bytes; exit 0 means the
#    daemon contained it (error reply and/or close) for that connection
#    alone.
foreach(mode garbage badversion oversize truncate)
  run_checked(out "${AMSWEEP}" _inject --socket "${SOCK}" --mode ${mode})
endforeach()

# 5. Both jobs must still complete, and the injected kill must have
#    actually happened.
run_checked(wait_a "${AMSWEEP}" wait --socket "${SOCK}" --job 1
  --timeout 240)
if(NOT wait_a MATCHES "job 1: done")
  message(FATAL_ERROR "alice's job did not finish:\n${wait_a}")
endif()
run_checked(wait_b "${AMSWEEP}" wait --socket "${SOCK}" --job 2
  --timeout 240)
if(NOT wait_b MATCHES "job 2: done")
  message(FATAL_ERROR "bob's job did not finish:\n${wait_b}")
endif()
if(EXISTS "${WORKDIR}/crash.marker")
  message(FATAL_ERROR "no worker claimed the crash marker")
endif()

# 6. Namespace purity: each tenant's merged store is byte-identical to
#    its serial ground truth — kill, retries, interleaved dispatch and
#    hostile clients notwithstanding.
foreach(tenant alice bob)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
    "${WORKDIR}/direct_${tenant}.tsv" "${RESULTS}/ns-${tenant}.tsv"
    RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR
      "namespace store for ${tenant} differs from the serial run")
  endif()
endforeach()

# 7. SIGTERM drain: exit 0, socket removed, manifest written with the
#    protocol-error count and the worker-balance stat.
drain_daemon(gen1)
file(READ "${RESULTS}/daemon/manifest.tsv" manifest)
if(NOT manifest MATCHES "protocol_errors\t[1-9]")
  message(FATAL_ERROR
    "manifest does not count the injected protocol errors:\n${manifest}")
endif()
if(NOT manifest MATCHES "busy_max_over_mean\t")
  message(FATAL_ERROR "manifest lacks busy_max_over_mean:\n${manifest}")
endif()
if(NOT EXISTS "${RESULTS}/daemon/queue.tsv")
  message(FATAL_ERROR "drained daemon left no resumable queue file")
endif()

# 8. With the daemon gone, clients get exit 3 (retry later), not a hang
#    or a hard error.
execute_process(COMMAND "${AMSWEEP}" status --socket "${SOCK}" --job 1
  --connect-timeout 0.2 OUTPUT_QUIET ERROR_QUIET RESULT_VARIABLE code)
if(NOT code EQUAL 3)
  message(FATAL_ERROR
    "expected exit 3 against a drained daemon, got ${code}")
endif()

# 9. Generation 2 accepts but never dispatches (workers 0): carol's job
#    queues durably across another drain.
start_daemon(gen2 --socket "${SOCK}" --results-dir "${RESULTS}"
  --workers 0 --poll-seconds 0.01)
run_checked(sub_c "${AMSWEEP}" submit --socket "${SOCK}" --ns carol
  --plan "${WORKDIR}/alice.plan")
if(NOT sub_c MATCHES "submitted as job 3 ")
  message(FATAL_ERROR "job ids must survive restarts:\n${sub_c}")
endif()
drain_daemon(gen2)

# 10. Generation 3 resumes the queue and serves carol's job; her store
#     must match the serial ground truth for the same plan.
start_daemon(gen3 --socket "${SOCK}" --results-dir "${RESULTS}"
  --workers 2 --retries 1 --poll-seconds 0.01)
run_checked(wait_c "${AMSWEEP}" wait --socket "${SOCK}" --job 3
  --timeout 240)
if(NOT wait_c MATCHES "job 3: done \\(6/6 points")
  message(FATAL_ERROR "resumed job did not finish:\n${wait_c}")
endif()
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
  "${WORKDIR}/direct_alice.tsv" "${RESULTS}/ns-carol.tsv"
  RESULT_VARIABLE cdiff)
if(NOT cdiff EQUAL 0)
  message(FATAL_ERROR
    "carol's resumed store differs from the serial run")
endif()

# 11. Points merged into a namespace store are never re-executed: the
#     store seeds every worker serving that tenant, so resubmitting the
#     identical plan costs ZERO engine runs, regardless of which worker
#     slot each batch lands on.
run_checked(resub "${AMSWEEP}" submit --socket "${SOCK}" --ns carol
  --plan "${WORKDIR}/alice.plan" --wait --timeout 240)
if(NOT resub MATCHES "job 4: done \\(6/6 points, 0 engine runs\\)")
  message(FATAL_ERROR
    "resubmitted plan must be served fully cached:\n${resub}")
endif()
drain_daemon(gen3)

# End-to-end exercise of the sharded-sweep workflow (ctest smoke entry):
# run mcb_mapping_study as two shards into separate store files, merge them
# with amresult, then re-run unsharded against the merged store and require
# a fully cached run (zero engine executions). Driven by -D vars:
#   STUDY    — path to the mcb_mapping_study binary
#   AMRESULT — path to the amresult binary
#   WORKDIR  — scratch directory (wiped on entry)
file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}")

set(common_args --scale 128 --particles 2000 --steps 1
    --results-dir "${WORKDIR}")

function(run_checked out_var)
  execute_process(COMMAND ${ARGN}
    OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE code)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "command failed (${code}): ${ARGN}\n${out}\n${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

run_checked(shard0 "${STUDY}" ${common_args} --shard 0/2)
run_checked(shard1 "${STUDY}" ${common_args} --shard 1/2)

run_checked(merged "${AMRESULT}" merge
  --out "${WORKDIR}/mcb_mapping_study.tsv"
  "${WORKDIR}/mcb_mapping_study.shard0of2.tsv"
  "${WORKDIR}/mcb_mapping_study.shard1of2.tsv")

run_checked(validated "${AMRESULT}" validate
  "${WORKDIR}/mcb_mapping_study.tsv")
run_checked(shown "${AMRESULT}" show "${WORKDIR}/mcb_mapping_study.tsv")

# The merged store must make the unsharded re-run fully cached.
run_checked(cached "${STUDY}" ${common_args})
if(NOT cached MATCHES "\\(0 executed")
  message(FATAL_ERROR
    "expected a fully cached re-run after merging shards, got:\n${cached}")
endif()

# And the cached table must match a store-free direct run line for line
# (modulo the store bookkeeping line).
run_checked(direct "${STUDY}" --scale 128 --particles 2000 --steps 1)
string(REGEX REPLACE "results: [^\n]*\n" "" cached_table "${cached}")
if(NOT cached_table STREQUAL direct)
  message(FATAL_ERROR
    "cached table differs from direct run.\ncached:\n${cached_table}\n"
    "direct:\n${direct}")
endif()

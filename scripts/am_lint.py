#!/usr/bin/env python3
"""am-lint: repo-specific invariant checks the generic tools can't know.

The methodology's core promise is that merged result stores are
bit-identical to serial runs under any schedule. That property rests on
a handful of coding invariants scattered across layers; this checker
makes them mechanical:

  AM001 raw-rename          All tmp+rename dances live in
                            common/atomic_file; a raw std::rename /
                            filesystem::rename elsewhere is an
                            unreviewed durability/atomicity claim.
  AM002 determinism         src/sim and src/model must be bit-exact
                            replayable: no std::rand/random_device (use
                            common/rng.hpp) and no wall-clock or timer
                            reads (time is simulated, never sampled).
  AM003 hexfloat-wire       Doubles cross serialization boundaries only
                            through the hexfloat ("%a") helpers; decimal
                            float formatting rounds and breaks bit-exact
                            round-trips. (Integer std::to_string is
                            fine; a double passed to it is the one case
                            this rule cannot see — reviews still matter.)
  AM004 fingerprint-cover   Every MachineConfig knob either feeds
                            machine_fingerprint (so it keys the result
                            store) or sits on the explicit exclusion
                            list below with a written rationale. A knob
                            in neither place silently aliases stores; a
                            knob in both places is a stale exclusion.
  AM005 syscall-returns     In common/socket and common/subprocess,
                            syscall return values are either consumed or
                            explicitly discarded with a (void) cast and
                            a reason — a bare call in statement position
                            is an undecided error path.

Each rule is a pure function over (path, text) — no filesystem access —
so scripts/am_lint_test.py can feed fixture snippets straight in.

Usage: am_lint.py [--root REPO]   (exit 0 clean, 1 on violations)
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# --- AM004 exclusion list ---------------------------------------------------
# Knobs deliberately NOT mixed into machine_fingerprint. Every entry
# needs a rationale; an entry that the fingerprint nevertheless mixes is
# reported as stale. See docs/STATIC_ANALYSIS.md for the policy.
FINGERPRINT_EXCLUSIONS = {
    "l1_filter": (
        "pure performance fast path, bit-identical by construction "
        "(sim.filter_identity_test, smoke.fig9_filter_identity); excluded "
        "so toggling it still *hits* the same cached results"
    ),
    "l2_filter": (
        "same contract as l1_filter for the L1-miss/L2-hit band: "
        "bit-identical by construction (sim.filter_identity_test, "
        "smoke.fig9_l2_filter_identity), so toggling it must keep hitting "
        "the same cached results"
    ),
}

# mem_backend/dram and set_hash are mixed conditionally (only when they
# deviate from their defaults — channel backend, mask hash) — that keeps
# pre-existing fingerprints valid. AM004 only requires the tokens to
# appear in the fingerprint body, so the conditional mix satisfies it.
# set_hash must NOT join the exclusion list: H3 changes placement and
# therefore simulated results (asserted by measure.result_store_test).


# --- C++ text utilities -----------------------------------------------------

def strip_comments_and_strings(text: str, keep_strings: bool = False) -> str:
    """Blanks out comments (and, unless keep_strings, string/char
    literals) while preserving line structure, so regexes don't trip on
    prose or quoted examples. Handles //, /* */, "..." with escapes,
    '...', and basic raw strings R"delim(...)delim"."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n
                                 and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i = min(i + 2, n)
        elif c == "R" and nxt == '"':
            m = re.match(r'R"([^()\\ \n]*)\(', text[i:])
            if not m:
                out.append(c)
                i += 1
                continue
            end = text.find(")" + m.group(1) + '"', i + m.end())
            end = n if end < 0 else end + len(m.group(1)) + 2
            chunk = text[i:end]
            out.append(chunk if keep_strings
                       else re.sub(r"[^\n]", " ", chunk))
            i = end
        elif c == '"' or c == "'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            chunk = text[i:j]
            out.append(chunk if keep_strings
                       else re.sub(r"[^\n]", " ", chunk))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def _line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def _findall_lines(pattern: str, text: str):
    return [(_line_of(text, m.start()), m.group(0).strip())
            for m in re.finditer(pattern, text)]


# --- rules ------------------------------------------------------------------

def check_raw_rename(path: str, text: str):
    """AM001: rename()/renameat() outside common/atomic_file."""
    if "common/atomic_file" in path.replace("\\", "/"):
        return []
    code = strip_comments_and_strings(text)
    return [(line, "AM001", f"raw `{tok}` — atomic replace belongs in "
             "common/atomic_file (atomic_write_file/try_atomic_write_file)")
            for line, tok in _findall_lines(r"\brename(?:at)?\s*\(", code)]


DETERMINISM_FORBIDDEN = [
    (r"\bstd::rand\b|\bsrand\s*\(", "std::rand/srand"),
    (r"\brandom_device\b", "std::random_device"),
    (r"\bsystem_clock\b", "wall clock (system_clock)"),
    (r"\bsteady_clock\b", "timer read (steady_clock)"),
    (r"\bhigh_resolution_clock\b", "timer read (high_resolution_clock)"),
    (r"\btime\s*\(", "time()"),
    (r"\bgettimeofday\b|\bclock_gettime\b", "clock syscall"),
    (r"\blocaltime\b|\bgmtime\b", "calendar time"),
]


def check_determinism(path: str, text: str):
    """AM002: nondeterminism sources inside sim/ and model/."""
    code = strip_comments_and_strings(text)
    out = []
    for pattern, what in DETERMINISM_FORBIDDEN:
        out.extend((line, "AM002",
                    f"{what} in the deterministic core (`{tok}`) — seeds "
                    "come from common/rng.hpp, time is simulated")
                   for line, tok in _findall_lines(pattern, code))
    return out


DECIMAL_FLOAT_CONVERSION = re.compile(r"%[-+ #0-9.*]*[eEfFgG]")


def check_hexfloat(path: str, text: str):
    """AM003: decimal float formatting in a wire-format file."""
    code = strip_comments_and_strings(text, keep_strings=True)
    out = []
    for m in re.finditer(r'"(?:[^"\\\n]|\\.)*"', code):
        hit = DECIMAL_FLOAT_CONVERSION.search(m.group(0))
        if hit:
            out.append((_line_of(code, m.start()), "AM003",
                        f"decimal float conversion `{hit.group(0)}` in a "
                        "serialization file — doubles cross the wire as "
                        'hexfloat ("%a") only'))
    for pattern, what in [
        (r"\bsetprecision\s*\(", "std::setprecision"),
        (r"\bstd::(?:fixed|scientific|defaultfloat)\b",
         "decimal stream manipulator"),
    ]:
        out.extend((line, "AM003",
                    f"{what} in a serialization file (`{tok}`) — doubles "
                    'cross the wire as hexfloat ("%a") only')
                   for line, tok in _findall_lines(
                       pattern, strip_comments_and_strings(text)))
    if '"%a"' not in code:
        out.append((1, "AM003",
                    "serialization file no longer references the hexfloat "
                    '"%a" helpers — double round-trips are unprotected'))
    return out


def machine_config_fields(machine_hpp: str):
    """Data members of struct MachineConfig (depth-1 declarations)."""
    code = strip_comments_and_strings(machine_hpp)
    m = re.search(r"^struct MachineConfig\s*\{", code, re.M)
    if not m:
        return []
    fields, depth, body = [], 1, code[m.end():]
    decl = re.compile(r"^\s*[A-Za-z_][\w:<>,*& ]*?[ &]"
                      r"([a-z][a-z0-9_]*)\s*(?:=[^;]*|\{[^;]*\})?;\s*$")
    for line in body.splitlines():
        if depth == 1 and "(" not in line:
            dm = decl.match(line)
            if dm:
                fields.append(dm.group(1))
        depth += line.count("{") - line.count("}")
        if depth <= 0:
            break
    return fields


def check_fingerprint_coverage(machine_hpp: str, result_store_cpp: str):
    """AM004: every MachineConfig knob keys the store or is excluded."""
    fields = machine_config_fields(machine_hpp)
    if not fields:
        return [(1, "AM004", "could not parse struct MachineConfig out of "
                 "sim/machine.hpp — fix the parser or the header")]
    code = strip_comments_and_strings(result_store_cpp)
    m = re.search(r"^std::string machine_fingerprint[^{]*\{", code, re.M)
    if not m:
        return [(1, "AM004",
                 "could not find machine_fingerprint in result_store.cpp")]
    body = code[m.end():]
    end = re.search(r"^\}", body, re.M)
    body = body[:end.start()] if end else body
    mixed = set(re.findall(r"\bm\.([a-z][a-z0-9_]*)", body))
    out = []
    for f in fields:
        if f in mixed and f in FINGERPRINT_EXCLUSIONS:
            out.append((1, "AM004", f"MachineConfig.{f} is mixed into "
                        "machine_fingerprint but also on the exclusion "
                        "list — remove the stale exclusion"))
        elif f not in mixed and f not in FINGERPRINT_EXCLUSIONS:
            out.append((1, "AM004", f"MachineConfig.{f} is neither mixed "
                        "into machine_fingerprint nor on the documented "
                        "exclusion list — stores would alias across "
                        "different configs"))
    return out


# Names that collide with methods in this codebase (Socket::close,
# Subprocess::kill, FrameReader read/write helpers) are only recognized
# with the global :: qualifier — which is also the repo's house style
# for raw syscalls. Unambiguous names are caught with or without it.
_AMBIGUOUS = "close|kill|listen|bind|connect|accept|write|read|send|recv"
_UNAMBIGUOUS = "setsockopt|fcntl|unlink|ftruncate|fsync|waitpid"
# A statement that *begins* with the syscall (result necessarily
# dropped). The non-empty first argument distinguishes ::close(fd) from
# a no-argument method like Socket::close(); a (void) prefix is the
# sanctioned explicit discard.
_BARE_CALL = re.compile(rf"^(?:::(?:{_AMBIGUOUS})|(?:::)?(?:{_UNAMBIGUOUS}))"
                        rf"\s*\(\s*[^)\s]")


def check_syscall_returns(path: str, text: str):
    """AM005: bare syscall in statement position (return value dropped
    without a (void) decision)."""
    code = strip_comments_and_strings(text)
    out = []
    # Statements start after ; { or }. Splitting this way keeps a call
    # that continues an expression (if (... && ::connect(...)) or an
    # assignment) out of statement position no matter how lines wrap.
    start = 0
    for m in re.finditer(r"[;{}]", code):
        seg = code[start:m.start()]
        stmt = seg.strip()
        stmt_line = _line_of(code, start + len(seg) - len(seg.lstrip()))
        start = m.end()
        if _BARE_CALL.match(stmt):
            out.append((stmt_line, "AM005",
                        f"unchecked syscall return (`{stmt.splitlines()[0]}"
                        "`) — consume it or discard explicitly with "
                        "(void) plus a comment saying why that is safe"))
    return out


# --- repo driver ------------------------------------------------------------

CPP_GLOB = ("*.cpp", "*.hpp", "*.cc", "*.h")


def _cpp_files(root: Path, sub: str):
    base = root / sub
    if not base.is_dir():
        return
    for pat in CPP_GLOB:
        yield from sorted(base.rglob(pat))


def lint_repo(root: Path):
    violations = []

    def add(path: Path, found):
        rel = path.relative_to(root).as_posix()
        violations.extend((rel, line, rule, msg) for line, rule, msg in found)

    for sub in ("src", "examples", "bench"):
        for f in _cpp_files(root, sub):
            add(f, check_raw_rename(f.as_posix(), f.read_text()))
    for sub in ("src/sim", "src/model"):
        for f in _cpp_files(root, sub):
            add(f, check_determinism(f.as_posix(), f.read_text()))
    for rel in ("src/measure/result_store.cpp", "src/measure/plan_wire.cpp",
                "src/common/work_lease.cpp"):
        f = root / rel
        if f.exists():
            add(f, check_hexfloat(f.as_posix(), f.read_text()))
    for rel in ("src/common/socket.cpp", "src/common/subprocess.cpp"):
        f = root / rel
        if f.exists():
            add(f, check_syscall_returns(f.as_posix(), f.read_text()))
    machine = root / "src/sim/machine.hpp"
    store = root / "src/measure/result_store.cpp"
    if machine.exists() and store.exists():
        add(store, check_fingerprint_coverage(machine.read_text(),
                                              store.read_text()))
    return violations


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", type=Path,
                    default=Path(__file__).resolve().parent.parent,
                    help="repository root (default: this script's repo)")
    args = ap.parse_args(argv)
    violations = lint_repo(args.root)
    for path, line, rule, msg in violations:
        print(f"{path}:{line}: {rule}: {msg}")
    if violations:
        print(f"am-lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print("am-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())

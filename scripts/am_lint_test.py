#!/usr/bin/env python3
"""Self-test for am_lint.py (registered as ctest `lint.am_lint_selftest`).

Every rule gets at least one fixture that must pass and one seeded
violation that must fail, so a lint rule that silently stops matching
breaks CI instead of rotting. The final test runs the real checker over
the real repository and requires it clean — the same gate the dedicated
CI job applies, but reachable via plain `ctest`.
"""

import sys
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import am_lint  # noqa: E402

REPO = Path(__file__).resolve().parent.parent


def rules(found):
    return [rule for _, rule, _ in found]


class StripperTest(unittest.TestCase):
    def test_strips_comments_and_strings(self):
        text = 'int a; // rename(x, y)\nconst char* s = "rename(a,b)";\n'
        code = am_lint.strip_comments_and_strings(text)
        self.assertNotIn("rename", code)
        self.assertEqual(text.count("\n"), code.count("\n"))

    def test_keeps_strings_when_asked(self):
        text = 'f("%f"); /* %g */'
        code = am_lint.strip_comments_and_strings(text, keep_strings=True)
        self.assertIn('"%f"', code)
        self.assertNotIn("%g", code)

    def test_block_comment_preserves_line_numbers(self):
        text = "a\n/* x\ny */\nrename(p, q);\n"
        code = am_lint.strip_comments_and_strings(text)
        self.assertEqual(am_lint.check_raw_rename("f.cpp", text)[0][0], 4)
        self.assertEqual(text.count("\n"), code.count("\n"))


class RawRenameTest(unittest.TestCase):
    def test_passes_clean_file(self):
        ok = "void f() { am::atomic_write_file(path, body); }\n"
        self.assertEqual(am_lint.check_raw_rename("src/x.cpp", ok), [])

    def test_passes_comment_mention(self):
        ok = "// the store uses tmp+rename(2) via atomic_file\nint x;\n"
        self.assertEqual(am_lint.check_raw_rename("src/x.cpp", ok), [])

    def test_fails_raw_rename(self):
        bad = "void f() { std::filesystem::rename(tmp, path); }\n"
        self.assertEqual(rules(am_lint.check_raw_rename("src/x.cpp", bad)),
                         ["AM001"])

    def test_fails_renameat(self):
        bad = "void f() { ::renameat(a, b, c, d); }\n"
        self.assertEqual(rules(am_lint.check_raw_rename("src/x.cpp", bad)),
                         ["AM001"])

    def test_allows_atomic_file_itself(self):
        bad = "void f() { std::rename(tmp, path); }\n"
        self.assertEqual(
            am_lint.check_raw_rename("src/common/atomic_file.cpp", bad), [])


class DeterminismTest(unittest.TestCase):
    def test_passes_deterministic_code(self):
        ok = ("#include \"common/rng.hpp\"\n"
              "void f() { am::Rng rng(seed); sim_time += latency; }\n"
              "double access_time(int x);\n")
        self.assertEqual(am_lint.check_determinism("src/sim/x.cpp", ok), [])

    def test_fails_each_forbidden_source(self):
        for bad, what in [
            ("int r = std::rand();", "rand"),
            ("std::random_device rd;", "random_device"),
            ("auto t = std::chrono::system_clock::now();", "system_clock"),
            ("auto t = std::chrono::steady_clock::now();", "steady_clock"),
            ("time_t t = time(nullptr);", "time()"),
            ("clock_gettime(CLOCK_MONOTONIC, &ts);", "clock_gettime"),
        ]:
            found = am_lint.check_determinism("src/model/x.cpp", bad)
            self.assertEqual(rules(found), ["AM002"], msg=what)


class HexfloatTest(unittest.TestCase):
    OK = ('static const char* k = "%a";\n'
          'std::snprintf(buf, sizeof(buf), "%a", v);\n'
          'out += std::to_string(count);\n')

    def test_passes_hexfloat_file(self):
        self.assertEqual(am_lint.check_hexfloat("src/x.cpp", self.OK), [])

    def test_fails_decimal_printf(self):
        bad = self.OK + 'std::snprintf(buf, sizeof(buf), "%.17g", v);\n'
        self.assertEqual(rules(am_lint.check_hexfloat("src/x.cpp", bad)),
                         ["AM003"])

    def test_fails_setprecision(self):
        bad = self.OK + "out << std::setprecision(17) << v;\n"
        self.assertEqual(rules(am_lint.check_hexfloat("src/x.cpp", bad)),
                         ["AM003"])

    def test_fails_when_helpers_vanish(self):
        found = am_lint.check_hexfloat("src/x.cpp", "int x;\n")
        self.assertEqual(rules(found), ["AM003"])


MACHINE_FIXTURE = """
struct MachineConfig {
  std::string name = "X";
  std::uint32_t nodes = 1;
  double frequency_ghz = 2.6;
  bool l1_filter = true;
  bool l2_filter = true;
  SetHash set_hash = SetHash::kMask;
  std::uint32_t total() const { return nodes * 2; }
};
"""


def fingerprint_fixture(mixes):
    body = "".join(f"      .mix(m.{f})\n" for f in mixes)
    return ("std::string machine_fingerprint(const sim::MachineConfig& m) {\n"
            "  Fingerprint fp;\n  fp.mix(kResultEpoch)\n" + body +
            "      ;\n  return fp.hex();\n}\n")


class FingerprintCoverageTest(unittest.TestCase):
    FULL = ["name", "nodes", "frequency_ghz", "set_hash"]

    def test_passes_full_coverage(self):
        store = fingerprint_fixture(self.FULL)
        self.assertEqual(
            am_lint.check_fingerprint_coverage(MACHINE_FIXTURE, store), [])

    def test_fails_unmixed_unexcluded_knob(self):
        store = fingerprint_fixture(["name", "nodes", "set_hash"])
        found = am_lint.check_fingerprint_coverage(MACHINE_FIXTURE, store)
        self.assertEqual(rules(found), ["AM004"])
        self.assertIn("frequency_ghz", found[0][2])

    def test_fails_unmixed_set_hash(self):
        # The set-index hash changes placement, so unlike the filters it
        # must key the store — dropping its mix is an AM004 violation.
        store = fingerprint_fixture(["name", "nodes", "frequency_ghz"])
        found = am_lint.check_fingerprint_coverage(MACHINE_FIXTURE, store)
        self.assertEqual(rules(found), ["AM004"])
        self.assertIn("set_hash", found[0][2])

    def test_fails_stale_exclusion(self):
        store = fingerprint_fixture(self.FULL + ["l1_filter"])
        found = am_lint.check_fingerprint_coverage(MACHINE_FIXTURE, store)
        self.assertEqual(rules(found), ["AM004"])
        self.assertIn("stale", found[0][2])

    def test_fails_stale_l2_filter_exclusion(self):
        store = fingerprint_fixture(self.FULL + ["l2_filter"])
        found = am_lint.check_fingerprint_coverage(MACHINE_FIXTURE, store)
        self.assertEqual(rules(found), ["AM004"])
        self.assertIn("stale", found[0][2])
        self.assertIn("l2_filter", found[0][2])

    def test_methods_are_not_fields(self):
        fields = am_lint.machine_config_fields(MACHINE_FIXTURE)
        self.assertEqual(fields, ["name", "nodes", "frequency_ghz",
                                  "l1_filter", "l2_filter", "set_hash"])

    def test_parses_real_machine_hpp(self):
        fields = am_lint.machine_config_fields(
            (REPO / "src/sim/machine.hpp").read_text())
        for expect in ("name", "l1", "dram", "mem_backend", "l1_filter",
                       "l2_filter", "set_hash", "prefetcher",
                       "mem_bandwidth_bytes_per_sec"):
            self.assertIn(expect, fields)
        self.assertNotIn("total_sockets", fields)


class SyscallReturnTest(unittest.TestCase):
    def test_passes_consumed_and_void_cast(self):
        ok = ("void f() {\n"
              "  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one,\n"
              "                   sizeof(one)) != 0)\n"
              "    throw_errno(\"setsockopt\");\n"
              "  (void)::close(fd);\n"
              "  while (waitpid(pid, &ws, 0) < 0 && errno == EINTR) {\n"
              "  }\n"
              "}\n")
        self.assertEqual(am_lint.check_syscall_returns("src/x.cpp", ok), [])

    def test_passes_method_named_like_syscall(self):
        ok = "void Socket::close() { sock.close(); other->kill(); }\n"
        self.assertEqual(am_lint.check_syscall_returns("src/x.cpp", ok), [])

    def test_fails_bare_syscall_statement(self):
        bad = "void f() {\n  ::close(fd);\n}\n"
        found = am_lint.check_syscall_returns("src/x.cpp", bad)
        self.assertEqual(rules(found), ["AM005"])
        self.assertEqual(found[0][0], 2)

    def test_fails_bare_setsockopt_multiline(self):
        bad = ("void f() {\n"
               "  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO,\n"
               "               &tv, sizeof(tv));\n"
               "}\n")
        self.assertEqual(rules(am_lint.check_syscall_returns("x.cpp", bad)),
                         ["AM005"])


class WholeRepoTest(unittest.TestCase):
    def test_repo_is_clean(self):
        violations = am_lint.lint_repo(REPO)
        self.assertEqual(
            violations, [],
            msg="\n".join(f"{p}:{l}: {r}: {m}" for p, l, r, m in violations))

    def test_seeded_violation_is_caught(self):
        # End-to-end proof the repo driver actually reports: lint a copy
        # of the tree layout where one file has a seeded violation.
        import shutil
        import tempfile
        with tempfile.TemporaryDirectory() as td:
            root = Path(td)
            (root / "src/common").mkdir(parents=True)
            shutil.copy(REPO / "src/common/socket.cpp",
                        root / "src/common/socket.cpp")
            bad = root / "src/common/subprocess.cpp"
            bad.write_text("void f() {\n  ::kill(pid, SIGKILL);\n}\n")
            found = am_lint.lint_repo(root)
            self.assertEqual([(p, l, r) for p, l, r, _ in found],
                             [("src/common/subprocess.cpp", 2, "AM005")])


if __name__ == "__main__":
    unittest.main()

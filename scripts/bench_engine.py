#!/usr/bin/env python3
"""Benchmark raw engine speed and the filter fast-path payoffs.

Tracks the simulator's hot path — `sim::MemorySystem::access` under
`sim::Engine` — in BENCH_engine.json, the cycles/sec companion to
BENCH_sweep.json's orchestration numbers:

  * pinned micro_sim_primitives workloads (google-benchmark JSON):
    BM_L1HitSequential (8-byte sequential walk over an L1-resident
    buffer, the hit-heavy access mix the L1 filter exists for) and
    BM_EngineStepOverhead (same-line walker, the filter's best case),
    each with MachineConfig::l1_filter off (/0) vs on (/1); BM_L2HitBand
    (the L1-miss/L2-hit band) with MachineConfig::l2_filter off (/0) vs
    on (/1). Every access in the L1 workloads advances simulated time by
    exactly l1_latency cycles, so simulated cycles/sec is
    accesses/sec x l1_latency. BM_DramBoundStream (L3-miss-heavy
    stream) additionally tracks backend-path throughput: channel pipe
    (/0) vs banked ddr4 backend (/1), reported as `banked_cost`; and
    BM_BatchPipelined tracks absolute access_batch throughput (its
    software pipelining has no toggle — it cannot change results).
  * the fig9 smoke sweep end to end, fast paths off vs on (both filter
    toggles together), with a byte-compare of the emitted tables: the
    filters are host-speed knobs only, so the figure output must be
    identical to the last byte. This identity gate ALWAYS runs — --quick
    trims only the micro workloads — and a skipped or failed compare is
    a nonzero exit, never a silently regenerated JSON.

Usage:
  scripts/bench_engine.py --build build/release [--out BENCH_engine.json]
                          [--quick]

Exit status: 0 on success (a sub-2x speedup is recorded in the JSON, not
fatal — CI wires this step non-blocking), 1 when a run fails or the fig9
outputs differ across the toggles (that is a correctness bug; the
blocking smoke.fig9_filter_identity / smoke.fig9_l2_filter_identity
ctest entries guard it too).
"""

import argparse
import json
import pathlib
import subprocess
import sys
import time

# The Xeon20MB preset's L1 latency: geometry-preserving scaling keeps it,
# and both pinned L1 micro workloads are 100% L1 hits.
L1_LATENCY_CYCLES = 4

MICRO_FILTER = ("BM_L1HitSequential|BM_EngineStepOverhead|BM_L2HitBand"
                "|BM_DramBoundStream|BM_BatchPipelined")
FIG9_ARGS = [
    "--scale", "64", "--ranks", "8", "--steps", "1", "--quick",
    "--max-cs", "1", "--max-bw", "1",
]


def run_micro(binary):
    proc = subprocess.run(
        [str(binary), f"--benchmark_filter={MICRO_FILTER}",
         "--benchmark_format=json"],
        capture_output=True, text=True)
    if proc.returncode != 0:
        print(proc.stderr, file=sys.stderr)
        raise RuntimeError(f"micro benchmarks failed ({proc.returncode})")
    per_name = {
        b["name"]: b["items_per_second"]
        for b in json.loads(proc.stdout)["benchmarks"]
        if "items_per_second" in b
    }
    out = {}
    for stem in ("BM_L1HitSequential", "BM_EngineStepOverhead"):
        off, on = per_name[f"{stem}/0"], per_name[f"{stem}/1"]
        out[stem] = {
            "accesses_per_second_filter_off": round(off),
            "accesses_per_second_filter_on": round(on),
            "sim_cycles_per_second_filter_off": round(off * L1_LATENCY_CYCLES),
            "sim_cycles_per_second_filter_on": round(on * L1_LATENCY_CYCLES),
            "filter_speedup": round(on / off, 3),
        }
    # The L2 filter band: L1-miss/L2-hit accesses with the hot line at the
    # set's deepest way, so off = full-depth L2 walk, on = one MRU compare.
    off, on = per_name["BM_L2HitBand/0"], per_name["BM_L2HitBand/1"]
    out["BM_L2HitBand"] = {
        "accesses_per_second_filter_off": round(off),
        "accesses_per_second_filter_on": round(on),
        "filter_speedup": round(on / off, 3),
    }
    # Backend-path throughput: an L3-miss-heavy stream under the channel
    # pipe (/0) vs the banked ddr4 backend (/1). banked_cost < 1 is the
    # banked model's host-speed price per DRAM-bound access; tracked so a
    # backend change that quietly slows the default path shows up here.
    channel = per_name["BM_DramBoundStream/0"]
    banked = per_name["BM_DramBoundStream/1"]
    out["BM_DramBoundStream"] = {
        "accesses_per_second_channel": round(channel),
        "accesses_per_second_banked": round(banked),
        "banked_cost": round(banked / channel, 3),
    }
    # access_batch with software pipelining: absolute throughput only (the
    # host prefetch has no toggle), tracked so a batch-path regression —
    # or the pipelining rotting away — shows up as a trajectory break.
    out["BM_BatchPipelined"] = {
        "accesses_per_second": round(per_name["BM_BatchPipelined"]),
    }
    return out


def run_fig9(binary, filters):
    cmd = [str(binary), *FIG9_ARGS,
           "--l1-filter", filters, "--l2-filter", filters]
    t0 = time.monotonic()
    proc = subprocess.run(cmd, capture_output=True)
    wall = time.monotonic() - t0
    if proc.returncode != 0:
        print(proc.stderr.decode(errors="replace"), file=sys.stderr)
        raise RuntimeError(
            f"fig9 --l1-filter/--l2-filter {filters} failed "
            f"({proc.returncode})")
    return wall, proc.stdout


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build", default="build/release",
                    help="build tree holding micro_sim_primitives and fig9")
    ap.add_argument("--out", default="BENCH_engine.json")
    ap.add_argument("--quick", action="store_true",
                    help="skip the micro workloads; the fig9 identity "
                         "byte-compare still runs and still gates the exit "
                         "status")
    args = ap.parse_args()

    build = pathlib.Path(args.build)
    micro = build / "bench" / "micro_sim_primitives"
    fig9 = build / "bench" / "fig9_mcb_degradation"
    if not fig9.exists():
        sys.exit(f"missing binary: {fig9} (build the tree first)")

    report = {
        "benchmark": "engine hot path: filter fast paths off vs on",
        "l1_latency_cycles": L1_LATENCY_CYCLES,
        "fig9_args": " ".join(FIG9_ARGS),
    }
    try:
        if args.quick:
            report["micro"] = None
            print("note: --quick, skipping micro workloads", file=sys.stderr)
        elif micro.exists():
            report["micro"] = run_micro(micro)
        else:
            # google-benchmark is optional at build time; the fig9 sweep
            # below still tracks the end-to-end trajectory.
            report["micro"] = None
            print(f"note: {micro} not built, skipping micro workloads",
                  file=sys.stderr)
        wall_off, out_off = run_fig9(fig9, "false")
        wall_on, out_on = run_fig9(fig9, "true")
    except RuntimeError as err:
        sys.exit(str(err))

    report["fig9_smoke"] = {
        "wall_seconds_filter_off": round(wall_off, 3),
        "wall_seconds_filter_on": round(wall_on, 3),
        "filter_speedup": round(wall_off / wall_on, 3) if wall_on > 0 else None,
        "output_identical": out_off == out_on,
    }
    if report["micro"]:
        hit_heavy = report["micro"]["BM_L1HitSequential"]["filter_speedup"]
        report["hit_heavy_filter_speedup_ge_2x"] = hit_heavy >= 2.0
    pathlib.Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    # Hard gate, --quick or not: a JSON regenerated without a passing
    # identity compare must never look like success.
    if report["fig9_smoke"].get("output_identical") is not True:
        sys.exit("fig9 output differs across the filter toggles: "
                 "a fast path changed simulated results")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Benchmark static-shard vs lease scheduling on the skewed fig9 grid.

Runs the scaled-down fig9 sweep twice through amsweep — once with the
static round-robin schedule, once with dynamic lease scheduling — each
against a cold result store, and emits BENCH_sweep.json with the
wall-clock and per-worker busy-time imbalance of both modes. The point
of the dynamic scheduler is load balance on heterogeneous grids, so the
tracked regression signal is lease mode's max/mean busy-time imbalance
staying at or below static's.

Usage:
  scripts/bench_sweep.py --build build/release [--workers 2]
                         [--out BENCH_sweep.json] [--workdir DIR]

Exit status: 0 on success (even when lease loses — the JSON records it;
CI wires this step non-blocking), 1 when a sweep fails outright.
"""

import argparse
import json
import pathlib
import shutil
import subprocess
import sys
import time

FIG9_ARGS = [
    "--scale", "64", "--ranks", "8", "--steps", "1", "--quick",
    "--max-cs", "2", "--max-bw", "1",
]


def parse_manifest(path):
    """The amsweep manifest as {key: [values...]} (repeated keys kept)."""
    out = {}
    for line in pathlib.Path(path).read_text().splitlines():
        if line.startswith("#") or "\t" not in line:
            continue
        key, *rest = line.split("\t")
        out.setdefault(key, []).append(rest)
    return out


def busy_times(manifest, schedule, workers):
    """Per-worker busy seconds. Lease mode records them directly; static
    mode runs one shard per worker slot, so each successful attempt's
    wall-clock is its worker's busy time."""
    if schedule == "lease":
        return [float(row[1]) for row in manifest.get("worker", [])]
    busy = [0.0] * workers
    for row in manifest.get("attempt", []):
        shard, _attempt, status, wall = int(row[0]), row[1], row[2], row[3]
        if status.startswith("exit 0"):
            busy[shard % workers] += float(wall)
    return busy


def run_mode(amsweep, fig9, schedule, workers, workdir):
    results = workdir / schedule
    shutil.rmtree(results, ignore_errors=True)
    cmd = [
        str(amsweep), "--results-dir", str(results),
        "--schedule", schedule,
        "--workers", str(workers), "--shards", str(workers),
        "--stall-timeout", "300",
        "--", str(fig9), *FIG9_ARGS,
    ]
    t0 = time.monotonic()
    proc = subprocess.run(cmd, capture_output=True, text=True)
    wall = time.monotonic() - t0
    if proc.returncode != 0:
        print(proc.stdout, file=sys.stderr)
        print(proc.stderr, file=sys.stderr)
        raise RuntimeError(f"{schedule} sweep failed ({proc.returncode})")
    manifest = parse_manifest(results / "fig9_mcb_degradation.manifest.tsv")
    busy = busy_times(manifest, schedule, workers)
    mean = sum(busy) / len(busy) if busy else 0.0
    return {
        "wall_seconds": round(wall, 3),
        "busy_seconds": [round(b, 3) for b in busy],
        "imbalance_max_over_mean":
            round(max(busy) / mean, 4) if mean > 0 else None,
        "engine_runs": int(manifest["engine_runs"][0][0]),
    }


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build", default="build/release",
                    help="build tree holding the amsweep and fig9 binaries")
    ap.add_argument("--workers", type=int, default=2)
    ap.add_argument("--out", default="BENCH_sweep.json")
    ap.add_argument("--workdir", default="bench_sweep_work")
    args = ap.parse_args()

    build = pathlib.Path(args.build)
    amsweep = build / "examples" / "amsweep"
    fig9 = build / "bench" / "fig9_mcb_degradation"
    for binary in (amsweep, fig9):
        if not binary.exists():
            sys.exit(f"missing binary: {binary} (build the tree first)")
    workdir = pathlib.Path(args.workdir)
    workdir.mkdir(parents=True, exist_ok=True)

    report = {
        "benchmark": "fig9 skewed grid, static vs lease scheduling",
        "workers": args.workers,
        "fig9_args": " ".join(FIG9_ARGS),
    }
    try:
        report["static"] = run_mode(amsweep, fig9, "static", args.workers,
                                    workdir)
        report["lease"] = run_mode(amsweep, fig9, "lease", args.workers,
                                   workdir)
    except RuntimeError as err:
        sys.exit(str(err))

    s, l = (report[m]["imbalance_max_over_mean"] for m in ("static", "lease"))
    report["lease_imbalance_le_static"] = (
        None if s is None or l is None else l <= s)
    pathlib.Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    if report["lease_imbalance_le_static"] is False:
        # Informational, not fatal: one noisy run must not fail CI, but
        # the JSON (and this line) make a trend visible.
        print("note: lease imbalance exceeded static on this run",
              file=sys.stderr)


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Byte-compare a bench driver's output against a pre-refactor golden file.

Runs the given driver command twice — once with no backend flag (the
default must BE the channel backend) and once with `--mem-backend channel`
appended — and fails unless both exit 0 and both stdouts are byte-identical
to the golden capture taken before the MemoryBackend boundary existed.
Any divergence means the refactor changed default-model results, which the
pluggable-backend contract forbids (sim/memory_backend.hpp); the banked
backends are *supposed* to differ and are not checked here. Registered as
the blocking `smoke.fig9_backend_identity` ctest entry; interface-level
equivalence is covered by tests/sim/memory_backend_test.cpp.

Usage: scripts/check_backend_identity.py <driver> <golden-file> [args...]
"""

import sys
import subprocess


def run(extra):
    cmd = [sys.argv[1], *sys.argv[3:], *extra]
    proc = subprocess.run(cmd, capture_output=True)
    if proc.returncode != 0:
        print(proc.stderr.decode(errors="replace"), file=sys.stderr)
        sys.exit(f"run {extra or ['(default)']} failed ({proc.returncode})")
    return proc.stdout


def check(label, out, golden):
    if out == golden:
        return
    for lineno, (a, b) in enumerate(
            zip(golden.splitlines(), out.splitlines()), 1):
        if a != b:
            print(f"{label}: first divergence at stdout line {lineno}:",
                  file=sys.stderr)
            print(f"  golden: {a!r}", file=sys.stderr)
            print(f"  run:    {b!r}", file=sys.stderr)
            break
    sys.exit(f"{label} output differs from the pre-refactor golden "
             f"({len(golden)} vs {len(out)} bytes)")


def main():
    if len(sys.argv) < 3:
        sys.exit(__doc__)
    with open(sys.argv[2], "rb") as f:
        golden = f.read()
    check("default backend", run([]), golden)
    check("--mem-backend channel", run(["--mem-backend", "channel"]), golden)
    print(f"backend identity OK ({len(golden)} bytes, bit-identical)")


if __name__ == "__main__":
    main()

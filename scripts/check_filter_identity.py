#!/usr/bin/env python3
"""Byte-compare a bench driver's output across a filter toggle.

Runs the given driver command twice — `--<flag> false` appended, then
`--<flag> true` — and fails unless both exit 0 and their stdout is
byte-identical. The flag defaults to the L1 filter fast path
(MachineConfig::l1_filter) and can be switched with a leading
`--flag NAME` (e.g. `--flag l2-filter` for the L2 filter band); both are
pure host-speed optimizations, so any divergence in the emitted tables is
a correctness bug in the filter's coherence hooks. Registered as the
blocking `smoke.fig9_filter_identity` and `smoke.fig9_l2_filter_identity`
ctest entries; sim-layer state-level identity is covered by
tests/sim/filter_identity_test.cpp.

Usage: scripts/check_filter_identity.py [--flag NAME] <driver> [args...]
"""

import subprocess
import sys


def run(args, flag, value):
    cmd = [*args, f"--{flag}", value]
    proc = subprocess.run(cmd, capture_output=True)
    if proc.returncode != 0:
        print(proc.stderr.decode(errors="replace"), file=sys.stderr)
        sys.exit(f"--{flag} {value} run failed ({proc.returncode})")
    return proc.stdout


def main():
    args = sys.argv[1:]
    flag = "l1-filter"
    if args[:1] == ["--flag"]:
        if len(args) < 2:
            sys.exit(__doc__)
        flag = args[1]
        args = args[2:]
    if not args:
        sys.exit(__doc__)
    off = run(args, flag, "false")
    on = run(args, flag, "true")
    if on != off:
        for lineno, (a, b) in enumerate(
                zip(off.splitlines(), on.splitlines()), 1):
            if a != b:
                print(f"first divergence at stdout line {lineno}:",
                      file=sys.stderr)
                print(f"  filter off: {a!r}", file=sys.stderr)
                print(f"  filter on:  {b!r}", file=sys.stderr)
                break
        sys.exit(f"output differs across the --{flag} toggle "
                 f"({len(off)} vs {len(on)} bytes)")
    print(f"{flag} identity OK ({len(on)} bytes, bit-identical)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Byte-compare a bench driver's output across the L1 filter toggle.

Runs the given driver command twice — `--l1-filter false` appended, then
`--l1-filter true` — and fails unless both exit 0 and their stdout is
byte-identical. The filter fast path (MachineConfig::l1_filter) is a pure
host-speed optimization, so any divergence in the emitted tables is a
correctness bug in the filter's coherence hooks. Registered as the
blocking `smoke.fig9_filter_identity` ctest entry; sim-layer state-level
identity is covered by tests/sim/filter_identity_test.cpp.

Usage: scripts/check_filter_identity.py <driver> [driver args...]
"""

import subprocess
import sys


def run(flag):
    cmd = [*sys.argv[1:], "--l1-filter", flag]
    proc = subprocess.run(cmd, capture_output=True)
    if proc.returncode != 0:
        print(proc.stderr.decode(errors="replace"), file=sys.stderr)
        sys.exit(f"--l1-filter {flag} run failed ({proc.returncode})")
    return proc.stdout


def main():
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    off = run("false")
    on = run("true")
    if on != off:
        for lineno, (a, b) in enumerate(
                zip(off.splitlines(), on.splitlines()), 1):
            if a != b:
                print(f"first divergence at stdout line {lineno}:",
                      file=sys.stderr)
                print(f"  filter off: {a!r}", file=sys.stderr)
                print(f"  filter on:  {b!r}", file=sys.stderr)
                break
        sys.exit("output differs across the --l1-filter toggle "
                 f"({len(off)} vs {len(on)} bytes)")
    print(f"filter identity OK ({len(on)} bytes, bit-identical)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Fail on broken intra-repo markdown links and heading anchors.

Scans every tracked *.md file for inline links/images `[text](target)` and
reference definitions `[id]: target`, and verifies that relative targets
exist in the working tree. External schemes (http/https/mailto) are
skipped. Anchor fragments are validated against GitHub-style heading
slugs: an in-page `#anchor` must match a heading in the same file, and a
`path.md#anchor` must match a heading in the linked file. Exit code 1
lists every broken link/anchor as file:line.

Usage: scripts/check_markdown_links.py [root-dir]
"""
import os
import re
import sys

INLINE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REFDEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)")
HEADING = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
FENCE = re.compile(r"^\s*(```|~~~)")
# Inline markup stripped before slugging: `code`, **bold**, *em*, [text](url).
MARKUP = re.compile(r"`([^`]*)`|\*\*([^*]*)\*\*|\*([^*]*)\*|\[([^\]]*)\]\([^)]*\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")
SKIP_DIRS = {".git", "build", ".cache"}


def markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.lower().endswith(".md"):
                yield os.path.join(dirpath, name)


def targets(line):
    for match in INLINE.finditer(line):
        yield match.group(1)
    match = REFDEF.match(line)
    if match:
        yield match.group(1)


def slugify(heading):
    """GitHub's heading -> anchor rule: strip markup, lowercase, drop
    punctuation except hyphens/underscores, spaces become hyphens."""
    text = MARKUP.sub(lambda m: next(g for g in m.groups() if g is not None),
                      heading)
    text = text.strip().lower().replace(" ", "-")
    return re.sub(r"[^\w\-]", "", text)


def file_anchors(path, cache):
    """Set of valid anchors in a markdown file (duplicate headings get
    -1, -2, ... suffixes, as on GitHub). Cached per path."""
    if path in cache:
        return cache[path]
    anchors, counts = set(), {}
    in_fence = False
    try:
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                if FENCE.match(line):
                    in_fence = not in_fence
                    continue
                if in_fence:
                    continue
                match = HEADING.match(line)
                if not match:
                    continue
                slug = slugify(match.group(1))
                n = counts.get(slug, 0)
                counts[slug] = n + 1
                anchors.add(slug if n == 0 else f"{slug}-{n}")
    except OSError:
        pass
    cache[path] = anchors
    return anchors


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    broken = []
    anchor_cache = {}
    for path in sorted(markdown_files(root)):
        base = os.path.dirname(path)
        with open(path, encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, 1):
                for target in targets(line):
                    if target.startswith(SKIP_SCHEMES):
                        continue
                    target_path, _, anchor = target.partition("#")
                    if target_path:
                        resolved = (
                            os.path.join(root, target_path.lstrip("/"))
                            if target_path.startswith("/")
                            else os.path.join(base, target_path)
                        )
                        if not os.path.exists(resolved):
                            broken.append(
                                f"{path}:{lineno}: broken link -> {target}")
                            continue
                    else:
                        resolved = path  # pure in-page anchor
                    if anchor and resolved.lower().endswith(".md"):
                        if anchor not in file_anchors(resolved, anchor_cache):
                            broken.append(
                                f"{path}:{lineno}: broken anchor -> {target}")
    for entry in broken:
        print(entry)
    if broken:
        print(f"{len(broken)} broken intra-repo markdown link(s)/anchor(s)")
        return 1
    print("markdown links OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Fail on broken intra-repo markdown links.

Scans every tracked *.md file for inline links/images `[text](target)` and
reference definitions `[id]: target`, and verifies that relative targets
exist in the working tree. External schemes (http/https/mailto) and pure
in-page anchors (#...) are skipped; a `path#anchor` target only checks the
path. Exit code 1 lists every broken link as file:line.

Usage: scripts/check_markdown_links.py [root-dir]
"""
import os
import re
import sys

INLINE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REFDEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")
SKIP_DIRS = {".git", "build", ".cache"}


def markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.lower().endswith(".md"):
                yield os.path.join(dirpath, name)


def targets(line):
    for match in INLINE.finditer(line):
        yield match.group(1)
    match = REFDEF.match(line)
    if match:
        yield match.group(1)


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    broken = []
    for path in sorted(markdown_files(root)):
        base = os.path.dirname(path)
        with open(path, encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, 1):
                for target in targets(line):
                    if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                        continue
                    target_path = target.split("#", 1)[0]
                    if not target_path:
                        continue
                    resolved = (
                        os.path.join(root, target_path.lstrip("/"))
                        if target_path.startswith("/")
                        else os.path.join(base, target_path)
                    )
                    if not os.path.exists(resolved):
                        broken.append(f"{path}:{lineno}: broken link -> {target}")
    for entry in broken:
        print(entry)
    if broken:
        print(f"{len(broken)} broken intra-repo markdown link(s)")
        return 1
    print("markdown links OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#include "apps/lulesh_proxy.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/engine.hpp"

namespace am::apps {

namespace {

/// Integer cube root for rank-grid construction; exact for perfect cubes.
std::uint32_t icbrt(std::uint32_t n) {
  auto r = static_cast<std::uint32_t>(std::lround(std::cbrt(n)));
  while (r * r * r > n) --r;
  while ((r + 1) * (r + 1) * (r + 1) <= n) ++r;
  return r;
}

}  // namespace

LuleshConfig LuleshConfig::paper(std::uint32_t edge, std::uint32_t scale) {
  if (scale == 0) throw std::invalid_argument("LuleshConfig: scale == 0");
  LuleshConfig c;
  const double shrink = std::cbrt(static_cast<double>(scale));
  c.edge = std::max(4u, static_cast<std::uint32_t>(
                            std::lround(edge / shrink)));
  return c;
}

LuleshProxyAgent::LuleshProxyAgent(sim::Engine& engine,
                                   minimpi::Communicator& comm,
                                   const minimpi::Mapping& mapping,
                                   std::uint32_t rank, LuleshConfig config)
    : sim::Agent("lulesh[" + std::to_string(rank) + "]"),
      config_(config),
      comm_(&comm),
      rank_(rank) {
  const std::uint32_t n = mapping.num_ranks();
  const std::uint32_t g = icbrt(n);
  if (g * g * g != n)
    throw std::invalid_argument("LuleshProxy needs a cubic rank count");
  const std::uint32_t x = rank % g, y = (rank / g) % g, z = rank / (g * g);
  auto add_neighbour = [&](int dx, int dy, int dz) {
    const int nx = static_cast<int>(x) + dx;
    const int ny = static_cast<int>(y) + dy;
    const int nz = static_cast<int>(z) + dz;
    if (nx < 0 || ny < 0 || nz < 0 || nx >= static_cast<int>(g) ||
        ny >= static_cast<int>(g) || nz >= static_cast<int>(g))
      return;
    neighbours_.push_back(static_cast<std::uint32_t>(
        nx + ny * static_cast<int>(g) + nz * static_cast<int>(g * g)));
  };
  add_neighbour(-1, 0, 0);
  add_neighbour(1, 0, 0);
  add_neighbour(0, -1, 0);
  add_neighbour(0, 1, 0);
  add_neighbour(0, 0, -1);
  add_neighbour(0, 0, 1);
  got_.assign(neighbours_.size(), false);

  auto& ms = engine.memory();
  const auto line = ms.config().l3.line_bytes;
  const std::uint64_t field_bytes = config_.elements() * 8;
  lines_per_field_ = (field_bytes + line - 1) / line;
  field_base_.reserve(config_.fields);
  for (std::uint32_t f = 0; f < config_.fields; ++f)
    field_base_.push_back(ms.alloc(lines_per_field_ * line, line));
}

void LuleshProxyAgent::sweep_chunk(sim::AgentContext& ctx) {
  const auto line = ctx.engine().config().l3.line_bytes;
  // Each sweep streams sweep_fields input fields (rotating through the 40
  // resident arrays so all of them stay live across a timestep) and writes
  // one output field; neighbour gathers add strided touches at +-edge and
  // +-edge^2 elements.
  constexpr std::uint64_t kChunk = 4;
  const std::uint64_t end = std::min(line_cursor_ + kChunk, lines_per_field_);
  const std::uint32_t first_field =
      (sweep_cursor_ * config_.sweep_fields) % config_.fields;
  const std::uint64_t edge_lines =
      std::max<std::uint64_t>(1, config_.edge * 8 / line);
  for (std::uint64_t l = line_cursor_; l < end; ++l) {
    batch_.clear();
    for (std::uint32_t f = 0; f < config_.sweep_fields; ++f) {
      const auto base = field_base_[(first_field + f) % config_.fields];
      batch_.push_back(base + l * line);
    }
    // Neighbour gathers in the first input field: +-edge, +-edge^2.
    const auto base = field_base_[first_field];
    const std::uint64_t plane_lines = edge_lines * config_.edge;
    batch_.push_back(base + ((l + edge_lines) % lines_per_field_) * line);
    batch_.push_back(base + ((l + plane_lines) % lines_per_field_) * line);
    ctx.load_batch(batch_);
    const auto out =
        field_base_[(first_field + config_.sweep_fields) % config_.fields];
    ctx.store(out + l * line);
    // ops_per_element, 8 elements per line.
    ctx.compute(config_.ops_per_element * (line / 8));
  }
  line_cursor_ = end;
}

void LuleshProxyAgent::step(sim::AgentContext& ctx) {
  if (finished()) return;
  switch (phase_) {
    case Phase::kSweep:
      sweep_chunk(ctx);
      if (line_cursor_ >= lines_per_field_) {
        line_cursor_ = 0;
        ++sweep_cursor_;
        if (sweep_cursor_ >= config_.sweeps) {
          sweep_cursor_ = 0;
          phase_ = Phase::kSend;
        }
      }
      break;
    case Phase::kSend:
      for (const auto nb : neighbours_)
        comm_->send(ctx, rank_, nb, config_.halo_bytes());
      std::fill(got_.begin(), got_.end(), false);
      recv_cursor_ = 0;
      phase_ = Phase::kRecv;
      break;
    case Phase::kRecv: {
      bool all = true;
      for (std::size_t i = 0; i < neighbours_.size(); ++i) {
        if (!got_[i]) got_[i] = comm_->try_recv(ctx, neighbours_[i], rank_);
        all = all && got_[i];
      }
      if (all) {
        ++steps_done_;
        phase_ = Phase::kSweep;
      } else {
        ctx.compute(50);  // poll delay
      }
      break;
    }
  }
}

}  // namespace am::apps

#pragma once
// LULESH proxy. The paper measures LLNL's LULESH shock-hydrodynamics
// benchmark (64 MPI ranks, per-rank cube domains of edge 22..36); this
// proxy reproduces its memory/communication signature:
//   - ~40 resident field arrays of 8 B per element (so a 22^3 domain's
//     working set is ~3.4 MB/rank and a 36^3 domain's ~14.9 MB/rank,
//     matching the capacities the paper infers in Fig. 11/12),
//   - bandwidth-heavy stencil sweeps: unit-stride streams through several
//     fields plus neighbour gathers at +-edge and +-edge^2 strides,
//   - 6-face halo exchange on a 4x4x4 rank grid each timestep.
#include <cstdint>

#include "minimpi/communicator.hpp"
#include "sim/agent.hpp"

namespace am::apps {

struct LuleshConfig {
  std::uint32_t edge = 22;      // per-rank cube edge (the paper's x-axis)
  std::uint32_t steps = 3;
  std::uint32_t fields = 40;    // resident 8-byte field arrays
  std::uint32_t sweeps = 3;     // stencil passes per timestep
  std::uint32_t sweep_fields = 6;  // fields streamed per sweep
  std::uint32_t comm_fields = 6;   // fields exchanged in halos
  std::uint32_t ops_per_element = 40;

  /// Paper-shaped configuration scaled down by `scale`: the cube edge
  /// shrinks by cbrt(scale) so the working-set : L3 ratio is preserved.
  static LuleshConfig paper(std::uint32_t edge, std::uint32_t scale);

  std::uint64_t elements() const {
    return static_cast<std::uint64_t>(edge) * edge * edge;
  }
  std::uint64_t working_set_bytes() const { return elements() * fields * 8; }
  std::uint64_t halo_bytes() const {
    return static_cast<std::uint64_t>(edge) * edge * 8 * comm_fields;
  }
};

class LuleshProxyAgent final : public sim::Agent {
 public:
  /// `mapping` must hold a cubic rank count (8, 27, 64, ...); ranks form a
  /// 3D grid with face neighbours.
  LuleshProxyAgent(sim::Engine& engine, minimpi::Communicator& comm,
                   const minimpi::Mapping& mapping, std::uint32_t rank,
                   LuleshConfig config);

  void step(sim::AgentContext& ctx) override;
  bool finished() const override { return steps_done_ >= config_.steps; }

  std::uint32_t steps_done() const { return steps_done_; }
  const LuleshConfig& config() const { return config_; }
  const std::vector<std::uint32_t>& neighbours() const { return neighbours_; }

 private:
  enum class Phase { kSweep, kSend, kRecv };

  void sweep_chunk(sim::AgentContext& ctx);

  LuleshConfig config_;
  minimpi::Communicator* comm_;
  std::uint32_t rank_;
  std::vector<std::uint32_t> neighbours_;

  std::vector<sim::Addr> field_base_;  // one address per field array
  std::uint64_t lines_per_field_ = 0;

  Phase phase_ = Phase::kSweep;
  std::uint32_t sweep_cursor_ = 0;   // which sweep within the timestep
  std::uint64_t line_cursor_ = 0;    // line within the sweep
  std::size_t recv_cursor_ = 0;
  std::vector<bool> got_;
  std::uint32_t steps_done_ = 0;
  std::vector<sim::Addr> batch_;
};

}  // namespace am::apps

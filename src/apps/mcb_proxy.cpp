#include "apps/mcb_proxy.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/engine.hpp"

namespace am::apps {

McbConfig McbConfig::paper(std::uint32_t particles, std::uint32_t scale) {
  if (scale == 0) throw std::invalid_argument("McbConfig: scale == 0");
  McbConfig c;
  c.particles = std::max(64u, particles / scale);
  c.xs_table_bytes = std::max<std::uint64_t>(4096, c.xs_table_bytes / scale);
  c.tally_bytes = std::max<std::uint64_t>(4096, c.tally_bytes / scale);
  c.comm_cap_bytes = std::max<std::uint64_t>(4096, c.comm_cap_bytes / scale);
  c.reference_particles = std::max(64u, c.reference_particles / scale);
  return c;
}

std::uint32_t McbConfig::ops_per_particle() const {
  const double growth = std::cbrt(static_cast<double>(particles) /
                                  static_cast<double>(reference_particles));
  return static_cast<std::uint32_t>(
      std::max(1.0, base_ops_per_particle * growth));
}

std::uint64_t McbConfig::comm_bytes_per_step() const {
  const auto raw = static_cast<std::uint64_t>(
      crossing_fraction * static_cast<double>(particles) *
      static_cast<double>(bytes_per_particle));
  return std::clamp<std::uint64_t>(raw, 64, comm_cap_bytes);
}

McbProxyAgent::McbProxyAgent(sim::Engine& engine, minimpi::Communicator& comm,
                             const minimpi::Mapping& mapping,
                             std::uint32_t rank, McbConfig config)
    : sim::Agent("mcb[" + std::to_string(rank) + "]"),
      config_(config),
      comm_(&comm),
      mapping_(&mapping),
      rank_(rank) {
  const std::uint32_t n = mapping.num_ranks();
  if (n < 2) throw std::invalid_argument("McbProxy needs >= 2 ranks");
  left_ = (rank_ + n - 1) % n;
  right_ = (rank_ + 1) % n;
  auto& ms = engine.memory();
  const auto line = ms.config().l3.line_bytes;
  particles_base_ = ms.alloc(
      static_cast<std::uint64_t>(config_.particles) *
          config_.bytes_per_particle,
      line);
  xs_base_ = ms.alloc(config_.xs_table_bytes, line);
  tally_base_ = ms.alloc(config_.tally_bytes, line);
  xs_lines_ = config_.xs_table_bytes / line;
  tally_lines_ = config_.tally_bytes / line;
}

void McbProxyAgent::track_chunk(sim::AgentContext& ctx) {
  const auto line = ctx.engine().config().l3.line_bytes;
  const std::uint64_t particle_lines =
      (config_.bytes_per_particle + line - 1) / line;
  const std::uint32_t ops = config_.ops_per_particle();
  constexpr std::uint32_t kChunk = 16;
  const std::uint32_t end =
      std::min(particle_cursor_ + kChunk, config_.particles);
  for (std::uint32_t p = particle_cursor_; p < end; ++p) {
    batch_.clear();
    // Stream the particle record...
    const sim::Addr prec =
        particles_base_ + static_cast<std::uint64_t>(p) *
                              config_.bytes_per_particle;
    for (std::uint64_t l = 0; l < particle_lines; ++l)
      batch_.push_back(prec + l * line);
    // ...and gather random cross-sections for each collision.
    for (std::uint32_t x = 0; x < config_.xs_lookups_per_particle; ++x)
      batch_.push_back(xs_base_ + ctx.rng().bounded(xs_lines_) * line);
    ctx.load_batch(batch_);
    // Score into a random tally bin and update the particle state.
    ctx.store(tally_base_ + ctx.rng().bounded(tally_lines_) * line);
    ctx.store(prec);
    ctx.compute(ops);
  }
  particle_cursor_ = end;
}

void McbProxyAgent::step(sim::AgentContext& ctx) {
  if (finished()) return;
  switch (phase_) {
    case Phase::kTrack:
      track_chunk(ctx);
      if (particle_cursor_ >= config_.particles) {
        particle_cursor_ = 0;
        phase_ = Phase::kSend;
      }
      break;
    case Phase::kSend: {
      const std::uint64_t bytes = config_.comm_bytes_per_step();
      comm_->send(ctx, rank_, left_, bytes);
      comm_->send(ctx, rank_, right_, bytes);
      got_left_ = got_right_ = false;
      phase_ = Phase::kRecv;
      break;
    }
    case Phase::kRecv: {
      if (!got_left_) got_left_ = comm_->try_recv(ctx, left_, rank_);
      if (!got_right_) got_right_ = comm_->try_recv(ctx, right_, rank_);
      if (got_left_ && got_right_) {
        ++steps_done_;
        phase_ = Phase::kTrack;
      } else {
        ctx.compute(50);  // poll delay
      }
      break;
    }
  }
}

}  // namespace am::apps

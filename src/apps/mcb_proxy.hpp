#pragma once
// Monte Carlo Benchmark (MCB) proxy. The paper measures LLNL's MCB, a
// Monte Carlo neutron-transport code; this proxy reproduces its memory and
// communication signature on the simulator:
//   - a *streamed* particle array (footprint grows with the particle count
//     but is never L3-resident — matching the paper's finding that MCB's
//     L3 use stays at 4-7 MB/process from 20k to 260k particles),
//   - *resident* cross-section tables and tally arrays hit randomly per
//     particle (these are the 4-7 MB the application actively uses),
//   - ring halo exchange whose volume grows with the particle count up to
//     a buffer cap (communication pressure peaks near 90k particles, after
//     which per-particle tracking work grows and the code becomes more
//     compute-bound, as in the paper's Fig. 9 bottom-right discussion).
#include <cstdint>

#include "minimpi/communicator.hpp"
#include "sim/agent.hpp"

namespace am::apps {

struct McbConfig {
  std::uint32_t particles = 20'000;  // per rank
  std::uint32_t steps = 4;
  std::uint64_t bytes_per_particle = 160;
  std::uint64_t xs_table_bytes = 3584 * 1024;   // ~3.5 MB resident
  std::uint64_t tally_bytes = 2560 * 1024;      // ~2.5 MB resident
  std::uint32_t xs_lookups_per_particle = 2;
  /// Fraction of particles crossing to each ring neighbour per step.
  double crossing_fraction = 0.05;
  /// Communication buffer cap per neighbour per step (bytes): exchanges
  /// saturate here, like MCB's fixed-size particle buffers.
  std::uint64_t comm_cap_bytes = 720'000;  // ~90k * 0.05 * 160
  /// Tracking work per particle at `reference_particles`; grows with the
  /// cube root of the particle count (longer tracks in larger problems).
  std::uint32_t base_ops_per_particle = 50;
  std::uint32_t reference_particles = 20'000;

  /// Paper-shaped configuration scaled down by `scale` (memory footprints
  /// and particle counts divided; structure preserved).
  static McbConfig paper(std::uint32_t particles, std::uint32_t scale);

  /// Tracking ops per particle for this configuration.
  std::uint32_t ops_per_particle() const;
  /// Per-neighbour exchange volume per step, after the buffer cap.
  std::uint64_t comm_bytes_per_step() const;
};

class McbProxyAgent final : public sim::Agent {
 public:
  McbProxyAgent(sim::Engine& engine, minimpi::Communicator& comm,
                const minimpi::Mapping& mapping, std::uint32_t rank,
                McbConfig config);

  void step(sim::AgentContext& ctx) override;
  bool finished() const override { return steps_done_ >= config_.steps; }

  std::uint32_t steps_done() const { return steps_done_; }
  const McbConfig& config() const { return config_; }

 private:
  enum class Phase { kTrack, kSend, kRecv };

  void track_chunk(sim::AgentContext& ctx);

  McbConfig config_;
  minimpi::Communicator* comm_;
  const minimpi::Mapping* mapping_;
  std::uint32_t rank_;
  std::uint32_t left_, right_;  // ring neighbours

  sim::Addr particles_base_ = 0;
  sim::Addr xs_base_ = 0;
  sim::Addr tally_base_ = 0;
  std::uint64_t xs_lines_ = 0;
  std::uint64_t tally_lines_ = 0;

  Phase phase_ = Phase::kTrack;
  std::uint32_t particle_cursor_ = 0;
  bool got_left_ = false, got_right_ = false;
  std::uint32_t steps_done_ = 0;
  std::vector<sim::Addr> batch_;
};

}  // namespace am::apps

#include "apps/stream_probe.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/engine.hpp"

namespace am::apps {

StreamProbeAgent::StreamProbeAgent(sim::MemorySystem& memory,
                                   StreamProbeConfig config, std::string name)
    : sim::Agent(std::move(name)), config_(config) {
  const auto line = memory.config().l3.line_bytes;
  if (config_.array_bytes < line || config_.passes == 0)
    throw std::invalid_argument("StreamProbeConfig: degenerate");
  lines_per_array_ = config_.array_bytes / line;
  a_ = memory.alloc(config_.array_bytes, line);
  b_ = memory.alloc(config_.array_bytes, line);
  c_ = memory.alloc(config_.array_bytes, line);
}

void StreamProbeAgent::step(sim::AgentContext& ctx) {
  if (finished()) return;
  const auto line = ctx.engine().config().l3.line_bytes;
  // Process a chunk of lines: load b and c, store a. Unit-stride and
  // independent, so everything batches (and prefetches).
  constexpr std::uint64_t kChunk = 8;
  const std::uint64_t end = std::min(line_ + kChunk, lines_per_array_);
  batch_.clear();
  for (std::uint64_t l = line_; l < end; ++l) {
    batch_.push_back(b_ + l * line);
    batch_.push_back(c_ + l * line);
  }
  ctx.load_batch(batch_);
  batch_.clear();
  for (std::uint64_t l = line_; l < end; ++l) batch_.push_back(a_ + l * line);
  ctx.store_batch(batch_);
  ctx.compute(end - line_);  // one FMA per element-line, nominal
  line_ = end;
  if (line_ >= lines_per_array_) {
    line_ = 0;
    ++passes_done_;
  }
}

}  // namespace am::apps

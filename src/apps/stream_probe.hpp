#pragma once
// STREAM-style bandwidth probe (triad: a[i] = b[i] + s*c[i]), used to
// calibrate the simulated machine's peak memory bandwidth the same way the
// paper cites McCalpin's STREAM for the Xeon20MB's 17 GB/s figure.
#include <cstdint>

#include "sim/agent.hpp"
#include "sim/memory_system.hpp"

namespace am::apps {

struct StreamProbeConfig {
  std::uint64_t array_bytes = 8 * 1024 * 1024;  // each of a, b, c
  std::uint32_t passes = 3;
};

class StreamProbeAgent final : public sim::Agent {
 public:
  StreamProbeAgent(sim::MemorySystem& memory, StreamProbeConfig config,
                   std::string name = "stream");

  void step(sim::AgentContext& ctx) override;
  bool finished() const override { return passes_done_ >= config_.passes; }

  /// Payload bytes moved by the triad (3 arrays per pass).
  std::uint64_t payload_bytes() const {
    return static_cast<std::uint64_t>(passes_done_) * 3 * config_.array_bytes;
  }

 private:
  StreamProbeConfig config_;
  sim::Addr a_ = 0, b_ = 0, c_ = 0;
  std::uint64_t lines_per_array_;
  std::uint64_t line_ = 0;
  std::uint32_t passes_done_ = 0;
  std::vector<sim::Addr> batch_;
};

}  // namespace am::apps

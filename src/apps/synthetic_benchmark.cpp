#include "apps/synthetic_benchmark.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/engine.hpp"

namespace am::apps {

SyntheticBenchmarkAgent::SyntheticBenchmarkAgent(sim::MemorySystem& memory,
                                                 SyntheticConfig config,
                                                 std::string name)
    : sim::Agent(std::move(name)), config_(std::move(config)) {
  if (config_.element_bytes == 0 || config_.measured_accesses == 0)
    throw std::invalid_argument("SyntheticConfig: degenerate");
  base_ = memory.alloc(config_.dist.n() * config_.element_bytes,
                       memory.config().l3.line_bytes);
}

void SyntheticBenchmarkAgent::step(sim::AgentContext& ctx) {
  if (finished()) return;
  if (!measuring_ && done_ >= config_.warmup_accesses) {
    // Steady state reached: zero every counter so the measurement window
    // reflects only warmed-up behaviour. The benchmark is the single
    // primary agent, so resetting engine-wide stats is safe.
    ctx.engine().reset_stats();
    measuring_ = true;
    measure_start_ = ctx.now();
  }
  // A modest chunk per step keeps interleaving with interference threads
  // fine-grained.
  const std::uint64_t total =
      config_.warmup_accesses + config_.measured_accesses;
  const std::uint64_t chunk = std::min<std::uint64_t>(8, total - done_);
  for (std::uint64_t k = 0; k < chunk; ++k) {
    const std::uint64_t idx = config_.dist.sample(ctx.rng());
    ctx.load(base_ + idx * config_.element_bytes);
    ctx.compute(config_.compute_ops);
    ++done_;
    if (!measuring_ && done_ >= config_.warmup_accesses) break;
  }
}

}  // namespace am::apps

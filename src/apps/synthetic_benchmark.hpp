#pragma once
// The paper's synthetic validation benchmark (Fig. 4): a loop that samples
// a buffer index from a probability distribution, reads it, and performs a
// configurable number of integer operations on the value. Used to validate
// the EHR model (Fig. 5) and to quantify CSThr's effective capacity theft
// (Fig. 6).
#include <cstdint>

#include "model/distributions.hpp"
#include "sim/agent.hpp"
#include "sim/memory_system.hpp"

namespace am::apps {

struct SyntheticConfig {
  model::AccessDistribution dist;  // over element indices [0, n)
  std::uint64_t element_bytes = 4; // paper: int buffer
  /// Integer ops between consecutive loads (paper uses 1, 10, 100).
  std::uint32_t compute_ops = 1;
  /// Accesses before measurement starts (cache warm-up; the paper sets
  /// N_ACCESS much larger than the buffer to reach steady state).
  std::uint64_t warmup_accesses = 0;
  /// Accesses counted in the measurement window.
  std::uint64_t measured_accesses = 1'000'000;
};

class SyntheticBenchmarkAgent final : public sim::Agent {
 public:
  SyntheticBenchmarkAgent(sim::MemorySystem& memory, SyntheticConfig config,
                          std::string name = "synthetic");

  void step(sim::AgentContext& ctx) override;
  bool finished() const override {
    return done_ >= config_.warmup_accesses + config_.measured_accesses;
  }

  /// Cycle at which the measurement window began (engine stats were reset).
  sim::Cycles measure_start_cycle() const { return measure_start_; }
  bool measuring() const { return measuring_; }
  std::uint64_t accesses_done() const { return done_; }
  const SyntheticConfig& config() const { return config_; }

 private:
  SyntheticConfig config_;
  sim::Addr base_ = 0;
  std::uint64_t done_ = 0;
  bool measuring_ = false;
  sim::Cycles measure_start_ = 0;
};

}  // namespace am::apps

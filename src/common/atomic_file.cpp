#include "common/atomic_file.hpp"

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <system_error>

namespace am {

bool try_atomic_write_file(const std::string& path,
                           const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out || !(out << content) || !out.flush()) return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  return !ec;
}

void atomic_write_file(const std::string& path, const std::string& content,
                       const std::string& what) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out || !(out << content) || !out.flush())
      throw std::runtime_error(what + ": failed to write " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec)
    throw std::runtime_error(what + ": failed to rename " + tmp + " to " +
                             path + ": " + ec.message());
}

}  // namespace am

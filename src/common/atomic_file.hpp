#pragma once
// Atomic whole-file writes: write to <path>.tmp, then rename over <path>.
// A reader — or a process killed mid-write — sees either the previous
// complete file or the new complete one, never a torn mix. This is the
// property every on-disk handoff in the codebase (result stores,
// heartbeats, run manifests) relies on; keep the idiom in one audited
// place instead of re-rolling it per call site.
#include <string>

namespace am {

/// Best-effort variant: false on any I/O failure (unwritable directory,
/// failed rename) instead of throwing — for writers whose absence is
/// itself the signal (e.g. heartbeats).
bool try_atomic_write_file(const std::string& path,
                           const std::string& content);

/// Throwing variant: std::runtime_error prefixed with `what` (the calling
/// subsystem) naming the failing step and path.
void atomic_write_file(const std::string& path, const std::string& content,
                       const std::string& what);

}  // namespace am

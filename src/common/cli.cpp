#include "common/cli.hpp"

#include <cstdlib>
#include <stdexcept>

namespace am {

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";
    }
  }
}

bool Cli::has(const std::string& name) const {
  queried_[name] = true;
  return flags_.count(name) > 0;
}

std::string Cli::get(const std::string& name, const std::string& def) const {
  queried_[name] = true;
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t def) const {
  const auto s = get(name, "");
  if (s.empty()) return def;
  return std::strtoll(s.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name, double def) const {
  const auto s = get(name, "");
  if (s.empty()) return def;
  return std::strtod(s.c_str(), nullptr);
}

bool Cli::get_bool(const std::string& name, bool def) const {
  const auto s = get(name, "");
  if (s.empty()) return def;
  return s == "true" || s == "1" || s == "yes" || s == "on";
}

std::vector<std::string> Cli::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : flags_)
    if (!queried_.count(name)) out.push_back(name);
  return out;
}

}  // namespace am

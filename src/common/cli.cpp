#include "common/cli.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace am {

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";
    }
  }
}

bool Cli::has(const std::string& name) const {
  queried_[name] = true;
  return flags_.count(name) > 0;
}

std::string Cli::get(const std::string& name, const std::string& def) const {
  queried_[name] = true;
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t def) const {
  const auto s = get(name, "");
  if (s.empty()) return def;
  // Full-string validation: "abc", "12abc" and out-of-range values must
  // throw, not quietly become 0 — a typo'd --reps must never run a 0-rep
  // sweep. (A value-less "--reps" parses as "true" and lands here too.)
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0')
    throw std::invalid_argument("--" + name + ": expected an integer, got '" +
                                s + "'");
  if (errno == ERANGE)
    throw std::invalid_argument("--" + name + ": integer out of range: '" +
                                s + "'");
  return v;
}

double Cli::get_double(const std::string& name, double def) const {
  const auto s = get(name, "");
  if (s.empty()) return def;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0')
    throw std::invalid_argument("--" + name + ": expected a number, got '" +
                                s + "'");
  // Only overflow is an error: ERANGE also fires for underflow to a
  // subnormal (e.g. 1e-320), which strtod still parses to a usable value.
  if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL))
    throw std::invalid_argument("--" + name + ": number out of range: '" + s +
                                "'");
  return v;
}

bool Cli::get_bool(const std::string& name, bool def) const {
  const auto s = get(name, "");
  if (s.empty()) return def;
  return s == "true" || s == "1" || s == "yes" || s == "on";
}

ShardRange Cli::get_shard(const std::string& name) const {
  const auto s = get(name, "");
  if (s.empty()) return {};
  const auto slash = s.find('/');
  // Exactly <digits>/<digits>: in particular no sign characters, which
  // strtoull would otherwise accept and wrap around (a typo like 1/-4
  // must not silently become shard 1 of 2^64-4).
  if (slash == std::string::npos || slash == 0 || slash + 1 >= s.size() ||
      s.find_first_not_of("0123456789/") != std::string::npos ||
      s.find('/', slash + 1) != std::string::npos)
    throw std::invalid_argument("--" + name + ": expected i/n, got '" + s +
                                "'");
  errno = 0;
  const auto index = std::strtoull(s.c_str(), nullptr, 10);
  const auto count = std::strtoull(s.c_str() + slash + 1, nullptr, 10);
  if (errno == ERANGE || count == 0)
    throw std::invalid_argument("--" + name + ": bad shard count in '" + s +
                                "'");
  if (index >= count)
    throw std::invalid_argument("--" + name + ": index " +
                                std::to_string(index) + " out of range for " +
                                std::to_string(count) + " shards");
  return {static_cast<std::size_t>(index), static_cast<std::size_t>(count)};
}

std::vector<std::string> Cli::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : flags_)
    if (!queried_.count(name)) out.push_back(name);
  return out;
}

}  // namespace am

#pragma once
// Minimal command-line flag parser shared by bench and example binaries.
// Supports --name=value, --name value, and boolean --name forms.
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/shard.hpp"

namespace am {

class Cli {
 public:
  Cli(int argc, char** argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def) const;

  /// Numeric accessors validate the whole value (endptr + errno) and throw
  /// std::invalid_argument on anything unparseable, trailing junk, or
  /// out-of-range input — a typo'd flag must fail loudly, never silently
  /// become 0. An absent flag returns `def`.
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  /// Parses --name=i/n (e.g. --shard 0/4). An absent flag is the whole job
  /// ({0, 1}). Throws std::invalid_argument on anything but two integers
  /// separated by '/', on count == 0, or on index >= count.
  ShardRange get_shard(const std::string& name) const;

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Flags seen but never queried — useful for catching typos in scripts.
  std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
};

}  // namespace am

#include "common/errno_string.hpp"

#include <string.h>

namespace am {

namespace {

std::string fallback(int err) { return "errno " + std::to_string(err); }

// strerror_r(3) has two variants: glibc's returns char* (possibly a
// pointer to a static table entry, ignoring buf), POSIX's returns int
// with the text written into buf. Overload resolution absorbs whichever
// one the libc provides, so the same source builds against either;
// [[maybe_unused]] because exactly one overload is ever selected.
[[maybe_unused]] std::string errno_text(char* r, const char*, int err) {
  return r != nullptr ? std::string(r) : fallback(err);
}
[[maybe_unused]] std::string errno_text(int r, const char* buf, int err) {
  return r == 0 ? std::string(buf) : fallback(err);
}

}  // namespace

std::string errno_string(int err) {
  char buf[256] = {};
  return errno_text(strerror_r(err, buf, sizeof(buf)), buf, err);
}

}  // namespace am

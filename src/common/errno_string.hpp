#pragma once
// Thread-safe errno formatting. strerror(3) returns a pointer into
// static storage, so two threads describing different errors can tear
// each other's messages — and sweeps spawn workers and serve sockets
// from several threads at once. errno_string is the reentrant
// replacement; code in this repo must not call strerror directly
// (enforced by clang-tidy's concurrency-mt-unsafe check).
#include <string>

namespace am {

/// The strerror(3) text for `err`, or "errno N" when the libc has no
/// message for it. Reentrant; callable from any thread.
std::string errno_string(int err);

}  // namespace am

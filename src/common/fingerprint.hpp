#pragma once
// Stable 64-bit content fingerprints (FNV-1a) for cache keys and identity
// digests. Not cryptographic: the store layer detects the (astronomically
// unlikely) collision of two different keys and fails loudly, so accidental
// collisions cannot silently alias results.
#include <cstdint>
#include <cstdio>
#include <string>
#include <type_traits>

namespace am {

/// Incremental FNV-1a hasher. Strings are mixed with a terminating
/// separator so {"ab","c"} and {"a","bc"} digest differently; arithmetic
/// values are mixed by value representation (fixed-width on every platform
/// this project targets).
class Fingerprint {
 public:
  Fingerprint& mix_bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001b3ull;
    }
    return *this;
  }

  Fingerprint& mix(const std::string& s) {
    mix_bytes(s.data(), s.size());
    const char sep = '\x1f';
    return mix_bytes(&sep, 1);
  }

  template <typename T>
    requires std::is_arithmetic_v<T> || std::is_enum_v<T>
  Fingerprint& mix(T value) {
    return mix_bytes(&value, sizeof(value));
  }

  std::uint64_t value() const { return hash_; }

  /// 16 lowercase hex digits.
  std::string hex() const {
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash_));
    return buf;
  }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;  // FNV offset basis
};

}  // namespace am

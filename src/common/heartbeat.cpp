#include "common/heartbeat.hpp"

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/atomic_file.hpp"

namespace am {

std::optional<Heartbeat> read_heartbeat(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  Heartbeat hb;
  char tab = '\0';
  if (!(in >> hb.pid >> std::noskipws >> tab >> std::skipws >> hb.beats) ||
      tab != '\t')
    return std::nullopt;
  return hb;
}

HeartbeatWriter::HeartbeatWriter(std::string path, double interval_seconds)
    : path_(std::move(path)), interval_(interval_seconds) {
  write_beat();  // visible before the constructor returns
  // join_mutex_ is uncontended here (nobody can stop() a writer that is
  // still constructing); taken only to satisfy thread_'s lock annotation.
  const MutexLock join_lock(join_mutex_);
  thread_ = std::thread([this] {
    MutexLock lock(mutex_);
    // Explicit loop rather than the lambda-predicate wait_for overload:
    // the stop flag is atomic, not mutex-guarded, and the open-coded form
    // keeps the acquire loads visible where they happen.
    while (!stopped_.load(std::memory_order_acquire)) {
      if (cv_.wait_for(lock.native(),
                       std::chrono::duration<double>(interval_)) ==
              std::cv_status::timeout &&
          !stopped_.load(std::memory_order_acquire)) {
        write_beat();
      }
    }
  });
}

HeartbeatWriter::~HeartbeatWriter() { stop(); }

void HeartbeatWriter::stop() {
  // Release store, then an empty critical section on the CV's mutex, then
  // notify. The middle step is what makes the wakeup reliable: the writer
  // thread checks the flag while holding mutex_, so once we have acquired
  // and dropped it, the writer is either past the check (will see the
  // flag on its next iteration) or already parked in wait_for (will get
  // the notify). Without it, stop() could run entirely inside the
  // writer's check-to-wait window and the notify would be lost.
  stopped_.store(true, std::memory_order_release);
  { const MutexLock lock(mutex_); }
  cv_.notify_all();
  // Regression note: concurrent stop() calls used to race on the join —
  // both callers could pass a joinable() check under mutex_, release it,
  // and then both call thread_.join() (undefined behaviour). A dedicated
  // join mutex serializes them; the loser sees a no-longer-joinable
  // thread and falls through.
  {
    const MutexLock lock(join_mutex_);
    if (thread_.joinable()) thread_.join();
  }
  std::error_code ec;
  std::filesystem::remove(path_, ec);  // best effort
}

void HeartbeatWriter::write_beat() {
  const std::uint64_t beat =
      beats_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::ostringstream out;
  out << static_cast<std::uint64_t>(::getpid()) << '\t' << beat << '\n';
  // Atomic so a reader never sees a torn beat; a failed write (unwritable
  // directory) leaves us silently beatless — absence is the signal.
  try_atomic_write_file(path_, out.str());
}

}  // namespace am

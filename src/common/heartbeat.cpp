#include "common/heartbeat.hpp"

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/atomic_file.hpp"

namespace am {

std::optional<Heartbeat> read_heartbeat(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  Heartbeat hb;
  char tab = '\0';
  if (!(in >> hb.pid >> std::noskipws >> tab >> std::skipws >> hb.beats) ||
      tab != '\t')
    return std::nullopt;
  return hb;
}

HeartbeatWriter::HeartbeatWriter(std::string path, double interval_seconds)
    : path_(std::move(path)), interval_(interval_seconds) {
  write_beat();  // visible before the constructor returns
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!cv_.wait_for(lock, std::chrono::duration<double>(interval_),
                         [this] { return stopped_; }))
      write_beat();
  });
}

HeartbeatWriter::~HeartbeatWriter() { stop(); }

void HeartbeatWriter::stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_ && !thread_.joinable()) return;
    stopped_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::error_code ec;
  std::filesystem::remove(path_, ec);  // best effort
}

void HeartbeatWriter::write_beat() {
  std::ostringstream out;
  out << static_cast<std::uint64_t>(::getpid()) << '\t' << ++beats_ << '\n';
  // Atomic so a reader never sees a torn beat; a failed write (unwritable
  // directory) leaves us silently beatless — absence is the signal.
  try_atomic_write_file(path_, out.str());
}

}  // namespace am

#pragma once
// Liveness files for supervised worker processes. A worker constructs a
// HeartbeatWriter on a path inside a directory its supervisor watches; a
// background thread rewrites the file (pid + monotonic beat sequence
// number) at a fixed interval, and removes it again on clean shutdown.
// The supervisor (measure::SweepOrchestrator) polls the file with
// read_heartbeat and judges liveness by whether the beat sequence keeps
// advancing against its own steady clock — waitpid only reports
// *exits*, a SIGSTOPped or D-state child reports nothing forever.
// Deliberately NOT by file timestamps: mtimes come from the wall clock,
// so an NTP step could fake a stall (or mask a real one), while the
// beat counter is monotonic no matter what the clock does. A worker
// that never produced a first beat is the one case with no sequence to
// watch; supervisors fall back to time-since-spawn on their own steady
// clock for it. A leftover heartbeat file after a child is gone means
// it died without cleanup (crash or kill).
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace am {

/// One parsed heartbeat file: "pid <tab> beats".
struct Heartbeat {
  std::uint64_t pid = 0;
  /// Monotonic beat sequence number (rewrites so far). Progress of this
  /// counter between two supervisor polls is the liveness signal.
  std::uint64_t beats = 0;
};

/// The last heartbeat written to `path`, or nullopt when the file is
/// absent or malformed (a torn read mid-rewrite counts as absent).
std::optional<Heartbeat> read_heartbeat(const std::string& path);

class HeartbeatWriter {
 public:
  /// Writes the first beat immediately (so a supervisor sees the file as
  /// soon as spawn completes), then every `interval_seconds`.
  explicit HeartbeatWriter(std::string path, double interval_seconds = 0.25);

  /// stop()s; the file is gone after destruction unless the process dies
  /// first — which is exactly the signal a leftover file carries.
  ~HeartbeatWriter();

  HeartbeatWriter(const HeartbeatWriter&) = delete;
  HeartbeatWriter& operator=(const HeartbeatWriter&) = delete;

  /// Joins the writer thread and removes the file. Idempotent, and safe
  /// to call from several threads at once (the join is serialized); only
  /// destruction itself must be externally synchronized, as usual.
  void stop();

  const std::string& path() const { return path_; }

  /// Beats written so far (the constructor writes the first one). Relaxed
  /// read: a monotonic progress probe for tests and debugging, not a
  /// synchronization edge — supervisors read the *file*, whose visibility
  /// is ordered by the atomic rename inside try_atomic_write_file.
  std::uint64_t beats() const {
    return beats_.load(std::memory_order_relaxed);
  }

 private:
  void write_beat();

  std::string path_;
  double interval_;
  /// Incremented only by the writer thread (and the constructor, before
  /// that thread exists — thread creation orders those two). Relaxed is
  /// sufficient: no other data is published through this counter.
  std::atomic<std::uint64_t> beats_{0};
  /// Stop request. stop() stores with release before notifying; the
  /// writer thread loads with acquire, so everything stop()'s caller did
  /// before stopping happens-before the writer's final wakeup. The
  /// store-then-lock-then-notify sequence in stop() closes the classic
  /// lost-wakeup window (flag checked, then stop runs entirely, then CV
  /// wait starts — the empty critical section on mutex_ forbids it).
  std::atomic<bool> stopped_{false};
  Mutex mutex_;  // the CV's mutex; the writer thread holds it while awake
  std::condition_variable cv_;
  Mutex join_mutex_;
  std::thread thread_ AM_GUARDED_BY(join_mutex_);
};

}  // namespace am

#pragma once
// Liveness files for supervised worker processes. A worker constructs a
// HeartbeatWriter on a path inside a directory its supervisor watches; a
// background thread rewrites the file (pid + monotonic beat sequence
// number) at a fixed interval, and removes it again on clean shutdown.
// The supervisor (measure::SweepOrchestrator) polls the file with
// read_heartbeat and judges liveness by whether the beat sequence keeps
// advancing against its own steady clock — waitpid only reports
// *exits*, a SIGSTOPped or D-state child reports nothing forever.
// Deliberately NOT by file timestamps: mtimes come from the wall clock,
// so an NTP step could fake a stall (or mask a real one), while the
// beat counter is monotonic no matter what the clock does. A worker
// that never produced a first beat is the one case with no sequence to
// watch; supervisors fall back to time-since-spawn on their own steady
// clock for it. A leftover heartbeat file after a child is gone means
// it died without cleanup (crash or kill).
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

namespace am {

/// One parsed heartbeat file: "pid <tab> beats".
struct Heartbeat {
  std::uint64_t pid = 0;
  /// Monotonic beat sequence number (rewrites so far). Progress of this
  /// counter between two supervisor polls is the liveness signal.
  std::uint64_t beats = 0;
};

/// The last heartbeat written to `path`, or nullopt when the file is
/// absent or malformed (a torn read mid-rewrite counts as absent).
std::optional<Heartbeat> read_heartbeat(const std::string& path);

class HeartbeatWriter {
 public:
  /// Writes the first beat immediately (so a supervisor sees the file as
  /// soon as spawn completes), then every `interval_seconds`.
  explicit HeartbeatWriter(std::string path, double interval_seconds = 0.25);

  /// stop()s; the file is gone after destruction unless the process dies
  /// first — which is exactly the signal a leftover file carries.
  ~HeartbeatWriter();

  HeartbeatWriter(const HeartbeatWriter&) = delete;
  HeartbeatWriter& operator=(const HeartbeatWriter&) = delete;

  /// Joins the writer thread and removes the file. Idempotent.
  void stop();

  const std::string& path() const { return path_; }

 private:
  void write_beat();

  std::string path_;
  double interval_;
  std::uint64_t beats_ = 0;
  bool stopped_ = false;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::thread thread_;
};

}  // namespace am

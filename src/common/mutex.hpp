#pragma once
// Annotated mutex wrappers for clang's -Wthread-safety analysis.
//
// libstdc++ ships std::mutex / std::lock_guard without capability
// annotations (only libc++ opts in, behind a macro), so clang's analysis
// cannot see acquisitions made through them: AM_GUARDED_BY members would
// warn on every access, even correct ones. These wrappers are the
// annotated equivalents — zero-cost shims over std::mutex and
// std::unique_lock — and are what mutex-holding classes in this codebase
// use so that lock discipline is compiler-checked under clang and
// identical machine code under gcc.
#include <mutex>

#include "common/thread_annotations.hpp"

namespace am {

/// std::mutex with clang capability annotations. Interface-compatible
/// with BasicLockable, so std::lock_guard<Mutex> also works — but prefer
/// MutexLock, which the analysis understands as a scoped acquisition.
class AM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() AM_ACQUIRE() { m_.lock(); }
  void unlock() AM_RELEASE() { m_.unlock(); }
  bool try_lock() AM_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex m_;
};

/// RAII lock over am::Mutex, annotated as a scoped capability.
///
/// Internally holds a std::unique_lock on the underlying std::mutex so a
/// std::condition_variable can wait on it via native(). The analysis
/// models the Mutex as held for the whole MutexLock scope; a CV wait's
/// temporary release is invisible to it, which is the right abstraction —
/// guarded state is only ever examined with the lock actually held.
class AM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) AM_ACQUIRE(m) : lock_(m.m_) {}
  ~MutexLock() AM_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// The underlying lock, for std::condition_variable::wait and friends.
  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace am

#pragma once
// Deterministic, fast pseudo-random number generation for simulation agents.
//
// xoshiro256** (Blackman & Vigna) seeded through SplitMix64. Every simulator
// agent owns its own Rng so multi-agent interleavings stay reproducible
// regardless of execution order.
#include <cstdint>
#include <limits>

namespace am {

/// SplitMix64: used to expand a single 64-bit seed into xoshiro state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator, so it can be
/// plugged into <random> distributions as well as used directly.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift reduction;
  /// the tiny modulo bias is irrelevant for simulation workloads.
  std::uint64_t bounded(std::uint64_t bound) {
    __extension__ using u128 = unsigned __int128;
    const u128 m = static_cast<u128>(operator()()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace am

#pragma once
// Which slice of a partitionable job this process owns. Parsed from
// --shard i/n by Cli::get_shard and consumed by ExperimentPlan::shard /
// SweepRunner::run; the default ({0, 1}) is the whole job.
#include <cstddef>

namespace am {

struct ShardRange {
  std::size_t index = 0;
  std::size_t count = 1;

  bool sharded() const { return count > 1; }
};

}  // namespace am

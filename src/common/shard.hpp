#pragma once
// Which slice of a partitionable job this process owns.
//
// Two representations, one contract (every plan index executed exactly
// once across the fleet, under its original index and therefore its
// original seed):
//
//   * ShardRange — the static front-end: "--shard i/n" picks the fixed
//     round-robin slice {j : j ≡ i (mod n)} at spawn time. Parsed by
//     Cli::get_shard, expanded by ExperimentPlan::shard. Good for manual
//     runs; blind to per-point cost, so a sweep's wall-clock is pinned
//     to the unluckiest slice.
//   * WorkLease — the dynamic form: an explicit batch of plan indices a
//     scheduler (measure::SweepOrchestrator) leases to whichever worker
//     frees up next. Produced by ExperimentPlan::batches from a
//     per-point cost model; a ShardRange is just the degenerate lease
//     assignment computed once up front (see work_lease.hpp for the
//     on-disk handoff).
#include <cstddef>
#include <cstdint>
#include <vector>

namespace am {

struct ShardRange {
  std::size_t index = 0;
  std::size_t count = 1;

  bool sharded() const { return count > 1; }
};

/// One leased batch of plan points. `points` are plan indices, ascending
/// and duplicate-free; `id` identifies the lease in the scheduler's
/// manifest and in the worker handoff (re-issued batches get fresh ids).
struct WorkLease {
  std::uint64_t id = 0;
  std::vector<std::size_t> points;
  /// Scheduler's cost estimate for the batch (relative units; 0 when no
  /// cost model was applied). Informational — never affects results.
  double cost = 0.0;

  bool empty() const { return points.empty(); }
};

}  // namespace am

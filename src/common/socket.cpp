#include "common/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "common/errno_string.hpp"

namespace am {

namespace {

[[noreturn]] void throw_errno(const std::string& op) {
  throw SocketError(op + ": " + errno_string(errno));
}

/// Little-endian field writers/readers: the wire format must not depend
/// on host byte order even though every current peer is little-endian.
void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}
void put_u32(std::string& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v & 0xffff));
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
}
void put_u64(std::string& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v & 0xffffffffu));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}
std::uint16_t get_u16(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint16_t>(u[0] | (u[1] << 8));
}
std::uint32_t get_u32(const char* p) {
  return static_cast<std::uint32_t>(get_u16(p)) |
         (static_cast<std::uint32_t>(get_u16(p + 2)) << 16);
}
std::uint64_t get_u64(const char* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

sockaddr_un unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path))
    throw SocketError("unix socket path empty or too long (max " +
                      std::to_string(sizeof(addr.sun_path) - 1) +
                      " bytes): " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    // (void): POSIX leaves the fd state after a failed close unspecified
    // but it is gone on Linux either way; retrying risks closing a
    // reused descriptor, and close() must stay nothrow for destructors.
    (void)::close(fd_);
    fd_ = -1;
  }
}

Socket listen_unix(const std::string& path) {
  const sockaddr_un addr = unix_addr(path);
  Socket sock(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!sock.valid()) throw_errno("socket(AF_UNIX)");
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    if (errno != EADDRINUSE) throw_errno("bind " + path);
    // A socket file exists. Probe it: a live daemon accepts the connect
    // (refuse to fight it); a dead one refuses, and its stale file may
    // be replaced.
    Socket probe(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (probe.valid() &&
        ::connect(probe.fd(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0)
      throw SocketError("another daemon is already serving " + path);
    std::error_code ec;
    std::filesystem::remove(path, ec);
    if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0)
      throw_errno("bind " + path);
  }
  if (::listen(sock.fd(), SOMAXCONN) != 0) throw_errno("listen " + path);
  return sock;
}

Socket connect_unix(const std::string& path) {
  const sockaddr_un addr = unix_addr(path);
  Socket sock(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!sock.valid()) throw_errno("socket(AF_UNIX)");
  if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0)
    throw_errno("connect " + path);
  return sock;
}

Socket listen_tcp(std::uint16_t port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) throw_errno("socket(AF_INET)");
  const int one = 1;
  if (::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) !=
      0)
    throw_errno("setsockopt(SO_REUSEADDR)");
  const sockaddr_in addr = loopback_addr(port);
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0)
    throw_errno("bind 127.0.0.1:" + std::to_string(port));
  if (::listen(sock.fd(), SOMAXCONN) != 0) throw_errno("listen tcp");
  return sock;
}

Socket connect_tcp(std::uint16_t port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) throw_errno("socket(AF_INET)");
  const sockaddr_in addr = loopback_addr(port);
  if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0)
    throw_errno("connect 127.0.0.1:" + std::to_string(port));
  return sock;
}

std::uint16_t local_port(const Socket& listener) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(listener.fd(), reinterpret_cast<sockaddr*>(&addr),
                    &len) != 0)
    throw_errno("getsockname");
  return ntohs(addr.sin_port);
}

std::optional<Socket> accept_connection(const Socket& listener) {
  const int fd = ::accept(listener.fd(), nullptr, nullptr);
  if (fd >= 0) return Socket(fd);
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
      errno == ECONNABORTED)
    return std::nullopt;
  throw_errno("accept");
}

void set_nonblocking(const Socket& sock, bool on) {
  const int flags = ::fcntl(sock.fd(), F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(sock.fd(), F_SETFL, want) != 0) throw_errno("fcntl(F_SETFL)");
}

void set_io_timeout(const Socket& sock, double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  // Checked: a silently absent timeout turns a dead peer into an
  // indefinitely parked connection, which is exactly what callers of
  // set_io_timeout are defending against.
  if (::setsockopt(sock.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0)
    throw_errno("setsockopt(SO_RCVTIMEO)");
  if (::setsockopt(sock.fd(), SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0)
    throw_errno("setsockopt(SO_SNDTIMEO)");
}

std::string encode_frame(const Frame& frame) {
  std::string out;
  out.reserve(kFrameHeaderBytes + frame.payload.size());
  put_u32(out, kFrameMagic);
  put_u16(out, kProtocolVersion);
  put_u16(out, frame.type);
  put_u64(out, frame.payload.size());
  out += frame.payload;
  return out;
}

void write_frame(const Socket& sock, const Frame& frame) {
  const std::string wire = encode_frame(frame);
  std::size_t sent = 0;
  while (sent < wire.size()) {
    // MSG_NOSIGNAL: a peer that hung up mid-reply must be an EPIPE
    // SocketError on this connection, never a process-wide SIGPIPE.
    const ssize_t n = ::send(sock.fd(), wire.data() + sent,
                             wire.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    if (n == 0) throw SocketError("send: connection closed");
    sent += static_cast<std::size_t>(n);
  }
}

Frame read_frame(const Socket& sock, std::size_t max_payload) {
  FrameReader reader(max_payload);
  char buf[4096];
  for (;;) {
    if (auto frame = reader.next()) return *std::move(frame);
    if (reader.failed()) throw SocketError("protocol: " + reader.error());
    const ssize_t n = ::recv(sock.fd(), buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        throw SocketError("recv: timed out waiting for a frame");
      throw_errno("recv");
    }
    if (n == 0)
      throw SocketError(reader.pending_bytes() == 0
                            ? "connection closed before a frame arrived"
                            : "connection closed mid-frame (truncated)");
    reader.feed(buf, static_cast<std::size_t>(n));
  }
}

void FrameReader::feed(const char* data, std::size_t n) {
  if (failed_) return;  // poisoned: drop everything after the error
  buffer_.append(data, n);
}

void FrameReader::fail(const std::string& why) {
  failed_ = true;
  error_ = why;
  buffer_.clear();
}

std::optional<Frame> FrameReader::next() {
  if (failed_ || buffer_.size() < kFrameHeaderBytes) return std::nullopt;
  const char* h = buffer_.data();
  if (get_u32(h) != kFrameMagic) {
    fail("bad frame magic (garbage bytes on the connection)");
    return std::nullopt;
  }
  const std::uint16_t version = get_u16(h + 4);
  if (version != kProtocolVersion) {
    fail("unsupported protocol version " + std::to_string(version) +
         " (this daemon speaks v" + std::to_string(kProtocolVersion) + ")");
    return std::nullopt;
  }
  const std::uint64_t len = get_u64(h + 8);
  if (len > max_payload_) {
    fail("oversized frame: length prefix " + std::to_string(len) +
         " exceeds the " + std::to_string(max_payload_) + "-byte bound");
    return std::nullopt;
  }
  if (buffer_.size() < kFrameHeaderBytes + len) return std::nullopt;
  Frame frame;
  frame.type = get_u16(h + 6);
  frame.payload = buffer_.substr(kFrameHeaderBytes, len);
  buffer_.erase(0, kFrameHeaderBytes + static_cast<std::size_t>(len));
  return frame;
}

}  // namespace am

#pragma once
// Stream sockets and length-prefixed message framing — the transport
// under the amsweepd daemon protocol (measure/daemon.hpp). Two layers,
// deliberately separated:
//
//   * Byte transport: an RAII `Socket` over a Unix-domain or loopback
//     TCP stream, with throwing connect/listen factories, non-blocking
//     accept, and best-effort I/O timeouts. Unix sockets are the
//     default (filesystem permissions are the access control); the TCP
//     listener binds 127.0.0.1 only — the protocol carries no
//     authentication, so anything non-local must ride an SSH tunnel.
//   * Message framing: every message is a fixed 16-byte little-endian
//     header (magic, protocol version, frame type, payload length)
//     followed by the payload. The frame layer knows nothing about what
//     payloads mean; frame *types* belong to the protocol built on top.
//
// The framing exists to make malformed input a first-class, *clean*
// outcome. A server feeding bytes to a `FrameReader` gets exactly one
// of: a complete frame, "need more bytes", or a terminal per-connection
// error naming what was wrong (garbage magic, unsupported version,
// oversized length prefix, truncation at close). It can never be made
// to allocate more than its configured payload bound, block on a slow
// sender, or tear down anything beyond the offending connection.
#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

namespace am {

/// Transport and framing failures. what() names the operation and errno
/// text; connection-scoped by construction — callers drop the one socket
/// and carry on.
class SocketError : public std::runtime_error {
 public:
  explicit SocketError(const std::string& what) : std::runtime_error(what) {}
};

/// "AMSW" — the first four bytes of every well-formed frame. Anything
/// else is garbage and fails the connection immediately.
inline constexpr std::uint32_t kFrameMagic = 0x57534D41u;  // 'A','M','S','W' LE
/// Bump on any incompatible header or payload-contract change; readers
/// reject other versions with a clean error instead of misparsing.
inline constexpr std::uint16_t kProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 16;
/// Default payload bound. Plans are small text files; a length prefix
/// beyond this is a hostile or corrupt frame, not a big plan.
inline constexpr std::size_t kDefaultMaxFrameBytes = 1u << 20;

/// One protocol message: a type tag plus an opaque payload. Types are
/// defined by the protocol layer (measure/daemon.hpp).
struct Frame {
  std::uint16_t type = 0;
  std::string payload;
};

/// Move-only RAII file descriptor for a stream socket.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void close();

 private:
  int fd_ = -1;
};

/// Binds and listens on a Unix-domain socket at `path`. A stale socket
/// file from a dead daemon (nothing accepts connections on it) is
/// silently replaced; a *live* one — another daemon is serving — throws,
/// so two daemons can never share a results directory unnoticed.
Socket listen_unix(const std::string& path);

/// Connects to the Unix-domain socket at `path`. Throws SocketError when
/// nothing is listening.
Socket connect_unix(const std::string& path);

/// Listens on 127.0.0.1:`port` (0 = kernel-assigned; read it back with
/// local_port). Loopback only by design — see the file comment.
Socket listen_tcp(std::uint16_t port);

/// Connects to 127.0.0.1:`port`.
Socket connect_tcp(std::uint16_t port);

/// The locally bound port of a listening TCP socket (resolves port 0).
std::uint16_t local_port(const Socket& listener);

/// Accepts one pending connection; nullopt when none is pending (the
/// listener should be non-blocking for a polling server). Throws on real
/// accept failures.
std::optional<Socket> accept_connection(const Socket& listener);

void set_nonblocking(const Socket& sock, bool on);

/// Best-effort SO_RCVTIMEO/SO_SNDTIMEO (0 disables): a wedged or
/// malicious peer turns into a SocketError instead of a hung caller.
void set_io_timeout(const Socket& sock, double seconds);

/// The 16-byte header + payload encoding of `frame`.
std::string encode_frame(const Frame& frame);

/// Blocking framed send (EINTR-safe, SIGPIPE-suppressed). Throws
/// SocketError on short writes, timeouts, or a peer that went away.
void write_frame(const Socket& sock, const Frame& frame);

/// Blocking framed receive of exactly one frame. Throws SocketError on
/// EOF (clean or mid-frame), timeout, or any FrameReader protocol error.
Frame read_frame(const Socket& sock,
                 std::size_t max_payload = kDefaultMaxFrameBytes);

/// Incremental frame parser for polling servers: feed() whatever bytes
/// arrived, then drain next() until it returns nullopt. Once failed()
/// the reader is poisoned — the connection is unrecoverable by contract
/// (stream framing cannot resynchronize past a bad header) — and next()
/// never yields another frame.
class FrameReader {
 public:
  explicit FrameReader(std::size_t max_payload = kDefaultMaxFrameBytes)
      : max_payload_(max_payload) {}

  void feed(const char* data, std::size_t n);

  /// The next complete frame, if one is buffered. Returns nullopt both
  /// for "need more bytes" and after a protocol error — check failed()
  /// to distinguish.
  std::optional<Frame> next();

  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }

  /// Bytes buffered but not yet consumed — nonzero at connection close
  /// means the peer truncated a frame mid-send.
  std::size_t pending_bytes() const { return buffer_.size(); }

 private:
  void fail(const std::string& why);

  std::string buffer_;
  std::size_t max_payload_;
  bool failed_ = false;
  std::string error_;
};

}  // namespace am

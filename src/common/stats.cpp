#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace am {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_);
  const auto m = static_cast<double>(other.n_);
  mean_ += delta * m / (n + m);
  m2_ += other.m2_ + delta * delta * n * m / (n + m);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Summary summarize(std::span<const double> xs) {
  RunningStats rs;
  for (double x : xs) rs.add(x);
  return Summary{rs.count(), rs.mean(), rs.stddev(), rs.min(), rs.max()};
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile of empty sample");
  // !(p >= 0 && p <= 100) rather than (p < 0 || p > 100) so NaN is rejected
  // too; out-of-range p would index past the end of `sorted` below.
  if (!(p >= 0.0 && p <= 100.0))
    throw std::invalid_argument("percentile: p must be in [0, 100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

double mean_abs_error(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size() || a.empty())
    throw std::invalid_argument("mean_abs_error: size mismatch or empty");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += std::abs(a[i] - b[i]);
  return acc / static_cast<double>(a.size());
}

}  // namespace am

#pragma once
// Streaming and batch summary statistics used throughout validation benches.
#include <cstddef>
#include <span>
#include <vector>

namespace am {

/// Welford streaming mean/variance accumulator. Numerically stable; O(1)
/// per observation, so it can sit inside simulator hot loops.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two observations.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

Summary summarize(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0,100]. Sorts a copy.
double percentile(std::span<const double> xs, double p);

/// Mean absolute difference between two equally sized samples.
double mean_abs_error(std::span<const double> a, std::span<const double> b);

}  // namespace am

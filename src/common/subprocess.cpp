#include "common/subprocess.hpp"

#include <fcntl.h>
#include <signal.h>
#include <spawn.h>
#include <string.h>
#include <sys/wait.h>

#include <cerrno>
#include <stdexcept>
#include <utility>

#include "common/errno_string.hpp"

extern char** environ;

namespace am {

namespace {

ExitStatus decode(int wstatus) {
  ExitStatus st;
  if (WIFSIGNALED(wstatus)) {
    st.signaled = true;
    st.signal = WTERMSIG(wstatus);
  } else {
    st.code = WEXITSTATUS(wstatus);
  }
  return st;
}

/// RAII for posix_spawn_file_actions_t (the error paths below would
/// otherwise each need a manual destroy).
struct FileActions {
  posix_spawn_file_actions_t actions;
  FileActions() { posix_spawn_file_actions_init(&actions); }
  ~FileActions() { posix_spawn_file_actions_destroy(&actions); }
};

struct SpawnAttr {
  posix_spawnattr_t attr;
  SpawnAttr() { posix_spawnattr_init(&attr); }
  ~SpawnAttr() { posix_spawnattr_destroy(&attr); }
};

}  // namespace

std::string ExitStatus::describe() const {
  if (signaled) {
#if defined(__GLIBC__) && defined(__GLIBC_PREREQ) && __GLIBC_PREREQ(2, 32)
    // sigdescr_np is the thread-safe strsignal: same description strings,
    // no shared static buffer, no locale lookup.
    const char* name = sigdescr_np(signal);
#else
    const char* name = nullptr;
#endif
    return "signal " + std::to_string(signal) +
           (name ? std::string(" (") + name + ")" : "");
  }
  return "exit " + std::to_string(code);
}

Subprocess Subprocess::spawn(const std::vector<std::string>& argv,
                             const Options& opts) {
  if (argv.empty() || argv[0].empty())
    throw std::runtime_error("Subprocess: empty argv");

  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const auto& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);

  FileActions fa;
  constexpr mode_t kLogMode = 0644;
  if (!opts.stdout_path.empty()) {
    if (const int rc = posix_spawn_file_actions_addopen(
            &fa.actions, 1, opts.stdout_path.c_str(),
            O_WRONLY | O_CREAT | O_APPEND, kLogMode))
      throw std::runtime_error("Subprocess: cannot redirect stdout to " +
                               opts.stdout_path + ": " + errno_string(rc));
    if (opts.stderr_path.empty())
      if (const int rc = posix_spawn_file_actions_adddup2(&fa.actions, 1, 2))
        throw std::runtime_error(
            std::string("Subprocess: cannot redirect stderr to stdout: ") +
            errno_string(rc));
  }
  if (!opts.stderr_path.empty()) {
    if (const int rc = posix_spawn_file_actions_addopen(
            &fa.actions, 2, opts.stderr_path.c_str(),
            O_WRONLY | O_CREAT | O_APPEND, kLogMode))
      throw std::runtime_error("Subprocess: cannot redirect stderr to " +
                               opts.stderr_path + ": " + errno_string(rc));
  }

  SpawnAttr sa;
  if (opts.new_process_group) {
    // Checked: a silent failure here would leave the child in our group,
    // and the group-kill an orchestrator relies on would miss grandchildren.
    if (const int rc =
            posix_spawnattr_setflags(&sa.attr, POSIX_SPAWN_SETPGROUP))
      throw std::runtime_error(
          std::string("Subprocess: cannot set spawn flags: ") +
          errno_string(rc));
    if (const int rc = posix_spawnattr_setpgroup(&sa.attr, 0))
      throw std::runtime_error(
          std::string("Subprocess: cannot set process group: ") +
          errno_string(rc));  // 0 = own group, pgid == child pid
  }

  Subprocess child;
  pid_t pid = -1;
  const int rc = posix_spawnp(&pid, argv[0].c_str(), &fa.actions, &sa.attr,
                              cargv.data(), environ);
  if (rc != 0)
    throw std::runtime_error("Subprocess: cannot spawn '" + argv[0] +
                             "': " + errno_string(rc));
  child.pid_ = pid;
  child.own_group_ = opts.new_process_group;
  return child;
}

Subprocess Subprocess::spawn(const std::vector<std::string>& argv) {
  return spawn(argv, Options{});
}

void Subprocess::dispose() noexcept {
  if (pid_ < 0 || status_) return;
  // (void): ESRCH (child already gone) is the only realistic failure and
  // is benign — the waitpid below still reaps whatever is left.
  (void)::kill(own_group_ ? -pid_ : pid_, SIGKILL);
  int wstatus = 0;
  while (waitpid(pid_, &wstatus, 0) < 0 && errno == EINTR) {
  }
}

Subprocess::~Subprocess() { dispose(); }

Subprocess::Subprocess(Subprocess&& other) noexcept
    : pid_(std::exchange(other.pid_, -1)),
      own_group_(std::exchange(other.own_group_, false)),
      status_(std::exchange(other.status_, std::nullopt)) {}

Subprocess& Subprocess::operator=(Subprocess&& other) noexcept {
  if (this != &other) {
    // Release any current child exactly like the destructor would. (This
    // used to move *this into a temporary and then write over the
    // moved-from members — correct by construction of the move ctor, but
    // a use-after-move pattern that static analysis rightly dislikes.)
    dispose();
    pid_ = std::exchange(other.pid_, -1);
    own_group_ = std::exchange(other.own_group_, false);
    status_ = std::exchange(other.status_, std::nullopt);
  }
  return *this;
}

bool Subprocess::running() {
  if (pid_ < 0 || status_) return false;
  int wstatus = 0;
  const pid_t r = waitpid(pid_, &wstatus, WNOHANG);
  if (r == 0) return true;
  if (r == pid_) {
    status_ = decode(wstatus);
    return false;
  }
  // waitpid error (ECHILD after an external reap): treat as exited
  // abnormally rather than spinning forever on a child we cannot observe.
  status_ = ExitStatus{.code = 0, .signaled = true, .signal = SIGKILL};
  return false;
}

ExitStatus Subprocess::wait() {
  if (status_) return *status_;
  if (pid_ < 0) throw std::runtime_error("Subprocess: wait() without child");
  int wstatus = 0;
  pid_t r;
  while ((r = waitpid(pid_, &wstatus, 0)) < 0 && errno == EINTR) {
  }
  if (r == pid_)
    status_ = decode(wstatus);
  else
    status_ = ExitStatus{.code = 0, .signaled = true, .signal = SIGKILL};
  return *status_;
}

void Subprocess::kill(int sig) {
  if (pid_ < 0 || status_) return;
  // (void): the child may exit between our status_ check and the signal
  // (ESRCH); callers observe the outcome via running()/wait(), not here.
  (void)::kill(own_group_ ? -pid_ : pid_, sig);
}

void Subprocess::kill() { kill(SIGKILL); }

}  // namespace am

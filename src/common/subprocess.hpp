#pragma once
// Minimal child-process supervision: spawn an argv with optional
// stdout/stderr redirection, poll or wait for its exit status, kill it.
// This is the process-lifecycle primitive under measure::SweepOrchestrator
// (one child per plan shard); it knows nothing about experiments.
// Guarantees:
//
//   * No zombies: a Subprocess that goes out of scope while its child
//     still runs kills (SIGKILL) and reaps it — an orchestrator unwinding
//     on an exception cannot leak workers.
//   * Exact status: exit codes and termination signals are reported
//     separately (ExitStatus), never folded into one ambiguous int.
//   * Spawn failures throw: an unexecutable binary is a std::runtime_error
//     at spawn() time (glibc's posix_spawnp reports exec errors
//     synchronously), not a mysterious exit code later.
#include <sys/types.h>

#include <optional>
#include <string>
#include <vector>

namespace am {

/// How a child ended: a normal exit code or a terminating signal.
struct ExitStatus {
  int code = 0;          // exit code; meaningful when !signaled
  bool signaled = false;
  int signal = 0;        // terminating signal; meaningful when signaled
  bool success() const { return !signaled && code == 0; }
  /// "exit N" or "signal N (NAME)" — for logs and manifests.
  std::string describe() const;
};

class Subprocess {
 public:
  struct Options {
    /// Redirect the child's stdout to this file (append mode, so one log
    /// accumulates across retries of the same shard). Empty = inherit.
    std::string stdout_path;
    /// Redirect stderr; empty = share the stdout redirection (or inherit
    /// when that is empty too).
    std::string stderr_path;
    /// Put the child in its own process group, and make kill()/the
    /// destructor signal the whole group: a worker that is itself a
    /// wrapper (shell script, launcher) cannot leave grandchildren
    /// running after a supervisor kill. Off by default — a grouped child
    /// no longer receives the terminal's Ctrl-C.
    bool new_process_group = false;
  };

  /// Spawns `argv` (argv[0] resolved via PATH). Throws std::runtime_error
  /// on an empty argv or when the process cannot be created/executed.
  /// (Two overloads rather than a defaulted Options argument: a nested
  /// class's default member initializers are not usable in the enclosing
  /// class's default arguments.)
  static Subprocess spawn(const std::vector<std::string>& argv,
                          const Options& opts);
  static Subprocess spawn(const std::vector<std::string>& argv);

  Subprocess() = default;
  ~Subprocess();  // kills + reaps a still-running child

  Subprocess(Subprocess&& other) noexcept;
  Subprocess& operator=(Subprocess&& other) noexcept;
  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;

  /// The child pid, or -1 when default-constructed / moved-from.
  pid_t pid() const { return pid_; }

  /// Non-blocking: reaps the child if it has exited. True while running.
  bool running();

  /// Blocks until the child exits; returns (and caches) its status.
  ExitStatus wait();

  /// The status once the child has been reaped; nullopt while running.
  const std::optional<ExitStatus>& status() const { return status_; }

  /// Sends `sig` (default SIGKILL) to a still-running child. No-op after
  /// exit.
  void kill(int sig);
  void kill();

 private:
  /// Kills + reaps a still-running child (destructor semantics); shared
  /// by the destructor and move-assignment.
  void dispose() noexcept;

  pid_t pid_ = -1;
  bool own_group_ = false;  // signal -pid_ (the whole group) instead
  std::optional<ExitStatus> status_;
};

}  // namespace am

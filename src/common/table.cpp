#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <ostream>

namespace am {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << std::string(widths[c] + 2, '-') << "|";
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::write_csv(std::ostream& os) const {
  auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  write_row(headers_);
  for (const auto& row : rows_) write_row(row);
}

bool Table::save_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_csv(out);
  return static_cast<bool>(out);
}

}  // namespace am

#pragma once
// Aligned ASCII tables + CSV export for bench output. Every bench binary
// prints one table per paper figure/table through this writer so the output
// format is uniform and machine-parsable.
#include <iosfwd>
#include <string>
#include <vector>

namespace am {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; pads/truncates to the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);

  void print(std::ostream& os) const;
  void write_csv(std::ostream& os) const;
  /// Writes CSV to a file path; returns false on I/O failure.
  bool save_csv(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return headers_.size(); }
  const std::string& cell(std::size_t r, std::size_t c) const {
    return rows_.at(r).at(c);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace am

#pragma once
// Clang thread-safety-analysis attribute macros (-Wthread-safety).
//
// Annotating which mutex guards which member turns lock discipline into a
// compile-time property: clang rejects any access to an AM_GUARDED_BY
// member outside its mutex, any call to an AM_REQUIRES function without
// the lock, and any double-acquire — even in builds that never run the
// code, which is exactly where data races hide from tests. GCC compiles
// the same sources with the macros expanding to nothing, and TSan
// (cmake --preset tsan) checks the equivalent property dynamically, so
// the discipline is enforced by at least one tool in every CI lane.
//
// Naming follows the clang documentation's canonical macro set with an
// AM_ prefix so nothing collides with third-party headers. Only the
// subset this codebase uses is defined; grow it as needed.

#if defined(__clang__) && defined(__has_attribute)
#define AM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define AM_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Names the mutex that must be held to read or write the member.
#define AM_GUARDED_BY(x) AM_THREAD_ANNOTATION(guarded_by(x))

/// As AM_GUARDED_BY, for data reached through a pointer member.
#define AM_PT_GUARDED_BY(x) AM_THREAD_ANNOTATION(pt_guarded_by(x))

/// The function may only be called while holding the named mutex(es).
#define AM_REQUIRES(...) \
  AM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// The function acquires the named mutex(es) and holds them on return.
#define AM_ACQUIRE(...) AM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The function attempts to acquire; the first argument is the return
/// value that means "acquired" (e.g. AM_TRY_ACQUIRE(true)).
#define AM_TRY_ACQUIRE(...) \
  AM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// The function releases the named mutex(es).
#define AM_RELEASE(...) AM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The function must NOT be called while holding the named mutex(es)
/// (it acquires them itself; calling with them held would deadlock).
#define AM_EXCLUDES(...) AM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Marks a type as a lockable capability. libstdc++'s std::mutex is NOT
/// annotated (only libc++ opts in), so AM_GUARDED_BY(a std::mutex) would
/// be ignored with an attribute warning — guard members with am::Mutex
/// from common/mutex.hpp instead.
#define AM_CAPABILITY(x) AM_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type that acquires on construction / releases on
/// destruction (std::lock_guard style).
#define AM_SCOPED_CAPABILITY AM_THREAD_ANNOTATION(scoped_lockable)

/// Escape hatch for code the analysis cannot model (e.g. a lock handed
/// across threads). Every use must carry a comment saying why.
#define AM_NO_THREAD_SAFETY_ANALYSIS \
  AM_THREAD_ANNOTATION(no_thread_safety_analysis)

#include "common/thread_pool.hpp"

#include <algorithm>

namespace am {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 4;
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

// CV waits below use explicit while-loops instead of the lambda-predicate
// overload: a lambda body is a separate function to clang's thread-safety
// analysis, so guarded members read inside one would need their own
// annotations. The open-coded loop keeps every guarded access lexically
// inside the MutexLock scope, where the analysis can verify it.

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const MutexLock lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  MutexLock lock(mutex_);
  while (!queue_.empty() || in_flight_ != 0) cv_idle_.wait(lock.native());
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stop_ && queue_.empty()) cv_task_.wait(lock.native());
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      const MutexLock lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  parallel_for(pool, n, 1, fn);
}

void parallel_for(ThreadPool& pool, std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t)>& fn) {
  if (grain == 0) grain = 1;
  for (std::size_t begin = 0; begin < n; begin += grain) {
    const std::size_t end = std::min(begin + grain, n);
    pool.submit([&fn, begin, end] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    });
  }
  pool.wait_idle();
}

}  // namespace am

#pragma once
// Fixed-size thread pool with a parallel_for convenience. Bench drivers use
// this to run independent simulator configurations concurrently; the
// simulator itself is single-threaded-deterministic per configuration.
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace am {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; tasks may not throw (std::terminate otherwise).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;  // written only in the constructor
  Mutex mutex_;
  std::deque<std::function<void()>> queue_ AM_GUARDED_BY(mutex_);
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ AM_GUARDED_BY(mutex_) = 0;
  bool stop_ AM_GUARDED_BY(mutex_) = false;
};

/// Runs fn(i) for i in [0, n) across the pool's threads and waits.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

/// Chunked overload: splits [0, n) into contiguous chunks of up to `grain`
/// indices and submits one task per chunk, so large grids pay one queue
/// round-trip per chunk instead of per index. fn still runs once per index,
/// in order within each chunk.
void parallel_for(ThreadPool& pool, std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t)>& fn);

}  // namespace am

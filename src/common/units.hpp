#pragma once
// Byte-size and rate units plus human-readable formatting helpers.
#include <cstdint>
#include <string>

namespace am {

inline constexpr std::uint64_t KiB = 1024ull;
inline constexpr std::uint64_t MiB = 1024ull * KiB;
inline constexpr std::uint64_t GiB = 1024ull * MiB;

/// Formats a byte count as e.g. "20.0MB" (binary units, one decimal).
inline std::string format_bytes(double bytes) {
  const char* suffix = "B";
  double v = bytes;
  if (v >= static_cast<double>(GiB)) {
    v /= static_cast<double>(GiB);
    suffix = "GB";
  } else if (v >= static_cast<double>(MiB)) {
    v /= static_cast<double>(MiB);
    suffix = "MB";
  } else if (v >= static_cast<double>(KiB)) {
    v /= static_cast<double>(KiB);
    suffix = "KB";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f%s", v, suffix);
  return buf;
}

/// Formats a bandwidth in bytes/second as e.g. "2.8GB/s".
inline std::string format_bandwidth(double bytes_per_sec) {
  return format_bytes(bytes_per_sec) + "/s";
}

}  // namespace am

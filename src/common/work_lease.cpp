#include "common/work_lease.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "common/atomic_file.hpp"

namespace am {

namespace {

constexpr const char* kLeaseHeader = "#am-work-lease v1";
constexpr const char* kAckHeader = "#am-lease-ack v1";
constexpr const char* kPlanHeader = "#am-plan-info v1";

/// Hexfloat: costs and wall-clocks round-trip bit-exactly, like the
/// result store's doubles.
std::string num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

bool parse_double(const std::string& s, double& out) {
  errno = 0;
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end != s.c_str() && *end == '\0' && errno != ERANGE;
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos)
    return false;
  errno = 0;
  out = std::strtoull(s.c_str(), nullptr, 10);
  return errno != ERANGE;
}

/// Reads the whole file and checks the header; nullopt when absent or
/// not the expected format. Remaining lines land in `lines`.
bool read_lines(const std::string& path, const char* header,
                std::vector<std::string>& lines) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  if (!std::getline(in, line) || line != header) return false;
  while (std::getline(in, line))
    if (!line.empty()) lines.push_back(line);
  return true;
}

}  // namespace

std::vector<WorkLease> make_batches(std::size_t points, std::size_t count,
                                    const std::vector<double>& costs) {
  if (count == 0)
    throw std::invalid_argument("make_batches: count must be >= 1");
  if (!costs.empty() && costs.size() != points)
    throw std::invalid_argument(
        "make_batches: cost model has " + std::to_string(costs.size()) +
        " entries for " + std::to_string(points) + " points");
  for (const double c : costs)
    if (!(c >= 0.0) || c > std::numeric_limits<double>::max())
      throw std::invalid_argument(
          "make_batches: cost entries must be finite and >= 0");

  // Greedy LPT; every ordering is stable (ties by plan index, then by
  // batch index), so the assignment is a pure function of its inputs —
  // and the uniform-cost case collapses to round-robin exactly.
  std::vector<std::size_t> order(points);
  for (std::size_t i = 0; i < points; ++i) order[i] = i;
  if (!costs.empty())
    std::stable_sort(
        order.begin(), order.end(),
        [&](std::size_t a, std::size_t b) { return costs[a] > costs[b]; });

  std::vector<WorkLease> out(count);
  for (std::size_t b = 0; b < count; ++b) out[b].id = b;
  for (const std::size_t i : order) {
    std::size_t lightest = 0;
    for (std::size_t b = 1; b < count; ++b)
      if (out[b].cost < out[lightest].cost) lightest = b;
    out[lightest].points.push_back(i);
    out[lightest].cost += costs.empty() ? 1.0 : costs[i];
  }
  // Ascending plan indices within a batch: results are order-independent,
  // but readable leases and cheap coverage checks are not.
  for (auto& lease : out) std::sort(lease.points.begin(), lease.points.end());
  return out;
}

std::string lease_ack_path(const std::string& lease_path) {
  return lease_path + ".ack";
}

std::string lease_store_path(const std::string& lease_path) {
  return lease_path + ".tsv";
}

std::string lease_heartbeat_path(const std::string& lease_path) {
  return lease_path + ".hb";
}

void write_lease_offer(const std::string& path, const LeaseOffer& offer) {
  std::ostringstream out;
  out << kLeaseHeader << '\n';
  out << "lease\t" << offer.lease.id << '\n';
  out << "done\t" << (offer.done ? 1 : 0) << '\n';
  out << "cost\t" << num(offer.lease.cost) << '\n';
  // Daemon-only fields, omitted when empty so single-plan lease files
  // stay byte-identical to what PR-5 workers expect. Paths may not
  // contain tabs or newlines — the format has no escaping.
  if (!offer.plan_path.empty()) out << "plan\t" << offer.plan_path << '\n';
  if (!offer.store_path.empty()) out << "store\t" << offer.store_path << '\n';
  if (!offer.seed_store_path.empty())
    out << "seed_store\t" << offer.seed_store_path << '\n';
  out << "points";
  for (const auto p : offer.lease.points) out << '\t' << p;
  out << '\n';
  atomic_write_file(path, out.str(), "work-lease");
}

std::optional<LeaseOffer> read_lease_offer(const std::string& path) {
  std::vector<std::string> lines;
  if (!read_lines(path, kLeaseHeader, lines)) return std::nullopt;
  LeaseOffer offer;
  bool saw_lease = false, saw_done = false, saw_points = false;
  for (const auto& line : lines) {
    std::istringstream in(line);
    std::string key;
    in >> key;
    if (key == "lease") {
      std::string v;
      if (!(in >> v) || !parse_u64(v, offer.lease.id)) return std::nullopt;
      saw_lease = true;
    } else if (key == "done") {
      std::string v;
      if (!(in >> v) || (v != "0" && v != "1")) return std::nullopt;
      offer.done = v == "1";
      saw_done = true;
    } else if (key == "cost") {
      std::string v;
      if (!(in >> v) || !parse_double(v, offer.lease.cost))
        return std::nullopt;
    } else if (key == "plan" || key == "store" || key == "seed_store") {
      // Path values run to end of line (spaces are legal in paths; tabs
      // and newlines are not — the writer has no escaping).
      if (line.size() <= key.size() + 1) return std::nullopt;
      const std::string value = line.substr(key.size() + 1);
      if (key == "plan")
        offer.plan_path = value;
      else if (key == "store")
        offer.store_path = value;
      else
        offer.seed_store_path = value;
    } else if (key == "points") {
      std::string v;
      while (in >> v) {
        std::uint64_t p = 0;
        if (!parse_u64(v, p)) return std::nullopt;
        offer.lease.points.push_back(static_cast<std::size_t>(p));
      }
      saw_points = true;
    }
  }
  if (!saw_lease || !saw_done || !saw_points) return std::nullopt;
  return offer;
}

void write_lease_ack(const std::string& path, const LeaseAck& ack) {
  std::ostringstream out;
  out << kAckHeader << '\n';
  out << "lease\t" << ack.lease_id << '\n';
  out << "points\t" << ack.points << '\n';
  out << "executed\t" << ack.executed << '\n';
  out << "wall\t" << num(ack.wall_seconds) << '\n';
  atomic_write_file(path, out.str(), "lease-ack");
}

std::optional<LeaseAck> read_lease_ack(const std::string& path) {
  std::vector<std::string> lines;
  if (!read_lines(path, kAckHeader, lines)) return std::nullopt;
  LeaseAck ack;
  bool saw_lease = false;
  for (const auto& line : lines) {
    std::istringstream in(line);
    std::string key, v;
    if (!(in >> key >> v)) return std::nullopt;
    std::uint64_t u = 0;
    if (key == "lease") {
      if (!parse_u64(v, u)) return std::nullopt;
      ack.lease_id = u;
      saw_lease = true;
    } else if (key == "points") {
      if (!parse_u64(v, u)) return std::nullopt;
      ack.points = static_cast<std::size_t>(u);
    } else if (key == "executed") {
      if (!parse_u64(v, u)) return std::nullopt;
      ack.executed = static_cast<std::size_t>(u);
    } else if (key == "wall") {
      if (!parse_double(v, ack.wall_seconds)) return std::nullopt;
    }
  }
  if (!saw_lease) return std::nullopt;
  return ack;
}

void write_plan_info(const std::string& path, const PlanInfo& info) {
  std::ostringstream out;
  out << kPlanHeader << '\n';
  out << "points\t" << info.points << '\n';
  for (std::size_t i = 0; i < info.costs.size(); ++i)
    out << "cost\t" << i << '\t' << num(info.costs[i]) << '\n';
  atomic_write_file(path, out.str(), "plan-info");
}

std::optional<PlanInfo> read_plan_info(const std::string& path) {
  std::vector<std::string> lines;
  if (!read_lines(path, kPlanHeader, lines)) return std::nullopt;
  PlanInfo info;
  bool saw_points = false;
  std::vector<std::pair<std::size_t, double>> costs;
  for (const auto& line : lines) {
    std::istringstream in(line);
    std::string key;
    in >> key;
    if (key == "points") {
      std::string v;
      std::uint64_t u = 0;
      if (!(in >> v) || !parse_u64(v, u)) return std::nullopt;
      info.points = static_cast<std::size_t>(u);
      saw_points = true;
    } else if (key == "cost") {
      std::string i_s, c_s;
      std::uint64_t i = 0;
      double c = 0.0;
      if (!(in >> i_s >> c_s) || !parse_u64(i_s, i) || !parse_double(c_s, c))
        return std::nullopt;
      costs.emplace_back(static_cast<std::size_t>(i), c);
    }
  }
  if (!saw_points) return std::nullopt;
  // Costs are optional as a block but must cover the plan when present.
  if (!costs.empty()) {
    info.costs.assign(info.points, 1.0);
    for (const auto& [i, c] : costs) {
      if (i >= info.points) return std::nullopt;
      info.costs[i] = c;
    }
  }
  return info;
}

}  // namespace am

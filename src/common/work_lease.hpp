#pragma once
// On-disk handoff for dynamic work-queue scheduling (see shard.hpp for
// the WorkLease type itself). Three tiny single-purpose file formats,
// all written atomically (common/atomic_file) so a reader ever sees a
// complete previous file or a complete new one, never a torn mix:
//
//   * Lease file — scheduler → worker. One per worker slot, rewritten
//     for every batch: the lease id, the plan indices to run, and a
//     `done` flag that tells the worker to exit cleanly once the queue
//     is drained. Workers poll it; a lease id they already acknowledged
//     means "no new work yet".
//   * Ack file (`<lease>.ack`) — worker → scheduler. Written after the
//     worker has executed a lease's points and checkpointed its store:
//     the lease id, how many points it covered, how many engine runs
//     were actually executed (cache hits excluded), and the wall-clock
//     the batch took (the scheduler's per-worker busy-time stat).
//   * Plan-info file — driver → scheduler, from a `--emit-plan` probe
//     run: the plan size and a per-point relative cost estimate, which
//     is everything a scheduler needs to build size-aware batches for a
//     plan it cannot construct itself (only the driver knows the grid).
//
// All readers return nullopt for an absent or malformed file instead of
// throwing: polling loops treat both as "not there yet", and atomic
// writes make "malformed" unreachable short of manual editing.
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/shard.hpp"

namespace am {

/// A lease file's full content: the batch plus the shutdown flag.
struct LeaseOffer {
  WorkLease lease;
  /// True = queue drained; the worker exits 0 without writing a further
  /// ack (the scheduler judges the shutdown by exit status, not by a
  /// receipt). A done offer carries no points.
  bool done = false;
  /// Multi-plan scheduling (measure::SweepDaemon): the serialized plan
  /// the batch's indices refer to, the store file the worker must
  /// record results into, and an optional read-only store to seed its
  /// cache from. All empty in the single-plan orchestrator handoff —
  /// there the worker already owns its plan and store paths; writers
  /// omit empty fields and legacy readers ignore unknown keys, so the
  /// two generations of lease files interoperate.
  std::string plan_path;
  std::string store_path;
  std::string seed_store_path;
};

/// A worker's receipt for one completed lease.
struct LeaseAck {
  std::uint64_t lease_id = 0;
  std::size_t points = 0;    // plan points the lease covered
  std::size_t executed = 0;  // engine runs actually performed (≤ points)
  double wall_seconds = 0.0;
};

/// A probed plan: size and per-point relative cost (costs.size() ==
/// points; uniform 1.0 when the driver has no better estimate).
struct PlanInfo {
  std::size_t points = 0;
  std::vector<double> costs;
};

/// Splits `points` plan indices into `count` size-aware batches by
/// greedy LPT: points in descending cost order (ties by index) each
/// join the currently cheapest batch (ties by batch index). `costs` is
/// empty (uniform) or one finite non-negative entry per point — with
/// uniform costs the assignment degenerates to the round-robin shard
/// slices {i : i ≡ b (mod count)}, which is what keeps `--shard i/n` a
/// compatibility front-end of the same scheduler. Batches are disjoint,
/// cover [0, points) exactly, and list their indices ascending; batch
/// ids are the batch indices (schedulers re-issue under fresh lease
/// ids). Throws std::invalid_argument on count == 0 or a bad cost
/// vector. count > points leaves the high batches empty.
std::vector<WorkLease> make_batches(std::size_t points, std::size_t count,
                                    const std::vector<double>& costs = {});

/// Standard sidecar paths next to a lease file.
std::string lease_ack_path(const std::string& lease_path);
std::string lease_store_path(const std::string& lease_path);
std::string lease_heartbeat_path(const std::string& lease_path);

/// Atomic writers; throw std::runtime_error on I/O failure (the
/// scheduler must know its offer never reached the worker).
void write_lease_offer(const std::string& path, const LeaseOffer& offer);
void write_lease_ack(const std::string& path, const LeaseAck& ack);
void write_plan_info(const std::string& path, const PlanInfo& info);

/// Readers: the parsed file, or nullopt when absent or malformed.
std::optional<LeaseOffer> read_lease_offer(const std::string& path);
std::optional<LeaseAck> read_lease_ack(const std::string& path);
std::optional<PlanInfo> read_plan_info(const std::string& path);

}  // namespace am

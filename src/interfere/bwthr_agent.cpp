#include "interfere/bwthr_agent.hpp"

#include <stdexcept>

#include "sim/engine.hpp"

namespace am::interfere {

BWThrAgent::BWThrAgent(sim::MemorySystem& memory, BWThrConfig config,
                       std::string name)
    : sim::Agent(std::move(name)), config_(config) {
  const auto line = memory.config().l3.line_bytes;
  if (config_.buffer_bytes < line || config_.num_buffers == 0)
    throw std::invalid_argument("BWThrConfig: degenerate geometry");
  lines_per_buffer_ = config_.buffer_bytes / line;
  buffer_base_.reserve(config_.num_buffers);
  for (std::uint32_t b = 0; b < config_.num_buffers; ++b)
    buffer_base_.push_back(memory.alloc(config_.buffer_bytes, line));
  batch_.reserve(config_.num_buffers);
}

void BWThrAgent::step(sim::AgentContext& ctx) {
  const auto line = ctx.engine().config().l3.line_bytes;
  // A slice of one iteration of the paper's infinite loop: touch the next
  // group of buffers at the current strided index. The accesses are
  // independent, so they are issued as a batch (the machine caps how many
  // misses actually overlap).
  const std::uint64_t line_idx =
      (index_ * config_.line_stride) % lines_per_buffer_;
  const std::uint32_t end =
      std::min(buffer_cursor_ + config_.buffers_per_step, config_.num_buffers);
  batch_.clear();
  for (std::uint32_t b = buffer_cursor_; b < end; ++b)
    batch_.push_back(buffer_base_[b] + line_idx * line);
  ctx.load_batch(batch_);
  // The ++ stores hit the just-filled lines.
  ctx.store_batch(batch_);
  // Address-generation dependence chain (identity() + modulo) per buffer.
  ctx.compute(static_cast<sim::Cycles>(end - buffer_cursor_) *
              config_.index_compute_cycles);
  buffer_cursor_ = end;
  if (buffer_cursor_ >= config_.num_buffers) {
    buffer_cursor_ = 0;
    ++index_;
    ++iterations_;
  }
}

}  // namespace am::interfere

#pragma once
// Simulator version of the paper's bandwidth interference thread BWThr
// (Fig. 2): many buffers walked concurrently with a constant prime stride,
// so that (a) nearly every access misses the private caches, (b) the
// constant stride lets the stream prefetcher pull extra bandwidth, and
// (c) the buffer count provides memory-level parallelism.
//
// Adaptation from the paper's code: the paper strides element indices by a
// large prime; we stride *cache-line* indices by a prime that stays inside
// the prefetcher's stream window, which preserves both properties the
// paper wants (no private-cache reuse, prefetcher engagement) under the
// simulator's exact-stride stream detector.
#include <cstdint>
#include <vector>

#include "sim/agent.hpp"
#include "sim/memory_system.hpp"

namespace am::interfere {

struct BWThrConfig {
  std::uint64_t buffer_bytes = 520 * 1024;  // per buffer, as in the paper
  std::uint32_t num_buffers = 44;           // paper: "44 ... sufficient"
  std::uint32_t line_stride = 17;           // prime, in cache lines
  /// Serial index-computation cost per buffer access: the paper's opaque
  /// identity() call plus the integer modulo are on the address dependence
  /// chain and cannot overlap with the miss. Calibrated so one thread
  /// draws ~2.8 GB/s on the Xeon20MB model, as measured in §III-A.
  std::uint32_t index_compute_cycles = 20;
  /// Buffers touched per engine step. Small groups keep the simulated
  /// interleaving with other agents fine-grained (the engine serializes
  /// each step's memory traffic).
  std::uint32_t buffers_per_step = 8;
};

class BWThrAgent final : public sim::Agent {
 public:
  /// Allocates the buffers from the memory system's simulated heap.
  BWThrAgent(sim::MemorySystem& memory, BWThrConfig config,
             std::string name = "BWThr");

  void step(sim::AgentContext& ctx) override;
  bool finished() const override { return false; }  // runs until stopped

  /// Main-loop iterations completed (one iteration = one access per buffer),
  /// for the Fig. 7 "time per 1e7 iterations" metric.
  std::uint64_t iterations() const { return iterations_; }

  const BWThrConfig& config() const { return config_; }

 private:
  BWThrConfig config_;
  std::vector<sim::Addr> buffer_base_;
  std::vector<sim::Addr> batch_;
  std::uint64_t lines_per_buffer_;
  std::uint64_t index_ = 0;  // loop counter i of the paper's pseudo-code
  std::uint32_t buffer_cursor_ = 0;  // next buffer within the round
  std::uint64_t iterations_ = 0;
};

}  // namespace am::interfere

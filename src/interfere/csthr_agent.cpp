#include "interfere/csthr_agent.hpp"

#include <stdexcept>

#include "sim/engine.hpp"

namespace am::interfere {

namespace {
constexpr std::uint64_t kElementBytes = 4;  // int, as in the paper's Fig. 3
}

CSThrAgent::CSThrAgent(sim::MemorySystem& memory, CSThrConfig config,
                       std::string name)
    : sim::Agent(std::move(name)), config_(config) {
  if (config_.buffer_bytes < kElementBytes || config_.batch_size == 0)
    throw std::invalid_argument("CSThrConfig: degenerate geometry");
  num_elements_ = config_.buffer_bytes / kElementBytes;
  base_ = memory.alloc(config_.buffer_bytes, memory.config().l3.line_bytes);
  batch_.resize(config_.batch_size);
}

void CSThrAgent::step(sim::AgentContext& ctx) {
  for (auto& addr : batch_)
    addr = base_ + ctx.rng().bounded(num_elements_) * kElementBytes;
  ctx.load_batch(batch_);
  ctx.store_batch(batch_);           // the ++ write-back, hits in L1
  ctx.compute(config_.batch_size);   // one add per element
  operations_ += config_.batch_size;
}

}  // namespace am::interfere

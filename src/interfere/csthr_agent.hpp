#pragma once
// Simulator version of the paper's cache-storage interference thread CSThr
// (Fig. 3): random touches over a fixed-size buffer. The random pattern
// defeats the prefetcher and almost always misses the private caches while
// hitting the shared L3, which keeps the buffer resident there and denies
// the application that capacity.
#include <cstdint>
#include <vector>

#include "sim/agent.hpp"
#include "sim/memory_system.hpp"

namespace am::interfere {

struct CSThrConfig {
  std::uint64_t buffer_bytes = 4 * 1024 * 1024;  // paper: 4 MB per thread
  /// Independent read-modify-writes issued per step; models the modest
  /// out-of-order overlap of the paper's `buf[random]++` loop.
  std::uint32_t batch_size = 4;
};

class CSThrAgent final : public sim::Agent {
 public:
  CSThrAgent(sim::MemorySystem& memory, CSThrConfig config,
             std::string name = "CSThr");

  void step(sim::AgentContext& ctx) override;
  bool finished() const override { return false; }

  /// Read-add-write operations completed (Fig. 8 reports time per op).
  std::uint64_t operations() const { return operations_; }

  const CSThrConfig& config() const { return config_; }

 private:
  CSThrConfig config_;
  sim::Addr base_ = 0;
  std::uint64_t num_elements_;  // 4-byte ints, as in the paper
  std::vector<sim::Addr> batch_;
  std::uint64_t operations_ = 0;
};

}  // namespace am::interfere

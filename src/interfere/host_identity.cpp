#include "interfere/host_identity.hpp"

namespace am::interfere {

__attribute__((noinline, noipa)) std::int64_t host_identity(std::int64_t x) {
  return x;
}

}  // namespace am::interfere

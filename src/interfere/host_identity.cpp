#include "interfere/host_identity.hpp"

#include <unistd.h>

#include <fstream>
#include <string>

#include "common/fingerprint.hpp"

namespace am::interfere {

__attribute__((noinline, noipa)) std::int64_t host_identity(std::int64_t x) {
  return x;
}

namespace {

std::string read_cpu_model() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    // "model name\t: Intel(R) ..." on x86.
    if (line.rfind("model name", 0) != 0) continue;
    const auto colon = line.find(':');
    if (colon == std::string::npos) break;
    auto value = line.substr(colon + 1);
    const auto first = value.find_first_not_of(" \t");
    return first == std::string::npos ? std::string{} : value.substr(first);
  }
  return {};
}

}  // namespace

HostIdentity HostIdentity::detect() {
  HostIdentity id;
  char host[256] = {};
  if (gethostname(host, sizeof(host) - 1) == 0) id.hostname = host;
  id.cpu_model = read_cpu_model();
  const long cpus = sysconf(_SC_NPROCESSORS_ONLN);
  if (cpus > 0) id.logical_cpus = static_cast<std::uint32_t>(cpus);
  const long pages = sysconf(_SC_PHYS_PAGES);
  const long page_size = sysconf(_SC_PAGESIZE);
  if (pages > 0 && page_size > 0)
    id.total_mem_bytes = static_cast<std::uint64_t>(pages) *
                         static_cast<std::uint64_t>(page_size);
  return id;
}

std::string HostIdentity::fingerprint() const {
  Fingerprint fp;
  fp.mix(hostname)
      .mix(cpu_model)
      .mix(logical_cpus)
      .mix(total_mem_bytes);
  return fp.hex();
}

}  // namespace am::interfere

#pragma once
// The paper's anti-optimization device: the strided index computation is
// routed through an identity function that lives in a separate translation
// unit, so the compiler cannot see through it and simplify the access
// pattern (Section II-A).
#include <cstdint>

namespace am::interfere {

/// Returns x. Defined out-of-line in host_identity.cpp and never inlined.
std::int64_t host_identity(std::int64_t x);

}  // namespace am::interfere

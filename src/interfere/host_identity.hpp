#pragma once
// Two unrelated-looking duties that both answer "what machine am I on?":
//
//   1. host_identity(): the paper's anti-optimization device — the strided
//      index computation is routed through an identity function that lives
//      in a separate translation unit, so the compiler cannot see through
//      it and simplify the access pattern (Section II-A).
//
//   2. HostIdentity: a stable fingerprint of the physical host, recorded in
//      every ResultStore so that numbers measured on different machines are
//      never silently mixed. Host-native measurements (HostBackend) are
//      only comparable on the same hardware; simulator results are
//      host-independent but still carry the fingerprint as provenance.
#include <cstdint>
#include <string>

namespace am::interfere {

/// Returns x. Defined out-of-line in host_identity.cpp and never inlined.
std::int64_t host_identity(std::int64_t x);

/// Identity of the physical host a measurement ran on. The fields are the
/// stable hardware-shaped facts (not boot-varying ones like frequency
/// governor state), so the fingerprint survives reboots of one machine but
/// distinguishes two different machines.
struct HostIdentity {
  std::string hostname;
  std::string cpu_model;            // e.g. "Intel(R) Xeon(R) CPU E5-2670"
  std::uint32_t logical_cpus = 0;   // online processors
  std::uint64_t total_mem_bytes = 0;

  /// Reads uname/sysconf/proc. Never throws: unreadable fields stay at
  /// their defaults, so the fingerprint is still deterministic per host.
  static HostIdentity detect();

  /// Stable 64-bit digest of the fields above, rendered as 16 lowercase
  /// hex digits. Equal fingerprints = same (or indistinguishable) host.
  std::string fingerprint() const;
};

}  // namespace am::interfere

#include "interfere/host_interference.hpp"

#include <pthread.h>
#include <sched.h>

#include <stdexcept>

#include "common/rng.hpp"
#include "interfere/host_identity.hpp"

namespace am::interfere {

HostInterferenceThread::~HostInterferenceThread() { stop(); }

void HostInterferenceThread::start(int cpu) {
  if (thread_.joinable())
    throw std::logic_error("interference thread already running");
  stop_.store(false, std::memory_order_relaxed);
  cpu_ = cpu;
  thread_ = std::thread([this] {
    if (cpu_ >= 0) {
      cpu_set_t set;
      CPU_ZERO(&set);
      CPU_SET(cpu_, &set);
      // Best effort: pinning may be disallowed in containers.
      (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
    }
    run();
  });
}

void HostInterferenceThread::stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
}

HostBWThr::HostBWThr(std::uint64_t buffer_bytes, std::uint32_t num_buffers) {
  if (buffer_bytes < sizeof(long long) || num_buffers == 0)
    throw std::invalid_argument("HostBWThr: degenerate geometry");
  buffers_.resize(num_buffers);
  for (auto& buf : buffers_)
    buf.assign(buffer_bytes / sizeof(long long), 0);
}

std::uint64_t HostBWThr::footprint_bytes() const {
  std::uint64_t total = 0;
  for (const auto& buf : buffers_) total += buf.size() * sizeof(long long);
  return total;
}

void HostBWThr::run() {
  // Paper Fig. 2 with the published constants: a large prime stride whose
  // index computation is opaque to the compiler.
  constexpr std::int64_t kLargePrime = 2654435761;
  const std::int64_t n = static_cast<std::int64_t>(buffers_[0].size());
  for (std::int64_t i = 0; !stop_requested(); ++i) {
    const std::int64_t idx = host_identity(kLargePrime * i) % n;
    for (auto& buf : buffers_) ++buf[static_cast<std::size_t>(idx)];
    iterations_.fetch_add(1, std::memory_order_relaxed);
  }
}

HostCSThr::HostCSThr(std::uint64_t buffer_bytes, std::uint64_t seed)
    : seed_(seed) {
  if (buffer_bytes < sizeof(int))
    throw std::invalid_argument("HostCSThr: degenerate geometry");
  buffer_.assign(buffer_bytes / sizeof(int), 0);
}

void HostCSThr::run() {
  Rng rng(seed_);
  const std::uint64_t n = buffer_.size();
  // Check the stop flag every 1024 touches so the hot loop stays tight.
  while (!stop_requested()) {
    for (int k = 0; k < 1024; ++k)
      ++buffer_[static_cast<std::size_t>(rng.bounded(n))];
    iterations_.fetch_add(1024, std::memory_order_relaxed);
  }
}

}  // namespace am::interfere

#pragma once
// Host-native interference threads: the code paths a user runs on a *real*
// Linux machine to actively measure an application, exactly following the
// paper's Fig. 2 (BWThr) and Fig. 3 (CSThr) pseudo-code. Each thread can be
// pinned to a core so that, as in the paper, interference is confined to
// the shared levels of the hierarchy.
#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace am::interfere {

/// Base: lifecycle + iteration accounting shared by both thread kinds.
class HostInterferenceThread {
 public:
  virtual ~HostInterferenceThread();

  HostInterferenceThread(const HostInterferenceThread&) = delete;
  HostInterferenceThread& operator=(const HostInterferenceThread&) = delete;

  /// Starts the worker. `cpu` >= 0 pins it via sched_setaffinity; -1 lets
  /// the OS place it.
  void start(int cpu = -1);

  /// Signals the worker and joins it. Safe to call twice.
  void stop();

  bool running() const { return thread_.joinable(); }

  /// Loop iterations completed so far (monotonic, relaxed reads).
  std::uint64_t iterations() const {
    return iterations_.load(std::memory_order_relaxed);
  }

 protected:
  HostInterferenceThread() = default;

  /// The interference loop body; implementations must poll stop_requested()
  /// frequently and bump iterations_.
  virtual void run() = 0;

  bool stop_requested() const {
    return stop_.load(std::memory_order_relaxed);
  }

  std::atomic<std::uint64_t> iterations_{0};

 private:
  std::atomic<bool> stop_{false};
  std::thread thread_;
  int cpu_ = -1;
};

/// Paper Fig. 2: numBufs buffers of long long, each walked with a
/// large-prime stride through an opaque identity call. One iteration =
/// one increment in every buffer.
class HostBWThr final : public HostInterferenceThread {
 public:
  explicit HostBWThr(std::uint64_t buffer_bytes = 520 * 1024,
                     std::uint32_t num_buffers = 44);

  std::uint64_t footprint_bytes() const;

 private:
  void run() override;

  std::vector<std::vector<long long>> buffers_;
};

/// Paper Fig. 3: one int buffer touched at random positions forever.
class HostCSThr final : public HostInterferenceThread {
 public:
  explicit HostCSThr(std::uint64_t buffer_bytes = 4 * 1024 * 1024,
                     std::uint64_t seed = 0x2545F4914F6CDD1Dull);

  std::uint64_t footprint_bytes() const { return buffer_.size() * sizeof(int); }

 private:
  void run() override;

  std::vector<int> buffer_;
  std::uint64_t seed_;
};

/// RAII convenience: a fleet of identical interference threads, started on
/// construction and stopped on destruction. Used by the HostBackend sweep.
template <typename Thread>
class HostInterferenceFleet {
 public:
  /// Builds `count` threads with the given constructor arguments, pinning
  /// them to cpus[i] when provided.
  template <typename... Args>
  HostInterferenceFleet(std::size_t count, const std::vector<int>& cpus,
                        Args&&... args) {
    threads_.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      threads_.push_back(std::make_unique<Thread>(args...));
      threads_.back()->start(i < cpus.size() ? cpus[i] : -1);
    }
  }
  ~HostInterferenceFleet() {
    for (auto& t : threads_) t->stop();
  }

  std::size_t size() const { return threads_.size(); }
  Thread& at(std::size_t i) { return *threads_.at(i); }

 private:
  std::vector<std::unique_ptr<Thread>> threads_;
};

}  // namespace am::interfere

#include "measure/active_measurer.hpp"

#include <stdexcept>

#include "measure/lease.hpp"

namespace am::measure {

model::SensitivityCurve SweepResult::curve() const {
  std::vector<model::SensitivityPoint> pts;
  pts.reserve(points.size());
  for (const auto& p : points)
    pts.push_back({p.resource_available, p.seconds});
  return model::SensitivityCurve(std::move(pts));
}

double SweepResult::slowdown(std::uint32_t k) const {
  if (points.empty()) throw std::logic_error("empty sweep");
  return points.at(k).seconds / points.front().seconds;
}

ActiveMeasurer::ActiveMeasurer(SimBackend& backend,
                               CapacityCalibration capacity,
                               BandwidthCalibration bandwidth)
    : backend_(&backend),
      capacity_(std::move(capacity)),
      bandwidth_(std::move(bandwidth)) {}

void ActiveMeasurer::check_calibration(Resource resource,
                                       std::uint32_t max_threads) const {
  if (resource == Resource::kCacheStorage &&
      max_threads >= capacity_.available_bytes.size())
    throw std::invalid_argument("sweep: capacity calibration too short");
  if (resource == Resource::kBandwidth &&
      max_threads >= bandwidth_.used_bytes_per_sec.size())
    throw std::invalid_argument("sweep: bandwidth calibration too short");
}

double ActiveMeasurer::availability(Resource resource, std::uint32_t k) const {
  return resource == Resource::kCacheStorage ? capacity_.available_bytes.at(k)
                                             : bandwidth_.available(k);
}

SweepResult ActiveMeasurer::assemble(const ResultTable& table,
                                     WorkloadId workload, Resource resource,
                                     std::uint32_t max_threads) const {
  SweepResult out;
  out.resource = resource;
  for (std::uint32_t k = 0; k <= max_threads; ++k) {
    SweepPoint pt;
    pt.threads = k;
    pt.seconds = table.at(workload, resource, k).seconds;
    pt.resource_available = availability(resource, k);
    out.points.push_back(pt);
  }
  return out;
}

SweepResult ActiveMeasurer::sweep(const SimBackend::WorkloadFactory& factory,
                                  Resource resource,
                                  std::uint32_t max_threads,
                                  const interfere::CSThrConfig& cs,
                                  const interfere::BWThrConfig& bw) {
  check_calibration(resource, max_threads);

  ExperimentPlan plan;
  const auto id = plan.add_workload({"sweep", factory});
  plan.add_sweep(id, resource, 0, max_threads);

  SweepRunnerOptions opts;
  opts.seed = backend_->seed();
  opts.mix_seed_per_point = false;  // every level shared the backend's seed
  opts.cs = cs;
  opts.bw = bw;
  const SweepRunner runner(backend_->machine(), opts);
  return assemble(runner.run(plan, pool_), id, resource, max_threads);
}

ExperimentPlan ActiveMeasurer::build_grid(
    const std::vector<GridRequest>& requests,
    std::vector<WorkloadId>& ids) const {
  ExperimentPlan plan;
  for (const auto& req : requests) {
    check_calibration(Resource::kCacheStorage, req.storage_threads);
    check_calibration(Resource::kBandwidth, req.bandwidth_threads);
    const auto id = plan.add_workload({req.name, req.factory});
    plan.add_sweep(id, Resource::kCacheStorage, 0, req.storage_threads);
    plan.add_sweep(id, Resource::kBandwidth, 0, req.bandwidth_threads);
    ids.push_back(id);
  }
  return plan;
}

SweepRunner ActiveMeasurer::grid_runner(
    const interfere::CSThrConfig& cs, const interfere::BWThrConfig& bw) const {
  SweepRunnerOptions opts;
  opts.seed = backend_->seed();
  opts.mix_seed_per_point = false;  // sweeps stay comparable level-to-level
  opts.cs = cs;
  opts.bw = bw;
  opts.checkpoint = checkpoint_;
  return SweepRunner(backend_->machine(), opts);
}

std::vector<GridSweeps> ActiveMeasurer::sweep_grid(
    const std::vector<GridRequest>& requests,
    const interfere::CSThrConfig& cs, const interfere::BWThrConfig& bw) {
  std::vector<WorkloadId> ids;
  const ExperimentPlan plan = build_grid(requests, ids);
  last_planned_ = plan.size();
  const ResultTable table = grid_runner(cs, bw).run(plan, pool_, store_,
                                                    ShardRange{},
                                                    &last_executed_);

  std::vector<GridSweeps> out;
  for (std::size_t i = 0; i < requests.size(); ++i)
    out.push_back({assemble(table, ids[i], Resource::kCacheStorage,
                            requests[i].storage_threads),
                   assemble(table, ids[i], Resource::kBandwidth,
                            requests[i].bandwidth_threads)});
  return out;
}

std::size_t ActiveMeasurer::sweep_grid_shard(
    const std::vector<GridRequest>& requests, ShardRange shard,
    const interfere::CSThrConfig& cs, const interfere::BWThrConfig& bw) {
  if (store_ == nullptr)
    throw std::logic_error(
        "sweep_grid_shard: a result store must be set — a shard's only "
        "output is the records it persists");
  std::vector<WorkloadId> ids;
  const ExperimentPlan plan = build_grid(requests, ids);
  last_planned_ = plan.shard(shard.index, shard.count).size();
  grid_runner(cs, bw).run(plan, pool_, store_, shard, &last_executed_);
  return last_executed_;
}

std::size_t ActiveMeasurer::sweep_grid_lease(
    const std::vector<GridRequest>& requests, ResultStoreFile& store,
    const std::string& lease_path, std::ostream& out,
    const interfere::CSThrConfig& cs, const interfere::BWThrConfig& bw) {
  if (store_ == nullptr || store.store() != store_)
    throw std::logic_error(
        "sweep_grid_lease: set_store must point at the lease-bound store "
        "file — leased results only exist as its records");
  std::vector<WorkloadId> ids;
  const ExperimentPlan plan = build_grid(requests, ids);
  const auto report = run_lease_worker(plan, grid_runner(cs, bw), pool_,
                                       store, lease_path, out);
  last_planned_ = report.points;
  last_executed_ = report.executed;
  return last_executed_;
}

void ActiveMeasurer::sweep_grid_emit_plan(
    const std::vector<GridRequest>& requests, const std::string& path,
    const interfere::CSThrConfig& cs, const interfere::BWThrConfig& bw) {
  std::vector<WorkloadId> ids;
  const ExperimentPlan plan = build_grid(requests, ids);
  emit_plan_info(plan, grid_runner(cs, bw), store_, path);
}

ResourceBounds ActiveMeasurer::bounds(const SweepResult& sweep,
                                      std::uint32_t processes_per_socket,
                                      double tolerance) {
  if (sweep.points.empty())
    throw std::invalid_argument("bounds: empty sweep");
  if (processes_per_socket == 0)
    throw std::invalid_argument("bounds: zero processes");
  const double baseline = sweep.points.front().seconds;
  const double limit = baseline * (1.0 + tolerance);

  ResourceBounds out;
  // The paper: among the non-degraded experiments pick the most interfered
  // one (upper bound on availability the app fits in), and among degraded
  // ones the least interfered (the app needs more than that availability).
  double best_ok = sweep.points.front().resource_available;
  bool any_degraded = false;
  double first_degraded_avail = 0.0;
  for (const auto& p : sweep.points) {
    if (p.seconds <= limit) {
      if (!any_degraded) best_ok = p.resource_available;
    } else if (!any_degraded) {
      any_degraded = true;
      first_degraded_avail = p.resource_available;
    }
  }
  const double denom = static_cast<double>(processes_per_socket);
  out.degraded_at_any_level = any_degraded;
  out.fits_at_all_levels = !any_degraded;
  out.upper = best_ok / denom;
  out.lower = any_degraded ? first_degraded_avail / denom : 0.0;
  return out;
}

}  // namespace am::measure

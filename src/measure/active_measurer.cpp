#include "measure/active_measurer.hpp"

#include <stdexcept>

namespace am::measure {

model::SensitivityCurve SweepResult::curve() const {
  std::vector<model::SensitivityPoint> pts;
  pts.reserve(points.size());
  for (const auto& p : points)
    pts.push_back({p.resource_available, p.seconds});
  return model::SensitivityCurve(std::move(pts));
}

double SweepResult::slowdown(std::uint32_t k) const {
  if (points.empty()) throw std::logic_error("empty sweep");
  return points.at(k).seconds / points.front().seconds;
}

ActiveMeasurer::ActiveMeasurer(SimBackend& backend,
                               CapacityCalibration capacity,
                               BandwidthCalibration bandwidth)
    : backend_(&backend),
      capacity_(std::move(capacity)),
      bandwidth_(std::move(bandwidth)) {}

SweepResult ActiveMeasurer::sweep(const SimBackend::WorkloadFactory& factory,
                                  Resource resource,
                                  std::uint32_t max_threads,
                                  const interfere::CSThrConfig& cs,
                                  const interfere::BWThrConfig& bw) {
  const auto& avail_table = resource == Resource::kCacheStorage
                                ? capacity_.available_bytes
                                : std::vector<double>{};
  if (resource == Resource::kCacheStorage &&
      max_threads >= capacity_.available_bytes.size())
    throw std::invalid_argument("sweep: capacity calibration too short");
  if (resource == Resource::kBandwidth &&
      max_threads >= bandwidth_.used_bytes_per_sec.size())
    throw std::invalid_argument("sweep: bandwidth calibration too short");
  (void)avail_table;

  SweepResult out;
  out.resource = resource;
  for (std::uint32_t k = 0; k <= max_threads; ++k) {
    InterferenceSpec spec = resource == Resource::kCacheStorage
                                ? InterferenceSpec::storage(k, cs)
                                : InterferenceSpec::bandwidth(k, bw);
    const SimRunResult run = backend_->run(factory, spec);
    SweepPoint pt;
    pt.threads = k;
    pt.seconds = run.seconds;
    pt.resource_available = resource == Resource::kCacheStorage
                                ? capacity_.available_bytes.at(k)
                                : bandwidth_.available(k);
    out.points.push_back(pt);
  }
  return out;
}

ResourceBounds ActiveMeasurer::bounds(const SweepResult& sweep,
                                      std::uint32_t processes_per_socket,
                                      double tolerance) {
  if (sweep.points.empty())
    throw std::invalid_argument("bounds: empty sweep");
  if (processes_per_socket == 0)
    throw std::invalid_argument("bounds: zero processes");
  const double baseline = sweep.points.front().seconds;
  const double limit = baseline * (1.0 + tolerance);

  ResourceBounds out;
  // The paper: among the non-degraded experiments pick the most interfered
  // one (upper bound on availability the app fits in), and among degraded
  // ones the least interfered (the app needs more than that availability).
  double best_ok = sweep.points.front().resource_available;
  bool any_degraded = false;
  double first_degraded_avail = 0.0;
  for (const auto& p : sweep.points) {
    if (p.seconds <= limit) {
      if (!any_degraded) best_ok = p.resource_available;
    } else if (!any_degraded) {
      any_degraded = true;
      first_degraded_avail = p.resource_available;
    }
  }
  const double denom = static_cast<double>(processes_per_socket);
  out.degraded_at_any_level = any_degraded;
  out.fits_at_all_levels = !any_degraded;
  out.upper = best_ok / denom;
  out.lower = any_degraded ? first_degraded_avail / denom : 0.0;
  return out;
}

}  // namespace am::measure

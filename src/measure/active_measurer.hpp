#pragma once
// The Active Measurement methodology itself (paper Fig. 1): sweep the
// interference level from zero upward, watch for the onset of performance
// degradation, and convert the sweep into (a) a sensitivity curve usable
// for prediction on less-capable memory systems and (b) bounds on the
// amount of resource each application process actively uses (§IV).
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "measure/calibration.hpp"
#include "measure/experiment_plan.hpp"
#include "measure/sim_backend.hpp"
#include "model/predictor.hpp"

namespace am::measure {

struct SweepPoint {
  std::uint32_t threads = 0;        // interference threads per socket
  double seconds = 0.0;             // application runtime
  double resource_available = 0.0;  // bytes or bytes/s left per socket
};

struct SweepResult {
  Resource resource = Resource::kCacheStorage;
  std::vector<SweepPoint> points;

  /// Sensitivity curve over resource availability (for prediction).
  model::SensitivityCurve curve() const;

  /// Slowdown of point k relative to the uninterfered run.
  double slowdown(std::uint32_t k) const;
};

/// Paper §IV resource-use bounds: the application's per-process use lies
/// above what was available at the first degraded level and at or below
/// what was available at the last non-degraded level.
struct ResourceBounds {
  double lower = 0.0;  // per process
  double upper = 0.0;  // per process
  bool degraded_at_any_level = false;
  bool fits_at_all_levels = false;  // never degraded: only an upper bound
};

/// One entry of a sweep_grid request: a workload swept against both
/// interference resources (either sweep may be empty).
struct GridRequest {
  SimBackend::WorkloadFactory factory;
  std::string name;
  std::uint32_t storage_threads = 0;    // sweep 0..storage_threads CSThrs
  std::uint32_t bandwidth_threads = 0;  // sweep 0..bandwidth_threads BWThrs
};

/// Both sweeps of one GridRequest; they share a single baseline run.
struct GridSweeps {
  SweepResult storage;
  SweepResult bandwidth;
};

class ActiveMeasurer {
 public:
  /// The calibrations translate thread counts into resource availability.
  ActiveMeasurer(SimBackend& backend, CapacityCalibration capacity,
                 BandwidthCalibration bandwidth);

  /// Experiments run over this pool from now on (nullptr = serially).
  /// Results never depend on the pool: each experiment's seed is a function
  /// of its position in the plan, not of scheduling.
  void set_pool(ThreadPool* pool) { pool_ = pool; }

  /// Result cache consulted and filled by sweep_grid from now on (nullptr
  /// = always recompute). Persisting the store between invocations makes
  /// re-running an unchanged grid free; the caller owns save/load.
  /// `checkpoint` (e.g. ResultStoreFile::checkpointer) is invoked after
  /// every freshly executed point, so a killed process keeps its finished
  /// runs on disk.
  void set_store(ResultStore* store,
                 std::function<void(const ResultStore&)> checkpoint = {}) {
    store_ = store;
    checkpoint_ = std::move(checkpoint);
  }

  /// Engine runs actually executed by the most recent sweep_grid /
  /// sweep_grid_shard call (cache hits excluded), and the number of grid
  /// points that call was responsible for (its shard of the plan). The
  /// difference is the cache hits.
  std::size_t last_executed() const { return last_executed_; }
  std::size_t last_planned() const { return last_planned_; }

  /// Runs the workload with 0..max_threads interference threads per socket.
  /// Delegates to SweepRunner; every level reuses the backend's seed, so
  /// the result is bit-identical to the historical serial loop.
  SweepResult sweep(const SimBackend::WorkloadFactory& factory,
                    Resource resource, std::uint32_t max_threads,
                    const interfere::CSThrConfig& cs = {},
                    const interfere::BWThrConfig& bw = {});

  /// Executes several workloads' storage and bandwidth sweeps as one
  /// ExperimentPlan: one shared baseline per workload (instead of one per
  /// sweep) and one pool barrier for the whole grid.
  std::vector<GridSweeps> sweep_grid(const std::vector<GridRequest>& requests,
                                     const interfere::CSThrConfig& cs = {},
                                     const interfere::BWThrConfig& bw = {});

  /// Runs only `shard` of the grid's plan into the configured store (which
  /// must be set) and returns the number of engine runs executed. No
  /// sweeps are assembled — a sharded table is partial by construction;
  /// merge the shard stores (amresult) and re-run sweep_grid against the
  /// merged store to assemble the full grid with zero engine runs.
  std::size_t sweep_grid_shard(const std::vector<GridRequest>& requests,
                               ShardRange shard,
                               const interfere::CSThrConfig& cs = {},
                               const interfere::BWThrConfig& bw = {});

  /// Lease-worker counterpart of sweep_grid_shard: loop pulling leased
  /// point batches of the grid's plan through `store` (which must be the
  /// lease-bound ResultStoreFile whose ResultStore was passed to
  /// set_store) until the scheduler drains the queue; progress lines go
  /// to `out`. Returns total engine runs executed. See
  /// measure::run_lease_worker for the protocol.
  std::size_t sweep_grid_lease(const std::vector<GridRequest>& requests,
                               ResultStoreFile& store,
                               const std::string& lease_path,
                               std::ostream& out,
                               const interfere::CSThrConfig& cs = {},
                               const interfere::BWThrConfig& bw = {});

  /// Scheduler-probe counterpart (`--emit-plan`): writes the grid plan's
  /// size and per-point cost estimates (measured run times from the
  /// configured store when present, heuristic otherwise) to `path`.
  void sweep_grid_emit_plan(const std::vector<GridRequest>& requests,
                            const std::string& path,
                            const interfere::CSThrConfig& cs = {},
                            const interfere::BWThrConfig& bw = {});

  /// Derives per-process bounds from a sweep, given how many application
  /// processes share each socket. `tolerance` is the degradation threshold
  /// (the paper treats ~5% as the noise floor).
  static ResourceBounds bounds(const SweepResult& sweep,
                               std::uint32_t processes_per_socket,
                               double tolerance = 0.05);

  const CapacityCalibration& capacity() const { return capacity_; }
  const BandwidthCalibration& bandwidth() const { return bandwidth_; }

 private:
  void check_calibration(Resource resource, std::uint32_t max_threads) const;
  double availability(Resource resource, std::uint32_t k) const;
  SweepResult assemble(const ResultTable& table, WorkloadId workload,
                       Resource resource, std::uint32_t max_threads) const;
  ExperimentPlan build_grid(const std::vector<GridRequest>& requests,
                            std::vector<WorkloadId>& ids) const;
  SweepRunner grid_runner(const interfere::CSThrConfig& cs,
                          const interfere::BWThrConfig& bw) const;

  SimBackend* backend_;
  CapacityCalibration capacity_;
  BandwidthCalibration bandwidth_;
  ThreadPool* pool_ = nullptr;
  ResultStore* store_ = nullptr;
  std::function<void(const ResultStore&)> checkpoint_;
  std::size_t last_executed_ = 0;
  std::size_t last_planned_ = 0;
};

}  // namespace am::measure

#pragma once
// The Active Measurement methodology itself (paper Fig. 1): sweep the
// interference level from zero upward, watch for the onset of performance
// degradation, and convert the sweep into (a) a sensitivity curve usable
// for prediction on less-capable memory systems and (b) bounds on the
// amount of resource each application process actively uses (§IV).
#include <cstdint>
#include <vector>

#include "measure/calibration.hpp"
#include "measure/sim_backend.hpp"
#include "model/predictor.hpp"

namespace am::measure {

struct SweepPoint {
  std::uint32_t threads = 0;        // interference threads per socket
  double seconds = 0.0;             // application runtime
  double resource_available = 0.0;  // bytes or bytes/s left per socket
};

struct SweepResult {
  Resource resource = Resource::kCacheStorage;
  std::vector<SweepPoint> points;

  /// Sensitivity curve over resource availability (for prediction).
  model::SensitivityCurve curve() const;

  /// Slowdown of point k relative to the uninterfered run.
  double slowdown(std::uint32_t k) const;
};

/// Paper §IV resource-use bounds: the application's per-process use lies
/// above what was available at the first degraded level and at or below
/// what was available at the last non-degraded level.
struct ResourceBounds {
  double lower = 0.0;  // per process
  double upper = 0.0;  // per process
  bool degraded_at_any_level = false;
  bool fits_at_all_levels = false;  // never degraded: only an upper bound
};

class ActiveMeasurer {
 public:
  /// The calibrations translate thread counts into resource availability.
  ActiveMeasurer(SimBackend& backend, CapacityCalibration capacity,
                 BandwidthCalibration bandwidth);

  /// Runs the workload with 0..max_threads interference threads per socket.
  SweepResult sweep(const SimBackend::WorkloadFactory& factory,
                    Resource resource, std::uint32_t max_threads,
                    const interfere::CSThrConfig& cs = {},
                    const interfere::BWThrConfig& bw = {});

  /// Derives per-process bounds from a sweep, given how many application
  /// processes share each socket. `tolerance` is the degradation threshold
  /// (the paper treats ~5% as the noise floor).
  static ResourceBounds bounds(const SweepResult& sweep,
                               std::uint32_t processes_per_socket,
                               double tolerance = 0.05);

  const CapacityCalibration& capacity() const { return capacity_; }
  const BandwidthCalibration& bandwidth() const { return bandwidth_; }

 private:
  SimBackend* backend_;
  CapacityCalibration capacity_;
  BandwidthCalibration bandwidth_;
};

}  // namespace am::measure

#include "measure/app_workloads.hpp"

#include <memory>

#include "minimpi/communicator.hpp"
#include "minimpi/mapping.hpp"

namespace am::measure {

namespace {

template <typename AgentT, typename ConfigT>
SimBackend::WorkloadFactory make_mpi_workload(std::uint32_t ranks,
                                              std::uint32_t per_socket,
                                              ConfigT config) {
  return [=](sim::Engine& engine) {
    auto mapping = std::make_shared<minimpi::Mapping>(engine.config(), ranks,
                                                      per_socket);
    auto comm = std::make_shared<minimpi::Communicator>(engine, *mapping);
    engine.own(mapping);
    engine.own(comm);
    WorkloadInfo info;
    for (std::uint32_t r = 0; r < ranks; ++r) {
      const auto idx = engine.add_agent(
          std::make_unique<AgentT>(engine, *comm, *mapping, r, config),
          mapping->placement(r).core, /*primary=*/true);
      info.primary_agents.push_back(idx);
    }
    for (const auto socket : mapping->used_sockets())
      info.interference_cores.push_back(mapping->free_cores(socket));
    return info;
  };
}

}  // namespace

SimBackend::WorkloadFactory make_mcb_workload(std::uint32_t ranks,
                                              std::uint32_t per_socket,
                                              apps::McbConfig config) {
  return make_mpi_workload<apps::McbProxyAgent>(ranks, per_socket, config);
}

SimBackend::WorkloadFactory make_lulesh_workload(std::uint32_t ranks,
                                                 std::uint32_t per_socket,
                                                 apps::LuleshConfig config) {
  return make_mpi_workload<apps::LuleshProxyAgent>(ranks, per_socket, config);
}

SimBackend::WorkloadFactory make_synthetic_workload(
    apps::SyntheticConfig config) {
  return [config](sim::Engine& engine) {
    WorkloadInfo info;
    auto agent = std::make_unique<apps::SyntheticBenchmarkAgent>(
        engine.memory(), config);
    const auto* raw = agent.get();
    info.measure_start = [raw](const sim::Engine&) {
      return raw->measure_start_cycle();
    };
    info.primary_agents.push_back(engine.add_agent(
        std::move(agent),
        /*core=*/0, /*primary=*/true));
    std::vector<sim::CoreId> free;
    for (sim::CoreId c = 1; c < engine.config().cores_per_socket; ++c)
      free.push_back(c);
    info.interference_cores.push_back(std::move(free));
    return info;
  };
}

}  // namespace am::measure

#pragma once
// Ready-made workload factories wiring the application proxies into the
// SimBackend: they build the rank mapping, the communicator and one agent
// per rank, and report each used socket's free cores as interference slots
// — exactly the experimental setup of the paper's §IV.
#include <cstdint>

#include "apps/lulesh_proxy.hpp"
#include "apps/mcb_proxy.hpp"
#include "apps/synthetic_benchmark.hpp"
#include "measure/sim_backend.hpp"

namespace am::measure {

/// MCB with `ranks` ranks, `per_socket` processes per processor.
SimBackend::WorkloadFactory make_mcb_workload(std::uint32_t ranks,
                                              std::uint32_t per_socket,
                                              apps::McbConfig config);

/// Lulesh with `ranks` ranks (must be cubic), `per_socket` per processor.
SimBackend::WorkloadFactory make_lulesh_workload(std::uint32_t ranks,
                                                 std::uint32_t per_socket,
                                                 apps::LuleshConfig config);

/// One synthetic probabilistic benchmark on core 0 of socket 0; the rest
/// of the socket is offered for interference.
SimBackend::WorkloadFactory make_synthetic_workload(
    apps::SyntheticConfig config);

}  // namespace am::measure

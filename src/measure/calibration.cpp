#include "measure/calibration.hpp"

#include <memory>
#include <stdexcept>

#include "apps/stream_probe.hpp"
#include "apps/synthetic_benchmark.hpp"
#include "common/stats.hpp"
#include "model/ehr_model.hpp"
#include "sim/engine.hpp"

namespace am::measure {

namespace {

/// Timer primary used when only interference threads should run.
class TimerAgent final : public sim::Agent {
 public:
  explicit TimerAgent(sim::Cycles duration)
      : sim::Agent("timer"), left_(duration) {}
  void step(sim::AgentContext& ctx) override {
    const sim::Cycles chunk = std::min<sim::Cycles>(left_, 10'000);
    ctx.compute(chunk);
    left_ -= chunk;
  }
  bool finished() const override { return left_ == 0; }

 private:
  sim::Cycles left_;
};

}  // namespace

CapacityCalibration calibrate_capacity(const sim::MachineConfig& machine,
                                       const interfere::CSThrConfig& cs,
                                       const CalibrationOptions& opts) {
  // The probe occupies core 0 and the k-th CSThr core 1+k; without this
  // guard the extra agents would silently land on the next socket and
  // calibrate availability against interference that never shares the L3.
  if (opts.max_threads + 1 > machine.cores_per_socket)
    throw std::invalid_argument("calibrate_capacity: too many threads");
  CapacityCalibration out;
  for (std::uint32_t k = 0; k <= opts.max_threads; ++k) {
    RunningStats estimate;
    for (const double ratio : opts.buffer_to_l3_ratios) {
      const auto elements = static_cast<std::uint64_t>(
          ratio * static_cast<double>(machine.l3.size_bytes) / 4);
      for (const std::size_t dist_idx : opts.probe_distributions) {
        const auto dist =
            model::AccessDistribution::table2(elements).at(dist_idx);
        sim::Engine engine(machine, opts.seed);
        apps::SyntheticConfig cfg{dist, 4, /*compute_ops=*/1,
                                  /*warmup=*/elements * 2,
                                  opts.accesses_per_probe};
        auto bench = std::make_unique<apps::SyntheticBenchmarkAgent>(
            engine.memory(), cfg);
        const auto bench_idx = engine.add_agent(std::move(bench), 0);
        for (std::uint32_t i = 0; i < k; ++i)
          engine.add_agent(std::make_unique<interfere::CSThrAgent>(
                               engine.memory(), cs),
                           1 + i, /*primary=*/false);
        engine.run();
        const double miss = engine.agent_counters(bench_idx).l3_miss_rate();
        const model::EhrModel ehr(dist, 4);
        estimate.add(ehr.invert_capacity(miss));
      }
    }
    out.available_bytes.push_back(estimate.mean());
    out.stddev_bytes.push_back(estimate.stddev());
  }
  return out;
}

BandwidthCalibration calibrate_bandwidth(const sim::MachineConfig& machine,
                                         const interfere::BWThrConfig& bw,
                                         std::uint32_t max_threads,
                                         std::uint64_t seed) {
  if (max_threads + 1 > machine.cores_per_socket)
    throw std::invalid_argument("calibrate_bandwidth: too many threads");
  BandwidthCalibration out;
  {
    // Peak: STREAM-style probe alone on the socket.
    sim::Engine engine(machine, seed);
    apps::StreamProbeConfig cfg;
    cfg.array_bytes = machine.l3.size_bytes * 2;
    auto probe =
        std::make_unique<apps::StreamProbeAgent>(engine.memory(), cfg);
    engine.add_agent(std::move(probe), 0);
    const sim::Cycles end = engine.run();
    out.peak_bytes_per_sec =
        static_cast<double>(engine.memory().mem_backend(0).total_bytes()) /
        machine.cycles_to_seconds(end);
  }
  const sim::Cycles window = 20'000'000;
  for (std::uint32_t k = 0; k <= max_threads; ++k) {
    sim::Engine engine(machine, seed);
    engine.add_agent(std::make_unique<TimerAgent>(window), 0);
    for (std::uint32_t i = 0; i < k; ++i)
      engine.add_agent(
          std::make_unique<interfere::BWThrAgent>(engine.memory(), bw),
          1 + i, /*primary=*/false);
    const sim::Cycles end = engine.run();
    const double used =
        static_cast<double>(engine.memory().mem_backend(0).total_bytes()) /
        machine.cycles_to_seconds(end);
    out.used_bytes_per_sec.push_back(used);
  }
  return out;
}

}  // namespace am::measure

#pragma once
// Calibration of the interference threads, i.e. the paper's Section III:
// how much cache capacity do k CSThrs effectively deny (via the inverted
// EHR model over synthetic benchmarks, §III-C3), and how much bandwidth do
// k BWThrs consume (via miss counters, §III-A). The resulting tables map
// "k interference threads" to "resource left for the application", which
// is what turns a degradation sweep into resource-use bounds.
#include <cstdint>
#include <vector>

#include "interfere/bwthr_agent.hpp"
#include "interfere/csthr_agent.hpp"
#include "sim/machine.hpp"

namespace am::measure {

struct CapacityCalibration {
  /// available_bytes[k]: effective cache capacity with k CSThrs running.
  std::vector<double> available_bytes;
  /// Dispersion of the estimate across probe distributions.
  std::vector<double> stddev_bytes;
};

struct BandwidthCalibration {
  /// Peak socket bandwidth (STREAM-style probe), bytes/s.
  double peak_bytes_per_sec = 0.0;
  /// used_bytes_per_sec[k]: bandwidth consumed by k BWThrs alone.
  std::vector<double> used_bytes_per_sec;
  /// available[k] = peak - used[k].
  double available(std::uint32_t k) const {
    return peak_bytes_per_sec - used_bytes_per_sec.at(k);
  }
};

struct CalibrationOptions {
  std::uint32_t max_threads = 5;
  /// Probe-benchmark buffer sizes as multiples of the L3 capacity
  /// (the paper uses 1.5x..3.7x).
  std::vector<double> buffer_to_l3_ratios{2.0, 3.0};
  /// Indices into AccessDistribution::table2 used as probes. Defaults to
  /// Exp_6 and Uni: one concentrated, one flat.
  std::vector<std::size_t> probe_distributions{4, 9};
  std::uint64_t accesses_per_probe = 400'000;
  std::uint64_t seed = 1;
};

/// Fig. 6 procedure: run probe benchmarks against k CSThrs, measure L3
/// miss rates, invert Eq. 4 into effective capacity, average over probes.
CapacityCalibration calibrate_capacity(const sim::MachineConfig& machine,
                                       const interfere::CSThrConfig& cs,
                                       const CalibrationOptions& opts = {});

/// §III-A procedure: measure the bandwidth k BWThrs draw on an otherwise
/// idle socket, and the STREAM-style peak.
BandwidthCalibration calibrate_bandwidth(const sim::MachineConfig& machine,
                                         const interfere::BWThrConfig& bw,
                                         std::uint32_t max_threads,
                                         std::uint64_t seed = 1);

}  // namespace am::measure

#include "measure/coschedule.hpp"

#include <algorithm>
#include <stdexcept>

namespace am::measure {

AppProfile AppProfile::from_sweeps(std::string name,
                                   const SweepResult& capacity,
                                   const SweepResult& bandwidth,
                                   std::uint32_t processes_per_socket,
                                   double tolerance) {
  if (capacity.resource != Resource::kCacheStorage ||
      bandwidth.resource != Resource::kBandwidth)
    throw std::invalid_argument("from_sweeps: sweeps of the wrong resources");
  AppProfile p;
  p.name = std::move(name);
  p.capacity =
      ActiveMeasurer::bounds(capacity, processes_per_socket, tolerance);
  p.bandwidth =
      ActiveMeasurer::bounds(bandwidth, processes_per_socket, tolerance);
  p.capacity_curve = capacity.curve();
  p.bandwidth_curve = bandwidth.curve();
  return p;
}

CoScheduleAdvisor::CoScheduleAdvisor(double socket_capacity,
                                     double socket_bandwidth)
    : socket_capacity_(socket_capacity), socket_bandwidth_(socket_bandwidth) {
  if (socket_capacity <= 0.0 || socket_bandwidth <= 0.0)
    throw std::invalid_argument("CoScheduleAdvisor: non-positive resources");
}

namespace {

/// Splits a resource between two demands; proportional under pressure.
void split(double total, double use_a, double use_b, double& got_a,
           double& got_b, bool& oversubscribed) {
  // Unmeasured (never-degraded) use registers as its upper bound; zero
  // upper bounds get a nominal sliver so the split stays defined.
  use_a = std::max(use_a, total * 0.01);
  use_b = std::max(use_b, total * 0.01);
  const double demand = use_a + use_b;
  oversubscribed = demand > total;
  if (!oversubscribed) {
    // Each side keeps what it needs; spare capacity is split evenly (it
    // does not change predictions, which clamp at the curves' ends).
    got_a = use_a + (total - demand) / 2.0;
    got_b = use_b + (total - demand) / 2.0;
  } else {
    got_a = total * use_a / demand;
    got_b = total * use_b / demand;
  }
}

double price(const std::optional<model::SensitivityCurve>& curve,
             double available) {
  return curve ? curve->predict_slowdown(available) : 1.0;
}

}  // namespace

CoScheduleVerdict CoScheduleAdvisor::advise(const AppProfile& a,
                                            const AppProfile& b) const {
  CoScheduleVerdict v;
  split(socket_capacity_, a.capacity.upper, b.capacity.upper, v.capacity_a,
        v.capacity_b, v.capacity_oversubscribed);
  split(socket_bandwidth_, a.bandwidth.upper, b.bandwidth.upper,
        v.bandwidth_a, v.bandwidth_b, v.bandwidth_oversubscribed);
  // An application pays the worse of its two shortfalls: capacity misses
  // and bandwidth queueing compound, but the measured curves already fold
  // second-order effects in, so the max is the robust combination.
  v.slowdown_a = std::max(price(a.capacity_curve, v.capacity_a),
                          price(a.bandwidth_curve, v.bandwidth_a));
  v.slowdown_b = std::max(price(b.capacity_curve, v.capacity_b),
                          price(b.bandwidth_curve, v.bandwidth_b));
  return v;
}

}  // namespace am::measure

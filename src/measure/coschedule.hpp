#pragma once
// Co-scheduling advisor — the paper's motivating application of Active
// Measurement ("enabling more intelligent work scheduling"): once two
// applications' resource profiles are known, predict the cost of placing
// them on the same socket *without ever co-running them*, by combining
// each one's measured sensitivity curve with the other's measured use.
//
// Contract:
//
//   * Profiles come from isolation: an AppProfile is built purely from
//     the application's own interference sweeps (AppProfile::from_sweeps);
//     advise() never runs anything — it only intersects two profiles with
//     the socket's capacity/bandwidth budget.
//   * Predictions are conservative by construction: sensitivity curves
//     were measured against CSThr/BWThr interference, which denies
//     resources more aggressively than a co-running application with its
//     own locality. A "safe" verdict is trustworthy; an "unsafe" one errs
//     toward caution.
//   * Oversubscription is explicit: when combined demand exceeds the
//     socket, each side is assigned its proportional share and the curves
//     price the shortfall — the verdict records the oversubscription flags
//     rather than hiding them inside the slowdown numbers.
#include <optional>
#include <string>

#include "measure/active_measurer.hpp"

namespace am::measure {

/// A measured application profile: what it uses, and how it degrades.
struct AppProfile {
  std::string name;
  /// Per-process shared-cache use bounds (bytes), from §IV.
  ResourceBounds capacity;
  /// Per-process memory-bandwidth use bounds (bytes/s), from §IV.
  ResourceBounds bandwidth;
  /// Runtime vs available capacity (bytes).
  std::optional<model::SensitivityCurve> capacity_curve;
  /// Runtime vs available bandwidth (bytes/s).
  std::optional<model::SensitivityCurve> bandwidth_curve;

  /// Builds a profile from two interference sweeps.
  static AppProfile from_sweeps(std::string name, const SweepResult& capacity,
                                const SweepResult& bandwidth,
                                std::uint32_t processes_per_socket,
                                double tolerance = 0.05);
};

/// Verdict for co-locating two applications on one socket.
struct CoScheduleVerdict {
  /// Predicted slowdown of each application (>= 1).
  double slowdown_a = 1.0;
  double slowdown_b = 1.0;
  /// Capacity/bandwidth each application is expected to retain.
  double capacity_a = 0.0, capacity_b = 0.0;
  double bandwidth_a = 0.0, bandwidth_b = 0.0;
  bool capacity_oversubscribed = false;
  bool bandwidth_oversubscribed = false;

  double worst_slowdown() const {
    return slowdown_a > slowdown_b ? slowdown_a : slowdown_b;
  }
  /// "Safe" = neither app is predicted to degrade beyond `tolerance`.
  bool safe(double tolerance = 0.05) const {
    return worst_slowdown() <= 1.0 + tolerance;
  }
};

class CoScheduleAdvisor {
 public:
  /// socket_capacity: shared-cache bytes; socket_bandwidth: bytes/s.
  CoScheduleAdvisor(double socket_capacity, double socket_bandwidth);

  /// Predicts the outcome of co-locating `a` and `b`. Resources are split
  /// proportionally to each application's measured upper-bound use; when
  /// the combined demand exceeds the socket, each side receives its
  /// proportional share and the sensitivity curves price the shortfall.
  CoScheduleVerdict advise(const AppProfile& a, const AppProfile& b) const;

  double socket_capacity() const { return socket_capacity_; }
  double socket_bandwidth() const { return socket_bandwidth_; }

 private:
  double socket_capacity_;
  double socket_bandwidth_;
};

}  // namespace am::measure

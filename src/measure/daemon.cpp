#include "measure/daemon.hpp"

#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <ostream>
#include <sstream>
#include <thread>

#include "common/atomic_file.hpp"
#include "common/heartbeat.hpp"
#include "common/subprocess.hpp"
#include "common/work_lease.hpp"
#include "interfere/host_identity.hpp"

namespace am::measure {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::string fmt_seconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", s);
  return buf;
}

bool parse_u64_str(const std::string& s, std::uint64_t& out) {
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos)
    return false;
  errno = 0;
  out = std::strtoull(s.c_str(), nullptr, 10);
  return errno != ERANGE;
}

/// key → rest-of-line split at the first tab.
bool split_kv(const std::string& line, std::string& key, std::string& value) {
  const std::size_t tab = line.find('\t');
  if (tab == std::string::npos) {
    key = line;
    value.clear();
    return !key.empty();
  }
  key = line.substr(0, tab);
  value = line.substr(tab + 1);
  return !key.empty();
}

std::optional<JobState> parse_job_state(const std::string& s) {
  for (const JobState st :
       {JobState::kQueued, JobState::kRunning, JobState::kDone,
        JobState::kFailed, JobState::kCancelled})
    if (s == job_state_name(st)) return st;
  return std::nullopt;
}

/// Same NTP-immune liveness judgment the orchestrator applies: the beat
/// *sequence* must advance against our own steady clock.
struct BeatWatch {
  std::uint64_t last_beats = 0;
  Clock::time_point last_progress;

  void observe(const std::string& hb_path) {
    if (const auto hb = read_heartbeat(hb_path))
      if (hb->beats > last_beats) {
        last_beats = hb->beats;
        last_progress = Clock::now();
      }
  }

  bool stalled(double timeout, Clock::time_point spawn) const {
    if (timeout <= 0.0) return false;
    if (last_beats > 0) return seconds_since(last_progress) > timeout;
    return seconds_since(spawn) > timeout;  // daemon workers always beat
  }

  std::string describe(Clock::time_point spawn) const {
    if (last_beats > 0)
      return "heartbeat stuck at beat " + std::to_string(last_beats) +
             " for " + fmt_seconds(seconds_since(last_progress)) + " s";
    return "no heartbeat " + fmt_seconds(seconds_since(spawn)) +
           " s after spawn";
  }
};

constexpr const char* kQueueHeader = "#am-sweepd-queue v1";

}  // namespace

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "queued";
}

std::string encode_reply(const DaemonReply& reply) {
  std::ostringstream out;
  out << "#am-reply v1\n";
  out << "ok\t" << (reply.ok ? 1 : 0) << '\n';
  out << "retry\t" << (reply.retry ? 1 : 0) << '\n';
  out << "job\t" << reply.job << '\n';
  out << "state\t" << job_state_name(reply.state) << '\n';
  out << "points\t" << reply.points << '\n';
  out << "done\t" << reply.done_points << '\n';
  out << "executed\t" << reply.executed << '\n';
  if (!reply.error.empty()) {
    // Error text is free-form but must stay one line.
    std::string e = reply.error;
    for (char& c : e)
      if (c == '\n' || c == '\t') c = ' ';
    out << "error\t" << e << '\n';
  }
  return out.str();
}

std::optional<DaemonReply> parse_reply(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "#am-reply v1") return std::nullopt;
  DaemonReply reply;
  bool saw_ok = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::string key, value;
    if (!split_kv(line, key, value)) return std::nullopt;
    std::uint64_t u = 0;
    if (key == "ok") {
      if (value != "0" && value != "1") return std::nullopt;
      reply.ok = value == "1";
      saw_ok = true;
    } else if (key == "retry") {
      if (value != "0" && value != "1") return std::nullopt;
      reply.retry = value == "1";
    } else if (key == "job") {
      if (!parse_u64_str(value, u)) return std::nullopt;
      reply.job = u;
    } else if (key == "state") {
      const auto st = parse_job_state(value);
      if (!st) return std::nullopt;
      reply.state = *st;
    } else if (key == "points") {
      if (!parse_u64_str(value, u)) return std::nullopt;
      reply.points = static_cast<std::size_t>(u);
    } else if (key == "done") {
      if (!parse_u64_str(value, u)) return std::nullopt;
      reply.done_points = static_cast<std::size_t>(u);
    } else if (key == "executed") {
      if (!parse_u64_str(value, u)) return std::nullopt;
      reply.executed = static_cast<std::size_t>(u);
    } else if (key == "error") {
      reply.error = value;
    }
    // Unknown keys are ignored: replies may grow fields.
  }
  if (!saw_ok) return std::nullopt;
  return reply;
}

void FairShareScheduler::add(std::uint64_t job) {
  for (const auto j : order_)
    if (j == job) return;
  order_.push_back(job);
}

void FairShareScheduler::remove(std::uint64_t job) {
  for (auto it = order_.begin(); it != order_.end(); ++it)
    if (*it == job) {
      order_.erase(it);
      return;
    }
}

std::optional<std::uint64_t> FairShareScheduler::pick(
    const std::function<bool(std::uint64_t)>& has_work) {
  for (std::size_t i = 0; i < order_.size(); ++i)
    if (has_work(order_[i])) {
      const std::uint64_t job = order_[i];
      order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(i));
      order_.push_back(job);
      return job;
    }
  return std::nullopt;
}

SweepDaemon::SweepDaemon(SweepDaemonOptions opts) : opts_(std::move(opts)) {
  if (opts_.socket_path.empty())
    throw std::invalid_argument("amsweepd: socket path is required");
  if (opts_.results_dir.empty())
    throw std::invalid_argument("amsweepd: results_dir is required");
  if (opts_.workers > 0 && opts_.worker_command.empty())
    throw std::invalid_argument(
        "amsweepd: a worker command is required unless --workers 0");
  if (opts_.max_frame_bytes < kFrameHeaderBytes)
    throw std::invalid_argument("amsweepd: max frame bound too small");
}

SweepDaemon::~SweepDaemon() = default;

bool SweepDaemon::valid_namespace(const std::string& ns) {
  if (ns.empty() || ns.size() > 64) return false;
  for (const char c : ns)
    if (!((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
          (c >= '0' && c <= '9') || c == '_' || c == '-'))
      return false;
  return true;
}

std::string SweepDaemon::daemon_dir(const std::string& results_dir) {
  return (std::filesystem::path(results_dir) / "daemon").string();
}

std::string SweepDaemon::queue_path(const std::string& results_dir) {
  return (std::filesystem::path(daemon_dir(results_dir)) / "queue.tsv")
      .string();
}

std::string SweepDaemon::manifest_path(const std::string& results_dir) {
  return (std::filesystem::path(daemon_dir(results_dir)) / "manifest.tsv")
      .string();
}

std::string SweepDaemon::namespace_store_path(const std::string& results_dir,
                                              const std::string& ns) {
  return (std::filesystem::path(results_dir) / ("ns-" + ns + ".tsv"))
      .string();
}

std::string SweepDaemon::job_spec_path(const std::string& results_dir,
                                       std::uint64_t job) {
  return (std::filesystem::path(daemon_dir(results_dir)) /
          ("job" + std::to_string(job) + ".plan"))
      .string();
}

namespace {

/// One accepted client connection. A connection that sent a `wait`
/// request carries its subscription here — waiters *are* connections,
/// so a disconnected waiter cleans itself up.
struct Conn {
  Socket sock;
  FrameReader reader;
  bool waiting = false;
  std::uint64_t waiting_job = 0;

  explicit Conn(Socket s, std::size_t max_frame)
      : sock(std::move(s)), reader(max_frame) {}
};

/// One tenant job: a submitted plan working its way through the queue.
struct Job {
  std::uint64_t id = 0;
  std::string ns;
  JobState state = JobState::kQueued;
  std::string error;
  PlanSpec spec;
  bool spec_ok = false;  // spec parsed and held in memory
  std::size_t points = 0;
  std::vector<bool> point_done;
  std::size_t done_points = 0;
  std::size_t executed = 0;
  std::vector<std::size_t> failures;   // per-point crash charges
  std::deque<WorkLease> batch_queue;   // pending batches (plan indices)
  std::size_t outstanding = 0;         // batches currently leased
  bool admitted = false;
  std::unique_ptr<ExperimentPlan> plan;
  std::unique_ptr<SweepRunner> runner;

  bool terminal() const {
    return state == JobState::kDone || state == JobState::kFailed ||
           state == JobState::kCancelled;
  }
};

/// One worker slot, mirroring the orchestrator's lease-mode slot.
struct Slot {
  Subprocess proc;
  bool live = false;
  bool ever_spawned = false;
  bool done_offered = false;
  std::string lease;      // lease-file path
  WorkLease current;
  bool has_current = false;
  std::uint64_t job = 0;  // owner of `current`
  Clock::time_point start;
  BeatWatch watch;
  bool stalled = false;
  double busy_seconds = 0.0;
  std::size_t batches = 0;
  std::size_t points = 0;
  std::size_t respawns = 0;
};

}  // namespace

DaemonReport SweepDaemon::run(std::ostream& log) {
  DaemonReport report;
  const std::string& dir = opts_.results_dir;
  try {
    std::filesystem::create_directories(daemon_dir(dir));
  } catch (const std::exception& e) {
    report.error = std::string("cannot create daemon dir: ") + e.what();
    log << report.error << "\n";
    return report;
  }

  // --- serving state -----------------------------------------------------
  std::map<std::uint64_t, Job> jobs;
  std::uint64_t next_job_id = 1;
  std::uint64_t next_lease_id = 1;
  FairShareScheduler scheduler;
  std::vector<std::unique_ptr<Conn>> conns;
  std::vector<Slot> slots(opts_.workers);
  for (std::size_t w = 0; w < slots.size(); ++w)
    slots[w].lease = (std::filesystem::path(daemon_dir(dir)) /
                      ("wrk" + std::to_string(w) + ".lease"))
                         .string();
  bool queue_dirty = false;

  // --- persistence -------------------------------------------------------
  const auto write_queue = [&] {
    std::ostringstream out;
    out << kQueueHeader << '\n';
    out << "next_job\t" << next_job_id << '\n';
    for (const auto& [id, job] : jobs) {
      // Running jobs persist as queued: their pending points re-admit on
      // the next start, their completed points ride the `done` line.
      const JobState persisted =
          job.state == JobState::kRunning ? JobState::kQueued : job.state;
      out << "job\t" << id << '\t' << job.ns << '\t'
          << job_state_name(persisted) << '\t' << job.points << '\t'
          << job.executed << '\t' << job.error << '\n';
      if (job.done_points > 0) {
        out << "done\t" << id;
        for (std::size_t p = 0; p < job.point_done.size(); ++p)
          if (job.point_done[p]) out << '\t' << p;
        out << '\n';
      }
    }
    atomic_write_file(queue_path(dir), out.str(), "sweepd-queue");
    queue_dirty = false;
  };

  const auto load_queue = [&] {
    std::ifstream in(queue_path(dir));
    if (!in) return;
    std::string line;
    if (!std::getline(in, line) || line != kQueueHeader) {
      log << "ignoring unreadable queue file " << queue_path(dir) << "\n";
      return;
    }
    std::size_t resumed = 0;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      std::istringstream ls(line);
      std::string key;
      std::getline(ls, key, '\t');
      if (key == "next_job") {
        std::string v;
        std::getline(ls, v, '\t');
        std::uint64_t u = 0;
        if (parse_u64_str(v, u)) next_job_id = std::max(next_job_id, u);
      } else if (key == "job") {
        std::string id_s, ns, state_s, points_s, executed_s, error;
        std::getline(ls, id_s, '\t');
        std::getline(ls, ns, '\t');
        std::getline(ls, state_s, '\t');
        std::getline(ls, points_s, '\t');
        std::getline(ls, executed_s, '\t');
        std::getline(ls, error);
        std::uint64_t id = 0, pts = 0, exec = 0;
        const auto st = parse_job_state(state_s);
        if (!parse_u64_str(id_s, id) || !st || !parse_u64_str(points_s, pts) ||
            !parse_u64_str(executed_s, exec) || !valid_namespace(ns)) {
          log << "queue file: skipping malformed job line\n";
          continue;
        }
        Job job;
        job.id = id;
        job.ns = ns;
        job.state = *st;
        job.points = static_cast<std::size_t>(pts);
        job.point_done.assign(job.points, false);
        job.executed = static_cast<std::size_t>(exec);
        job.error = error;
        jobs.emplace(id, std::move(job));
        if (*st == JobState::kQueued) ++resumed;
      } else if (key == "done") {
        std::string id_s;
        std::getline(ls, id_s, '\t');
        std::uint64_t id = 0;
        if (!parse_u64_str(id_s, id)) continue;
        const auto it = jobs.find(id);
        if (it == jobs.end()) continue;
        std::string p_s;
        while (std::getline(ls, p_s, '\t')) {
          std::uint64_t p = 0;
          if (parse_u64_str(p_s, p) && p < it->second.point_done.size() &&
              !it->second.point_done[p]) {
            it->second.point_done[p] = true;
            ++it->second.done_points;
          }
        }
      }
    }
    if (!jobs.empty())
      log << "resumed queue: " << jobs.size() << " job(s), " << resumed
          << " pending\n";
  };

  // --- replies and waiters ----------------------------------------------
  const auto reply_for = [&](const Job& job) {
    DaemonReply r;
    r.ok = job.state != JobState::kFailed;
    r.job = job.id;
    r.state = job.state;
    r.points = job.points;
    r.done_points = job.done_points;
    r.executed = job.executed;
    r.error = job.error;
    return r;
  };
  const auto send_reply = [&](Conn& conn, const DaemonReply& reply) {
    try {
      write_frame(conn.sock, {kFrameReply, encode_reply(reply)});
      return true;
    } catch (const SocketError&) {
      conn.sock.close();  // peer gone or wedged; reap below
      return false;
    }
  };
  const auto notify_terminal = [&](const Job& job) {
    for (auto& conn : conns) {
      if (!conn->sock.valid() || !conn->waiting ||
          conn->waiting_job != job.id)
        continue;
      conn->waiting = false;
      send_reply(*conn, reply_for(job));
    }
  };

  // --- job lifecycle -----------------------------------------------------
  const auto fail_job = [&](Job& job, const std::string& why) {
    job.state = JobState::kFailed;
    job.error = why;
    job.batch_queue.clear();
    scheduler.remove(job.id);
    ++report.jobs_failed;
    log << "job " << job.id << " (" << job.ns << "): failed — " << why
        << "\n";
    notify_terminal(job);
    queue_dirty = true;
  };

  /// Merges exactly this job's plan records into its namespace store.
  /// Worker slot stores are shared scratch (they accumulate whatever
  /// leases landed on the slot, seeded caches included); the filter by
  /// the job's own ScenarioKeys is what keeps each namespace store
  /// byte-identical to a direct serial run of that namespace's plans.
  const auto finalize_job = [&](Job& job) {
    try {
      const std::string ns_path = namespace_store_path(dir, job.ns);
      ResultStore ns = ResultStore::load_or_empty(ns_path);
      std::vector<ResultStore> scratch;
      for (const auto& entry :
           std::filesystem::directory_iterator(daemon_dir(dir))) {
        const std::string name = entry.path().filename().string();
        // All slot stores ever written under this results dir — a
        // resumed job's records may live in a previous daemon's slots.
        if (name.size() > 10 &&
            name.substr(name.size() - 10) == ".lease.tsv")
          scratch.push_back(ResultStore::load_or_empty(entry.path().string()));
      }
      for (std::size_t p = 0; p < job.points; ++p) {
        const ScenarioKey key = job.runner->key_for(*job.plan, p);
        if (ns.has(key)) continue;
        bool found = false;
        for (const auto& s : scratch)
          if (const auto* rec = s.find(key)) {
            ns.put(key, *rec, {}, s.run_seconds(key));
            found = true;
            break;
          }
        if (!found)
          throw std::runtime_error(
              "no worker store holds plan point " + std::to_string(p) +
              " — a worker acknowledged without persisting?");
      }
      ns.save(ns_path);
      ResultStore::load(ns_path);  // validate what we wrote
      job.state = JobState::kDone;
      scheduler.remove(job.id);
      ++report.jobs_done;
      log << "job " << job.id << " (" << job.ns << "): done — " << job.points
          << " point(s), " << job.executed << " engine run(s) -> " << ns_path
          << "\n";
      notify_terminal(job);
      queue_dirty = true;
    } catch (const std::exception& e) {
      fail_job(job, std::string("merge failed: ") + e.what());
    }
  };

  /// Builds the executable plan and splits its *pending* points into
  /// fair-share batches. Called once per job when worker slots exist.
  const auto admit_job = [&](Job& job) {
    job.admitted = true;
    try {
      if (!job.spec_ok) {  // resumed from the queue file
        std::ifstream in(job_spec_path(dir, job.id));
        if (!in)
          throw std::invalid_argument("plan spec file missing: " +
                                      job_spec_path(dir, job.id));
        std::stringstream text;
        text << in.rdbuf();
        job.spec = parse_plan_spec(text.str());
        job.spec_ok = true;
      }
      job.plan = std::make_unique<ExperimentPlan>(build_plan(job.spec));
      job.runner = std::make_unique<SweepRunner>(make_runner(job.spec));
      job.points = job.plan->size();
      if (job.point_done.size() != job.points) {
        job.point_done.assign(job.points, false);
        job.done_points = 0;
      }
      job.failures.assign(job.points, 0);
    } catch (const std::exception& e) {
      fail_job(job, std::string("plan rejected: ") + e.what());
      return;
    }
    std::vector<std::size_t> pending;
    for (std::size_t p = 0; p < job.points; ++p)
      if (!job.point_done[p]) pending.push_back(p);
    if (pending.empty()) {
      job.state = JobState::kRunning;
      finalize_job(job);
      return;
    }
    // Size-aware batches over the pending subset; measured run times in
    // the namespace store (or seeded caches) sharpen the split.
    std::vector<double> costs;
    try {
      const ResultStore ns = ResultStore::load_or_empty(
          namespace_store_path(dir, job.ns));
      const std::vector<double> all = job.runner->estimate_costs(*job.plan,
                                                                 &ns);
      for (const std::size_t p : pending) costs.push_back(all[p]);
    } catch (const std::exception&) {
      costs.clear();  // cost model is advisory; uniform is always safe
    }
    std::size_t target = opts_.batches_per_job != 0 ? opts_.batches_per_job
                                                    : opts_.workers * 2;
    target = std::min(std::max<std::size_t>(target, 1), pending.size());
    auto batches = make_batches(pending.size(), target, costs);
    for (auto& b : batches) {
      if (b.empty()) continue;
      for (auto& p : b.points) p = pending[p];  // map back to plan indices
      job.batch_queue.push_back(std::move(b));
    }
    job.state = JobState::kRunning;
    scheduler.add(job.id);
    queue_dirty = true;
    log << "job " << job.id << " (" << job.ns << "): admitted — "
        << pending.size() << " pending point(s) in "
        << job.batch_queue.size() << " batch(es)\n";
  };

  // --- frame handling ----------------------------------------------------
  const auto handle_frame = [&](Conn& conn, const Frame& frame) {
    if (frame.type == kFrameSubmit) {
      DaemonReply r;
      if (drain_.load(std::memory_order_acquire)) {
        r.retry = true;
        r.error = "daemon is draining; retry after it restarts";
        send_reply(conn, r);
        return;
      }
      const std::size_t nl = frame.payload.find('\n');
      std::string ns_line = nl == std::string::npos
                                ? frame.payload
                                : frame.payload.substr(0, nl);
      std::string key, ns;
      if (!split_kv(ns_line, key, ns) || key != "ns" ||
          !valid_namespace(ns)) {
        r.error =
            "submit payload must start with 'ns\\t<namespace>' "
            "(1-64 chars of [A-Za-z0-9_-])";
        send_reply(conn, r);
        return;
      }
      const std::string plan_text =
          nl == std::string::npos ? std::string{} : frame.payload.substr(nl + 1);
      PlanSpec spec;
      try {
        spec = parse_plan_spec(plan_text);
      } catch (const std::exception& e) {
        r.error = e.what();
        send_reply(conn, r);
        return;
      }
      Job job;
      job.id = next_job_id++;
      job.ns = ns;
      job.spec = std::move(spec);
      job.spec_ok = true;
      try {
        job.points = build_plan(job.spec).size();
        // Canonical re-serialization: the durable spec is exactly what
        // a resumed daemon will parse, not the client's raw bytes.
        atomic_write_file(job_spec_path(dir, job.id),
                          serialize_plan_spec(job.spec), "sweepd-plan");
      } catch (const std::exception& e) {
        r.error = e.what();
        send_reply(conn, r);
        return;
      }
      job.point_done.assign(job.points, false);
      ++report.jobs_accepted;
      log << "job " << job.id << " (" << job.ns << "): accepted — "
          << job.points << " point(s)\n";
      r.ok = true;
      r.job = job.id;
      r.state = JobState::kQueued;
      r.points = job.points;
      jobs.emplace(job.id, std::move(job));
      queue_dirty = true;
      send_reply(conn, r);
      return;
    }

    if (frame.type == kFrameStatus || frame.type == kFrameCancel ||
        frame.type == kFrameWait) {
      std::string key, value;
      std::uint64_t id = 0;
      DaemonReply r;
      if (!split_kv(frame.payload, key, value) || key != "job" ||
          !parse_u64_str(value, id)) {
        r.error = "payload must be 'job\\t<id>'";
        send_reply(conn, r);
        return;
      }
      const auto it = jobs.find(id);
      if (it == jobs.end()) {
        r.job = id;
        r.error = "unknown job " + std::to_string(id);
        send_reply(conn, r);
        return;
      }
      Job& job = it->second;
      if (frame.type == kFrameStatus) {
        send_reply(conn, reply_for(job));
      } else if (frame.type == kFrameCancel) {
        if (job.terminal()) {
          r = reply_for(job);
          r.ok = false;
          r.error = "job already " + std::string(job_state_name(job.state));
          send_reply(conn, r);
        } else {
          job.state = JobState::kCancelled;
          job.batch_queue.clear();
          scheduler.remove(job.id);
          log << "job " << job.id << " (" << job.ns << "): cancelled\n";
          notify_terminal(job);
          queue_dirty = true;
          send_reply(conn, reply_for(job));
        }
      } else {  // kFrameWait
        if (job.terminal()) {
          send_reply(conn, reply_for(job));
        } else {
          conn.waiting = true;
          conn.waiting_job = id;
        }
      }
      return;
    }

    // Unknown request type: protocol-level, fails the connection.
    ++report.protocol_errors;
    DaemonReply r;
    r.error = "unknown frame type " + std::to_string(frame.type);
    send_reply(conn, r);
    conn.sock.close();
  };

  // --- listeners ---------------------------------------------------------
  Socket unix_listener, tcp_listener;
  try {
    unix_listener = listen_unix(opts_.socket_path);
    set_nonblocking(unix_listener, true);
    if (opts_.tcp_port >= 0) {
      tcp_listener = listen_tcp(static_cast<std::uint16_t>(opts_.tcp_port));
      set_nonblocking(tcp_listener, true);
      const std::uint16_t port = local_port(tcp_listener);
      atomic_write_file((std::filesystem::path(daemon_dir(dir)) / "tcp.port")
                            .string(),
                        std::to_string(port) + "\n", "sweepd-port");
      log << "listening on " << opts_.socket_path << " and 127.0.0.1:"
          << port << "\n";
    } else {
      log << "listening on " << opts_.socket_path << "\n";
    }
  } catch (const std::exception& e) {
    report.error = e.what();
    log << report.error << "\n";
    return report;
  }

  load_queue();

  log << "amsweepd: " << opts_.workers << " worker slot(s), per-point "
      << "retries " << opts_.retries << "\n";

  // --- serving loop ------------------------------------------------------
  const auto has_batch = [&](std::uint64_t id) {
    const auto it = jobs.find(id);
    return it != jobs.end() && !it->second.batch_queue.empty();
  };
  const auto offer_to = [&](Slot& s, std::size_t w, std::uint64_t jid) {
    Job& job = jobs.at(jid);
    WorkLease lease = std::move(job.batch_queue.front());
    job.batch_queue.pop_front();
    lease.id = next_lease_id++;
    LeaseOffer off;
    off.lease = lease;
    off.plan_path = job_spec_path(dir, jid);
    off.store_path = lease_store_path(s.lease);
    off.seed_store_path = namespace_store_path(dir, job.ns);
    write_lease_offer(s.lease, off);
    s.current = std::move(lease);
    s.has_current = true;
    s.job = jid;
    ++job.outstanding;
    log << "worker " << w << ": lease " << s.current.id << " -> job " << jid
        << " (" << s.current.points.size() << " point(s))\n";
  };
  const auto requeue_current = [&](Slot& s, std::size_t w) {
    const auto it = jobs.find(s.job);
    if (it != jobs.end()) {
      Job& job = it->second;
      --job.outstanding;
      if (!job.terminal()) {
        std::vector<std::size_t> survivors;
        std::size_t dead = 0;
        for (const std::size_t p : s.current.points) {
          if (++job.failures[p] > opts_.retries)
            ++dead;
          else
            survivors.push_back(p);
        }
        if (dead > 0) {
          fail_job(job, std::to_string(dead) +
                            " point(s) exhausted their retry budget");
        } else if (!survivors.empty()) {
          // Bisect on requeue, like the orchestrator: repeated crashes
          // home in on a poison point instead of re-charging the whole
          // batch every time.
          const std::size_t half = survivors.size() / 2;
          const double per_point =
              s.current.cost /
              static_cast<double>(std::max<std::size_t>(
                  s.current.points.size(), 1));
          WorkLease front_half, back_half;
          front_half.points.assign(survivors.begin(),
                                   survivors.begin() + half);
          back_half.points.assign(survivors.begin() + half, survivors.end());
          for (auto* part : {&back_half, &front_half}) {
            if (part->empty()) continue;
            part->cost =
                per_point * static_cast<double>(part->points.size());
            job.batch_queue.push_front(std::move(*part));
          }
          log << "worker " << w << ": requeued lease " << s.current.id
              << " for job " << s.job << "\n";
        }
      }
    }
    s.has_current = false;
    s.current = WorkLease{};
  };

  while (true) {
    // Acquire pairs with request_drain()'s release store (see daemon.hpp).
    const bool draining = drain_.load(std::memory_order_acquire);
    bool progressed = false;

    // Accept pending connections on both listeners.
    for (const Socket* listener : {&unix_listener, &tcp_listener}) {
      if (!listener->valid()) continue;
      try {
        while (auto accepted = accept_connection(*listener)) {
          set_nonblocking(*accepted, true);
          set_io_timeout(*accepted, opts_.client_io_timeout_seconds);
          conns.push_back(std::make_unique<Conn>(std::move(*accepted),
                                                 opts_.max_frame_bytes));
          progressed = true;
        }
      } catch (const std::exception& e) {
        log << "accept failed: " << e.what() << "\n";
      }
    }

    // Pump every connection: read what arrived, handle complete frames.
    for (auto& conn : conns) {
      if (!conn->sock.valid()) continue;
      char buf[4096];
      bool eof = false;
      for (;;) {
        const ssize_t n = ::recv(conn->sock.fd(), buf, sizeof(buf), 0);
        if (n > 0) {
          conn->reader.feed(buf, static_cast<std::size_t>(n));
          progressed = true;
          continue;
        }
        if (n == 0) eof = true;
        break;  // EAGAIN/EWOULDBLOCK or error or EOF
      }
      while (auto frame = conn->reader.next()) {
        if (!conn->sock.valid()) break;
        handle_frame(*conn, *frame);
        progressed = true;
      }
      if (conn->sock.valid() && conn->reader.failed()) {
        // Garbage, wrong version, oversized prefix: one connection's
        // clean error. Other tenants' queued plans are untouched.
        ++report.protocol_errors;
        log << "connection failed: " << conn->reader.error() << "\n";
        DaemonReply r;
        r.error = conn->reader.error();
        send_reply(*conn, r);
        conn->sock.close();
        progressed = true;
      } else if (conn->sock.valid() && eof) {
        if (conn->reader.pending_bytes() > 0) {
          ++report.protocol_errors;
          log << "connection closed mid-frame (truncated submit?)\n";
        }
        conn->sock.close();
      }
    }
    conns.erase(std::remove_if(conns.begin(), conns.end(),
                               [](const std::unique_ptr<Conn>& c) {
                                 return !c->sock.valid();
                               }),
                conns.end());

    // Admit queued jobs (oldest first) while a fleet exists.
    if (opts_.workers > 0 && !draining)
      for (auto& [id, job] : jobs)
        if (job.state == JobState::kQueued && !job.admitted) {
          admit_job(job);
          progressed = true;
        }

    // Fill worker slots: fair-share pick across jobs with pending work.
    for (std::size_t w = 0; w < slots.size(); ++w) {
      Slot& s = slots[w];
      if (s.live || draining) continue;
      const auto jid = scheduler.pick(has_batch);
      if (!jid) break;  // nobody has pending batches
      std::error_code ec;
      std::filesystem::remove(s.lease, ec);
      std::filesystem::remove(lease_ack_path(s.lease), ec);
      std::filesystem::remove(lease_heartbeat_path(s.lease), ec);
      offer_to(s, w, *jid);
      auto argv = opts_.worker_command;
      argv.push_back("--lease");
      argv.push_back(s.lease);
      try {
        Subprocess::Options spawn_opts;
        spawn_opts.stdout_path = s.lease + ".log";
        spawn_opts.new_process_group = true;
        s.proc = Subprocess::spawn(argv, spawn_opts);
      } catch (const std::exception& e) {
        // Unspawnable worker command: nothing will ever run. Fail the
        // job holding the lease; the operator fixes the command.
        log << "worker " << w << ": " << e.what() << "\n";
        const auto it = jobs.find(s.job);
        requeue_current(s, w);
        if (it != jobs.end() && !it->second.terminal())
          fail_job(it->second,
                   std::string("worker command unspawnable: ") + e.what());
        continue;
      }
      s.start = Clock::now();
      s.watch = BeatWatch{};
      s.watch.last_progress = s.start;
      s.stalled = false;
      s.done_offered = false;
      if (s.ever_spawned) ++s.respawns;
      s.ever_spawned = true;
      s.live = true;
      progressed = true;
      log << "worker " << w << ": launched (pid " << s.proc.pid() << ")\n";
    }

    // Poll the fleet.
    bool any_live = false;
    for (std::size_t w = 0; w < slots.size(); ++w) {
      Slot& s = slots[w];
      if (!s.live) continue;
      s.watch.observe(lease_heartbeat_path(s.lease));
      if (!s.stalled &&
          s.watch.stalled(opts_.stall_timeout_seconds, s.start)) {
        log << "worker " << w << ": " << s.watch.describe(s.start)
            << " — killing pid " << s.proc.pid() << "\n";
        s.stalled = true;
        s.proc.kill();
      }

      const auto ack = read_lease_ack(lease_ack_path(s.lease));
      if (ack && s.has_current && ack->lease_id == s.current.id) {
        progressed = true;
        s.watch.last_progress = Clock::now();
        s.busy_seconds += ack->wall_seconds;
        s.batches += 1;
        s.points += ack->points;
        report.engine_runs += ack->executed;
        const auto it = jobs.find(s.job);
        if (it != jobs.end()) {
          Job& job = it->second;
          --job.outstanding;
          job.executed += ack->executed;
          for (const std::size_t p : s.current.points)
            if (p < job.point_done.size() && !job.point_done[p]) {
              job.point_done[p] = true;
              ++job.done_points;
            }
          queue_dirty = true;
          log << "worker " << w << ": lease " << s.current.id << " done ("
              << ack->points << " point(s), " << ack->executed
              << " engine run(s), " << fmt_seconds(ack->wall_seconds)
              << " s)\n";
          s.has_current = false;
          s.current = WorkLease{};
          if (job.state == JobState::kRunning &&
              job.done_points == job.points && job.outstanding == 0 &&
              job.batch_queue.empty())
            finalize_job(job);
        } else {
          s.has_current = false;
          s.current = WorkLease{};
        }
      }

      if (s.proc.running()) {
        if (!s.has_current && !s.done_offered) {
          // Draining dispatches nothing new: in-flight leases finish,
          // queued batches persist for the next daemon to resume.
          if (const auto jid = draining ? std::optional<std::uint64_t>{}
                                        : scheduler.pick(has_batch)) {
            offer_to(s, w, *jid);
            progressed = true;
          } else if (draining) {
            WorkLease done;
            done.id = next_lease_id++;
            LeaseOffer off;
            off.lease = done;
            off.done = true;
            write_lease_offer(s.lease, off);
            s.done_offered = true;
            progressed = true;
          }
          // Otherwise: leave the acked offer in place; an idle worker
          // polls it ("no new work yet") until a submission arrives.
        }
        any_live = true;
        continue;
      }

      // Process exited; the ack block above already judged any receipt
      // it wrote on the way out.
      progressed = true;
      s.live = false;
      // Already reaped (running() returned false); wait() hands back the
      // cached status instead of dereferencing the optional unchecked.
      const ExitStatus status = s.proc.wait();
      if (!status.signaled && status.code == 2) {
        // Usage rejection: this worker cannot run this offer, and no
        // retry will change that — but unlike the one-shot
        // orchestrator, the daemon fails only the job holding the
        // lease; other tenants keep their fleet.
        const auto it = jobs.find(s.job);
        const bool had = s.has_current;
        if (had) {
          if (it != jobs.end()) --it->second.outstanding;
          s.has_current = false;
          s.current = WorkLease{};
        }
        if (had && it != jobs.end() && !it->second.terminal())
          fail_job(it->second, "worker rejected the lease (" +
                                   status.describe() + ") — see " + s.lease +
                                   ".log");
        else
          log << "worker " << w << ": " << status.describe()
              << " while idle\n";
      } else if (s.has_current) {
        log << "worker " << w << ": " << status.describe()
            << " holding lease " << s.current.id << "\n";
        requeue_current(s, w);
      } else if (status.success() && s.done_offered) {
        log << "worker " << w << ": drained in "
            << fmt_seconds(seconds_since(s.start)) << " s (" << s.batches
            << " batch(es), " << fmt_seconds(s.busy_seconds) << " s busy)\n";
      } else {
        log << "worker " << w << ": " << status.describe()
            << " while idle\n";
      }
    }

    if (draining && !any_live) break;

    if (queue_dirty) {
      try {
        write_queue();
      } catch (const std::exception& e) {
        log << "queue checkpoint failed: " << e.what() << "\n";
      }
    }
    if (!progressed)
      std::this_thread::sleep_for(
          std::chrono::duration<double>(opts_.poll_seconds));
  }

  // --- drain epilogue ----------------------------------------------------
  // Every still-connected waiter (and any future submitter who raced the
  // drain) gets an explicit retry-later, never a silent hang-up.
  for (auto& conn : conns) {
    if (!conn->sock.valid()) continue;
    if (conn->waiting) {
      DaemonReply r;
      r.retry = true;
      const auto it = jobs.find(conn->waiting_job);
      if (it != jobs.end()) {
        r = reply_for(it->second);
        r.ok = false;
        r.retry = true;
      }
      r.error = "daemon drained before the job finished; "
                "resubmit or wait after restart";
      send_reply(*conn, r);
    }
    conn->sock.close();
  }

  try {
    write_queue();
    report.clean_exit = true;
  } catch (const std::exception& e) {
    report.error = std::string("queue persist failed: ") + e.what();
    log << report.error << "\n";
  }

  for (const auto& [id, job] : jobs) {
    DaemonJobSummary s;
    s.id = id;
    s.ns = job.ns;
    s.state = job.state;
    s.points = job.points;
    s.done_points = job.done_points;
    s.executed = job.executed;
    s.error = job.error;
    report.jobs.push_back(std::move(s));
  }

  try {
    std::ostringstream out;
    out << "#am-sweepd-manifest v1\n";
    out << "host\t" << interfere::HostIdentity::detect().fingerprint()
        << '\n';
    out << "socket\t" << opts_.socket_path << '\n';
    out << "workers\t" << opts_.workers << '\n';
    out << "status\t" << (report.clean_exit ? "drained" : "failed") << '\n';
    out << "jobs_accepted\t" << report.jobs_accepted << '\n';
    out << "jobs_done\t" << report.jobs_done << '\n';
    out << "jobs_failed\t" << report.jobs_failed << '\n';
    out << "engine_runs\t" << report.engine_runs << '\n';
    out << "protocol_errors\t" << report.protocol_errors << '\n';
    for (const auto& j : report.jobs)
      out << "job\t" << j.id << '\t' << j.ns << '\t'
          << job_state_name(j.state) << '\t' << j.points << '\t'
          << j.done_points << '\t' << j.executed << '\t' << j.error << '\n';
    double busy_max = 0.0, busy_sum = 0.0;
    std::size_t busy_n = 0;
    for (std::size_t w = 0; w < slots.size(); ++w) {
      const Slot& s = slots[w];
      if (!s.ever_spawned) continue;
      out << "worker\t" << w << '\t' << fmt_seconds(s.busy_seconds) << '\t'
          << s.batches << '\t' << s.points << '\t' << s.respawns << '\n';
      busy_max = std::max(busy_max, s.busy_seconds);
      busy_sum += s.busy_seconds;
      ++busy_n;
    }
    if (busy_n > 0 && busy_sum > 0.0) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.4f",
                    busy_max / (busy_sum / static_cast<double>(busy_n)));
      out << "busy_max_over_mean\t" << buf << '\n';
    }
    atomic_write_file(manifest_path(dir), out.str(), "sweepd-manifest");
    log << "manifest: " << manifest_path(dir) << "\n";
  } catch (const std::exception& e) {
    log << "manifest write failed: " << e.what() << "\n";
  }

  std::error_code ec;
  std::filesystem::remove(opts_.socket_path, ec);
  log << "drained cleanly\n";
  return report;
}

DaemonWorkerReport run_daemon_worker(const DaemonWorkerOptions& opts,
                                     std::ostream& log) {
  if (opts.lease_path.empty())
    throw std::invalid_argument("daemon worker: --lease path is required");

  struct CachedPlan {
    PlanSpec spec;
    ExperimentPlan plan;
  };
  std::map<std::string, CachedPlan> plans;

  HeartbeatWriter heartbeat(lease_heartbeat_path(opts.lease_path));
  DaemonWorkerReport report;
  std::optional<std::uint64_t> last_acked;
  auto last_activity = Clock::now();
  for (;;) {
    const auto offer = read_lease_offer(opts.lease_path);
    const bool fresh =
        offer && (!last_acked || offer->lease.id != *last_acked);
    if (!fresh) {
      if (opts.idle_timeout_seconds > 0.0 &&
          seconds_since(last_activity) > opts.idle_timeout_seconds)
        throw std::runtime_error("daemon worker: no offer for " +
                                 std::to_string(opts.idle_timeout_seconds) +
                                 " s — daemon gone?");
      std::this_thread::sleep_for(
          std::chrono::duration<double>(opts.poll_seconds));
      continue;
    }
    last_activity = Clock::now();
    if (offer->done) {
      log << "daemon queue drained: " << report.leases << " lease(s), "
          << report.points << " point(s), " << report.executed
          << " engine run(s)\n";
      return report;
    }

    if (!opts.test_crash_marker.empty() &&
        std::filesystem::exists(opts.test_crash_marker)) {
      // Deterministic fault injection: the first worker to claim a
      // batch while the marker exists consumes it and dies mid-lease.
      std::error_code ec;
      std::filesystem::remove(opts.test_crash_marker, ec);
      log << "test crash marker claimed — raising SIGKILL\n";
      log.flush();
      std::raise(SIGKILL);
    }

    if (offer->plan_path.empty() || offer->store_path.empty())
      throw std::invalid_argument(
          "daemon worker: offer carries no plan/store path — not a daemon "
          "scheduler?");

    auto cached = plans.find(offer->plan_path);
    if (cached == plans.end()) {
      std::ifstream in(offer->plan_path);
      if (!in)
        throw std::runtime_error("daemon worker: cannot read plan " +
                                 offer->plan_path);
      std::stringstream text;
      text << in.rdbuf();
      CachedPlan cp;
      cp.spec = parse_plan_spec(text.str());  // invalid_argument = usage
      cp.plan = build_plan(cp.spec);
      cached = plans.emplace(offer->plan_path, std::move(cp)).first;
    }
    const CachedPlan& cp = cached->second;

    const auto t0 = Clock::now();
    ResultStore store = ResultStore::load_or_empty(offer->store_path);
    if (!offer->seed_store_path.empty())
      store.merge(ResultStore::load_or_empty(offer->seed_store_path));

    // Per-point checkpointing (throttled): a SIGKILL mid-batch loses at
    // most a second of finished engine runs, so the daemon's requeue
    // re-runs mostly cache hits.
    auto last_save = Clock::now();
    bool first_save = true;
    const std::string store_path = offer->store_path;
    SweepRunner runner = make_runner(
        cp.spec, [&last_save, &first_save, &store_path](const ResultStore& s) {
          if (first_save || seconds_since(last_save) >= 1.0) {
            s.save(store_path);
            last_save = Clock::now();
            first_save = false;
          }
        });

    std::size_t executed = 0;
    runner.run_points(cp.plan, nullptr, &store, offer->lease.points,
                      &executed);
    store.save(store_path);  // durable strictly before the receipt
    LeaseAck ack;
    ack.lease_id = offer->lease.id;
    ack.points = offer->lease.points.size();
    ack.executed = executed;
    ack.wall_seconds = seconds_since(t0);
    write_lease_ack(lease_ack_path(opts.lease_path), ack);

    last_activity = Clock::now();
    last_acked = offer->lease.id;
    report.leases += 1;
    report.points += ack.points;
    report.executed += executed;
    log << "lease " << offer->lease.id << ": " << ack.points << " point(s), "
        << executed << " engine run(s)\n";
  }
}

DaemonClient DaemonClient::connect_unix(const std::string& socket_path,
                                        double timeout_seconds) {
  const auto t0 = Clock::now();
  for (;;) {
    try {
      Socket sock = am::connect_unix(socket_path);
      set_io_timeout(sock, 30.0);
      return DaemonClient(std::move(sock));
    } catch (const SocketError&) {
      if (seconds_since(t0) > timeout_seconds) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
}

DaemonClient DaemonClient::connect_tcp(std::uint16_t port,
                                       double timeout_seconds) {
  const auto t0 = Clock::now();
  for (;;) {
    try {
      Socket sock = am::connect_tcp(port);
      set_io_timeout(sock, 30.0);
      return DaemonClient(std::move(sock));
    } catch (const SocketError&) {
      if (seconds_since(t0) > timeout_seconds) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
}

DaemonReply DaemonClient::roundtrip(std::uint16_t type,
                                    const std::string& payload) {
  write_frame(sock_, {type, payload});
  const Frame frame = read_frame(sock_);
  if (frame.type != kFrameReply)
    throw std::runtime_error("daemon sent frame type " +
                             std::to_string(frame.type) +
                             " where a reply was expected");
  const auto reply = parse_reply(frame.payload);
  if (!reply) throw std::runtime_error("daemon sent an unparseable reply");
  return *reply;
}

DaemonReply DaemonClient::submit(const std::string& ns,
                                 const std::string& plan_text) {
  return roundtrip(kFrameSubmit, "ns\t" + ns + "\n" + plan_text);
}

DaemonReply DaemonClient::status(std::uint64_t job) {
  return roundtrip(kFrameStatus, "job\t" + std::to_string(job));
}

DaemonReply DaemonClient::cancel(std::uint64_t job) {
  return roundtrip(kFrameCancel, "job\t" + std::to_string(job));
}

DaemonReply DaemonClient::wait(std::uint64_t job, double timeout_seconds) {
  set_io_timeout(sock_, timeout_seconds);  // 0 = block indefinitely
  const DaemonReply reply =
      roundtrip(kFrameWait, "job\t" + std::to_string(job));
  set_io_timeout(sock_, 30.0);
  return reply;
}

void DaemonClient::send_raw(const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(sock_.fd(), bytes.data() + sent,
                             bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw SocketError("send_raw failed");
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace am::measure

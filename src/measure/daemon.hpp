#pragma once
// amsweepd: the sweep machinery as a long-running, multi-tenant
// service. A SweepDaemon listens on a Unix-domain (and optionally
// loopback-TCP) socket for framed protocol messages (common/socket),
// accepts serialized ExperimentPlans (measure/plan_wire) from
// concurrent submitters, and feeds them through the same lease-file
// worker handoff the one-shot orchestrator uses — supervised worker
// processes, beat-sequence liveness, crash requeue with bisection,
// per-point retry budgets. What the daemon adds on top:
//
//   * Tenancy: every submission names a namespace; a job's results are
//     merged into <results_dir>/ns-<namespace>.tsv and only records
//     belonging to that job's plan ever enter it — the merged file is
//     bit-identical to what a direct serial run of the same plan would
//     have produced, no matter which tenants shared the worker fleet.
//   * Fair-share dispatch: batches from concurrently queued plans are
//     interleaved least-recently-granted (FairShareScheduler), so
//     between two consecutive grants to a continuously-pending job no
//     other job is granted twice — a big plan cannot starve a small
//     one, and the bound is provable rather than statistical.
//   * Hostile-input containment: every connection parses through a
//     FrameReader; garbage, truncation, wrong protocol versions and
//     oversized length prefixes each fail exactly one connection with
//     a clean error while other tenants' queued plans are untouched.
//   * Graceful drain: SIGTERM (request_drain, async-signal-safe)
//     finishes in-flight leases, checkpoints every completed point,
//     answers waiting submitters retry-later, persists a resumable
//     queue file, and exits 0; a restarted daemon resumes the queue
//     with already-completed points fully cached.
//
// Protocol, on top of the frame layer: a client sends one request
// frame (submit/status/cancel/wait) and reads one kFrameReply frame
// per request, text-encoded (`#am-reply v1`). Submit payloads are
// "ns\t<namespace>\n" + a plan-spec document. The daemon never trusts
// a payload: namespaces are validated against a strict charset (they
// become file names) and plans go through parse_plan_spec, whose
// rejection is a per-request error, not a daemon failure.
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "common/socket.hpp"
#include "measure/plan_wire.hpp"

namespace am::measure {

/// Protocol frame types (Frame::type). Requests are < 64; the single
/// reply type leaves room for streaming reply kinds later.
inline constexpr std::uint16_t kFrameSubmit = 1;
inline constexpr std::uint16_t kFrameStatus = 2;
inline constexpr std::uint16_t kFrameCancel = 3;
inline constexpr std::uint16_t kFrameWait = 4;
inline constexpr std::uint16_t kFrameReply = 64;

enum class JobState : std::uint8_t {
  kQueued,    // accepted, not yet dispatched (or restored from a drain)
  kRunning,   // batches built, leases in flight
  kDone,      // all points merged into the namespace store
  kFailed,    // retry budget exhausted or results unmergeable
  kCancelled, // cancelled by a client
};

const char* job_state_name(JobState s);

/// One protocol reply. `retry` marks "come back later" outcomes (drain
/// in progress) that are distinct from hard errors — clients map it to
/// its own exit code.
struct DaemonReply {
  bool ok = false;
  bool retry = false;
  std::uint64_t job = 0;
  JobState state = JobState::kQueued;
  std::size_t points = 0;
  std::size_t done_points = 0;
  std::size_t executed = 0;
  std::string error;
};

std::string encode_reply(const DaemonReply& reply);
/// Parses encode_reply output; nullopt on anything malformed.
std::optional<DaemonReply> parse_reply(const std::string& text);

/// Least-recently-granted round-robin over job ids. pick() scans jobs
/// in grant order and returns the first for which `has_work` is true,
/// moving it to the back. Newly added jobs join the back (they wait at
/// most one full rotation). The fairness bound: between two
/// consecutive grants to a job that had work the whole time, every
/// other job is granted at most once — pick() can only pass over a
/// job when has_work said it had nothing to run.
class FairShareScheduler {
 public:
  void add(std::uint64_t job);
  void remove(std::uint64_t job);
  std::optional<std::uint64_t> pick(
      const std::function<bool(std::uint64_t)>& has_work);
  const std::deque<std::uint64_t>& order() const { return order_; }

 private:
  std::deque<std::uint64_t> order_;
};

struct SweepDaemonOptions {
  std::string socket_path;
  /// Loopback TCP listener: -1 = off, 0 = kernel-assigned (the chosen
  /// port lands in <daemon_dir>/tcp.port), otherwise the port itself.
  int tcp_port = -1;
  std::string results_dir;
  /// Worker command prefix; the daemon appends `--lease <file>`. Must
  /// speak the daemon-worker protocol (run_daemon_worker): the offer
  /// itself carries the plan and store paths. Empty = invalid.
  std::vector<std::string> worker_command;
  /// Concurrent worker slots. 0 = accept-only: jobs queue up but never
  /// dispatch — the deterministic substrate for queue-file tests and
  /// for staging submissions before a fleet attaches.
  std::size_t workers = 2;
  /// Extra attempts per plan point beyond the first, charged whenever a
  /// lease holding the point dies.
  std::size_t retries = 1;
  /// Batches each job is split into (0 = auto: enough for every slot to
  /// interleave, workers * 2). Clamped to the job's plan size.
  std::size_t batches_per_job = 0;
  double poll_seconds = 0.02;
  /// Kill a worker whose beat sequence stalls this long (0 = disabled).
  double stall_timeout_seconds = 0.0;
  /// Per-connection socket send timeout; a wedged client costs one
  /// connection, never the serving loop.
  double client_io_timeout_seconds = 5.0;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
};

struct DaemonJobSummary {
  std::uint64_t id = 0;
  std::string ns;
  JobState state = JobState::kQueued;
  std::size_t points = 0;
  std::size_t done_points = 0;
  std::size_t executed = 0;
  std::string error;
};

struct DaemonReport {
  bool clean_exit = false;       // drained on request, queue persisted
  std::size_t jobs_accepted = 0;
  std::size_t jobs_done = 0;
  std::size_t jobs_failed = 0;
  std::size_t engine_runs = 0;
  std::size_t protocol_errors = 0;  // connections failed by bad frames
  std::vector<DaemonJobSummary> jobs;
  std::string error;
};

class SweepDaemon {
 public:
  /// Throws std::invalid_argument on an unusable configuration (empty
  /// socket path / results_dir, empty worker command with workers > 0).
  explicit SweepDaemon(SweepDaemonOptions opts);
  ~SweepDaemon();

  /// Serves until request_drain(), streaming progress to `log`. On
  /// entry, resumes any queue file a drained predecessor left in the
  /// results directory. Failures are reported, not thrown.
  DaemonReport run(std::ostream& log);

  /// Async-signal-safe drain request (a lock-free atomic store): the
  /// serving loop finishes in-flight leases, persists the queue, answers
  /// waiters retry-later, and returns. Callable from a SIGTERM handler.
  /// Release order pairs with the serving loop's acquire load so that a
  /// *thread* requesting drain has its prior writes visible to the drain
  /// path; for the signal-handler case release is equivalent to relaxed
  /// (same thread), and both are async-signal-safe.
  void request_drain() { drain_.store(true, std::memory_order_release); }

  /// True when the namespace is usable as a file-name component:
  /// 1-64 chars of [A-Za-z0-9_-].
  static bool valid_namespace(const std::string& ns);

  static std::string daemon_dir(const std::string& results_dir);
  static std::string queue_path(const std::string& results_dir);
  static std::string manifest_path(const std::string& results_dir);
  static std::string namespace_store_path(const std::string& results_dir,
                                          const std::string& ns);
  static std::string job_spec_path(const std::string& results_dir,
                                   std::uint64_t job);

 private:
  SweepDaemonOptions opts_;
  std::atomic<bool> drain_{false};
};

/// Options for the worker half (`amsweepd --worker`). The worker knows
/// nothing about jobs or namespaces: it polls one lease file, and every
/// offer names the plan to parse and the store to extend.
struct DaemonWorkerOptions {
  std::string lease_path;
  double poll_seconds = 0.02;
  /// Give up when no fresh offer arrives for this long (0 = disabled);
  /// an orphaned worker must not poll forever.
  double idle_timeout_seconds = 600.0;
  /// Fault injection: when this file exists at batch-claim time, the
  /// worker deletes it and raises SIGKILL — at most one worker dies per
  /// marker file, deterministically, mid-lease.
  std::string test_crash_marker;
};

struct DaemonWorkerReport {
  std::size_t leases = 0;
  std::size_t points = 0;
  std::size_t executed = 0;
};

/// Runs the daemon-worker loop until a `done` offer: per fresh offer,
/// parse the offered plan (cached per plan path — fair-share dispatch
/// interleaves jobs on one slot), seed the cache from the offer's
/// seed store, run the leased points, persist the slot store, ack.
/// Durable results strictly precede every ack. Throws
/// std::invalid_argument on a malformed offer/plan (usage — exit 2 in
/// the binary) and std::runtime_error on idle timeout or I/O failure
/// (retryable — exit 3).
DaemonWorkerReport run_daemon_worker(const DaemonWorkerOptions& opts,
                                     std::ostream& log);

/// Client side of the protocol: one blocking request-reply per call.
/// Every method throws SocketError on transport failure and
/// std::runtime_error on an unparseable reply.
class DaemonClient {
 public:
  /// Connects over the Unix socket, retrying until `timeout_seconds`
  /// elapses (a daemon may still be binding); throws SocketError when
  /// nothing accepts in time.
  static DaemonClient connect_unix(const std::string& socket_path,
                                   double timeout_seconds = 5.0);
  /// Loopback-TCP variant.
  static DaemonClient connect_tcp(std::uint16_t port,
                                  double timeout_seconds = 5.0);

  DaemonReply submit(const std::string& ns, const std::string& plan_text);
  DaemonReply status(std::uint64_t job);
  DaemonReply cancel(std::uint64_t job);
  /// Blocks until the job reaches a terminal state or the daemon
  /// drains (a retry-later reply). `timeout_seconds` bounds the wait
  /// (0 = the transport default).
  DaemonReply wait(std::uint64_t job, double timeout_seconds = 0.0);

  /// Escape hatch for fault-injection tests: send raw bytes on the
  /// connection, bypassing the frame encoder.
  void send_raw(const std::string& bytes);
  Socket& socket() { return sock_; }

 private:
  explicit DaemonClient(Socket sock) : sock_(std::move(sock)) {}
  DaemonReply roundtrip(std::uint16_t type, const std::string& payload);
  Socket sock_;
};

}  // namespace am::measure

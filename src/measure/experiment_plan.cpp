#include "measure/experiment_plan.hpp"

#include <exception>
#include <stdexcept>

#include "common/rng.hpp"

namespace am::measure {

namespace {

/// Baselines (threads == 0) run no interference agents, so the nominal
/// resource is irrelevant; normalize it away for keying.
std::tuple<WorkloadId, int, std::uint32_t> key_of(WorkloadId workload,
                                                  Resource resource,
                                                  std::uint32_t threads) {
  const int r = threads == 0 ? 0 : static_cast<int>(resource) + 1;
  return {workload, r, threads};
}

std::string describe(const std::vector<std::string>& names,
                     WorkloadId workload, Resource resource,
                     std::uint32_t threads) {
  const std::string name = workload < names.size()
                               ? names[workload]
                               : "#" + std::to_string(workload);
  if (threads == 0) return name + " baseline";
  return name + " × " + resource_name(resource) + " × " +
         std::to_string(threads) + " threads";
}

}  // namespace

WorkloadId ExperimentPlan::add_workload(WorkloadSpec spec) {
  if (!spec.factory)
    throw std::invalid_argument("ExperimentPlan: workload without factory");
  workloads_.push_back(std::move(spec));
  return workloads_.size() - 1;
}

void ExperimentPlan::add_point(WorkloadId workload, Resource resource,
                               std::uint32_t threads) {
  if (workload >= workloads_.size())
    throw std::invalid_argument("ExperimentPlan: unknown workload id");
  const auto key = key_of(workload, resource, threads);
  if (!seen_.insert(key).second) return;
  points_.push_back({workload, resource, threads});
}

void ExperimentPlan::add_sweep(WorkloadId workload, Resource resource,
                               std::uint32_t lo, std::uint32_t hi) {
  for (std::uint32_t k = lo; k <= hi; ++k) add_point(workload, resource, k);
}

bool ResultTable::has(WorkloadId workload, Resource resource,
                      std::uint32_t threads) const {
  return rows_.contains(key_of(workload, resource, threads));
}

bool ResultTable::has_baseline(WorkloadId workload) const {
  return has(workload, Resource::kCacheStorage, 0);
}

const SimRunResult& ResultTable::at(WorkloadId workload, Resource resource,
                                    std::uint32_t threads) const {
  const auto it = rows_.find(key_of(workload, resource, threads));
  if (it == rows_.end())
    throw std::out_of_range(
        "ResultTable: no result for " +
        describe(workload_names_, workload, resource, threads));
  return it->second;
}

const SimRunResult& ResultTable::baseline(WorkloadId workload) const {
  return at(workload, Resource::kCacheStorage, 0);
}

double ResultTable::slowdown(WorkloadId workload, Resource resource,
                             std::uint32_t threads) const {
  return at(workload, resource, threads).seconds /
         baseline(workload).seconds;
}

SweepRunner::SweepRunner(sim::MachineConfig machine, SweepRunnerOptions opts)
    : machine_(std::move(machine)), opts_(opts) {
  machine_.validate();
}

std::uint64_t SweepRunner::seed_for(std::size_t plan_index) const {
  if (!opts_.mix_seed_per_point) return opts_.seed;
  // Mixed from the plan index only, so an experiment's seed survives any
  // reordering of execution (and any pool size).
  std::uint64_t sm = opts_.seed ^ (0x9e3779b97f4a7c15ull * (plan_index + 1));
  return splitmix64(sm);
}

ResultTable SweepRunner::run(const ExperimentPlan& plan,
                             ThreadPool* pool) const {
  const auto& points = plan.points();
  std::vector<SimRunResult> results(points.size());
  std::vector<std::exception_ptr> errors(points.size());

  auto run_one = [&](std::size_t i) {
    try {
      const ExperimentPoint& pt = points[i];
      const WorkloadSpec& w = plan.workloads()[pt.workload];
      const InterferenceSpec spec =
          pt.resource == Resource::kCacheStorage
              ? InterferenceSpec::storage(pt.threads, opts_.cs)
              : InterferenceSpec::bandwidth(pt.threads, opts_.bw);
      SimBackend backend(machine_, seed_for(i));
      results[i] = backend.run(w.factory, spec, opts_.max_cycles);
    } catch (...) {
      // Pool tasks must not throw; surface the failure after the barrier.
      errors[i] = std::current_exception();
    }
  };

  if (pool != nullptr && points.size() > 1)
    parallel_for(*pool, points.size(), opts_.grain, run_one);
  else
    for (std::size_t i = 0; i < points.size(); ++i) run_one(i);

  for (const auto& error : errors)
    if (error) std::rethrow_exception(error);

  ResultTable table;
  for (const auto& w : plan.workloads())
    table.workload_names_.push_back(w.name);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ExperimentPoint& pt = points[i];
    table.rows_.emplace(key_of(pt.workload, pt.resource, pt.threads),
                        results[i]);
  }
  return table;
}

}  // namespace am::measure

#include "measure/experiment_plan.hpp"

#include <chrono>
#include <exception>
#include <stdexcept>

#include "common/mutex.hpp"
#include "common/rng.hpp"
#include "common/work_lease.hpp"
#include "interfere/host_identity.hpp"

namespace am::measure {

namespace {

/// Baselines (threads == 0) run no interference agents, so the nominal
/// resource is irrelevant; normalize it away for keying.
std::tuple<WorkloadId, int, std::uint32_t> key_of(WorkloadId workload,
                                                  Resource resource,
                                                  std::uint32_t threads) {
  const int r = threads == 0 ? 0 : static_cast<int>(resource) + 1;
  return {workload, r, threads};
}

std::string describe(const std::vector<std::string>& names,
                     WorkloadId workload, Resource resource,
                     std::uint32_t threads) {
  const std::string name = workload < names.size()
                               ? names[workload]
                               : "#" + std::to_string(workload);
  if (threads == 0) return name + " baseline";
  return name + " × " + resource_name(resource) + " × " +
         std::to_string(threads) + " threads";
}

}  // namespace

WorkloadId ExperimentPlan::add_workload(WorkloadSpec spec) {
  if (!spec.factory)
    throw std::invalid_argument("ExperimentPlan: workload without factory");
  // Rejected here — before hours of runs — rather than by the post-run
  // ResultStore::put, whose line-oriented format cannot hold these.
  if (spec.name.find_first_of("\t\n\r") != std::string::npos)
    throw std::invalid_argument(
        "ExperimentPlan: workload name contains tab/newline: '" + spec.name +
        "'");
  for (const auto& w : workloads_)
    if (w.name == spec.name)
      throw std::invalid_argument(
          "ExperimentPlan: duplicate workload name '" + spec.name +
          "' — names identify workload + parameters in result stores");
  workloads_.push_back(std::move(spec));
  return workloads_.size() - 1;
}

std::vector<std::size_t> ExperimentPlan::shard(std::size_t index,
                                               std::size_t count) const {
  if (index >= count && count != 0)
    throw std::invalid_argument(
        "ExperimentPlan::shard: index " + std::to_string(index) +
        " out of range for " + std::to_string(count) + " shards");
  // batches() with no cost model assigns uniform-cost points greedily,
  // which is exactly the historical round-robin {i : i ≡ index (mod
  // count)} — the static front-end is the degenerate case of the
  // dynamic batcher, so both obey one determinism contract.
  return batches(count)[index].points;
}

std::vector<WorkLease> ExperimentPlan::batches(
    std::size_t count, const std::vector<double>& costs) const {
  return make_batches(points_.size(), count, costs);
}

void ExperimentPlan::add_point(WorkloadId workload, Resource resource,
                               std::uint32_t threads) {
  if (workload >= workloads_.size())
    throw std::invalid_argument("ExperimentPlan: unknown workload id");
  const auto key = key_of(workload, resource, threads);
  if (!seen_.insert(key).second) return;
  points_.push_back({workload, resource, threads});
}

void ExperimentPlan::add_sweep(WorkloadId workload, Resource resource,
                               std::uint32_t lo, std::uint32_t hi) {
  for (std::uint32_t k = lo; k <= hi; ++k) add_point(workload, resource, k);
}

bool ResultTable::has(WorkloadId workload, Resource resource,
                      std::uint32_t threads) const {
  return rows_.contains(key_of(workload, resource, threads));
}

bool ResultTable::has_baseline(WorkloadId workload) const {
  return has(workload, Resource::kCacheStorage, 0);
}

const SimRunResult* ResultTable::get(WorkloadId workload, Resource resource,
                                     std::uint32_t threads) const {
  const auto it = rows_.find(key_of(workload, resource, threads));
  return it == rows_.end() ? nullptr : &it->second;
}

const SimRunResult& ResultTable::at(WorkloadId workload, Resource resource,
                                    std::uint32_t threads) const {
  const auto it = rows_.find(key_of(workload, resource, threads));
  if (it == rows_.end())
    throw std::out_of_range(
        "ResultTable: no result for " +
        describe(workload_names_, workload, resource, threads));
  return it->second;
}

const SimRunResult& ResultTable::baseline(WorkloadId workload) const {
  return at(workload, Resource::kCacheStorage, 0);
}

double ResultTable::slowdown(WorkloadId workload, Resource resource,
                             std::uint32_t threads) const {
  return at(workload, resource, threads).seconds /
         baseline(workload).seconds;
}

SweepRunner::SweepRunner(sim::MachineConfig machine, SweepRunnerOptions opts)
    : machine_(std::move(machine)), opts_(opts) {
  machine_.validate();
  machine_fp_ = machine_fingerprint(machine_);
}

ScenarioKey SweepRunner::key_for(const ExperimentPlan& plan,
                                 std::size_t plan_index) const {
  const ExperimentPoint& pt = plan.points().at(plan_index);
  const InterferenceSpec spec =
      pt.resource == Resource::kCacheStorage
          ? InterferenceSpec::storage(pt.threads, opts_.cs)
          : InterferenceSpec::bandwidth(pt.threads, opts_.bw);
  return ScenarioKey::make(machine_fp_, plan.workloads()[pt.workload].name,
                           pt.resource, pt.threads, spec_signature(spec),
                           seed_for(plan_index), opts_.max_cycles);
}

std::uint64_t SweepRunner::seed_for(std::size_t plan_index) const {
  if (!opts_.mix_seed_per_point) return opts_.seed;
  // Mixed from the plan index only, so an experiment's seed survives any
  // reordering of execution (and any pool size).
  std::uint64_t sm = opts_.seed ^ (0x9e3779b97f4a7c15ull * (plan_index + 1));
  return splitmix64(sm);
}

ResultTable SweepRunner::run(const ExperimentPlan& plan,
                             ThreadPool* pool) const {
  return run(plan, pool, /*store=*/nullptr, ShardRange{});
}

ResultTable SweepRunner::run(const ExperimentPlan& plan, ThreadPool* pool,
                             ResultStore* store, ShardRange shard,
                             std::size_t* executed) const {
  return run_points(plan, pool, store,
                    plan.shard(shard.index, shard.count), executed);
}

std::vector<double> SweepRunner::estimate_costs(
    const ExperimentPlan& plan, const ResultStore* store) const {
  const auto& points = plan.points();
  // Heuristic: every interference thread is another agent the engine
  // simulates each cycle, so work grows roughly linearly in the thread
  // count. Relative units only — the uniform per-plan cycle budget
  // (opts_.max_cycles) multiplies every point equally and divides out.
  std::vector<double> heuristic(points.size());
  for (std::size_t i = 0; i < points.size(); ++i)
    heuristic[i] = 1.0 + points[i].threads;

  std::vector<double> measured(points.size(), 0.0);
  double measured_sum = 0.0, heuristic_sum = 0.0;
  if (store != nullptr)
    for (std::size_t i = 0; i < points.size(); ++i) {
      measured[i] = store->run_seconds(key_for(plan, i));
      if (measured[i] > 0.0) {
        measured_sum += measured[i];
        heuristic_sum += heuristic[i];
      }
    }

  // Mixed plans (some points measured, some not): bring the heuristic
  // onto the measured points' scale so the two populations are
  // comparable within one batch assignment.
  const double scale = measured_sum > 0.0 && heuristic_sum > 0.0
                           ? measured_sum / heuristic_sum
                           : 1.0;
  std::vector<double> costs(points.size());
  for (std::size_t i = 0; i < points.size(); ++i)
    costs[i] = measured[i] > 0.0 ? measured[i] : heuristic[i] * scale;
  return costs;
}

ResultTable SweepRunner::run_points(const ExperimentPlan& plan,
                                    ThreadPool* pool, ResultStore* store,
                                    const std::vector<std::size_t>& owned,
                                    std::size_t* executed) const {
  const auto& points = plan.points();
  std::vector<bool> seen(points.size(), false);
  for (const std::size_t i : owned) {
    if (i >= points.size())
      throw std::invalid_argument(
          "SweepRunner::run: plan index " + std::to_string(i) +
          " out of range for a plan of " + std::to_string(points.size()) +
          " points");
    if (seen[i])
      throw std::invalid_argument("SweepRunner::run: duplicate plan index " +
                                  std::to_string(i) + " in the work list");
    seen[i] = true;
  }

  // Cache pass (serial, read-only): slot s of `results` holds the outcome
  // of plan point owned[s]; `todo` collects the slots that must run.
  std::vector<SimRunResult> results(owned.size());
  std::vector<std::size_t> todo;
  for (std::size_t s = 0; s < owned.size(); ++s) {
    if (store != nullptr)
      if (const SimRunResult* hit = store->find(key_for(plan, owned[s]))) {
        results[s] = *hit;
        continue;
      }
    todo.push_back(s);
  }

  // One host probe for the batch; every fresh record carries it.
  const std::string host = store != nullptr && !todo.empty()
                               ? interfere::HostIdentity::detect().fingerprint()
                               : std::string();
  // Guards the shared store across pool workers. A local capability,
  // so clang's -Wthread-safety cannot attach it to members — TSan (the
  // tsan preset runs the sweep suites) checks this one dynamically.
  Mutex store_mutex;
  std::vector<std::exception_ptr> errors(todo.size());
  auto run_one = [&](std::size_t t) {
    try {
      const std::size_t i = owned[todo[t]];
      const ExperimentPoint& pt = points[i];
      const WorkloadSpec& w = plan.workloads()[pt.workload];
      const InterferenceSpec spec =
          pt.resource == Resource::kCacheStorage
              ? InterferenceSpec::storage(pt.threads, opts_.cs)
              : InterferenceSpec::bandwidth(pt.threads, opts_.bw);
      SimBackend backend(machine_, seed_for(i));
      const auto t0 = std::chrono::steady_clock::now();
      results[todo[t]] = backend.run(w.factory, spec, opts_.max_cycles);
      // Wall-clock, not simulated seconds: simulation speed varies with
      // workload complexity, and the scheduler's cost model needs the
      // former. Never part of the result — only a batching hint.
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      if (store != nullptr) {
        // Record (and optionally checkpoint) each point as it completes,
        // not after the barrier: a process killed mid-plan keeps every
        // checkpointed run (all finished ones, minus whatever a throttled
        // checkpointer skipped), so a supervised retry re-runs only
        // what's missing from the last save.
        // Completion order varies under a pool, but records are keyed and
        // the store file is canonically sorted — determinism is untouched.
        const MutexLock lock(store_mutex);
        store->put(key_for(plan, i), results[todo[t]], host, wall);
        if (opts_.checkpoint) opts_.checkpoint(*store);
      }
    } catch (...) {
      // Pool tasks must not throw; surface the failure after the barrier.
      errors[t] = std::current_exception();
    }
  };

  if (pool != nullptr && todo.size() > 1)
    parallel_for(*pool, todo.size(), opts_.grain, run_one);
  else
    for (std::size_t t = 0; t < todo.size(); ++t) run_one(t);

  for (const auto& error : errors)
    if (error) std::rethrow_exception(error);

  if (executed != nullptr) *executed = todo.size();

  ResultTable table;
  for (const auto& w : plan.workloads())
    table.workload_names_.push_back(w.name);
  for (std::size_t s = 0; s < owned.size(); ++s) {
    const ExperimentPoint& pt = points[owned[s]];
    table.rows_.emplace(key_of(pt.workload, pt.resource, pt.threads),
                        results[s]);
  }
  return table;
}

}  // namespace am::measure

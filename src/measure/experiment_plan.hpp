#pragma once
// Declarative experiment grids for the Active Measurement methodology.
//
// The paper's evaluation is one grid after another: (workload × resource ×
// interference-thread-count × mapping × app size) sweeps feeding Figs. 5-12.
// Instead of every driver hand-rolling its run list, thread-pool plumbing
// and baseline lookup, an ExperimentPlan names the scenarios once and a
// SweepRunner executes them — serially or over an am::ThreadPool — into a
// ResultTable keyed by scenario. Guarantees:
//
//   * Determinism: each experiment's engine seed is mixed from its position
//     in the plan (never from submission or completion order), so the table
//     is bit-identical for any pool size, including no pool at all.
//   * Baseline dedup: a zero-thread point is the same experiment no matter
//     which resource it nominally sweeps (no interference agents run), so
//     each workload owns exactly one baseline run shared by every slowdown
//     column.
//   * Timeout propagation: the per-run cycle budget reaches every engine,
//     and truncated runs surface as SimRunResult::timed_out.
//   * Caching & sharding: a run can consult a ResultStore (hit → reuse,
//     miss → run and record) and can execute only one shard of the plan
//     (ExperimentPlan::shard), so a grid splits across processes/machines
//     and re-running an unchanged grid costs zero engine runs. Cached and
//     recomputed tables are bit-identical.
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common/shard.hpp"
#include "common/thread_pool.hpp"
#include "measure/result_store.hpp"
#include "measure/sim_backend.hpp"

namespace am::measure {

using WorkloadId = std::size_t;

/// One workload axis entry: a factory plus the name error messages and
/// result listings identify the scenario by.
struct WorkloadSpec {
  std::string name;
  SimBackend::WorkloadFactory factory;
};

/// One executable grid point of a plan.
struct ExperimentPoint {
  WorkloadId workload = 0;
  Resource resource = Resource::kCacheStorage;
  std::uint32_t threads = 0;  // interference threads per socket
};

class ExperimentPlan {
 public:
  /// Registers a workload. Names must be unique within a plan: the name is
  /// the workload's identity in ResultStore keys (parameters belong in the
  /// name, e.g. "particles=90000"), so a duplicate would alias two
  /// different experiments. Throws std::invalid_argument on a duplicate
  /// name or a null factory.
  WorkloadId add_workload(WorkloadSpec spec);

  /// Adds one grid point. Duplicates are dropped; threads == 0 points are
  /// normalized to a single per-workload baseline regardless of resource.
  void add_point(WorkloadId workload, Resource resource,
                 std::uint32_t threads);

  /// Adds points for threads in [lo, hi] (inclusive).
  void add_sweep(WorkloadId workload, Resource resource, std::uint32_t lo,
                 std::uint32_t hi);

  const std::vector<WorkloadSpec>& workloads() const { return workloads_; }
  /// Unique points in canonical (insertion) order; the index of a point in
  /// this vector is its plan index, which seeds its engine.
  const std::vector<ExperimentPoint>& points() const { return points_; }
  std::size_t size() const { return points_.size(); }

  /// Plan indices owned by shard `index` of `count`: the round-robin slice
  /// {i : i ≡ index (mod count)}, in ascending order. For any count the
  /// shards are disjoint and cover the plan exactly; a shard keeps its
  /// points' original plan indices, so per-point seeds — and therefore
  /// results — are identical to an unsharded run. count > size() simply
  /// leaves the high shards empty. Throws std::invalid_argument when
  /// count == 0 or index >= count. Implemented as batches(count) with a
  /// uniform cost model, whose greedy assignment degenerates to exactly
  /// this round-robin slicing — the compatibility front-end of the
  /// dynamic scheduler.
  std::vector<std::size_t> shard(std::size_t index, std::size_t count) const;

  /// Splits the plan into `count` size-aware batches for dynamic
  /// scheduling (measure::SweepOrchestrator leases them to workers).
  /// `costs`, when non-empty, gives each plan index a relative cost
  /// (size() entries, finite and >= 0 — see SweepRunner::estimate_costs);
  /// empty means uniform. Assignment is greedy LPT: points in descending
  /// cost order (ties by plan index) each join the currently cheapest
  /// batch (ties by batch index), which with uniform costs reproduces the
  /// round-robin shard slices bit-exactly. Guarantees, for any cost
  /// model: the batches are disjoint, cover the plan exactly once, and
  /// keep original plan indices (ascending within a batch) — so per-point
  /// seeds, store keys, and therefore results are identical to an
  /// unsharded run no matter how the batches are scheduled. Batch ids are
  /// the batch indices; a scheduler re-issues them under fresh lease ids.
  /// Throws std::invalid_argument when count == 0 or `costs` is the
  /// wrong length or holds a negative/non-finite entry. count > size()
  /// leaves the high batches empty.
  std::vector<WorkLease> batches(std::size_t count,
                                 const std::vector<double>& costs = {}) const;

 private:
  std::vector<WorkloadSpec> workloads_;
  std::vector<ExperimentPoint> points_;
  std::set<std::tuple<WorkloadId, int, std::uint32_t>> seen_;
};

/// Results of an executed plan, keyed by scenario.
class ResultTable {
 public:
  bool has(WorkloadId workload, Resource resource,
           std::uint32_t threads) const;
  bool has_baseline(WorkloadId workload) const;

  /// The result for one grid point; throws std::out_of_range naming the
  /// scenario if the plan never ran it.
  const SimRunResult& at(WorkloadId workload, Resource resource,
                         std::uint32_t threads) const;

  /// Non-throwing lookup: the result, or nullptr when the scenario never
  /// ran (e.g. a point owned by another shard).
  const SimRunResult* get(WorkloadId workload, Resource resource,
                          std::uint32_t threads) const;

  /// The shared zero-interference run. A missing baseline is a hard error
  /// (std::out_of_range), never a silent zero: dividing by a default 0.0
  /// is how slowdown columns end up printing `inf`.
  const SimRunResult& baseline(WorkloadId workload) const;

  /// at(...).seconds / baseline(...).seconds.
  double slowdown(WorkloadId workload, Resource resource,
                  std::uint32_t threads) const;

  std::size_t size() const { return rows_.size(); }

 private:
  friend class SweepRunner;
  std::vector<std::string> workload_names_;
  std::map<std::tuple<WorkloadId, int, std::uint32_t>, SimRunResult> rows_;
};

struct SweepRunnerOptions {
  /// Per-run simulated-cycle budget, forwarded to every SimBackend::run;
  /// truncated runs come back with SimRunResult::timed_out set.
  sim::Cycles max_cycles = UINT64_MAX / 4;
  std::uint64_t seed = 1;
  /// Mix each engine seed from the experiment's plan index. Disable to run
  /// every point with `seed` verbatim — bit-compatible with the legacy
  /// serial sweep, which reused one backend (and one seed) for all levels.
  bool mix_seed_per_point = true;
  interfere::CSThrConfig cs;
  interfere::BWThrConfig bw;
  /// Chunk size for the pool's parallel_for; simulator runs are coarse, so
  /// per-point submission (grain 1) is the right default.
  std::size_t grain = 1;
  /// Invoked after each freshly executed point is recorded into the store
  /// (cache-aware run only; serialized — never concurrently). Persisting
  /// the store here (ResultStoreFile::checkpointer) bounds what a killed
  /// process loses to the runs still in flight, which is what makes a
  /// supervisor's retries cheap. Null = results reach disk only via the
  /// caller's final save.
  std::function<void(const ResultStore&)> checkpoint;
};

class SweepRunner {
 public:
  explicit SweepRunner(sim::MachineConfig machine,
                       SweepRunnerOptions opts = {});

  /// Executes every point of the plan, serially (pool == nullptr) or over
  /// the pool. The table is identical either way. The first exception any
  /// experiment throws is rethrown (in plan order) after all runs settle.
  ResultTable run(const ExperimentPlan& plan, ThreadPool* pool = nullptr) const;

  /// Cache-aware, shardable run. Only the points of `shard` enter the
  /// table; for each, a `store` hit is reused verbatim (bit-identical to a
  /// fresh run) and a miss is executed and recorded into the store. The
  /// caller persists the store (ResultStore::save) when it wants the cache
  /// durable. `executed`, when non-null, receives the number of engine
  /// runs actually performed — zero on a fully cached re-run.
  ResultTable run(const ExperimentPlan& plan, ThreadPool* pool,
                  ResultStore* store, ShardRange shard,
                  std::size_t* executed = nullptr) const;

  /// The general form every run() overload reduces to: run exactly the
  /// plan indices in `owned` (any subset — a static shard slice or a
  /// leased batch). Each fresh run is recorded into `store` together with
  /// its wall-clock (ResultStore run times feed estimate_costs). Throws
  /// std::invalid_argument on an out-of-range or duplicate index.
  ResultTable run_points(const ExperimentPlan& plan, ThreadPool* pool,
                         ResultStore* store,
                         const std::vector<std::size_t>& owned,
                         std::size_t* executed = nullptr) const;

  /// Per-point relative costs for ExperimentPlan::batches. A point whose
  /// key has a recorded wall-clock in `store` (a previous sweep ran it)
  /// costs its measured seconds; the rest fall back to a 1 + threads
  /// heuristic (more interference agents = more simulated work per
  /// cycle), rescaled onto the measured points' scale when any exist.
  /// The per-run cycle budget (options().max_cycles) is uniform across a
  /// plan, so it divides out of these relative costs. Deterministic:
  /// depends only on the plan, this runner's keys, and the store.
  std::vector<double> estimate_costs(const ExperimentPlan& plan,
                                     const ResultStore* store) const;

  /// The ResultStore key of one plan point — covers the simulated-machine
  /// fingerprint, the workload's name, the (normalized) scenario, this
  /// runner's per-index seed, and the cycle budget.
  ScenarioKey key_for(const ExperimentPlan& plan,
                      std::size_t plan_index) const;

  /// The engine seed a given plan index runs with.
  std::uint64_t seed_for(std::size_t plan_index) const;

  const sim::MachineConfig& machine() const { return machine_; }
  const SweepRunnerOptions& options() const { return opts_; }

 private:
  sim::MachineConfig machine_;
  SweepRunnerOptions opts_;
  std::string machine_fp_;  // machine_fingerprint(machine_), cached
};

}  // namespace am::measure

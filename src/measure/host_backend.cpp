#include "measure/host_backend.hpp"

#include <chrono>
#include <memory>
#include <thread>

namespace am::measure {

HostRunResult HostBackend::run(const std::function<void()>& workload,
                               const HostRunOptions& opts) {
  using Clock = std::chrono::steady_clock;

  std::vector<std::unique_ptr<interfere::HostInterferenceThread>> threads;
  // Stop-on-unwind guard: if workload() (or anything below) throws, the
  // interference threads must still be stopped and joined — leaked
  // bandwidth/cache-thrashing threads would corrupt every subsequent
  // measurement in this process. stop() is idempotent, so the explicit
  // stop on the success path below is safe to repeat here.
  struct StopGuard {
    decltype(threads)& t;
    ~StopGuard() {
      for (auto& thread : t) thread->stop();
    }
  } stop_guard{threads};
  threads.reserve(opts.count);
  for (std::uint32_t i = 0; i < opts.count; ++i) {
    if (opts.resource == Resource::kCacheStorage)
      threads.push_back(std::make_unique<interfere::HostCSThr>(
          opts.cs_buffer_bytes, /*seed=*/0x9E3779B97F4A7C15ull + i));
    else
      threads.push_back(std::make_unique<interfere::HostBWThr>(
          opts.bw_buffer_bytes, opts.bw_num_buffers));
    threads.back()->start(i < opts.cpus.size() ? opts.cpus[i] : -1);
  }
  if (opts.count > 0 && opts.settle_seconds > 0.0)
    std::this_thread::sleep_for(
        std::chrono::duration<double>(opts.settle_seconds));

  HostRunResult out;
  std::optional<PerfCounterSet> perf;
  if (opts.use_perf_counters) {
    perf.emplace();
    if (!perf->available()) perf.reset();
  }

  if (perf) perf->start();
  const auto t0 = Clock::now();
  workload();
  const auto t1 = Clock::now();
  if (perf) out.counters = perf->stop();

  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  for (auto& t : threads) {
    t->stop();
    out.interference_iterations += t->iterations();
  }
  return out;
}

}  // namespace am::measure

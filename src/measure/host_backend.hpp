#pragma once
// Host execution backend: runs a real workload function under real
// interference threads with wall-clock timing and (when permitted)
// hardware counters. This is the deployment path of the library on an
// actual shared-cache machine; the simulator backend mirrors its sweep
// semantics for reproducible experiments. Guarantees:
//
//   * Interference reaches steady state first: threads are started,
//     optionally pinned (HostRunOptions::cpus), and given settle_seconds
//     before timing begins — mirroring the paper's seconds-long
//     measurements, where cache residency is established long before the
//     measured window.
//   * Graceful counter degradation: perf_event_open is frequently
//     forbidden (containers, locked-down kernels); counters come back as
//     std::nullopt rather than failing the run, and the timing is always
//     valid.
//   * Results are *not* deterministic — this is real hardware. Records
//     from host runs are only comparable on the same machine, which is
//     why result stores carry interfere::HostIdentity fingerprints.
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "interfere/host_interference.hpp"
#include "measure/interference_spec.hpp"
#include "measure/perf_counters.hpp"

namespace am::measure {

struct HostRunResult {
  double seconds = 0.0;
  std::optional<PerfValues> counters;  // nullopt when perf is unavailable
  std::uint64_t interference_iterations = 0;
};

struct HostRunOptions {
  Resource resource = Resource::kCacheStorage;
  std::uint32_t count = 0;
  std::uint64_t cs_buffer_bytes = 4ull * 1024 * 1024;
  std::uint64_t bw_buffer_bytes = 520ull * 1024;
  std::uint32_t bw_num_buffers = 44;
  /// CPUs to pin interference threads to; empty = unpinned.
  std::vector<int> cpus;
  /// Delay before timing starts, letting interference reach steady state.
  double settle_seconds = 0.05;
  bool use_perf_counters = true;
};

class HostBackend {
 public:
  /// Starts `opts.count` interference threads, waits for them to settle,
  /// times `workload()`, stops the threads.
  HostRunResult run(const std::function<void()>& workload,
                    const HostRunOptions& opts);
};

}  // namespace am::measure

#include "measure/host_measurer.hpp"

#include "common/stats.hpp"

namespace am::measure {

int HostSweepResult::degradation_onset(double tolerance) const {
  if (points.empty()) return -1;
  const double limit = points.front().seconds_mean * (1.0 + tolerance);
  for (const auto& p : points)
    if (p.seconds_mean > limit) return static_cast<int>(p.threads);
  return -1;
}

HostSweepResult HostMeasurer::sweep(const std::function<void()>& workload,
                                    const HostSweepOptions& options) {
  HostSweepResult result;
  result.resource = options.resource;
  for (std::uint32_t k = 0; k <= options.max_threads; ++k) {
    HostRunOptions run_opts;
    run_opts.resource = options.resource;
    run_opts.count = k;
    run_opts.cs_buffer_bytes = options.cs_buffer_bytes;
    run_opts.bw_buffer_bytes = options.bw_buffer_bytes;
    run_opts.cpus = options.cpus;

    RunningStats times;
    HostSweepPoint point;
    point.threads = k;
    for (std::uint32_t rep = 0;
         rep < std::max<std::uint32_t>(1, options.repetitions); ++rep) {
      const auto run = backend_.run(workload, run_opts);
      times.add(run.seconds);
      point.counters = run.counters;
    }
    point.seconds_mean = times.mean();
    point.seconds_stddev = times.stddev();
    result.points.push_back(point);
  }
  return result;
}

}  // namespace am::measure

#include "measure/host_measurer.hpp"

#include "common/stats.hpp"

namespace am::measure {

std::optional<PerfValues> HostMeasurer::mean_counters(
    const std::vector<std::optional<PerfValues>>& samples) {
  PerfValues sums;
  std::uint64_t n = 0;
  for (const auto& s : samples) {
    if (!s) continue;  // perf can come and go per run; average what exists
    ++n;
    sums.cycles += s->cycles;
    sums.instructions += s->instructions;
    sums.cache_references += s->cache_references;
    sums.cache_misses += s->cache_misses;
  }
  if (n == 0) return std::nullopt;
  const auto mean = [n](std::uint64_t sum) { return (sum + n / 2) / n; };
  return PerfValues{mean(sums.cycles), mean(sums.instructions),
                    mean(sums.cache_references), mean(sums.cache_misses)};
}

int HostSweepResult::degradation_onset(double tolerance) const {
  if (points.empty()) return -1;
  const double limit = points.front().seconds_mean * (1.0 + tolerance);
  for (const auto& p : points)
    if (p.seconds_mean > limit) return static_cast<int>(p.threads);
  return -1;
}

HostSweepResult HostMeasurer::sweep(const std::function<void()>& workload,
                                    const HostSweepOptions& options) {
  HostSweepResult result;
  result.resource = options.resource;
  for (std::uint32_t k = 0; k <= options.max_threads; ++k) {
    HostRunOptions run_opts;
    run_opts.resource = options.resource;
    run_opts.count = k;
    run_opts.cs_buffer_bytes = options.cs_buffer_bytes;
    run_opts.bw_buffer_bytes = options.bw_buffer_bytes;
    run_opts.cpus = options.cpus;

    RunningStats times;
    HostSweepPoint point;
    point.threads = k;
    std::vector<std::optional<PerfValues>> counter_samples;
    for (std::uint32_t rep = 0;
         rep < std::max<std::uint32_t>(1, options.repetitions); ++rep) {
      const auto run = backend_.run(workload, run_opts);
      times.add(run.seconds);
      counter_samples.push_back(run.counters);
    }
    // Counters are averaged across repetitions exactly like the timings —
    // reporting only the last repetition's values would pair a mean time
    // with a single noisy counter sample.
    point.counters = mean_counters(counter_samples);
    point.seconds_mean = times.mean();
    point.seconds_stddev = times.stddev();
    result.points.push_back(point);
  }
  return result;
}

}  // namespace am::measure

#pragma once
// Host-side Active Measurement: the Fig. 1 sweep driven by real
// interference threads and wall-clock timing on the current machine. This
// is what a user runs on an actual shared-cache node; the SimBackend
// variant mirrors it for reproducible experiments.
#include <cstdint>
#include <functional>
#include <vector>

#include "measure/host_backend.hpp"

namespace am::measure {

struct HostSweepPoint {
  std::uint32_t threads = 0;
  double seconds_mean = 0.0;
  double seconds_stddev = 0.0;
  /// Per-event means over the repetitions that produced counters (rounded
  /// to the nearest count), matching how seconds_mean summarizes timing;
  /// nullopt when no repetition had counters (perf unavailable).
  std::optional<PerfValues> counters;
};

struct HostSweepOptions {
  Resource resource = Resource::kCacheStorage;
  std::uint32_t max_threads = 5;
  /// Wall-clock runs are noisy: repeat and report mean +- stddev.
  std::uint32_t repetitions = 3;
  std::uint64_t cs_buffer_bytes = 4ull * 1024 * 1024;
  std::uint64_t bw_buffer_bytes = 520ull * 1024;
  std::vector<int> cpus;  // pinning for the interference threads
};

struct HostSweepResult {
  Resource resource = Resource::kCacheStorage;
  std::vector<HostSweepPoint> points;

  /// Smallest thread count whose mean time exceeds baseline*(1+tol), or
  /// -1 when the workload never degrades (insensitive / fits).
  int degradation_onset(double tolerance = 0.05) const;
};

class HostMeasurer {
 public:
  /// Runs `workload` under 0..max_threads interference threads.
  HostSweepResult sweep(const std::function<void()>& workload,
                        const HostSweepOptions& options);

  /// Per-event rounded means over the samples that have counters; nullopt
  /// when none do. Exposed for testing — sweep() uses it to summarize
  /// repetitions.
  static std::optional<PerfValues> mean_counters(
      const std::vector<std::optional<PerfValues>>& samples);

 private:
  HostBackend backend_;
};

}  // namespace am::measure

#pragma once
// Which resource to interfere with, and with how many threads.
#include <cstdint>

#include "interfere/bwthr_agent.hpp"
#include "interfere/csthr_agent.hpp"

namespace am::measure {

enum class Resource : std::uint8_t { kCacheStorage, kBandwidth };

inline const char* resource_name(Resource r) {
  return r == Resource::kCacheStorage ? "cache-storage" : "bandwidth";
}

struct InterferenceSpec {
  Resource resource = Resource::kCacheStorage;
  /// Interference threads started *per socket* that hosts application
  /// ranks (the paper places them on each processor's free cores).
  std::uint32_t count = 0;
  interfere::CSThrConfig cs;
  interfere::BWThrConfig bw;
  /// Simulated cycles the interference threads run *before* the
  /// application starts. On real hardware the threads reach steady-state
  /// cache residency long before the (seconds-long) measurement; scaled
  /// simulations must grant them the same head start explicitly.
  std::uint64_t warmup_cycles = 1'000'000;

  static InterferenceSpec none() { return InterferenceSpec{}; }

  static InterferenceSpec storage(std::uint32_t count,
                                  interfere::CSThrConfig cfg = {}) {
    InterferenceSpec s;
    s.resource = Resource::kCacheStorage;
    s.count = count;
    s.cs = cfg;
    return s;
  }

  static InterferenceSpec bandwidth(std::uint32_t count,
                                    interfere::BWThrConfig cfg = {}) {
    InterferenceSpec s;
    s.resource = Resource::kBandwidth;
    s.count = count;
    s.bw = cfg;
    return s;
  }
};

}  // namespace am::measure

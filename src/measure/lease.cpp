#include "measure/lease.hpp"

#include <chrono>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <thread>

#include "common/work_lease.hpp"

namespace am::measure {

SchedulingFlags parse_scheduling_flags(const Cli& cli) {
  SchedulingFlags flags;
  flags.shard = cli.get_shard("shard");
  flags.lease_path = cli.get("lease", "");
  flags.emit_plan_path = cli.get("emit-plan", "");
  for (const auto* flag : {&flags.lease_path, &flags.emit_plan_path})
    if (*flag == "true")
      throw std::invalid_argument(
          "--lease/--emit-plan need a file path argument");
  const int modes = (flags.shard.sharded() ? 1 : 0) +
                    (!flags.lease_path.empty() ? 1 : 0) +
                    (!flags.emit_plan_path.empty() ? 1 : 0);
  if (modes > 1)
    throw std::invalid_argument(
        "--shard, --lease and --emit-plan are mutually exclusive");
  return flags;
}

LeaseWorkerReport run_lease_worker(const ExperimentPlan& plan,
                                   const SweepRunner& runner,
                                   ThreadPool* pool, ResultStoreFile& store,
                                   const std::string& lease_path,
                                   std::ostream& out,
                                   const LeaseWorkerOptions& opts) {
  if (store.store() == nullptr)
    throw std::invalid_argument(
        "lease worker: a result store is required — leased results only "
        "exist as store records");

  using Clock = std::chrono::steady_clock;
  LeaseWorkerReport report;
  std::optional<std::uint64_t> last_acked;
  // Last time anything happened: a fresh offer arrived or a batch
  // finished. Only genuine waiting counts against the idle timeout — a
  // batch's own (arbitrarily long) execution never may.
  auto last_activity = Clock::now();
  for (;;) {
    const auto offer = read_lease_offer(lease_path);
    const bool fresh =
        offer && (!last_acked || offer->lease.id != *last_acked);
    if (!fresh) {
      if (opts.idle_timeout_seconds > 0.0 &&
          std::chrono::duration<double>(Clock::now() - last_activity)
                  .count() > opts.idle_timeout_seconds)
        throw std::runtime_error(
            "lease worker: no offer for " +
            std::to_string(opts.idle_timeout_seconds) +
            " s — scheduler gone?");
      std::this_thread::sleep_for(
          std::chrono::duration<double>(opts.poll_seconds));
      continue;
    }
    last_activity = Clock::now();
    if (offer->done) {
      out << "lease queue drained: " << report.leases << " lease(s), "
          << report.points << " point(s), " << report.executed
          << " engine run(s)\n";
      return report;
    }

    const auto t0 = Clock::now();
    std::size_t executed = 0;
    runner.run_points(plan, pool, store.store(), offer->lease.points,
                      &executed);
    store.save();  // durable before the ack — a crash here only re-runs
                   // a fully cached batch
    LeaseAck ack;
    ack.lease_id = offer->lease.id;
    ack.points = offer->lease.points.size();
    ack.executed = executed;
    ack.wall_seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    write_lease_ack(lease_ack_path(lease_path), ack);

    last_activity = Clock::now();  // the batch ran; we were never idle
    last_acked = offer->lease.id;
    report.leases += 1;
    report.points += ack.points;
    report.executed += executed;
    out << "lease " << offer->lease.id << ": " << ack.points
        << " point(s), " << executed << " engine run(s)\n";
  }
}

void emit_plan_info(const ExperimentPlan& plan, const SweepRunner& runner,
                    const ResultStore* store, const std::string& path) {
  PlanInfo info;
  info.points = plan.size();
  info.costs = runner.estimate_costs(plan, store);
  write_plan_info(path, info);
}

}  // namespace am::measure

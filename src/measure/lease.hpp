#pragma once
// The worker half of dynamic work-queue scheduling.
//
// A lease worker is a figure driver started with `--lease <file>`
// instead of `--shard i/n`: rather than owning a fixed slice chosen at
// spawn, it loops pulling batches of plan points from its scheduler
// (measure::SweepOrchestrator) through the lease file until the
// scheduler says the queue is drained. Per batch: read the lease offer,
// run the leased plan indices through the cache-aware SweepRunner,
// persist the store, acknowledge — durable results strictly before the
// receipt, so a crash between the two merely re-runs a fully cached
// batch. Determinism is untouched: leased points keep their plan
// indices (and so their seeds and store keys), making the merged store
// bit-identical to a serial run however the batches were scheduled.
//
// The probe half (`--emit-plan <file>`) writes the plan's size and
// per-point cost estimates for the scheduler, which cannot construct
// the plan itself — only the driver knows its grid.
#include <cstddef>
#include <iosfwd>
#include <string>

#include "common/cli.hpp"
#include "common/thread_pool.hpp"
#include "measure/experiment_plan.hpp"
#include "measure/result_store.hpp"

namespace am::measure {

/// The scheduling-mode flags every orchestratable driver shares. At
/// most one of the three modes may be set; each fixes the invocation's
/// entire control flow.
struct SchedulingFlags {
  ShardRange shard;            // --shard i/n: static slice
  std::string lease_path;      // --lease FILE: dynamic lease worker
  std::string emit_plan_path;  // --emit-plan FILE: scheduler probe
};

/// Parses and validates --shard/--lease/--emit-plan in one audited
/// place (bench_util's make_context and the orchestratable examples all
/// share this contract). Throws std::invalid_argument when modes are
/// combined or a path flag arrived value-less (a value-less "--lease"
/// parses as the boolean sentinel "true" — almost certainly a missing
/// path, never a usable file name).
SchedulingFlags parse_scheduling_flags(const Cli& cli);

struct LeaseWorkerOptions {
  /// Delay between polls of the lease file while no fresh offer exists.
  double poll_seconds = 0.02;
  /// Give up (std::runtime_error, i.e. a retryable worker failure) when
  /// no fresh offer arrives for this long — an orphaned worker whose
  /// scheduler died must not poll forever. 0 disables.
  double idle_timeout_seconds = 600.0;
};

/// What one worker process did over its whole lease loop.
struct LeaseWorkerReport {
  std::size_t leases = 0;
  std::size_t points = 0;
  std::size_t executed = 0;  // engine runs (points minus cache hits)
};

/// Runs the lease-worker protocol to completion against the offer file
/// at `lease_path`. `store` must be lease-bound (ResultStoreFile::
/// for_lease on the same lease path) and is saved before every ack;
/// progress lines stream to `out`. Returns on reading a `done` offer
/// (which gets no ack — the caller's exit 0 is the receipt). Throws
/// std::runtime_error on idle timeout and
/// std::invalid_argument on a lease naming out-of-range plan indices
/// (scheduler and worker disagree about the plan — a usage error, not
/// retryable).
LeaseWorkerReport run_lease_worker(const ExperimentPlan& plan,
                                   const SweepRunner& runner,
                                   ThreadPool* pool, ResultStoreFile& store,
                                   const std::string& lease_path,
                                   std::ostream& out,
                                   const LeaseWorkerOptions& opts = {});

/// Writes the scheduler probe file for `plan`: plan size plus
/// SweepRunner::estimate_costs over `store` (nullptr = heuristic only).
void emit_plan_info(const ExperimentPlan& plan, const SweepRunner& runner,
                    const ResultStore* store, const std::string& path);

}  // namespace am::measure

#include "measure/orchestrator.hpp"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/atomic_file.hpp"
#include "common/heartbeat.hpp"
#include "interfere/host_identity.hpp"

namespace am::measure {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::string fmt_seconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", s);
  return buf;
}

/// One live worker process and the bookkeeping its manifest line needs.
struct Running {
  Subprocess proc;
  std::size_t shard = 0;
  std::size_t attempt = 0;
  Clock::time_point start;
  std::uint64_t last_beats = 0;
  bool stalled = false;
};

}  // namespace

SweepOrchestrator::SweepOrchestrator(OrchestratorOptions opts)
    : opts_(std::move(opts)) {
  if (opts_.worker_command.empty())
    throw std::invalid_argument("orchestrator: empty worker command");
  if (opts_.results_dir.empty())
    throw std::invalid_argument("orchestrator: results_dir is required");
  if (opts_.driver.empty())
    throw std::invalid_argument("orchestrator: driver name is required");
  if (opts_.shards == 0 || opts_.workers == 0)
    throw std::invalid_argument(
        "orchestrator: shards and workers must be positive");
}

std::string SweepOrchestrator::manifest_path(const std::string& results_dir,
                                             const std::string& driver) {
  return (std::filesystem::path(results_dir) / (driver + ".manifest.tsv"))
      .string();
}

std::size_t SweepOrchestrator::read_meta_executed(
    const std::string& store_path) {
  std::ifstream in(store_path + ".meta");
  if (!in) return SIZE_MAX;
  std::string key;
  std::size_t value = 0;
  while (in >> key >> value)
    if (key == "executed") return value;
  return SIZE_MAX;
}

std::vector<std::string> SweepOrchestrator::shard_argv(
    std::size_t shard) const {
  auto argv = opts_.worker_command;
  if (opts_.append_worker_flags) {
    argv.push_back("--results-dir");
    argv.push_back(opts_.results_dir);
    argv.push_back("--shard");
    argv.push_back(std::to_string(shard) + "/" +
                   std::to_string(opts_.shards));
    argv.push_back("--worker");
  }
  return argv;
}

OrchestratorReport SweepOrchestrator::run(std::ostream& log) {
  const auto t0 = Clock::now();
  OrchestratorReport report;
  try {
    std::filesystem::create_directories(opts_.results_dir);
  } catch (const std::exception& e) {
    report.error = std::string("cannot create results dir: ") + e.what();
    log << report.error << "\n";
    report.wall_seconds = seconds_since(t0);
    return report;  // no manifest: the directory it lives in is the problem
  }

  const auto shard_store = [&](std::size_t i) {
    return store_path(opts_.results_dir, opts_.driver,
                      {i, opts_.shards});
  };
  const auto shard_label = [&](std::size_t i) {
    return "shard " + std::to_string(i) + "/" + std::to_string(opts_.shards);
  };

  log << "amsweep: " << opts_.driver << ", " << opts_.shards
      << " shard(s) on " << opts_.workers << " worker slot(s), retries "
      << opts_.retries << "\n";

  std::deque<std::size_t> pending;
  for (std::size_t i = 0; i < opts_.shards; ++i) pending.push_back(i);
  std::vector<std::size_t> attempts_used(opts_.shards, 0);
  // Each successful shard's store, kept from its exit-time validation
  // load so the final merge doesn't parse every file a second time.
  std::vector<ResultStore> shard_stores(opts_.shards);
  std::vector<Running> running;
  bool abort = false;  // usage failure: stop launching, fail the sweep

  while (!pending.empty() || !running.empty()) {
    // Fill free worker slots.
    while (!abort && running.size() < opts_.workers && !pending.empty()) {
      const std::size_t shard = pending.front();
      pending.pop_front();
      Running r;
      r.shard = shard;
      r.attempt = attempts_used[shard]++;
      r.start = Clock::now();
      const auto store = shard_store(shard);
      std::error_code ec;
      std::filesystem::remove(store + ".hb", ec);  // stale from a crash
      try {
        Subprocess::Options spawn_opts;
        spawn_opts.stdout_path = store + ".log";  // stderr shares it
        // Own process group: killing a stalled worker must also take out
        // any grandchildren (wrapper-script workers), or an orphan would
        // keep writing this shard's store while the retry runs.
        spawn_opts.new_process_group = true;
        r.proc = Subprocess::spawn(shard_argv(shard), spawn_opts);
      } catch (const std::exception& e) {
        // Unspawnable command: no retry can fix a missing binary.
        report.error = e.what();
        log << shard_label(shard) << ": " << e.what() << "\n";
        abort = true;
        break;
      }
      log << shard_label(shard) << ": attempt " << r.attempt
          << " launched (pid " << r.proc.pid() << ")\n";
      running.push_back(std::move(r));
    }
    if (abort && running.empty()) break;

    // Poll the fleet: heartbeats first (liveness), then exits.
    bool progressed = false;
    for (auto it = running.begin(); it != running.end();) {
      auto& r = *it;
      const auto store = shard_store(r.shard);
      if (const auto hb = read_heartbeat(store + ".hb"))
        r.last_beats = hb->beats;
      if (!r.stalled && opts_.stall_timeout_seconds > 0.0) {
        const auto age = heartbeat_age_seconds(store + ".hb");
        // A worker can wedge before its first beat (e.g. hang during
        // startup), leaving no file to age. Commands we append --worker to
        // write a beat as soon as they start, so for those, time since
        // spawn is the equivalent staleness signal — but only while no
        // beat was ever observed: a cleanly finishing worker removes its
        // heartbeat file just before exit, and that gap must not read as
        // a stall.
        const bool never_beat = !age && opts_.append_worker_flags &&
                                r.last_beats == 0 &&
                                seconds_since(r.start) >
                                    opts_.stall_timeout_seconds;
        if ((age && *age > opts_.stall_timeout_seconds) || never_beat) {
          log << shard_label(r.shard)
              << (age ? ": heartbeat stale (" + fmt_seconds(*age) + " s)"
                      : ": no heartbeat " +
                            fmt_seconds(seconds_since(r.start)) +
                            " s after spawn")
              << " — killing pid " << r.proc.pid() << "\n";
          r.stalled = true;
          r.proc.kill();
        }
      }
      if (r.proc.running()) {
        ++it;
        continue;
      }
      progressed = true;

      ShardAttempt attempt;
      attempt.shard = r.shard;
      attempt.attempt = r.attempt;
      attempt.status = *r.proc.status();
      attempt.wall_seconds = seconds_since(r.start);
      attempt.heartbeats = r.last_beats;
      attempt.stalled = r.stalled;

      bool ok = attempt.status.success();
      std::string why = attempt.status.describe();
      if (ok) {
        // A successful worker must have left a loadable shard store; a
        // missing or corrupt one is a failure no exit code admitted to.
        try {
          shard_stores[r.shard] = ResultStore::load(store);
          attempt.executed = read_meta_executed(store);
          if (attempt.executed != SIZE_MAX)
            report.engine_runs += attempt.executed;
        } catch (const std::exception& e) {
          ok = false;
          why = std::string("store invalid after exit 0: ") + e.what();
        }
      }

      if (ok) {
        log << shard_label(r.shard) << ": done in "
            << fmt_seconds(attempt.wall_seconds) << " s ("
            << (attempt.executed == SIZE_MAX
                    ? std::string("?")
                    : std::to_string(attempt.executed))
            << " engine runs, " << attempt.heartbeats << " heartbeats)\n";
      } else if (!attempt.status.signaled &&
                 attempt.status.code == kWorkerExitUsage) {
        // The worker rejected its flags; every shard gets the same flags.
        report.error = shard_label(r.shard) + " rejected its flags (" + why +
                       ") — see " + store + ".log";
        log << report.error << "\n";
        abort = true;
      } else if (attempts_used[r.shard] <= opts_.retries) {
        log << shard_label(r.shard) << ": " << why << " in "
            << fmt_seconds(attempt.wall_seconds) << " s — retrying (attempt "
            << attempts_used[r.shard] << "/" << opts_.retries << ")\n";
        pending.push_back(r.shard);
      } else {
        log << shard_label(r.shard) << ": " << why
            << " — retry budget exhausted\n";
        report.missing_shards.push_back(r.shard);
      }
      report.attempts.push_back(std::move(attempt));
      it = running.erase(it);
    }
    if (abort) {
      // Kill whatever is still running; their shards join the missing set.
      for (auto& r : running) {
        r.proc.kill();
        r.proc.wait();
        log << shard_label(r.shard) << ": killed after abort\n";
      }
      running.clear();
      break;
    }
    if (!progressed && (!running.empty() || !pending.empty()))
      std::this_thread::sleep_for(
          std::chrono::duration<double>(opts_.poll_seconds));
  }

  if (abort) {
    // Every shard without a successful attempt is missing.
    std::vector<bool> done(opts_.shards, false);
    for (const auto& a : report.attempts)
      if (a.status.success()) done[a.shard] = true;
    report.missing_shards.clear();
    for (std::size_t i = 0; i < opts_.shards; ++i)
      if (!done[i]) report.missing_shards.push_back(i);
  }

  report.merged_path = store_path(opts_.results_dir, opts_.driver);
  if (report.missing_shards.empty() && !abort) {
    try {
      // Seed from the existing canonical file: it may hold records from
      // earlier runs (other scales, other grids), and "stale records sit
      // idle in the store" is a documented contract — completing a sweep
      // must extend the cache, never replace it.
      ResultStore merged = ResultStore::load_or_empty(report.merged_path);
      for (std::size_t i = 0; i < opts_.shards; ++i)
        merged.merge(shard_stores[i]);
      merged.save(report.merged_path);
      ResultStore::load(report.merged_path);  // validate what we wrote
      report.merged_records = merged.size();
      report.success = true;
      log << "merged " << opts_.shards << " shard store(s) -> "
          << report.merged_path << " (" << report.merged_records
          << " records, " << report.engine_runs << " engine runs total)\n";
    } catch (const std::exception& e) {
      report.error = std::string("merge failed: ") + e.what();
      log << report.error << "\n";
    }
  } else {
    log << "sweep failed; missing shard(s):";
    for (const auto s : report.missing_shards) log << " " << s;
    log << "\n";
  }

  report.wall_seconds = seconds_since(t0);
  try {
    write_manifest(report);
    log << "manifest: " << manifest_path(opts_.results_dir, opts_.driver)
        << "\n";
  } catch (const std::exception& e) {
    // A full disk after a successful merge must not turn into a thrown
    // "usage" failure: the report (and merged store) still stand.
    if (report.error.empty())
      report.error = std::string("manifest write failed: ") + e.what();
    log << "manifest write failed: " << e.what() << "\n";
  }
  return report;
}

void SweepOrchestrator::write_manifest(
    const OrchestratorReport& report) const {
  std::ostringstream out;
  out << "#am-sweep-manifest v1\n";
  out << "host\t" << interfere::HostIdentity::detect().fingerprint() << '\n';
  out << "driver\t" << opts_.driver << '\n';
  std::string cmd;
  for (const auto& a : opts_.worker_command)
    cmd += (cmd.empty() ? "" : " ") + a;
  out << "command\t" << cmd << '\n';
  out << "shards\t" << opts_.shards << '\n';
  out << "workers\t" << opts_.workers << '\n';
  out << "retries\t" << opts_.retries << '\n';
  out << "status\t" << (report.success ? "ok" : "failed") << '\n';
  if (!report.error.empty()) out << "error\t" << report.error << '\n';
  out << "merged\t" << report.merged_path << '\n';
  out << "records\t" << report.merged_records << '\n';
  out << "engine_runs\t" << report.engine_runs << '\n';
  out << "wall_seconds\t" << fmt_seconds(report.wall_seconds) << '\n';
  for (const auto s : report.missing_shards) out << "missing\t" << s << '\n';
  // attempt <shard> <attempt> <status> <wall_s> <heartbeats> <executed>
  for (const auto& a : report.attempts)
    out << "attempt\t" << a.shard << '\t' << a.attempt << '\t'
        << a.status.describe() << (a.stalled ? " [stalled]" : "") << '\t'
        << fmt_seconds(a.wall_seconds) << '\t' << a.heartbeats << '\t'
        << (a.executed == SIZE_MAX ? std::string("-")
                                   : std::to_string(a.executed))
        << '\n';
  atomic_write_file(manifest_path(opts_.results_dir, opts_.driver),
                    out.str(), "orchestrator");
}

}  // namespace am::measure

#include "measure/orchestrator.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/atomic_file.hpp"
#include "common/heartbeat.hpp"
#include "interfere/host_identity.hpp"

namespace am::measure {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::string fmt_seconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", s);
  return buf;
}

/// Supervision state shared by both scheduling modes: beat-sequence
/// progress, judged against the orchestrator's own steady clock. File
/// timestamps never enter the decision — an NTP step on the host must
/// be unable to fake a stall or mask one.
struct BeatWatch {
  std::uint64_t last_beats = 0;
  Clock::time_point last_progress;

  void observe(const std::string& hb_path) {
    if (const auto hb = read_heartbeat(hb_path))
      if (hb->beats > last_beats) {
        last_beats = hb->beats;
        last_progress = Clock::now();
      }
  }

  /// True when the worker should be presumed wedged. `spawn` anchors the
  /// never-beat case; `expect_first_beat` is append_worker_flags — only
  /// commands we appended --worker to promise a beat at startup.
  bool stalled(double timeout, Clock::time_point spawn,
               bool expect_first_beat) const {
    if (timeout <= 0.0) return false;
    if (last_beats > 0) return seconds_since(last_progress) > timeout;
    return expect_first_beat && seconds_since(spawn) > timeout;
  }

  std::string describe(Clock::time_point spawn) const {
    if (last_beats > 0)
      return "heartbeat stuck at beat " + std::to_string(last_beats) +
             " for " + fmt_seconds(seconds_since(last_progress)) + " s";
    return "no heartbeat " + fmt_seconds(seconds_since(spawn)) +
           " s after spawn";
  }
};

/// One live worker process of the static scheduler.
struct Running {
  Subprocess proc;
  std::size_t shard = 0;
  std::size_t attempt = 0;
  Clock::time_point start;
  BeatWatch watch;
  bool stalled = false;
};

/// One worker slot of the lease scheduler. A slot's process may be
/// respawned after a crash; its store file persists across respawns, so
/// re-offered batches are mostly cache hits.
struct Slot {
  Subprocess proc;
  bool live = false;
  bool closed = false;       // no work left for this slot, process gone
  bool ever_spawned = false;
  bool done_offered = false;
  std::string lease;         // lease-file path
  WorkLease current;         // offered batch (empty = none outstanding)
  bool has_current = false;
  Clock::time_point start;
  BeatWatch watch;
  bool stalled = false;
  WorkerStat stat;
};

}  // namespace

SweepOrchestrator::SweepOrchestrator(OrchestratorOptions opts)
    : opts_(std::move(opts)) {
  if (opts_.worker_command.empty())
    throw std::invalid_argument("orchestrator: empty worker command");
  if (opts_.results_dir.empty())
    throw std::invalid_argument("orchestrator: results_dir is required");
  if (opts_.driver.empty())
    throw std::invalid_argument("orchestrator: driver name is required");
  if (opts_.shards == 0 || opts_.workers == 0)
    throw std::invalid_argument(
        "orchestrator: shards and workers must be positive");
  if (opts_.schedule == Schedule::kLease && !opts_.append_worker_flags)
    throw std::invalid_argument(
        "orchestrator: lease scheduling requires the appended worker "
        "contract (--lease/--emit-plan); custom commands must use static "
        "shards");
}

std::string SweepOrchestrator::manifest_path(const std::string& results_dir,
                                             const std::string& driver) {
  return (std::filesystem::path(results_dir) / (driver + ".manifest.tsv"))
      .string();
}

std::size_t SweepOrchestrator::read_meta_executed(
    const std::string& store_path) {
  std::ifstream in(store_path + ".meta");
  if (!in) return SIZE_MAX;
  std::string key;
  std::size_t value = 0;
  while (in >> key >> value)
    if (key == "executed") return value;
  return SIZE_MAX;
}

std::vector<std::string> SweepOrchestrator::shard_argv(
    std::size_t shard) const {
  auto argv = opts_.worker_command;
  if (opts_.append_worker_flags) {
    argv.push_back("--results-dir");
    argv.push_back(opts_.results_dir);
    argv.push_back("--shard");
    argv.push_back(std::to_string(shard) + "/" +
                   std::to_string(opts_.shards));
    argv.push_back("--worker");
  }
  return argv;
}

std::vector<std::string> SweepOrchestrator::lease_argv(
    const std::string& lease_path) const {
  auto argv = opts_.worker_command;
  argv.push_back("--results-dir");
  argv.push_back(opts_.results_dir);
  argv.push_back("--lease");
  argv.push_back(lease_path);
  argv.push_back("--worker");
  return argv;
}

std::string SweepOrchestrator::lease_path(std::size_t slot) const {
  return (std::filesystem::path(opts_.results_dir) /
          (opts_.driver + ".lease" + std::to_string(slot)))
      .string();
}

std::optional<PlanInfo> SweepOrchestrator::probe_plan(
    std::ostream& log, std::string& error) const {
  if (!opts_.append_worker_flags || !opts_.probe_plan) return std::nullopt;
  const std::string plan_file =
      (std::filesystem::path(opts_.results_dir) /
       (opts_.driver + ".plan.tsv"))
          .string();
  std::error_code ec;
  std::filesystem::remove(plan_file, ec);  // stale from an earlier sweep

  auto argv = opts_.worker_command;
  argv.push_back("--results-dir");
  argv.push_back(opts_.results_dir);
  argv.push_back("--emit-plan");
  argv.push_back(plan_file);

  Subprocess probe;
  try {
    Subprocess::Options spawn_opts;
    spawn_opts.stdout_path = plan_file + ".log";
    spawn_opts.new_process_group = true;
    probe = Subprocess::spawn(argv, spawn_opts);
  } catch (const std::exception& e) {
    error = std::string("plan probe unspawnable: ") + e.what();
    return std::nullopt;
  }
  const auto t0 = Clock::now();
  while (probe.running()) {
    // The probe builds the plan but runs no experiments; a wedged probe
    // falls under the same stall policy as a wedged worker.
    if (opts_.stall_timeout_seconds > 0.0 &&
        seconds_since(t0) > opts_.stall_timeout_seconds) {
      probe.kill();
      break;
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double>(opts_.poll_seconds));
  }
  // wait() returns the cached status once the child is reaped, so this
  // never blocks twice — and never dereferences an empty optional.
  const ExitStatus status = probe.wait();
  if (!status.signaled && status.code == kWorkerExitUsage) {
    // The probe is the first process to see the flags; a rejection here
    // is the same fail-fast any worker rejection triggers.
    error = "plan probe rejected its flags (" + status.describe() +
            ") — see " + plan_file + ".log";
    return std::nullopt;
  }
  if (!status.success()) {
    log << "plan probe failed (" << status.describe()
        << ") — scheduling without plan info\n";
    return std::nullopt;
  }
  auto info = read_plan_info(plan_file);
  if (!info)
    log << "plan probe wrote no readable plan info — scheduling without "
           "it\n";
  return info;
}

OrchestratorReport SweepOrchestrator::run(std::ostream& log) {
  const auto t0 = Clock::now();
  OrchestratorReport report;
  report.schedule = opts_.schedule;
  try {
    std::filesystem::create_directories(opts_.results_dir);
  } catch (const std::exception& e) {
    report.error = std::string("cannot create results dir: ") + e.what();
    log << report.error << "\n";
    report.wall_seconds = seconds_since(t0);
    return report;  // no manifest: the directory it lives in is the problem
  }

  if (opts_.schedule == Schedule::kLease)
    run_lease(report, log);
  else
    run_static(report, log);

  report.wall_seconds = seconds_since(t0);
  try {
    write_manifest(report);
    log << "manifest: " << manifest_path(opts_.results_dir, opts_.driver)
        << "\n";
  } catch (const std::exception& e) {
    // A full disk after a successful merge must not turn into a thrown
    // "usage" failure: the report (and merged store) still stand.
    if (report.error.empty())
      report.error = std::string("manifest write failed: ") + e.what();
    log << "manifest write failed: " << e.what() << "\n";
  }
  return report;
}

void SweepOrchestrator::finish_merge(OrchestratorReport& report,
                                     const std::vector<ResultStore>& stores,
                                     std::ostream& log) const {
  report.merged_path = store_path(opts_.results_dir, opts_.driver);
  try {
    // Seed from the existing canonical file: it may hold records from
    // earlier runs (other scales, other grids), and "stale records sit
    // idle in the store" is a documented contract — completing a sweep
    // must extend the cache, never replace it.
    ResultStore merged = ResultStore::load_or_empty(report.merged_path);
    for (const auto& store : stores) merged.merge(store);
    merged.save(report.merged_path);
    ResultStore::load(report.merged_path);  // validate what we wrote
    report.merged_records = merged.size();
    report.success = true;
    log << "merged " << stores.size() << " worker store(s) -> "
        << report.merged_path << " (" << report.merged_records
        << " records, " << report.engine_runs << " engine runs total)\n";
  } catch (const std::exception& e) {
    report.error = std::string("merge failed: ") + e.what();
    log << report.error << "\n";
  }
}

void SweepOrchestrator::run_static(OrchestratorReport& report,
                                   std::ostream& log) const {
  const auto shard_store = [&](std::size_t i) {
    return store_path(opts_.results_dir, opts_.driver, {i, opts_.shards});
  };
  const auto shard_label = [&](std::size_t i) {
    return "shard " + std::to_string(i) + "/" + std::to_string(opts_.shards);
  };

  // Optional probe: knowing the plan size means round-robin slices with
  // index >= size are provably empty — never fork, supervise, and merge
  // a no-op worker for them.
  std::string probe_error;
  std::size_t scheduled = opts_.shards;
  if (const auto info = probe_plan(log, probe_error)) {
    report.plan_points = info->points;
    scheduled = std::min(opts_.shards, info->points);
    report.skipped_empty = opts_.shards - scheduled;
    if (report.skipped_empty > 0)
      log << "plan has " << info->points << " point(s): skipping "
          << report.skipped_empty << " empty shard(s)\n";
  } else if (!probe_error.empty()) {
    report.error = probe_error;
    log << report.error << "\n";
    for (std::size_t i = 0; i < opts_.shards; ++i)
      report.missing_shards.push_back(i);
    return;
  }

  log << "amsweep: " << opts_.driver << ", " << scheduled << " shard(s) on "
      << opts_.workers << " worker slot(s), retries " << opts_.retries
      << "\n";

  std::deque<std::size_t> pending;
  for (std::size_t i = 0; i < scheduled; ++i) pending.push_back(i);
  std::vector<std::size_t> attempts_used(opts_.shards, 0);
  // Each successful shard's store, kept from its exit-time validation
  // load so the final merge doesn't parse every file a second time.
  std::vector<ResultStore> shard_stores(opts_.shards);
  std::vector<Running> running;
  bool abort = false;  // usage failure: stop launching, fail the sweep

  while (!pending.empty() || !running.empty()) {
    // Fill free worker slots.
    while (!abort && running.size() < opts_.workers && !pending.empty()) {
      const std::size_t shard = pending.front();
      pending.pop_front();
      Running r;
      r.shard = shard;
      r.attempt = attempts_used[shard]++;
      r.start = Clock::now();
      r.watch.last_progress = r.start;
      const auto store = shard_store(shard);
      std::error_code ec;
      std::filesystem::remove(store + ".hb", ec);  // stale from a crash
      try {
        Subprocess::Options spawn_opts;
        spawn_opts.stdout_path = store + ".log";  // stderr shares it
        // Own process group: killing a stalled worker must also take out
        // any grandchildren (wrapper-script workers), or an orphan would
        // keep writing this shard's store while the retry runs.
        spawn_opts.new_process_group = true;
        r.proc = Subprocess::spawn(shard_argv(shard), spawn_opts);
      } catch (const std::exception& e) {
        // Unspawnable command: no retry can fix a missing binary.
        report.error = e.what();
        log << shard_label(shard) << ": " << e.what() << "\n";
        abort = true;
        break;
      }
      log << shard_label(shard) << ": attempt " << r.attempt
          << " launched (pid " << r.proc.pid() << ")\n";
      running.push_back(std::move(r));
    }
    if (abort && running.empty()) break;

    // Poll the fleet: heartbeats first (liveness), then exits.
    bool progressed = false;
    for (auto it = running.begin(); it != running.end();) {
      auto& r = *it;
      const auto store = shard_store(r.shard);
      r.watch.observe(store + ".hb");
      if (!r.stalled &&
          r.watch.stalled(opts_.stall_timeout_seconds, r.start,
                          opts_.append_worker_flags)) {
        log << shard_label(r.shard) << ": " << r.watch.describe(r.start)
            << " — killing pid " << r.proc.pid() << "\n";
        r.stalled = true;
        r.proc.kill();
      }
      if (r.proc.running()) {
        ++it;
        continue;
      }
      progressed = true;

      ShardAttempt attempt;
      attempt.shard = r.shard;
      attempt.attempt = r.attempt;
      attempt.status = r.proc.wait();  // already reaped; returns the cache
      attempt.wall_seconds = seconds_since(r.start);
      attempt.heartbeats = r.watch.last_beats;
      attempt.stalled = r.stalled;

      bool ok = attempt.status.success();
      std::string why = attempt.status.describe();
      if (ok) {
        // A successful worker must have left a loadable shard store; a
        // missing or corrupt one is a failure no exit code admitted to.
        try {
          shard_stores[r.shard] = ResultStore::load(store);
          attempt.executed = read_meta_executed(store);
          if (attempt.executed != SIZE_MAX)
            report.engine_runs += attempt.executed;
        } catch (const std::exception& e) {
          ok = false;
          why = std::string("store invalid after exit 0: ") + e.what();
        }
      }

      if (ok) {
        log << shard_label(r.shard) << ": done in "
            << fmt_seconds(attempt.wall_seconds) << " s ("
            << (attempt.executed == SIZE_MAX
                    ? std::string("?")
                    : std::to_string(attempt.executed))
            << " engine runs, " << attempt.heartbeats << " heartbeats)\n";
      } else if (!attempt.status.signaled &&
                 attempt.status.code == kWorkerExitUsage) {
        // The worker rejected its flags; every shard gets the same flags.
        report.error = shard_label(r.shard) + " rejected its flags (" + why +
                       ") — see " + store + ".log";
        log << report.error << "\n";
        abort = true;
      } else if (attempts_used[r.shard] <= opts_.retries) {
        log << shard_label(r.shard) << ": " << why << " in "
            << fmt_seconds(attempt.wall_seconds) << " s — retrying (attempt "
            << attempts_used[r.shard] << "/" << opts_.retries << ")\n";
        pending.push_back(r.shard);
      } else {
        log << shard_label(r.shard) << ": " << why
            << " — retry budget exhausted\n";
        report.missing_shards.push_back(r.shard);
      }
      report.attempts.push_back(std::move(attempt));
      it = running.erase(it);
    }
    if (abort) {
      // Kill whatever is still running; their shards join the missing set.
      for (auto& r : running) {
        r.proc.kill();
        r.proc.wait();
        log << shard_label(r.shard) << ": killed after abort\n";
      }
      running.clear();
      break;
    }
    if (!progressed && (!running.empty() || !pending.empty()))
      std::this_thread::sleep_for(
          std::chrono::duration<double>(opts_.poll_seconds));
  }

  if (abort) {
    // Every scheduled shard without a successful attempt is missing.
    std::vector<bool> done(opts_.shards, false);
    for (const auto& a : report.attempts)
      if (a.status.success()) done[a.shard] = true;
    report.missing_shards.clear();
    for (std::size_t i = 0; i < scheduled; ++i)
      if (!done[i]) report.missing_shards.push_back(i);
  }

  report.merged_path = store_path(opts_.results_dir, opts_.driver);
  if (report.missing_shards.empty() && !abort) {
    shard_stores.resize(scheduled);  // skipped empty shards have no store
    finish_merge(report, shard_stores, log);
  } else {
    log << "sweep failed; missing shard(s):";
    for (const auto s : report.missing_shards) log << " " << s;
    log << "\n";
  }
}

void SweepOrchestrator::run_lease(OrchestratorReport& report,
                                  std::ostream& log) const {
  std::string probe_error;
  const auto info = probe_plan(log, probe_error);
  if (!info) {
    report.error = !probe_error.empty()
                       ? probe_error
                       : "lease scheduling requires a successful "
                         "--emit-plan probe";
    log << report.error << "\n";
    return;
  }
  report.plan_points = info->points;
  const std::size_t n = info->points;
  if (n == 0) {
    // Nothing to lease; the canonical store is already complete.
    log << "plan has 0 points: nothing to schedule\n";
    finish_merge(report, {}, log);
    return;
  }

  // A few batches per slot so early finishers keep pulling work; large
  // grids stay bounded by the plan itself.
  std::size_t target = opts_.lease_batches != 0 ? opts_.lease_batches
                                                : opts_.workers * 4;
  target = std::min(std::max<std::size_t>(target, 1), n);
  const std::vector<double> costs =
      opts_.use_measured_costs ? info->costs : std::vector<double>{};
  auto batches = make_batches(n, target, costs);
  // Serve heaviest batches first (LPT service order) and drop empties.
  std::stable_sort(batches.begin(), batches.end(),
                   [](const WorkLease& a, const WorkLease& b) {
                     return a.cost > b.cost;
                   });
  std::deque<WorkLease> queue;
  for (auto& b : batches) {
    report.skipped_empty += b.empty() ? 1 : 0;
    if (!b.empty()) queue.push_back(std::move(b));
  }

  const std::size_t slots_n = std::min(opts_.workers, queue.size());
  log << "amsweep: " << opts_.driver << ", " << queue.size()
      << " leased batch(es) over " << n << " point(s) on " << slots_n
      << " worker slot(s), per-point retries " << opts_.retries << "\n";

  std::vector<Slot> slots(slots_n);
  for (std::size_t w = 0; w < slots_n; ++w) {
    slots[w].lease = lease_path(w);
    slots[w].stat.worker = w;
  }
  std::vector<std::size_t> failures(n, 0);  // per-point crash charges
  std::vector<bool> point_done(n, false);
  std::uint64_t next_id = 1;
  bool abort = false;

  const auto offer = [&](Slot& s, std::size_t w) {
    WorkLease lease = std::move(queue.front());
    queue.pop_front();
    lease.id = next_id++;
    LeaseOffer off;
    off.lease = lease;
    write_lease_offer(s.lease, off);
    LeaseLogEntry entry;
    entry.id = lease.id;
    entry.worker = w;
    entry.points = lease.points.size();
    entry.cost = lease.cost;
    report.leases.push_back(entry);
    s.current = std::move(lease);
    s.has_current = true;
  };
  const auto offer_done = [&](Slot& s) {
    LeaseOffer off;
    off.lease.id = next_id++;
    off.done = true;
    write_lease_offer(s.lease, off);
    s.done_offered = true;
  };
  const auto find_entry = [&](std::uint64_t id) -> LeaseLogEntry* {
    for (auto& e : report.leases)
      if (e.id == id) return &e;
    return nullptr;
  };
  /// A dead worker's outstanding batch: charge every point one failure,
  /// re-queue the survivors (their records are checkpointed, so the
  /// re-run is mostly cache hits), drop the points whose budget is gone
  /// — they surface as missing_points at the end. Survivors go back as
  /// two halves (fresh lease ids are stamped at offer time): if one
  /// poison point keeps killing workers, successive crashes bisect
  /// toward it instead of charging the whole batch's points a failure
  /// each time, and the halves can respawn on different slots.
  const auto requeue_current = [&](Slot& s, std::size_t w) {
    std::vector<std::size_t> survivors;
    std::size_t dead = 0;
    for (const std::size_t p : s.current.points) {
      if (++failures[p] > opts_.retries)
        ++dead;
      else
        survivors.push_back(p);
    }
    if (auto* e = find_entry(s.current.id)) e->completed = false;
    if (dead > 0)
      log << "worker " << w << ": " << dead
          << " point(s) exhausted their retry budget\n";
    if (!survivors.empty()) {
      const std::size_t half = survivors.size() / 2;
      const double cost_per_point =
          s.current.cost / static_cast<double>(s.current.points.size());
      WorkLease front_half;
      front_half.points.assign(survivors.begin(), survivors.begin() + half);
      WorkLease back_half;
      back_half.points.assign(survivors.begin() + half, survivors.end());
      for (auto* part : {&back_half, &front_half}) {
        if (part->empty()) continue;
        part->cost = cost_per_point * static_cast<double>(part->points.size());
        queue.push_front(std::move(*part));
      }
      if (half > 0)
        log << "worker " << w << ": batch split into " << half << " + "
            << (survivors.size() - half) << " point(s) for requeue\n";
    }
    s.has_current = false;
    s.current = WorkLease{};
  };

  try {
    while (true) {
      // Fill: spawn (or respawn) a process on every slot that has work.
      // A dead slot never holds a batch here — requeue_current always
      // returned it to the queue, where any free slot (this one
      // included) can pick it up under a fresh lease id.
      for (std::size_t w = 0; w < slots_n && !abort; ++w) {
        Slot& s = slots[w];
        if (s.live || s.closed) continue;
        if (queue.empty()) {
          s.closed = true;
          continue;
        }
        std::error_code ec;
        std::filesystem::remove(s.lease, ec);
        std::filesystem::remove(lease_ack_path(s.lease), ec);
        std::filesystem::remove(lease_heartbeat_path(s.lease), ec);
        offer(s, w);
        try {
          Subprocess::Options spawn_opts;
          spawn_opts.stdout_path = s.lease + ".log";
          spawn_opts.new_process_group = true;
          s.proc = Subprocess::spawn(lease_argv(s.lease), spawn_opts);
        } catch (const std::exception& e) {
          report.error = e.what();
          log << "worker " << w << ": " << e.what() << "\n";
          abort = true;
          break;
        }
        s.start = Clock::now();
        s.watch = BeatWatch{};
        s.watch.last_progress = s.start;
        s.stalled = false;
        s.done_offered = false;
        if (s.ever_spawned) ++s.stat.respawns;
        s.ever_spawned = true;
        s.live = true;
        log << "worker " << w << ": launched (pid " << s.proc.pid()
            << "), lease " << s.current.id << " (" << s.current.points.size()
            << " point(s))\n";
      }

      bool any_live = false;
      bool progressed = false;
      for (std::size_t w = 0; w < slots_n; ++w) {
        Slot& s = slots[w];
        if (!s.live) continue;
        s.watch.observe(lease_heartbeat_path(s.lease));
        if (!s.stalled &&
            s.watch.stalled(opts_.stall_timeout_seconds, s.start,
                            /*expect_first_beat=*/true)) {
          log << "worker " << w << ": " << s.watch.describe(s.start)
              << " — killing pid " << s.proc.pid() << "\n";
          s.stalled = true;
          s.proc.kill();
        }

        // Acks count as progress for both scheduling and supervision.
        const auto ack = read_lease_ack(lease_ack_path(s.lease));
        const bool acked =
            ack && s.has_current && ack->lease_id == s.current.id;
        if (acked) {
          progressed = true;
          s.watch.last_progress = Clock::now();
          s.stat.busy_seconds += ack->wall_seconds;
          s.stat.batches += 1;
          s.stat.points += ack->points;
          report.engine_runs += ack->executed;
          for (const std::size_t p : s.current.points) point_done[p] = true;
          if (auto* e = find_entry(s.current.id)) {
            e->completed = true;
            e->executed = ack->executed;
            e->wall_seconds = ack->wall_seconds;
          }
          log << "worker " << w << ": lease " << s.current.id << " done ("
              << ack->points << " point(s), " << ack->executed
              << " engine run(s), " << fmt_seconds(ack->wall_seconds)
              << " s)\n";
          s.has_current = false;
          s.current = WorkLease{};
        }

        if (s.proc.running()) {
          // Hand the next batch (or the shutdown offer) to a free worker.
          if (!s.has_current && !s.done_offered) {
            if (!queue.empty())
              offer(s, w);
            else
              offer_done(s);
          }
          any_live = true;
          continue;
        }

        // Process exited; its final state was judged by the ack block
        // above (an ack written just before exit still counts).
        progressed = true;
        s.live = false;
        ShardAttempt attempt;
        attempt.shard = w;
        attempt.attempt = s.stat.respawns;
        attempt.status = s.proc.wait();  // already reaped; returns the cache
        attempt.wall_seconds = seconds_since(s.start);
        attempt.heartbeats = s.watch.last_beats;
        attempt.stalled = s.stalled;
        report.attempts.push_back(attempt);

        if (!attempt.status.signaled &&
            attempt.status.code == kWorkerExitUsage) {
          report.error = "worker " + std::to_string(w) +
                         " rejected its flags (" + attempt.status.describe() +
                         ") — see " + s.lease + ".log";
          log << report.error << "\n";
          abort = true;
        } else if (s.has_current) {
          log << "worker " << w << ": " << attempt.status.describe()
              << " holding lease " << s.current.id << " — re-queueing\n";
          requeue_current(s, w);
        } else if (attempt.status.success() && s.done_offered) {
          log << "worker " << w << ": done in "
              << fmt_seconds(attempt.wall_seconds) << " s ("
              << s.stat.batches << " batch(es), "
              << fmt_seconds(s.stat.busy_seconds) << " s busy)\n";
          s.closed = true;
        } else {
          // Idle crash (or an exit 0 we never asked for): nothing to
          // charge; the fill phase respawns the slot if work remains.
          log << "worker " << w << ": " << attempt.status.describe()
              << " while idle\n";
        }
      }

      if (abort) {
        for (auto& s : slots)
          if (s.live) {
            s.proc.kill();
            s.proc.wait();
            s.live = false;
          }
        break;
      }
      // Outstanding batches always sit on a live slot or in the queue
      // (requeue_current restores a dead slot's batch to the queue), so
      // these two exhaust the termination condition.
      if (queue.empty() && !any_live) break;
      if (!progressed)
        std::this_thread::sleep_for(
            std::chrono::duration<double>(opts_.poll_seconds));
    }
  } catch (const std::exception& e) {
    // I/O failure in the lease handoff (unwritable offer, corrupt
    // store): reported, never thrown — the contract of run().
    if (report.error.empty()) report.error = e.what();
    log << "lease scheduling failed: " << e.what() << "\n";
    abort = true;
    for (auto& s : slots)
      if (s.live) {
        s.proc.kill();
        s.proc.wait();
        s.live = false;
      }
  }

  // Load-balance accounting: steals are batches a slot ran beyond an
  // even split of what actually completed.
  std::size_t total_batches = 0;
  for (const auto& s : slots) total_batches += s.stat.batches;
  const std::size_t fair =
      slots_n == 0 ? 0 : (total_batches + slots_n - 1) / slots_n;
  for (auto& s : slots) {
    WorkerStat stat = s.stat;
    stat.steals = stat.batches > fair ? stat.batches - fair : 0;
    report.worker_stats.push_back(stat);
  }

  report.missing_points.clear();
  for (std::size_t p = 0; p < n; ++p)
    if (!point_done[p]) report.missing_points.push_back(p);

  report.merged_path = store_path(opts_.results_dir, opts_.driver);
  if (!abort && report.missing_points.empty()) {
    std::vector<ResultStore> stores;
    try {
      for (std::size_t w = 0; w < slots_n; ++w)
        if (slots[w].ever_spawned)
          stores.push_back(
              ResultStore::load_or_empty(lease_store_path(slots[w].lease)));
      finish_merge(report, stores, log);
    } catch (const std::exception& e) {
      report.error = std::string("worker store unreadable: ") + e.what();
      log << report.error << "\n";
    }
  } else {
    log << "sweep failed; " << report.missing_points.size()
        << " point(s) incomplete\n";
  }
}

void SweepOrchestrator::write_manifest(
    const OrchestratorReport& report) const {
  std::ostringstream out;
  out << "#am-sweep-manifest v1\n";
  out << "host\t" << interfere::HostIdentity::detect().fingerprint() << '\n';
  out << "driver\t" << opts_.driver << '\n';
  std::string cmd;
  for (const auto& a : opts_.worker_command) {
    if (!cmd.empty()) cmd += ' ';
    cmd += a;
  }
  out << "command\t" << cmd << '\n';
  out << "schedule\t"
      << (report.schedule == Schedule::kLease ? "lease" : "static") << '\n';
  out << "shards\t" << opts_.shards << '\n';
  out << "workers\t" << opts_.workers << '\n';
  out << "retries\t" << opts_.retries << '\n';
  if (report.plan_points != SIZE_MAX)
    out << "plan_points\t" << report.plan_points << '\n';
  if (report.skipped_empty > 0)
    out << "skipped_empty\t" << report.skipped_empty << '\n';
  out << "status\t" << (report.success ? "ok" : "failed") << '\n';
  if (!report.error.empty()) out << "error\t" << report.error << '\n';
  out << "merged\t" << report.merged_path << '\n';
  out << "records\t" << report.merged_records << '\n';
  out << "engine_runs\t" << report.engine_runs << '\n';
  out << "wall_seconds\t" << fmt_seconds(report.wall_seconds) << '\n';
  for (const auto s : report.missing_shards) out << "missing\t" << s << '\n';
  for (const auto p : report.missing_points)
    out << "missing_point\t" << p << '\n';
  // attempt <shard|slot> <attempt> <status> <wall_s> <heartbeats>
  // <executed>
  for (const auto& a : report.attempts)
    out << "attempt\t" << a.shard << '\t' << a.attempt << '\t'
        << a.status.describe() << (a.stalled ? " [stalled]" : "") << '\t'
        << fmt_seconds(a.wall_seconds) << '\t' << a.heartbeats << '\t'
        << (a.executed == SIZE_MAX ? std::string("-")
                                   : std::to_string(a.executed))
        << '\n';
  // lease <id> <slot> <points> <cost> <executed> <wall_s> <ok|requeued>
  for (const auto& l : report.leases)
    out << "lease\t" << l.id << '\t' << l.worker << '\t' << l.points << '\t'
        << fmt_seconds(l.cost) << '\t'
        << (l.executed == SIZE_MAX ? std::string("-")
                                   : std::to_string(l.executed))
        << '\t' << fmt_seconds(l.wall_seconds) << '\t'
        << (l.completed ? "ok" : "requeued") << '\n';
  // worker <slot> <busy_s> <batches> <points> <respawns> <steals>
  double busy_max = 0.0, busy_sum = 0.0;
  for (const auto& ws : report.worker_stats) {
    out << "worker\t" << ws.worker << '\t' << fmt_seconds(ws.busy_seconds)
        << '\t' << ws.batches << '\t' << ws.points << '\t' << ws.respawns
        << '\t' << ws.steals << '\n';
    busy_max = std::max(busy_max, ws.busy_seconds);
    busy_sum += ws.busy_seconds;
  }
  if (!report.worker_stats.empty() && busy_sum > 0.0) {
    const double mean = busy_sum / report.worker_stats.size();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4f", busy_max / mean);
    out << "busy_max_over_mean\t" << buf << '\n';
  }
  atomic_write_file(manifest_path(opts_.results_dir, opts_.driver),
                    out.str(), "orchestrator");
}

}  // namespace am::measure

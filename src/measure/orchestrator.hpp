#pragma once
// Multi-process sweep orchestration: run one ExperimentPlan as n shard
// worker processes, supervise them, retry failures, and merge the shard
// stores into the canonical file — the supervised version of the manual
// "launch every --shard i/n by hand, then amresult merge" recipe, and the
// stepping stone to the ROADMAP's socket-fed sweep daemon. Guarantees:
//
//   * Same numbers as a serial run: shards are the disjoint round-robin
//     slices of ExperimentPlan::shard with original plan indices (and so
//     original per-point seeds), and the merge is ResultStore::merge — the
//     merged store is bit-identical to the store an unsharded run writes.
//   * Crash containment: a worker that exits non-zero or dies on a signal
//     is retried (fresh process, bounded budget). Workers checkpoint
//     their store as points complete (SweepRunnerOptions::checkpoint,
//     atomic saves, throttled to ~1/s), so a retry finds everything the
//     dead attempt checkpointed and re-runs only the recent points. A
//     worker rejecting its flags
//     (kWorkerExitUsage) aborts the whole sweep instead — every other
//     shard would reject them too.
//   * No silent holes: a shard that exhausts its retry budget fails the
//     sweep, and the run manifest names it; the manifest also records the
//     host fingerprint, per-attempt wall-clock/exit status/heartbeats,
//     and the retry log, whether the sweep succeeded or not.
//   * Liveness supervision: workers in --worker mode maintain a heartbeat
//     file next to their store; a heartbeat gone stale (stopped/wedged
//     process — invisible to waitpid) gets the worker killed and counted
//     as a failed attempt. A worker that never writes its first beat
//     within the timeout (wedged during startup) is treated the same.
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/subprocess.hpp"
#include "measure/result_store.hpp"

namespace am::measure {

/// The exit-code contract between the orchestrator and its workers
/// (bench drivers in --worker mode). Anything else — including a signal —
/// is a retryable failure.
inline constexpr int kWorkerExitOk = 0;
/// Bad flags / malformed plan spec: retrying cannot help, and every other
/// shard would fail identically, so the orchestrator aborts the sweep.
inline constexpr int kWorkerExitUsage = 2;
/// Runtime failure (exception out of the sweep); retryable.
inline constexpr int kWorkerExitRunFailed = 3;

struct OrchestratorOptions {
  /// The worker command: a figure driver plus its figure flags. The
  /// orchestrator appends `--results-dir <dir> --shard i/n --worker` to it
  /// for each shard (disable via append_worker_flags for custom workers).
  std::vector<std::string> worker_command;
  std::string results_dir;
  /// Store-file naming stem, matching what the driver passes to its
  /// ResultStoreFile — for the bench drivers, the executable name.
  std::string driver;
  std::size_t shards = 2;
  /// Worker processes running concurrently; a failed shard is retried on
  /// whichever slot frees up next.
  std::size_t workers = 2;
  /// Extra attempts per shard beyond the first.
  std::size_t retries = 1;
  double poll_seconds = 0.05;
  /// Kill a worker whose heartbeat file is older than this (0 = disabled).
  /// With append_worker_flags the command is a --worker driver, which
  /// writes its first beat at startup — so a missing heartbeat file this
  /// long after spawn counts as stalled too. Custom commands
  /// (append_worker_flags == false) are only supervised once they emit a
  /// heartbeat.
  double stall_timeout_seconds = 0.0;
  bool append_worker_flags = true;
};

/// One worker process's lifetime, as recorded in the manifest.
struct ShardAttempt {
  std::size_t shard = 0;
  std::size_t attempt = 0;  // 0 = first try
  ExitStatus status;
  double wall_seconds = 0.0;
  /// Last beat counter observed from the shard's heartbeat file (0 when
  /// the worker emitted none, e.g. non---worker test commands).
  std::uint64_t heartbeats = 0;
  /// Engine runs the worker reported via its store's .meta sidecar;
  /// SIZE_MAX when no sidecar appeared (crashed before finishing).
  std::size_t executed = SIZE_MAX;
  /// True when the orchestrator killed this worker for a stale heartbeat.
  bool stalled = false;
};

struct OrchestratorReport {
  bool success = false;
  std::vector<ShardAttempt> attempts;  // chronological retry log
  std::vector<std::size_t> missing_shards;  // exhausted their retry budget
  std::string merged_path;
  std::size_t merged_records = 0;
  /// Total engine runs across successful shard attempts — 0 for a fully
  /// cached re-run of an already-merged sweep.
  std::size_t engine_runs = 0;
  double wall_seconds = 0.0;
  std::string error;  // first fatal error (usage abort, merge conflict)
};

class SweepOrchestrator {
 public:
  /// Throws std::invalid_argument on an unusable configuration (empty
  /// command/results_dir/driver, zero shards or workers).
  explicit SweepOrchestrator(OrchestratorOptions opts);

  /// Runs the sweep to completion, streaming progress lines to `log`.
  /// Failures are reported, not thrown: the report (and the manifest on
  /// disk) always describes what happened.
  OrchestratorReport run(std::ostream& log);

  /// <results_dir>/<driver>.manifest.tsv — where run() records the
  /// outcome.
  static std::string manifest_path(const std::string& results_dir,
                                   const std::string& driver);

  /// Reads the "executed" count from a store's .meta sidecar (written by
  /// ResultStoreFile::finish); SIZE_MAX when absent or malformed.
  static std::size_t read_meta_executed(const std::string& store_path);

 private:
  std::vector<std::string> shard_argv(std::size_t shard) const;
  void write_manifest(const OrchestratorReport& report) const;

  OrchestratorOptions opts_;
};

}  // namespace am::measure

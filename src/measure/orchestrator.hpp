#pragma once
// Multi-process sweep orchestration: run one ExperimentPlan across
// supervised worker processes and merge their stores into the canonical
// file. Two scheduling modes over one worker fleet:
//
//   * Static (`Schedule::kStatic`) — the PR-4 behaviour: each worker is
//     spawned owning a fixed round-robin slice (`--shard i/n`), retries
//     are per-shard. Simple, but the sweep's wall-clock is pinned to the
//     unluckiest slice on heterogeneous grids.
//   * Lease (`Schedule::kLease`) — dynamic work-queue scheduling: the
//     orchestrator first probes the driver (`--emit-plan`) for the plan
//     size and per-point cost estimates, builds size-aware batches
//     (common/work_lease.hpp make_batches — greedy LPT over measured run
//     times when the store has them), then feeds batches to worker
//     slots (`--lease <file>`) through atomically-written lease files
//     as each slot finishes its previous batch. Crashed or stalled
//     leases are re-queued with a per-point retry budget; the manifest
//     records every lease assignment plus per-worker load-balance stats
//     (busy time, batch count, steals).
//
// Guarantees, in both modes:
//
//   * Same numbers as a serial run: workers execute original plan
//     indices (original per-point seeds), and the merge is
//     ResultStore::merge — the merged store is bit-identical to the
//     store an unsharded run writes, however the points were scheduled.
//   * Crash containment: a worker that exits non-zero or dies on a
//     signal is retried (fresh process, bounded budget — per shard in
//     static mode, per point in lease mode). Workers checkpoint their
//     store as points complete, so a retry re-runs only the recent
//     points. A worker rejecting its flags (kWorkerExitUsage) aborts the
//     whole sweep instead — every other worker would reject them too.
//   * No silent holes: exhausted retry budgets fail the sweep and the
//     manifest names the missing shards/points; the manifest also
//     records the host fingerprint, per-attempt wall-clock/exit
//     status/heartbeats, and the retry log, success or not.
//   * Liveness supervision: workers maintain a heartbeat file whose
//     payload carries a monotonic beat sequence number. Staleness is
//     judged by sequence progress against the orchestrator's own
//     steady clock — never by file timestamps, so an NTP step can
//     neither fake a stall nor mask one. A worker that never writes its
//     first beat within the timeout is treated the same.
//   * No no-op workers: shards/leases that would own zero plan points
//     (plan smaller than the shard count) are never spawned at all when
//     the plan size is known from a probe.
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "common/subprocess.hpp"
#include "common/work_lease.hpp"
#include "measure/result_store.hpp"

namespace am::measure {

/// The exit-code contract between the orchestrator and its workers
/// (bench drivers in --worker mode). Anything else — including a signal —
/// is a retryable failure.
inline constexpr int kWorkerExitOk = 0;
/// Bad flags / malformed plan spec: retrying cannot help, and every other
/// shard would fail identically, so the orchestrator aborts the sweep.
inline constexpr int kWorkerExitUsage = 2;
/// Runtime failure (exception out of the sweep); retryable.
inline constexpr int kWorkerExitRunFailed = 3;

/// How plan points are assigned to workers.
enum class Schedule {
  kStatic,  // fixed --shard i/n slices chosen at spawn
  kLease,   // batches leased from a queue as workers free up
};

struct OrchestratorOptions {
  /// The worker command: a figure driver plus its figure flags. The
  /// orchestrator appends `--results-dir <dir> --shard i/n --worker`
  /// (static) or `--results-dir <dir> --lease <file> --worker` (lease)
  /// to it per worker (disable via append_worker_flags for custom
  /// static workers; lease mode requires the appended contract).
  std::vector<std::string> worker_command;
  std::string results_dir;
  /// Store-file naming stem, matching what the driver passes to its
  /// ResultStoreFile — for the bench drivers, the executable name.
  std::string driver;
  Schedule schedule = Schedule::kStatic;
  std::size_t shards = 2;
  /// Worker processes running concurrently; a failed shard/lease is
  /// retried on whichever slot frees up next.
  std::size_t workers = 2;
  /// Extra attempts beyond the first — per shard (static) or per plan
  /// point (lease; a point is charged whenever a lease holding it dies).
  std::size_t retries = 1;
  double poll_seconds = 0.05;
  /// Kill a worker whose beat sequence has not advanced for this long
  /// (0 = disabled). With append_worker_flags the command is a --worker
  /// driver, which writes its first beat at startup — so a worker with
  /// no beat at all this long after spawn counts as stalled too. Custom
  /// commands (append_worker_flags == false) are only supervised once
  /// they emit a beat.
  double stall_timeout_seconds = 0.0;
  bool append_worker_flags = true;
  /// Probe the driver with `--emit-plan` before scheduling, to learn the
  /// plan size (skip empty shards/leases) and per-point costs (lease
  /// batching). Static mode degrades gracefully without a probe; lease
  /// mode requires one. Only attempted when append_worker_flags is set
  /// — a custom command has no probe contract.
  bool probe_plan = true;
  /// Lease mode: target number of batches (0 = auto, a few per worker
  /// slot so early finishers keep pulling work). Clamped to the plan.
  std::size_t lease_batches = 0;
  /// Lease mode: use measured per-point run times from the store's
  /// sidecar (via the probe) for batch sizing; false = uniform costs.
  bool use_measured_costs = true;
};

/// One worker process's lifetime, as recorded in the manifest. In lease
/// mode `shard` is the worker slot and `attempt` its respawn ordinal.
struct ShardAttempt {
  std::size_t shard = 0;
  std::size_t attempt = 0;  // 0 = first try
  ExitStatus status;
  double wall_seconds = 0.0;
  /// Last beat counter observed from the worker's heartbeat file (0 when
  /// the worker emitted none, e.g. non---worker test commands).
  std::uint64_t heartbeats = 0;
  /// Engine runs the worker reported via its store's .meta sidecar;
  /// SIZE_MAX when no sidecar appeared (crashed before finishing, or a
  /// lease worker — those report executed counts per lease instead).
  std::size_t executed = SIZE_MAX;
  /// True when the orchestrator killed this worker for a stale
  /// (sequence-stuck) heartbeat.
  bool stalled = false;
};

/// One lease's journey through the queue, as recorded in the manifest.
struct LeaseLogEntry {
  std::uint64_t id = 0;
  std::size_t worker = 0;     // slot it was offered to
  std::size_t points = 0;
  double cost = 0.0;          // scheduler's estimate, relative units
  std::size_t executed = SIZE_MAX;  // SIZE_MAX until acknowledged
  double wall_seconds = 0.0;
  bool completed = false;  // false = worker died holding it (re-queued)
};

/// Per-worker-slot load-balance accounting (lease mode).
struct WorkerStat {
  std::size_t worker = 0;
  double busy_seconds = 0.0;  // sum of acknowledged lease wall-clocks
  std::size_t batches = 0;
  std::size_t points = 0;
  std::size_t respawns = 0;  // crash/stall recoveries on this slot
  /// Batches this slot ran beyond an even share — work it pulled that a
  /// static partition would have left queued behind a slower worker.
  std::size_t steals = 0;
};

struct OrchestratorReport {
  bool success = false;
  Schedule schedule = Schedule::kStatic;
  std::vector<ShardAttempt> attempts;  // chronological retry log
  std::vector<std::size_t> missing_shards;  // exhausted their retry budget
  /// Lease mode: plan points whose per-point retry budget ran out.
  std::vector<std::size_t> missing_points;
  std::vector<LeaseLogEntry> leases;
  std::vector<WorkerStat> worker_stats;
  /// Shards/leases never spawned because the probed plan left them no
  /// points.
  std::size_t skipped_empty = 0;
  std::size_t plan_points = SIZE_MAX;  // SIZE_MAX = no probe answer
  std::string merged_path;
  std::size_t merged_records = 0;
  /// Total engine runs across successful shard attempts / acknowledged
  /// leases — 0 for a fully cached re-run of an already-merged sweep.
  std::size_t engine_runs = 0;
  double wall_seconds = 0.0;
  std::string error;  // first fatal error (usage abort, merge conflict)
};

class SweepOrchestrator {
 public:
  /// Throws std::invalid_argument on an unusable configuration (empty
  /// command/results_dir/driver, zero shards or workers, lease mode
  /// without append_worker_flags).
  explicit SweepOrchestrator(OrchestratorOptions opts);

  /// Runs the sweep to completion, streaming progress lines to `log`.
  /// Failures are reported, not thrown: the report (and the manifest on
  /// disk) always describes what happened.
  OrchestratorReport run(std::ostream& log);

  /// <results_dir>/<driver>.manifest.tsv — where run() records the
  /// outcome.
  static std::string manifest_path(const std::string& results_dir,
                                   const std::string& driver);

  /// Reads the "executed" count from a store's .meta sidecar (written by
  /// ResultStoreFile::finish); SIZE_MAX when absent or malformed.
  static std::size_t read_meta_executed(const std::string& store_path);

 private:
  std::vector<std::string> shard_argv(std::size_t shard) const;
  std::vector<std::string> lease_argv(const std::string& lease_path) const;
  std::string lease_path(std::size_t slot) const;
  /// Runs the --emit-plan probe; nullopt when the command has no probe
  /// contract or the probe failed (`error` set on a usage rejection).
  std::optional<PlanInfo> probe_plan(std::ostream& log,
                                     std::string& error) const;
  void run_static(OrchestratorReport& report, std::ostream& log) const;
  void run_lease(OrchestratorReport& report, std::ostream& log) const;
  void finish_merge(OrchestratorReport& report,
                    const std::vector<ResultStore>& stores,
                    std::ostream& log) const;
  void write_manifest(const OrchestratorReport& report) const;

  OrchestratorOptions opts_;
};

}  // namespace am::measure

#include "measure/perf_counters.hpp"

#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/errno_string.hpp"

namespace am::measure {

namespace {

int perf_open(std::uint32_t type, std::uint64_t config) {
  perf_event_attr attr{};
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.disabled = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  return static_cast<int>(syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                                  /*cpu=*/-1, /*group_fd=*/-1, /*flags=*/0));
}

}  // namespace

PerfCounterSet::PerfCounterSet() {
  struct Want {
    std::uint64_t config;
    int kind;
  };
  const Want wants[] = {
      {PERF_COUNT_HW_CPU_CYCLES, 0},
      {PERF_COUNT_HW_INSTRUCTIONS, 1},
      {PERF_COUNT_HW_CACHE_REFERENCES, 2},
      {PERF_COUNT_HW_CACHE_MISSES, 3},
  };
  for (const auto& w : wants) {
    const int fd = perf_open(PERF_TYPE_HARDWARE, w.config);
    if (fd >= 0) {
      fds_.push_back(fd);
      kinds_.push_back(w.kind);
    } else if (fds_.empty() && reason_.empty()) {
      reason_ = "perf_event_open: " + errno_string(errno);
    }
  }
  if (fds_.empty() && reason_.empty()) reason_ = "no counters opened";
}

PerfCounterSet::~PerfCounterSet() { close_all(); }

PerfCounterSet::PerfCounterSet(PerfCounterSet&& other) noexcept
    : fds_(std::move(other.fds_)),
      kinds_(std::move(other.kinds_)),
      reason_(std::move(other.reason_)) {
  other.fds_.clear();
}

PerfCounterSet& PerfCounterSet::operator=(PerfCounterSet&& other) noexcept {
  if (this != &other) {
    close_all();
    fds_ = std::move(other.fds_);
    kinds_ = std::move(other.kinds_);
    reason_ = std::move(other.reason_);
    other.fds_.clear();
  }
  return *this;
}

void PerfCounterSet::close_all() {
  for (const int fd : fds_) close(fd);
  fds_.clear();
}

void PerfCounterSet::start() {
  for (const int fd : fds_) {
    ioctl(fd, PERF_EVENT_IOC_RESET, 0);
    ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
  }
}

PerfValues PerfCounterSet::stop() {
  PerfValues out;
  for (std::size_t i = 0; i < fds_.size(); ++i) {
    ioctl(fds_[i], PERF_EVENT_IOC_DISABLE, 0);
    std::uint64_t value = 0;
    if (read(fds_[i], &value, sizeof(value)) != sizeof(value)) continue;
    switch (kinds_[i]) {
      case 0: out.cycles = value; break;
      case 1: out.instructions = value; break;
      case 2: out.cache_references = value; break;
      case 3: out.cache_misses = value; break;
      default: break;
    }
  }
  return out;
}

}  // namespace am::measure

#pragma once
// Thin perf_event_open wrapper: the host-side analogue of the hardware
// counters the paper reads (L3 misses/references, cycles). Guarantees:
//
//   * Never fatal: containers and locked-down kernels frequently forbid
//     perf (perf_event_paranoid, seccomp); every failure mode degrades to
//     available() == false with the reason recorded, so measurement code
//     can fall back to wall-clock-only results instead of aborting.
//   * Best-effort breadth: the cycle counter gates availability; the
//     instruction/cache counters are opened opportunistically and simply
//     read 0 when the PMU denies them.
//   * Move-only ownership: the set owns its fds; moved-from sets are
//     empty and safely destructible.
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace am::measure {

struct PerfValues {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_references = 0;
  std::uint64_t cache_misses = 0;

  double cache_miss_rate() const {
    return cache_references
               ? static_cast<double>(cache_misses) /
                     static_cast<double>(cache_references)
               : 0.0;
  }
};

/// A group of per-process hardware counters. Move-only (owns fds).
class PerfCounterSet {
 public:
  PerfCounterSet();
  ~PerfCounterSet();

  PerfCounterSet(PerfCounterSet&& other) noexcept;
  PerfCounterSet& operator=(PerfCounterSet&& other) noexcept;
  PerfCounterSet(const PerfCounterSet&) = delete;
  PerfCounterSet& operator=(const PerfCounterSet&) = delete;

  /// True when at least the cycle counter opened successfully.
  bool available() const { return !fds_.empty(); }

  /// Why the counters are unavailable (empty when available).
  const std::string& unavailable_reason() const { return reason_; }

  void start();                 // reset + enable
  PerfValues stop();            // disable + read

 private:
  void close_all();

  std::vector<int> fds_;        // cycles, instructions, refs, misses order
  std::vector<int> kinds_;      // index into PerfValues fields
  std::string reason_;
};

}  // namespace am::measure

#include "measure/plan_wire.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "measure/app_workloads.hpp"

namespace am::measure {

namespace {

constexpr const char* kHeader = "#am-plan-spec v1";

std::string num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

[[noreturn]] void bad(std::size_t lineno, const std::string& why) {
  throw std::invalid_argument("plan-spec line " + std::to_string(lineno) +
                              ": " + why);
}

std::vector<std::string> split_tabs(const std::string& line) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t tab = line.find('\t', start);
    if (tab == std::string::npos) {
      out.push_back(line.substr(start));
      return out;
    }
    out.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
}

std::uint64_t parse_u64(const std::string& s, std::size_t lineno,
                        const char* what) {
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos)
    bad(lineno, std::string(what) + " must be a non-negative integer, got '" +
                    s + "'");
  errno = 0;
  const std::uint64_t v = std::strtoull(s.c_str(), nullptr, 10);
  if (errno == ERANGE) bad(lineno, std::string(what) + " out of range");
  return v;
}

std::uint32_t parse_u32(const std::string& s, std::size_t lineno,
                        const char* what) {
  const std::uint64_t v = parse_u64(s, lineno, what);
  if (v > UINT32_MAX) bad(lineno, std::string(what) + " out of range");
  return static_cast<std::uint32_t>(v);
}

double parse_double(const std::string& s, std::size_t lineno,
                    const char* what) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (s.empty() || end != s.c_str() + s.size() || errno == ERANGE)
    bad(lineno, std::string(what) + " must be a number, got '" + s + "'");
  return v;
}

const char* dist_kind_name(model::DistKind kind) {
  switch (kind) {
    case model::DistKind::kNormal: return "normal";
    case model::DistKind::kExponential: return "exponential";
    case model::DistKind::kTriangular: return "triangular";
    case model::DistKind::kUniform: return "uniform";
  }
  return "uniform";
}

model::DistKind parse_dist_kind(const std::string& s, std::size_t lineno) {
  if (s == "normal") return model::DistKind::kNormal;
  if (s == "exponential") return model::DistKind::kExponential;
  if (s == "triangular") return model::DistKind::kTriangular;
  if (s == "uniform") return model::DistKind::kUniform;
  bad(lineno, "unknown distribution kind '" + s +
                  "' (normal|exponential|triangular|uniform)");
}

Resource parse_resource_word(const std::string& s, std::size_t lineno) {
  for (const Resource r : {Resource::kCacheStorage, Resource::kBandwidth})
    if (s == resource_name(r)) return r;
  bad(lineno, "unknown resource '" + s + "' (cache-storage|bandwidth)");
}

void check_name(const std::string& name, const char* what) {
  if (name.empty())
    throw std::invalid_argument(std::string("plan-spec: ") + what +
                                " must not be empty");
  if (name.find('\t') != std::string::npos ||
      name.find('\n') != std::string::npos)
    throw std::invalid_argument(std::string("plan-spec: ") + what + " '" +
                                name + "' contains a tab or newline");
}

}  // namespace

bool operator==(const WorkloadWire& a, const WorkloadWire& b) {
  return a.kind == b.kind && a.name == b.name && a.dist == b.dist &&
         a.dist_name == b.dist_name && a.n == b.n && a.dist_a == b.dist_a &&
         a.dist_b == b.dist_b && a.element_bytes == b.element_bytes &&
         a.compute_ops == b.compute_ops &&
         a.warmup_accesses == b.warmup_accesses &&
         a.measured_accesses == b.measured_accesses && a.ranks == b.ranks &&
         a.per_socket == b.per_socket && a.particles == b.particles &&
         a.edge == b.edge && a.steps == b.steps && a.app_scale == b.app_scale;
}

bool operator==(const PointWire& a, const PointWire& b) {
  return a.workload == b.workload && a.resource == b.resource &&
         a.threads == b.threads;
}

bool operator==(const PlanSpec& a, const PlanSpec& b) {
  return a.machine_scale == b.machine_scale &&
         a.machine_nodes == b.machine_nodes &&
         a.mem_backend == b.mem_backend && a.seed == b.seed &&
         a.max_cycles == b.max_cycles &&
         a.mix_seed_per_point == b.mix_seed_per_point &&
         a.cs.buffer_bytes == b.cs.buffer_bytes &&
         a.cs.batch_size == b.cs.batch_size &&
         a.bw.buffer_bytes == b.bw.buffer_bytes &&
         a.bw.num_buffers == b.bw.num_buffers &&
         a.bw.line_stride == b.bw.line_stride &&
         a.bw.index_compute_cycles == b.bw.index_compute_cycles &&
         a.bw.buffers_per_step == b.bw.buffers_per_step &&
         a.workloads == b.workloads && a.points == b.points;
}

std::string serialize_plan_spec(const PlanSpec& spec) {
  if (spec.machine_scale == 0)
    throw std::invalid_argument("plan-spec: machine scale must be >= 1");
  check_name(spec.mem_backend, "memory backend");
  std::ostringstream out;
  out << kHeader << '\n';
  out << "machine\tscale\t" << spec.machine_scale << "\tnodes\t"
      << spec.machine_nodes << "\tbackend\t" << spec.mem_backend << '\n';
  out << "run\tseed\t" << spec.seed << "\tmax_cycles\t" << spec.max_cycles
      << "\tmix_seed\t" << (spec.mix_seed_per_point ? 1 : 0) << '\n';
  out << "cs\t" << spec.cs.buffer_bytes << '\t' << spec.cs.batch_size << '\n';
  out << "bw\t" << spec.bw.buffer_bytes << '\t' << spec.bw.num_buffers << '\t'
      << spec.bw.line_stride << '\t' << spec.bw.index_compute_cycles << '\t'
      << spec.bw.buffers_per_step << '\n';
  for (const auto& w : spec.workloads) {
    check_name(w.name, "workload name");
    switch (w.kind) {
      case WorkloadWire::Kind::kSynthetic: {
        std::string dist_name = w.dist_name.empty() ? w.name : w.dist_name;
        check_name(dist_name, "distribution name");
        out << "workload\tsynthetic\t" << w.name << '\t' << dist_name << '\t'
            << dist_kind_name(w.dist) << '\t' << w.n << '\t' << num(w.dist_a)
            << '\t' << num(w.dist_b) << '\t' << w.element_bytes << '\t'
            << w.compute_ops << '\t' << w.warmup_accesses << '\t'
            << w.measured_accesses << '\n';
        break;
      }
      case WorkloadWire::Kind::kMcb:
        out << "workload\tmcb\t" << w.name << '\t' << w.ranks << '\t'
            << w.per_socket << '\t' << w.particles << '\t' << w.steps << '\t'
            << w.app_scale << '\n';
        break;
      case WorkloadWire::Kind::kLulesh:
        out << "workload\tlulesh\t" << w.name << '\t' << w.ranks << '\t'
            << w.per_socket << '\t' << w.edge << '\t' << w.steps << '\t'
            << w.app_scale << '\n';
        break;
    }
  }
  for (const auto& p : spec.points) {
    if (p.workload >= spec.workloads.size())
      throw std::invalid_argument(
          "plan-spec: point references workload " +
          std::to_string(p.workload) + " but only " +
          std::to_string(spec.workloads.size()) + " are declared");
    out << "point\t" << p.workload << '\t' << resource_name(p.resource)
        << '\t' << p.threads << '\n';
  }
  out << "end\n";
  return out.str();
}

PlanSpec parse_plan_spec(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kHeader)
    throw std::invalid_argument(
        std::string("plan-spec: missing '") + kHeader + "' header");
  PlanSpec spec;
  bool saw_machine = false, saw_run = false, saw_end = false;
  std::size_t lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (saw_end) bad(lineno, "content after the 'end' trailer");
    const std::vector<std::string> f = split_tabs(line);
    const std::string& key = f[0];
    if (key == "machine") {
      if (f.size() != 7 || f[1] != "scale" || f[3] != "nodes" ||
          f[5] != "backend")
        bad(lineno, "machine line must be "
                    "'machine\\tscale\\tS\\tnodes\\tN\\tbackend\\tB'");
      spec.machine_scale = parse_u32(f[2], lineno, "machine scale");
      if (spec.machine_scale == 0) bad(lineno, "machine scale must be >= 1");
      spec.machine_nodes = parse_u32(f[4], lineno, "machine nodes");
      if (spec.machine_nodes == 0) bad(lineno, "machine nodes must be >= 1");
      spec.mem_backend = f[6];
      if (spec.mem_backend.empty()) bad(lineno, "empty memory backend");
      saw_machine = true;
    } else if (key == "run") {
      if (f.size() != 7 || f[1] != "seed" || f[3] != "max_cycles" ||
          f[5] != "mix_seed")
        bad(lineno, "run line must be "
                    "'run\\tseed\\tS\\tmax_cycles\\tC\\tmix_seed\\t0|1'");
      spec.seed = parse_u64(f[2], lineno, "seed");
      spec.max_cycles = parse_u64(f[4], lineno, "max_cycles");
      if (f[6] != "0" && f[6] != "1") bad(lineno, "mix_seed must be 0 or 1");
      spec.mix_seed_per_point = f[6] == "1";
      saw_run = true;
    } else if (key == "cs") {
      if (f.size() != 3) bad(lineno, "cs line must carry 2 fields");
      spec.cs.buffer_bytes = parse_u64(f[1], lineno, "cs buffer_bytes");
      spec.cs.batch_size = parse_u32(f[2], lineno, "cs batch_size");
    } else if (key == "bw") {
      if (f.size() != 6) bad(lineno, "bw line must carry 5 fields");
      spec.bw.buffer_bytes = parse_u64(f[1], lineno, "bw buffer_bytes");
      spec.bw.num_buffers = parse_u32(f[2], lineno, "bw num_buffers");
      spec.bw.line_stride = parse_u32(f[3], lineno, "bw line_stride");
      spec.bw.index_compute_cycles =
          parse_u32(f[4], lineno, "bw index_compute_cycles");
      spec.bw.buffers_per_step = parse_u32(f[5], lineno, "bw buffers_per_step");
    } else if (key == "workload") {
      if (f.size() < 2) bad(lineno, "workload line missing its kind");
      WorkloadWire w;
      if (f[1] == "synthetic") {
        if (f.size() != 12)
          bad(lineno, "synthetic workload must carry 10 fields");
        w.kind = WorkloadWire::Kind::kSynthetic;
        w.name = f[2];
        w.dist_name = f[3];
        w.dist = parse_dist_kind(f[4], lineno);
        w.n = parse_u64(f[5], lineno, "buffer elements");
        if (w.n == 0) bad(lineno, "buffer elements must be >= 1");
        w.dist_a = parse_double(f[6], lineno, "distribution parameter a");
        w.dist_b = parse_double(f[7], lineno, "distribution parameter b");
        w.element_bytes = parse_u64(f[8], lineno, "element_bytes");
        w.compute_ops = parse_u32(f[9], lineno, "compute_ops");
        w.warmup_accesses = parse_u64(f[10], lineno, "warmup_accesses");
        w.measured_accesses = parse_u64(f[11], lineno, "measured_accesses");
      } else if (f[1] == "mcb" || f[1] == "lulesh") {
        if (f.size() != 8)
          bad(lineno, f[1] + " workload must carry 6 fields");
        w.kind = f[1] == "mcb" ? WorkloadWire::Kind::kMcb
                               : WorkloadWire::Kind::kLulesh;
        w.name = f[2];
        w.ranks = parse_u32(f[3], lineno, "ranks");
        if (w.ranks == 0) bad(lineno, "ranks must be >= 1");
        w.per_socket = parse_u32(f[4], lineno, "per_socket");
        if (w.per_socket == 0) bad(lineno, "per_socket must be >= 1");
        const char* dim = w.kind == WorkloadWire::Kind::kMcb ? "particles"
                                                             : "edge";
        const std::uint32_t size = parse_u32(f[5], lineno, dim);
        if (size == 0) bad(lineno, std::string(dim) + " must be >= 1");
        (w.kind == WorkloadWire::Kind::kMcb ? w.particles : w.edge) = size;
        w.steps = parse_u32(f[6], lineno, "steps");
        w.app_scale = parse_u32(f[7], lineno, "app scale");
        if (w.app_scale == 0) bad(lineno, "app scale must be >= 1");
      } else {
        bad(lineno, "unknown workload kind '" + f[1] +
                        "' (synthetic|mcb|lulesh)");
      }
      if (w.name.empty()) bad(lineno, "empty workload name");
      spec.workloads.push_back(std::move(w));
    } else if (key == "point") {
      if (f.size() != 4) bad(lineno, "point line must carry 3 fields");
      PointWire p;
      p.workload =
          static_cast<std::size_t>(parse_u64(f[1], lineno, "workload index"));
      p.resource = parse_resource_word(f[2], lineno);
      p.threads = parse_u32(f[3], lineno, "threads");
      spec.points.push_back(p);
    } else if (key == "end") {
      saw_end = true;
    } else {
      bad(lineno, "unknown keyword '" + key + "'");
    }
  }
  if (!saw_end)
    throw std::invalid_argument(
        "plan-spec: missing 'end' trailer (truncated spec)");
  if (!saw_machine) throw std::invalid_argument("plan-spec: no machine line");
  if (!saw_run) throw std::invalid_argument("plan-spec: no run line");
  for (const auto& p : spec.points)
    if (p.workload >= spec.workloads.size())
      throw std::invalid_argument(
          "plan-spec: point references workload " +
          std::to_string(p.workload) + " but only " +
          std::to_string(spec.workloads.size()) + " are declared");
  return spec;
}

sim::MachineConfig make_machine(const PlanSpec& spec) {
  sim::MachineConfig machine =
      sim::MachineConfig::xeon20mb_scaled(spec.machine_scale,
                                          spec.machine_nodes);
  sim::apply_mem_backend(machine, spec.mem_backend);
  return machine;
}

ExperimentPlan build_plan(const PlanSpec& spec) {
  ExperimentPlan plan;
  for (const auto& w : spec.workloads) {
    switch (w.kind) {
      case WorkloadWire::Kind::kSynthetic: {
        const std::string dist_name =
            w.dist_name.empty() ? w.name : w.dist_name;
        model::AccessDistribution dist = [&] {
          switch (w.dist) {
            case model::DistKind::kNormal:
              return model::AccessDistribution::normal(w.n, w.dist_a,
                                                       w.dist_b, dist_name);
            case model::DistKind::kExponential:
              return model::AccessDistribution::exponential(w.n, w.dist_a,
                                                            dist_name);
            case model::DistKind::kTriangular:
              return model::AccessDistribution::triangular(w.n, w.dist_a,
                                                           dist_name);
            case model::DistKind::kUniform:
              break;
          }
          return model::AccessDistribution::uniform(w.n, dist_name);
        }();
        apps::SyntheticConfig cfg{std::move(dist)};
        cfg.element_bytes = w.element_bytes;
        cfg.compute_ops = w.compute_ops;
        cfg.warmup_accesses = w.warmup_accesses;
        cfg.measured_accesses = w.measured_accesses;
        plan.add_workload({w.name, make_synthetic_workload(std::move(cfg))});
        break;
      }
      case WorkloadWire::Kind::kMcb: {
        apps::McbConfig cfg = apps::McbConfig::paper(w.particles, w.app_scale);
        if (w.steps != 0) cfg.steps = w.steps;
        plan.add_workload(
            {w.name, make_mcb_workload(w.ranks, w.per_socket, cfg)});
        break;
      }
      case WorkloadWire::Kind::kLulesh: {
        apps::LuleshConfig cfg = apps::LuleshConfig::paper(w.edge, w.app_scale);
        if (w.steps != 0) cfg.steps = w.steps;
        plan.add_workload(
            {w.name, make_lulesh_workload(w.ranks, w.per_socket, cfg)});
        break;
      }
    }
  }
  for (const auto& p : spec.points)
    plan.add_point(p.workload, p.resource, p.threads);
  return plan;
}

SweepRunner make_runner(const PlanSpec& spec,
                        std::function<void(const ResultStore&)> checkpoint) {
  SweepRunnerOptions opts;
  opts.max_cycles = spec.max_cycles;
  opts.seed = spec.seed;
  opts.mix_seed_per_point = spec.mix_seed_per_point;
  opts.cs = spec.cs;
  opts.bw = spec.bw;
  opts.checkpoint = std::move(checkpoint);
  return SweepRunner(make_machine(spec), std::move(opts));
}

}  // namespace am::measure

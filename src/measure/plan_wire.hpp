#pragma once
// A declarative, serializable description of an experiment grid — the
// wire format under `amsweep submit` and the amsweepd daemon protocol.
//
// An ExperimentPlan itself cannot travel: its workload axis is a vector
// of opaque factories (std::function closures over app configs). A
// PlanSpec is the declarative counterpart — machine geometry, run
// options, interference configs, and workload *parameters* — from which
// `build_plan`/`make_runner` reconstruct an identical plan on the other
// side of the socket. "Identical" is a bit-exactness contract, the same
// one the ResultStore TSV carries: the spec round-trips through
// serialize/parse without loss (doubles travel as hexfloat), and two
// processes that build from equal specs produce equal ScenarioKeys and
// equal results. That is what lets a daemon seed one tenant's sweep
// from another tenant's cached points.
//
// Format (`#am-plan-spec v1`): one tab-separated record per line —
// machine, run, cs, bw, any number of workload/point lines, and a
// mandatory `end` trailer that turns silent truncation into a parse
// error. Unknown leading keywords are rejected (a spec is an *input*
// from an untrusted client, unlike the lease files whose writers we
// control), and every parse failure names its line.
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "interfere/bwthr_agent.hpp"
#include "interfere/csthr_agent.hpp"
#include "measure/experiment_plan.hpp"
#include "measure/interference_spec.hpp"
#include "model/distributions.hpp"
#include "sim/machine.hpp"

namespace am::measure {

/// One workload axis entry, by parameters instead of by factory.
struct WorkloadWire {
  enum class Kind : std::uint8_t { kSynthetic, kMcb, kLulesh };
  Kind kind = Kind::kSynthetic;
  std::string name;  // ResultStore identity; no tabs/newlines

  // kSynthetic: a probabilistic benchmark over a buffer of `n` elements.
  model::DistKind dist = model::DistKind::kUniform;
  std::string dist_name;        // AccessDistribution display name
  std::uint64_t n = 0;          // buffer elements
  double dist_a = 0.0;          // normal: mu; exponential: lambda; triangular: mode
  double dist_b = 0.0;          // normal: sigma; unused otherwise
  std::uint64_t element_bytes = 4;
  std::uint32_t compute_ops = 1;
  std::uint64_t warmup_accesses = 0;
  std::uint64_t measured_accesses = 1'000'000;

  // kMcb / kLulesh: the paper-shaped proxies, scaled.
  std::uint32_t ranks = 0;
  std::uint32_t per_socket = 0;
  std::uint32_t particles = 0;  // kMcb
  std::uint32_t edge = 0;       // kLulesh
  std::uint32_t steps = 0;
  std::uint32_t app_scale = 1;
};

struct PointWire {
  std::size_t workload = 0;  // index into PlanSpec::workloads
  Resource resource = Resource::kCacheStorage;
  std::uint32_t threads = 0;
};

/// Everything needed to rebuild a machine + runner + plan elsewhere.
/// cs/bw ride along because spec_signature — and therefore every store
/// key — depends on them; a spec that omitted them could silently remap
/// a tenant's results onto foreign cache entries.
struct PlanSpec {
  std::uint32_t machine_scale = 64;
  std::uint32_t machine_nodes = 1;
  std::string mem_backend = "channel";

  std::uint64_t seed = 1;
  std::uint64_t max_cycles = UINT64_MAX / 4;
  bool mix_seed_per_point = true;

  interfere::CSThrConfig cs;
  interfere::BWThrConfig bw;

  std::vector<WorkloadWire> workloads;
  std::vector<PointWire> points;
};

bool operator==(const WorkloadWire& a, const WorkloadWire& b);
bool operator==(const PointWire& a, const PointWire& b);
bool operator==(const PlanSpec& a, const PlanSpec& b);

/// The canonical `#am-plan-spec v1` text. Throws std::invalid_argument
/// on an unserializable spec (names with tabs/newlines, point indices
/// out of range) — validation happens on the way *in* to the wire, so a
/// parsed spec is always rebuildable.
std::string serialize_plan_spec(const PlanSpec& spec);

/// Parses serialize_plan_spec output. Throws std::invalid_argument on
/// anything malformed, naming the offending line; a missing `end`
/// trailer (truncated transfer) is malformed.
PlanSpec parse_plan_spec(const std::string& text);

/// The simulated machine the spec describes.
sim::MachineConfig make_machine(const PlanSpec& spec);

/// Rebuilds the executable plan: workload factories from the wire
/// parameters, grid points in spec order.
ExperimentPlan build_plan(const PlanSpec& spec);

/// A SweepRunner with the spec's machine, seed discipline, cycle budget
/// and interference configs — key_for/run_points on it reproduce the
/// submitter's store keys exactly.
SweepRunner make_runner(const PlanSpec& spec,
                        std::function<void(const ResultStore&)> checkpoint = {});

}  // namespace am::measure

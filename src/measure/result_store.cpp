#include "measure/result_store.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/atomic_file.hpp"
#include "common/fingerprint.hpp"
#include "common/work_lease.hpp"
#include "interfere/host_identity.hpp"

namespace am::measure {

namespace {

constexpr const char* kHeader = "#am-result-store v1";
// Run-time sidecar (`<path>.times`): "fp <tab> hexfloat-seconds" per
// line. Separate from the canonical TSV on purpose — wall-clocks differ
// run to run, and the canonical file's bytes must not.
constexpr const char* kTimesHeader = "#am-run-times v1";
// key-fp host machine workload resource threads spec seed max_cycles
// seconds cycles + 12 counters + miss-rate app-bw total-bw ithreads
// timed_out.
constexpr std::size_t kColumns = 28;

[[noreturn]] void fail(const std::string& path, std::size_t line,
                       const std::string& why) {
  throw std::runtime_error("ResultStore: " + path + ":" +
                           std::to_string(line) + ": " + why);
}

/// Hexfloat rendering: round-trips every finite double bit-exactly, so a
/// cached table is indistinguishable from a recomputed one.
std::string num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

double parse_double(const std::string& s, const std::string& path,
                    std::size_t line) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0' || errno == ERANGE)
    fail(path, line, "bad floating-point field '" + s + "'");
  return v;
}

std::uint64_t parse_u64(const std::string& s, const std::string& path,
                        std::size_t line) {
  // Digits only: strtoull alone would accept whitespace and signs,
  // silently wrapping an edited "-123" to 2^64-123.
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos)
    fail(path, line, "bad integer field '" + s + "'");
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), nullptr, 10);
  if (errno == ERANGE)
    fail(path, line, "integer field out of range: '" + s + "'");
  return v;
}

Resource parse_resource(const std::string& s, const std::string& path,
                        std::size_t line) {
  for (const auto r : {Resource::kCacheStorage, Resource::kBandwidth})
    if (s == resource_name(r)) return r;
  fail(path, line, "unknown resource '" + s + "'");
}

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// Field-by-field bitwise equality (memcmp over the whole struct would
/// also compare padding bytes, which are unspecified).
bool bits_equal(const SimRunResult& a, const SimRunResult& b) {
  return bits_equal(a.seconds, b.seconds) && a.cycles == b.cycles &&
         a.app.loads == b.app.loads && a.app.stores == b.app.stores &&
         a.app.l1_hits == b.app.l1_hits && a.app.l2_hits == b.app.l2_hits &&
         a.app.l3_hits == b.app.l3_hits &&
         a.app.mem_accesses == b.app.mem_accesses &&
         a.app.prefetch_issued == b.app.prefetch_issued &&
         a.app.prefetch_dropped == b.app.prefetch_dropped &&
         a.app.writebacks == b.app.writebacks &&
         a.app.bytes_from_mem == b.app.bytes_from_mem &&
         a.app.compute_cycles == b.app.compute_cycles &&
         a.app.stall_cycles == b.app.stall_cycles &&
         bits_equal(a.app_l3_miss_rate, b.app_l3_miss_rate) &&
         bits_equal(a.app_mem_bandwidth, b.app_mem_bandwidth) &&
         bits_equal(a.total_mem_bandwidth, b.total_mem_bandwidth) &&
         a.interference_threads == b.interference_threads &&
         a.timed_out == b.timed_out;
}

std::vector<std::string> split_tabs(const std::string& line) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const auto tab = line.find('\t', start);
    out.push_back(line.substr(start, tab - start));
    if (tab == std::string::npos) return out;
    start = tab + 1;
  }
}

}  // namespace

std::string machine_fingerprint(const sim::MachineConfig& m) {
  Fingerprint fp;
  fp.mix(kResultEpoch)
      .mix(m.name)
      .mix(m.nodes)
      .mix(m.sockets_per_node)
      .mix(m.cores_per_socket)
      .mix(m.frequency_ghz);
  for (const auto* c : {&m.l1, &m.l2, &m.l3})
    fp.mix(c->size_bytes)
        .mix(c->line_bytes)
        .mix(c->ways)
        .mix(c->insert_age)
        .mix(c->replacement);
  fp.mix(m.l1_latency)
      .mix(m.l2_latency)
      .mix(m.l3_latency)
      .mix(m.mem_latency)
      .mix(m.mem_bandwidth_bytes_per_sec)
      .mix(m.writeback_cost_factor)
      .mix(m.link_bandwidth_bytes_per_sec)
      .mix(m.link_latency)
      .mix(m.max_outstanding_misses)
      .mix(m.l3_hint_interval)
      .mix(m.prefetcher.num_streams)
      .mix(m.prefetcher.degree)
      .mix(m.prefetcher.confirm_threshold)
      .mix(m.prefetcher.max_stride_lines)
      .mix(m.prefetcher.page_lines)
      .mix(m.prefetcher.enabled);
  // The memory backend changes simulated results, so it must key results
  // — but only when it deviates from the default: mixing nothing for
  // kChannel keeps every pre-backend fingerprint (and the cached results
  // stored under it) valid.
  if (m.mem_backend != sim::MemBackendKind::kChannel) {
    fp.mix(static_cast<std::uint32_t>(m.mem_backend))
        .mix(m.dram.channels)
        .mix(m.dram.banks)
        .mix(m.dram.row_bytes)
        .mix(m.dram.t_rcd)
        .mix(m.dram.t_rp)
        .mix(m.dram.t_cas)
        .mix(m.dram.base_latency)
        .mix(m.dram.refresh_interval)
        .mix(m.dram.refresh_cycles);
  }
  // The set-index hash changes line placement (H3 reshuffles every set
  // mapping), so it keys results too — same default-elision as the
  // backend: kMask mixes nothing so pre-existing fingerprints stay valid.
  if (m.set_hash != sim::SetHash::kMask)
    fp.mix(static_cast<std::uint32_t>(m.set_hash));
  return fp.hex();
}

std::string store_path(const std::string& results_dir,
                       const std::string& driver, ShardRange shard) {
  std::string name = driver;
  if (shard.sharded())
    name += ".shard" + std::to_string(shard.index) + "of" +
            std::to_string(shard.count);
  return (std::filesystem::path(results_dir) / (name + ".tsv")).string();
}

std::string spec_signature(const InterferenceSpec& spec) {
  if (spec.count == 0) return "none";
  std::ostringstream out;
  if (spec.resource == Resource::kCacheStorage)
    out << "cs:b" << spec.cs.buffer_bytes << ":n" << spec.cs.batch_size;
  else
    out << "bw:b" << spec.bw.buffer_bytes << ":n" << spec.bw.num_buffers
        << ":s" << spec.bw.line_stride << ":i" << spec.bw.index_compute_cycles
        << ":g" << spec.bw.buffers_per_step;
  out << ":w" << spec.warmup_cycles;
  return out.str();
}

ScenarioKey ScenarioKey::make(std::string machine, std::string workload,
                              Resource resource, std::uint32_t threads,
                              std::string spec, std::uint64_t seed,
                              std::uint64_t max_cycles) {
  ScenarioKey key;
  key.machine = std::move(machine);
  key.workload = std::move(workload);
  // A baseline runs no interference agents, so its nominal resource and
  // interference configuration cannot affect the result; normalize them
  // away exactly like ResultTable keys do.
  key.resource = threads == 0 ? Resource::kCacheStorage : resource;
  key.threads = threads;
  key.spec = threads == 0 ? "none" : std::move(spec);
  key.seed = seed;
  key.max_cycles = max_cycles;
  return key;
}

std::string ScenarioKey::fingerprint() const {
  Fingerprint fp;
  fp.mix(machine)
      .mix(workload)
      .mix(resource)
      .mix(threads)
      .mix(spec)
      .mix(seed)
      .mix(max_cycles);
  return fp.hex();
}

ResultStore ResultStore::load(const std::string& path,
                              const StoreLoadOptions& opts) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("ResultStore: cannot open " + path);

  std::string line;
  std::size_t lineno = 1;
  const auto strip_cr = [](std::string& s) {
    if (!s.empty() && s.back() == '\r') s.pop_back();
  };
  if (!std::getline(in, line)) fail(path, lineno, "empty file (no header)");
  strip_cr(line);
  if (line != kHeader) {
    if (line.rfind("#am-result-store", 0) == 0)
      fail(path, lineno,
           "format version mismatch: file says '" + line + "', this build " +
               "reads v" + std::to_string(kFormatVersion) +
               " — re-run the sweep or convert the store");
    fail(path, lineno, "not a result store (missing '" +
                           std::string(kHeader) + "' header)");
  }

  ResultStore store;
  while (std::getline(in, line)) {
    ++lineno;
    strip_cr(line);
    if (line.empty() || line[0] == '#') continue;  // comments permitted
    const auto cols = split_tabs(line);
    if (cols.size() != kColumns)
      fail(path, lineno,
           "expected " + std::to_string(kColumns) + " fields, got " +
               std::to_string(cols.size()));

    ResultRecord rec;
    rec.host = cols[1];
    rec.key.machine = cols[2];
    rec.key.workload = cols[3];
    rec.key.resource = parse_resource(cols[4], path, lineno);
    rec.key.threads =
        static_cast<std::uint32_t>(parse_u64(cols[5], path, lineno));
    rec.key.spec = cols[6];
    rec.key.seed = parse_u64(cols[7], path, lineno);
    rec.key.max_cycles = parse_u64(cols[8], path, lineno);

    auto& r = rec.result;
    r.seconds = parse_double(cols[9], path, lineno);
    r.cycles = parse_u64(cols[10], path, lineno);
    auto& c = r.app;
    c.loads = parse_u64(cols[11], path, lineno);
    c.stores = parse_u64(cols[12], path, lineno);
    c.l1_hits = parse_u64(cols[13], path, lineno);
    c.l2_hits = parse_u64(cols[14], path, lineno);
    c.l3_hits = parse_u64(cols[15], path, lineno);
    c.mem_accesses = parse_u64(cols[16], path, lineno);
    c.prefetch_issued = parse_u64(cols[17], path, lineno);
    c.prefetch_dropped = parse_u64(cols[18], path, lineno);
    c.writebacks = parse_u64(cols[19], path, lineno);
    c.bytes_from_mem = parse_u64(cols[20], path, lineno);
    c.compute_cycles = parse_u64(cols[21], path, lineno);
    c.stall_cycles = parse_u64(cols[22], path, lineno);
    r.app_l3_miss_rate = parse_double(cols[23], path, lineno);
    r.app_mem_bandwidth = parse_double(cols[24], path, lineno);
    r.total_mem_bandwidth = parse_double(cols[25], path, lineno);
    r.interference_threads = parse_u64(cols[26], path, lineno);
    const auto timed_out = parse_u64(cols[27], path, lineno);
    if (timed_out > 1) fail(path, lineno, "timed_out must be 0 or 1");
    r.timed_out = timed_out != 0;

    if (rec.key.fingerprint() != cols[0])
      fail(path, lineno,
           "fingerprint mismatch (stored " + cols[0] + ", fields hash to " +
               rec.key.fingerprint() + ") — record was edited or corrupted");
    if (!opts.expect_host.empty() && rec.host != opts.expect_host)
      fail(path, lineno,
           "host fingerprint mismatch: record was measured on host " +
               rec.host + ", expected " + opts.expect_host +
               " — refusing to mix machines' numbers");
    if (!opts.expect_machine.empty() && rec.key.machine != opts.expect_machine)
      fail(path, lineno,
           "simulated-machine fingerprint mismatch: record is for machine " +
               rec.key.machine + ", expected " + opts.expect_machine);

    const auto [it, inserted] = store.records_.emplace(cols[0], rec);
    if (!inserted && !(it->second.key == rec.key))
      fail(path, lineno, "fingerprint collision between two distinct keys");
    if (!inserted && !bits_equal(it->second.result, rec.result))
      // Hand-concatenated shard files, not `amresult merge`: the same
      // scenario appears twice with different numbers. Refuse to pick.
      fail(path, lineno,
           "duplicate record for scenario '" + rec.key.workload + "' × " +
               resource_name(rec.key.resource) + " × " +
               std::to_string(rec.key.threads) +
               " threads with conflicting results — one of them is stale");
  }

  // Run-time sidecar: best effort. A missing, stale, or malformed sidecar
  // only costs scheduling accuracy, so unlike the canonical file it is
  // never a load error; entries for unknown fingerprints are ignored.
  std::ifstream times(path + ".times");
  if (times && std::getline(times, line) && line == kTimesHeader)
    while (std::getline(times, line)) {
      strip_cr(line);
      const auto cols = split_tabs(line);
      if (cols.size() != 2) continue;
      const auto it = store.records_.find(cols[0]);
      if (it == store.records_.end()) continue;
      errno = 0;
      char* end = nullptr;
      const double v = std::strtod(cols[1].c_str(), &end);
      if (end != cols[1].c_str() && *end == '\0' && errno != ERANGE &&
          v >= 0.0)
        it->second.run_seconds = v;
    }
  return store;
}

ResultStore ResultStore::load_or_empty(const std::string& path,
                                       const StoreLoadOptions& opts) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return {};
  return load(path, opts);
}

bool ResultStore::has(const ScenarioKey& key) const {
  return find(key) != nullptr;
}

const SimRunResult* ResultStore::find(const ScenarioKey& key) const {
  const auto it = records_.find(key.fingerprint());
  if (it == records_.end() || !(it->second.key == key)) return nullptr;
  return &it->second.result;
}

void ResultStore::put(const ScenarioKey& key, const SimRunResult& result,
                      std::string host, double run_seconds) {
  for (const auto* field : {&key.workload, &key.machine, &key.spec})
    if (field->find_first_of("\t\n\r") != std::string::npos)
      throw std::invalid_argument(
          "ResultStore: key field contains tab/newline: '" + *field + "'");
  if (host.empty())
    host = interfere::HostIdentity::detect().fingerprint();
  const auto fp = key.fingerprint();
  const auto it = records_.find(fp);
  if (it != records_.end() && !(it->second.key == key))
    throw std::runtime_error(
        "ResultStore: fingerprint collision between distinct keys (" +
        it->second.key.workload + " vs " + key.workload + ")");
  records_[fp] = ResultRecord{key, std::move(host), result, run_seconds};
}

double ResultStore::run_seconds(const ScenarioKey& key) const {
  const auto it = records_.find(key.fingerprint());
  if (it == records_.end() || !(it->second.key == key)) return 0.0;
  return it->second.run_seconds;
}

void ResultStore::merge(const ResultStore& other) {
  for (const auto& [fp, rec] : other.records_) {
    const auto it = records_.find(fp);
    if (it == records_.end()) {
      records_.emplace(fp, rec);
      continue;
    }
    // Run times are hints, not payload: keep ours when known, otherwise
    // adopt the other store's (merge order is fixed by the caller, so
    // this stays deterministic).
    if (it->second.run_seconds <= 0.0 && rec.run_seconds > 0.0)
      it->second.run_seconds = rec.run_seconds;
    if (!(it->second.key == rec.key))
      throw std::runtime_error(
          "ResultStore::merge: fingerprint collision between distinct keys");
    // Bitwise payload agreement: sim runs are deterministic, so two stores
    // holding the same key must hold the same numbers. Disagreement means
    // a stale store or a mislabeled workload — refuse to pick a winner.
    if (!bits_equal(it->second.result, rec.result))
      throw std::runtime_error(
          "ResultStore::merge: conflicting results for scenario '" +
          rec.key.workload + "' × " + resource_name(rec.key.resource) +
          " × " + std::to_string(rec.key.threads) +
          " threads — stores disagree; one of them is stale");
  }
}

void ResultStore::save(const std::string& path) const {
  std::ostringstream out;
  out << kHeader << '\n';
  for (const auto& [fp, rec] : records_) {
    const auto& r = rec.result;
    const auto& c = r.app;
    out << fp << '\t' << rec.host << '\t' << rec.key.machine << '\t'
        << rec.key.workload << '\t' << resource_name(rec.key.resource)
        << '\t' << rec.key.threads << '\t' << rec.key.spec << '\t'
        << rec.key.seed << '\t' << rec.key.max_cycles << '\t'
        << num(r.seconds) << '\t' << r.cycles
        << '\t' << c.loads << '\t' << c.stores << '\t' << c.l1_hits << '\t'
        << c.l2_hits << '\t' << c.l3_hits << '\t' << c.mem_accesses << '\t'
        << c.prefetch_issued << '\t' << c.prefetch_dropped << '\t'
        << c.writebacks << '\t' << c.bytes_from_mem << '\t'
        << c.compute_cycles << '\t' << c.stall_cycles << '\t'
        << num(r.app_l3_miss_rate) << '\t' << num(r.app_mem_bandwidth)
        << '\t' << num(r.total_mem_bandwidth) << '\t'
        << r.interference_threads << '\t' << (r.timed_out ? 1 : 0) << '\n';
  }
  // Atomic: a worker killed mid-save must not leave a torn store file for
  // the next (cached or merging) reader to choke on.
  atomic_write_file(path, out.str(), "ResultStore");

  // Sidecar with the known run times, best effort: losing it costs the
  // scheduler its measured costs (it falls back to the heuristic), never
  // a result.
  std::ostringstream times;
  times << kTimesHeader << '\n';
  bool any = false;
  for (const auto& [fp, rec] : records_)
    if (rec.run_seconds > 0.0) {
      times << fp << '\t' << num(rec.run_seconds) << '\n';
      any = true;
    }
  if (any) try_atomic_write_file(path + ".times", times.str());
}

std::vector<const ResultRecord*> ResultStore::records() const {
  std::vector<const ResultRecord*> out;
  out.reserve(records_.size());
  for (const auto& [fp, rec] : records_) out.push_back(&rec);
  return out;
}

std::vector<std::string> ResultStore::hosts() const {
  std::vector<std::string> out;
  for (const auto& [fp, rec] : records_)
    if (std::find(out.begin(), out.end(), rec.host) == out.end())
      out.push_back(rec.host);
  return out;
}

ResultStoreFile::ResultStoreFile(const std::string& results_dir,
                                 const std::string& driver, ShardRange shard)
    : shard_(shard), driver_(driver), results_dir_(results_dir) {
  if (results_dir.empty()) {
    if (shard.sharded())
      throw std::invalid_argument(
          "--shard requires --results-dir: a shard's only output is its "
          "store file");
    return;
  }
  std::filesystem::create_directories(results_dir);
  path_ = store_path(results_dir, driver, shard);
  store_ = ResultStore::load_or_empty(path_);
}

ResultStoreFile ResultStoreFile::for_lease(const std::string& results_dir,
                                           const std::string& driver,
                                           const std::string& lease_path) {
  if (lease_path.empty())
    throw std::invalid_argument(
        "ResultStoreFile: a lease worker needs a --lease path");
  ResultStoreFile file(results_dir, driver);
  file.path_ = lease_store_path(lease_path);
  ResultStore mine = ResultStore::load_or_empty(file.path_);
  // Seed order matters for determinism of run-time hints: this lease's
  // own records win over the canonical cache already loaded by the
  // delegated constructor (file.store_ may be empty when results_dir is
  // unset — a standalone lease worker has no canonical cache).
  mine.merge(file.store_);
  file.store_ = std::move(mine);
  return file;
}

void ResultStoreFile::save() {
  if (path_.empty()) return;
  store_.save(path_);
}

std::function<void(const ResultStore&)> ResultStoreFile::checkpointer(
    double min_interval_seconds) const {
  if (path_.empty()) return nullptr;
  using Clock = std::chrono::steady_clock;
  // Shared across std::function copies so every copy honors one throttle.
  // `nullopt` = never saved: the first completed point always reaches disk.
  // (An epoch-initialized time_point would not do — steady_clock counts
  // from boot, so on a host up for less than the interval the first save
  // would be wrongly throttled away.)
  auto last = std::make_shared<std::optional<Clock::time_point>>();
  return [path = path_, min_interval_seconds, last](const ResultStore& store) {
    const auto now = Clock::now();
    if (*last &&
        now - **last < std::chrono::duration<double>(min_interval_seconds))
      return;
    *last = now;
    store.save(path);
  };
}

bool ResultStoreFile::finish(std::size_t executed, std::size_t planned,
                             std::ostream& out) {
  if (path_.empty()) return false;
  store_.save(path_);
  // Machine-readable sidecar for supervisors (SweepOrchestrator): how much
  // of this invocation's slice actually hit the engine. Best effort — a
  // missing sidecar only degrades the manifest, never the results.
  std::ofstream meta(path_ + ".meta", std::ios::trunc);
  if (meta)
    meta << "executed " << executed << "\nplanned " << planned
         << "\nrecords " << store_.size() << "\n";
  // `reused` counts this invocation's cache hits only — the store may
  // also hold records of other machines/grids, which were neither.
  const std::size_t reused = planned > executed ? planned - executed : 0;
  out << "results: " << store_.size() << " records in " << path_ << " ("
      << executed << " executed, " << reused << " reused)\n";
  if (!shard_.sharded()) return false;
  out << "shard " << shard_.index << "/" << shard_.count
      << " complete; merge all shards with\n  amresult merge --out "
      << store_path(results_dir_, driver_) << " "
      << store_path(results_dir_, driver_, {0, shard_.count})
      << " ...\nthen re-run without --shard to print the figure from "
         "cache.\n";
  return true;
}

}  // namespace am::measure

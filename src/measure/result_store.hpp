#pragma once
// Persistent, content-addressed cache of experiment results.
//
// The paper's evaluation re-runs the same (workload × resource × threads)
// grids over and over — across figure drivers, across --quick and full
// sweeps, and (with ExperimentPlan::shard) across machines. A ResultStore
// makes every completed grid point durable: each SimRunResult is keyed by a
// ScenarioKey fingerprint covering everything that determines the number —
// the simulated machine, the workload's name (which embeds its parameters),
// the interference resource and thread count, the engine seed, and the
// cycle budget. Guarantees:
//
//   * Exactness: doubles are serialized as C99 hexfloats, so a result read
//     back from disk is bit-identical to the freshly computed one and a
//     cached ResultTable is indistinguishable from a recomputed one.
//   * Diff/merge-ability: the on-disk format is one TSV record per line,
//     written in canonical (fingerprint-sorted) order under a versioned
//     header, so stores diff cleanly and shard stores merge with plain
//     collision checking (`amresult merge`).
//   * No silent mixing: every record carries the producing host's
//     fingerprint (interfere::HostIdentity); loading verifies the format
//     version, per-record integrity, and — when requested — that records
//     come from the expected host and simulated machine, failing with a
//     clear error instead of quietly blending numbers from two machines.
//
// File format (version 1):
//   line 1:  "#am-result-store v1"
//   line N:  key-fp  host-fp  machine-fp  workload  resource  threads
//            seed  max_cycles  seconds  cycles  <12 counter fields>
//            l3_miss_rate  app_bw  total_bw  interference_threads
//            timed_out              (tab-separated, one record per line)
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/shard.hpp"
#include "measure/sim_backend.hpp"
#include "sim/machine.hpp"

namespace am::measure {

/// Bump whenever simulator or measurement code changes the numbers a run
/// produces (engine timing fixes, counter semantics, agent behaviour).
/// The epoch is mixed into every machine fingerprint, so stores written
/// by older code stop matching — a re-run recomputes instead of silently
/// reproducing pre-fix results from cache.
inline constexpr std::uint32_t kResultEpoch = 1;

/// Stable 16-hex-digit digest of every MachineConfig field that can change
/// simulation results, plus kResultEpoch. Two configs with equal
/// fingerprints produce bit-identical runs for equal (workload, spec,
/// seed, budget) under the same code epoch. The memory-backend selection
/// and its DramConfig knobs are part of the digest — they shape results —
/// but are mixed only when the backend deviates from the default channel
/// pipe, so pre-backend store files keep matching. Host-speed knobs
/// (l1_filter) are deliberately excluded.
std::string machine_fingerprint(const sim::MachineConfig& machine);

/// The store-file naming policy every driver shares, so `amresult merge`
/// and a later cached re-run agree on paths: an unsharded run of driver D
/// reads/writes <results_dir>/D.tsv; shard i of n writes
/// <results_dir>/D.shard<i>of<n>.tsv. Merging the shard files into D.tsv
/// is exactly what makes the next unsharded run fully cached.
std::string store_path(const std::string& results_dir,
                       const std::string& driver, ShardRange shard = {});

/// Canonical signature of an interference configuration — every CSThr /
/// BWThr parameter that changes the interference agents' behaviour, e.g.
/// "cs:b262144:n4:w1000000". Zero-thread specs normalize to "none": no
/// agents run, so their configuration cannot affect the result.
std::string spec_signature(const InterferenceSpec& spec);

/// Everything that determines one experiment's SimRunResult. Workload
/// parameters are covered through the workload *name*, so names must
/// uniquely identify workload + parameters within a store (the drivers
/// embed sizes/mappings in their names, e.g. "particles=90000").
struct ScenarioKey {
  std::string machine;   // machine_fingerprint(...) of the simulated machine
  std::string workload;  // WorkloadSpec::name (no tabs/newlines)
  Resource resource = Resource::kCacheStorage;
  std::uint32_t threads = 0;
  std::string spec;      // spec_signature(...) of the interference config
  std::uint64_t seed = 0;
  std::uint64_t max_cycles = 0;

  /// Builds a normalized key: threads == 0 points are baselines, whose
  /// nominal resource and interference configuration are irrelevant (no
  /// agents run) — resource is forced to kCacheStorage and spec to "none",
  /// the same normalization ResultTable keys use.
  static ScenarioKey make(std::string machine, std::string workload,
                          Resource resource, std::uint32_t threads,
                          std::string spec, std::uint64_t seed,
                          std::uint64_t max_cycles);

  /// 16-hex-digit digest of the canonical field encoding; the record's
  /// content address in the store file.
  std::string fingerprint() const;

  bool operator==(const ScenarioKey&) const = default;
};

/// One stored experiment: its key, the fingerprint of the host that ran it
/// (provenance; sim results do not depend on it), and the result.
struct ResultRecord {
  ScenarioKey key;
  std::string host;
  SimRunResult result;
  /// Wall-clock the producing engine run took (0 = unknown, e.g. a store
  /// written before run times existed). Feeds the dynamic scheduler's
  /// cost model (SweepRunner::estimate_costs); persisted in a
  /// `<path>.times` sidecar, NOT in the canonical TSV — run times differ
  /// between hosts and runs, and the canonical file must stay
  /// bit-identical however a sweep was scheduled.
  double run_seconds = 0.0;
};

/// Options for ResultStore::load. Empty expectations skip that check.
struct StoreLoadOptions {
  /// Reject records produced on a different physical host. Pass
  /// HostIdentity::detect().fingerprint() for host-measured data; leave
  /// empty for simulator stores, which are host-independent.
  std::string expect_host;
  /// Reject records for a different simulated machine.
  std::string expect_machine;
};

class ResultStore {
 public:
  static constexpr int kFormatVersion = 1;

  /// Parses a version-1 store file. Throws std::runtime_error (naming the
  /// path, line, and reason) on an unknown version, a malformed record, a
  /// record whose stored fingerprint does not match its fields, or a
  /// record violating `opts` expectations. A nonexistent file is an error;
  /// use load_or_empty for opportunistic cache opens.
  static ResultStore load(const std::string& path,
                          const StoreLoadOptions& opts = {});

  /// load(...) if `path` exists, otherwise an empty store.
  static ResultStore load_or_empty(const std::string& path,
                                   const StoreLoadOptions& opts = {});

  bool has(const ScenarioKey& key) const;
  /// The stored result, or nullptr on a miss.
  const SimRunResult* find(const ScenarioKey& key) const;

  /// Inserts or overwrites one record. `host` defaults to this host's
  /// fingerprint; `run_seconds` is the producing run's wall-clock (0 =
  /// unknown), kept as a scheduling hint. Throws std::invalid_argument
  /// on workload names the line-oriented format cannot hold (embedded
  /// tab/newline).
  void put(const ScenarioKey& key, const SimRunResult& result,
           std::string host = {}, double run_seconds = 0.0);

  /// The recorded wall-clock for `key`'s producing run, or 0.0 when the
  /// record is absent or predates run-time tracking.
  double run_seconds(const ScenarioKey& key) const;

  /// Folds `other` into this store. Records agreeing on key and payload
  /// deduplicate; records with equal keys but different payloads are a
  /// hard error (two shards measured the same scenario differently — one
  /// of them is stale or mislabeled).
  void merge(const ResultStore& other);

  /// Writes the canonical (fingerprint-sorted) file, atomically (write to
  /// `path`.tmp, then rename): a process killed mid-save leaves the old
  /// file intact, never a torn one. Records with a known run_seconds also
  /// land in a `<path>.times` sidecar (best effort — a lost sidecar only
  /// degrades cost estimates, never results). Throws std::runtime_error
  /// on I/O failure of the canonical file.
  void save(const std::string& path) const;

  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  /// Records in canonical fingerprint order.
  std::vector<const ResultRecord*> records() const;

  /// Distinct host fingerprints present (merged stores may hold several).
  std::vector<std::string> hosts() const;

 private:
  std::map<std::string, ResultRecord> records_;  // fingerprint → record
};

/// Driver convenience: the store file backing one invocation, named per
/// the store_path policy. Loads an existing file on construction; records
/// for other simulated machines (e.g. another --scale) coexist harmlessly
/// — every ScenarioKey embeds its machine fingerprint, so they can never
/// satisfy this run's lookups. Disabled entirely (store() == nullptr)
/// when results_dir is empty, so callers can pass the flag value through
/// unconditionally.
class ResultStoreFile {
 public:
  /// Throws std::invalid_argument for a sharded range without a results
  /// directory — the one flag pairing every driver must enforce, checked
  /// here once so drivers cannot silently emit a partial figure.
  ResultStoreFile(const std::string& results_dir, const std::string& driver,
                  ShardRange shard = {});

  /// Lease-worker variant: the backing file is the lease's own store
  /// (common/work_lease.hpp's lease_store_path(lease_path)), and the
  /// canonical store for `driver` under `results_dir` (when the
  /// directory is set and the file exists) is folded in as a cache seed
  /// — so a re-sweep stays fully cached even when the scheduler hands
  /// this worker points a different worker ran last time. Throws
  /// std::invalid_argument on an empty lease path.
  static ResultStoreFile for_lease(const std::string& results_dir,
                                   const std::string& driver,
                                   const std::string& lease_path);

  /// The backing store, or nullptr when disabled.
  ResultStore* store() { return path_.empty() ? nullptr : &store_; }
  const std::string& path() const { return path_; }

  /// Persists the store to its path now (atomic); no-op when disabled.
  /// The lease worker calls this before acknowledging each batch —
  /// durable results first, receipt second.
  void save();

  /// A SweepRunnerOptions::checkpoint callback persisting this file as
  /// points complete — at most once per `min_interval_seconds` (0 = every
  /// point), because the store is rewritten whole and a per-point save
  /// would cost O(n²) serialization over a large grid while stalling pool
  /// workers behind each save. The first completed point always saves;
  /// saves are atomic, so a kill mid-save keeps the previous checkpoint
  /// and a kill between saves loses at most an interval of finished runs
  /// (finish() persists everything unconditionally). Null when the store
  /// is disabled — assignable to the option unconditionally, like store().
  std::function<void(const ResultStore&)> checkpointer(
      double min_interval_seconds = 1.0) const;

  /// Persists the store and reports the run's cache economy on `out`:
  /// `planned` is the number of grid points this invocation was
  /// responsible for and `executed` how many actually ran (the difference
  /// is the cache hits). Also drops a `<path>.meta` sidecar with the same
  /// counts so supervisors (measure::SweepOrchestrator) can read them
  /// without parsing human output. With a sharded range also prints the
  /// amresult merge handoff and returns true — the caller should skip
  /// figure emission, its table being partial by construction. No-op
  /// (false) when disabled.
  bool finish(std::size_t executed, std::size_t planned, std::ostream& out);

 private:
  ShardRange shard_;
  std::string driver_;
  std::string results_dir_;
  std::string path_;
  ResultStore store_;
};

}  // namespace am::measure

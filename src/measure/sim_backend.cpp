#include "measure/sim_backend.hpp"

#include <memory>
#include <set>
#include <stdexcept>

namespace am::measure {

SimBackend::SimBackend(sim::MachineConfig machine, std::uint64_t seed)
    : machine_(std::move(machine)), seed_(seed) {
  machine_.validate();
}

SimRunResult SimBackend::run(const WorkloadFactory& factory,
                             const InterferenceSpec& spec,
                             sim::Cycles max_cycles) {
  sim::Engine engine(machine_, seed_);
  const WorkloadInfo info = factory(engine);
  if (info.primary_agents.empty())
    throw std::invalid_argument("SimBackend: workload created no primaries");

  std::uint64_t started = 0;
  for (const auto& group : info.interference_cores) {
    if (spec.count > group.size())
      throw std::invalid_argument(
          "SimBackend: not enough free cores for interference");
    for (std::uint32_t i = 0; i < spec.count; ++i) {
      if (spec.resource == Resource::kCacheStorage)
        engine.add_agent(std::make_unique<interfere::CSThrAgent>(
                             engine.memory(), spec.cs),
                         group[i], /*primary=*/false);
      else
        engine.add_agent(std::make_unique<interfere::BWThrAgent>(
                             engine.memory(), spec.bw),
                         group[i], /*primary=*/false);
      ++started;
    }
  }

  // Give the interference threads their head start; measurement covers
  // only the application's own execution window.
  const sim::Cycles warmup = started > 0 ? spec.warmup_cycles : 0;
  if (warmup > 0)
    for (const auto idx : info.primary_agents) engine.delay_agent(idx, warmup);

  const sim::Cycles end = engine.run(max_cycles);

  SimRunResult result;
  const sim::Cycles start =
      info.measure_start ? info.measure_start(engine) : warmup;
  result.cycles = end > start ? end - start : 0;
  result.seconds = machine_.cycles_to_seconds(result.cycles);
  result.timed_out = engine.timed_out();
  std::set<std::uint32_t> used_sockets;
  for (const auto idx : info.primary_agents) {
    result.app += engine.agent_counters(idx);
    used_sockets.insert(machine_.socket_of(engine.agent_core(idx)));
  }
  result.app_l3_miss_rate = result.app.l3_miss_rate();
  if (result.seconds > 0.0) {
    result.app_mem_bandwidth =
        static_cast<double>(result.app.bytes_from_mem) / result.seconds;
    std::uint64_t socket_bytes = 0;
    for (const auto s : used_sockets)
      socket_bytes += engine.memory().mem_backend(s).total_bytes();
    result.total_mem_bandwidth =
        static_cast<double>(socket_bytes) / result.seconds;
  }
  result.interference_threads = started;
  return result;
}

}  // namespace am::measure

#pragma once
// Runs one "experiment" on the simulator: a workload (one or many primary
// agents) plus an interference specification, returning the timing and
// counter data the Active Measurement methodology consumes.
#include <cstdint>
#include <functional>
#include <vector>

#include "measure/interference_spec.hpp"
#include "sim/engine.hpp"

namespace am::measure {

/// What a workload factory must hand back after populating the engine.
struct WorkloadInfo {
  /// Indices of the primary (application) agents in the engine.
  std::vector<std::size_t> primary_agents;
  /// Core groups available for interference threads — typically the free
  /// cores of each socket that hosts application ranks.
  std::vector<std::vector<sim::CoreId>> interference_cores;
  /// Optional: cycle at which measurement starts (e.g. after a cache
  /// warm-up phase); reported seconds cover [start, finish]. Evaluated
  /// after the run completes. Null = measure from cycle 0.
  std::function<sim::Cycles(const sim::Engine&)> measure_start;
};

struct SimRunResult {
  double seconds = 0.0;          // start → last primary finished
  sim::Cycles cycles = 0;
  sim::Counters app;             // aggregated over application cores
  double app_l3_miss_rate = 0.0;
  double app_mem_bandwidth = 0.0;       // bytes/s drawn by app cores
  double total_mem_bandwidth = 0.0;     // bytes/s over all used sockets
  std::uint64_t interference_threads = 0;
  bool timed_out = false;
};

class SimBackend {
 public:
  using WorkloadFactory = std::function<WorkloadInfo(sim::Engine&)>;

  explicit SimBackend(sim::MachineConfig machine, std::uint64_t seed = 1);

  /// Builds a fresh engine, instantiates the workload and `spec.count`
  /// interference threads per interference core group, runs to completion.
  SimRunResult run(const WorkloadFactory& factory,
                   const InterferenceSpec& spec,
                   sim::Cycles max_cycles = UINT64_MAX / 4);

  const sim::MachineConfig& machine() const { return machine_; }
  std::uint64_t seed() const { return seed_; }

 private:
  sim::MachineConfig machine_;
  std::uint64_t seed_;
};

}  // namespace am::measure

#include "minimpi/collectives.hpp"

#include <algorithm>
#include <stdexcept>

namespace am::minimpi {

Collectives::Collectives(Communicator& comm, const Mapping& mapping)
    : comm_(&comm), num_ranks_(mapping.num_ranks()), state_(num_ranks_) {
  if (num_ranks_ < 2)
    throw std::invalid_argument("Collectives need >= 2 ranks");
}

bool Collectives::try_allreduce(sim::AgentContext& ctx, std::uint32_t rank,
                                std::uint64_t bytes) {
  RankState& st = state_.at(rank);
  const std::uint32_t right = (rank + 1) % num_ranks_;
  const std::uint32_t left = (rank + num_ranks_ - 1) % num_ranks_;

  switch (st.phase) {
    case RankState::Phase::kIdle:
      st.rounds_total = 2 * (num_ranks_ - 1);
      st.round = 0;
      st.chunk_bytes = std::max<std::uint64_t>(64, bytes / num_ranks_);
      st.phase = RankState::Phase::kSend;
      [[fallthrough]];
    case RankState::Phase::kSend:
      comm_->send(ctx, rank, right, st.chunk_bytes);
      st.phase = RankState::Phase::kRecv;
      return false;
    case RankState::Phase::kRecv:
      if (!comm_->try_recv(ctx, left, rank)) {
        ctx.compute(30);  // poll delay
        return false;
      }
      // Reduction arithmetic on the received chunk.
      ctx.compute(st.chunk_bytes / 8);
      ++st.round;
      if (st.round >= st.rounds_total) {
        st.phase = RankState::Phase::kIdle;
        ++st.completed;
        return true;
      }
      st.phase = RankState::Phase::kSend;
      return false;
  }
  return false;
}

bool Collectives::try_barrier(sim::AgentContext& ctx, std::uint32_t rank) {
  return try_allreduce(ctx, rank, 64);
}

}  // namespace am::minimpi

#pragma once
// Cooperative (non-blocking, poll-style) collectives over the simulated
// Communicator: ring all-reduce and barrier. Agents call the try_* method
// each step until it returns true; the traffic flows through the cache
// hierarchy exactly like point-to-point messages, so collectives on
// spread-out mappings consume memory/interconnect bandwidth, as the
// paper's §IV mapping study observes for MPI communication. Guarantees:
//
//   * Non-blocking progress: a try_* call performs at most one bounded
//     piece of work (one send, one receive attempt) and returns; it never
//     spins, so one stalled rank cannot wedge the engine's round-robin.
//   * Epochs pipeline safely: because channels are FIFO, a rank may enter
//     all-reduce epoch e+1 while peers still drain epoch e; completed()
//     counts finished epochs per rank for progress assertions.
//   * Symmetric calls: every rank must invoke try_allreduce with the same
//     `bytes` value for a given epoch — the ring's chunking is derived
//     from it identically on each rank.
#include <cstdint>
#include <vector>

#include "minimpi/communicator.hpp"

namespace am::minimpi {

class Collectives {
 public:
  Collectives(Communicator& comm, const Mapping& mapping);

  /// Ring all-reduce of `bytes` of payload: 2*(n-1) rounds of chunked
  /// neighbour exchange (reduce-scatter + all-gather). Returns true when
  /// this rank's participation completes. Every rank must call it with
  /// the same `bytes` value; concurrent epochs pipeline safely because
  /// channels are FIFO.
  bool try_allreduce(sim::AgentContext& ctx, std::uint32_t rank,
                     std::uint64_t bytes);

  /// Barrier: an all-reduce of one cache line.
  bool try_barrier(sim::AgentContext& ctx, std::uint32_t rank);

  /// All-reduce epochs completed by `rank` (barriers included).
  std::uint64_t completed(std::uint32_t rank) const {
    return state_.at(rank).completed;
  }

 private:
  struct RankState {
    enum class Phase { kIdle, kSend, kRecv } phase = Phase::kIdle;
    std::uint32_t round = 0;
    std::uint32_t rounds_total = 0;
    std::uint64_t chunk_bytes = 0;
    std::uint64_t completed = 0;
  };

  Communicator* comm_;
  std::uint32_t num_ranks_;
  std::vector<RankState> state_;
};

}  // namespace am::minimpi

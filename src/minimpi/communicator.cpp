#include "minimpi/communicator.hpp"

#include <algorithm>
#include <stdexcept>

namespace am::minimpi {

Communicator::Communicator(sim::Engine& engine, const Mapping& mapping)
    : engine_(&engine), mapping_(&mapping) {}

Communicator::Channel& Communicator::channel(std::uint32_t src,
                                             std::uint32_t dst) {
  return channels_[{src, dst}];
}

void Communicator::touch_buffer(sim::AgentContext& ctx, sim::Addr base,
                                std::uint64_t bytes, bool store) {
  const auto line = engine_->config().l3.line_bytes;
  const std::uint64_t lines = (bytes + line - 1) / line;
  // Copy loops are unit-stride: issue line-granular accesses in batches so
  // they enjoy the same memory-level parallelism a real memcpy has.
  constexpr std::size_t kChunk = 16;
  batch_.clear();
  for (std::uint64_t l = 0; l < lines; ++l) {
    batch_.push_back(base + l * line);
    if (batch_.size() == kChunk) {
      if (store)
        ctx.store_batch(batch_);
      else
        ctx.load_batch(batch_);
      batch_.clear();
    }
  }
  if (!batch_.empty()) {
    if (store)
      ctx.store_batch(batch_);
    else
      ctx.load_batch(batch_);
  }
}

void Communicator::send(sim::AgentContext& ctx, std::uint32_t src,
                        std::uint32_t dst, std::uint64_t bytes) {
  if (bytes == 0) throw std::invalid_argument("send: empty message");
  Channel& ch = channel(src, dst);
  if (ch.buffer_bytes < bytes) {
    // (Re)allocate the pair's buffer; simulated memory is plentiful.
    ch.buffer = engine_->memory().alloc(bytes, engine_->config().l3.line_bytes);
    ch.buffer_bytes = bytes;
  }
  // Sender-side copy into the message buffer.
  touch_buffer(ctx, ch.buffer, bytes, /*store=*/true);

  const auto& src_place = mapping_->placement(src);
  const auto& dst_place = mapping_->placement(dst);
  sim::Cycles ready = ctx.now();
  if (src_place.node != dst_place.node)
    ready = engine_->memory().link_transfer(src_place.node, dst_place.node,
                                            bytes, ctx.now());
  ch.queue.push_back(Message{bytes, ready});
  total_bytes_ += bytes;
}

bool Communicator::try_recv(sim::AgentContext& ctx, std::uint32_t src,
                            std::uint32_t dst) {
  Channel& ch = channel(src, dst);
  if (ch.queue.empty() || ch.queue.front().ready > ctx.now()) return false;
  const Message msg = ch.queue.front();
  ch.queue.pop_front();
  // Receiver-side copy out of the message buffer. Same-socket pairs find
  // the lines in the shared L3; others miss to memory.
  touch_buffer(ctx, ch.buffer, msg.bytes, /*store=*/false);
  return true;
}

std::size_t Communicator::pending(std::uint32_t src, std::uint32_t dst) const {
  const auto it = channels_.find({src, dst});
  return it == channels_.end() ? 0 : it->second.queue.size();
}

}  // namespace am::minimpi

#pragma once
// Simulated message passing whose data movement is *real simulated memory
// traffic*: the sender stores the message through its cache hierarchy and
// the receiver loads it through its own. Consequently:
//   - ranks sharing a socket communicate through the shared L3 (cheap,
//     and the message occupies L3 capacity),
//   - ranks on different sockets of a node communicate through the memory
//     bus (the receiver misses its L3),
//   - ranks on different nodes additionally pay the interconnect.
// This reproduces the paper's §IV observation that spreading processes out
// raises per-process memory bandwidth use because "all the communications
// go through the memory bus". Guarantees:
//
//   * Channels are FIFO per (src, dst) pair: messages deliver in send
//     order, and try_recv only delivers a message whose simulated transfer
//     (including the inter-node link, when crossed) has completed by the
//     receiver's current time.
//   * Buffers are reused, not reallocated: each pair's buffer grows to the
//     largest message ever sent on it, so long-running collectives do not
//     leak simulated address space.
//   * All data movement is attributed: sender stores and receiver loads go
//     through each side's own cache hierarchy via AgentContext, advancing
//     that agent's clock — communication cost is measured, never modeled
//     away.
#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "minimpi/mapping.hpp"
#include "sim/agent.hpp"
#include "sim/engine.hpp"

namespace am::minimpi {

class Communicator {
 public:
  /// Binds to an engine + mapping. Message buffers are allocated lazily per
  /// (src, dst) pair, sized to the largest message sent on that pair.
  Communicator(sim::Engine& engine, const Mapping& mapping);

  /// Sends `bytes` from `src` to `dst`: performs the sender-side stores via
  /// ctx (advancing the sender's clock) and enqueues the message. For
  /// cross-node pairs, delivery also waits for the simulated link transfer.
  void send(sim::AgentContext& ctx, std::uint32_t src, std::uint32_t dst,
            std::uint64_t bytes);

  /// Non-blocking receive: if a message from `src` is deliverable at the
  /// receiver's current time, performs the receiver-side loads via ctx and
  /// returns true. Returns false when nothing is deliverable yet (the
  /// caller should burn a few polling cycles and retry).
  bool try_recv(sim::AgentContext& ctx, std::uint32_t src, std::uint32_t dst);

  /// Messages currently queued from src to dst (ready or not).
  std::size_t pending(std::uint32_t src, std::uint32_t dst) const;

  /// Cumulative payload bytes sent (all pairs).
  std::uint64_t total_bytes_sent() const { return total_bytes_; }

 private:
  struct Message {
    std::uint64_t bytes = 0;
    sim::Cycles ready = 0;  // earliest receiver delivery time
  };
  struct Channel {
    sim::Addr buffer = 0;
    std::uint64_t buffer_bytes = 0;
    std::deque<Message> queue;
  };

  Channel& channel(std::uint32_t src, std::uint32_t dst);
  void touch_buffer(sim::AgentContext& ctx, sim::Addr base,
                    std::uint64_t bytes, bool store);

  sim::Engine* engine_;
  const Mapping* mapping_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, Channel> channels_;
  std::uint64_t total_bytes_ = 0;
  std::vector<sim::Addr> batch_;
};

}  // namespace am::minimpi

#include "minimpi/mapping.hpp"

#include <stdexcept>

namespace am::minimpi {

Mapping::Mapping(const sim::MachineConfig& machine, std::uint32_t num_ranks,
                 std::uint32_t per_socket)
    : machine_(&machine), per_socket_(per_socket) {
  if (num_ranks == 0 || per_socket == 0)
    throw std::invalid_argument("Mapping: zero ranks or density");
  if (per_socket > machine.cores_per_socket)
    throw std::invalid_argument("Mapping: more ranks per socket than cores");
  const std::uint32_t sockets_needed =
      (num_ranks + per_socket - 1) / per_socket;
  if (sockets_needed > machine.total_sockets())
    throw std::invalid_argument("Mapping: machine too small for " +
                                std::to_string(num_ranks) + " ranks");
  ranks_.reserve(num_ranks);
  for (std::uint32_t r = 0; r < num_ranks; ++r) {
    const std::uint32_t socket = r / per_socket;
    const std::uint32_t slot = r % per_socket;
    const sim::CoreId core = socket * machine.cores_per_socket + slot;
    ranks_.push_back(RankPlacement{
        r, core, socket, socket / machine.sockets_per_node});
  }
  for (std::uint32_t s = 0; s < sockets_needed; ++s) used_sockets_.push_back(s);
  nodes_used_ =
      (sockets_needed + machine.sockets_per_node - 1) / machine.sockets_per_node;
}

std::vector<sim::CoreId> Mapping::free_cores(std::uint32_t socket) const {
  std::vector<sim::CoreId> free;
  const sim::CoreId base = socket * machine_->cores_per_socket;
  for (std::uint32_t c = 0; c < machine_->cores_per_socket; ++c) {
    const sim::CoreId core = base + c;
    bool taken = false;
    for (const auto& rp : ranks_)
      if (rp.core == core) {
        taken = true;
        break;
      }
    if (!taken) free.push_back(core);
  }
  return free;
}

std::vector<std::uint32_t> Mapping::socket_peers(std::uint32_t rank) const {
  std::vector<std::uint32_t> peers;
  const auto socket = placement(rank).socket;
  for (const auto& rp : ranks_)
    if (rp.socket == socket && rp.rank != rank) peers.push_back(rp.rank);
  return peers;
}

}  // namespace am::minimpi

#pragma once
// Rank-to-core mapping, mirroring the paper's §IV experiments: p MPI
// processes are packed per processor (socket), leaving 8-p cores per socket
// free for interference threads. With 24 ranks and p per socket the job
// spans 24/(2p) two-socket nodes. Guarantees:
//
//   * Deterministic placement: ranks fill sockets in order (rank r lands
//     on socket r / per_socket, core r % per_socket of that socket), so a
//     mapping is a pure function of (machine, num_ranks, per_socket) —
//     experiment results never depend on construction order.
//   * Validated up front: a machine without enough sockets/cores throws at
//     construction, not mid-experiment.
//   * free_cores() is the interference contract: exactly the cores of a
//     socket that host no rank, which is where drivers place CSThr/BWThr
//     threads so interference stays on the shared levels of the hierarchy.
#include <cstdint>
#include <vector>

#include "sim/machine.hpp"

namespace am::minimpi {

struct RankPlacement {
  std::uint32_t rank = 0;
  sim::CoreId core = 0;
  std::uint32_t socket = 0;
  std::uint32_t node = 0;
};

class Mapping {
 public:
  /// Places `num_ranks` ranks, `per_socket` on each socket, packing sockets
  /// in order. Throws if the machine does not have enough sockets/cores.
  Mapping(const sim::MachineConfig& machine, std::uint32_t num_ranks,
          std::uint32_t per_socket);

  std::uint32_t num_ranks() const {
    return static_cast<std::uint32_t>(ranks_.size());
  }
  std::uint32_t per_socket() const { return per_socket_; }
  const RankPlacement& placement(std::uint32_t rank) const {
    return ranks_.at(rank);
  }

  /// Sockets hosting at least one rank.
  const std::vector<std::uint32_t>& used_sockets() const {
    return used_sockets_;
  }

  /// Free cores on a given socket (available for interference threads).
  std::vector<sim::CoreId> free_cores(std::uint32_t socket) const;

  /// Nodes required by this mapping (the paper's 24/(2p) formula).
  std::uint32_t nodes_used() const { return nodes_used_; }

  /// Ranks sharing a socket with `rank` (excluding itself).
  std::vector<std::uint32_t> socket_peers(std::uint32_t rank) const;

 private:
  const sim::MachineConfig* machine_;
  std::uint32_t per_socket_;
  std::uint32_t nodes_used_ = 0;
  std::vector<RankPlacement> ranks_;
  std::vector<std::uint32_t> used_sockets_;
};

}  // namespace am::minimpi

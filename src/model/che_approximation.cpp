#include "model/che_approximation.hpp"

#include <cmath>
#include <stdexcept>

namespace am::model {

CheApproximation::CheApproximation(const AccessDistribution& dist,
                                   std::uint64_t element_bytes,
                                   std::uint64_t line_bytes)
    : line_bytes_(line_bytes) {
  if (element_bytes == 0 || line_bytes == 0 || line_bytes % element_bytes != 0)
    throw std::invalid_argument("line_bytes must be a multiple of element_bytes");
  const std::uint64_t elems_per_line = line_bytes / element_bytes;
  const std::uint64_t lines = (dist.n() + elems_per_line - 1) / elems_per_line;
  line_prob_.resize(lines);
  for (std::uint64_t j = 0; j < lines; ++j) {
    const double lo = static_cast<double>(j * elems_per_line);
    const double hi =
        std::min(static_cast<double>((j + 1) * elems_per_line),
                 static_cast<double>(dist.n()));
    line_prob_[j] = dist.cdf(hi) - dist.cdf(lo);
  }
}

double CheApproximation::characteristic_time(double cache_lines) const {
  if (cache_lines >= static_cast<double>(line_prob_.size()))
    return std::numeric_limits<double>::infinity();
  // Monotone in T; bisect on sum_j (1 - exp(-q_j T)) = cache_lines.
  double lo = 0.0, hi = 1.0;
  auto occupancy = [&](double t) {
    double acc = 0.0;
    for (double q : line_prob_) acc += -std::expm1(-q * t);
    return acc;
  };
  while (occupancy(hi) < cache_lines) {
    hi *= 2.0;
    if (hi > 1e18) break;
  }
  for (int iter = 0; iter < 100; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (occupancy(mid) < cache_lines)
      lo = mid;
    else
      hi = mid;
  }
  return 0.5 * (lo + hi);
}

double CheApproximation::expected_hit_rate(std::uint64_t cache_bytes) const {
  const double cache_lines =
      static_cast<double>(cache_bytes) / static_cast<double>(line_bytes_);
  if (cache_lines >= static_cast<double>(line_prob_.size())) return 1.0;
  const double t = characteristic_time(cache_lines);
  double hit = 0.0;
  for (double q : line_prob_) hit += q * -std::expm1(-q * t);
  return hit;
}

}  // namespace am::model

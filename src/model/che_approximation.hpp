#pragma once
// Che's approximation for LRU caches — a refinement beyond the paper.
//
// The paper's Eq. 4 assumes P(line cached) = f(line) * capacity, which can
// exceed 1 for peaked distributions. Che's classic approximation instead
// models an LRU cache of C lines under independent reference probabilities
// q_j as
//      P(line j cached) = 1 - exp(-q_j * T)
// where the characteristic time T solves  sum_j (1 - exp(-q_j T)) = C.
// We ship it as an optional higher-fidelity model and benchmark it against
// Eq. 4 in the ablation benches (it markedly improves small-buffer accuracy,
// which the paper attributes to the fully-associative assumption).
#include <cstdint>

#include "model/distributions.hpp"

namespace am::model {

class CheApproximation {
 public:
  /// Builds per-line reference probabilities by integrating the
  /// distribution's pdf over each cache line (line_elems elements per line).
  CheApproximation(const AccessDistribution& dist, std::uint64_t element_bytes,
                   std::uint64_t line_bytes);

  /// Expected hit rate for a cache of the given byte capacity.
  double expected_hit_rate(std::uint64_t cache_bytes) const;
  double expected_miss_rate(std::uint64_t cache_bytes) const {
    return 1.0 - expected_hit_rate(cache_bytes);
  }

  /// Characteristic time T for a capacity of cache_lines lines.
  double characteristic_time(double cache_lines) const;

  std::uint64_t num_lines() const { return line_prob_.size(); }

 private:
  std::vector<double> line_prob_;  // probability an access falls in line j
  std::uint64_t line_bytes_;
};

}  // namespace am::model

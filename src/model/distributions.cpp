#include "model/distributions.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace am::model {

namespace {

double phi(double z) {  // standard normal pdf
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * std::numbers::pi);
}

double Phi(double z) {  // standard normal cdf
  return 0.5 * std::erfc(-z / std::numbers::sqrt2);
}

}  // namespace

AccessDistribution AccessDistribution::normal(std::uint64_t n, double mu,
                                              double sigma, std::string name) {
  if (n == 0 || sigma <= 0.0)
    throw std::invalid_argument("normal: need n>0, sigma>0");
  AccessDistribution d;
  d.kind_ = DistKind::kNormal;
  d.n_ = n;
  d.a_ = mu;
  d.b_ = sigma;
  d.name_ = std::move(name);
  const double nn = static_cast<double>(n);
  d.norm_ = Phi((nn - mu) / sigma) - Phi((0.0 - mu) / sigma);
  return d;
}

AccessDistribution AccessDistribution::exponential(std::uint64_t n,
                                                   double lambda,
                                                   std::string name) {
  if (n == 0 || lambda <= 0.0)
    throw std::invalid_argument("exponential: need n>0, lambda>0");
  AccessDistribution d;
  d.kind_ = DistKind::kExponential;
  d.n_ = n;
  d.a_ = lambda;
  d.name_ = std::move(name);
  d.norm_ = 1.0 - std::exp(-lambda * static_cast<double>(n));
  return d;
}

AccessDistribution AccessDistribution::triangular(std::uint64_t n, double mode,
                                                  std::string name) {
  if (n == 0 || mode < 0.0 || mode > static_cast<double>(n))
    throw std::invalid_argument("triangular: mode must lie in [0, n]");
  AccessDistribution d;
  d.kind_ = DistKind::kTriangular;
  d.n_ = n;
  d.a_ = mode;
  d.name_ = std::move(name);
  d.norm_ = 1.0;  // support is exactly [0, n]; no truncation needed
  return d;
}

AccessDistribution AccessDistribution::uniform(std::uint64_t n,
                                               std::string name) {
  if (n == 0) throw std::invalid_argument("uniform: need n>0");
  AccessDistribution d;
  d.kind_ = DistKind::kUniform;
  d.n_ = n;
  d.name_ = std::move(name);
  d.norm_ = 1.0;
  return d;
}

std::vector<AccessDistribution> AccessDistribution::table2(std::uint64_t n) {
  const double nn = static_cast<double>(n);
  std::vector<AccessDistribution> out;
  out.push_back(normal(n, nn / 2, nn / 4, "Norm_4"));
  out.push_back(normal(n, nn / 2, nn / 6, "Norm_6"));
  out.push_back(normal(n, nn / 2, nn / 8, "Norm_8"));
  out.push_back(exponential(n, 4.0 / nn, "Exp_4"));
  out.push_back(exponential(n, 6.0 / nn, "Exp_6"));
  out.push_back(exponential(n, 8.0 / nn, "Exp_8"));
  out.push_back(triangular(n, 0.4 * nn, "Tri_1"));
  out.push_back(triangular(n, 0.6 * nn, "Tri_2"));
  out.push_back(triangular(n, 0.8 * nn, "Tri_3"));
  out.push_back(uniform(n, "Uni"));
  return out;
}

double AccessDistribution::pdf(double x) const {
  const double nn = static_cast<double>(n_);
  if (x < 0.0 || x >= nn) return 0.0;
  switch (kind_) {
    case DistKind::kNormal:
      return phi((x - a_) / b_) / b_ / norm_;
    case DistKind::kExponential:
      return a_ * std::exp(-a_ * x) / norm_;
    case DistKind::kTriangular: {
      const double m = a_;
      if (x < m) return m > 0.0 ? 2.0 * x / (nn * m) : 0.0;
      return 2.0 * (nn - x) / (nn * (nn - m));
    }
    case DistKind::kUniform:
      return 1.0 / nn;
  }
  return 0.0;
}

double AccessDistribution::cdf(double x) const {
  const double nn = static_cast<double>(n_);
  if (x <= 0.0) return 0.0;
  if (x >= nn) return 1.0;
  switch (kind_) {
    case DistKind::kNormal:
      return (Phi((x - a_) / b_) - Phi((0.0 - a_) / b_)) / norm_;
    case DistKind::kExponential:
      return (1.0 - std::exp(-a_ * x)) / norm_;
    case DistKind::kTriangular: {
      const double m = a_;
      if (x < m) return x * x / (nn * m);
      return 1.0 - (nn - x) * (nn - x) / (nn * (nn - m));
    }
    case DistKind::kUniform:
      return x / nn;
  }
  return 0.0;
}

std::uint64_t AccessDistribution::sample(Rng& rng) const {
  const double nn = static_cast<double>(n_);
  double x = 0.0;
  switch (kind_) {
    case DistKind::kNormal: {
      // Box-Muller with rejection outside [0, n). With Table II parameters
      // (mu = n/2, sigma <= n/4) the rejection rate is below 5%.
      for (;;) {
        const double u1 = rng.uniform();
        const double u2 = rng.uniform();
        const double r = std::sqrt(-2.0 * std::log(1.0 - u1));
        x = a_ + b_ * r * std::cos(2.0 * std::numbers::pi * u2);
        if (x >= 0.0 && x < nn) break;
        x = a_ + b_ * r * std::sin(2.0 * std::numbers::pi * u2);
        if (x >= 0.0 && x < nn) break;
      }
      break;
    }
    case DistKind::kExponential: {
      // Inverse CDF of the *truncated* exponential: exact, no rejection.
      const double u = rng.uniform();
      x = -std::log(1.0 - u * norm_) / a_;
      break;
    }
    case DistKind::kTriangular: {
      const double u = rng.uniform();
      const double m = a_;
      const double pivot = m / nn;  // CDF value at the mode
      if (u < pivot)
        x = std::sqrt(u * nn * m);
      else
        x = nn - std::sqrt((1.0 - u) * nn * (nn - m));
      break;
    }
    case DistKind::kUniform:
      return rng.bounded(n_);
  }
  auto idx = static_cast<std::uint64_t>(x);
  if (idx >= n_) idx = n_ - 1;
  return idx;
}

double AccessDistribution::integral_pdf_sq() const {
  const double nn = static_cast<double>(n_);
  switch (kind_) {
    case DistKind::kNormal: {
      // integral of (phi((x-mu)/s)/s)^2 over [0,n] =
      //   1/(2 s sqrt(pi)) * [Phi(sqrt2 (n-mu)/s) - Phi(sqrt2 (0-mu)/s)]
      const double s = b_;
      const double span = Phi(std::numbers::sqrt2 * (nn - a_) / s) -
                          Phi(std::numbers::sqrt2 * (0.0 - a_) / s);
      return span / (2.0 * s * std::sqrt(std::numbers::pi)) / (norm_ * norm_);
    }
    case DistKind::kExponential: {
      const double l = a_;
      return l * (1.0 - std::exp(-2.0 * l * nn)) / (2.0 * norm_ * norm_);
    }
    case DistKind::kTriangular:
      // integral p^2 = 4m/(3 n^2 m) ... works out to 4/(3n), independent of
      // the mode: both linear ramps contribute (4/3)*(segment length)/n^2.
      return 4.0 / (3.0 * nn);
    case DistKind::kUniform:
      return 1.0 / nn;
  }
  return 0.0;
}

double AccessDistribution::stddev() const {
  const double nn = static_cast<double>(n_);
  switch (kind_) {
    case DistKind::kNormal:
      return b_;
    case DistKind::kExponential:
      return 1.0 / a_;
    case DistKind::kTriangular: {
      const double m = a_;
      return std::sqrt((nn * nn + m * m - nn * m) / 18.0);
    }
    case DistKind::kUniform:
      return nn / std::sqrt(12.0);
  }
  return 0.0;
}

}  // namespace am::model

#pragma once
// The probabilistic memory-access patterns of Table II (Casas &
// Bronevetsky 2014): truncated Normal, truncated Exponential, Triangular and
// Uniform distributions over buffer indices [0, n).
//
// Each distribution provides a continuous density p(x) over index space
// (normalized after truncation to [0, n)), an exact sampler, and the
// integral of p(x)^2 used by the Expected-Hit-Rate model (Eq. 4 of the
// paper): EHR = capacity_in_elements * integral(p^2).
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace am::model {

enum class DistKind { kNormal, kExponential, kTriangular, kUniform };

/// A probability distribution over buffer element indices [0, n).
/// Value-semantic; cheap to copy.
class AccessDistribution {
 public:
  /// Normal(mu, sigma) truncated to [0, n).
  static AccessDistribution normal(std::uint64_t n, double mu, double sigma,
                                   std::string name);
  /// Exponential(lambda) truncated to [0, n).
  static AccessDistribution exponential(std::uint64_t n, double lambda,
                                        std::string name);
  /// Triangular with lower 0, mode, upper n.
  static AccessDistribution triangular(std::uint64_t n, double mode,
                                       std::string name);
  /// Uniform over [0, n).
  static AccessDistribution uniform(std::uint64_t n, std::string name);

  /// The ten Table II patterns for a buffer of n elements:
  /// Norm_4/6/8, Exp_4/6/8, Tri_1/2/3, Uni.
  static std::vector<AccessDistribution> table2(std::uint64_t n);

  const std::string& name() const { return name_; }
  DistKind kind() const { return kind_; }
  std::uint64_t n() const { return n_; }

  /// Truncated-normalized density at x in [0, n); 0 outside.
  double pdf(double x) const;
  /// Truncated-normalized CDF at x (0 below 0, 1 above n).
  double cdf(double x) const;

  /// Draws an element index in [0, n).
  std::uint64_t sample(Rng& rng) const;

  /// integral over [0,n) of pdf(x)^2 dx — closed form. Multiplying by a
  /// cache capacity expressed in elements yields the paper's EHR (Eq. 4).
  double integral_pdf_sq() const;

  /// Standard deviation of the *untruncated* distribution, as listed in
  /// Table II of the paper (paper's table lists variances n^2/18, n^2/12
  /// for triangular/uniform; this returns the true stddev).
  double stddev() const;

 private:
  AccessDistribution() = default;

  DistKind kind_ = DistKind::kUniform;
  std::uint64_t n_ = 0;
  std::string name_;
  // Parameter meanings by kind:
  //   Normal:      a_ = mu, b_ = sigma
  //   Exponential: a_ = lambda
  //   Triangular:  a_ = mode
  double a_ = 0.0;
  double b_ = 0.0;
  double norm_ = 1.0;  // truncation normalization constant Z
};

}  // namespace am::model

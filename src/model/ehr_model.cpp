#include "model/ehr_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace am::model {

EhrModel::EhrModel(const AccessDistribution& dist, std::uint64_t element_bytes)
    : ipdf2_(dist.integral_pdf_sq()),
      element_bytes_(element_bytes),
      buffer_bytes_(dist.n() * element_bytes) {
  if (element_bytes == 0) throw std::invalid_argument("element_bytes == 0");
}

double EhrModel::expected_hit_rate(std::uint64_t cache_bytes) const {
  const double cap_elems =
      static_cast<double>(cache_bytes) / static_cast<double>(element_bytes_);
  return std::clamp(cap_elems * ipdf2_, 0.0, 1.0);
}

double EhrModel::expected_miss_rate(std::uint64_t cache_bytes) const {
  return 1.0 - expected_hit_rate(cache_bytes);
}

double EhrModel::invert_capacity(double observed_miss_rate) const {
  const double hit = std::clamp(1.0 - observed_miss_rate, 0.0, 1.0);
  return hit / ipdf2_ * static_cast<double>(element_bytes_);
}

}  // namespace am::model

#pragma once
// The Expected-Hit-Rate (EHR) analytic model of Section III-C of the paper
// (Equations 2-4) and its inversion, which turns a measured miss rate into
// an estimate of the cache capacity effectively available to a workload.
//
//   EHR = capacity_in_elements * integral(pdf^2)          (Eq. 4)
//
// Assumptions inherited from the paper: fully associative cache, buffer
// larger than the cache, non-zero access probability everywhere, and
// steady-state execution. The model slightly under-predicts hit rates of
// set-associative caches for lightly-loaded configurations (paper Fig. 5).
#include <cstdint>

#include "model/distributions.hpp"

namespace am::model {

/// Analytic EHR model for a probabilistic workload over a buffer.
class EhrModel {
 public:
  /// element_bytes: size of one buffer element (the paper's benchmarks use
  /// 4-byte ints). The distribution is over element indices.
  EhrModel(const AccessDistribution& dist, std::uint64_t element_bytes);

  /// Expected hit rate given cache capacity in bytes (clamped to [0,1]).
  double expected_hit_rate(std::uint64_t cache_bytes) const;

  /// Expected miss rate = 1 - expected_hit_rate.
  double expected_miss_rate(std::uint64_t cache_bytes) const;

  /// Inversion used in Section III-C3: given an observed miss rate, the
  /// effective cache capacity (bytes) that would produce it under Eq. 4.
  double invert_capacity(double observed_miss_rate) const;

  /// integral(pdf^2) per element index — the distribution "concentration".
  double concentration() const { return ipdf2_; }

  std::uint64_t buffer_bytes() const { return buffer_bytes_; }

 private:
  double ipdf2_ = 0.0;           // integral of pdf^2 over index space
  std::uint64_t element_bytes_;  // bytes per element
  std::uint64_t buffer_bytes_;
};

}  // namespace am::model

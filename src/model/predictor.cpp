#include "model/predictor.hpp"

#include <algorithm>
#include <stdexcept>

namespace am::model {

SensitivityCurve::SensitivityCurve(std::vector<SensitivityPoint> points)
    : points_(std::move(points)) {
  if (points_.empty())
    throw std::invalid_argument("SensitivityCurve: no points");
  std::sort(points_.begin(), points_.end(),
            [](const SensitivityPoint& a, const SensitivityPoint& b) {
              return a.resource_available < b.resource_available;
            });
  // Enforce the monotone upper envelope scanning from most resource down:
  // less resource can never be predicted faster than more resource.
  baseline_runtime_ = points_.back().runtime_seconds;
  double floor_runtime = points_.back().runtime_seconds;
  for (auto it = points_.rbegin(); it != points_.rend(); ++it) {
    floor_runtime = std::max(floor_runtime, it->runtime_seconds);
    it->runtime_seconds = floor_runtime;
  }
}

double SensitivityCurve::predict_runtime(double resource) const {
  if (resource <= points_.front().resource_available)
    return points_.front().runtime_seconds;
  if (resource >= points_.back().resource_available)
    return points_.back().runtime_seconds;
  const auto hi = std::lower_bound(
      points_.begin(), points_.end(), resource,
      [](const SensitivityPoint& p, double r) { return p.resource_available < r; });
  const auto lo = hi - 1;
  const double span = hi->resource_available - lo->resource_available;
  const double frac = span > 0.0 ? (resource - lo->resource_available) / span : 0.0;
  return lo->runtime_seconds +
         frac * (hi->runtime_seconds - lo->runtime_seconds);
}

double SensitivityCurve::predict_slowdown(double resource) const {
  return predict_runtime(resource) / baseline_runtime_;
}

double SensitivityCurve::active_use_threshold(double tolerance) const {
  const double limit = baseline_runtime_ * (1.0 + tolerance);
  // Walk from most resource to least: the first level whose (envelope)
  // runtime exceeds the tolerance bound marks the boundary; the application
  // actively uses at least the previous (non-degraded) level.
  for (auto it = points_.rbegin(); it != points_.rend(); ++it) {
    if (it->runtime_seconds > limit) {
      auto degraded = it.base() - 1;  // iterator to *it
      if (degraded + 1 != points_.end()) return (degraded + 1)->resource_available;
      return degraded->resource_available;
    }
  }
  return 0.0;
}

}  // namespace am::model

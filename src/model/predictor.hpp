#pragma once
// Performance prediction from measured sensitivity curves — the paper's
// final contribution: given how an application responded to calibrated
// interference levels, predict its runtime on a machine that offers less
// cache capacity or memory bandwidth (e.g. a future memory-starved node).
//
// Contract:
//
//   * Conservative monotonicity: input points need not be monotone
//     (measurements are noisy); queries evaluate the monotone *upper*
//     envelope, so predicted runtimes never improve as resources shrink
//     and noise can only make predictions more cautious.
//   * No extrapolation: predictions clamp outside the measured range —
//     the curve refuses to invent behaviour below the worst (or above the
//     best) level that was actually measured.
//   * active_use_threshold is the paper's Fig. 1 definition: the resource
//     level below which runtime exceeds baseline * (1 + tolerance); 0
//     when the application never degraded within the sweep.
#include <cstdint>
#include <vector>

namespace am::model {

/// One observation: the application ran with `resource_available` units of
/// a resource (bytes of shared cache, or bytes/s of memory bandwidth) and
/// took `runtime_seconds`.
struct SensitivityPoint {
  double resource_available = 0.0;
  double runtime_seconds = 0.0;
};

/// Piecewise-linear sensitivity curve over resource availability.
/// Monotonicity is not enforced on input (measurements are noisy) but
/// queries use the monotone upper envelope so predictions are conservative.
class SensitivityCurve {
 public:
  explicit SensitivityCurve(std::vector<SensitivityPoint> points);

  /// Predicted runtime when `resource` units are available. Clamps outside
  /// the measured range (no extrapolation beyond the worst observed level).
  double predict_runtime(double resource) const;

  /// Predicted slowdown factor relative to the most-resource point.
  double predict_slowdown(double resource) const;

  /// The resource level below which runtime exceeds baseline * (1 + tol):
  /// the paper's definition of the amount of resource the application
  /// actively uses (Fig. 1). Returns 0 if never degraded.
  double active_use_threshold(double tolerance = 0.05) const;

  const std::vector<SensitivityPoint>& points() const { return points_; }

 private:
  std::vector<SensitivityPoint> points_;  // sorted by resource ascending
  double baseline_runtime_ = 0.0;         // runtime at max resource
};

}  // namespace am::model

#include "model/stack_distance.hpp"

#include <algorithm>

namespace am::model {

void StackDistanceAnalyzer::bit_add(std::size_t pos, int delta) {
  for (std::size_t i = pos; i < bit_.size(); i += i & (~i + 1))
    bit_[i] += delta;
}

std::uint64_t StackDistanceAnalyzer::bit_suffix_sum(std::size_t from) const {
  // Prefix sums: suffix(from) = total - prefix(from - 1).
  auto prefix = [this](std::size_t pos) {
    std::uint64_t acc = 0;
    for (std::size_t i = pos; i > 0; i -= i & (~i + 1))
      acc += static_cast<std::uint64_t>(bit_[i]);
    return acc;
  };
  const std::uint64_t total = prefix(bit_.size() - 1);
  return total - prefix(from - 1);
}

void StackDistanceAnalyzer::grow(std::size_t need) {
  // A Fenwick node covers a range, so the array cannot simply be resized:
  // rebuild the tree from the raw markers at the new size.
  std::size_t size = std::max<std::size_t>(1024, bit_.empty() ? 0 : (bit_.size() - 1) * 2);
  while (size < need) size *= 2;
  bit_.assign(size + 1, 0);
  marker_.resize(size + 1, 0);
  for (std::size_t pos = 1; pos < marker_.size(); ++pos)
    if (marker_[pos]) bit_add(pos, +1);
}

std::uint64_t StackDistanceAnalyzer::access(std::uint64_t line) {
  ++time_;
  if (bit_.size() <= time_) grow(static_cast<std::size_t>(time_));

  std::uint64_t distance = kCold;
  const auto it = last_access_.find(line);
  if (it != last_access_.end()) {
    // Active markers strictly after the previous access are exactly the
    // distinct lines touched since then (each line keeps one marker, at
    // its most recent access).
    distance = bit_suffix_sum(static_cast<std::size_t>(it->second) + 1);
    bit_add(static_cast<std::size_t>(it->second), -1);
    marker_[static_cast<std::size_t>(it->second)] = 0;
  }
  bit_add(static_cast<std::size_t>(time_), +1);
  marker_[static_cast<std::size_t>(time_)] = 1;
  last_access_[line] = time_;
  return distance;
}

std::vector<std::uint64_t> StackDistanceAnalyzer::analyze(
    const std::vector<std::uint64_t>& lines) {
  StackDistanceAnalyzer analyzer;
  std::vector<std::uint64_t> out;
  out.reserve(lines.size());
  for (const auto line : lines) out.push_back(analyzer.access(line));
  return out;
}

MissRateCurve::MissRateCurve(const std::vector<std::uint64_t>& distances) {
  finite_.reserve(distances.size());
  for (const auto d : distances) {
    if (d == StackDistanceAnalyzer::kCold)
      ++cold_;
    else
      finite_.push_back(d);
  }
  std::sort(finite_.begin(), finite_.end());
}

double MissRateCurve::miss_rate(std::uint64_t cache_lines) const {
  const std::uint64_t total = total_accesses();
  if (total == 0) return 0.0;
  // A hit requires distance < cache_lines (the line plus the distinct
  // lines since fit together in the cache).
  const auto hit_end = std::lower_bound(finite_.begin(), finite_.end(),
                                        cache_lines);
  const auto hits = static_cast<std::uint64_t>(hit_end - finite_.begin());
  return 1.0 - static_cast<double>(hits) / static_cast<double>(total);
}

double MissRateCurve::warm_miss_rate(std::uint64_t cache_lines) const {
  if (finite_.empty()) return 0.0;
  const auto hit_end =
      std::lower_bound(finite_.begin(), finite_.end(), cache_lines);
  const auto hits = static_cast<std::uint64_t>(hit_end - finite_.begin());
  return 1.0 - static_cast<double>(hits) /
                   static_cast<double>(finite_.size());
}

std::uint64_t MissRateCurve::capacity_for_miss_rate(double target) const {
  if (finite_.empty()) return UINT64_MAX;
  if (miss_rate(finite_.back() + 1) > target) return UINT64_MAX;
  std::uint64_t lo = 0, hi = finite_.back() + 1;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (miss_rate(mid) <= target)
      hi = mid;
    else
      lo = mid + 1;
  }
  return lo;
}

}  // namespace am::model

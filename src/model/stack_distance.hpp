#pragma once
// Exact LRU stack-distance analysis (Mattson et al.) over a captured
// access trace, using the Bennett-Kruskal algorithm: a Fenwick tree over
// access timestamps counts the distinct lines touched since an address's
// previous access in O(log n).
//
// The resulting miss-rate curve is the ground truth the paper's analytic
// EHR model (Eq. 4) approximates: for any fully-associative LRU capacity
// C, miss_rate(C) = P(stack distance >= C). bench/abl_mrc compares the
// three models (exact MRC, Eq. 4, Che) against the simulator.
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace am::model {

/// Streaming stack-distance computation over line addresses.
class StackDistanceAnalyzer {
 public:
  /// Returned for the first access to a line (cold miss).
  static constexpr std::uint64_t kCold = UINT64_MAX;

  /// Feeds the next line address; returns its LRU stack distance: the
  /// number of *distinct* lines referenced since this line's previous
  /// access (0 = immediate re-reference), or kCold.
  std::uint64_t access(std::uint64_t line);

  /// Convenience: all distances of a trace.
  static std::vector<std::uint64_t> analyze(
      const std::vector<std::uint64_t>& lines);

  std::uint64_t accesses() const { return time_; }
  std::uint64_t unique_lines() const {
    return static_cast<std::uint64_t>(last_access_.size());
  }

 private:
  void bit_add(std::size_t pos, int delta);
  std::uint64_t bit_suffix_sum(std::size_t from) const;

  void grow(std::size_t need);

  std::vector<int> bit_;        // Fenwick tree over timestamps (1-based)
  std::vector<std::uint8_t> marker_;  // raw markers, for tree rebuilds
  std::unordered_map<std::uint64_t, std::uint64_t> last_access_;
  std::uint64_t time_ = 0;
};

/// Miss-rate curve built from stack distances.
class MissRateCurve {
 public:
  explicit MissRateCurve(const std::vector<std::uint64_t>& distances);

  /// Fraction of accesses that miss in a fully associative LRU cache of
  /// `cache_lines` lines. Cold misses always count as misses.
  double miss_rate(std::uint64_t cache_lines) const;

  /// Steady-state variant: cold (first-touch) misses excluded from both
  /// numerator and denominator — comparable to the paper's warmed-up
  /// measurements.
  double warm_miss_rate(std::uint64_t cache_lines) const;

  /// Smallest capacity whose miss rate is <= target (UINT64_MAX if even
  /// holding every line cannot reach it, i.e. cold misses dominate).
  std::uint64_t capacity_for_miss_rate(double target) const;

  std::uint64_t total_accesses() const {
    return static_cast<std::uint64_t>(finite_.size()) + cold_;
  }
  std::uint64_t cold_misses() const { return cold_; }

 private:
  std::vector<std::uint64_t> finite_;  // sorted finite distances
  std::uint64_t cold_ = 0;
};

}  // namespace am::model

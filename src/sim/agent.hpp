#pragma once
// Agents are the simulated "threads": application ranks, synthetic
// benchmarks and interference threads all implement this interface. Each
// agent runs on one core and owns a local cycle clock; the Engine
// interleaves agents deterministically by always advancing the one whose
// clock is furthest behind.
#include <span>
#include <string>

#include "common/rng.hpp"
#include "sim/types.hpp"

namespace am::sim {

class Engine;

/// The per-step execution interface handed to an agent. All memory and
/// compute operations advance the agent's local clock.
class AgentContext {
 public:
  AgentContext(Engine& engine, std::size_t agent_index)
      : engine_(&engine), index_(agent_index) {}

  /// The agent's local clock, in simulated cycles. Every operation below
  /// advances it; agents on other cores may be ahead or behind.
  Cycles now() const;
  /// The core this agent was pinned to by Engine::add_agent.
  CoreId core() const;
  /// The agent's private deterministic random stream (seeded from the
  /// engine seed and the agent index, never from other agents' draws) —
  /// the only randomness an agent may use if runs are to be reproducible.
  Rng& rng();
  Engine& engine() { return *engine_; }
  std::size_t agent_index() const { return index_; }

  /// Pure computation for `cycles` cycles.
  void compute(Cycles cycles);

  /// Dependent (serialized) memory operations: each access starts only
  /// when the previous one has completed.
  void load(Addr addr);
  void store(Addr addr);

  /// Independent memory operations that may overlap in the memory system
  /// (bounded by the machine's line-fill-buffer count). The clock advances
  /// to the completion of the slowest access in the batch.
  void load_batch(std::span<const Addr> addrs);
  void store_batch(std::span<const Addr> addrs);

 private:
  Engine* engine_;
  std::size_t index_;
};

/// Base class for everything that executes on a simulated core. Contract:
/// `step` must be deterministic given the context (use `ctx.rng()`, never
/// external randomness or host state), and agents are engine-owned and
/// non-copyable — shared resources they reference should be kept alive via
/// Engine::own.
class Agent {
 public:
  explicit Agent(std::string name) : name_(std::move(name)) {}
  virtual ~Agent() = default;

  Agent(const Agent&) = delete;
  Agent& operator=(const Agent&) = delete;

  /// Performs a bounded chunk of work (typically tens of operations).
  /// Must advance the context's clock; the engine force-advances by one
  /// cycle otherwise to guarantee progress.
  virtual void step(AgentContext& ctx) = 0;

  /// Primary agents end the simulation once all of them are finished.
  /// Interference agents run forever and return false.
  virtual bool finished() const = 0;

  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

}  // namespace am::sim

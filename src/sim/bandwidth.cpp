#include "sim/bandwidth.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace am::sim {

BandwidthChannel::BandwidthChannel(double bytes_per_cycle,
                                   Cycles latency_cycles)
    : bytes_per_cycle_(bytes_per_cycle), latency_cycles_(latency_cycles) {
  if (bytes_per_cycle <= 0.0)
    throw std::invalid_argument("BandwidthChannel: bytes_per_cycle <= 0");
}

Cycles BandwidthChannel::transfer(Cycles now, std::uint64_t bytes) {
  const auto duration = static_cast<Cycles>(
      std::ceil(static_cast<double>(bytes) / bytes_per_cycle_));
  const Cycles start = std::max(now, busy_until_);
  busy_until_ = start + duration;
  total_bytes_ += bytes;
  busy_cycles_ += duration;
  return busy_until_ + latency_cycles_;
}

void BandwidthChannel::transfer_async(Cycles now, std::uint64_t bytes) {
  (void)transfer(now, bytes);
}

bool BandwidthChannel::saturated(Cycles now, Cycles max_queue_cycles) const {
  return busy_until_ > now + max_queue_cycles;
}

double BandwidthChannel::utilization(Cycles now) const {
  if (now == 0) return 0.0;
  return std::min(1.0, static_cast<double>(busy_cycles_) /
                           static_cast<double>(now));
}

}  // namespace am::sim

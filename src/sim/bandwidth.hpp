#pragma once
// Finite-bandwidth channel model: a serially occupied link (memory bus or
// inter-node interconnect). Transfers queue behind each other, which is how
// bandwidth interference manifests as added miss latency.
#include <cstdint>

#include "sim/types.hpp"

namespace am::sim {

/// Occupancy model, not a queue of objects: the channel only remembers
/// when it next becomes free (`busy_until`), and transfers are served in
/// call order. Callers need not present monotonically increasing `now`
/// values — a transfer requested in the channel's past simply starts at
/// max(now, busy_until) — but call *order* is part of the deterministic
/// simulation state.
class BandwidthChannel {
 public:
  /// bytes_per_cycle: peak bandwidth (must be > 0; throws
  /// std::invalid_argument otherwise). latency_cycles: propagation latency
  /// added after the transfer completes (DRAM access / link latency).
  BandwidthChannel(double bytes_per_cycle, Cycles latency_cycles);

  /// Schedules a transfer of `bytes` requested at time `now`; returns the
  /// completion time (queueing + occupancy + latency). Occupancy is
  /// ceil(bytes / bytes_per_cycle) cycles, so even a 1-byte transfer
  /// occupies the channel for a full cycle.
  Cycles transfer(Cycles now, std::uint64_t bytes);

  /// Schedules a transfer that nobody waits on (write-backs, prefetches):
  /// occupies the channel but returns no completion time.
  void transfer_async(Cycles now, std::uint64_t bytes);

  /// True if a transfer issued now would have to queue more than
  /// `max_queue_cycles` — used to drop prefetches under saturation.
  bool saturated(Cycles now, Cycles max_queue_cycles) const;

  std::uint64_t total_bytes() const { return total_bytes_; }
  Cycles busy_until() const { return busy_until_; }
  double bytes_per_cycle() const { return bytes_per_cycle_; }

  /// Average utilization over [0, now]: busy cycles / now, clamped to 1.0
  /// (scheduled-ahead work can exceed `now`). 0.0 when now == 0.
  double utilization(Cycles now) const;

  void reset_stats() { total_bytes_ = 0; busy_cycles_ = 0; }

 private:
  double bytes_per_cycle_;
  Cycles latency_cycles_;
  Cycles busy_until_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t busy_cycles_ = 0;
};

}  // namespace am::sim

#include "sim/banked_dram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace am::sim {

BankedDramBackend::BankedDramBackend(const DramConfig& config,
                                     double bytes_per_cycle,
                                     std::uint32_t line_bytes,
                                     std::uint32_t max_outstanding)
    : config_(config), max_outstanding_(max_outstanding) {
  config_.validate(line_bytes);
  if (bytes_per_cycle <= 0.0)
    throw std::invalid_argument("BankedDramBackend: bytes_per_cycle <= 0");
  if (max_outstanding == 0)
    throw std::invalid_argument("BankedDramBackend: max_outstanding == 0");
  channel_bytes_per_cycle_ = bytes_per_cycle / config_.channels;
  lines_per_row_ = config_.row_bytes / line_bytes;
  channels_.resize(config_.channels);
  for (std::uint32_t c = 0; c < config_.channels; ++c) {
    auto& ch = channels_[c];
    ch.banks.resize(config_.banks);
    ch.inflight.reserve(max_outstanding_);
    if (config_.refresh_interval != 0)
      // Stagger: bank b of every channel refreshes at phase
      // b/banks of the interval, like real per-bank tREFI staggering —
      // so a stream striding across banks never loses them all at once.
      for (std::uint32_t b = 0; b < config_.banks; ++b)
        ch.banks[b].next_refresh = 1 + (static_cast<Cycles>(b) *
                                        config_.refresh_interval) /
                                           config_.banks;
  }
}

BankedDramBackend::Decoded BankedDramBackend::decode(Addr line) const {
  const std::uint32_t channel =
      static_cast<std::uint32_t>(line % config_.channels);
  const std::uint64_t global_row = (line / config_.channels) / lines_per_row_;
  return {channel, static_cast<std::uint32_t>(global_row % config_.banks),
          global_row / config_.banks};
}

Cycles BankedDramBackend::catch_up_refresh(Bank& bank, Cycles now) {
  if (config_.refresh_interval == 0) return 0;
  const Cycles ready_before = std::max(bank.ready, now);
  while (bank.next_refresh <= now) {
    // A due refresh window is taken before any newly arriving request:
    // it was scheduled in this bank's past.
    const Cycles start = std::max(bank.next_refresh, bank.ready);
    bank.ready = start + config_.refresh_cycles;
    bank.open_row = kNoRow;  // refresh precharges the bank
    ++stats_.refreshes;
    bank.next_refresh += config_.refresh_interval;
  }
  const Cycles ready_after = std::max(bank.ready, now);
  return ready_after - ready_before;
}

Cycles BankedDramBackend::schedule(Cycles now, Addr line,
                                   std::uint64_t bytes) {
  const Decoded d = decode(line);
  Channel& ch = channels_[d.channel];
  Bank& bank = ch.banks[d.bank];

  stats_.refresh_stall_cycles += catch_up_refresh(bank, now);
  Cycles start = std::max(now, bank.ready);

  const bool row_hit = bank.open_row == d.row;
  Cycles access_lat;
  if (row_hit) {
    // FR-FCFS-lite "first ready": the open row streams out without
    // competing for a miss slot.
    ++stats_.row_hits;
    access_lat = config_.t_cas;
  } else {
    if (ch.inflight.size() == max_outstanding_) {
      const auto min_it =
          std::min_element(ch.inflight.begin(), ch.inflight.end());
      start = std::max(start, *min_it);
      ch.inflight.erase(min_it);
    }
    if (bank.open_row == kNoRow) {
      ++stats_.row_empties;
      access_lat = config_.t_rcd + config_.t_cas;
    } else {
      ++stats_.row_conflicts;
      access_lat = config_.t_rp + config_.t_rcd + config_.t_cas;
    }
  }

  const auto burst = static_cast<Cycles>(std::ceil(
      static_cast<double>(bytes) / channel_bytes_per_cycle_));
  const Cycles data_ready = start + config_.base_latency + access_lat;
  const Cycles data_start = std::max(data_ready, ch.bus_busy_until);
  ch.bus_busy_until = data_start + burst;
  const Cycles done = ch.bus_busy_until;

  bank.open_row = d.row;  // open-page policy
  bank.ready = done;
  if (!row_hit) ch.inflight.push_back(done);
  total_bytes_ += bytes;
  busy_cycles_ += burst;
  return done;
}

bool BankedDramBackend::saturated(Cycles now, Cycles max_queue_cycles,
                                  Addr line) const {
  const Channel& ch = channels_[decode(line).channel];
  return ch.bus_busy_until > now + max_queue_cycles;
}

Cycles BankedDramBackend::busy_until() const {
  Cycles latest = 0;
  for (const auto& ch : channels_)
    latest = std::max(latest, ch.bus_busy_until);
  return latest;
}

double BankedDramBackend::utilization(Cycles now) const {
  if (now == 0) return 0.0;
  return std::min(1.0, static_cast<double>(busy_cycles_) /
                           (static_cast<double>(now) * config_.channels));
}

void BankedDramBackend::reset_stats() {
  total_bytes_ = 0;
  busy_cycles_ = 0;
  stats_ = MemoryBackendStats{};
}

}  // namespace am::sim

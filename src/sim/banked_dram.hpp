#pragma once
// DRAMsim3-style banked DRAM backend: per-channel command/data queues,
// per-bank row-buffer state machines, FR-FCFS-lite scheduling, periodic
// refresh. See sim/memory_backend.hpp for the interface contract and
// DramConfig (sim/machine.hpp) for the timing parameters.
//
// Model, adapted from DRAMsim3's bankstate/channel_state/command_queue/
// refresh decomposition (Li et al., CAL 2020) to this simulator's
// event-driven "request at `now`, answer a completion cycle" boundary:
//
//   * Address mapping: line addresses interleave across channels
//     (channel = line mod channels); within a channel, consecutive rows
//     stripe across banks, so streams get row-buffer locality and
//     independent streams get bank-level parallelism.
//   * Bank state machine (open-page policy): a column access into the
//     open row costs tCAS; an activate into a precharged bank tRCD+tCAS;
//     a row conflict tRP+tRCD+tCAS. The touched row stays open.
//   * Channel data bus: every transfer occupies the channel's bus for
//     ceil(bytes / per-channel bytes-per-cycle) after its column access,
//     serializing like the original pipe but per channel.
//   * FR-FCFS-lite: each channel holds at most `max_outstanding` row
//     misses in flight; a further miss waits for the earliest one to
//     finish. Row hits bypass the occupancy limit — "first-ready" —
//     which is the scheduling-priority half of FR-FCFS without
//     modelling reordering this call-order-deterministic engine could
//     never observe.
//   * Refresh: every `refresh_interval` cycles a bank takes a
//     `refresh_cycles` window (banks staggered across the interval, as
//     per-bank refresh staggers tREFI), closing its row and pushing
//     queued work back. The wait requests actually experience is
//     counted in stats().refresh_stall_cycles.
#include <cstdint>
#include <vector>

#include "sim/machine.hpp"
#include "sim/memory_backend.hpp"

namespace am::sim {

class BankedDramBackend final : public MemoryBackend {
 public:
  /// `bytes_per_cycle` is the socket's aggregate peak (the same number
  /// the channel model uses), split evenly across config.channels;
  /// `max_outstanding` bounds each channel's in-flight row misses
  /// (MachineConfig::max_outstanding_misses). Throws
  /// std::invalid_argument on invalid config (DramConfig::validate) or
  /// non-positive bandwidth.
  BankedDramBackend(const DramConfig& config, double bytes_per_cycle,
                    std::uint32_t line_bytes, std::uint32_t max_outstanding);

  Cycles transfer(Cycles now, Addr line, std::uint64_t bytes) override {
    return schedule(now, line, bytes);
  }
  void transfer_async(Cycles now, Addr line, std::uint64_t bytes) override {
    (void)schedule(now, line, bytes);
  }
  bool saturated(Cycles now, Cycles max_queue_cycles, Addr line) const override;
  std::uint64_t total_bytes() const override { return total_bytes_; }
  Cycles busy_until() const override;
  double utilization(Cycles now) const override;
  void reset_stats() override;
  const MemoryBackendStats& stats() const override { return stats_; }
  std::string_view name() const override { return "banked-dram"; }

  const DramConfig& config() const { return config_; }

 private:
  static constexpr std::uint64_t kNoRow = ~0ull;

  struct Bank {
    std::uint64_t open_row = kNoRow;
    Cycles ready = 0;         // earliest next command start
    Cycles next_refresh = 0;  // next scheduled refresh window
  };
  struct Channel {
    Cycles bus_busy_until = 0;
    std::vector<Bank> banks;
    std::vector<Cycles> inflight;  // completion times of in-flight misses
  };

  struct Decoded {
    std::uint32_t channel;
    std::uint32_t bank;
    std::uint64_t row;
  };
  Decoded decode(Addr line) const;

  /// Applies refresh windows due at or before `now` to `bank`; returns
  /// the extra wait a request arriving at `now` sees because of them.
  Cycles catch_up_refresh(Bank& bank, Cycles now);

  Cycles schedule(Cycles now, Addr line, std::uint64_t bytes);

  DramConfig config_;
  double channel_bytes_per_cycle_;
  std::uint64_t lines_per_row_;
  std::uint32_t max_outstanding_;
  std::vector<Channel> channels_;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t busy_cycles_ = 0;  // data-bus occupancy, all channels
  MemoryBackendStats stats_;
};

}  // namespace am::sim

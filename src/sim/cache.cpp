#include "sim/cache.hpp"

#include <stdexcept>

namespace am::sim {

void CacheConfig::validate() const {
  if (size_bytes == 0 || line_bytes == 0 || ways == 0)
    throw std::invalid_argument("CacheConfig: zero field in " + name);
  if (size_bytes % line_bytes != 0)
    throw std::invalid_argument("CacheConfig: size not multiple of line in " +
                                name);
  if (num_lines() % ways != 0)
    throw std::invalid_argument("CacheConfig: lines not multiple of ways in " +
                                name);
  if (num_sets() == 0)
    throw std::invalid_argument("CacheConfig: zero sets in " + name);
}

Cache::Cache(CacheConfig config) : config_(std::move(config)) {
  config_.validate();
  indexer_ = SetIndexer(config_.set_hash, config_.num_sets());
  lines_.resize(config_.num_lines());
  if (config_.filter) filter_.resize(config_.num_sets());
}

std::size_t Cache::set_base(Addr line_addr) const {
  return static_cast<std::size_t>(indexer_.index(line_addr) * config_.ways);
}

Cache::AccessOutcome Cache::access(Addr line_addr, std::uint16_t owner,
                                   std::uint32_t sharer_bit, bool is_store) {
  AccessOutcome out;
  const std::size_t base = set_base(line_addr);
  ++stamp_;
  std::size_t victim = base;
  std::uint64_t victim_stamp = UINT64_MAX;
  bool found_invalid = false;
  for (std::size_t i = base; i < base + config_.ways; ++i) {
    Line& line = lines_[i];
    if (line.valid && line.tag == line_addr) {
      line.stamp = stamp_;
      line.sharers |= sharer_bit;
      line.dirty |= is_store;
      out.hit = true;
      filter_update(line_addr, i);
      return out;
    }
    if (!line.valid) {
      if (!found_invalid) {
        victim = i;
        found_invalid = true;
      }
    } else if (!found_invalid && line.stamp < victim_stamp) {
      victim = i;
      victim_stamp = line.stamp;
    }
  }
  if (!found_invalid && config_.replacement == Replacement::kRandom)
    victim = base + static_cast<std::size_t>(victim_rng_.bounded(config_.ways));
  Line& line = lines_[victim];
  if (line.valid) {
    out.evicted = true;
    out.evicted_dirty = line.dirty;
    out.evicted_line = line.tag;
    out.evicted_sharers = line.sharers;
  }
  const std::uint64_t insert_stamp =
      stamp_ > config_.insert_age ? stamp_ - config_.insert_age : 0;
  line = Line{line_addr, insert_stamp, sharer_bit, owner, /*valid=*/true,
              /*dirty=*/is_store};
  // The victim and the fill share a set, so this also unmaps a victim that
  // happened to be the set's filter entry.
  filter_update(line_addr, victim);
  return out;
}

bool Cache::contains(Addr line_addr) const {
  const std::size_t base = set_base(line_addr);
  for (std::size_t i = base; i < base + config_.ways; ++i)
    if (lines_[i].valid && lines_[i].tag == line_addr) return true;
  return false;
}

void Cache::touch(Addr line_addr) {
  const std::size_t base = set_base(line_addr);
  for (std::size_t i = base; i < base + config_.ways; ++i) {
    if (lines_[i].valid && lines_[i].tag == line_addr) {
      lines_[i].stamp = ++stamp_;
      return;
    }
  }
}

bool Cache::mark_dirty(Addr line_addr) {
  const std::size_t base = set_base(line_addr);
  for (std::size_t i = base; i < base + config_.ways; ++i) {
    if (lines_[i].valid && lines_[i].tag == line_addr) {
      lines_[i].dirty = true;
      return true;
    }
  }
  return false;
}

bool Cache::invalidate(Addr line_addr) {
  const std::size_t base = set_base(line_addr);
  for (std::size_t i = base; i < base + config_.ways; ++i) {
    Line& line = lines_[i];
    if (line.valid && line.tag == line_addr) {
      const bool dirty = line.dirty;
      line = Line{};
      filter_drop(line_addr);
      return dirty;
    }
  }
  return false;
}

void Cache::flush() {
  for (auto& line : lines_) line = Line{};
  for (auto& slot : filter_) slot = FilterSlot{};
}

std::uint64_t Cache::occupancy_lines(std::uint16_t owner) const {
  std::uint64_t count = 0;
  for (const auto& line : lines_)
    if (line.valid && line.owner == owner) ++count;
  return count;
}

std::uint64_t Cache::resident_lines() const {
  std::uint64_t count = 0;
  for (const auto& line : lines_)
    if (line.valid) ++count;
  return count;
}

}  // namespace am::sim

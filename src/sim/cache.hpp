#pragma once
// Set-associative cache model with per-line LRU stamps, dirty bits, owner
// tags (for occupancy accounting in validation tests) and sharer masks
// (for inclusive-L3 back-invalidation).
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sim/types.hpp"

namespace am::sim {

/// Victim selection policy.
enum class Replacement : std::uint8_t {
  kLru,     // strict least-recently-used (per-line stamps)
  kRandom,  // uniform random victim (deterministic per-cache stream);
            // closer to the steady state the paper's Eq. 2-3 derivation
            // assumes, and to how aggressively real pseudo-LRU L3s evict
            // hot lines under churn
};

struct CacheConfig {
  std::uint64_t size_bytes = 0;
  std::uint32_t line_bytes = 64;
  std::uint32_t ways = 8;
  std::string name;
  /// Optional thrash resistance (SRRIP-style): newly inserted lines enter
  /// with a stamp this many accesses in the past, so one-touch streaming
  /// data is evicted before recently re-used lines. 0 (default, used by
  /// the Xeon20MB presets) = plain MRU insertion, which reproduces the
  /// paper's observation that 3+ BWThrs start stealing cache capacity;
  /// see bench/abl_insertion for the policy tradeoff.
  std::uint64_t insert_age = 0;
  Replacement replacement = Replacement::kLru;

  std::uint64_t num_lines() const { return size_bytes / line_bytes; }
  std::uint64_t num_sets() const { return num_lines() / ways; }
  /// Throws std::invalid_argument when geometry is inconsistent.
  void validate() const;
};

class Cache {
 public:
  explicit Cache(CacheConfig config);

  struct AccessOutcome {
    bool hit = false;
    bool evicted = false;
    bool evicted_dirty = false;
    Addr evicted_line = 0;          // line index (addr / line_bytes)
    std::uint32_t evicted_sharers = 0;
  };

  /// Looks up a line; on miss, inserts it and reports the victim (if any).
  /// `owner` tags the inserting agent (occupancy accounting); `sharer_bit`
  /// is OR-ed into the line's sharer mask (used by the L3 to know which
  /// private caches may hold copies).
  AccessOutcome access(Addr line_addr, std::uint16_t owner,
                       std::uint32_t sharer_bit = 0, bool is_store = false);

  /// True if the line is present (no replacement state update).
  bool contains(Addr line_addr) const;

  /// Refreshes the LRU stamp of a resident line; no-op when absent.
  void touch(Addr line_addr);

  /// Sets the dirty bit of a resident line without touching replacement
  /// state (used when a private cache writes back into the inclusive L3).
  /// Returns false when the line is absent.
  bool mark_dirty(Addr line_addr);

  /// Removes the line if present; returns true if it was present and dirty.
  bool invalidate(Addr line_addr);

  void flush();

  /// Number of resident lines tagged with `owner`. O(num_lines): intended
  /// for tests and periodic metrics, not per-access use.
  std::uint64_t occupancy_lines(std::uint16_t owner) const;
  /// Total resident (valid) lines.
  std::uint64_t resident_lines() const;

  const CacheConfig& config() const { return config_; }

 private:
  struct Line {
    Addr tag = 0;
    std::uint64_t stamp = 0;
    std::uint32_t sharers = 0;
    std::uint16_t owner = 0;
    bool valid = false;
    bool dirty = false;
  };

  std::size_t set_base(Addr line_addr) const;

  CacheConfig config_;
  Rng victim_rng_{0x51ed270b7a64e5c4ull};  // deterministic random policy
  std::uint64_t num_sets_;
  std::uint64_t set_mask_;   // num_sets-1 when power of two, else 0
  std::uint64_t stamp_ = 0;  // per-cache logical clock for LRU
  std::vector<Line> lines_;  // ways contiguous per set
};

}  // namespace am::sim

#pragma once
// Set-associative cache model with per-line LRU stamps, dirty bits, owner
// tags (for occupancy accounting in validation tests) and sharer masks
// (for inclusive-L3 back-invalidation).
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sim/set_index.hpp"
#include "sim/types.hpp"

namespace am::sim {

/// Victim selection policy.
enum class Replacement : std::uint8_t {
  kLru,     // strict least-recently-used (per-line stamps)
  kRandom,  // uniform random victim (deterministic per-cache stream);
            // closer to the steady state the paper's Eq. 2-3 derivation
            // assumes, and to how aggressively real pseudo-LRU L3s evict
            // hot lines under churn
};

struct CacheConfig {
  std::uint64_t size_bytes = 0;
  std::uint32_t line_bytes = 64;
  std::uint32_t ways = 8;
  std::string name;
  /// Optional thrash resistance (SRRIP-style): newly inserted lines enter
  /// with a stamp this many accesses in the past, so one-touch streaming
  /// data is evicted before recently re-used lines. 0 (default, used by
  /// the Xeon20MB presets) = plain MRU insertion, which reproduces the
  /// paper's observation that 3+ BWThrs start stealing cache capacity;
  /// see bench/abl_insertion for the policy tradeoff.
  std::uint64_t insert_age = 0;
  Replacement replacement = Replacement::kLru;
  /// Enables the filter fast path (see Cache::try_fast_hit): a flat
  /// one-entry-per-set MRU tag array resolving repeat hits with a single
  /// compare, zsim-filter-cache style. Pure host-speed knob — simulated
  /// state and every outcome stay bit-identical (see
  /// tests/sim/filter_identity_test.cpp); excluded from
  /// measure::machine_fingerprint so result-store keys never depend on it.
  bool filter = false;
  /// Set-index function (see sim/set_index.hpp). kMask keeps the
  /// historical placement (low bits / exact modulo); kH3 hashes the line
  /// address and therefore changes simulated results — MachineConfig
  /// routes it to the shared L3 and fingerprints it.
  SetHash set_hash = SetHash::kMask;

  std::uint64_t num_lines() const { return size_bytes / line_bytes; }
  std::uint64_t num_sets() const { return num_lines() / ways; }
  /// Throws std::invalid_argument when geometry is inconsistent.
  void validate() const;
};

class Cache {
 public:
  explicit Cache(CacheConfig config);

  struct AccessOutcome {
    bool hit = false;
    bool evicted = false;
    bool evicted_dirty = false;
    Addr evicted_line = 0;          // line index (addr / line_bytes)
    std::uint32_t evicted_sharers = 0;
  };

  /// Looks up a line; on miss, inserts it and reports the victim (if any).
  /// `owner` tags the inserting agent (occupancy accounting); `sharer_bit`
  /// is OR-ed into the line's sharer mask (used by the L3 to know which
  /// private caches may hold copies).
  AccessOutcome access(Addr line_addr, std::uint16_t owner,
                       std::uint32_t sharer_bit = 0, bool is_store = false);

  /// Filter fast path: when `config().filter` is set, resolves an access
  /// that hits the set's most-recently-accessed line with one tag compare,
  /// applying exactly the state updates a hit in access() would (LRU stamp
  /// advance, sharer-mask OR, dirty-bit OR) so both paths are
  /// bit-identical. Returns false when the filter is disabled or the MRU
  /// line does not match; the caller must then fall through to access(),
  /// which refreshes the filter. Hits never evict, so there is no outcome
  /// to report.
  bool try_fast_hit(Addr line_addr, std::uint32_t sharer_bit, bool is_store) {
    if (filter_.empty()) return false;
    const FilterSlot slot = filter_[indexer_.index(line_addr)];
    if (slot.tag != line_addr) return false;
    Line& line = lines_[slot.line_index];
    line.stamp = ++stamp_;
    line.sharers |= sharer_bit;
    line.dirty |= is_store;
    return true;
  }

  /// True when this cache was built with the filter fast path enabled.
  bool filter_enabled() const { return !filter_.empty(); }

  /// Host-side prefetch of the set's tag storage (and filter slot when
  /// enabled) for an access about to be issued. Pure software-pipelining
  /// hint for MemorySystem::access_batch — touches no simulated state, so
  /// results cannot depend on it.
  void prefetch_set(Addr line_addr) const {
    const std::uint64_t set = indexer_.index(line_addr);
    __builtin_prefetch(&lines_[set * config_.ways]);
    if (!filter_.empty()) __builtin_prefetch(&filter_[set]);
  }

  /// True if the line is present (no replacement state update).
  bool contains(Addr line_addr) const;

  /// Refreshes the LRU stamp of a resident line; no-op when absent.
  void touch(Addr line_addr);

  /// Sets the dirty bit of a resident line without touching replacement
  /// state (used when a private cache writes back into the inclusive L3).
  /// Returns false when the line is absent.
  bool mark_dirty(Addr line_addr);

  /// Removes the line if present; returns true if it was present and dirty.
  bool invalidate(Addr line_addr);

  void flush();

  /// Number of resident lines tagged with `owner`. O(num_lines): intended
  /// for tests and periodic metrics, not per-access use.
  std::uint64_t occupancy_lines(std::uint16_t owner) const;
  /// Total resident (valid) lines.
  std::uint64_t resident_lines() const;

  const CacheConfig& config() const { return config_; }

 private:
  struct Line {
    Addr tag = 0;
    std::uint64_t stamp = 0;
    std::uint32_t sharers = 0;
    std::uint16_t owner = 0;
    bool valid = false;
    bool dirty = false;
  };

  /// One filter entry per set: the set's most-recently-accessed line and
  /// its position in lines_. `kNoLine` marks an empty slot (line addresses
  /// are byte addresses >> line shift, so the all-ones tag is unreachable).
  struct FilterSlot {
    Addr tag = kNoLine;
    std::uint32_t line_index = 0;
  };
  static constexpr Addr kNoLine = ~Addr{0};

  std::size_t set_base(Addr line_addr) const;
  /// Points the set's filter slot at lines_[index] (no-op when disabled).
  void filter_update(Addr line_addr, std::size_t index) {
    if (filter_.empty()) return;
    filter_[indexer_.index(line_addr)] = {line_addr,
                                          static_cast<std::uint32_t>(index)};
  }
  /// Clears the set's filter slot if it names `line_addr` (invalidation).
  void filter_drop(Addr line_addr) {
    if (filter_.empty()) return;
    const std::uint64_t set = indexer_.index(line_addr);
    if (filter_[set].tag == line_addr) filter_[set] = FilterSlot{};
  }

  CacheConfig config_;
  Rng victim_rng_{0x51ed270b7a64e5c4ull};  // deterministic random policy
  SetIndexer indexer_;
  std::uint64_t stamp_ = 0;  // per-cache logical clock for LRU
  std::vector<Line> lines_;  // ways contiguous per set
  std::vector<FilterSlot> filter_;  // one per set; empty = filter disabled
};

}  // namespace am::sim

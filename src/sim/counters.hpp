#pragma once
// Per-core hardware-counter-style event counts, mirroring what the paper
// reads from the real Xeon's PMU (L3 miss rate, bandwidth, cycles).
#include <cstdint>

#include "sim/types.hpp"

namespace am::sim {

/// Plain aggregable event counts (operator+= sums field-wise; totals over
/// cores/sockets are built that way). The architectural fields — everything
/// up to stall_cycles — are part of the determinism contract: equal
/// (MachineConfig, seed, agents) runs produce equal counts, and the
/// ResultStore record format serializes exactly that field set.
struct Counters {
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t l3_hits = 0;
  std::uint64_t mem_accesses = 0;      // demand misses served by DRAM
  std::uint64_t prefetch_issued = 0;
  std::uint64_t prefetch_dropped = 0;  // dropped due to bus saturation
  std::uint64_t writebacks = 0;
  std::uint64_t bytes_from_mem = 0;    // demand + prefetch fills
  std::uint64_t compute_cycles = 0;
  std::uint64_t stall_cycles = 0;

  /// Host-speed diagnostics for the filter fast paths
  /// (MachineConfig::l1_filter / l2_filter), not architectural events:
  /// they depend on the toggles (0 when off) while every counter above is
  /// bit-identical across them. Deliberately excluded from the ResultStore
  /// record format and record equality for that reason.
  std::uint64_t l1_filter_hits = 0;          // L1 hits resolved by the filter
  std::uint64_t l1_filter_fallthroughs = 0;  // filter misses → full L1 walk
  std::uint64_t l2_filter_hits = 0;          // L2 hits resolved by the filter
  std::uint64_t l2_filter_fallthroughs = 0;  // filter misses → full L2 walk

  std::uint64_t accesses() const { return loads + stores; }

  /// Accesses that reached the L3 (i.e. missed both private levels).
  std::uint64_t l3_accesses() const { return l3_hits + mem_accesses; }

  /// Paper's headline metric: fraction of all demand accesses served by
  /// DRAM. With an inclusive L3 this equals "miss in L3 or any level above".
  double l3_miss_rate() const {
    const auto total = accesses();
    return total ? static_cast<double>(mem_accesses) /
                       static_cast<double>(total)
                 : 0.0;
  }

  /// Miss rate counted only among accesses that reached the L3.
  double l3_local_miss_rate() const {
    const auto total = l3_accesses();
    return total ? static_cast<double>(mem_accesses) /
                       static_cast<double>(total)
                 : 0.0;
  }

  Counters& operator+=(const Counters& o) {
    loads += o.loads;
    stores += o.stores;
    l1_hits += o.l1_hits;
    l2_hits += o.l2_hits;
    l3_hits += o.l3_hits;
    mem_accesses += o.mem_accesses;
    prefetch_issued += o.prefetch_issued;
    prefetch_dropped += o.prefetch_dropped;
    writebacks += o.writebacks;
    bytes_from_mem += o.bytes_from_mem;
    compute_cycles += o.compute_cycles;
    stall_cycles += o.stall_cycles;
    l1_filter_hits += o.l1_filter_hits;
    l1_filter_fallthroughs += o.l1_filter_fallthroughs;
    l2_filter_hits += o.l2_filter_hits;
    l2_filter_fallthroughs += o.l2_filter_fallthroughs;
    return *this;
  }
};

}  // namespace am::sim

#include "sim/engine.hpp"

#include <algorithm>
#include <stdexcept>

namespace am::sim {

Cycles AgentContext::now() const {
  return engine_->agent_clock(index_);
}

CoreId AgentContext::core() const { return engine_->agent_core(index_); }

Rng& AgentContext::rng() { return engine_->agent_rng(index_); }

void AgentContext::compute(Cycles cycles) {
  engine_->ctx_compute(index_, cycles);
}

void AgentContext::load(Addr addr) {
  engine_->ctx_access(index_, addr, AccessKind::kLoad);
}

void AgentContext::store(Addr addr) {
  engine_->ctx_access(index_, addr, AccessKind::kStore);
}

void AgentContext::load_batch(std::span<const Addr> addrs) {
  engine_->ctx_access_batch(index_, addrs, AccessKind::kLoad);
}

void AgentContext::store_batch(std::span<const Addr> addrs) {
  engine_->ctx_access_batch(index_, addrs, AccessKind::kStore);
}

Engine::Engine(MachineConfig config, std::uint64_t seed)
    : memory_(std::move(config)), seed_(seed) {}

std::size_t Engine::add_agent(std::unique_ptr<Agent> agent, CoreId core,
                              bool primary) {
  if (core >= config().total_cores())
    throw std::invalid_argument("add_agent: core out of range");
  for (const auto& slot : agents_)
    if (slot.core == core)
      throw std::invalid_argument("add_agent: core already occupied by " +
                                  slot.agent->name());
  Slot slot;
  slot.agent = std::move(agent);
  slot.core = core;
  slot.primary = primary;
  std::uint64_t sm = seed_ ^ (0x9e3779b97f4a7c15ull * (agents_.size() + 1));
  slot.rng.reseed(splitmix64(sm));
  agents_.push_back(std::move(slot));
  if (primary) ++primaries_remaining_;
  return agents_.size() - 1;
}

Cycles Engine::run(Cycles max_cycles) {
  if (agents_.empty()) throw std::logic_error("Engine::run with no agents");
  timed_out_ = false;
  if (primaries_remaining_ == 0) return 0;

  Cycles last_primary_finish = 0;
  while (primaries_remaining_ > 0) {
    // Advance the laggard agent. Linear scan: agent counts are small
    // (<= cores) and steps amortize over many operations.
    std::size_t best = agents_.size();
    for (std::size_t i = 0; i < agents_.size(); ++i) {
      const Slot& s = agents_[i];
      if (s.done) continue;
      if (best == agents_.size() || s.clock < agents_[best].clock) best = i;
    }
    if (best == agents_.size()) break;  // everyone done (only primaries can)
    Slot& slot = agents_[best];
    if (slot.clock > max_cycles) {
      timed_out_ = true;
      return max_cycles;
    }

    const Cycles before = slot.clock;
    AgentContext ctx(*this, best);
    slot.agent->step(ctx);
    if (slot.clock == before) ++slot.clock;  // guarantee progress

    if (slot.agent->finished()) {
      slot.done = true;
      if (slot.primary) {
        --primaries_remaining_;
        last_primary_finish = std::max(last_primary_finish, slot.clock);
      }
    }
  }
  return last_primary_finish;
}

void Engine::ctx_compute(std::size_t idx, Cycles cycles) {
  Slot& slot = agents_[idx];
  slot.clock += cycles;
  memory_.counters(slot.core).compute_cycles += cycles;
  if (slot.trace != nullptr) {
    // Fold the compute gap into the preceding record so a replay
    // reproduces the original access frequency.
    slot.trace->add_compute_to_last(
        static_cast<std::uint32_t>(std::min<Cycles>(cycles, UINT32_MAX)));
  }
}

void Engine::ctx_access(std::size_t idx, Addr addr, AccessKind kind) {
  Slot& slot = agents_[idx];
  if (slot.trace != nullptr) slot.trace->append(addr, kind);
  const AccessResult res = memory_.access(slot.core, addr, kind, slot.clock);
  memory_.counters(slot.core).stall_cycles += res.complete - slot.clock;
  slot.clock = res.complete;
}

void Engine::ctx_access_batch(std::size_t idx, std::span<const Addr> addrs,
                              AccessKind kind) {
  Slot& slot = agents_[idx];
  if (slot.trace != nullptr)
    for (const Addr addr : addrs) slot.trace->append(addr, kind);
  const Cycles done =
      memory_.access_batch(slot.core, addrs, kind, slot.clock);
  memory_.counters(slot.core).stall_cycles += done - slot.clock;
  slot.clock = done;
}

}  // namespace am::sim

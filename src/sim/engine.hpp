#pragma once
// Deterministic multi-agent discrete-event executor over a MemorySystem.
#include <limits>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "sim/agent.hpp"
#include "sim/memory_system.hpp"
#include "sim/trace.hpp"

namespace am::sim {

class Engine {
 public:
  explicit Engine(MachineConfig config, std::uint64_t seed = 1);

  MemorySystem& memory() { return memory_; }
  const MachineConfig& config() const { return memory_.config(); }

  /// Registers an agent pinned to `core`. Primary agents drive simulation
  /// termination; non-primary (interference) agents are stopped when the
  /// last primary finishes. Returns the agent index.
  std::size_t add_agent(std::unique_ptr<Agent> agent, CoreId core,
                        bool primary = true);

  /// Runs until every primary agent reports finished() or the global clock
  /// passes `max_cycles`. Returns the finish time of the last primary (or
  /// max_cycles on timeout). A run that legitimately completes at exactly
  /// max_cycles is not a timeout; check timed_out() to distinguish.
  Cycles run(Cycles max_cycles = std::numeric_limits<Cycles>::max());

  /// True iff the most recent run() was truncated by its cycle budget
  /// before every primary finished.
  bool timed_out() const { return timed_out_; }

  std::size_t agent_count() const { return agents_.size(); }
  Agent& agent(std::size_t idx) { return *agents_[idx].agent; }
  Cycles agent_clock(std::size_t idx) const { return agents_[idx].clock; }
  CoreId agent_core(std::size_t idx) const { return agents_[idx].core; }
  Rng& agent_rng(std::size_t idx) { return agents_[idx].rng; }
  const Counters& agent_counters(std::size_t idx) const {
    return memory_.counters(agents_[idx].core);
  }

  double seconds(Cycles c) const { return config().cycles_to_seconds(c); }

  /// Clears counters/channel stats but keeps cache contents and clocks —
  /// call after warm-up so measurements cover only steady state.
  void reset_stats() { memory_.reset_stats(); }

  /// Keeps a shared resource (mapping, communicator, ...) alive for the
  /// engine's lifetime. Agents may then hold plain references to it.
  void own(std::shared_ptr<void> resource) {
    owned_.push_back(std::move(resource));
  }

  /// Records every access of `agent_idx` into `sink` (caller-owned; must
  /// outlive the run). nullptr disables tracing for that agent.
  void set_trace(std::size_t agent_idx, TraceBuffer* sink) {
    agents_.at(agent_idx).trace = sink;
  }

  /// Holds an agent idle until the given cycle: other agents run first.
  /// Used to let interference threads reach steady state before the
  /// application starts, as in the paper's measurement procedure.
  void delay_agent(std::size_t agent_idx, Cycles until) {
    Slot& slot = agents_.at(agent_idx);
    slot.clock = std::max(slot.clock, until);
  }

  // --- used by AgentContext ---
  void ctx_compute(std::size_t idx, Cycles cycles);
  void ctx_access(std::size_t idx, Addr addr, AccessKind kind);
  void ctx_access_batch(std::size_t idx, std::span<const Addr> addrs,
                        AccessKind kind);

 private:
  struct Slot {
    std::unique_ptr<Agent> agent;
    CoreId core = 0;
    Cycles clock = 0;
    Rng rng;
    TraceBuffer* trace = nullptr;
    bool primary = true;
    bool done = false;
  };

  MemorySystem memory_;
  std::vector<Slot> agents_;
  std::vector<std::shared_ptr<void>> owned_;
  std::uint64_t seed_;
  std::size_t primaries_remaining_ = 0;
  bool timed_out_ = false;
};

}  // namespace am::sim

#include "sim/machine.hpp"

#include <algorithm>
#include <stdexcept>

namespace am::sim {

void DramConfig::validate(std::uint32_t line_bytes) const {
  if (channels == 0 || banks == 0)
    throw std::invalid_argument("DramConfig: empty channel/bank geometry");
  if (row_bytes == 0 || line_bytes == 0 || row_bytes % line_bytes != 0)
    throw std::invalid_argument(
        "DramConfig: row_bytes must be a positive multiple of the line size");
  if (t_cas == 0)
    throw std::invalid_argument("DramConfig: t_cas must be positive");
  if (refresh_interval != 0 && refresh_cycles >= refresh_interval)
    throw std::invalid_argument(
        "DramConfig: refresh window >= interval would saturate the bank");
}

DramConfig DramConfig::ddr4() { return DramConfig{}; }

DramConfig DramConfig::hbm() {
  DramConfig d;
  d.channels = 8;
  d.banks = 16;
  d.row_bytes = 2048;
  d.t_rcd = 38;
  d.t_rp = 38;
  d.t_cas = 38;
  d.base_latency = 80;
  // Denser arrays refresh more often but with shorter windows.
  d.refresh_interval = 10140;  // ~3.9 us
  d.refresh_cycles = 420;      // ~160 ns
  return d;
}

const char* mem_backend_name(MemBackendKind kind) {
  return kind == MemBackendKind::kBankedDram ? "banked-dram" : "channel";
}

void apply_mem_backend(MachineConfig& machine, const std::string& spec) {
  if (spec == "channel") {
    machine.mem_backend = MemBackendKind::kChannel;
  } else if (spec == "banked") {
    machine.mem_backend = MemBackendKind::kBankedDram;
  } else if (spec == "ddr4") {
    machine.mem_backend = MemBackendKind::kBankedDram;
    machine.dram = DramConfig::ddr4();
  } else if (spec == "hbm") {
    machine.mem_backend = MemBackendKind::kBankedDram;
    machine.dram = DramConfig::hbm();
  } else {
    throw std::invalid_argument(
        "unknown --mem-backend '" + spec +
        "' (choices: channel, banked, ddr4, hbm)");
  }
  machine.validate();
}

void apply_set_hash(MachineConfig& machine, const std::string& spec) {
  if (spec == "mask") {
    machine.set_hash = SetHash::kMask;
  } else if (spec == "h3") {
    machine.set_hash = SetHash::kH3;
  } else {
    throw std::invalid_argument("unknown --set-hash '" + spec +
                                "' (choices: mask, h3)");
  }
  machine.validate();
}

void MachineConfig::validate() const {
  if (nodes == 0 || sockets_per_node == 0 || cores_per_socket == 0)
    throw std::invalid_argument("MachineConfig: empty topology");
  if (frequency_ghz <= 0.0)
    throw std::invalid_argument("MachineConfig: frequency <= 0");
  if (mem_bandwidth_bytes_per_sec <= 0.0 || link_bandwidth_bytes_per_sec <= 0.0)
    throw std::invalid_argument("MachineConfig: bandwidth <= 0");
  if (max_outstanding_misses == 0)
    throw std::invalid_argument("MachineConfig: max_outstanding_misses == 0");
  l1.validate();
  l2.validate();
  l3.validate();
  if (l1.line_bytes != l2.line_bytes || l2.line_bytes != l3.line_bytes)
    throw std::invalid_argument("MachineConfig: mismatched line sizes");
  if (mem_backend == MemBackendKind::kBankedDram) dram.validate(l3.line_bytes);
}

MachineConfig MachineConfig::xeon20mb(std::uint32_t nodes) {
  MachineConfig m;
  m.nodes = nodes;
  m.validate();
  return m;
}

MachineConfig MachineConfig::xeon20mb_scaled(std::uint32_t factor,
                                             std::uint32_t nodes) {
  if (factor == 0) throw std::invalid_argument("scale factor == 0");
  MachineConfig m = xeon20mb(nodes);
  m.name = "Xeon20MB/" + std::to_string(factor);
  auto scale = [&](CacheConfig& c) {
    // Keep at least one set per way so the geometry stays legal.
    const std::uint64_t min_size =
        static_cast<std::uint64_t>(c.line_bytes) * c.ways;
    c.size_bytes = std::max(min_size, c.size_bytes / factor);
  };
  scale(m.l1);
  scale(m.l2);
  scale(m.l3);
  m.validate();
  return m;
}

}  // namespace am::sim

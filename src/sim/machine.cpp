#include "sim/machine.hpp"

#include <algorithm>
#include <stdexcept>

namespace am::sim {

void MachineConfig::validate() const {
  if (nodes == 0 || sockets_per_node == 0 || cores_per_socket == 0)
    throw std::invalid_argument("MachineConfig: empty topology");
  if (frequency_ghz <= 0.0)
    throw std::invalid_argument("MachineConfig: frequency <= 0");
  if (mem_bandwidth_bytes_per_sec <= 0.0 || link_bandwidth_bytes_per_sec <= 0.0)
    throw std::invalid_argument("MachineConfig: bandwidth <= 0");
  if (max_outstanding_misses == 0)
    throw std::invalid_argument("MachineConfig: max_outstanding_misses == 0");
  l1.validate();
  l2.validate();
  l3.validate();
  if (l1.line_bytes != l2.line_bytes || l2.line_bytes != l3.line_bytes)
    throw std::invalid_argument("MachineConfig: mismatched line sizes");
}

MachineConfig MachineConfig::xeon20mb(std::uint32_t nodes) {
  MachineConfig m;
  m.nodes = nodes;
  m.validate();
  return m;
}

MachineConfig MachineConfig::xeon20mb_scaled(std::uint32_t factor,
                                             std::uint32_t nodes) {
  if (factor == 0) throw std::invalid_argument("scale factor == 0");
  MachineConfig m = xeon20mb(nodes);
  m.name = "Xeon20MB/" + std::to_string(factor);
  auto scale = [&](CacheConfig& c) {
    // Keep at least one set per way so the geometry stays legal.
    const std::uint64_t min_size =
        static_cast<std::uint64_t>(c.line_bytes) * c.ways;
    c.size_bytes = std::max(min_size, c.size_bytes / factor);
  };
  scale(m.l1);
  scale(m.l2);
  scale(m.l3);
  m.validate();
  return m;
}

}  // namespace am::sim

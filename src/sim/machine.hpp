#pragma once
// Machine topology and timing parameters. The default preset reproduces the
// paper's "Xeon20MB" platform (Table I): 2-socket nodes of 8-core Intel
// Xeon E5-2670, 20 MB 20-way shared L3 per socket, ~17 GB/s memory
// bandwidth per socket (STREAM), QDR InfiniBand between nodes.
#include <cstdint>
#include <string>

#include "sim/cache.hpp"
#include "sim/prefetcher.hpp"
#include "sim/types.hpp"

namespace am::sim {

/// Which MemoryBackend a socket's memory is modelled by (see
/// sim/memory_backend.hpp). Unlike the L1 filter, this changes simulated
/// results, so it — and the DramConfig knobs when banked — enters
/// measure::machine_fingerprint and therefore result-store keys.
enum class MemBackendKind : std::uint8_t {
  kChannel = 0,     // serially occupied pipe (the original model; default)
  kBankedDram = 1,  // banked DRAM with row buffers + refresh
};

/// Timing/geometry of the banked DRAM backend (sim/banked_dram.hpp).
/// All timings are CPU cycles of the simulated machine; the presets are
/// quoted at the Xeon20MB 2.6 GHz clock.
struct DramConfig {
  std::uint32_t channels = 2;  // per socket; line-interleaved
  std::uint32_t banks = 8;     // per channel
  /// Row-buffer coverage in bytes: consecutive lines within one row hit
  /// the open row. Must be a positive multiple of the cache line size.
  std::uint32_t row_bytes = 8192;
  Cycles t_rcd = 36;  // activate -> column command (~14 ns at 2.6 GHz)
  Cycles t_rp = 36;   // precharge
  Cycles t_cas = 36;  // column command -> first data
  /// Controller + on-chip interconnect latency added to every access
  /// before the DRAM command sequence. Chosen so an idle row-empty
  /// access lands near the channel model's mem_latency, keeping the two
  /// backends comparable at zero load.
  Cycles base_latency = 90;
  /// Per-bank refresh period (tREFI-class; ~7.8 us at 2.6 GHz is 20280).
  /// 0 disables refresh.
  Cycles refresh_interval = 20280;
  /// Bank-unavailable window per refresh (tRFC-class; ~350 ns is 910).
  Cycles refresh_cycles = 910;

  /// Throws std::invalid_argument on an inconsistent configuration
  /// (empty geometry, row_bytes not a multiple of `line_bytes`, or a
  /// refresh window that saturates the bank).
  void validate(std::uint32_t line_bytes) const;

  /// DDR4-2400-class defaults: few channels, large rows, slow refresh.
  static DramConfig ddr4();
  /// HBM-class: many narrow channels, small rows, more banks — higher
  /// bank-level parallelism, less per-stream row locality.
  static DramConfig hbm();
};

struct MachineConfig {
  std::string name = "Xeon20MB";

  std::uint32_t nodes = 1;
  std::uint32_t sockets_per_node = 2;
  std::uint32_t cores_per_socket = 8;

  double frequency_ghz = 2.6;

  CacheConfig l1{32 * 1024, 64, 8, "L1D"};
  CacheConfig l2{256 * 1024, 64, 8, "L2"};
  CacheConfig l3{20 * 1024 * 1024, 64, 20, "L3"};

  Cycles l1_latency = 4;
  Cycles l2_latency = 12;
  Cycles l3_latency = 42;
  Cycles mem_latency = 180;  // DRAM latency beyond bus occupancy

  /// Peak memory bandwidth per socket, bytes per second.
  double mem_bandwidth_bytes_per_sec = 17.0e9;
  /// Bus occupancy of a write-back relative to a demand fill. Memory
  /// controllers drain evictions through write-combining buffers at lower
  /// effective cost than demand reads; 0.5 keeps read bandwidth under
  /// store-heavy streams in line with the machine's STREAM behaviour.
  double writeback_cost_factor = 0.5;
  /// Inter-node interconnect (QDR InfiniBand-class): bandwidth + latency.
  double link_bandwidth_bytes_per_sec = 5.0e9;
  Cycles link_latency = 4000;  // ~1.5 us at 2.6 GHz

  /// Maximum overlapped demand misses per core (line-fill-buffer model).
  /// Calibrated so one BWThr draws ~2.8 GB/s as measured in the paper.
  std::uint32_t max_outstanding_misses = 5;

  /// Every k-th private-cache hit refreshes the line's L3 LRU stamp,
  /// approximating the thrash protection real inclusive L3s give hot
  /// private-cache lines. 0 disables the hint.
  std::uint32_t l3_hint_interval = 16;

  /// Enables the L1 filter fast path (zsim-filter-cache style): each
  /// private L1 fronts its set-associative array with a flat
  /// one-entry-per-set MRU tag array, so the dominant repeat-hit case is
  /// resolved with a single compare instead of the full hierarchy-walk
  /// call chain (see docs/PERFORMANCE.md). Pure host-speed knob, default
  /// on: simulated timing, counters and evictions are bit-identical with
  /// it off (asserted by sim.filter_identity_test and the fig9 smoke
  /// byte-compare), and measure::machine_fingerprint deliberately
  /// excludes it so result-store keys are stable across the toggle.
  bool l1_filter = true;

  /// Enables the L2 filter fast path: the L1-miss/L2-hit band — the
  /// dominant band once a working set spills the L1 in capacity sweeps —
  /// resolves through the L2's one-entry-per-set MRU filter instead of
  /// the full L2 walk, performing exactly the walk's mutations. Like
  /// l1_filter this is a pure host-speed knob: bit-identical outcomes
  /// (sim.filter_identity_test + smoke.fig9_l2_filter_identity) and
  /// excluded from measure::machine_fingerprint.
  bool l2_filter = true;

  /// Set-index hash of the shared L3 (sim/set_index.hpp). kMask keeps
  /// historical placement bit-identically (including the strength-reduced
  /// non-pow2 modulo); kH3 is the zsim-style hashed-LLC placement. H3
  /// CHANGES simulated results, so machine_fingerprint mixes this knob
  /// whenever it deviates from kMask.
  SetHash set_hash = SetHash::kMask;

  /// Memory-backend selection (sim/memory_backend.hpp). kChannel keeps
  /// the original pipe bit-identically; kBankedDram swaps in the banked
  /// DRAM model, whose `dram` knobs then shape results (and store keys).
  MemBackendKind mem_backend = MemBackendKind::kChannel;
  /// Banked-backend timing; ignored (and excluded from fingerprints)
  /// under kChannel.
  DramConfig dram;

  PrefetcherConfig prefetcher;

  std::uint32_t total_sockets() const { return nodes * sockets_per_node; }
  std::uint32_t total_cores() const {
    return total_sockets() * cores_per_socket;
  }
  std::uint32_t socket_of(CoreId core) const { return core / cores_per_socket; }
  std::uint32_t node_of(CoreId core) const {
    return socket_of(core) / sockets_per_node;
  }

  double cycles_to_seconds(Cycles c) const {
    return static_cast<double>(c) / (frequency_ghz * 1e9);
  }
  double mem_bytes_per_cycle() const {
    return mem_bandwidth_bytes_per_sec / (frequency_ghz * 1e9);
  }
  double link_bytes_per_cycle() const {
    return link_bandwidth_bytes_per_sec / (frequency_ghz * 1e9);
  }

  void validate() const;

  /// The paper's platform, full size.
  static MachineConfig xeon20mb(std::uint32_t nodes = 1);

  /// Geometry-preserving scale-down: cache sizes divided by `factor`
  /// (associativity, line size, latencies and bandwidth kept). Benches use
  /// this so full sweeps finish in laptop time; EXPERIMENTS.md records the
  /// factor used for each figure.
  static MachineConfig xeon20mb_scaled(std::uint32_t factor,
                                       std::uint32_t nodes = 1);
};

/// Human name of a backend kind ("channel" / "banked-dram").
const char* mem_backend_name(MemBackendKind kind);

/// Applies a `--mem-backend` CLI spelling to `machine`:
///   "channel"     — the default pipe;
///   "banked"      — banked DRAM with machine.dram as already configured;
///   "ddr4"/"hbm"  — banked DRAM with the matching DramConfig preset.
/// Throws std::invalid_argument on anything else, listing the choices.
void apply_mem_backend(MachineConfig& machine, const std::string& spec);

/// Applies a `--set-hash` CLI spelling ("mask" / "h3") to `machine`.
/// Throws std::invalid_argument on anything else, listing the choices.
void apply_set_hash(MachineConfig& machine, const std::string& spec);

}  // namespace am::sim

#include "sim/memory_backend.hpp"

#include "sim/banked_dram.hpp"
#include "sim/machine.hpp"

namespace am::sim {

std::unique_ptr<MemoryBackend> make_memory_backend(
    const MachineConfig& config) {
  if (config.mem_backend == MemBackendKind::kBankedDram)
    return std::make_unique<BankedDramBackend>(
        config.dram, config.mem_bytes_per_cycle(), config.l3.line_bytes,
        config.max_outstanding_misses);
  return std::make_unique<ChannelBackend>(config.mem_bytes_per_cycle(),
                                          config.mem_latency);
}

}  // namespace am::sim

#pragma once
// The engine↔memory boundary: everything below the L3 is a MemoryBackend.
//
// MemorySystem used to talk to a concrete BandwidthChannel; this interface
// makes the backend pluggable (MachineConfig::mem_backend) so the same
// hierarchy walk can run against memory models of very different fidelity:
//
//   * ChannelBackend — the default. Wraps the original BandwidthChannel
//     (a serially occupied pipe) and is REQUIRED to stay bit-identical to
//     it: same completion times, same statistics, for any call sequence.
//     Guarded by tests/sim/memory_backend_test.cpp equivalence properties
//     and the blocking smoke.fig9_backend_identity ctest entry (golden
//     byte-compare against the pre-refactor output).
//   * BankedDramBackend (sim/banked_dram.hpp) — DRAMsim3-style banked
//     DRAM: per-channel command/data queues, per-bank row-buffer state
//     machines with tRCD/tRP/tCAS-class timing, FR-FCFS-lite scheduling,
//     periodic refresh. Opens row-buffer locality and refresh storms as
//     measurable interference kinds the coarse pipe cannot express.
//
// The interface is deliberately call-order deterministic, like the rest
// of the simulator: transfers are scheduled in call order, `now` values
// need not be monotonic, and equal call sequences produce equal
// completion times and statistics. Unlike DRAMsim3's tick-driven
// AddTransaction/ClockTick shape (SNIPPETS.md snippets 1-2), backends
// here answer with an absolute completion cycle immediately — the engine
// is event-driven, so "when would this line arrive" is the whole
// contract — but the address now crosses the boundary, which is what
// lets a backend model bank/row structure at all.
//
// Selection changes results, so — unlike the L1 filter host-speed knob —
// the backend kind and its timing parameters enter
// measure::machine_fingerprint (ChannelBackend configs keep their
// pre-refactor fingerprints; see result_store.cpp).
#include <cstdint>
#include <memory>
#include <string_view>

#include "sim/bandwidth.hpp"
#include "sim/types.hpp"

namespace am::sim {

struct MachineConfig;

/// Backend-level event counts (the DRAM analogue of the per-core
/// Counters). All zero for backends without bank structure. Diagnostic
/// surface only: deliberately NOT part of the ResultStore record format,
/// which must not change across backends — the backend's effect on
/// results flows through completion times (seconds, stall cycles).
struct MemoryBackendStats {
  std::uint64_t row_hits = 0;       // column access into the open row
  std::uint64_t row_empties = 0;    // activate into a precharged bank
  std::uint64_t row_conflicts = 0;  // precharge + activate (row miss)
  std::uint64_t refreshes = 0;      // refresh windows taken
  /// Extra cycles requests waited because a refresh window held their
  /// bank — the "third interference kind" next to capacity and bandwidth.
  std::uint64_t refresh_stall_cycles = 0;
};

/// Abstract memory below the L3 of one socket. All times are absolute
/// engine cycles; `line` is a line address (byte address >> line shift),
/// giving structured backends the bits they need for channel/bank/row
/// decoding. Implementations must be call-order deterministic.
class MemoryBackend {
 public:
  virtual ~MemoryBackend() = default;

  /// Demand fill of `bytes` for `line`, requested at `now`; returns the
  /// absolute completion time (queueing + service + latency).
  virtual Cycles transfer(Cycles now, Addr line, std::uint64_t bytes) = 0;

  /// Posted traffic nobody waits on (write-backs, prefetch fills):
  /// occupies the backend exactly like transfer() but returns nothing.
  virtual void transfer_async(Cycles now, Addr line, std::uint64_t bytes) = 0;

  /// True if a transfer of `line` issued now would queue more than
  /// `max_queue_cycles` — used to drop prefetches under saturation.
  /// Structured backends judge the queue `line` would actually join.
  virtual bool saturated(Cycles now, Cycles max_queue_cycles,
                         Addr line) const = 0;

  /// Total bytes moved (demand + posted) since the last reset_stats().
  virtual std::uint64_t total_bytes() const = 0;

  /// The time the backend's last scheduled work drains (max over internal
  /// queues) — a state digest for identity tests, not a scheduling input.
  virtual Cycles busy_until() const = 0;

  /// Average data-bus utilization over [0, now], in [0, 1]; 0 at now == 0.
  virtual double utilization(Cycles now) const = 0;

  /// Zeroes byte/cycle accounting and stats(); timing state (open rows,
  /// queue occupancy) is kept, mirroring BandwidthChannel::reset_stats.
  virtual void reset_stats() = 0;

  virtual const MemoryBackendStats& stats() const = 0;

  /// Stable identifier ("channel", "banked-dram") for logs and tables.
  virtual std::string_view name() const = 0;
};

/// The default backend: the original serially-occupied finite-bandwidth
/// pipe, by composition of the unchanged BandwidthChannel. The address is
/// ignored — that is the model. Bit-identical to pre-refactor behaviour
/// by construction; every method forwards without arithmetic.
class ChannelBackend final : public MemoryBackend {
 public:
  ChannelBackend(double bytes_per_cycle, Cycles latency_cycles)
      : channel_(bytes_per_cycle, latency_cycles) {}

  Cycles transfer(Cycles now, Addr, std::uint64_t bytes) override {
    return channel_.transfer(now, bytes);
  }
  void transfer_async(Cycles now, Addr, std::uint64_t bytes) override {
    channel_.transfer_async(now, bytes);
  }
  bool saturated(Cycles now, Cycles max_queue_cycles, Addr) const override {
    return channel_.saturated(now, max_queue_cycles);
  }
  std::uint64_t total_bytes() const override { return channel_.total_bytes(); }
  Cycles busy_until() const override { return channel_.busy_until(); }
  double utilization(Cycles now) const override {
    return channel_.utilization(now);
  }
  void reset_stats() override { channel_.reset_stats(); }
  const MemoryBackendStats& stats() const override { return stats_; }
  std::string_view name() const override { return "channel"; }

 private:
  BandwidthChannel channel_;
  MemoryBackendStats stats_;  // structureless pipe: permanently zero
};

/// Builds the backend one socket of `config` selects
/// (MachineConfig::mem_backend + MachineConfig::dram). Validates the
/// relevant configuration; throws std::invalid_argument as validate()
/// does.
std::unique_ptr<MemoryBackend> make_memory_backend(
    const MachineConfig& config);

}  // namespace am::sim

#include "sim/memory_system.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace am::sim {

MemorySystem::MemorySystem(MachineConfig config) : config_(std::move(config)) {
  config_.validate();
  if (!std::has_single_bit(
          static_cast<std::uint64_t>(config_.l1.line_bytes)))
    throw std::invalid_argument("line size must be a power of two");
  line_shift_ = std::countr_zero(
      static_cast<std::uint64_t>(config_.l1.line_bytes));
  // The machine-level toggles reach the private caches here: the L1
  // filter short-circuits repeat hits inline in access(), the L2 filter
  // short-circuits the L1-miss/L2-hit band in access_slow(). The shared
  // L3 stays unfiltered (its access rate is too low to matter) but takes
  // the machine's set-index hash — zsim hashes exactly the LLC.
  config_.l1.filter = config_.l1_filter;
  config_.l2.filter = config_.l2_filter;
  config_.l3.set_hash = config_.set_hash;

  const auto cores = config_.total_cores();
  const auto sockets = config_.total_sockets();
  for (std::uint32_t c = 0; c < cores; ++c) {
    l1_.push_back(std::make_unique<Cache>(config_.l1));
    l2_.push_back(std::make_unique<Cache>(config_.l2));
    prefetcher_.push_back(std::make_unique<StreamPrefetcher>(config_.prefetcher));
  }
  for (std::uint32_t s = 0; s < sockets; ++s) {
    l3_.push_back(std::make_unique<Cache>(config_.l3));
    mem_backend_.push_back(make_memory_backend(config_));
  }
  for (std::uint32_t n = 0; n < config_.nodes; ++n)
    nic_.push_back(std::make_unique<BandwidthChannel>(
        config_.link_bytes_per_cycle(), /*latency=*/0));
  counters_.resize(cores);
  hint_countdown_.assign(cores, config_.l3_hint_interval);
  batch_window_.reserve(config_.max_outstanding_misses);
}

Addr MemorySystem::alloc(std::uint64_t bytes, std::uint64_t align) {
  if (align == 0 || (align & (align - 1)) != 0)
    throw std::invalid_argument("alloc: alignment must be a power of two");
  next_alloc_ = (next_alloc_ + align - 1) & ~(align - 1);
  const Addr base = next_alloc_;
  next_alloc_ += bytes;
  return base;
}

void MemorySystem::handle_private_eviction(CoreId core,
                                           const Cache::AccessOutcome& out,
                                           bool from_l1) {
  // Private victims generate no bus traffic, but a dirty victim's data
  // must survive in the level below so its eventual L3 eviction writes
  // back to memory.
  if (!out.evicted || !out.evicted_dirty) return;
  const std::uint32_t socket = config_.socket_of(core);
  if (from_l1 && l2_[core]->mark_dirty(out.evicted_line)) return;
  (void)l3_[socket]->mark_dirty(out.evicted_line);
}

bool MemorySystem::back_invalidate(std::uint32_t socket, Addr line,
                                   std::uint32_t sharers) {
  const CoreId base = socket * config_.cores_per_socket;
  bool dirty = false;
  while (sharers != 0) {
    const int bit = std::countr_zero(sharers);
    sharers &= sharers - 1;
    const CoreId core = base + static_cast<CoreId>(bit);
    dirty |= l1_[core]->invalidate(line);
    dirty |= l2_[core]->invalidate(line);
  }
  return dirty;
}

void MemorySystem::handle_l3_eviction(std::uint32_t socket, CoreId core,
                                      const Cache::AccessOutcome& out,
                                      Cycles now) {
  if (!out.evicted) return;
  bool dirty = out.evicted_dirty;
  dirty |= back_invalidate(socket, out.evicted_line, out.evicted_sharers);
  if (dirty) {
    const auto wb_bytes = static_cast<std::uint64_t>(
        config_.l3.line_bytes * config_.writeback_cost_factor);
    if (wb_bytes > 0)
      mem_backend_[socket]->transfer_async(now, out.evicted_line, wb_bytes);
    ++counters_[core].writebacks;
  }
}

void MemorySystem::issue_prefetches(CoreId core, Addr miss_line, Cycles now) {
  prefetch_buf_.clear();
  prefetcher_[core]->on_miss(miss_line, prefetch_buf_);
  if (prefetch_buf_.empty()) return;
  const std::uint32_t socket = config_.socket_of(core);
  Cache& l3 = *l3_[socket];
  MemoryBackend& bus = *mem_backend_[socket];
  Counters& ctr = counters_[core];
  for (Addr line : prefetch_buf_) {
    if (l3.contains(line)) continue;
    // Prefetches yield to demand traffic: drop them once the bus queue is
    // deeper than roughly two DRAM latencies.
    if (bus.saturated(now, 2 * config_.mem_latency, line)) {
      ++ctr.prefetch_dropped;
      continue;
    }
    bus.transfer_async(now, line, config_.l3.line_bytes);
    const auto out = l3.access(line, static_cast<std::uint16_t>(core), 0, false);
    handle_l3_eviction(socket, core, out, now);
    ++ctr.prefetch_issued;
    ctr.bytes_from_mem += config_.l3.line_bytes;
  }
}

AccessResult MemorySystem::access_slow(CoreId core, Addr addr, AccessKind kind,
                                       Cycles now) {
  const Addr line = addr >> line_shift_;
  const bool is_store = kind == AccessKind::kStore;
  const std::uint32_t socket = config_.socket_of(core);
  Counters& ctr = counters_[core];
  if (is_store)
    ++ctr.stores;
  else
    ++ctr.loads;
  if (config_.l1_filter) ++ctr.l1_filter_fallthroughs;

  // L1. Cache::access is probe-and-insert: a miss here already fills the
  // line, so only the victim needs handling.
  const auto l1_out =
      l1_[core]->access(line, static_cast<std::uint16_t>(core), 0, is_store);
  handle_private_eviction(core, l1_out, /*from_l1=*/true);
  if (l1_out.hit) {
    ++ctr.l1_hits;
    if (config_.l3_hint_interval != 0 && --hint_countdown_[core] == 0) {
      hint_countdown_[core] = config_.l3_hint_interval;
      l3_[socket]->touch(line);
    }
    return {now + config_.l1_latency, Level::kL1};
  }

  // L2 filter band: the L1-miss/L2-hit case dominates capacity sweeps,
  // and the L2's MRU filter resolves it with one compare while applying
  // exactly the mutations the full walk's hit path would (LRU stamp,
  // sharer OR, dirty OR — see Cache::try_fast_hit). A hit never evicts
  // and leaves the filter slot already current, so skipping the walk is
  // bit-identical (sim.filter_identity_test, smoke.fig9_l2_filter_identity).
  if (l2_[core]->try_fast_hit(line, 0, is_store)) {
    ++ctr.l2_hits;
    ++ctr.l2_filter_hits;
    if (config_.l3_hint_interval != 0 && --hint_countdown_[core] == 0) {
      hint_countdown_[core] = config_.l3_hint_interval;
      l3_[socket]->touch(line);
    }
    return {now + config_.l2_latency, Level::kL2};
  }
  if (config_.l2_filter) ++ctr.l2_filter_fallthroughs;

  // L2.
  const auto l2_out =
      l2_[core]->access(line, static_cast<std::uint16_t>(core), 0, is_store);
  handle_private_eviction(core, l2_out, /*from_l1=*/false);
  if (l2_out.hit) {
    ++ctr.l2_hits;
    if (config_.l3_hint_interval != 0 && --hint_countdown_[core] == 0) {
      hint_countdown_[core] = config_.l3_hint_interval;
      l3_[socket]->touch(line);
    }
    return {now + config_.l2_latency, Level::kL2};
  }

  // The prefetcher trains on L2 misses, like Intel's L2 streamer.
  issue_prefetches(core, line, now);

  // L3 (inclusive, shared per socket).
  const std::uint32_t sharer_bit =
      1u << (core % config_.cores_per_socket);
  const auto out = l3_[socket]->access(line, static_cast<std::uint16_t>(core),
                                       sharer_bit, is_store);
  handle_l3_eviction(socket, core, out, now);
  if (out.hit) {
    ++ctr.l3_hits;
    return {now + config_.l3_latency, Level::kL3};
  }

  // DRAM: queue on the socket's memory bus, then fill all levels.
  const Cycles done =
      mem_backend_[socket]->transfer(now, line, config_.l3.line_bytes);
  ++ctr.mem_accesses;
  ctr.bytes_from_mem += config_.l3.line_bytes;
  return {done, Level::kMemory};
}

Cycles MemorySystem::access_batch(CoreId core, std::span<const Addr> addrs,
                                  AccessKind kind, Cycles now) {
  // Sliding window of outstanding miss completions (line-fill buffers).
  // Member buffer: batches are issued per agent step, so a per-call
  // vector would put an allocation on the engine's hottest loop.
  std::vector<Cycles>& window = batch_window_;
  window.clear();
  Cycles last = now;
  Cache& l1 = *l1_[core];
  const std::size_t n = addrs.size();
  for (std::size_t i = 0; i < n; ++i) {
    // Software pipelining: pull the NEXT access's L1 set (tags + filter
    // slot) into the host cache while this access retires through the
    // window bookkeeping below. Host-side hint only — simulated state,
    // counters and completion times are byte-identical with it removed.
    if (i + 1 < n) l1.prefetch_set(addrs[i + 1] >> line_shift_);
    Cycles issue = now;
    if (window.size() == config_.max_outstanding_misses) {
      const auto min_it = std::min_element(window.begin(), window.end());
      issue = std::max(now, *min_it);
      window.erase(min_it);
    }
    const AccessResult res = access(core, addrs[i], kind, issue);
    if (res.level == Level::kMemory) window.push_back(res.complete);
    last = std::max(last, res.complete);
  }
  return last;
}

Cycles MemorySystem::link_transfer(std::uint32_t node_from,
                                   std::uint32_t node_to, std::uint64_t bytes,
                                   Cycles now) {
  if (node_from == node_to)
    throw std::invalid_argument("link_transfer within one node");
  const Cycles sent = nic_[node_from]->transfer(now, bytes);
  const Cycles received = nic_[node_to]->transfer(now, bytes);
  return std::max(sent, received) + config_.link_latency;
}

std::uint64_t MemorySystem::l3_occupancy_bytes(CoreId core) const {
  const std::uint32_t socket = config_.socket_of(core);
  return l3_[socket]->occupancy_lines(static_cast<std::uint16_t>(core)) *
         config_.l3.line_bytes;
}

void MemorySystem::reset_stats() {
  for (auto& c : counters_) c = Counters{};
  for (auto& ch : mem_backend_) ch->reset_stats();
  for (auto& ch : nic_) ch->reset_stats();
}

void MemorySystem::flush_caches() {
  for (auto& c : l1_) c->flush();
  for (auto& c : l2_) c->flush();
  for (auto& c : l3_) c->flush();
}

}  // namespace am::sim

#pragma once
// The simulated machine: per-core private L1/L2 + stream prefetcher,
// per-socket inclusive shared L3 and finite-bandwidth memory channel,
// per-node interconnect NIC. This is the substitute for the paper's real
// Xeon20MB platform — every workload and interference thread issues its
// accesses through this component.
#include <memory>
#include <span>
#include <vector>

#include "sim/bandwidth.hpp"
#include "sim/cache.hpp"
#include "sim/counters.hpp"
#include "sim/machine.hpp"
#include "sim/memory_backend.hpp"
#include "sim/prefetcher.hpp"
#include "sim/types.hpp"

namespace am::sim {

struct AccessResult {
  Cycles complete = 0;  // absolute time the access finished
  Level level = Level::kL1;
};

class MemorySystem {
 public:
  explicit MemorySystem(MachineConfig config);

  /// One demand access issued at `now`; walks L1→L2→L3→DRAM, updates
  /// counters of `core`, trains the prefetcher, maintains L3 inclusivity.
  ///
  /// Inline fast path: when the L1 filter resolves the access (the common
  /// case on hit-heavy workloads, see MachineConfig::l1_filter), only the
  /// counters/L3-hint bookkeeping below runs — state updates and results
  /// are bit-identical to the full walk in access_slow().
  AccessResult access(CoreId core, Addr addr, AccessKind kind, Cycles now) {
    const Addr line = addr >> line_shift_;
    const bool is_store = kind == AccessKind::kStore;
    if (l1_[core]->try_fast_hit(line, 0, is_store)) {
      Counters& ctr = counters_[core];
      if (is_store)
        ++ctr.stores;
      else
        ++ctr.loads;
      ++ctr.l1_hits;
      ++ctr.l1_filter_hits;
      if (config_.l3_hint_interval != 0 && --hint_countdown_[core] == 0) {
        hint_countdown_[core] = config_.l3_hint_interval;
        l3_[config_.socket_of(core)]->touch(line);
      }
      return {now + config_.l1_latency, Level::kL1};
    }
    return access_slow(core, addr, kind, now);
  }

  /// A batch of *independent* accesses issued together at `now`, modelling
  /// memory-level parallelism: up to config.max_outstanding_misses DRAM
  /// misses overlap; further misses queue on the completion of earlier
  /// ones. Returns the completion time of the last access. Software-
  /// pipelined on the host: the next access's L1 set is prefetched while
  /// the current one retires through the window, which cannot change any
  /// simulated outcome.
  Cycles access_batch(CoreId core, std::span<const Addr> addrs,
                      AccessKind kind, Cycles now);

  /// Bump allocator for simulated buffers (64-byte aligned by default).
  Addr alloc(std::uint64_t bytes, std::uint64_t align = 64);

  /// Transfers `bytes` between two nodes' NICs; returns completion time.
  /// Same-node calls are invalid (use cache traffic instead).
  Cycles link_transfer(std::uint32_t node_from, std::uint32_t node_to,
                       std::uint64_t bytes, Cycles now);

  const MachineConfig& config() const { return config_; }
  Counters& counters(CoreId core) { return counters_[core]; }
  const Counters& counters(CoreId core) const { return counters_[core]; }

  Cache& l3(std::uint32_t socket) { return *l3_[socket]; }
  Cache& l1(CoreId core) { return *l1_[core]; }
  Cache& l2(CoreId core) { return *l2_[core]; }
  /// The socket's memory backend (channel pipe or banked DRAM, per
  /// config().mem_backend). See sim/memory_backend.hpp.
  MemoryBackend& mem_backend(std::uint32_t socket) {
    return *mem_backend_[socket];
  }
  StreamPrefetcher& prefetcher(CoreId core) { return *prefetcher_[core]; }

  /// Bytes of socket's L3 currently owned by lines `core` inserted.
  std::uint64_t l3_occupancy_bytes(CoreId core) const;

  /// Zeroes all counters and channel statistics; cache contents are kept
  /// (used to measure steady state after warm-up).
  void reset_stats();

  void flush_caches();

 private:
  /// The full L1→L2→L3→DRAM walk behind access(): every path the L1
  /// filter could not short-circuit. Fronted by a second filter band of
  /// its own — the L1-miss/L2-hit case resolves through the L2's MRU
  /// filter (MachineConfig::l2_filter) before the full L2 walk.
  AccessResult access_slow(CoreId core, Addr addr, AccessKind kind,
                           Cycles now);
  /// Propagates a dirty private victim's state down the hierarchy.
  void handle_private_eviction(CoreId core, const Cache::AccessOutcome& out,
                               bool from_l1);
  /// Removes private copies; returns true if any copy was dirty.
  bool back_invalidate(std::uint32_t socket, Addr line, std::uint32_t sharers);
  /// Handles an L3 eviction: back-invalidation + a single write-back
  /// transfer when any copy (L3 or private) was dirty.
  void handle_l3_eviction(std::uint32_t socket, CoreId core,
                          const Cache::AccessOutcome& out, Cycles now);
  void issue_prefetches(CoreId core, Addr miss_line, Cycles now);

  MachineConfig config_;
  std::uint32_t line_shift_;
  std::vector<std::unique_ptr<Cache>> l1_;  // per core
  std::vector<std::unique_ptr<Cache>> l2_;  // per core
  std::vector<std::unique_ptr<StreamPrefetcher>> prefetcher_;  // per core
  std::vector<std::unique_ptr<Cache>> l3_;                     // per socket
  std::vector<std::unique_ptr<MemoryBackend>> mem_backend_;  // per socket
  std::vector<std::unique_ptr<BandwidthChannel>> nic_;       // per node
  std::vector<Counters> counters_;                              // per core
  std::vector<std::uint32_t> hint_countdown_;                   // per core
  std::vector<Addr> prefetch_buf_;
  std::vector<Cycles> batch_window_;  // access_batch miss-completion window
  Addr next_alloc_ = 1 << 16;
};

}  // namespace am::sim

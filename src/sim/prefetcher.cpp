#include "sim/prefetcher.hpp"

#include <cstdlib>

namespace am::sim {

StreamPrefetcher::StreamPrefetcher(PrefetcherConfig config)
    : config_(config), streams_(config.num_streams) {}

void StreamPrefetcher::on_miss(Addr line_addr, std::vector<Addr>& out) {
  if (!config_.enabled) return;
  ++tick_;

  // Pass 1: does this miss continue an existing stream?
  for (auto& s : streams_) {
    if (!s.valid || s.stride == 0) continue;
    const auto expected =
        static_cast<std::int64_t>(s.last_line) + s.stride;
    if (expected >= 0 && static_cast<Addr>(expected) == line_addr) {
      s.last_line = line_addr;
      s.lru = tick_;
      if (s.confidence < config_.confirm_threshold) {
        ++s.confidence;
        if (s.confidence == config_.confirm_threshold) ++confirmed_;
      }
      if (s.confidence >= config_.confirm_threshold) {
        const Addr page = line_addr / config_.page_lines;
        for (std::uint32_t k = 1; k <= config_.degree; ++k) {
          const auto target =
              static_cast<std::int64_t>(line_addr) + s.stride * k;
          // Stay within the miss's page, like hardware streamers.
          if (target >= 0 &&
              static_cast<Addr>(target) / config_.page_lines == page)
            out.push_back(static_cast<Addr>(target));
        }
      }
      return;
    }
  }

  // Pass 2: does it pair with a recent miss to form a new stride? We match
  // against each stream's last address; a plausible stride re-arms it.
  for (auto& s : streams_) {
    if (!s.valid) continue;
    const auto delta = static_cast<std::int64_t>(line_addr) -
                       static_cast<std::int64_t>(s.last_line);
    if (delta != 0 && std::llabs(delta) <= config_.max_stride_lines &&
        s.confidence == 0) {
      s.stride = delta;
      s.last_line = line_addr;
      s.confidence = 1;
      s.lru = tick_;
      return;
    }
  }

  // Pass 3: allocate a fresh stream over the LRU slot.
  Stream* victim = &streams_[0];
  for (auto& s : streams_) {
    if (!s.valid) {
      victim = &s;
      break;
    }
    if (s.lru < victim->lru) victim = &s;
  }
  *victim = Stream{line_addr, 0, 0, tick_, true};
}

}  // namespace am::sim

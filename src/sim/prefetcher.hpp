#pragma once
// Per-core stream prefetcher. Detects constant-stride miss streams (in
// line-address space) and asks the memory system to pull upcoming lines
// into the cache ahead of demand. The paper's BWThr relies on exactly this
// mechanism: its constant prime stride is prefetch-friendly, which lets a
// single thread consume more memory bandwidth; CSThr's random pattern
// deliberately defeats it.
#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace am::sim {

struct PrefetcherConfig {
  /// Number of concurrent streams tracked. Intel's L2 streamer tracks 32;
  /// we default to 64 so a 44-buffer BWThr keeps all streams live.
  std::uint32_t num_streams = 64;
  /// Lines fetched ahead once a stream is confirmed.
  std::uint32_t degree = 4;
  /// Misses with the same stride required before prefetching starts.
  std::uint32_t confirm_threshold = 2;
  /// Largest tracked stride in lines. Hardware stream detectors only
  /// follow near-sequential patterns (hundreds of bytes); larger strides
  /// are left to software prefetching, which we do not model.
  std::uint32_t max_stride_lines = 8;
  /// Prefetches never cross this boundary (in lines): 4 KB pages of 64-byte
  /// lines. Mirrors real streamers and bounds mis-predicted pollution.
  std::uint32_t page_lines = 64;
  bool enabled = true;
};

/// Tracks up to `num_streams` candidate miss streams (LRU-allocated) and
/// emits prefetch targets once a stream has repeated its stride
/// `confirm_threshold` times. Fully deterministic — no RNG, state advances
/// only through on_miss — so traces replay identically. The caller (the
/// memory system) owns issuing the returned addresses and charging their
/// bandwidth.
class StreamPrefetcher {
 public:
  explicit StreamPrefetcher(PrefetcherConfig config);

  /// Observes a demand miss at `line_addr` (line-address space); appends
  /// up to `degree` prefetch candidates to `out` — which is not cleared —
  /// when the miss continues a confirmed stream. Candidates never cross
  /// the miss's `page_lines` boundary. No-op when config.enabled is false.
  void on_miss(Addr line_addr, std::vector<Addr>& out);

  std::uint64_t streams_confirmed() const { return confirmed_; }
  const PrefetcherConfig& config() const { return config_; }

 private:
  struct Stream {
    Addr last_line = 0;
    std::int64_t stride = 0;
    std::uint32_t confidence = 0;
    std::uint64_t lru = 0;
    bool valid = false;
  };

  PrefetcherConfig config_;
  std::vector<Stream> streams_;
  std::uint64_t tick_ = 0;
  std::uint64_t confirmed_ = 0;
};

}  // namespace am::sim

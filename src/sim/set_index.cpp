#include "sim/set_index.hpp"

#include <bit>
#include <stdexcept>

#include "common/rng.hpp"

namespace am::sim {
namespace {

struct Magic {
  std::uint64_t m = 0;
  std::uint32_t shift = 0;
  bool add = false;
};

/// Unsigned magic-number computation, Hacker's Delight figure 10-2
/// (magicu) widened to 64 bits: finds (M, s, add) such that
/// floor(x / d) == mul_hi(x, M) >> s (plus the one-bit `add` fold when M
/// needs 65 bits) for EVERY 64-bit x. Only called for non-power-of-two
/// d >= 3; exactness over the full address space is property-tested
/// against `/` and `%` in tests/sim/set_index_test.cpp.
Magic magicu64(std::uint64_t d) {
  Magic mag;
  const std::uint64_t two63 = 0x8000000000000000ull;
  const std::uint64_t nc = ~0ull - (0ull - d) % d;  // largest nc*d-1 <= 2^64-1
  std::uint32_t p = 63;
  std::uint64_t q1 = two63 / nc;            // 2^p / nc
  std::uint64_t r1 = two63 - q1 * nc;       // rem(2^p, nc)
  std::uint64_t q2 = (two63 - 1) / d;       // (2^p - 1) / d
  std::uint64_t r2 = (two63 - 1) - q2 * d;  // rem(2^p - 1, d)
  std::uint64_t delta = 0;
  do {
    ++p;
    if (r1 >= nc - r1) {
      q1 = 2 * q1 + 1;
      r1 = 2 * r1 - nc;
    } else {
      q1 = 2 * q1;
      r1 = 2 * r1;
    }
    if (r2 + 1 >= d - r2) {
      if (q2 >= two63 - 1) mag.add = true;
      q2 = 2 * q2 + 1;
      r2 = 2 * r2 + 1 - d;
    } else {
      if (q2 >= two63) mag.add = true;
      q2 = 2 * q2;
      r2 = 2 * r2 + 1;
    }
    delta = d - 1 - r2;
  } while (p < 128 && (q1 < delta || (q1 == delta && r1 == 0)));
  mag.m = q2 + 1;
  mag.shift = p - 64;
  return mag;
}

}  // namespace

const char* set_hash_name(SetHash hash) {
  return hash == SetHash::kH3 ? "h3" : "mask";
}

SetIndexer::SetIndexer(SetHash hash, std::uint64_t num_sets)
    : num_sets_(num_sets) {
  if (num_sets == 0)
    throw std::invalid_argument("SetIndexer: zero sets");
  const bool pow2 = std::has_single_bit(num_sets);
  if (pow2) {
    mask_ = num_sets - 1;
  } else {
    const Magic mag = magicu64(num_sets);
    magic_ = mag.m;
    magic_shift_ = mag.shift;
    magic_add_ = mag.add;
  }
  if (hash == SetHash::kMask) {
    mode_ = pow2 ? Mode::kPow2Mask : Mode::kMagicMod;
    return;
  }
  mode_ = pow2 ? Mode::kH3Pow2 : Mode::kH3Mod;
  // Output width: exactly log2(sets) bits for power-of-two set counts;
  // otherwise eight guard bits beyond the set-count width before the
  // reciprocal reduction, keeping the modulo bias under 1/256.
  const auto width =
      static_cast<std::uint32_t>(std::bit_width(num_sets - 1));
  h3_bits_ = pow2 ? width : std::min(64u, width + 8u);
  // Fixed seed: the H3 family is part of the simulated machine's
  // definition, so every cache, run, and process must draw the same
  // rows (common/rng.hpp is deterministic by construction).
  Rng rng(0x48334861736852ull);  // "H3HashR"
  for (std::uint32_t b = 0; b < h3_bits_; ++b) h3_rows_[b] = rng();
}

}  // namespace am::sim

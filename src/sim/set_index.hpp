#pragma once
// Pluggable set-index computation for sim::Cache (round 2 of the engine
// hot-path work, see docs/PERFORMANCE.md). Every probe, fill, filter
// lookup and invalidation maps a line address to a set through one of
// these indexers:
//
//   SetHash::kMask  Physical low-bit indexing, exactly what the model
//                   always did: `addr & (sets-1)` for power-of-two set
//                   counts, `addr % sets` otherwise. The non-pow2 path
//                   is strength-reduced to a precomputed magic-number
//                   reciprocal (Granlund-Montgomery/Hacker's Delight
//                   style, the transform compilers apply to division by
//                   a constant) that is exact for every 64-bit address —
//                   bit-identical to `%` by the property test in
//                   tests/sim/set_index_test.cpp.
//   SetHash::kH3    A zsim-style H3 universal hash (one fixed random
//                   row per output bit; output bit i is the parity of
//                   `addr & row[i]`), spreading pathological strides
//                   across sets the way hashed LLCs do. Unlike kMask
//                   this CHANGES placement and therefore simulated
//                   results, so MachineConfig::set_hash keys
//                   measure::machine_fingerprint when it deviates from
//                   the default.
#include <array>
#include <cstdint>

#include "sim/types.hpp"

namespace am::sim {

/// Set-index function selector (CacheConfig::set_hash,
/// MachineConfig::set_hash).
enum class SetHash : std::uint8_t {
  kMask = 0,  // low-bit mask (pow2) / exact reciprocal modulo (non-pow2)
  kH3 = 1,    // H3 family hash over the line address
};

/// Human name ("mask" / "h3").
const char* set_hash_name(SetHash hash);

class SetIndexer {
 public:
  /// Trivial indexer (one set) so Cache members can be default-built
  /// before configuration is validated.
  SetIndexer() : SetIndexer(SetHash::kMask, 1) {}
  /// Throws std::invalid_argument when num_sets == 0.
  SetIndexer(SetHash hash, std::uint64_t num_sets);

  std::uint64_t num_sets() const { return num_sets_; }

  /// The set this line address maps to, in [0, num_sets()).
  std::uint64_t index(Addr line_addr) const {
    switch (mode_) {
      case Mode::kPow2Mask:
        return line_addr & mask_;
      case Mode::kMagicMod:
        return magic_mod(line_addr);
      case Mode::kH3Pow2:
        return h3(line_addr);
      default:  // Mode::kH3Mod
        return magic_mod(h3(line_addr));
    }
  }

  /// `x % num_sets()` through the precomputed reciprocal — one widening
  /// multiply plus shifts instead of a hardware divide. Exposed so the
  /// exact-quotient property test can drive it directly on every
  /// geometry, power of two or not.
  std::uint64_t magic_mod(std::uint64_t x) const {
    if (mask_ != 0 || num_sets_ == 1) return x & mask_;
    std::uint64_t q = mul_hi(x, magic_);
    // Hacker's Delight 10-9: when the magic needs 65 bits, the quotient
    // is (q + x) >> shift — computed overflow-free as the average of q
    // and x (same parity, so exact) shifted one less.
    if (magic_add_)
      q = (q + ((x - q) >> 1)) >> (magic_shift_ - 1);
    else
      q >>= magic_shift_;
    return x - q * num_sets_;
  }

 private:
  enum class Mode : std::uint8_t { kPow2Mask, kMagicMod, kH3Pow2, kH3Mod };

  static std::uint64_t mul_hi(std::uint64_t a, std::uint64_t b) {
    __extension__ using u128 = unsigned __int128;
    return static_cast<std::uint64_t>((static_cast<u128>(a) * b) >> 64);
  }

  std::uint64_t h3(Addr line_addr) const {
    std::uint64_t out = 0;
    for (std::uint32_t b = 0; b < h3_bits_; ++b)
      out |= static_cast<std::uint64_t>(parity(line_addr & h3_rows_[b])) << b;
    return out;
  }
  static std::uint32_t parity(std::uint64_t x) {
    return static_cast<std::uint32_t>(__builtin_popcountll(x)) & 1u;
  }

  Mode mode_ = Mode::kPow2Mask;
  std::uint64_t num_sets_ = 1;
  std::uint64_t mask_ = 0;  // num_sets-1 when power of two, else 0

  // Magic reciprocal for the non-pow2 modulo (computed in set_index.cpp).
  std::uint64_t magic_ = 0;
  std::uint32_t magic_shift_ = 0;
  bool magic_add_ = false;

  // H3 rows: one fixed 64-bit mask per output bit, deterministically
  // seeded so every run (and every process) places lines identically.
  std::uint32_t h3_bits_ = 0;
  std::array<std::uint64_t, 64> h3_rows_{};
};

}  // namespace am::sim

#include "sim/trace.hpp"

#include <fstream>
#include <stdexcept>

namespace am::sim {

std::vector<Addr> TraceBuffer::line_addresses(std::uint32_t line_bytes) const {
  if (line_bytes == 0) throw std::invalid_argument("line_bytes == 0");
  std::vector<Addr> out;
  out.reserve(records_.size());
  for (const auto& r : records_) out.push_back(r.addr / line_bytes);
  return out;
}

bool TraceBuffer::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  const std::uint64_t count = records_.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& r : records_) {
    out.write(reinterpret_cast<const char*>(&r.addr), sizeof(r.addr));
    const auto kind = static_cast<std::uint8_t>(r.kind);
    out.write(reinterpret_cast<const char*>(&kind), sizeof(kind));
    out.write(reinterpret_cast<const char*>(&r.compute_after),
              sizeof(r.compute_after));
  }
  return static_cast<bool>(out);
}

TraceBuffer TraceBuffer::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open trace: " + path);
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  TraceBuffer buf;
  for (std::uint64_t i = 0; i < count; ++i) {
    TraceRecord r;
    std::uint8_t kind = 0;
    in.read(reinterpret_cast<char*>(&r.addr), sizeof(r.addr));
    in.read(reinterpret_cast<char*>(&kind), sizeof(kind));
    in.read(reinterpret_cast<char*>(&r.compute_after),
            sizeof(r.compute_after));
    if (!in) throw std::runtime_error("truncated trace: " + path);
    r.kind = static_cast<AccessKind>(kind);
    buf.records_.push_back(r);
  }
  return buf;
}

TraceReplayAgent::TraceReplayAgent(const TraceBuffer& trace, std::string name,
                                   std::int64_t offset)
    : Agent(std::move(name)), trace_(&trace), offset_(offset) {}

void TraceReplayAgent::step(AgentContext& ctx) {
  constexpr std::size_t kChunk = 8;
  const std::size_t end = std::min(cursor_ + kChunk, trace_->size());
  for (std::size_t i = cursor_; i < end; ++i) {
    const TraceRecord& r = (*trace_)[i];
    const Addr addr = static_cast<Addr>(
        static_cast<std::int64_t>(r.addr) + offset_);
    if (r.kind == AccessKind::kStore)
      ctx.store(addr);
    else
      ctx.load(addr);
    if (r.compute_after != 0) ctx.compute(r.compute_after);
  }
  cursor_ = end;
}

}  // namespace am::sim

#pragma once
// Memory-access trace capture and replay. Traces let users (a) archive a
// workload's access stream from one simulation and replay it against other
// machine configurations, and (b) feed the exact stack-distance analysis in
// model/stack_distance.hpp, which cross-validates the paper's analytic EHR
// model against a ground-truth LRU miss-rate curve.
#include <cstdint>
#include <string>
#include <vector>

#include "sim/agent.hpp"
#include "sim/types.hpp"

namespace am::sim {

/// One captured access: byte address, load/store, and the compute gap
/// that followed it.
struct TraceRecord {
  Addr addr = 0;
  AccessKind kind = AccessKind::kLoad;
  /// Compute cycles spent after this access (preserves access frequency).
  std::uint32_t compute_after = 0;
};

/// Growable in-memory trace with binary (de)serialization.
class TraceBuffer {
 public:
  void append(Addr addr, AccessKind kind, std::uint32_t compute_after = 0) {
    records_.push_back({addr, kind, compute_after});
  }

  /// Adds compute cycles to the most recent record (no-op when empty).
  void add_compute_to_last(std::uint32_t cycles) {
    if (!records_.empty()) records_.back().compute_after += cycles;
  }

  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  const TraceRecord& operator[](std::size_t i) const { return records_[i]; }
  const std::vector<TraceRecord>& records() const { return records_; }
  void clear() { records_.clear(); }

  /// Line-granular addresses of the trace (for stack-distance analysis).
  /// Throws std::invalid_argument when line_bytes is 0.
  std::vector<Addr> line_addresses(std::uint32_t line_bytes) const;

  /// Binary round-trip; format: u64 count, then packed host-endian
  /// records (a cache/replay format, not a portable interchange one).
  /// save returns false on any I/O failure; load throws std::runtime_error
  /// on a missing or truncated file. load(p) after save(p) reproduces the
  /// buffer exactly.
  bool save(const std::string& path) const;
  static TraceBuffer load(const std::string& path);  // throws on error

 private:
  std::vector<TraceRecord> records_;
};

/// Agent that replays a captured trace through the memory system,
/// preserving the recorded compute gaps.
class TraceReplayAgent final : public Agent {
 public:
  /// The trace's addresses are used verbatim: replay on a fresh engine
  /// whose allocator has not handed out conflicting ranges, or rebase via
  /// `offset` (added to every address).
  TraceReplayAgent(const TraceBuffer& trace, std::string name = "replay",
                   std::int64_t offset = 0);

  void step(AgentContext& ctx) override;
  bool finished() const override { return cursor_ >= trace_->size(); }

  std::size_t replayed() const { return cursor_; }

 private:
  const TraceBuffer* trace_;
  std::int64_t offset_;
  std::size_t cursor_ = 0;
};

}  // namespace am::sim

#pragma once
// Fundamental simulator types shared across the sim:: modules.
#include <cstdint>

namespace am::sim {

/// Simulated byte address.
using Addr = std::uint64_t;
/// Simulated time in core clock cycles.
using Cycles = std::uint64_t;

/// Identifies a hardware core: node / socket / core-within-socket are
/// flattened into a single global index by MachineConfig.
using CoreId = std::uint32_t;

enum class AccessKind : std::uint8_t { kLoad, kStore, kPrefetch };

/// Which level of the hierarchy served an access.
enum class Level : std::uint8_t { kL1, kL2, kL3, kMemory };

inline const char* level_name(Level lvl) {
  switch (lvl) {
    case Level::kL1: return "L1";
    case Level::kL2: return "L2";
    case Level::kL3: return "L3";
    case Level::kMemory: return "Memory";
  }
  return "?";
}

}  // namespace am::sim

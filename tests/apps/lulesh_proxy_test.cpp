#include "apps/lulesh_proxy.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "sim/engine.hpp"

namespace am::apps {
namespace {

using sim::MachineConfig;

MachineConfig machine(std::uint32_t nodes = 2) {
  return MachineConfig::xeon20mb_scaled(32, nodes);
}

struct Job {
  explicit Job(std::uint32_t nodes, std::uint32_t ranks,
               std::uint32_t per_socket, LuleshConfig cfg)
      : engine(machine(nodes)),
        mapping(engine.config(), ranks, per_socket),
        comm(engine, mapping) {
    for (std::uint32_t r = 0; r < ranks; ++r)
      agents.push_back(static_cast<LuleshProxyAgent*>(
          &engine.agent(engine.add_agent(
              std::make_unique<LuleshProxyAgent>(engine, comm, mapping, r,
                                                 cfg),
              mapping.placement(r).core))));
  }
  sim::Engine engine;
  minimpi::Mapping mapping;
  minimpi::Communicator comm;
  std::vector<LuleshProxyAgent*> agents;
};

LuleshConfig small_cfg(std::uint32_t edge = 6) {
  LuleshConfig c;
  c.edge = edge;
  c.steps = 2;
  return c;
}

TEST(LuleshConfig, WorkingSetMatchesPaperArithmetic) {
  LuleshConfig c;
  c.edge = 22;
  // 22^3 elements * 40 fields * 8 B ~= 3.4 MB (paper: 3.5-7 MB measured).
  EXPECT_NEAR(static_cast<double>(c.working_set_bytes()), 3.4e6, 0.2e6);
  c.edge = 36;
  // 36^3 * 320 B ~= 14.9 MB (paper: "more than 15MB of cache each").
  EXPECT_NEAR(static_cast<double>(c.working_set_bytes()), 14.9e6, 0.5e6);
}

TEST(LuleshConfig, PaperScalingPreservesRatio) {
  const auto c = LuleshConfig::paper(22, 8);
  EXPECT_EQ(c.edge, 11u);
  EXPECT_THROW(LuleshConfig::paper(22, 0), std::invalid_argument);
}

TEST(LuleshProxy, EightRankCubeRuns) {
  Job job(2, 8, 2, small_cfg());
  job.engine.run();
  for (auto* a : job.agents) {
    EXPECT_TRUE(a->finished());
    EXPECT_EQ(a->steps_done(), 2u);
  }
}

TEST(LuleshProxy, CornerAndCenterNeighbourCounts) {
  Job job(2, 8, 2, small_cfg());
  // In a 2x2x2 grid every rank is a corner with exactly 3 neighbours.
  for (auto* a : job.agents) EXPECT_EQ(a->neighbours().size(), 3u);
}

TEST(LuleshProxy, RejectsNonCubicRankCount) {
  sim::Engine eng(machine());
  minimpi::Mapping map(eng.config(), 6, 2);
  minimpi::Communicator comm(eng, map);
  EXPECT_THROW(LuleshProxyAgent(eng, comm, map, 0, small_cfg()),
               std::invalid_argument);
}

TEST(LuleshProxy, BiggerCubesTakeLonger) {
  Job small(2, 8, 2, small_cfg(5));
  Job big(2, 8, 2, small_cfg(10));
  EXPECT_GT(big.engine.run(), small.engine.run() * 2);
}

TEST(LuleshProxy, HaloBytesScaleWithFaceArea) {
  LuleshConfig c;
  c.edge = 10;
  const auto small_halo = c.halo_bytes();
  c.edge = 20;
  EXPECT_EQ(c.halo_bytes(), small_halo * 4);
}

TEST(LuleshProxy, GeneratesCommunication) {
  Job job(2, 8, 2, small_cfg());
  job.engine.run();
  // 8 ranks x 3 neighbours x 2 steps messages.
  EXPECT_GE(job.comm.total_bytes_sent(),
            8u * 3 * 2 * small_cfg().halo_bytes());
}

TEST(LuleshProxy, DeterministicRuntime) {
  auto run = [] {
    Job job(2, 8, 2, small_cfg());
    return job.engine.run();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace am::apps

#include "apps/mcb_proxy.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "sim/engine.hpp"

namespace am::apps {
namespace {

using sim::MachineConfig;

MachineConfig machine(std::uint32_t nodes = 1) {
  return MachineConfig::xeon20mb_scaled(32, nodes);
}

struct Job {
  explicit Job(std::uint32_t nodes, std::uint32_t ranks,
               std::uint32_t per_socket, McbConfig cfg)
      : engine(machine(nodes)),
        mapping(engine.config(), ranks, per_socket),
        comm(engine, mapping) {
    for (std::uint32_t r = 0; r < ranks; ++r)
      agents.push_back(static_cast<McbProxyAgent*>(
          &engine.agent(engine.add_agent(
              std::make_unique<McbProxyAgent>(engine, comm, mapping, r, cfg),
              mapping.placement(r).core))));
  }
  sim::Engine engine;
  minimpi::Mapping mapping;
  minimpi::Communicator comm;
  std::vector<McbProxyAgent*> agents;
};

McbConfig small_cfg(std::uint32_t particles = 1000) {
  auto c = McbConfig::paper(particles * 32, 32);  // undo scale for clarity
  c.steps = 2;
  return c;
}

TEST(McbConfig, PaperScalingShrinksFootprints) {
  const auto c = McbConfig::paper(20'000, 8);
  EXPECT_EQ(c.particles, 2500u);
  EXPECT_EQ(c.xs_table_bytes, 3584u * 1024 / 8);
  EXPECT_EQ(c.tally_bytes, 2560u * 1024 / 8);
  EXPECT_THROW(McbConfig::paper(1000, 0), std::invalid_argument);
}

TEST(McbConfig, OpsPerParticleGrowsWithProblemSize) {
  auto base = McbConfig::paper(20'000, 1);
  auto big = McbConfig::paper(260'000, 1);
  big.reference_particles = base.reference_particles;
  EXPECT_GT(big.ops_per_particle(), base.ops_per_particle());
}

TEST(McbConfig, CommVolumeSaturatesAtCap) {
  McbConfig c;
  c.particles = 1'000'000;  // way beyond the cap
  EXPECT_EQ(c.comm_bytes_per_step(), c.comm_cap_bytes);
  c.particles = 1000;
  EXPECT_LT(c.comm_bytes_per_step(), c.comm_cap_bytes);
}

TEST(McbProxy, RunsAllStepsOnTwoRanks) {
  Job job(1, 2, 2, small_cfg());
  job.engine.run();
  for (auto* a : job.agents) {
    EXPECT_TRUE(a->finished());
    EXPECT_EQ(a->steps_done(), 2u);
  }
}

TEST(McbProxy, RunsAcrossSocketsAndNodes) {
  Job job(2, 4, 1, small_cfg());
  job.engine.run();
  for (auto* a : job.agents) EXPECT_TRUE(a->finished());
  EXPECT_GT(job.comm.total_bytes_sent(), 0u);
}

TEST(McbProxy, GeneratesMemoryTraffic) {
  Job job(1, 2, 2, small_cfg());
  job.engine.run();
  const auto& ctr = job.engine.agent_counters(0);
  EXPECT_GT(ctr.loads, 1000u);
  EXPECT_GT(ctr.stores, 100u);
}

TEST(McbProxy, MoreParticlesTakeLonger) {
  Job small(1, 2, 2, small_cfg(500));
  Job big(1, 2, 2, small_cfg(2000));
  const auto t_small = small.engine.run();
  const auto t_big = big.engine.run();
  EXPECT_GT(t_big, t_small * 2);
}

TEST(McbProxy, RequiresTwoRanks) {
  sim::Engine eng(machine());
  minimpi::Mapping map(eng.config(), 1, 1);
  minimpi::Communicator comm(eng, map);
  EXPECT_THROW(McbProxyAgent(eng, comm, map, 0, small_cfg()),
               std::invalid_argument);
}

TEST(McbProxy, DeterministicRuntime) {
  auto run = [] {
    Job job(1, 2, 2, small_cfg());
    return job.engine.run();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace am::apps

#include "apps/stream_probe.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "sim/engine.hpp"

namespace am::apps {
namespace {

using sim::MachineConfig;

TEST(StreamProbe, MeasuresNearPeakBandwidth) {
  auto m = MachineConfig::xeon20mb_scaled(16);
  sim::Engine eng(m);
  StreamProbeConfig cfg;
  cfg.array_bytes = m.l3.size_bytes * 2;
  cfg.passes = 2;
  eng.add_agent(std::make_unique<StreamProbeAgent>(eng.memory(), cfg), 0);
  const auto end = eng.run();
  const double seconds = m.cycles_to_seconds(end);
  const double bw =
      static_cast<double>(eng.memory().mem_backend(0).total_bytes()) / seconds;
  // The probe should reach a large fraction of the configured 17 GB/s
  // (it is the calibration instrument for the paper's STREAM figure).
  EXPECT_GT(bw, 0.6 * m.mem_bandwidth_bytes_per_sec);
  EXPECT_LE(bw, 1.05 * m.mem_bandwidth_bytes_per_sec);
}

TEST(StreamProbe, PayloadAccounting) {
  auto m = MachineConfig::xeon20mb_scaled(64);
  sim::Engine eng(m);
  StreamProbeConfig cfg;
  cfg.array_bytes = 1 << 20;
  cfg.passes = 3;
  auto probe = std::make_unique<StreamProbeAgent>(eng.memory(), cfg);
  auto* raw = probe.get();
  eng.add_agent(std::move(probe), 0);
  eng.run();
  EXPECT_EQ(raw->payload_bytes(), 3ull * 3 * (1 << 20));
  EXPECT_TRUE(raw->finished());
}

TEST(StreamProbe, PrefetcherRaisesBandwidth) {
  auto run = [](bool pf) {
    auto m = MachineConfig::xeon20mb_scaled(32);
    m.prefetcher.enabled = pf;
    sim::Engine eng(m);
    StreamProbeConfig cfg;
    cfg.array_bytes = m.l3.size_bytes * 2;
    eng.add_agent(std::make_unique<StreamProbeAgent>(eng.memory(), cfg), 0);
    const auto end = eng.run();
    return static_cast<double>(
               eng.memory().mem_backend(0).total_bytes()) /
           m.cycles_to_seconds(end);
  };
  EXPECT_GT(run(true), run(false));
}

TEST(StreamProbe, RejectsDegenerateConfig) {
  auto m = MachineConfig::xeon20mb_scaled(64);
  sim::Engine eng(m);
  StreamProbeConfig bad;
  bad.array_bytes = 1;
  EXPECT_THROW(StreamProbeAgent(eng.memory(), bad), std::invalid_argument);
  StreamProbeConfig zero_pass;
  zero_pass.passes = 0;
  EXPECT_THROW(StreamProbeAgent(eng.memory(), zero_pass),
               std::invalid_argument);
}

}  // namespace
}  // namespace am::apps

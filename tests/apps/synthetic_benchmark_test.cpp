#include "apps/synthetic_benchmark.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "model/ehr_model.hpp"
#include "sim/engine.hpp"

namespace am::apps {
namespace {

using model::AccessDistribution;
using sim::MachineConfig;

MachineConfig machine() {
  auto m = MachineConfig::xeon20mb_scaled(32);  // L3 640 KB
  m.prefetcher.enabled = false;
  return m;
}

SyntheticConfig make_cfg(AccessDistribution dist, std::uint64_t warmup,
                         std::uint64_t measured, std::uint32_t ops = 1) {
  SyntheticConfig c{std::move(dist), 4, ops, warmup, measured};
  return c;
}

TEST(SyntheticBenchmark, RunsToCompletion) {
  sim::Engine eng(machine());
  const auto dist = AccessDistribution::uniform(100'000, "Uni");
  auto agent = std::make_unique<SyntheticBenchmarkAgent>(
      eng.memory(), make_cfg(dist, 1000, 5000));
  auto* raw = agent.get();
  eng.add_agent(std::move(agent), 0);
  eng.run();
  EXPECT_TRUE(raw->finished());
  EXPECT_EQ(raw->accesses_done(), 6000u);
}

TEST(SyntheticBenchmark, WarmupResetsStats) {
  sim::Engine eng(machine());
  const auto dist = AccessDistribution::uniform(100'000, "Uni");
  auto agent = std::make_unique<SyntheticBenchmarkAgent>(
      eng.memory(), make_cfg(dist, 2000, 3000));
  auto* raw = agent.get();
  eng.add_agent(std::move(agent), 0);
  eng.run();
  // Counters only cover the measurement window.
  const auto& ctr = eng.agent_counters(0);
  EXPECT_LE(ctr.loads, 3000u + 32);
  EXPECT_GT(ctr.loads, 2500u);
  EXPECT_GT(raw->measure_start_cycle(), 0u);
}

TEST(SyntheticBenchmark, MissRateMatchesEhrModelForUniform) {
  // Buffer 4x the L3: expected hit rate ~= 0.25 under Eq. 4 (uniform).
  const auto m = machine();
  const std::uint64_t elements = m.l3.size_bytes;  // x4 bytes = 4x L3
  sim::Engine eng(m);
  const auto dist = AccessDistribution::uniform(elements, "Uni");
  auto agent = std::make_unique<SyntheticBenchmarkAgent>(
      eng.memory(), make_cfg(dist, elements * 2, 400'000));
  eng.add_agent(std::move(agent), 0);
  eng.run();
  const double measured_miss = eng.agent_counters(0).l3_miss_rate();
  const model::EhrModel ehr(dist, 4);
  const double predicted_miss = ehr.expected_miss_rate(m.l3.size_bytes);
  // Spatial locality within 64-byte lines is negligible for this random
  // pattern; the fully-associative model is a few percent optimistic.
  EXPECT_NEAR(measured_miss, predicted_miss, 0.10);
}

TEST(SyntheticBenchmark, HigherConcentrationLowersMissRate) {
  const auto m = machine();
  const std::uint64_t elements = m.l3.size_bytes;
  auto run = [&](AccessDistribution d) {
    sim::Engine eng(m);
    eng.add_agent(std::make_unique<SyntheticBenchmarkAgent>(
                      eng.memory(), make_cfg(std::move(d), elements, 200'000)),
                  0);
    eng.run();
    return eng.agent_counters(0).l3_miss_rate();
  };
  const double wide = run(AccessDistribution::normal(
      elements, elements / 2.0, elements / 4.0, "Norm_4"));
  const double narrow = run(AccessDistribution::normal(
      elements, elements / 2.0, elements / 8.0, "Norm_8"));
  EXPECT_LT(narrow, wide);
}

TEST(SyntheticBenchmark, ComputeOpsSlowTheLoopDown) {
  const auto m = machine();
  const std::uint64_t elements = m.l3.size_bytes / 8;
  auto run = [&](std::uint32_t ops) {
    sim::Engine eng(m);
    const auto dist = AccessDistribution::uniform(elements, "Uni");
    eng.add_agent(std::make_unique<SyntheticBenchmarkAgent>(
                      eng.memory(), make_cfg(dist, 0, 50'000, ops)),
                  0);
    return eng.run();
  };
  const auto fast = run(1);
  const auto slow = run(100);
  EXPECT_GT(slow, fast + 50'000ull * 50);
}

TEST(SyntheticBenchmark, RejectsDegenerateConfig) {
  sim::Engine eng(machine());
  const auto dist = AccessDistribution::uniform(1000, "Uni");
  SyntheticConfig bad{dist, 4, 1, 0, 0};
  EXPECT_THROW(SyntheticBenchmarkAgent(eng.memory(), bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace am::apps

#include "common/cli.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace am {
namespace {

Cli make(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "prog");
  static std::vector<char*> argv;
  argv.clear();
  for (auto& s : storage) argv.push_back(s.data());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, ParsesEqualsForm) {
  auto cli = make({"--scale=8", "--name=foo"});
  EXPECT_EQ(cli.get_int("scale", 0), 8);
  EXPECT_EQ(cli.get("name", ""), "foo");
}

TEST(Cli, ParsesSpaceForm) {
  auto cli = make({"--scale", "16"});
  EXPECT_EQ(cli.get_int("scale", 0), 16);
}

TEST(Cli, BooleanFlag) {
  auto cli = make({"--full"});
  EXPECT_TRUE(cli.has("full"));
  EXPECT_TRUE(cli.get_bool("full", false));
  EXPECT_FALSE(cli.get_bool("absent", false));
}

TEST(Cli, Defaults) {
  auto cli = make({});
  EXPECT_EQ(cli.get_int("n", 42), 42);
  EXPECT_DOUBLE_EQ(cli.get_double("x", 2.5), 2.5);
  EXPECT_EQ(cli.get("s", "d"), "d");
}

TEST(Cli, Positional) {
  auto cli = make({"input.txt", "--flag", "output.txt"});
  // "--flag output.txt" consumes output.txt as the flag value.
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "input.txt");
  EXPECT_EQ(cli.get("flag", ""), "output.txt");
}

TEST(Cli, UnusedReportsUnqueriedFlags) {
  auto cli = make({"--used=1", "--typo=2"});
  (void)cli.get_int("used", 0);
  const auto unused = cli.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Cli, DoubleParsing) {
  auto cli = make({"--x=3.25"});
  EXPECT_DOUBLE_EQ(cli.get_double("x", 0.0), 3.25);
}

TEST(Cli, IntRejectsMalformedValues) {
  // Silent 0 here once meant a typo'd --reps ran a 0-rep sweep.
  for (const char* bad :
       {"--reps=abc", "--reps=12abc", "--reps=1.5", "--reps=0x10",
        "--reps=99999999999999999999999999"})
    EXPECT_THROW(make({bad}).get_int("reps", 3), std::invalid_argument)
        << bad;
  // A value-less "--reps" parses as boolean "true" — also not an integer.
  EXPECT_THROW(make({"--reps"}).get_int("reps", 3), std::invalid_argument);
  // Valid forms still parse, including signs.
  EXPECT_EQ(make({"--reps=-7"}).get_int("reps", 3), -7);
  EXPECT_EQ(make({"--reps=+7"}).get_int("reps", 3), 7);
}

TEST(Cli, DoubleRejectsMalformedValues) {
  for (const char* bad :
       {"--x=abc", "--x=1.5garbage", "--x=1e999", "--x=.", "--x"})
    EXPECT_THROW(make({bad}).get_double("x", 2.5), std::invalid_argument)
        << bad;
  EXPECT_DOUBLE_EQ(make({"--x=-1e3"}).get_double("x", 0.0), -1000.0);
  EXPECT_DOUBLE_EQ(make({"--x=2e-3"}).get_double("x", 0.0), 0.002);
  // Underflow to a subnormal sets ERANGE but is a legitimate value.
  EXPECT_GT(make({"--x=1e-320"}).get_double("x", 0.0), 0.0);
}

TEST(Cli, ShardParsing) {
  auto cli = make({"--shard=2/8"});
  const auto shard = cli.get_shard("shard");
  EXPECT_EQ(shard.index, 2u);
  EXPECT_EQ(shard.count, 8u);
  EXPECT_TRUE(shard.sharded());

  const auto whole = make({}).get_shard("shard");  // absent: the whole job
  EXPECT_EQ(whole.index, 0u);
  EXPECT_EQ(whole.count, 1u);
  EXPECT_FALSE(whole.sharded());
}

TEST(Cli, ShardParsingRejectsMalformedValues) {
  for (const char* bad :
       {"--shard=3", "--shard=/4", "--shard=3/", "--shard=a/4",
        "--shard=3/b", "--shard=3/4x", "--shard=3/0", "--shard=4/4",
        "--shard=9/4", "--shard=1/-4", "--shard=-1/4", "--shard=+1/4",
        "--shard=1/2/3", "--shard= 1/4"})
    EXPECT_THROW(make({bad}).get_shard("shard"), std::invalid_argument)
        << bad;
}

TEST(Cli, PathFlagsLikeLeaseParseBothForms) {
  // The scheduler worker flags (--lease FILE, --emit-plan FILE) are
  // plain string flags; both spellings must carry the path through
  // verbatim, including paths that contain '='.
  EXPECT_EQ(make({"--lease", "/tmp/drv.lease0"}).get("lease", ""),
            "/tmp/drv.lease0");
  EXPECT_EQ(make({"--lease=/tmp/a=b.lease"}).get("lease", ""),
            "/tmp/a=b.lease");
  EXPECT_EQ(make({"--emit-plan", "plan.tsv"}).get("emit-plan", ""),
            "plan.tsv");
  // A value-less occurrence degrades to the boolean sentinel "true" —
  // the one value the drivers reject as a missing path (a file named
  // "true" would be indistinguishable from the typo).
  EXPECT_EQ(make({"--lease"}).get("lease", ""), "true");
  EXPECT_EQ(make({"--lease", "--worker"}).get("lease", ""), "true");
}

TEST(Cli, CostModelOverridesParseStrictly) {
  // amsweep's --batches is get_int-validated: trailing junk or empty
  // values must throw, never quietly become 0 batches.
  EXPECT_EQ(make({"--batches", "12"}).get_int("batches", 0), 12);
  EXPECT_THROW(make({"--batches", "12x"}).get_int("batches", 0),
               std::invalid_argument);
  EXPECT_THROW(make({"--batches"}).get_int("batches", 0),
               std::invalid_argument);  // value-less -> "true"
  // --schedule/--cost-model are plain strings here; the binary rejects
  // unknown values (covered end to end by smoke_amsweep).
  EXPECT_EQ(make({"--cost-model=uniform"}).get("cost-model", "measured"),
            "uniform");
  EXPECT_EQ(make({}).get("cost-model", "measured"), "measured");
}

}  // namespace
}  // namespace am

#include "common/heartbeat.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

namespace am {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return (fs::temp_directory_path() / ("am_heartbeat_test_" + name))
      .string();
}

TEST(Heartbeat, WriterBeatsAndCleansUp) {
  const auto path = temp_path("beats.hb");
  fs::remove(path);
  {
    HeartbeatWriter writer(path, /*interval_seconds=*/0.01);
    // The first beat is synchronous: visible before the constructor
    // returns, so a supervisor polling right after spawn sees the file.
    const auto first = read_heartbeat(path);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->pid, static_cast<std::uint64_t>(::getpid()));
    EXPECT_GE(first->beats, 1u);

    // The counter advances on its own.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    std::uint64_t beats = first->beats;
    while (beats <= first->beats &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      if (const auto hb = read_heartbeat(path)) beats = hb->beats;
    }
    // The sequence number is the liveness signal: supervisors judge a
    // worker stalled when it stops advancing, never by file timestamps
    // (which an NTP step could fake).
    EXPECT_GT(beats, first->beats);
  }
  // Clean shutdown removes the file — a leftover heartbeat means a crash.
  EXPECT_FALSE(fs::exists(path));
  EXPECT_FALSE(read_heartbeat(path).has_value());
}

TEST(Heartbeat, StopIsIdempotent) {
  const auto path = temp_path("stop.hb");
  HeartbeatWriter writer(path, 0.01);
  writer.stop();
  writer.stop();  // second stop must be a no-op, not a crash/deadlock
  EXPECT_FALSE(fs::exists(path));
}

// Start/stop/restart churn with a concurrent reader and racing stop()
// callers. Primarily a TSan workload (run under `cmake --preset tsan`):
// it exercises the stop-flag handoff, the lost-wakeup fence in stop(),
// and the join serialization that concurrent stop() relies on. The
// regression it pins down: two threads calling stop() at once used to
// both reach thread_.join().
TEST(Heartbeat, StartStopRestartStress) {
  const auto path = temp_path("stress.hb");
  fs::remove(path);
  std::atomic<bool> done{false};
  std::thread reader([&] {
    // read_heartbeat races with writer rewrites and removal by design;
    // the atomic rename means it sees a whole beat or no file at all.
    while (!done.load(std::memory_order_acquire)) {
      if (const auto hb = read_heartbeat(path)) {
        EXPECT_EQ(hb->pid, static_cast<std::uint64_t>(::getpid()));
      }
    }
  });
  std::uint64_t last_beats = 0;
  for (int round = 0; round < 25; ++round) {
    HeartbeatWriter writer(path, /*interval_seconds=*/0.001);
    EXPECT_GE(writer.beats(), 1u);  // constructor wrote the first beat
    std::thread s1([&] { writer.stop(); });
    std::thread s2([&] { writer.stop(); });
    s1.join();
    s2.join();
    last_beats = writer.beats();
    // ~writer runs a third stop() here, after the racing pair.
  }
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_GE(last_beats, 1u);
  EXPECT_FALSE(fs::exists(path));
}

TEST(Heartbeat, RejectsMalformedFiles) {
  const auto path = temp_path("malformed.hb");
  std::ofstream(path) << "not a heartbeat\n";
  EXPECT_FALSE(read_heartbeat(path).has_value());
  std::ofstream(path, std::ios::trunc) << "123 456\n";  // space, not tab
  EXPECT_FALSE(read_heartbeat(path).has_value());
  std::ofstream(path, std::ios::trunc) << "123\t456\n";
  const auto hb = read_heartbeat(path);
  ASSERT_TRUE(hb.has_value());
  EXPECT_EQ(hb->pid, 123u);
  EXPECT_EQ(hb->beats, 456u);
  fs::remove(path);
}

}  // namespace
}  // namespace am

#include "common/heartbeat.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

namespace am {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return (fs::temp_directory_path() / ("am_heartbeat_test_" + name))
      .string();
}

TEST(Heartbeat, WriterBeatsAndCleansUp) {
  const auto path = temp_path("beats.hb");
  fs::remove(path);
  {
    HeartbeatWriter writer(path, /*interval_seconds=*/0.01);
    // The first beat is synchronous: visible before the constructor
    // returns, so a supervisor polling right after spawn sees the file.
    const auto first = read_heartbeat(path);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->pid, static_cast<std::uint64_t>(::getpid()));
    EXPECT_GE(first->beats, 1u);

    // The counter advances on its own.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    std::uint64_t beats = first->beats;
    while (beats <= first->beats &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      if (const auto hb = read_heartbeat(path)) beats = hb->beats;
    }
    // The sequence number is the liveness signal: supervisors judge a
    // worker stalled when it stops advancing, never by file timestamps
    // (which an NTP step could fake).
    EXPECT_GT(beats, first->beats);
  }
  // Clean shutdown removes the file — a leftover heartbeat means a crash.
  EXPECT_FALSE(fs::exists(path));
  EXPECT_FALSE(read_heartbeat(path).has_value());
}

TEST(Heartbeat, StopIsIdempotent) {
  const auto path = temp_path("stop.hb");
  HeartbeatWriter writer(path, 0.01);
  writer.stop();
  writer.stop();  // second stop must be a no-op, not a crash/deadlock
  EXPECT_FALSE(fs::exists(path));
}

TEST(Heartbeat, RejectsMalformedFiles) {
  const auto path = temp_path("malformed.hb");
  std::ofstream(path) << "not a heartbeat\n";
  EXPECT_FALSE(read_heartbeat(path).has_value());
  std::ofstream(path, std::ios::trunc) << "123 456\n";  // space, not tab
  EXPECT_FALSE(read_heartbeat(path).has_value());
  std::ofstream(path, std::ios::trunc) << "123\t456\n";
  const auto hb = read_heartbeat(path);
  ASSERT_TRUE(hb.has_value());
  EXPECT_EQ(hb->pid, 123u);
  EXPECT_EQ(hb->beats, 456u);
  fs::remove(path);
}

}  // namespace
}  // namespace am

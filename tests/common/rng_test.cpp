#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace am {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.bounded(17), 17u);
}

TEST(Rng, BoundedCoversRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.bounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  // Mean of U[0,1) is 0.5 with stderr ~ 0.29/sqrt(n) ~ 0.001.
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BoundedIsRoughlyUniform) {
  Rng rng(11);
  const std::uint64_t buckets = 10;
  std::vector<int> count(buckets, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++count[rng.bounded(buckets)];
  for (std::uint64_t b = 0; b < buckets; ++b)
    EXPECT_NEAR(count[b], n / 10.0, n / 10.0 * 0.1) << "bucket " << b;
}

TEST(Rng, ReseedReproduces) {
  Rng rng(5);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(rng());
  rng.reseed(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng(), first[i]);
}

}  // namespace
}  // namespace am

// Transport + framing coverage for common/socket: frame round-trips
// (whole and byte-at-a-time), each malformed-input class failing a
// FrameReader with a clean terminal error, and real Unix/TCP socket
// round-trips including stale-socket-file recovery. The daemon-level
// consequences (one bad connection never disturbs other tenants) are
// covered in measure/amsweepd_test.
#include "common/socket.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>

namespace am {
namespace {

namespace fs = std::filesystem;

std::string short_sock_path(const std::string& tag) {
  // sun_path caps Unix socket paths around 100 bytes; stay short and
  // unique enough for parallel ctest shards.
  return (fs::temp_directory_path() /
          ("am_sock_" + tag + "_" + std::to_string(::getpid()) + ".sock"))
      .string();
}

TEST(FrameCodec, RoundTripsThroughReader) {
  const Frame frame{7, "hello\tworld\nwith binary \x01\x00 bytes"};
  const std::string wire = encode_frame(frame);
  EXPECT_EQ(wire.size(), kFrameHeaderBytes + frame.payload.size());

  FrameReader reader;
  reader.feed(wire.data(), wire.size());
  const auto got = reader.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->type, frame.type);
  EXPECT_EQ(got->payload, frame.payload);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_FALSE(reader.failed());
  EXPECT_EQ(reader.pending_bytes(), 0u);
}

TEST(FrameCodec, ByteAtATimeFeedYieldsSameFrames) {
  const Frame a{1, "first"};
  const Frame b{2, ""};  // empty payloads are legal
  const std::string wire = encode_frame(a) + encode_frame(b);

  FrameReader reader;
  std::size_t frames = 0;
  for (const char c : wire) {
    reader.feed(&c, 1);
    while (const auto got = reader.next()) {
      if (frames == 0) {
        EXPECT_EQ(got->type, a.type);
        EXPECT_EQ(got->payload, a.payload);
      } else {
        EXPECT_EQ(got->type, b.type);
        EXPECT_EQ(got->payload, b.payload);
      }
      ++frames;
    }
  }
  EXPECT_EQ(frames, 2u);
  EXPECT_FALSE(reader.failed());
}

TEST(FrameCodec, GarbageBytesFailTheReader) {
  FrameReader reader;
  const std::string garbage = "GET / HTTP/1.1\r\nHost: nope\r\n\r\n";
  reader.feed(garbage.data(), garbage.size());
  EXPECT_FALSE(reader.next().has_value());
  ASSERT_TRUE(reader.failed());
  EXPECT_NE(reader.error().find("magic"), std::string::npos)
      << reader.error();
}

TEST(FrameCodec, WrongProtocolVersionFails) {
  std::string wire = encode_frame({3, "payload"});
  wire[4] = 99;  // version lives at offset 4, little-endian
  wire[5] = 0;
  FrameReader reader;
  reader.feed(wire.data(), wire.size());
  EXPECT_FALSE(reader.next().has_value());
  ASSERT_TRUE(reader.failed());
  EXPECT_NE(reader.error().find("version"), std::string::npos)
      << reader.error();
}

TEST(FrameCodec, OversizedLengthPrefixFailsWithoutAllocating) {
  std::string wire = encode_frame({3, ""});
  // Patch the u64 length at offset 8 to 1 TiB.
  for (std::size_t i = 0; i < 8; ++i) wire[8 + i] = 0;
  wire[8 + 5] = 1;  // 1 << 40
  FrameReader reader(1 << 20);
  reader.feed(wire.data(), wire.size());
  EXPECT_FALSE(reader.next().has_value());
  ASSERT_TRUE(reader.failed());
  EXPECT_NE(reader.error().find("oversized"), std::string::npos)
      << reader.error();
}

TEST(FrameCodec, PoisonedReaderNeverRecovers) {
  FrameReader reader;
  const std::string garbage(32, 'x');
  reader.feed(garbage.data(), garbage.size());
  EXPECT_FALSE(reader.next().has_value());
  ASSERT_TRUE(reader.failed());
  // A well-formed frame after the poison must NOT come back: stream
  // framing cannot resynchronize past a bad header.
  const std::string wire = encode_frame({1, "late"});
  reader.feed(wire.data(), wire.size());
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.failed());
}

TEST(FrameCodec, TruncatedFrameLeavesPendingBytes) {
  const std::string wire = encode_frame({5, "a long enough payload"});
  FrameReader reader;
  reader.feed(wire.data(), wire.size() / 2);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_FALSE(reader.failed());  // just needs more bytes...
  EXPECT_GT(reader.pending_bytes(), 0u);  // ...which is how EOF callers
                                          // detect a mid-frame close
}

TEST(SocketTransport, UnixRoundTrip) {
  const std::string path = short_sock_path("rt");
  fs::remove(path);
  Socket listener = listen_unix(path);
  Socket client = connect_unix(path);
  set_nonblocking(listener, true);
  const auto server = accept_connection(listener);
  ASSERT_TRUE(server.has_value());

  write_frame(client, {11, "ping"});
  const Frame req = read_frame(*server);
  EXPECT_EQ(req.type, 11);
  EXPECT_EQ(req.payload, "ping");
  write_frame(*server, {12, "pong"});
  const Frame resp = read_frame(client);
  EXPECT_EQ(resp.type, 12);
  EXPECT_EQ(resp.payload, "pong");
  fs::remove(path);
}

TEST(SocketTransport, StaleSocketFileIsReplacedLiveOneRefused) {
  const std::string path = short_sock_path("stale");
  fs::remove(path);
  {
    Socket listener = listen_unix(path);
    // A *live* listener must make a second daemon fail loudly.
    EXPECT_THROW(listen_unix(path), SocketError);
  }
  // Listener gone, socket file still on disk: a stale file from a dead
  // daemon must not block the next start.
  ASSERT_TRUE(fs::exists(path));
  EXPECT_NO_THROW({ Socket again = listen_unix(path); });
  fs::remove(path);
}

TEST(SocketTransport, ConnectWithNoListenerThrows) {
  const std::string path = short_sock_path("none");
  fs::remove(path);
  EXPECT_THROW(connect_unix(path), SocketError);
}

TEST(SocketTransport, TcpKernelAssignedPortRoundTrip) {
  Socket listener = listen_tcp(0);
  const std::uint16_t port = local_port(listener);
  ASSERT_GT(port, 0);
  Socket client = connect_tcp(port);
  set_nonblocking(listener, true);
  const auto server = accept_connection(listener);
  ASSERT_TRUE(server.has_value());
  write_frame(client, {21, "over tcp"});
  const Frame req = read_frame(*server);
  EXPECT_EQ(req.type, 21);
  EXPECT_EQ(req.payload, "over tcp");
}

TEST(SocketTransport, ReadFrameReportsPeerClose) {
  const std::string path = short_sock_path("eof");
  fs::remove(path);
  Socket listener = listen_unix(path);
  Socket client = connect_unix(path);
  set_nonblocking(listener, true);
  auto server = accept_connection(listener);
  ASSERT_TRUE(server.has_value());
  client.close();
  EXPECT_THROW(read_frame(*server), SocketError);
  fs::remove(path);
}

TEST(SocketTransport, AcceptWithNothingPendingIsNullopt) {
  const std::string path = short_sock_path("idle");
  fs::remove(path);
  Socket listener = listen_unix(path);
  set_nonblocking(listener, true);
  EXPECT_FALSE(accept_connection(listener).has_value());
  fs::remove(path);
}

}  // namespace
}  // namespace am

#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace am {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats rs;
  rs.add(7.5);
  EXPECT_EQ(rs.count(), 1u);
  EXPECT_DOUBLE_EQ(rs.mean(), 7.5);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 7.5);
  EXPECT_DOUBLE_EQ(rs.max(), 7.5);
}

TEST(RunningStats, KnownSample) {
  RunningStats rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(x);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  // Sample variance with n-1 = 7: sum sq dev = 32.
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    (i < 37 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Summarize, MatchesRunningStats) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
}

TEST(Percentile, ThrowsOnEmpty) {
  std::vector<double> xs;
  EXPECT_THROW(percentile(xs, 50), std::invalid_argument);
}

TEST(Percentile, RejectsOutOfRangeP) {
  // p > 100 used to compute a rank past the end of the sorted copy and
  // read out of bounds; the boundaries themselves stay valid.
  std::vector<double> xs{10.0, 20.0, 30.0};
  EXPECT_THROW(percentile(xs, -0.001), std::invalid_argument);
  EXPECT_THROW(percentile(xs, 100.001), std::invalid_argument);
  EXPECT_THROW(percentile(xs, std::nan("")), std::invalid_argument);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 30.0);
}

TEST(MeanAbsError, Basic) {
  std::vector<double> a{1.0, 2.0, 3.0};
  std::vector<double> b{2.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(mean_abs_error(a, b), 1.0);
}

TEST(MeanAbsError, ThrowsOnMismatch) {
  std::vector<double> a{1.0};
  std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(mean_abs_error(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace am

#include "common/subprocess.hpp"

#include <gtest/gtest.h>
#include <signal.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>

namespace am {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return (fs::temp_directory_path() / ("am_subprocess_test_" + name))
      .string();
}

TEST(Subprocess, ReportsExitCode) {
  auto p = Subprocess::spawn({"/bin/sh", "-c", "exit 0"});
  const auto st = p.wait();
  EXPECT_TRUE(st.success());
  EXPECT_EQ(st.code, 0);
  EXPECT_FALSE(st.signaled);

  auto q = Subprocess::spawn({"/bin/sh", "-c", "exit 7"});
  const auto st7 = q.wait();
  EXPECT_FALSE(st7.success());
  EXPECT_EQ(st7.code, 7);
  EXPECT_EQ(st7.describe(), "exit 7");
}

TEST(Subprocess, ReportsTerminatingSignal) {
  auto p = Subprocess::spawn({"/bin/sh", "-c", "kill -9 $$"});
  const auto st = p.wait();
  EXPECT_TRUE(st.signaled);
  EXPECT_EQ(st.signal, SIGKILL);
  EXPECT_FALSE(st.success());
  EXPECT_NE(st.describe().find("signal 9"), std::string::npos);
}

TEST(Subprocess, KillStopsARunningChild) {
  auto p = Subprocess::spawn({"/bin/sh", "-c", "sleep 30"});
  EXPECT_TRUE(p.running());
  p.kill();
  const auto st = p.wait();
  EXPECT_TRUE(st.signaled);
  EXPECT_EQ(st.signal, SIGKILL);
}

TEST(Subprocess, PollingReapsWithoutBlocking) {
  auto p = Subprocess::spawn({"/bin/sh", "-c", "exit 3"});
  // The child exits on its own; running() must flip to false and cache
  // the status without a blocking wait().
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (p.running() && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(p.status().has_value());
  EXPECT_EQ(p.status()->code, 3);
}

TEST(Subprocess, RedirectsStdoutAndStderrToFile) {
  const auto log = temp_path("redirect.log");
  fs::remove(log);
  Subprocess::Options opts;
  opts.stdout_path = log;
  {
    auto p = Subprocess::spawn({"/bin/sh", "-c", "echo out; echo err 1>&2"},
                               opts);
    p.wait();
  }
  std::ifstream in(log);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("out"), std::string::npos);
  EXPECT_NE(content.find("err"), std::string::npos);

  // Append mode: a second run must not clobber the first (retry logs of
  // one shard accumulate in one file).
  {
    auto p = Subprocess::spawn({"/bin/sh", "-c", "echo again"}, opts);
    p.wait();
  }
  std::ifstream in2(log);
  std::string content2((std::istreambuf_iterator<char>(in2)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(content2.find("out"), std::string::npos);
  EXPECT_NE(content2.find("again"), std::string::npos);
  fs::remove(log);
}

TEST(Subprocess, SpawnFailureThrows) {
  EXPECT_THROW(Subprocess::spawn({}), std::runtime_error);
  EXPECT_THROW(
      Subprocess::spawn({"/nonexistent/definitely-not-a-binary-xyz"}),
      std::runtime_error);
}

TEST(Subprocess, DestructorKillsRunningChild) {
  pid_t pid = -1;
  {
    auto p = Subprocess::spawn({"/bin/sh", "-c", "sleep 30"});
    pid = p.pid();
    ASSERT_GT(pid, 0);
  }
  // The destructor must have killed and reaped it: signalling the pid now
  // either fails (recycled/na) or at least cannot reach our sleep child.
  // Give the kernel a moment, then assert the process is gone.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  bool gone = false;
  while (!gone && std::chrono::steady_clock::now() < deadline) {
    gone = ::kill(pid, 0) != 0;  // ESRCH once fully reaped
    if (!gone) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(gone);
}

TEST(Subprocess, GroupKillReachesGrandchildren) {
  // A wrapper-script worker spawns the real work as a grandchild; killing
  // only the wrapper would orphan it. With new_process_group the whole
  // group dies.
  const auto pid_file = temp_path("grandchild.pid");
  fs::remove(pid_file);
  Subprocess::Options opts;
  opts.new_process_group = true;
  auto p = Subprocess::spawn(
      {"/bin/sh", "-c", "sleep 30 & echo $! > " + pid_file + "; wait"},
      opts);
  // Wait for the wrapper to report its child's pid.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!fs::exists(pid_file) &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(fs::exists(pid_file));
  pid_t grandchild = -1;
  std::ifstream(pid_file) >> grandchild;
  ASSERT_GT(grandchild, 0);

  p.kill();
  EXPECT_TRUE(p.wait().signaled);
  bool gone = false;
  while (!gone && std::chrono::steady_clock::now() < deadline) {
    gone = ::kill(grandchild, 0) != 0;
    if (!gone) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(gone) << "grandchild " << grandchild
                    << " survived the group kill";
  fs::remove(pid_file);
}

TEST(Subprocess, MoveTransfersOwnership) {
  auto p = Subprocess::spawn({"/bin/sh", "-c", "exit 0"});
  const pid_t pid = p.pid();
  Subprocess q = std::move(p);
  EXPECT_EQ(p.pid(), -1);
  EXPECT_EQ(q.pid(), pid);
  EXPECT_TRUE(q.wait().success());
}

}  // namespace
}  // namespace am

#include "common/table.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

namespace am {
namespace {

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2.50"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| name   | value |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 2.50  |"), std::string::npos);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.cell(0, 2), "");
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"k"});
  t.add_row({"has,comma"});
  t.add_row({"has\"quote"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_NE(os.str().find("\"has,comma\""), std::string::npos);
  EXPECT_NE(os.str().find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Table, SaveCsvRoundTrip) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  const std::string path = testing::TempDir() + "/am_table_test.csv";
  ASSERT_TRUE(t.save_csv(path));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
}

}  // namespace
}  // namespace am

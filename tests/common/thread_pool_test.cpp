#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace am {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversIndexSpace) {
  ThreadPool pool(8);
  std::vector<int> hits(1000, 0);
  parallel_for(pool, hits.size(), [&](std::size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
}

TEST(ThreadPool, ChunkedParallelForCoversIndexSpaceOncePerIndex) {
  ThreadPool pool(4);
  for (const std::size_t grain : {std::size_t{1}, std::size_t{7},
                                  std::size_t{64}, std::size_t{5000}}) {
    std::vector<std::atomic<int>> hits(1000);
    parallel_for(pool, hits.size(), grain,
                 [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i)
      ASSERT_EQ(hits[i].load(), 1) << "grain=" << grain << " i=" << i;
  }
}

TEST(ThreadPool, ChunkedParallelForHandlesDegenerateArgs) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  parallel_for(pool, 0, 16, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 0);
  parallel_for(pool, 10, 0, [&](std::size_t) { ++count; });  // grain 0 -> 1
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  parallel_for(pool, 10, [&](std::size_t) { ++count; });
  parallel_for(pool, 10, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GT(pool.size(), 0u);
}

// Many producer threads racing submit() against the workers and against
// pool destruction. Primarily a TSan workload (run under
// `cmake --preset tsan`): it exercises the queue/in_flight/stop handoff
// that the AM_GUARDED_BY annotations promise is mutex-protected.
TEST(ThreadPool, ConcurrentSubmittersStress) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    std::vector<std::thread> producers;
    producers.reserve(4);
    for (int p = 0; p < 4; ++p) {
      producers.emplace_back([&] {
        for (int i = 0; i < 250; ++i) pool.submit([&] { ++count; });
      });
    }
    for (auto& t : producers) t.join();
    pool.wait_idle();
    EXPECT_EQ(count.load(), 1000);
    // ~pool joins workers with an empty queue here.
  }
  EXPECT_EQ(count.load(), 1000);
}

}  // namespace
}  // namespace am

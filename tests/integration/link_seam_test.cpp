// Build-system seam test: links every library layer into one binary and
// instantiates at least one object per layer. Its job is to catch
// missing-symbol, ODR, and dependency-edge breakage in the CMake
// superstructure early — it fails at link time (or here, trivially at
// runtime) long before any behavioural test would.
#include <gtest/gtest.h>

#include "apps/synthetic_benchmark.hpp"
#include "common/rng.hpp"
#include "interfere/csthr_agent.hpp"
#include "measure/sim_backend.hpp"
#include "minimpi/communicator.hpp"
#include "minimpi/mapping.hpp"
#include "model/distributions.hpp"
#include "model/ehr_model.hpp"
#include "sim/engine.hpp"
#include "sim/memory_system.hpp"

namespace am {
namespace {

TEST(LinkSeam, EveryLayerLinksAndConstructs) {
  // common
  Rng rng(1);
  EXPECT_NE(rng(), rng());

  // sim
  sim::MachineConfig machine = sim::MachineConfig::xeon20mb_scaled(64);
  sim::Engine engine(machine);
  sim::MemorySystem memory(machine);

  // model
  const auto dist = model::AccessDistribution::uniform(1024, "uni");
  const model::EhrModel ehr(dist, 4);
  EXPECT_GT(ehr.concentration(), 0.0);

  // interfere
  interfere::CSThrAgent csthr(memory, interfere::CSThrConfig{});
  EXPECT_EQ(csthr.operations(), 0u);

  // minimpi
  minimpi::Mapping mapping(machine, 2, 1);
  minimpi::Communicator comm(engine, mapping);
  EXPECT_EQ(comm.total_bytes_sent(), 0u);

  // apps
  apps::SyntheticConfig synth_cfg{.dist = dist, .measured_accesses = 1};
  apps::SyntheticBenchmarkAgent synth(memory, synth_cfg);
  EXPECT_FALSE(synth.finished());

  // measure
  measure::SimBackend backend(machine);
  EXPECT_EQ(backend.machine().nodes, machine.nodes);
}

}  // namespace
}  // namespace am

// End-to-end integration tests asserting the *qualitative shapes* of the
// paper's key results on a scaled simulator. These are the invariants the
// bench drivers rely on; if one breaks, a figure will no longer reproduce.
#include <gtest/gtest.h>

#include <memory>

#include "apps/synthetic_benchmark.hpp"
#include "interfere/bwthr_agent.hpp"
#include "interfere/csthr_agent.hpp"
#include "measure/app_workloads.hpp"
#include "measure/sim_backend.hpp"
#include "model/distributions.hpp"
#include "model/ehr_model.hpp"
#include "sim/engine.hpp"

namespace am {
namespace {

constexpr std::uint32_t kScale = 32;

sim::MachineConfig machine() { return sim::MachineConfig::xeon20mb_scaled(kScale); }

interfere::CSThrConfig cs_cfg() {
  interfere::CSThrConfig c;
  c.buffer_bytes = 4ull * 1024 * 1024 / kScale;
  return c;
}

interfere::BWThrConfig bw_cfg() {
  interfere::BWThrConfig c;
  c.buffer_bytes = 520ull * 1024 / kScale;
  return c;
}

class TimerAgent final : public sim::Agent {
 public:
  explicit TimerAgent(sim::Cycles d) : sim::Agent("timer"), left_(d) {}
  void step(sim::AgentContext& ctx) override {
    const auto chunk = std::min<sim::Cycles>(left_, 10'000);
    ctx.compute(chunk);
    left_ -= chunk;
  }
  bool finished() const override { return left_ == 0; }

 private:
  sim::Cycles left_;
};

/// Bandwidth drawn by one BWThr co-running with k CSThrs (Fig. 7 cell).
double bwthr_bandwidth_with_csthrs(std::uint32_t k) {
  sim::Engine eng(machine());
  eng.add_agent(std::make_unique<TimerAgent>(15'000'000), 0);
  eng.add_agent(std::make_unique<interfere::BWThrAgent>(eng.memory(), bw_cfg()),
                1, false);
  for (std::uint32_t i = 0; i < k; ++i)
    eng.add_agent(std::make_unique<interfere::CSThrAgent>(eng.memory(), cs_cfg()),
                  2 + i, false);
  const auto end = eng.run();
  return static_cast<double>(eng.agent_counters(1).bytes_from_mem) /
         machine().cycles_to_seconds(end);
}

/// Seconds per CSThr op co-running with k BWThrs (Fig. 8 cell).
double csthr_op_time_with_bwthrs(std::uint32_t k) {
  sim::Engine eng(machine());
  eng.add_agent(std::make_unique<TimerAgent>(15'000'000), 0);
  auto cs = std::make_unique<interfere::CSThrAgent>(eng.memory(), cs_cfg());
  auto* cs_raw = cs.get();
  eng.add_agent(std::move(cs), 1, false);
  for (std::uint32_t i = 0; i < k; ++i)
    eng.add_agent(std::make_unique<interfere::BWThrAgent>(eng.memory(), bw_cfg()),
                  2 + i, false);
  const auto end = eng.run();
  return machine().cycles_to_seconds(end) /
         static_cast<double>(cs_raw->operations());
}

TEST(PaperShapes, Fig7BwthrImmuneToCsthrs) {
  const double alone = bwthr_bandwidth_with_csthrs(0);
  const double crowded = bwthr_bandwidth_with_csthrs(3);
  EXPECT_NEAR(crowded, alone, alone * 0.10);
}

TEST(PaperShapes, Fig8CsthrToleratesTwoBwthrsNotFour) {
  const double alone = csthr_op_time_with_bwthrs(0);
  const double two = csthr_op_time_with_bwthrs(2);
  const double four = csthr_op_time_with_bwthrs(4);
  EXPECT_LT(two, alone * 1.30);   // paper: "small effect" at 2
  EXPECT_GT(four, alone * 2.0);   // paper: significant impact at 3+
}

TEST(PaperShapes, Fig8LoneCsthrUsesLittleBandwidth) {
  sim::Engine eng(machine());
  eng.add_agent(std::make_unique<TimerAgent>(15'000'000), 0);
  eng.add_agent(std::make_unique<interfere::CSThrAgent>(eng.memory(), cs_cfg()),
                1, false);
  const auto end = eng.run();
  const double bw = static_cast<double>(
                        eng.agent_counters(1).bytes_from_mem) /
                    machine().cycles_to_seconds(end);
  // Paper III-D: "a single CSThr ... utilizes very little memory
  // bandwidth" — well under 10% of one BWThr's draw.
  EXPECT_LT(bw, bwthr_bandwidth_with_csthrs(0) * 0.25);
}

/// Fig. 6 shape: effective capacity shrinks monotonically with CSThrs and
/// roughly tracks what the CSThr buffers should deny.
TEST(PaperShapes, Fig6EffectiveCapacityCollapse) {
  const auto m = machine();
  const std::uint64_t elements = m.l3.size_bytes * 2 / 4;
  const auto dist = model::AccessDistribution::uniform(elements, "Uni");
  const model::EhrModel ehr(dist, 4);
  std::vector<double> capacity;
  for (std::uint32_t k = 0; k <= 4; ++k) {
    sim::Engine eng(m);
    apps::SyntheticConfig cfg{dist, 4, 1, elements * 2, 150'000};
    const auto idx = eng.add_agent(
        std::make_unique<apps::SyntheticBenchmarkAgent>(eng.memory(), cfg), 0);
    for (std::uint32_t i = 0; i < k; ++i)
      eng.add_agent(std::make_unique<interfere::CSThrAgent>(eng.memory(),
                                                            cs_cfg()),
                    1 + i, false);
    eng.run();
    capacity.push_back(
        ehr.invert_capacity(eng.agent_counters(idx).l3_miss_rate()));
  }
  for (std::size_t k = 1; k < capacity.size(); ++k)
    EXPECT_LT(capacity[k], capacity[k - 1]) << "k=" << k;
  // Four 128 KB threads should deny a large share of the 640 KB L3.
  EXPECT_LT(capacity[4], capacity[0] * 0.55);
}

/// §IV shape: a capacity-bound app is hurt by CSThr but not by one BWThr;
/// this is the orthogonality the whole methodology depends on.
TEST(PaperShapes, CapacityBoundAppRespondsToRightKnife) {
  measure::SimBackend backend(machine());
  // ~35% of the L3: the occupancy regime the paper actually measured
  // (MCB uses 4-7 MB of the 20 MB L3). Much larger working sets sit at
  // the LRU thrash boundary where even one streaming thread hurts.
  const std::uint64_t elements = machine().l3.size_bytes * 35 / 100 / 4;
  const auto factory =
      measure::make_synthetic_workload(apps::SyntheticConfig{
          model::AccessDistribution::uniform(elements, "Uni"), 4, 1,
          elements * 2, 150'000});
  const auto base = backend.run(factory, measure::InterferenceSpec::none());
  const auto cs =
      backend.run(factory, measure::InterferenceSpec::storage(4, cs_cfg()));
  const auto bw =
      backend.run(factory, measure::InterferenceSpec::bandwidth(1, bw_cfg()));
  EXPECT_GT(cs.seconds, base.seconds * 1.2);  // capacity knife cuts
  // One BWThr costs at most queueing-level noise, far below the capacity
  // effect (the paper reports no significant capacity impact from 1-2).
  EXPECT_LT(bw.seconds, base.seconds * 1.25);
  EXPECT_GT(cs.seconds, bw.seconds * 1.15);
}

/// Fig. 9/10 shape: spreading MCB ranks out raises per-process memory
/// bandwidth (communication leaves the shared L3).
TEST(PaperShapes, McbSpreadOutUsesMoreBandwidthPerProcess) {
  auto m = sim::MachineConfig::xeon20mb_scaled(kScale, /*nodes=*/2);
  measure::SimBackend backend(m);
  auto cfg = apps::McbConfig::paper(20'000, kScale);
  cfg.steps = 2;
  const auto packed = backend.run(
      measure::make_mcb_workload(4, 4, cfg), measure::InterferenceSpec::none());
  const auto spread = backend.run(
      measure::make_mcb_workload(4, 1, cfg), measure::InterferenceSpec::none());
  const double packed_bw_pp = packed.app_mem_bandwidth / 4.0;
  const double spread_bw_pp = spread.app_mem_bandwidth / 4.0;
  EXPECT_GT(spread_bw_pp, packed_bw_pp * 1.1);
}

/// Fig. 11 shape: a Lulesh rank's working set overflows a 4-way-shared L3
/// (4 ranks/socket) but not a private one (1 rank/socket).
TEST(PaperShapes, LuleshPackedMappingIsCapacityStarved) {
  auto m = sim::MachineConfig::xeon20mb_scaled(kScale, /*nodes=*/4);
  measure::SimBackend backend(m);
  auto cfg = apps::LuleshConfig::paper(22, kScale);
  cfg.steps = 2;
  auto run = [&](std::uint32_t p, std::uint32_t k) {
    return backend
        .run(measure::make_lulesh_workload(8, p, cfg),
             k == 0 ? measure::InterferenceSpec::none()
                    : measure::InterferenceSpec::storage(k, cs_cfg()))
        .seconds;
  };
  const double packed_degr = run(4, 3) / run(4, 0);
  const double spread_degr = run(1, 3) / run(1, 0);
  EXPECT_GT(packed_degr, spread_degr);
}

}  // namespace
}  // namespace am

// Cross-module robustness and consistency properties that don't belong to
// any single module's suite.
#include <gtest/gtest.h>

#include <memory>

#include "apps/synthetic_benchmark.hpp"
#include "interfere/bwthr_agent.hpp"
#include "interfere/csthr_agent.hpp"
#include "model/ehr_model.hpp"
#include "model/stack_distance.hpp"
#include "sim/engine.hpp"

namespace am {
namespace {

/// The scaled machine family must stay structurally legal at every factor.
class ScaledMachineProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ScaledMachineProperty, GeometryStaysConsistent) {
  const auto m = sim::MachineConfig::xeon20mb_scaled(GetParam());
  m.validate();
  EXPECT_GE(m.l3.size_bytes, m.l2.size_bytes);
  EXPECT_GE(m.l2.size_bytes, m.l1.size_bytes);
  EXPECT_EQ(m.l1.line_bytes, m.l3.line_bytes);
  EXPECT_EQ(m.l3.ways, 20u);  // associativity preserved at every scale
  EXPECT_GT(m.mem_bytes_per_cycle(), 0.0);
}

TEST_P(ScaledMachineProperty, EngineRunsOnEveryScale) {
  sim::Engine eng(sim::MachineConfig::xeon20mb_scaled(GetParam()));
  struct Touch final : sim::Agent {
    explicit Touch(sim::MemorySystem& ms)
        : sim::Agent("t"), base(ms.alloc(1 << 12)) {}
    void step(sim::AgentContext& ctx) override {
      ctx.load(base + (n++ % 64) * 64);
      done = n >= 200;
    }
    bool finished() const override { return done; }
    sim::Addr base;
    std::uint64_t n = 0;
    bool done = false;
  };
  eng.add_agent(std::make_unique<Touch>(eng.memory()), 0);
  EXPECT_GT(eng.run(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Factors, ScaledMachineProperty,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64, 128));

/// BWThr's round slicing: the iteration counter advances once per full pass
/// over all buffers regardless of buffers_per_step, and every load belongs
/// to a round.
TEST(BwthrSlicing, IterationsCountFullRoundsOnly) {
  auto m = sim::MachineConfig::xeon20mb_scaled(32);
  sim::Engine eng(m);
  struct Timer final : sim::Agent {
    explicit Timer(sim::Cycles d) : sim::Agent("t"), left(d) {}
    void step(sim::AgentContext& ctx) override {
      const auto chunk = std::min<sim::Cycles>(left, 10'000);
      ctx.compute(chunk);
      left -= chunk;
    }
    bool finished() const override { return left == 0; }
    sim::Cycles left;
  };
  eng.add_agent(std::make_unique<Timer>(2'000'000), 0);
  interfere::BWThrConfig cfg;
  cfg.buffer_bytes = 520ull * 1024 / 32;
  cfg.num_buffers = 44;
  cfg.buffers_per_step = 8;  // 44 buffers -> 6 steps per round
  auto bw = std::make_unique<interfere::BWThrAgent>(eng.memory(), cfg);
  auto* raw = bw.get();
  const auto idx = eng.add_agent(std::move(bw), 1, /*primary=*/false);
  eng.run();
  const auto loads = eng.agent_counters(idx).loads;
  // Completed rounds account for 44 loads each; at most one partial round.
  EXPECT_GE(loads, raw->iterations() * 44);
  EXPECT_LT(loads, (raw->iterations() + 1) * 44);
}

/// Consistency between the two independent capacity-inference paths:
/// for the uniform pattern, the exact stack-distance MRC and the paper's
/// Eq. 4 inversion must agree on the capacity that yields a target miss
/// rate (both reduce to the C/N law).
TEST(ModelConsistency, MrcAndEq4AgreeOnUniform) {
  constexpr std::uint64_t kLines = 1024;
  Rng rng(77);
  std::vector<std::uint64_t> trace;
  for (int i = 0; i < 300'000; ++i) trace.push_back(rng.bounded(kLines));
  const model::MissRateCurve mrc(model::StackDistanceAnalyzer::analyze(trace));

  const auto dist =
      model::AccessDistribution::uniform(kLines * 16, "Uni");  // 16 elem/line
  const model::EhrModel ehr(dist, 4);
  for (const double target : {0.75, 0.5, 0.25}) {
    const auto mrc_capacity_lines = mrc.capacity_for_miss_rate(target);
    ASSERT_NE(mrc_capacity_lines, UINT64_MAX);
    const double eq4_capacity_bytes = ehr.invert_capacity(target);
    const double eq4_capacity_lines = eq4_capacity_bytes / 64.0;
    EXPECT_NEAR(static_cast<double>(mrc_capacity_lines), eq4_capacity_lines,
                0.05 * kLines)
        << "target " << target;
  }
}

/// Engine determinism must survive the presence of infinite interference
/// agents and mid-run stat resets (the synthetic benchmark's warm-up).
TEST(Determinism, FullStackRunIsBitStable) {
  auto run_once = [] {
    auto m = sim::MachineConfig::xeon20mb_scaled(32);
    sim::Engine eng(m, /*seed=*/99);
    apps::SyntheticConfig cfg{
        model::AccessDistribution::exponential(100'000, 6.0 / 100'000, "E"),
        4, 1, 50'000, 50'000};
    const auto idx = eng.add_agent(
        std::make_unique<apps::SyntheticBenchmarkAgent>(eng.memory(), cfg), 0);
    interfere::CSThrConfig cs;
    cs.buffer_bytes = 128 * 1024;
    eng.add_agent(std::make_unique<interfere::CSThrAgent>(eng.memory(), cs),
                  1, false);
    eng.run();
    return std::pair{eng.agent_clock(idx),
                     eng.agent_counters(idx).mem_accesses};
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace am

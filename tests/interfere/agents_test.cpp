#include <gtest/gtest.h>

#include "interfere/bwthr_agent.hpp"
#include "interfere/csthr_agent.hpp"
#include "sim/engine.hpp"

namespace am::interfere {
namespace {

using sim::Cycles;
using sim::MachineConfig;

MachineConfig machine() { return MachineConfig::xeon20mb_scaled(16); }

/// Finishes after a fixed number of engine cycles of pure compute.
class TimerAgent final : public sim::Agent {
 public:
  explicit TimerAgent(Cycles duration) : sim::Agent("timer"), left_(duration) {}
  void step(sim::AgentContext& ctx) override {
    const Cycles chunk = std::min<Cycles>(left_, 10000);
    ctx.compute(chunk);
    left_ -= chunk;
  }
  bool finished() const override { return left_ == 0; }

 private:
  Cycles left_;
};

BWThrConfig scaled_bw() {
  BWThrConfig c;
  c.buffer_bytes = 520 * 1024 / 16;
  return c;
}

CSThrConfig scaled_cs() {
  CSThrConfig c;
  c.buffer_bytes = 4 * 1024 * 1024 / 16;  // 256 KB vs 1.25 MB L3
  return c;
}

TEST(CSThrAgent, OccupiesRoughlyItsBufferInL3) {
  sim::Engine eng(machine());
  eng.add_agent(std::make_unique<TimerAgent>(30'000'000), 0);
  auto cs = std::make_unique<CSThrAgent>(eng.memory(), scaled_cs());
  eng.add_agent(std::move(cs), 1, /*primary=*/false);
  eng.run();
  const auto occ = eng.memory().l3_occupancy_bytes(1);
  const auto buf = scaled_cs().buffer_bytes;
  // After tens of millions of cycles the CSThr has touched its whole buffer
  // and, with no competition, nearly all of it sits in the L3.
  EXPECT_GT(occ, buf * 8 / 10);
  EXPECT_LE(occ, buf + buf / 8);
}

TEST(CSThrAgent, MostlyHitsInL3NotMemory) {
  sim::Engine eng(machine());
  eng.add_agent(std::make_unique<TimerAgent>(30'000'000), 0);
  eng.add_agent(std::make_unique<CSThrAgent>(eng.memory(), scaled_cs()), 1,
                false);
  eng.run();
  const auto& ctr = eng.agent_counters(1);
  // Steady state: private caches are too small, shared L3 holds the buffer.
  EXPECT_GT(ctr.l3_hits, ctr.mem_accesses * 5);
}

TEST(CSThrAgent, UsesLittleMemoryBandwidth) {
  sim::Engine eng(machine());
  eng.add_agent(std::make_unique<TimerAgent>(30'000'000), 0);
  eng.add_agent(std::make_unique<CSThrAgent>(eng.memory(), scaled_cs()), 1,
                false);
  const Cycles end = eng.run();
  const auto& ctr = eng.agent_counters(1);
  const double seconds = eng.seconds(end);
  const double bw = static_cast<double>(ctr.bytes_from_mem) / seconds;
  // Paper III-D: "a single CSThr ... utilizes very little memory bandwidth".
  EXPECT_LT(bw, 1.0e9);
}

TEST(BWThrAgent, SaturatesMissesAndUsesBandwidth) {
  sim::Engine eng(machine());
  eng.add_agent(std::make_unique<TimerAgent>(30'000'000), 0);
  eng.add_agent(std::make_unique<BWThrAgent>(eng.memory(), scaled_bw()), 1,
                false);
  const Cycles end = eng.run();
  const auto& ctr = eng.agent_counters(1);
  const double seconds = eng.seconds(end);
  const double bw = static_cast<double>(ctr.bytes_from_mem) / seconds;
  // A single BWThr should draw GB/s-scale bandwidth (paper: 2.8 GB/s).
  EXPECT_GT(bw, 1.0e9);
  // Every load targets a fresh line (the paired stores of the ++ hit the
  // just-filled L1): essentially all lines must come from DRAM, either as
  // demand misses or as prefetch fills.
  EXPECT_GT(static_cast<double>(ctr.mem_accesses + ctr.prefetch_issued),
            0.9 * static_cast<double>(ctr.loads));
}

TEST(BWThrAgent, IterationCounterAdvances) {
  sim::Engine eng(machine());
  eng.add_agent(std::make_unique<TimerAgent>(1'000'000), 0);
  auto bw = std::make_unique<BWThrAgent>(eng.memory(), scaled_bw());
  auto* raw = bw.get();
  eng.add_agent(std::move(bw), 1, false);
  eng.run();
  EXPECT_GT(raw->iterations(), 100u);
}

TEST(BWThrAgent, FootprintExceedsL3) {
  // The paper's 44 x 520 KB footprint exceeds the 20 MB L3; the scaled
  // configuration must preserve that property.
  const auto cfg = scaled_bw();
  const auto m = machine();
  EXPECT_GT(cfg.buffer_bytes * cfg.num_buffers, m.l3.size_bytes);
}

TEST(InterferenceAgents, RejectDegenerateConfigs) {
  sim::Engine eng(machine());
  BWThrConfig bad_bw;
  bad_bw.buffer_bytes = 1;
  EXPECT_THROW(BWThrAgent(eng.memory(), bad_bw), std::invalid_argument);
  CSThrConfig bad_cs;
  bad_cs.batch_size = 0;
  EXPECT_THROW(CSThrAgent(eng.memory(), bad_cs), std::invalid_argument);
}

TEST(CSThrAgent, TwoThreadsOccupyTwiceAsMuch) {
  sim::Engine eng(machine());
  eng.add_agent(std::make_unique<TimerAgent>(30'000'000), 0);
  eng.add_agent(std::make_unique<CSThrAgent>(eng.memory(), scaled_cs()), 1,
                false);
  eng.add_agent(std::make_unique<CSThrAgent>(eng.memory(), scaled_cs()), 2,
                false);
  eng.run();
  const auto occ1 = eng.memory().l3_occupancy_bytes(1);
  const auto occ2 = eng.memory().l3_occupancy_bytes(2);
  const auto buf = scaled_cs().buffer_bytes;
  EXPECT_GT(occ1 + occ2, buf * 2 * 7 / 10);
}

}  // namespace
}  // namespace am::interfere

#include "interfere/host_interference.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "interfere/host_identity.hpp"

namespace am::interfere {
namespace {

// Host threads use small buffers here: these are lifecycle tests, not
// bandwidth measurements (we are likely running in a shared container).

TEST(HostIdentity, IsIdentity) {
  EXPECT_EQ(host_identity(0), 0);
  EXPECT_EQ(host_identity(-5), -5);
  EXPECT_EQ(host_identity(123456789), 123456789);
}

TEST(HostBWThr, StartsIteratesStops) {
  HostBWThr thr(/*buffer_bytes=*/64 * 1024, /*num_buffers=*/4);
  thr.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  thr.stop();
  EXPECT_GT(thr.iterations(), 0u);
  EXPECT_FALSE(thr.running());
}

TEST(HostBWThr, FootprintMatchesGeometry) {
  HostBWThr thr(128 * 1024, 3);
  EXPECT_EQ(thr.footprint_bytes(), 3u * 128 * 1024);
}

TEST(HostCSThr, StartsIteratesStops) {
  HostCSThr thr(/*buffer_bytes=*/256 * 1024);
  thr.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  thr.stop();
  EXPECT_GT(thr.iterations(), 1000u);
}

TEST(HostCSThr, StopIsIdempotent) {
  HostCSThr thr(64 * 1024);
  thr.start();
  thr.stop();
  thr.stop();
  SUCCEED();
}

TEST(HostInterference, DoubleStartThrows) {
  HostCSThr thr(64 * 1024);
  thr.start();
  EXPECT_THROW(thr.start(), std::logic_error);
  thr.stop();
}

TEST(HostInterference, RestartAfterStop) {
  HostCSThr thr(64 * 1024);
  thr.start();
  thr.stop();
  const auto first = thr.iterations();
  thr.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  thr.stop();
  EXPECT_GE(thr.iterations(), first);
}

TEST(HostInterference, PinnedStartWorksOrDegradesGracefully) {
  // Pinning to CPU 0 may be refused in containers; either way the thread
  // must run and stop cleanly.
  HostCSThr thr(64 * 1024);
  thr.start(/*cpu=*/0);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  thr.stop();
  EXPECT_GT(thr.iterations(), 0u);
}

TEST(HostInterference, RejectsDegenerateBuffers) {
  EXPECT_THROW(HostBWThr(1, 1), std::invalid_argument);
  EXPECT_THROW(HostCSThr(1), std::invalid_argument);
}

TEST(HostInterferenceFleet, StartsAndStopsMany) {
  {
    HostInterferenceFleet<HostCSThr> fleet(3, /*cpus=*/{},
                                           /*buffer_bytes=*/64 * 1024);
    EXPECT_EQ(fleet.size(), 3u);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    for (std::size_t i = 0; i < fleet.size(); ++i)
      EXPECT_TRUE(fleet.at(i).running());
  }  // destructor stops all
  SUCCEED();
}

}  // namespace
}  // namespace am::interfere

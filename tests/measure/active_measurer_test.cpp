#include "measure/active_measurer.hpp"

#include <gtest/gtest.h>

#include "measure/app_workloads.hpp"
#include "model/distributions.hpp"

namespace am::measure {
namespace {

using model::AccessDistribution;
using sim::MachineConfig;

constexpr std::uint32_t kScale = 32;

MachineConfig machine() { return MachineConfig::xeon20mb_scaled(kScale); }

interfere::CSThrConfig cs_cfg() {
  interfere::CSThrConfig c;
  c.buffer_bytes = 4ull * 1024 * 1024 / kScale;
  return c;
}

interfere::BWThrConfig bw_cfg() {
  interfere::BWThrConfig c;
  c.buffer_bytes = 520ull * 1024 / kScale;
  return c;
}

/// Synthetic calibration tables (shape of the paper's §III results) so the
/// unit tests don't re-run the expensive calibration.
CapacityCalibration fake_capacity() {
  CapacityCalibration c;
  const double mb = machine().l3.size_bytes / 20.0;  // "scaled MB"
  c.available_bytes = {20 * mb, 15 * mb, 12 * mb, 7 * mb, 5 * mb, 2.5 * mb};
  c.stddev_bytes.assign(6, 0.0);
  return c;
}

BandwidthCalibration fake_bandwidth() {
  BandwidthCalibration b;
  b.peak_bytes_per_sec = 17e9;
  b.used_bytes_per_sec = {0.0, 2.8e9, 5.6e9};
  return b;
}

TEST(SweepResult, CurveAndSlowdown) {
  SweepResult s;
  s.resource = Resource::kCacheStorage;
  s.points = {{0, 1.0, 20e6}, {1, 1.02, 15e6}, {2, 1.5, 12e6}};
  EXPECT_DOUBLE_EQ(s.slowdown(2), 1.5);
  const auto curve = s.curve();
  EXPECT_NEAR(curve.predict_slowdown(12e6), 1.5 / 1.0, 1e-9);
}

TEST(Bounds, CapacityBoundsFollowPaperRecipe) {
  SweepResult s;
  s.resource = Resource::kCacheStorage;
  // Degradation starts at the 3rd level (7 "MB" available).
  s.points = {{0, 10.0, 20e6}, {1, 10.1, 15e6}, {2, 10.3, 12e6},
              {3, 11.5, 7e6},  {4, 13.0, 5e6},  {5, 14.0, 2.5e6}};
  const auto b = ActiveMeasurer::bounds(s, /*processes_per_socket=*/2, 0.05);
  EXPECT_TRUE(b.degraded_at_any_level);
  // Last non-degraded: 12e6 -> upper 6e6/process; first degraded: 7e6 ->
  // lower 3.5e6/process.
  EXPECT_DOUBLE_EQ(b.upper, 6e6);
  EXPECT_DOUBLE_EQ(b.lower, 3.5e6);
}

TEST(Bounds, NeverDegradedGivesUpperOnly) {
  SweepResult s;
  s.points = {{0, 10.0, 20e6}, {1, 10.1, 15e6}, {2, 10.2, 12e6}};
  const auto b = ActiveMeasurer::bounds(s, 1, 0.05);
  EXPECT_TRUE(b.fits_at_all_levels);
  EXPECT_DOUBLE_EQ(b.upper, 12e6);
  EXPECT_DOUBLE_EQ(b.lower, 0.0);
}

TEST(Bounds, RejectsDegenerateInput) {
  SweepResult empty;
  EXPECT_THROW(ActiveMeasurer::bounds(empty, 1), std::invalid_argument);
  SweepResult one;
  one.points = {{0, 1.0, 1.0}};
  EXPECT_THROW(ActiveMeasurer::bounds(one, 0), std::invalid_argument);
}

TEST(ActiveMeasurer, CapacitySweepDetectsCapacityBoundWorkload) {
  SimBackend backend(machine());
  ActiveMeasurer measurer(backend, fake_capacity(), fake_bandwidth());
  // Buffer ~1.2x L3: capacity-hungry, bandwidth-light.
  const auto elements =
      static_cast<std::uint64_t>(1.2 * machine().l3.size_bytes / 4);
  const auto factory = make_synthetic_workload(apps::SyntheticConfig{
      AccessDistribution::uniform(elements, "Uni"), 4, 1, elements * 2,
      150'000});
  const auto sweep =
      measurer.sweep(factory, Resource::kCacheStorage, 5, cs_cfg(), bw_cfg());
  ASSERT_EQ(sweep.points.size(), 6u);
  // More interference, never faster (within tolerance) and eventually slow.
  EXPECT_GT(sweep.slowdown(5), 1.10);
  const auto b = ActiveMeasurer::bounds(sweep, 1, 0.05);
  EXPECT_TRUE(b.degraded_at_any_level);
  EXPECT_GT(b.upper, 0.0);
}

TEST(ActiveMeasurer, SweepValidatesCalibrationLength) {
  SimBackend backend(machine());
  CapacityCalibration short_calib;
  short_calib.available_bytes = {1.0, 0.5};
  ActiveMeasurer measurer(backend, short_calib, fake_bandwidth());
  const auto factory = make_synthetic_workload(apps::SyntheticConfig{
      AccessDistribution::uniform(100'000, "Uni"), 4, 1, 0, 10'000});
  EXPECT_THROW(measurer.sweep(factory, Resource::kCacheStorage, 5),
               std::invalid_argument);
  EXPECT_THROW(measurer.sweep(factory, Resource::kBandwidth, 5),
               std::invalid_argument);
}

}  // namespace
}  // namespace am::measure

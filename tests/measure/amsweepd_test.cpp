// SweepDaemon serving-path coverage with the daemon running in-thread:
// protocol fault injection against a live daemon (garbage, truncation,
// wrong version, oversized prefixes — each failing exactly one
// connection while other tenants' queued plans survive), queue-file
// persistence and resume across daemon generations, waiter release by
// cancel and by drain, the fair-share grant bound, and the worker half
// (run_daemon_worker) executing real offered leases bit-identically to
// a direct serial run. Worker *processes* under supervision are
// exercised with /bin/sh stand-ins (usage exits, crash loops,
// unspawnable commands); the full two-binary serving path — concurrent
// tenants, injected SIGKILL, SIGTERM drain, restart — is the
// smoke.amsweepd ctest entry (examples/smoke_amsweepd.cmake).
#include "measure/daemon.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/work_lease.hpp"

namespace am::measure {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream text;
  text << in.rdbuf();
  return text.str();
}

/// A plan tiny enough that real engine runs finish in milliseconds:
/// one 64-element uniform workload, a baseline point and one
/// cache-storage interference point on a 1024x-scaled machine.
PlanSpec tiny_spec() {
  PlanSpec spec;
  spec.machine_scale = 1024;
  spec.seed = 7;
  spec.max_cycles = 10'000'000;
  spec.cs.buffer_bytes = 4096;
  spec.cs.batch_size = 4;
  spec.bw.buffer_bytes = 4096;
  spec.bw.num_buffers = 4;
  WorkloadWire w;
  w.kind = WorkloadWire::Kind::kSynthetic;
  w.name = "uni-64";
  w.dist = model::DistKind::kUniform;
  w.n = 64;
  w.measured_accesses = 200;
  spec.workloads.push_back(std::move(w));
  spec.points.push_back({0, Resource::kCacheStorage, 0});
  spec.points.push_back({0, Resource::kCacheStorage, 1});
  return spec;
}

/// Runs a SweepDaemon on a background thread for the lifetime of the
/// harness; drain() is the only way it stops.
struct DaemonHarness {
  SweepDaemon daemon;
  std::ostringstream log;
  DaemonReport report;
  std::thread thread;

  explicit DaemonHarness(SweepDaemonOptions opts) : daemon(std::move(opts)) {
    thread = std::thread([this] { report = daemon.run(log); });
  }

  DaemonReport drain() {
    daemon.request_drain();
    thread.join();
    return report;
  }

  ~DaemonHarness() {
    if (thread.joinable()) {
      daemon.request_drain();
      thread.join();
    }
  }
};

class SweepDaemonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("am_sweepd_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir() const { return dir_.string(); }
  // Unix socket paths are length-capped (~100 bytes); keep it short.
  std::string sock() const {
    return (fs::temp_directory_path() /
            ("ams_" + std::to_string(::getpid()) + ".sock"))
        .string();
  }

  SweepDaemonOptions accept_only() {
    SweepDaemonOptions opts;
    opts.socket_path = sock();
    opts.results_dir = dir();
    opts.workers = 0;
    opts.poll_seconds = 0.005;
    return opts;
  }

  SweepDaemonOptions with_stub_worker(std::vector<std::string> command) {
    SweepDaemonOptions opts = accept_only();
    opts.workers = 1;
    opts.retries = 0;
    opts.worker_command = std::move(command);
    return opts;
  }

 private:
  fs::path dir_;
};

// --- codecs and pure components -------------------------------------------

TEST(DaemonReply_, CodecRoundTrips) {
  DaemonReply r;
  r.ok = true;
  r.retry = true;
  r.job = 42;
  r.state = JobState::kRunning;
  r.points = 17;
  r.done_points = 5;
  r.executed = 3;
  r.error = "some context";
  const auto back = parse_reply(encode_reply(r));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->ok, r.ok);
  EXPECT_EQ(back->retry, r.retry);
  EXPECT_EQ(back->job, r.job);
  EXPECT_EQ(back->state, r.state);
  EXPECT_EQ(back->points, r.points);
  EXPECT_EQ(back->done_points, r.done_points);
  EXPECT_EQ(back->executed, r.executed);
  EXPECT_EQ(back->error, r.error);
}

TEST(DaemonReply_, ErrorTextIsSanitizedToOneLine) {
  DaemonReply r;
  r.error = "line one\nline two\twith tab";
  const auto back = parse_reply(encode_reply(r));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->error, "line one line two with tab");
}

TEST(DaemonReply_, ParserRejectsGarbageAndIgnoresUnknownKeys) {
  EXPECT_FALSE(parse_reply("").has_value());
  EXPECT_FALSE(parse_reply("#am-reply v2\nok\t1\n").has_value());
  EXPECT_FALSE(parse_reply("#am-reply v1\nstate\tqueued\n").has_value());
  EXPECT_FALSE(parse_reply("#am-reply v1\nok\t2\n").has_value());
  const auto ok =
      parse_reply("#am-reply v1\nok\t1\nfuture_field\twhatever\n");
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(ok->ok);
}

TEST(FairShare, GrantGapIsBoundedUnderRandomLoads) {
  std::mt19937 rng(20140519);
  for (int trial = 0; trial < 50; ++trial) {
    FairShareScheduler sched;
    std::map<std::uint64_t, std::size_t> work;
    const std::size_t n_jobs = 2 + rng() % 5;
    for (std::uint64_t j = 1; j <= n_jobs; ++j) {
      work[j] = 1 + rng() % 20;  // wildly uneven plan sizes
      sched.add(j);
    }
    std::vector<std::uint64_t> grants;
    std::uint64_t next_id = n_jobs + 1;
    const auto has_work = [&](std::uint64_t id) { return work[id] > 0; };
    while (const auto j = sched.pick(has_work)) {
      grants.push_back(*j);
      --work[*j];
      if (rng() % 7 == 0) {  // tenants keep submitting mid-flight
        work[next_id] = 1 + rng() % 10;
        sched.add(next_id++);
      }
    }
    for (const auto& [id, remaining] : work)
      EXPECT_EQ(remaining, 0u) << "job " << id << " starved";

    // The fairness bound: between consecutive grants to a job that had
    // work the whole time (it did — it got granted again), every other
    // job is granted at most once. A big plan cannot starve a small one.
    std::map<std::uint64_t, std::size_t> last_pos;
    for (std::size_t i = 0; i < grants.size(); ++i) {
      const std::uint64_t j = grants[i];
      if (last_pos.count(j)) {
        std::map<std::uint64_t, std::size_t> between;
        for (std::size_t k = last_pos[j] + 1; k < i; ++k)
          EXPECT_LE(++between[grants[k]], 1u)
              << "job " << grants[k] << " granted twice between grants "
              << last_pos[j] << " and " << i << " of job " << j;
      }
      last_pos[j] = i;
    }
  }
}

TEST(FairShare, RemoveDropsJob) {
  FairShareScheduler sched;
  sched.add(1);
  sched.add(2);
  sched.remove(1);
  const auto pick = sched.pick([](std::uint64_t) { return true; });
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 2u);
  sched.remove(2);
  EXPECT_FALSE(sched.pick([](std::uint64_t) { return true; }).has_value());
}

TEST(Namespaces, ValidationIsStrict) {
  EXPECT_TRUE(SweepDaemon::valid_namespace("alice"));
  EXPECT_TRUE(SweepDaemon::valid_namespace("team-7_B"));
  EXPECT_FALSE(SweepDaemon::valid_namespace(""));
  EXPECT_FALSE(SweepDaemon::valid_namespace("has space"));
  EXPECT_FALSE(SweepDaemon::valid_namespace("dot.dot"));
  EXPECT_FALSE(SweepDaemon::valid_namespace("../escape"));
  EXPECT_FALSE(SweepDaemon::valid_namespace(std::string(65, 'a')));
}

// --- live daemon: protocol and tenancy ------------------------------------

TEST_F(SweepDaemonTest, FaultInjectionFailsOneConnectionNotOtherTenants) {
  DaemonHarness harness(accept_only());
  const std::string plan = serialize_plan_spec(tiny_spec());

  // Two tenants queue real plans first.
  auto alice = DaemonClient::connect_unix(sock());
  const auto job_a = alice.submit("alice", plan);
  ASSERT_TRUE(job_a.ok) << job_a.error;
  EXPECT_EQ(job_a.job, 1u);
  EXPECT_EQ(job_a.points, 2u);
  auto bob = DaemonClient::connect_unix(sock());
  const auto job_b = bob.submit("bob", plan);
  ASSERT_TRUE(job_b.ok) << job_b.error;
  EXPECT_EQ(job_b.job, 2u);

  // Hostile connection 1: garbage bytes. The daemon must answer with a
  // clean error reply and fail only that connection.
  {
    auto evil = DaemonClient::connect_unix(sock());
    evil.send_raw("complete nonsense, definitely not a frame header....");
    const Frame reply = read_frame(evil.socket());
    const auto parsed = parse_reply(reply.payload);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_FALSE(parsed->ok);
    EXPECT_NE(parsed->error.find("magic"), std::string::npos)
        << parsed->error;
  }

  // Hostile connection 2: wrong protocol version.
  {
    std::string wire = encode_frame({kFrameStatus, "job\t1"});
    wire[4] = 9;
    auto evil = DaemonClient::connect_unix(sock());
    evil.send_raw(wire);
    const auto parsed = parse_reply(read_frame(evil.socket()).payload);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_FALSE(parsed->ok);
    EXPECT_NE(parsed->error.find("version"), std::string::npos)
        << parsed->error;
  }

  // Hostile connection 3: oversized length prefix (a 1 TiB "payload").
  {
    std::string wire = encode_frame({kFrameSubmit, ""});
    for (std::size_t i = 0; i < 8; ++i) wire[8 + i] = 0;
    wire[8 + 5] = 1;
    auto evil = DaemonClient::connect_unix(sock());
    evil.send_raw(wire);
    const auto parsed = parse_reply(read_frame(evil.socket()).payload);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_FALSE(parsed->ok);
    EXPECT_NE(parsed->error.find("oversized"), std::string::npos)
        << parsed->error;
  }

  // Hostile connection 4: a real submit frame truncated mid-payload,
  // then a hangup — the daemon must treat EOF-with-pending-bytes as a
  // protocol error, not wait forever for the rest.
  {
    const std::string whole = encode_frame({kFrameSubmit, "ns\tmallory\n"});
    auto evil = DaemonClient::connect_unix(sock());
    evil.send_raw(whole.substr(0, whole.size() - 4));
    evil.socket().close();
  }

  // Unknown frame types are a protocol error too.
  {
    auto evil = DaemonClient::connect_unix(sock());
    evil.send_raw(encode_frame({999, "?"}));
    const auto parsed = parse_reply(read_frame(evil.socket()).payload);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_FALSE(parsed->ok);
  }

  // Malformed *payloads* on a good connection are per-request errors
  // that leave the connection usable.
  auto carol = DaemonClient::connect_unix(sock());
  EXPECT_FALSE(carol.submit("not a valid ns!", plan).ok);
  EXPECT_FALSE(carol.submit("carol", "#broken plan\n").ok);
  EXPECT_FALSE(carol.status(999).ok);
  const auto job_c = carol.submit("carol", plan);
  EXPECT_TRUE(job_c.ok) << job_c.error;

  // Both original tenants' jobs rode out all of it, still queued.
  EXPECT_EQ(alice.status(job_a.job).state, JobState::kQueued);
  EXPECT_EQ(bob.status(job_b.job).state, JobState::kQueued);

  // Cancel works and is terminal: a second cancel is an error.
  EXPECT_EQ(carol.cancel(job_c.job).state, JobState::kCancelled);
  EXPECT_FALSE(carol.cancel(job_c.job).ok);

  const auto report = harness.drain();
  EXPECT_TRUE(report.clean_exit);
  EXPECT_EQ(report.jobs_accepted, 3u);
  EXPECT_GE(report.protocol_errors, 5u);
  EXPECT_TRUE(fs::exists(SweepDaemon::queue_path(dir())));
  EXPECT_TRUE(fs::exists(SweepDaemon::manifest_path(dir())));
  EXPECT_FALSE(fs::exists(sock())) << "drain must remove the socket file";
}

TEST_F(SweepDaemonTest, QueueSurvivesRestartsAndSubmittersGetRetryLater) {
  const std::string plan = serialize_plan_spec(tiny_spec());
  {
    DaemonHarness gen1(accept_only());
    auto client = DaemonClient::connect_unix(sock());
    ASSERT_TRUE(client.submit("alice", plan).ok);
    ASSERT_TRUE(client.submit("bob", plan).ok);
    const auto report = gen1.drain();
    EXPECT_TRUE(report.clean_exit);
  }
  {
    DaemonHarness gen2(accept_only());
    auto client = DaemonClient::connect_unix(sock());
    // Resumed jobs keep their ids and queue states...
    EXPECT_EQ(client.status(1).state, JobState::kQueued);
    EXPECT_EQ(client.status(2).state, JobState::kQueued);
    // ...and id allocation continues, never reuses.
    const auto fresh = client.submit("carol", plan);
    ASSERT_TRUE(fresh.ok);
    EXPECT_EQ(fresh.job, 3u);

    // A submitter racing the drain gets an explicit retry-later.
    gen2.daemon.request_drain();
    DaemonReply racing;
    for (int i = 0; i < 200; ++i) {
      racing = client.submit("dave", plan);
      if (racing.retry) break;
      std::this_thread::sleep_for(5ms);
    }
    EXPECT_TRUE(racing.retry) << "drain must answer submitters retry-later";
    EXPECT_FALSE(racing.ok);
    gen2.drain();
  }
}

TEST_F(SweepDaemonTest, WaitIsReleasedByCancel) {
  DaemonHarness harness(accept_only());
  auto client = DaemonClient::connect_unix(sock());
  const auto job = client.submit("alice", serialize_plan_spec(tiny_spec()));
  ASSERT_TRUE(job.ok);

  std::thread canceller([&] {
    std::this_thread::sleep_for(100ms);
    auto other = DaemonClient::connect_unix(sock());
    other.cancel(job.job);
  });
  const auto reply = client.wait(job.job, 30.0);
  canceller.join();
  EXPECT_TRUE(reply.ok);
  EXPECT_EQ(reply.state, JobState::kCancelled);
  harness.drain();
}

TEST_F(SweepDaemonTest, DrainAnswersWaitersRetryLater) {
  DaemonHarness harness(accept_only());
  auto client = DaemonClient::connect_unix(sock());
  const auto job = client.submit("alice", serialize_plan_spec(tiny_spec()));
  ASSERT_TRUE(job.ok);

  std::thread drainer([&] {
    std::this_thread::sleep_for(100ms);
    harness.daemon.request_drain();
  });
  const auto reply = client.wait(job.job, 30.0);
  drainer.join();
  EXPECT_TRUE(reply.retry);
  EXPECT_FALSE(reply.ok);
  const auto report = harness.drain();
  EXPECT_TRUE(report.clean_exit);
  // The un-run job survives for the next daemon generation.
  EXPECT_EQ(report.jobs.size(), 1u);
  EXPECT_EQ(report.jobs[0].state, JobState::kQueued);
}

// --- the worker half -------------------------------------------------------

TEST_F(SweepDaemonTest, WorkerExecutesOffersBitIdenticallyAndReusesCache) {
  const PlanSpec spec = tiny_spec();
  const std::string plan_file = dir() + "/job1.plan";
  std::ofstream(plan_file) << serialize_plan_spec(spec);
  const std::string lease = dir() + "/wrk0.lease";

  DaemonWorkerOptions wopts;
  wopts.lease_path = lease;
  wopts.poll_seconds = 0.002;
  wopts.idle_timeout_seconds = 60.0;
  std::ostringstream wlog;
  DaemonWorkerReport wreport;
  std::thread worker(
      [&] { wreport = run_daemon_worker(wopts, wlog); });

  const auto offer_and_await = [&](std::uint64_t id,
                                   std::vector<std::size_t> points) {
    LeaseOffer off;
    off.lease.id = id;
    off.lease.points = std::move(points);
    off.plan_path = plan_file;
    off.store_path = lease_store_path(lease);
    write_lease_offer(lease, off);
    for (int i = 0; i < 6000; ++i) {
      if (const auto ack = read_lease_ack(lease_ack_path(lease)))
        if (ack->lease_id == id) return *ack;
      std::this_thread::sleep_for(5ms);
    }
    ADD_FAILURE() << "no ack for lease " << id << "; worker log:\n"
                  << wlog.str();
    return LeaseAck{};
  };

  const LeaseAck first = offer_and_await(1, {0, 1});
  EXPECT_EQ(first.points, 2u);
  EXPECT_EQ(first.executed, 2u) << "fresh points must actually run";

  // Re-offering a covered point must be a pure cache hit.
  const LeaseAck second = offer_and_await(2, {0});
  EXPECT_EQ(second.points, 1u);
  EXPECT_EQ(second.executed, 0u) << "cached point must not re-run";

  LeaseOffer done;
  done.lease.id = 3;
  done.done = true;
  write_lease_offer(lease, done);
  worker.join();
  EXPECT_EQ(wreport.leases, 2u);
  EXPECT_EQ(wreport.points, 3u);
  EXPECT_EQ(wreport.executed, 2u);

  // The worker's persisted store is byte-identical to a direct serial
  // run of the same plan — the foundation of the namespace-purity
  // guarantee the daemon builds on top.
  ResultStore direct;
  const ExperimentPlan plan = build_plan(spec);
  make_runner(spec).run_points(plan, nullptr, &direct, {0, 1});
  const std::string direct_path = dir() + "/direct.tsv";
  direct.save(direct_path);
  EXPECT_EQ(read_file(lease_store_path(lease)), read_file(direct_path));
}

TEST_F(SweepDaemonTest, WorkerRejectsOffersWithoutPlanPaths) {
  const std::string lease = dir() + "/wrk0.lease";
  LeaseOffer off;
  off.lease.id = 1;
  off.lease.points = {0};
  write_lease_offer(lease, off);  // no plan/store paths
  DaemonWorkerOptions wopts;
  wopts.lease_path = lease;
  wopts.poll_seconds = 0.002;
  std::ostringstream wlog;
  EXPECT_THROW(run_daemon_worker(wopts, wlog), std::invalid_argument);
}

TEST_F(SweepDaemonTest, WorkerGivesUpWhenOrphaned) {
  DaemonWorkerOptions wopts;
  wopts.lease_path = dir() + "/wrk0.lease";  // nobody ever offers
  wopts.poll_seconds = 0.002;
  wopts.idle_timeout_seconds = 0.05;
  std::ostringstream wlog;
  EXPECT_THROW(run_daemon_worker(wopts, wlog), std::runtime_error);
}

// --- worker-process supervision (stub workers) -----------------------------

TEST_F(SweepDaemonTest, UsageWorkerExitFailsOnlyTheLeasedJob) {
  DaemonHarness harness(with_stub_worker({"/bin/sh", "-c", "exit 2"}));
  auto client = DaemonClient::connect_unix(sock());
  const auto job = client.submit("alice", serialize_plan_spec(tiny_spec()));
  ASSERT_TRUE(job.ok);
  const auto reply = client.wait(job.job, 30.0);
  EXPECT_EQ(reply.state, JobState::kFailed);
  EXPECT_NE(reply.error.find("rejected"), std::string::npos) << reply.error;

  // The daemon itself keeps serving other tenants.
  const auto after = client.submit("bob", serialize_plan_spec(tiny_spec()));
  EXPECT_TRUE(after.ok);
  const auto report = harness.drain();
  EXPECT_TRUE(report.clean_exit);
  EXPECT_EQ(report.jobs_failed, 2u);  // bob's job meets the same stub
}

TEST_F(SweepDaemonTest, CrashingWorkerExhaustsTheRetryBudget) {
  // retries=0: the first crash while holding the lease must fail the
  // job with a budget-exhaustion error, not hang or crash the daemon.
  DaemonHarness harness(with_stub_worker({"/bin/sh", "-c", "exit 3"}));
  auto client = DaemonClient::connect_unix(sock());
  const auto job = client.submit("alice", serialize_plan_spec(tiny_spec()));
  ASSERT_TRUE(job.ok);
  const auto reply = client.wait(job.job, 30.0);
  EXPECT_EQ(reply.state, JobState::kFailed);
  EXPECT_NE(reply.error.find("retry budget"), std::string::npos)
      << reply.error;
  EXPECT_TRUE(harness.drain().clean_exit);
}

TEST_F(SweepDaemonTest, UnspawnableWorkerCommandFailsJobNotDaemon) {
  DaemonHarness harness(
      with_stub_worker({dir() + "/no-such-worker-binary"}));
  auto client = DaemonClient::connect_unix(sock());
  const auto job = client.submit("alice", serialize_plan_spec(tiny_spec()));
  ASSERT_TRUE(job.ok);
  const auto reply = client.wait(job.job, 30.0);
  EXPECT_EQ(reply.state, JobState::kFailed);
  const auto report = harness.drain();
  EXPECT_TRUE(report.clean_exit) << report.error;
}

}  // namespace
}  // namespace am::measure

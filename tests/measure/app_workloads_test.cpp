#include "measure/app_workloads.hpp"

#include <gtest/gtest.h>

namespace am::measure {
namespace {

using sim::MachineConfig;

constexpr std::uint32_t kScale = 32;

TEST(AppWorkloads, McbFactoryBuildsRanksAndInterferenceSlots) {
  const auto m = MachineConfig::xeon20mb_scaled(kScale, /*nodes=*/2);
  sim::Engine engine(m);
  auto cfg = apps::McbConfig::paper(20'000, kScale);
  cfg.steps = 1;
  const auto info = make_mcb_workload(8, 2, cfg)(engine);
  EXPECT_EQ(info.primary_agents.size(), 8u);
  ASSERT_EQ(info.interference_cores.size(), 4u);  // 4 sockets used
  for (const auto& group : info.interference_cores)
    EXPECT_EQ(group.size(), 6u);  // 8 cores - 2 ranks
  EXPECT_EQ(engine.agent_count(), 8u);
}

TEST(AppWorkloads, LuleshFactoryBuildsCubicGrid) {
  const auto m = MachineConfig::xeon20mb_scaled(kScale, /*nodes=*/2);
  sim::Engine engine(m);
  auto cfg = apps::LuleshConfig::paper(22, kScale);
  cfg.steps = 1;
  const auto info = make_lulesh_workload(8, 2, cfg)(engine);
  EXPECT_EQ(info.primary_agents.size(), 8u);
}

TEST(AppWorkloads, SyntheticFactoryUsesCoreZero) {
  const auto m = MachineConfig::xeon20mb_scaled(kScale);
  sim::Engine engine(m);
  const std::uint64_t elements = 100'000;
  const auto info = make_synthetic_workload(apps::SyntheticConfig{
      model::AccessDistribution::uniform(elements, "Uni"), 4, 1, 0,
      10'000})(engine);
  ASSERT_EQ(info.primary_agents.size(), 1u);
  EXPECT_EQ(engine.agent_core(info.primary_agents[0]), 0u);
  ASSERT_EQ(info.interference_cores.size(), 1u);
  EXPECT_EQ(info.interference_cores[0].size(), m.cores_per_socket - 1);
}

TEST(AppWorkloads, FactoryIsReusableAcrossEngines) {
  const auto m = MachineConfig::xeon20mb_scaled(kScale, 2);
  auto cfg = apps::McbConfig::paper(20'000, kScale);
  cfg.steps = 1;
  const auto factory = make_mcb_workload(4, 2, cfg);
  sim::Engine a(m), b(m);
  EXPECT_EQ(factory(a).primary_agents.size(), 4u);
  EXPECT_EQ(factory(b).primary_agents.size(), 4u);
  a.run();
  b.run();
  EXPECT_EQ(a.agent_clock(0), b.agent_clock(0));  // deterministic
}

TEST(AppWorkloads, McbWorkloadRunsUnderBackend) {
  const auto m = MachineConfig::xeon20mb_scaled(kScale, 2);
  SimBackend backend(m);
  auto cfg = apps::McbConfig::paper(20'000, kScale);
  cfg.steps = 1;
  const auto result = backend.run(make_mcb_workload(4, 2, cfg),
                                  InterferenceSpec::none());
  EXPECT_GT(result.seconds, 0.0);
  EXPECT_GT(result.app.loads, 1000u);
  EXPECT_FALSE(result.timed_out);
}

}  // namespace
}  // namespace am::measure

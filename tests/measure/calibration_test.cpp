#include "measure/calibration.hpp"

#include <gtest/gtest.h>

namespace am::measure {
namespace {

using sim::MachineConfig;

constexpr std::uint32_t kScale = 32;

MachineConfig machine() { return MachineConfig::xeon20mb_scaled(kScale); }

interfere::CSThrConfig cs_cfg() {
  interfere::CSThrConfig c;
  c.buffer_bytes = 4ull * 1024 * 1024 / kScale;
  return c;
}

interfere::BWThrConfig bw_cfg() {
  interfere::BWThrConfig c;
  c.buffer_bytes = 520ull * 1024 / kScale;
  return c;
}

CalibrationOptions quick_opts(std::uint32_t max_threads) {
  CalibrationOptions o;
  o.max_threads = max_threads;
  o.buffer_to_l3_ratios = {2.5};
  o.probe_distributions = {9};  // Uni only: fastest, tightest inversion
  o.accesses_per_probe = 150'000;
  return o;
}

TEST(CapacityCalibration, NoInterferenceRecoversFullL3) {
  const auto calib = calibrate_capacity(machine(), cs_cfg(), quick_opts(0));
  ASSERT_EQ(calib.available_bytes.size(), 1u);
  // Paper Fig. 6 "No Interference": estimate approaches the true 20 MB
  // (scaled); allow the fully-associative model's small bias.
  EXPECT_NEAR(calib.available_bytes[0],
              static_cast<double>(machine().l3.size_bytes),
              0.25 * machine().l3.size_bytes);
}

TEST(CapacityCalibration, EffectiveCapacityShrinksMonotonically) {
  const auto calib = calibrate_capacity(machine(), cs_cfg(), quick_opts(3));
  ASSERT_EQ(calib.available_bytes.size(), 4u);
  for (std::size_t k = 1; k < calib.available_bytes.size(); ++k)
    EXPECT_LT(calib.available_bytes[k], calib.available_bytes[k - 1])
        << "k=" << k;
}

TEST(CapacityCalibration, OneThreadDeniesRoughlyItsBuffer) {
  const auto calib = calibrate_capacity(machine(), cs_cfg(), quick_opts(1));
  const double denied = calib.available_bytes[0] - calib.available_bytes[1];
  // Paper: 1 CSThr with a 4 MB buffer leaves ~15 MB of 20 (denies 4-6 MB).
  EXPECT_GT(denied, 0.5 * cs_cfg().buffer_bytes);
  EXPECT_LT(denied, 2.5 * cs_cfg().buffer_bytes);
}

TEST(BandwidthCalibration, PeakNearConfiguredBandwidth) {
  const auto calib = calibrate_bandwidth(machine(), bw_cfg(), 0);
  EXPECT_GT(calib.peak_bytes_per_sec,
            0.6 * machine().mem_bandwidth_bytes_per_sec);
  EXPECT_LE(calib.peak_bytes_per_sec,
            1.05 * machine().mem_bandwidth_bytes_per_sec);
}

TEST(BandwidthCalibration, UsageGrowsWithThreadCount) {
  const auto calib = calibrate_bandwidth(machine(), bw_cfg(), 3);
  ASSERT_EQ(calib.used_bytes_per_sec.size(), 4u);
  EXPECT_LT(calib.used_bytes_per_sec[0], 1e8);  // idle socket
  for (std::size_t k = 1; k < calib.used_bytes_per_sec.size(); ++k)
    EXPECT_GT(calib.used_bytes_per_sec[k],
              calib.used_bytes_per_sec[k - 1] * 1.2)
        << "k=" << k;
}

TEST(BandwidthCalibration, AvailableIsPeakMinusUsed) {
  const auto calib = calibrate_bandwidth(machine(), bw_cfg(), 1);
  EXPECT_NEAR(calib.available(1),
              calib.peak_bytes_per_sec - calib.used_bytes_per_sec[1], 1e-6);
}

TEST(BandwidthCalibration, RejectsTooManyThreads) {
  EXPECT_THROW(calibrate_bandwidth(machine(), bw_cfg(), 8),
               std::invalid_argument);
}

TEST(CapacityCalibration, RejectsTooManyThreads) {
  // Probe on core 0 + k CSThrs on cores 1..k: max_threads = 8 would spill
  // the last CSThr onto the next socket and calibrate against interference
  // that never shares the probe's L3.
  EXPECT_EQ(machine().cores_per_socket, 8u);
  EXPECT_THROW(calibrate_capacity(machine(), cs_cfg(), quick_opts(8)),
               std::invalid_argument);
  // The largest placement that still fits the socket stays accepted (tiny
  // probes: only the placement check matters here).
  auto opts = quick_opts(7);
  opts.buffer_to_l3_ratios = {0.05};
  opts.accesses_per_probe = 200;
  EXPECT_NO_THROW(calibrate_capacity(machine(), cs_cfg(), opts));
}

}  // namespace
}  // namespace am::measure

#include "measure/coschedule.hpp"

#include <gtest/gtest.h>

namespace am::measure {
namespace {

SweepResult make_capacity_sweep(double baseline, double degraded_at_small) {
  SweepResult s;
  s.resource = Resource::kCacheStorage;
  s.points = {{0, baseline, 20e6},
              {1, baseline * 1.01, 15e6},
              {2, baseline * 1.02, 12e6},
              {3, baseline * 1.04, 7e6},
              {4, degraded_at_small, 5e6}};
  return s;
}

SweepResult make_bandwidth_sweep(double baseline) {
  SweepResult s;
  s.resource = Resource::kBandwidth;
  // Bandwidth-insensitive within tolerance at every level.
  s.points = {{0, baseline, 17e9},
              {1, baseline * 1.01, 14.2e9},
              {2, baseline * 1.02, 11.4e9}};
  return s;
}

AppProfile small_app() {
  // Uses <= 6 MB of cache, insensitive to bandwidth.
  return AppProfile::from_sweeps("small", make_capacity_sweep(10.0, 12.5),
                                 make_bandwidth_sweep(10.0), 1);
}

AppProfile hungry_app() {
  // Degrades early on capacity: needs > 12 MB.
  SweepResult cap;
  cap.resource = Resource::kCacheStorage;
  cap.points = {{0, 10.0, 20e6},
                {1, 10.2, 15e6},
                {2, 11.5, 12e6},
                {3, 13.0, 7e6},
                {4, 15.0, 5e6}};
  return AppProfile::from_sweeps("hungry", cap, make_bandwidth_sweep(10.0),
                                 1);
}

TEST(AppProfile, FromSweepsDerivesBounds) {
  const auto p = small_app();
  EXPECT_EQ(p.name, "small");
  EXPECT_TRUE(p.capacity.degraded_at_any_level);
  EXPECT_DOUBLE_EQ(p.capacity.upper, 7e6);   // last OK level
  EXPECT_DOUBLE_EQ(p.capacity.lower, 5e6);   // first degraded level
  ASSERT_TRUE(p.capacity_curve.has_value());
}

TEST(AppProfile, FromSweepsRejectsWrongResources) {
  EXPECT_THROW(AppProfile::from_sweeps("x", make_bandwidth_sweep(1.0),
                                       make_bandwidth_sweep(1.0), 1),
               std::invalid_argument);
}

TEST(CoScheduleAdvisor, TwoSmallAppsAreSafe) {
  const CoScheduleAdvisor advisor(20e6, 17e9);
  const auto verdict = advisor.advise(small_app(), small_app());
  EXPECT_FALSE(verdict.capacity_oversubscribed);  // 7 + 7 < 20
  EXPECT_TRUE(verdict.safe(0.06));
  EXPECT_NEAR(verdict.slowdown_a, 1.0, 0.06);
}

TEST(CoScheduleAdvisor, HungryPairOversubscribes) {
  const CoScheduleAdvisor advisor(20e6, 17e9);
  const auto verdict = advisor.advise(hungry_app(), hungry_app());
  // Each wants > 12 MB: 24+ MB demand on a 20 MB socket.
  EXPECT_TRUE(verdict.capacity_oversubscribed);
  EXPECT_GT(verdict.worst_slowdown(), 1.05);
  EXPECT_FALSE(verdict.safe(0.05));
  EXPECT_NEAR(verdict.capacity_a + verdict.capacity_b, 20e6, 1.0);
}

TEST(CoScheduleAdvisor, AsymmetricSplitFollowsDemand) {
  const CoScheduleAdvisor advisor(20e6, 17e9);
  const auto verdict = advisor.advise(hungry_app(), small_app());
  // The hungry app demands more, so it receives the larger share.
  EXPECT_GT(verdict.capacity_a, verdict.capacity_b);
}

TEST(CoScheduleAdvisor, SlowdownsComeFromCurves) {
  const CoScheduleAdvisor advisor(20e6, 17e9);
  const auto hungry = hungry_app();
  const auto verdict = advisor.advise(hungry, hungry);
  // The verdict's slowdown must equal the curve's prediction at the share.
  EXPECT_NEAR(verdict.slowdown_a,
              hungry.capacity_curve->predict_slowdown(verdict.capacity_a),
              1e-9);
}

TEST(CoScheduleAdvisor, RejectsNonPositiveResources) {
  EXPECT_THROW(CoScheduleAdvisor(0.0, 17e9), std::invalid_argument);
  EXPECT_THROW(CoScheduleAdvisor(20e6, -1.0), std::invalid_argument);
}

TEST(CoScheduleVerdict, WorstSlowdownAndSafe) {
  CoScheduleVerdict v;
  v.slowdown_a = 1.02;
  v.slowdown_b = 1.30;
  EXPECT_DOUBLE_EQ(v.worst_slowdown(), 1.30);
  EXPECT_FALSE(v.safe(0.05));
  EXPECT_TRUE(v.safe(0.35));
}

}  // namespace
}  // namespace am::measure

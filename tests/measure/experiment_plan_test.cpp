#include "measure/experiment_plan.hpp"

#include <gtest/gtest.h>

#include <random>

#include "common/work_lease.hpp"
#include "measure/active_measurer.hpp"
#include "measure/app_workloads.hpp"
#include "model/distributions.hpp"

namespace am::measure {
namespace {

using model::AccessDistribution;
using sim::MachineConfig;

constexpr std::uint32_t kScale = 64;

MachineConfig machine() { return MachineConfig::xeon20mb_scaled(kScale); }

interfere::CSThrConfig cs_cfg() {
  interfere::CSThrConfig c;
  c.buffer_bytes = 4ull * 1024 * 1024 / kScale;
  return c;
}

interfere::BWThrConfig bw_cfg() {
  interfere::BWThrConfig c;
  c.buffer_bytes = 520ull * 1024 / kScale;
  return c;
}

SimBackend::WorkloadFactory synth_factory(double l3_fraction = 1.2,
                                          std::uint64_t accesses = 6'000) {
  const auto elements = static_cast<std::uint64_t>(
      l3_fraction * static_cast<double>(machine().l3.size_bytes) / 4);
  // Short warm-up: these tests assert determinism and table plumbing, not
  // measurement realism, and the grid re-runs each plan several times.
  return make_synthetic_workload(apps::SyntheticConfig{
      AccessDistribution::uniform(elements, "Uni"), 4, 1, elements / 4,
      accesses});
}

SweepRunnerOptions options() {
  SweepRunnerOptions opts;
  opts.cs = cs_cfg();
  opts.bw = bw_cfg();
  return opts;
}

ExperimentPlan two_workload_plan() {
  ExperimentPlan plan;
  const auto a = plan.add_workload({"a", synth_factory(1.2)});
  const auto b = plan.add_workload({"b", synth_factory(0.5)});
  plan.add_sweep(a, Resource::kCacheStorage, 0, 2);
  plan.add_sweep(a, Resource::kBandwidth, 0, 1);
  plan.add_sweep(b, Resource::kCacheStorage, 0, 1);
  return plan;
}

void expect_identical(const ExperimentPlan& plan, const ResultTable& x,
                      const ResultTable& y) {
  ASSERT_EQ(x.size(), y.size());
  for (const auto& pt : plan.points()) {
    const auto& rx = x.at(pt.workload, pt.resource, pt.threads);
    const auto& ry = y.at(pt.workload, pt.resource, pt.threads);
    EXPECT_EQ(rx.seconds, ry.seconds);  // bitwise: same seed, same engine
    EXPECT_EQ(rx.cycles, ry.cycles);
    EXPECT_EQ(rx.app.loads, ry.app.loads);
    EXPECT_EQ(rx.app.bytes_from_mem, ry.app.bytes_from_mem);
  }
}

TEST(ExperimentPlan, DeduplicatesBaselinesAcrossResources) {
  ExperimentPlan plan;
  const auto w = plan.add_workload({"w", synth_factory()});
  plan.add_sweep(w, Resource::kCacheStorage, 0, 3);
  plan.add_sweep(w, Resource::kBandwidth, 0, 2);
  // 0..3 storage (4 points) + bandwidth 1..2 (k=0 folds into the shared
  // baseline) = 6 experiments, not 7.
  EXPECT_EQ(plan.size(), 6u);
  // Re-adding any existing point is a no-op.
  plan.add_point(w, Resource::kCacheStorage, 2);
  plan.add_point(w, Resource::kBandwidth, 0);
  EXPECT_EQ(plan.size(), 6u);
}

TEST(ExperimentPlan, RejectsUnknownWorkloadAndMissingFactory) {
  ExperimentPlan plan;
  EXPECT_THROW(plan.add_point(0, Resource::kCacheStorage, 0),
               std::invalid_argument);
  EXPECT_THROW(plan.add_workload({"broken", nullptr}),
               std::invalid_argument);
}

TEST(ExperimentPlan, RejectsDuplicateWorkloadNames) {
  // Names key the ResultStore; two workloads sharing one would alias.
  ExperimentPlan plan;
  plan.add_workload({"w", synth_factory()});
  EXPECT_THROW(plan.add_workload({"w", synth_factory(0.5)}),
               std::invalid_argument);
}

TEST(ExperimentPlan, ShardsCoverExactlyAndNeverOverlap) {
  ExperimentPlan plan;
  const auto w = plan.add_workload({"w", synth_factory()});
  plan.add_sweep(w, Resource::kCacheStorage, 0, 6);  // 7 points
  for (const std::size_t n : {1u, 2u, 3u, 7u, 11u}) {
    std::vector<int> owners(plan.size(), 0);
    for (std::size_t i = 0; i < n; ++i)
      for (const std::size_t idx : plan.shard(i, n)) {
        ASSERT_LT(idx, plan.size());
        ++owners[idx];
      }
    for (const int count : owners) EXPECT_EQ(count, 1);  // exact cover
  }
}

TEST(ExperimentPlan, ShardEdgeCases) {
  ExperimentPlan empty;
  EXPECT_TRUE(empty.shard(0, 4).empty());  // empty plan: empty shards

  ExperimentPlan plan;
  const auto w = plan.add_workload({"w", synth_factory()});
  plan.add_point(w, Resource::kCacheStorage, 0);
  plan.add_point(w, Resource::kCacheStorage, 1);
  // More shards than points: the high shards are empty, not an error.
  EXPECT_EQ(plan.shard(0, 5), (std::vector<std::size_t>{0}));
  EXPECT_EQ(plan.shard(1, 5), (std::vector<std::size_t>{1}));
  EXPECT_TRUE(plan.shard(4, 5).empty());
  // Invalid specs are errors.
  EXPECT_THROW(plan.shard(0, 0), std::invalid_argument);
  EXPECT_THROW(plan.shard(2, 2), std::invalid_argument);
  EXPECT_THROW(plan.shard(7, 2), std::invalid_argument);
}

TEST(ExperimentPlan, BatchesCoverEveryPlanExactlyOnceForRandomCostModels) {
  // Property-style: whatever the plan size, batch count, and cost model,
  // the union of all batches is the plan, exactly once — the scheduler
  // contract that makes a leased sweep's merged store complete and
  // collision-free. Fixed seed: failures must reproduce.
  std::mt19937_64 rng(20260726);
  for (int round = 0; round < 50; ++round) {
    const std::size_t points = rng() % 40;  // includes the empty plan
    const std::size_t count = 1 + rng() % 12;
    std::vector<double> costs;
    if (rng() % 3 != 0) {  // every third round: uniform (no model)
      costs.resize(points);
      for (auto& c : costs)
        c = std::uniform_real_distribution<double>(0.0, 20.0)(rng);
    }
    const auto batches = make_batches(points, count, costs);
    ASSERT_EQ(batches.size(), count);
    std::vector<int> owners(points, 0);
    for (const auto& lease : batches) {
      // Ascending within a batch, by contract.
      for (std::size_t i = 1; i < lease.points.size(); ++i)
        EXPECT_LT(lease.points[i - 1], lease.points[i]);
      for (const std::size_t p : lease.points) {
        ASSERT_LT(p, points);
        ++owners[p];
      }
    }
    for (const int n : owners) EXPECT_EQ(n, 1);
  }
}

TEST(ExperimentPlan, UniformBatchesReproduceRoundRobinShards) {
  // shard(i, n) is documented as the uniform-cost degenerate case of
  // batches(); hold both to the historical round-robin oracle so the
  // static front-end stays bit-compatible forever.
  ExperimentPlan plan;
  const auto w = plan.add_workload({"w", synth_factory()});
  plan.add_sweep(w, Resource::kCacheStorage, 0, 10);  // 11 points
  for (const std::size_t n : {1u, 2u, 3u, 5u, 11u, 13u}) {
    const auto batches = plan.batches(n);
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<std::size_t> oracle;
      for (std::size_t p = i; p < plan.size(); p += n) oracle.push_back(p);
      EXPECT_EQ(batches[i].points, oracle);
      EXPECT_EQ(plan.shard(i, n), oracle);
    }
  }
}

TEST(ExperimentPlan, BatchesBalanceSkewedCosts) {
  // One dominating point must not drag half the plan with it: LPT gives
  // the heavy point its own batch and spreads the rest.
  const std::vector<double> costs{100.0, 1.0, 1.0, 1.0, 1.0, 1.0};
  const auto batches = make_batches(6, 2, costs);
  double lo = batches[0].cost, hi = batches[1].cost;
  if (lo > hi) std::swap(lo, hi);
  EXPECT_EQ(hi, 100.0);  // heavy point isolated
  EXPECT_EQ(lo, 5.0);    // all light points together
}

TEST(ExperimentPlan, BatchesRejectBadCostModels) {
  ExperimentPlan plan;
  const auto w = plan.add_workload({"w", synth_factory()});
  plan.add_sweep(w, Resource::kCacheStorage, 0, 3);
  EXPECT_THROW(plan.batches(0), std::invalid_argument);
  EXPECT_THROW(plan.batches(2, {1.0}), std::invalid_argument);  // wrong len
  EXPECT_THROW(plan.batches(2, {1.0, -1.0, 1.0, 1.0}),
               std::invalid_argument);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(plan.batches(2, {1.0, nan, 1.0, 1.0}),
               std::invalid_argument);
}

TEST(SweepRunner, RunPointsRejectsBadWorkLists) {
  const auto plan = two_workload_plan();
  const SweepRunner runner(machine(), options());
  EXPECT_THROW(runner.run_points(plan, nullptr, nullptr, {plan.size()}),
               std::invalid_argument);
  EXPECT_THROW(runner.run_points(plan, nullptr, nullptr, {0, 0}),
               std::invalid_argument);
}

TEST(SweepRunner, EstimateCostsPrefersMeasuredTimesAndFallsBackToHeuristic) {
  const auto plan = two_workload_plan();
  const SweepRunner runner(machine(), options());

  // No store: pure heuristic, increasing in thread count.
  const auto heuristic = runner.estimate_costs(plan, nullptr);
  ASSERT_EQ(heuristic.size(), plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i)
    EXPECT_EQ(heuristic[i], 1.0 + plan.points()[i].threads);

  // A store with one measured run: that point costs its wall-clock, the
  // rest keep the (rescaled) heuristic — and the result is deterministic.
  ResultStore store;
  SimRunResult r;
  r.seconds = 0.5;
  store.put(runner.key_for(plan, 0), r, "host", /*run_seconds=*/7.5);
  const auto mixed = runner.estimate_costs(plan, &store);
  EXPECT_EQ(mixed[0], 7.5);
  // Point 0 is a baseline (heuristic 1.0) measured at 7.5 s, so the
  // heuristic population is rescaled by 7.5/1.0.
  for (std::size_t i = 1; i < plan.size(); ++i)
    EXPECT_EQ(mixed[i], heuristic[i] * 7.5);
  EXPECT_EQ(mixed, runner.estimate_costs(plan, &store));
}

TEST(ResultTable, HasAndGetErrorPaths) {
  ExperimentPlan plan;
  const auto w = plan.add_workload({"w", synth_factory()});
  plan.add_point(w, Resource::kCacheStorage, 0);
  plan.add_point(w, Resource::kCacheStorage, 1);
  const SweepRunner runner(machine(), options());
  const auto table = runner.run(plan);

  EXPECT_TRUE(table.has(w, Resource::kCacheStorage, 1));
  // A baseline satisfies has() for either nominal resource.
  EXPECT_TRUE(table.has(w, Resource::kBandwidth, 0));
  EXPECT_FALSE(table.has(w, Resource::kBandwidth, 1));
  EXPECT_FALSE(table.has(w + 1, Resource::kCacheStorage, 0));

  ASSERT_NE(table.get(w, Resource::kCacheStorage, 1), nullptr);
  EXPECT_EQ(table.get(w, Resource::kCacheStorage, 1),
            &table.at(w, Resource::kCacheStorage, 1));
  // get() is the non-throwing sibling of at(): same keys, nullptr instead
  // of std::out_of_range.
  EXPECT_EQ(table.get(w, Resource::kBandwidth, 1), nullptr);
  EXPECT_EQ(table.get(w + 1, Resource::kCacheStorage, 0), nullptr);
  EXPECT_THROW(table.at(w, Resource::kBandwidth, 1), std::out_of_range);
  EXPECT_THROW(table.at(w + 1, Resource::kCacheStorage, 0),
               std::out_of_range);
}

TEST(SweepRunner, SeedsDependOnPlanIndexOnly) {
  const SweepRunner runner(machine(), options());
  EXPECT_NE(runner.seed_for(0), runner.seed_for(1));
  EXPECT_EQ(runner.seed_for(3), runner.seed_for(3));
  SweepRunnerOptions fixed = options();
  fixed.mix_seed_per_point = false;
  fixed.seed = 42;
  const SweepRunner constant(machine(), fixed);
  EXPECT_EQ(constant.seed_for(0), 42u);
  EXPECT_EQ(constant.seed_for(7), 42u);
}

TEST(SweepRunner, TableIsInvariantUnderThreadCount) {
  const auto plan = two_workload_plan();
  const SweepRunner runner(machine(), options());
  const auto serial = runner.run(plan, nullptr);
  ThreadPool one(1);
  const auto pooled_one = runner.run(plan, &one);
  ThreadPool four(4);
  const auto pooled_four = runner.run(plan, &four);
  expect_identical(plan, serial, pooled_one);
  expect_identical(plan, serial, pooled_four);
}

TEST(SweepRunner, BaselineIsSharedAcrossResources) {
  ExperimentPlan plan;
  const auto w = plan.add_workload({"w", synth_factory()});
  plan.add_sweep(w, Resource::kCacheStorage, 0, 1);
  plan.add_sweep(w, Resource::kBandwidth, 0, 1);
  const SweepRunner runner(machine(), options());
  const auto table = runner.run(plan);
  EXPECT_EQ(&table.at(w, Resource::kCacheStorage, 0),
            &table.at(w, Resource::kBandwidth, 0));
  EXPECT_DOUBLE_EQ(table.slowdown(w, Resource::kBandwidth, 0), 1.0);
}

TEST(SweepRunner, MissingBaselineIsAHardError) {
  ExperimentPlan plan;
  const auto w = plan.add_workload({"trimmed", synth_factory()});
  plan.add_point(w, Resource::kCacheStorage, 1);
  const SweepRunner runner(machine(), options());
  const auto table = runner.run(plan);
  EXPECT_FALSE(table.has_baseline(w));
  EXPECT_THROW(table.baseline(w), std::out_of_range);
  EXPECT_THROW(table.slowdown(w, Resource::kCacheStorage, 1),
               std::out_of_range);
  EXPECT_THROW(table.at(w, Resource::kBandwidth, 2), std::out_of_range);
  EXPECT_NO_THROW(table.at(w, Resource::kCacheStorage, 1));
}

TEST(SweepRunner, PropagatesTimeoutBudget) {
  ExperimentPlan plan;
  const auto w = plan.add_workload({"w", synth_factory()});
  plan.add_point(w, Resource::kCacheStorage, 0);
  SweepRunnerOptions opts = options();
  opts.max_cycles = 1000;  // far below what the workload needs
  const SweepRunner runner(machine(), opts);
  const auto table = runner.run(plan);
  EXPECT_TRUE(table.baseline(w).timed_out);
}

TEST(SweepRunner, WorkloadExceptionsSurfaceAfterTheBarrier) {
  ExperimentPlan plan;
  const auto w = plan.add_workload(
      {"broken", [](sim::Engine&) -> WorkloadInfo {
         throw std::runtime_error("factory exploded");
       }});
  plan.add_point(w, Resource::kCacheStorage, 0);
  const SweepRunner runner(machine(), options());
  EXPECT_THROW(runner.run(plan), std::runtime_error);
  ThreadPool pool(2);
  EXPECT_THROW(runner.run(plan, &pool), std::runtime_error);
}

/// The calibrations only translate thread counts into availability labels;
/// synthetic tables keep the test fast.
CapacityCalibration fake_capacity() {
  CapacityCalibration c;
  const double mb = machine().l3.size_bytes / 20.0;
  c.available_bytes = {20 * mb, 15 * mb, 12 * mb, 7 * mb, 5 * mb, 2.5 * mb};
  c.stddev_bytes.assign(6, 0.0);
  return c;
}

BandwidthCalibration fake_bandwidth() {
  BandwidthCalibration b;
  b.peak_bytes_per_sec = 17e9;
  b.used_bytes_per_sec = {0.0, 2.8e9, 5.6e9};
  return b;
}

TEST(SweepEquivalence, MeasurerSweepMatchesLegacySerialPath) {
  // The pre-refactor ActiveMeasurer::sweep: one backend, one seed, a
  // strictly serial k = 0..max loop. The runner-backed sweep (here with a
  // pool of 4) must be bit-identical.
  const auto factory = synth_factory(1.2, 10'000);
  const auto cap = fake_capacity();
  const auto bw_calib = fake_bandwidth();

  SimBackend legacy_backend(machine(), /*seed=*/5);
  std::vector<SweepPoint> legacy;
  for (std::uint32_t k = 0; k <= 3; ++k) {
    const auto run = legacy_backend.run(
        factory, InterferenceSpec::storage(k, cs_cfg()));
    legacy.push_back({k, run.seconds, cap.available_bytes.at(k)});
  }

  SimBackend backend(machine(), /*seed=*/5);
  ActiveMeasurer measurer(backend, cap, bw_calib);
  ThreadPool pool(4);
  measurer.set_pool(&pool);
  const auto sweep =
      measurer.sweep(factory, Resource::kCacheStorage, 3, cs_cfg(), bw_cfg());

  ASSERT_EQ(sweep.points.size(), legacy.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(sweep.points[i].threads, legacy[i].threads);
    EXPECT_EQ(sweep.points[i].seconds, legacy[i].seconds);  // bitwise
    EXPECT_EQ(sweep.points[i].resource_available,
              legacy[i].resource_available);
  }
}

TEST(SweepGrid, SharesBaselineAndMatchesIndividualSweeps) {
  const auto factory = synth_factory(1.2, 10'000);
  SimBackend backend(machine(), /*seed=*/9);
  ActiveMeasurer measurer(backend, fake_capacity(), fake_bandwidth());
  const auto grids = measurer.sweep_grid(
      {{factory, "app", /*storage_threads=*/2, /*bandwidth_threads=*/1}},
      cs_cfg(), bw_cfg());
  ASSERT_EQ(grids.size(), 1u);
  const auto& g = grids[0];
  ASSERT_EQ(g.storage.points.size(), 3u);
  ASSERT_EQ(g.bandwidth.points.size(), 2u);
  // The two sweeps share the zero-interference run.
  EXPECT_EQ(g.storage.points[0].seconds, g.bandwidth.points[0].seconds);

  // And each sweep equals what a standalone sweep produces.
  SimBackend backend2(machine(), /*seed=*/9);
  ActiveMeasurer single(backend2, fake_capacity(), fake_bandwidth());
  const auto cap_sweep =
      single.sweep(factory, Resource::kCacheStorage, 2, cs_cfg(), bw_cfg());
  for (std::size_t i = 0; i < cap_sweep.points.size(); ++i)
    EXPECT_EQ(g.storage.points[i].seconds, cap_sweep.points[i].seconds);
}

}  // namespace
}  // namespace am::measure

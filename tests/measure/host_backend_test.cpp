#include "measure/host_backend.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace am::measure {
namespace {

/// Threads of this process per /proc/self/status — how we observe that no
/// interference thread outlives a run.
int process_thread_count() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line))
    if (line.rfind("Threads:", 0) == 0)
      return std::stoi(line.substr(sizeof("Threads:") - 1));
  return -1;
}

HostRunOptions quick(Resource r, std::uint32_t count) {
  HostRunOptions o;
  o.resource = r;
  o.count = count;
  o.cs_buffer_bytes = 256 * 1024;
  o.bw_buffer_bytes = 64 * 1024;
  o.bw_num_buffers = 4;
  o.settle_seconds = 0.01;
  return o;
}

int busy_work() {
  // A small deterministic workload: sum over a modest buffer.
  std::vector<int> buf(1 << 16, 1);
  int acc = 0;
  for (int pass = 0; pass < 50; ++pass)
    for (const int v : buf) acc += v;
  return acc;
}

TEST(HostBackend, TimesWorkloadWithoutInterference) {
  HostBackend backend;
  std::atomic<int> sink{0};
  const auto result =
      backend.run([&] { sink = busy_work(); }, quick(Resource::kCacheStorage, 0));
  EXPECT_GT(result.seconds, 0.0);
  EXPECT_EQ(result.interference_iterations, 0u);
  EXPECT_EQ(sink.load(), 50 * (1 << 16));
}

TEST(HostBackend, RunsUnderStorageInterference) {
  HostBackend backend;
  std::atomic<int> sink{0};
  const auto result = backend.run([&] { sink = busy_work(); },
                                  quick(Resource::kCacheStorage, 2));
  EXPECT_GT(result.seconds, 0.0);
  EXPECT_GT(result.interference_iterations, 0u);
}

TEST(HostBackend, RunsUnderBandwidthInterference) {
  HostBackend backend;
  std::atomic<int> sink{0};
  const auto result = backend.run([&] { sink = busy_work(); },
                                  quick(Resource::kBandwidth, 1));
  EXPECT_GT(result.seconds, 0.0);
  EXPECT_GT(result.interference_iterations, 0u);
}

TEST(HostBackend, ThrowingWorkloadStopsInterferenceThreads) {
  HostBackend backend;
  const int before = process_thread_count();
  ASSERT_GT(before, 0);
  EXPECT_THROW(
      backend.run([] { throw std::runtime_error("workload failed"); },
                  quick(Resource::kCacheStorage, 2)),
      std::runtime_error);
  // The RAII guard joins the interference threads during unwinding, so
  // the count is back immediately; poll briefly anyway for kernel lag.
  int after = -1;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  do {
    after = process_thread_count();
    if (after <= before) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  } while (std::chrono::steady_clock::now() < deadline);
  EXPECT_LE(after, before);

  // And the backend stays usable: leaked thrashers would have skewed
  // any subsequent measurement.
  const auto result =
      backend.run([] {}, quick(Resource::kBandwidth, 1));
  EXPECT_GT(result.seconds, 0.0);
}

TEST(HostBackend, PerfCountersOptional) {
  HostBackend backend;
  auto opts = quick(Resource::kCacheStorage, 0);
  opts.use_perf_counters = true;
  const auto result = backend.run([] {}, opts);
  // Either we got counters (bare metal) or we gracefully got nullopt
  // (container); both are valid outcomes.
  if (result.counters) {
    EXPECT_GT(result.counters->cycles, 0u);
  }
  opts.use_perf_counters = false;
  const auto result2 = backend.run([] {}, opts);
  EXPECT_FALSE(result2.counters.has_value());
}

}  // namespace
}  // namespace am::measure

#include "measure/host_backend.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace am::measure {
namespace {

HostRunOptions quick(Resource r, std::uint32_t count) {
  HostRunOptions o;
  o.resource = r;
  o.count = count;
  o.cs_buffer_bytes = 256 * 1024;
  o.bw_buffer_bytes = 64 * 1024;
  o.bw_num_buffers = 4;
  o.settle_seconds = 0.01;
  return o;
}

int busy_work() {
  // A small deterministic workload: sum over a modest buffer.
  std::vector<int> buf(1 << 16, 1);
  int acc = 0;
  for (int pass = 0; pass < 50; ++pass)
    for (const int v : buf) acc += v;
  return acc;
}

TEST(HostBackend, TimesWorkloadWithoutInterference) {
  HostBackend backend;
  std::atomic<int> sink{0};
  const auto result =
      backend.run([&] { sink = busy_work(); }, quick(Resource::kCacheStorage, 0));
  EXPECT_GT(result.seconds, 0.0);
  EXPECT_EQ(result.interference_iterations, 0u);
  EXPECT_EQ(sink.load(), 50 * (1 << 16));
}

TEST(HostBackend, RunsUnderStorageInterference) {
  HostBackend backend;
  std::atomic<int> sink{0};
  const auto result = backend.run([&] { sink = busy_work(); },
                                  quick(Resource::kCacheStorage, 2));
  EXPECT_GT(result.seconds, 0.0);
  EXPECT_GT(result.interference_iterations, 0u);
}

TEST(HostBackend, RunsUnderBandwidthInterference) {
  HostBackend backend;
  std::atomic<int> sink{0};
  const auto result = backend.run([&] { sink = busy_work(); },
                                  quick(Resource::kBandwidth, 1));
  EXPECT_GT(result.seconds, 0.0);
  EXPECT_GT(result.interference_iterations, 0u);
}

TEST(HostBackend, PerfCountersOptional) {
  HostBackend backend;
  auto opts = quick(Resource::kCacheStorage, 0);
  opts.use_perf_counters = true;
  const auto result = backend.run([] {}, opts);
  // Either we got counters (bare metal) or we gracefully got nullopt
  // (container); both are valid outcomes.
  if (result.counters) {
    EXPECT_GT(result.counters->cycles, 0u);
  }
  opts.use_perf_counters = false;
  const auto result2 = backend.run([] {}, opts);
  EXPECT_FALSE(result2.counters.has_value());
}

}  // namespace
}  // namespace am::measure

#include "measure/host_measurer.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace am::measure {
namespace {

HostSweepOptions quick(std::uint32_t max_threads) {
  HostSweepOptions o;
  o.max_threads = max_threads;
  o.repetitions = 2;
  o.cs_buffer_bytes = 128 * 1024;
  o.bw_buffer_bytes = 64 * 1024;
  return o;
}

TEST(HostMeasurer, SweepProducesAllPoints) {
  HostMeasurer measurer;
  std::vector<int> buf(1 << 14, 1);
  volatile int sink = 0;
  const auto result = measurer.sweep(
      [&] {
        int acc = 0;
        for (int pass = 0; pass < 20; ++pass)
          for (const int v : buf) acc += v;
        sink = acc;
      },
      quick(2));
  ASSERT_EQ(result.points.size(), 3u);
  for (const auto& p : result.points) {
    EXPECT_GT(p.seconds_mean, 0.0);
    EXPECT_GE(p.seconds_stddev, 0.0);
  }
}

TEST(HostMeasurer, SingleRepetitionHasZeroStddev) {
  HostMeasurer measurer;
  auto opts = quick(0);
  opts.repetitions = 1;
  const auto result = measurer.sweep([] {}, opts);
  ASSERT_EQ(result.points.size(), 1u);
  EXPECT_DOUBLE_EQ(result.points[0].seconds_stddev, 0.0);
}

TEST(HostSweepResult, DegradationOnsetDetection) {
  HostSweepResult r;
  r.points = {{0, 1.00, 0.0, {}}, {1, 1.02, 0.0, {}}, {2, 1.20, 0.0, {}}};
  EXPECT_EQ(r.degradation_onset(0.05), 2);
  EXPECT_EQ(r.degradation_onset(0.5), -1);
  HostSweepResult empty;
  EXPECT_EQ(empty.degradation_onset(), -1);
}

TEST(HostSweepResult, OnsetUsesFirstExceedingPoint) {
  HostSweepResult r;
  r.points = {{0, 1.0, 0.0, {}},
              {1, 1.5, 0.0, {}},
              {2, 1.01, 0.0, {}}};  // noisy dip after onset
  EXPECT_EQ(r.degradation_onset(0.05), 1);
}

}  // namespace
}  // namespace am::measure

#include "measure/host_measurer.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace am::measure {
namespace {

HostSweepOptions quick(std::uint32_t max_threads) {
  HostSweepOptions o;
  o.max_threads = max_threads;
  o.repetitions = 2;
  o.cs_buffer_bytes = 128 * 1024;
  o.bw_buffer_bytes = 64 * 1024;
  return o;
}

TEST(HostMeasurer, SweepProducesAllPoints) {
  HostMeasurer measurer;
  std::vector<int> buf(1 << 14, 1);
  volatile int sink = 0;
  const auto result = measurer.sweep(
      [&] {
        int acc = 0;
        for (int pass = 0; pass < 20; ++pass)
          for (const int v : buf) acc += v;
        sink = acc;
      },
      quick(2));
  ASSERT_EQ(result.points.size(), 3u);
  for (const auto& p : result.points) {
    EXPECT_GT(p.seconds_mean, 0.0);
    EXPECT_GE(p.seconds_stddev, 0.0);
  }
}

TEST(HostMeasurer, SingleRepetitionHasZeroStddev) {
  HostMeasurer measurer;
  auto opts = quick(0);
  opts.repetitions = 1;
  const auto result = measurer.sweep([] {}, opts);
  ASSERT_EQ(result.points.size(), 1u);
  EXPECT_DOUBLE_EQ(result.points[0].seconds_stddev, 0.0);
}

TEST(HostMeasurer, MeanCountersAveragesAcrossRepetitions) {
  // The sweep must not report only the last repetition's counters next to
  // a mean time; means are taken over the reps that produced counters.
  const PerfValues a{100, 200, 50, 10};
  const PerfValues b{200, 400, 70, 20};
  const PerfValues c{330, 630, 99, 33};
  const auto mean = HostMeasurer::mean_counters({a, b, c});
  ASSERT_TRUE(mean.has_value());
  EXPECT_EQ(mean->cycles, 210u);            // (100+200+330)/3
  EXPECT_EQ(mean->instructions, 410u);      // (200+400+630)/3
  EXPECT_EQ(mean->cache_references, 73u);   // 219/3
  EXPECT_EQ(mean->cache_misses, 21u);       // 63/3
}

TEST(HostMeasurer, MeanCountersSkipsMissingSamplesAndRounds) {
  const PerfValues a{10, 0, 0, 0};
  const PerfValues b{13, 0, 0, 0};
  // nullopt reps (perf denied for one run) are excluded from the mean.
  const auto mean = HostMeasurer::mean_counters({a, std::nullopt, b});
  ASSERT_TRUE(mean.has_value());
  EXPECT_EQ(mean->cycles, 12u);  // 23/2 rounded to nearest

  EXPECT_FALSE(HostMeasurer::mean_counters({}).has_value());
  EXPECT_FALSE(
      HostMeasurer::mean_counters({std::nullopt, std::nullopt}).has_value());
}

TEST(HostSweepResult, DegradationOnsetDetection) {
  HostSweepResult r;
  r.points = {{0, 1.00, 0.0, {}}, {1, 1.02, 0.0, {}}, {2, 1.20, 0.0, {}}};
  EXPECT_EQ(r.degradation_onset(0.05), 2);
  EXPECT_EQ(r.degradation_onset(0.5), -1);
  HostSweepResult empty;
  EXPECT_EQ(empty.degradation_onset(), -1);
}

TEST(HostSweepResult, OnsetUsesFirstExceedingPoint) {
  HostSweepResult r;
  r.points = {{0, 1.0, 0.0, {}},
              {1, 1.5, 0.0, {}},
              {2, 1.01, 0.0, {}}};  // noisy dip after onset
  EXPECT_EQ(r.degradation_onset(0.05), 1);
}

}  // namespace
}  // namespace am::measure

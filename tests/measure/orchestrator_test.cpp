// SweepOrchestrator failure-path coverage with /bin/sh stand-in workers:
// real engine-running workers are exercised end to end by the
// smoke.amsweep ctest entry; here the workers are tiny scripts so the
// supervision logic (retry on kill, retry-budget exhaustion + manifest,
// usage fail-fast, merge) is testable in milliseconds. The pre-created
// shard store files play the part of a worker's persisted slice.
#include "measure/orchestrator.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace am::measure {
namespace {

namespace fs = std::filesystem;

ScenarioKey key(const std::string& workload, std::uint32_t threads) {
  return ScenarioKey::make("machine-fp", workload, Resource::kCacheStorage,
                           threads, "cs:b4096:n4:w1000", 7, 1'000'000);
}

SimRunResult result(double seconds) {
  SimRunResult r;
  r.seconds = seconds;
  r.cycles = 1000;
  return r;
}

class OrchestratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("am_orchestrator_test_" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir() const { return dir_.string(); }

  /// Pre-creates shard i/n's store file holding one record, as if a worker
  /// had already persisted its slice.
  void seed_shard_store(std::size_t i, std::size_t n) {
    ResultStore store;
    store.put(key("workload-" + std::to_string(i), 1), result(0.1 + i),
              "host-fp");
    store.save(store_path(dir(), "drv", {i, n}));
  }

  /// Options for sh-script workers: the script body receives the appended
  /// shard flags as positional parameters and may ignore them.
  OrchestratorOptions opts(const std::string& script, std::size_t shards,
                           std::size_t retries) {
    OrchestratorOptions o;
    o.worker_command = {"/bin/sh", "-c", script, "worker"};
    o.results_dir = dir();
    o.driver = "drv";
    o.shards = shards;
    o.workers = 2;
    o.retries = retries;
    o.poll_seconds = 0.005;
    // sh-script stand-ins have no --emit-plan contract; probing them
    // would only add a wasted spawn (and claim test fault injections).
    o.probe_plan = false;
    return o;
  }

  std::string manifest() const {
    std::ifstream in(SweepOrchestrator::manifest_path(dir(), "drv"));
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

  fs::path dir_;
};

TEST_F(OrchestratorTest, RejectsUnusableConfigurations) {
  OrchestratorOptions o = opts("exit 0", 1, 0);
  o.worker_command.clear();
  EXPECT_THROW(SweepOrchestrator{o}, std::invalid_argument);
  o = opts("exit 0", 1, 0);
  o.results_dir.clear();
  EXPECT_THROW(SweepOrchestrator{o}, std::invalid_argument);
  o = opts("exit 0", 1, 0);
  o.shards = 0;
  EXPECT_THROW(SweepOrchestrator{o}, std::invalid_argument);
  o = opts("exit 0", 1, 0);
  o.workers = 0;
  EXPECT_THROW(SweepOrchestrator{o}, std::invalid_argument);
}

TEST_F(OrchestratorTest, MergesShardStoresIntoCanonicalFile) {
  seed_shard_store(0, 2);
  seed_shard_store(1, 2);
  SweepOrchestrator orch(opts("exit 0", 2, 0));
  std::ostringstream log;
  const auto report = orch.run(log);
  EXPECT_TRUE(report.success) << log.str();
  EXPECT_TRUE(report.missing_shards.empty());
  EXPECT_EQ(report.merged_records, 2u);
  ASSERT_EQ(report.attempts.size(), 2u);

  const auto merged = ResultStore::load(report.merged_path);
  EXPECT_EQ(merged.size(), 2u);
  EXPECT_TRUE(merged.has(key("workload-0", 1)));
  EXPECT_TRUE(merged.has(key("workload-1", 1)));
  EXPECT_NE(manifest().find("status\tok"), std::string::npos);
}

TEST_F(OrchestratorTest, MergePreservesExistingCanonicalRecords) {
  // The canonical store may hold records from earlier runs (other scales,
  // other grids) — documented to sit idle in the file. Completing a sweep
  // must extend that cache, never replace it with only this grid's shards.
  ResultStore prior;
  prior.put(key("earlier-grid", 3), result(0.5), "host-fp");
  prior.save(store_path(dir(), "drv"));
  seed_shard_store(0, 2);
  seed_shard_store(1, 2);
  SweepOrchestrator orch(opts("exit 0", 2, 0));
  std::ostringstream log;
  const auto report = orch.run(log);
  EXPECT_TRUE(report.success) << log.str();
  EXPECT_EQ(report.merged_records, 3u);
  const auto merged = ResultStore::load(report.merged_path);
  EXPECT_TRUE(merged.has(key("earlier-grid", 3)));
  EXPECT_TRUE(merged.has(key("workload-0", 1)));
  EXPECT_TRUE(merged.has(key("workload-1", 1)));
}

TEST_F(OrchestratorTest, WorkerKilledMidShardIsRetried) {
  seed_shard_store(0, 1);
  // First attempt claims the marker and dies as if SIGKILLed mid-shard;
  // the retry finds no marker and succeeds.
  const auto marker = dir() + "/crash.marker";
  std::ofstream(marker) << "";
  SweepOrchestrator orch(
      opts("if rm " + marker + " 2>/dev/null; then kill -9 $$; fi; exit 0",
           1, 1));
  std::ostringstream log;
  const auto report = orch.run(log);
  EXPECT_TRUE(report.success) << log.str();
  ASSERT_EQ(report.attempts.size(), 2u);
  EXPECT_TRUE(report.attempts[0].status.signaled);
  EXPECT_EQ(report.attempts[0].status.signal, 9);
  EXPECT_TRUE(report.attempts[1].status.success());
  EXPECT_EQ(report.attempts[1].attempt, 1u);
  EXPECT_NE(manifest().find("signal 9"), std::string::npos);
}

TEST_F(OrchestratorTest, ExhaustedRetryBudgetFailsAndNamesTheShard) {
  seed_shard_store(0, 2);  // shard 0 fine; shard 1's worker always dies
  // The appended flags arrive as positional params: $1=--results-dir
  // $2=<dir> $3=--shard $4=i/n $5=--worker.
  SweepOrchestrator orch(opts(
      "case \"$4\" in 0/2) exit 0 ;; *) exit 3 ;; esac", 2, 1));
  std::ostringstream log;
  const auto report = orch.run(log);
  EXPECT_FALSE(report.success) << log.str();
  ASSERT_EQ(report.missing_shards.size(), 1u);
  EXPECT_EQ(report.missing_shards[0], 1u);
  // 1 success for shard 0 + (1 + retries) failures for shard 1.
  EXPECT_EQ(report.attempts.size(), 3u);
  const auto m = manifest();
  EXPECT_NE(m.find("status\tfailed"), std::string::npos);
  EXPECT_NE(m.find("missing\t1"), std::string::npos);
  // No merged store may appear for an incomplete sweep.
  EXPECT_FALSE(fs::exists(store_path(dir(), "drv")));
}

TEST_F(OrchestratorTest, UsageExitFailsFastWithoutRetry) {
  SweepOrchestrator orch(opts("exit 2", 2, 5));
  std::ostringstream log;
  const auto report = orch.run(log);
  EXPECT_FALSE(report.success);
  EXPECT_FALSE(report.error.empty());
  // Fail-fast: nowhere near (1 + retries) * shards attempts.
  EXPECT_LE(report.attempts.size(), 2u);
  EXPECT_EQ(report.missing_shards.size(), 2u);
}

TEST_F(OrchestratorTest, SuccessfulExitWithoutStoreFileIsAFailure) {
  // Workers must persist their slice; exit 0 with no store file is a lie
  // the orchestrator catches (and retries — here until the budget ends).
  SweepOrchestrator orch(opts("exit 0", 1, 1));
  std::ostringstream log;
  const auto report = orch.run(log);
  EXPECT_FALSE(report.success) << log.str();
  EXPECT_EQ(report.attempts.size(), 2u);
  EXPECT_EQ(report.missing_shards.size(), 1u);
}

TEST_F(OrchestratorTest, ReadsExecutedCountFromMetaSidecar) {
  seed_shard_store(0, 1);
  const auto store = store_path(dir(), "drv", {0, 1});
  std::ofstream(store + ".meta") << "executed 5\nplanned 9\nrecords 1\n";
  SweepOrchestrator orch(opts("exit 0", 1, 0));
  std::ostringstream log;
  const auto report = orch.run(log);
  EXPECT_TRUE(report.success) << log.str();
  ASSERT_EQ(report.attempts.size(), 1u);
  EXPECT_EQ(report.attempts[0].executed, 5u);
  EXPECT_EQ(report.engine_runs, 5u);
  EXPECT_NE(manifest().find("engine_runs\t5"), std::string::npos);
}

TEST_F(OrchestratorTest, StaleHeartbeatGetsWorkerKilled) {
  seed_shard_store(0, 1);
  const auto hb = store_path(dir(), "drv", {0, 1}) + ".hb";
  // The worker fakes a heartbeat that then never advances; the
  // orchestrator must kill it long before the 30 s sleep finishes.
  auto o = opts("printf '1\\t1\\n' > " + hb + "; sleep 30", 1, 0);
  o.stall_timeout_seconds = 0.2;
  SweepOrchestrator orch(o);
  std::ostringstream log;
  const auto report = orch.run(log);
  EXPECT_FALSE(report.success) << log.str();
  ASSERT_EQ(report.attempts.size(), 1u);
  EXPECT_TRUE(report.attempts[0].stalled);
  EXPECT_TRUE(report.attempts[0].status.signaled);
  EXPECT_LT(report.attempts[0].wall_seconds, 10.0);
  EXPECT_NE(manifest().find("[stalled]"), std::string::npos);
}

TEST_F(OrchestratorTest, SequenceStuckHeartbeatIsAStallEvenWithFreshMtimes) {
  // NTP-immunity regression: this worker rewrites its heartbeat file
  // forever — fresh mtime every 50 ms — but the beat sequence number
  // never advances. Mtime-based staleness would call it alive
  // indefinitely; sequence-progress supervision must kill it.
  seed_shard_store(0, 1);
  const auto hb = store_path(dir(), "drv", {0, 1}) + ".hb";
  auto o = opts("while :; do printf '1\\t1\\n' > " + hb +
                    "; sleep 0.05; done",
                1, 0);
  o.stall_timeout_seconds = 0.3;
  SweepOrchestrator orch(o);
  std::ostringstream log;
  const auto report = orch.run(log);
  EXPECT_FALSE(report.success) << log.str();
  ASSERT_EQ(report.attempts.size(), 1u);
  EXPECT_TRUE(report.attempts[0].stalled);
  EXPECT_TRUE(report.attempts[0].status.signaled);
  EXPECT_LT(report.attempts[0].wall_seconds, 10.0);
  EXPECT_NE(log.str().find("heartbeat stuck at beat 1"), std::string::npos);
}

TEST_F(OrchestratorTest, StaticProbeSkipsEmptyShards) {
  // A probed plan of 1 point makes shards 1 and 2 of 3 provably empty:
  // the orchestrator must not fork, supervise, or merge workers for
  // them.
  seed_shard_store(0, 3);
  auto o = opts(
      "case \"$3\" in --emit-plan) printf '#am-plan-info v1\\npoints\\t1\\n'"
      " > \"$4.tmp\" && mv \"$4.tmp\" \"$4\";; esac; exit 0",
      3, 0);
  o.probe_plan = true;
  SweepOrchestrator orch(o);
  std::ostringstream log;
  const auto report = orch.run(log);
  EXPECT_TRUE(report.success) << log.str();
  EXPECT_EQ(report.plan_points, 1u);
  EXPECT_EQ(report.skipped_empty, 2u);
  EXPECT_EQ(report.attempts.size(), 1u);  // only shard 0 ever spawned
  EXPECT_EQ(report.merged_records, 1u);
  EXPECT_NE(manifest().find("skipped_empty\t2"), std::string::npos);
}

TEST_F(OrchestratorTest, StaticProbeFailureFallsBackToSpawningAllShards) {
  // Custom or older drivers without --emit-plan must keep working: a
  // failed probe degrades to the un-probed static schedule.
  seed_shard_store(0, 2);
  seed_shard_store(1, 2);
  auto o = opts("case \"$3\" in --emit-plan) exit 3;; esac; exit 0", 2, 0);
  o.probe_plan = true;
  SweepOrchestrator orch(o);
  std::ostringstream log;
  const auto report = orch.run(log);
  EXPECT_TRUE(report.success) << log.str();
  EXPECT_EQ(report.plan_points, SIZE_MAX);  // never learned
  EXPECT_EQ(report.attempts.size(), 2u);
  EXPECT_NE(log.str().find("probe failed"), std::string::npos);
}

/// A /bin/sh lease worker: answers the --emit-plan probe with a 3-point
/// plan, then acknowledges every offered lease until the done offer.
/// The appended flags arrive as $1=--results-dir $2=<dir> then either
/// $3=--emit-plan $4=<file> or $3=--lease $4=<file> $5=--worker.
constexpr const char* kLeaseWorkerScript = R"sh(
case "$3" in
  --emit-plan)
    printf '#am-plan-info v1\npoints\t3\n' > "$4.tmp" && mv "$4.tmp" "$4"
    exit 0 ;;
  --lease)
    lease=$4; last=
    while :; do
      if [ -f "$lease" ]; then
        id=$(awk '$1=="lease"{print $2}' "$lease")
        dn=$(awk '$1=="done"{print $2}' "$lease")
        if [ -n "$id" ] && [ "$id" != "$last" ]; then
          if [ "$dn" = "1" ]; then exit 0; fi
          printf '#am-lease-ack v1\nlease\t%s\npoints\t1\nexecuted\t2\nwall\t0.25\n' \
            "$id" > "$lease.ack.tmp" && mv "$lease.ack.tmp" "$lease.ack"
          last=$id
        fi
      fi
      sleep 0.01
    done ;;
esac
exit 0
)sh";

TEST_F(OrchestratorTest, LeaseModeDrainsTheQueueAndRecordsLoadStats) {
  auto o = opts(kLeaseWorkerScript, 2, 0);
  o.schedule = Schedule::kLease;
  o.probe_plan = true;
  SweepOrchestrator orch(o);
  std::ostringstream log;
  const auto report = orch.run(log);
  EXPECT_TRUE(report.success) << log.str();
  EXPECT_EQ(report.schedule, Schedule::kLease);
  EXPECT_EQ(report.plan_points, 3u);
  // 3 points → 3 singleton batches, every one acknowledged, each ack
  // reporting 2 engine runs.
  EXPECT_EQ(report.leases.size(), 3u);
  for (const auto& lease : report.leases) {
    EXPECT_TRUE(lease.completed);
    EXPECT_EQ(lease.executed, 2u);
  }
  EXPECT_EQ(report.engine_runs, 6u);
  EXPECT_TRUE(report.missing_points.empty());
  ASSERT_EQ(report.worker_stats.size(), 2u);
  std::size_t batches = 0;
  for (const auto& ws : report.worker_stats) batches += ws.batches;
  EXPECT_EQ(batches, 3u);
  const auto m = manifest();
  EXPECT_NE(m.find("schedule\tlease"), std::string::npos);
  EXPECT_NE(m.find("plan_points\t3"), std::string::npos);
  EXPECT_NE(m.find("worker\t0\t"), std::string::npos);
  EXPECT_NE(m.find("worker\t1\t"), std::string::npos);
}

TEST_F(OrchestratorTest, LeaseModeRequiresASuccessfulProbe) {
  auto o = opts("case \"$3\" in --emit-plan) exit 3;; esac; exit 0", 2, 0);
  o.schedule = Schedule::kLease;
  o.probe_plan = true;
  SweepOrchestrator orch(o);
  std::ostringstream log;
  const auto report = orch.run(log);
  EXPECT_FALSE(report.success);
  EXPECT_NE(report.error.find("probe"), std::string::npos) << report.error;
  EXPECT_TRUE(report.attempts.empty());  // no workers ever spawned
}

TEST_F(OrchestratorTest, LeaseModeExhaustsPerPointBudgetAndNamesPoints) {
  // Workers that die holding a lease charge each leased point one
  // failure; once a point's budget is gone the sweep fails and the
  // manifest names it.
  auto o = opts(
      "case \"$3\" in --emit-plan) printf '#am-plan-info v1\\npoints\\t2\\n'"
      " > \"$4.tmp\" && mv \"$4.tmp\" \"$4\"; exit 0;; esac; exit 3",
      2, 1);
  o.schedule = Schedule::kLease;
  o.probe_plan = true;
  o.workers = 1;
  SweepOrchestrator orch(o);
  std::ostringstream log;
  const auto report = orch.run(log);
  EXPECT_FALSE(report.success) << log.str();
  EXPECT_EQ(report.missing_points.size(), 2u);
  const auto m = manifest();
  EXPECT_NE(m.find("missing_point\t0"), std::string::npos);
  EXPECT_NE(m.find("missing_point\t1"), std::string::npos);
  // No merged store may appear for an incomplete sweep.
  EXPECT_FALSE(fs::exists(store_path(dir(), "drv")));
}

/// Like kLeaseWorkerScript but with a 4-point plan, acks sized to the
/// offered batch, and a one-shot poison: the first worker to claim
/// (atomically rm) the marker dies with the retryable exit code while
/// holding its lease.
constexpr const char* kPoisonOnceLeaseWorkerScript = R"sh(
case "$3" in
  --emit-plan)
    printf '#am-plan-info v1\npoints\t4\n' > "$4.tmp" && mv "$4.tmp" "$4"
    exit 0 ;;
  --lease)
    lease=$4; last=
    while :; do
      if [ -f "$lease" ]; then
        id=$(awk '$1=="lease"{print $2}' "$lease")
        dn=$(awk '$1=="done"{print $2}' "$lease")
        if [ -n "$id" ] && [ "$id" != "$last" ]; then
          if [ "$dn" = "1" ]; then exit 0; fi
          if rm "$2/poison.marker" 2>/dev/null; then exit 3; fi
          np=$(awk '$1=="points"{print NF-1}' "$lease")
          printf '#am-lease-ack v1\nlease\t%s\npoints\t%s\nexecuted\t1\nwall\t0.1\n' \
            "$id" "$np" > "$lease.ack.tmp" && mv "$lease.ack.tmp" "$lease.ack"
          last=$id
        fi
      fi
      sleep 0.01
    done ;;
esac
exit 0
)sh";

TEST_F(OrchestratorTest, DeadWorkersBatchIsSplitOnRequeue) {
  // One batch holds the whole 4-point plan; the first worker dies with
  // it. The requeue must split the survivors in half — two 2-point
  // batches under fresh lease ids — instead of re-offering all 4 as one
  // block, so repeated crashes bisect toward a poison point.
  { std::ofstream(dir_ / "poison.marker") << "x"; }
  auto o = opts(kPoisonOnceLeaseWorkerScript, 2, /*retries=*/2);
  o.schedule = Schedule::kLease;
  o.probe_plan = true;
  o.lease_batches = 1;
  SweepOrchestrator orch(o);
  std::ostringstream log;
  const auto report = orch.run(log);
  EXPECT_TRUE(report.success) << log.str();
  ASSERT_EQ(report.leases.size(), 3u);
  EXPECT_FALSE(report.leases[0].completed);
  EXPECT_EQ(report.leases[0].points, 4u);
  EXPECT_EQ(report.leases[1].points, 2u);
  EXPECT_EQ(report.leases[2].points, 2u);
  EXPECT_TRUE(report.leases[1].completed);
  EXPECT_TRUE(report.leases[2].completed);
  // Fresh ids, never a reuse of the dead lease's id.
  EXPECT_NE(report.leases[1].id, report.leases[0].id);
  EXPECT_NE(report.leases[2].id, report.leases[0].id);
  EXPECT_TRUE(report.missing_points.empty());
  EXPECT_NE(log.str().find("split into 2 + 2"), std::string::npos)
      << log.str();
}

TEST_F(OrchestratorTest, LeaseModeRejectsCustomCommandsWithoutTheContract) {
  auto o = opts("exit 0", 1, 0);
  o.schedule = Schedule::kLease;
  o.append_worker_flags = false;
  EXPECT_THROW(SweepOrchestrator{o}, std::invalid_argument);
}

TEST_F(OrchestratorTest, WorkerWedgedBeforeFirstBeatIsKilled) {
  seed_shard_store(0, 1);
  // This worker never writes a heartbeat at all (wedged during startup,
  // before the writer thread exists). With append_worker_flags — real
  // --worker drivers beat immediately — time since spawn must trip the
  // same timeout, or the sweep would hang on the 30 s sleep.
  auto o = opts("sleep 30", 1, 0);
  o.stall_timeout_seconds = 0.2;
  SweepOrchestrator orch(o);
  std::ostringstream log;
  const auto report = orch.run(log);
  EXPECT_FALSE(report.success) << log.str();
  ASSERT_EQ(report.attempts.size(), 1u);
  EXPECT_TRUE(report.attempts[0].stalled);
  EXPECT_TRUE(report.attempts[0].status.signaled);
  EXPECT_LT(report.attempts[0].wall_seconds, 10.0);
  EXPECT_NE(log.str().find("no heartbeat"), std::string::npos);
}

}  // namespace
}  // namespace am::measure

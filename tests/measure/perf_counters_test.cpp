#include "measure/perf_counters.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace am::measure {
namespace {

TEST(PerfCounterSet, ConstructsWithoutCrashing) {
  PerfCounterSet set;
  if (!set.available())
    EXPECT_FALSE(set.unavailable_reason().empty());
  else
    EXPECT_TRUE(set.unavailable_reason().empty());
}

TEST(PerfCounterSet, CountsSomethingWhenAvailable) {
  PerfCounterSet set;
  if (!set.available())
    GTEST_SKIP() << "perf unavailable: " << set.unavailable_reason();
  set.start();
  volatile long acc = 0;
  // acc = acc + i, not +=: compound assignment to volatile is deprecated
  // in C++20 and -Werror=volatile under the ci preset.
  for (long i = 0; i < 1'000'000; ++i) acc = acc + i;
  const auto values = set.stop();
  EXPECT_GT(values.cycles, 0u);
  EXPECT_GT(values.instructions, 0u);
}

TEST(PerfCounterSet, MoveTransfersOwnership) {
  PerfCounterSet a;
  const bool was_available = a.available();
  PerfCounterSet b(std::move(a));
  EXPECT_EQ(b.available(), was_available);
  PerfCounterSet c;
  c = std::move(b);
  EXPECT_EQ(c.available(), was_available);
}

TEST(PerfValues, MissRateHandlesZeroReferences) {
  PerfValues v;
  EXPECT_DOUBLE_EQ(v.cache_miss_rate(), 0.0);
  v.cache_references = 100;
  v.cache_misses = 25;
  EXPECT_DOUBLE_EQ(v.cache_miss_rate(), 0.25);
}

TEST(PerfCounterSet, StopWithoutStartIsSafe) {
  PerfCounterSet set;
  const auto values = set.stop();
  (void)values;
  SUCCEED();
}

}  // namespace
}  // namespace am::measure

// PlanSpec wire-format coverage: serialize/parse round-trips (including
// randomized specs and bit-exact hexfloat doubles), canonical-form
// stability, the rejection catalogue for malformed input, and the
// bit-exactness contract that two processes building from equal specs
// agree on every ScenarioKey — the property that lets amsweepd seed one
// tenant's sweep from another's cached points.
#include "measure/plan_wire.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <string>
#include <vector>

namespace am::measure {
namespace {

PlanSpec sample_spec() {
  PlanSpec spec;
  spec.machine_scale = 512;
  spec.machine_nodes = 2;
  spec.mem_backend = "banked";
  spec.seed = 42;
  spec.max_cycles = 123456789;
  spec.mix_seed_per_point = true;
  spec.cs.buffer_bytes = 8192;
  spec.cs.batch_size = 4;
  spec.bw.buffer_bytes = 4096;
  spec.bw.num_buffers = 11;

  WorkloadWire uni;
  uni.kind = WorkloadWire::Kind::kSynthetic;
  uni.name = "uni-64";
  // The wire canonicalizes an empty dist_name to the workload name;
  // round-trip specs live in that canonical domain.
  uni.dist_name = "uni-64";
  uni.dist = model::DistKind::kUniform;
  uni.n = 64;
  uni.measured_accesses = 500;
  spec.workloads.push_back(uni);

  WorkloadWire norm;
  norm.kind = WorkloadWire::Kind::kSynthetic;
  norm.name = "norm-128";
  norm.dist_name = "normal mu=64 sigma=16";  // spaces are legal
  norm.dist = model::DistKind::kNormal;
  norm.n = 128;
  norm.dist_a = 64.0;
  norm.dist_b = 16.0;
  norm.measured_accesses = 400;
  spec.workloads.push_back(norm);

  WorkloadWire mcb;
  mcb.kind = WorkloadWire::Kind::kMcb;
  mcb.name = "mcb-p2000";
  mcb.ranks = 4;
  mcb.per_socket = 2;
  mcb.particles = 2000;
  mcb.steps = 1;
  mcb.app_scale = 8;
  spec.workloads.push_back(mcb);

  WorkloadWire lulesh;
  lulesh.kind = WorkloadWire::Kind::kLulesh;
  lulesh.name = "lulesh-e6";
  lulesh.ranks = 8;
  lulesh.per_socket = 4;
  lulesh.edge = 6;
  lulesh.app_scale = 16;
  spec.workloads.push_back(lulesh);

  spec.points.push_back({0, Resource::kCacheStorage, 0});
  spec.points.push_back({0, Resource::kCacheStorage, 2});
  spec.points.push_back({1, Resource::kBandwidth, 3});
  spec.points.push_back({2, Resource::kCacheStorage, 1});
  spec.points.push_back({3, Resource::kBandwidth, 1});
  return spec;
}

TEST(PlanWire, RoundTripsAllWorkloadKinds) {
  const PlanSpec spec = sample_spec();
  const std::string text = serialize_plan_spec(spec);
  const PlanSpec back = parse_plan_spec(text);
  EXPECT_TRUE(back == spec);
  // Canonical form: re-serializing the parsed spec is byte-identical,
  // which is what lets the daemon persist its own re-serialization.
  EXPECT_EQ(serialize_plan_spec(back), text);
}

TEST(PlanWire, EmptyDistNameCanonicalizesToWorkloadName) {
  PlanSpec spec = sample_spec();
  spec.workloads[0].dist_name.clear();
  const PlanSpec back = parse_plan_spec(serialize_plan_spec(spec));
  EXPECT_EQ(back.workloads[0].dist_name, back.workloads[0].name);
  // One serialization canonicalizes; after that the round trip is exact.
  EXPECT_TRUE(parse_plan_spec(serialize_plan_spec(back)) == back);
}

TEST(PlanWire, HexfloatDoublesAreBitExact) {
  PlanSpec spec = sample_spec();
  const std::vector<double> nasty = {
      0.1, 1.0 / 3.0, 6.02214076e23, 1e-300, 4.9406564584124654e-324,
      std::nextafter(1.0, 2.0), -2.5e-7};
  for (std::size_t i = 0; i < nasty.size(); ++i) {
    spec.workloads[1].dist_a = nasty[i];
    spec.workloads[1].dist_b = -nasty[i];
    const PlanSpec back = parse_plan_spec(serialize_plan_spec(spec));
    // operator== compares doubles exactly; any rounding in the wire
    // format would break ScenarioKey agreement between processes.
    EXPECT_TRUE(back == spec) << "double " << nasty[i] << " did not survive";
  }
}

TEST(PlanWire, RandomizedSpecsRoundTrip) {
  std::mt19937 rng(20140519);  // fixed seed: failures must reproduce
  for (int iter = 0; iter < 100; ++iter) {
    PlanSpec spec;
    spec.machine_scale = 1 + rng() % 4096;
    spec.machine_nodes = 1 + rng() % 4;
    spec.mem_backend = (iter % 2) ? "channel" : "ddr4";
    spec.seed = rng();
    spec.max_cycles = (static_cast<std::uint64_t>(rng()) << 32) | rng();
    spec.mix_seed_per_point = rng() % 2 == 0;
    spec.cs.buffer_bytes = 4096 + rng() % 65536;
    spec.cs.batch_size = 1 + rng() % 16;
    spec.bw.buffer_bytes = 4096 + rng() % 65536;
    spec.bw.num_buffers = 1 + rng() % 64;
    spec.bw.line_stride = 1 + rng() % 32;
    spec.bw.index_compute_cycles = rng() % 100;
    spec.bw.buffers_per_step = 1 + rng() % 16;

    std::exponential_distribution<double> expd(0.5);
    const std::size_t n_workloads = 1 + rng() % 5;
    for (std::size_t w = 0; w < n_workloads; ++w) {
      WorkloadWire ww;
      ww.kind = static_cast<WorkloadWire::Kind>(rng() % 3);
      ww.name = "w" + std::to_string(w) + " (var " +
                std::to_string(rng() % 100) + ")";
      if (ww.kind == WorkloadWire::Kind::kSynthetic) {
        ww.dist_name = rng() % 2 ? ww.name
                                 : "dist " + std::to_string(rng() % 1000);
        ww.dist = static_cast<model::DistKind>(rng() % 4);
        ww.n = 16 + rng() % 100000;
        ww.dist_a = expd(rng) * 1000.0;
        ww.dist_b = expd(rng);
        ww.element_bytes = 1 + rng() % 16;
        ww.compute_ops = 1 + rng() % 10;
        ww.warmup_accesses = rng() % 1000;
        ww.measured_accesses = 1 + rng() % 100000;
      } else {
        ww.ranks = 1 + rng() % 16;
        ww.per_socket = 1 + rng() % 8;
        if (ww.kind == WorkloadWire::Kind::kMcb)
          ww.particles = 1 + rng() % 100000;
        else
          ww.edge = 1 + rng() % 48;
        ww.steps = rng() % 5;
        ww.app_scale = 1 + rng() % 64;
      }
      spec.workloads.push_back(std::move(ww));
    }
    const std::size_t n_points = 1 + rng() % 12;
    for (std::size_t p = 0; p < n_points; ++p)
      spec.points.push_back(
          {rng() % spec.workloads.size(),
           rng() % 2 ? Resource::kCacheStorage : Resource::kBandwidth,
           static_cast<std::uint32_t>(rng() % 5)});

    const std::string text = serialize_plan_spec(spec);
    const PlanSpec back = parse_plan_spec(text);
    ASSERT_TRUE(back == spec) << "iteration " << iter;
    ASSERT_EQ(serialize_plan_spec(back), text) << "iteration " << iter;
  }
}

TEST(PlanWire, RejectsMalformedInput) {
  const std::string good = serialize_plan_spec(sample_spec());

  EXPECT_THROW(parse_plan_spec(""), std::invalid_argument);
  EXPECT_THROW(parse_plan_spec("#not-a-plan v9\nend\n"),
               std::invalid_argument);
  // Truncation: chopping anywhere before the trailer must throw — the
  // mandatory `end` turns a cut-off transfer into a parse error.
  for (const std::size_t cut : {good.size() / 4, good.size() / 2,
                                good.size() - 2})
    EXPECT_THROW(parse_plan_spec(good.substr(0, cut)), std::invalid_argument)
        << "cut at " << cut;
  EXPECT_THROW(parse_plan_spec(good + "trailing-junk\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_plan_spec(good + "machine\tscale\t1\tnodes\t1\t"
                                      "backend\tchannel\n"),
               std::invalid_argument);

  // Unknown keywords are rejected: specs are untrusted input.
  EXPECT_THROW(
      parse_plan_spec("#am-plan-spec v1\nmystery\t1\nend\n"),
      std::invalid_argument);

  // A point referencing an undeclared workload.
  EXPECT_THROW(
      parse_plan_spec("#am-plan-spec v1\n"
                      "machine\tscale\t64\tnodes\t1\tbackend\tchannel\n"
                      "run\tseed\t1\tmax_cycles\t1000\tmix_seed\t1\n"
                      "point\t0\tcache-storage\t1\n"
                      "end\n"),
      std::invalid_argument);

  // Numeric garbage must name its line, never silently become zero.
  try {
    parse_plan_spec("#am-plan-spec v1\n"
                    "machine\tscale\tXX\tnodes\t1\tbackend\tchannel\n"
                    "run\tseed\t1\tmax_cycles\t1000\tmix_seed\t1\n"
                    "end\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(PlanWire, SerializeRejectsUnwirableSpecs) {
  PlanSpec spec = sample_spec();
  spec.workloads[0].name = "tab\there";
  EXPECT_THROW(serialize_plan_spec(spec), std::invalid_argument);

  spec = sample_spec();
  spec.points.push_back({99, Resource::kCacheStorage, 1});
  EXPECT_THROW(serialize_plan_spec(spec), std::invalid_argument);

  spec = sample_spec();
  spec.machine_scale = 0;
  EXPECT_THROW(serialize_plan_spec(spec), std::invalid_argument);
}

TEST(PlanWire, EqualSpecsBuildAgreeingRunnersAndKeys) {
  const PlanSpec spec = sample_spec();
  const PlanSpec back = parse_plan_spec(serialize_plan_spec(spec));

  const ExperimentPlan plan_a = build_plan(spec);
  const ExperimentPlan plan_b = build_plan(back);
  ASSERT_EQ(plan_a.size(), plan_b.size());
  ASSERT_GT(plan_a.size(), 0u);

  const SweepRunner runner_a = make_runner(spec);
  const SweepRunner runner_b = make_runner(back);
  for (std::size_t p = 0; p < plan_a.size(); ++p) {
    const ScenarioKey ka = runner_a.key_for(plan_a, p);
    const ScenarioKey kb = runner_b.key_for(plan_b, p);
    EXPECT_EQ(ka.fingerprint(), kb.fingerprint()) << "plan index " << p;
    EXPECT_EQ(runner_a.seed_for(p), runner_b.seed_for(p));
  }
}

TEST(PlanWire, BaselineNormalizationSurvivesTheWire) {
  // Two spec points that normalize to the same baseline must still
  // produce a valid (deduplicated) plan after a round trip.
  PlanSpec spec = sample_spec();
  spec.points.clear();
  spec.points.push_back({0, Resource::kCacheStorage, 0});
  spec.points.push_back({0, Resource::kBandwidth, 0});  // same baseline
  spec.points.push_back({0, Resource::kBandwidth, 1});
  const PlanSpec back = parse_plan_spec(serialize_plan_spec(spec));
  EXPECT_EQ(back.points.size(), 3u);       // the wire keeps the raw list
  EXPECT_EQ(build_plan(back).size(), 2u);  // the plan dedups baselines
}

}  // namespace
}  // namespace am::measure

#include "measure/result_store.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "interfere/host_identity.hpp"
#include "measure/app_workloads.hpp"
#include "measure/experiment_plan.hpp"
#include "model/distributions.hpp"

namespace am::measure {
namespace {

using model::AccessDistribution;
using sim::MachineConfig;

constexpr std::uint32_t kScale = 64;

MachineConfig machine() { return MachineConfig::xeon20mb_scaled(kScale); }

class ResultStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("am_result_store_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

ScenarioKey key(std::string workload = "w", std::uint32_t threads = 2,
                Resource resource = Resource::kCacheStorage) {
  return ScenarioKey::make("m-fingerprint", std::move(workload), resource,
                           threads, "cs:b4096:n4:w1000000", 7, 1'000'000);
}

SimRunResult result(double seconds = 0.125) {
  SimRunResult r;
  r.seconds = seconds;
  r.cycles = 123456;
  r.app.loads = 1000;
  r.app.bytes_from_mem = 64 * 77;
  r.app_l3_miss_rate = 1.0 / 3.0;  // not exactly representable: the
                                   // round-trip must still be bit-exact
  r.app_mem_bandwidth = 2.8e9;
  r.total_mem_bandwidth = 5.6e9;
  r.interference_threads = 2;
  return r;
}

TEST_F(ResultStoreTest, KeyNormalizesBaselines) {
  const auto storage = ScenarioKey::make("m", "w", Resource::kCacheStorage, 0,
                                         "cs:whatever", 1, 100);
  const auto bandwidth = ScenarioKey::make("m", "w", Resource::kBandwidth, 0,
                                           "bw:other", 1, 100);
  EXPECT_EQ(storage, bandwidth);
  EXPECT_EQ(storage.spec, "none");
  EXPECT_EQ(storage.fingerprint(), bandwidth.fingerprint());
  const auto interfered =
      ScenarioKey::make("m", "w", Resource::kBandwidth, 1, "bw:other", 1, 100);
  EXPECT_NE(interfered.fingerprint(), storage.fingerprint());
}

TEST_F(ResultStoreTest, FingerprintCoversEveryField) {
  const auto base = key();
  auto k = key();
  k.machine = "other";
  EXPECT_NE(k.fingerprint(), base.fingerprint());
  k = key();
  k.workload = "other";
  EXPECT_NE(k.fingerprint(), base.fingerprint());
  k = key();
  k.resource = Resource::kBandwidth;
  EXPECT_NE(k.fingerprint(), base.fingerprint());
  k = key();
  k.threads += 1;
  EXPECT_NE(k.fingerprint(), base.fingerprint());
  k = key();
  k.spec = "cs:b8192:n4:w1000000";
  EXPECT_NE(k.fingerprint(), base.fingerprint());
  k = key();
  k.seed += 1;
  EXPECT_NE(k.fingerprint(), base.fingerprint());
  k = key();
  k.max_cycles += 1;
  EXPECT_NE(k.fingerprint(), base.fingerprint());
}

TEST_F(ResultStoreTest, RoundTripIsBitExact) {
  ResultStore store;
  store.put(key("w", 2), result(0.1 + 0.2), "deadbeefdeadbeef");
  store.put(key("w", 0), result(1.0 / 7.0), "deadbeefdeadbeef");
  store.save(path("s.tsv"));

  const auto loaded = ResultStore::load(path("s.tsv"));
  ASSERT_EQ(loaded.size(), 2u);
  const auto* r = loaded.find(key("w", 2));
  ASSERT_NE(r, nullptr);
  const auto orig = result(0.1 + 0.2);
  EXPECT_EQ(r->seconds, orig.seconds);  // bitwise, via hexfloat
  EXPECT_EQ(r->cycles, orig.cycles);
  EXPECT_EQ(r->app.loads, orig.app.loads);
  EXPECT_EQ(r->app.bytes_from_mem, orig.app.bytes_from_mem);
  EXPECT_EQ(r->app_l3_miss_rate, orig.app_l3_miss_rate);
  EXPECT_EQ(r->interference_threads, orig.interference_threads);
  EXPECT_FALSE(r->timed_out);
}

TEST_F(ResultStoreTest, FindDistinguishesKeys) {
  ResultStore store;
  store.put(key("w", 2), result());
  EXPECT_TRUE(store.has(key("w", 2)));
  EXPECT_FALSE(store.has(key("w", 3)));
  EXPECT_FALSE(store.has(key("other", 2)));
  EXPECT_EQ(store.find(key("w", 3)), nullptr);
}

TEST_F(ResultStoreTest, RejectsUnstorableKeyFields) {
  ResultStore store;
  EXPECT_THROW(store.put(key("bad\tname"), result()), std::invalid_argument);
  EXPECT_THROW(store.put(key("bad\nname"), result()), std::invalid_argument);
}

TEST_F(ResultStoreTest, LoadRejectsMissingFileButLoadOrEmptyTolerates) {
  EXPECT_THROW(ResultStore::load(path("absent.tsv")), std::runtime_error);
  EXPECT_TRUE(ResultStore::load_or_empty(path("absent.tsv")).empty());
}

TEST_F(ResultStoreTest, LoadRejectsVersionMismatch) {
  {
    std::ofstream out(path("v9.tsv"));
    out << "#am-result-store v9\n";
  }
  try {
    ResultStore::load(path("v9.tsv"));
    FAIL() << "expected version mismatch to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("version mismatch"),
              std::string::npos);
  }
  {
    std::ofstream out(path("garbage.tsv"));
    out << "hello world\n";
  }
  EXPECT_THROW(ResultStore::load(path("garbage.tsv")), std::runtime_error);
}

TEST_F(ResultStoreTest, LoadRejectsEditedRecords) {
  ResultStore store;
  store.put(key(), result());
  store.save(path("s.tsv"));
  // Flip the thread count without updating the fingerprint: the content
  // address no longer matches the fields.
  std::ifstream in(path("s.tsv"));
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  const auto pos = content.find("\t2\t");
  ASSERT_NE(pos, std::string::npos);
  content.replace(pos, 3, "\t3\t");
  std::ofstream(path("edited.tsv")) << content;
  try {
    ResultStore::load(path("edited.tsv"));
    FAIL() << "expected fingerprint mismatch to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("fingerprint mismatch"),
              std::string::npos);
  }
}

TEST_F(ResultStoreTest, LoadRejectsForeignHostWhenExpected) {
  ResultStore store;
  store.put(key(), result(), "aaaaaaaaaaaaaaaa");
  store.save(path("s.tsv"));

  StoreLoadOptions opts;
  opts.expect_host = "bbbbbbbbbbbbbbbb";
  try {
    ResultStore::load(path("s.tsv"), opts);
    FAIL() << "expected host mismatch to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("host fingerprint mismatch"),
              std::string::npos);
  }
  opts.expect_host = "aaaaaaaaaaaaaaaa";
  EXPECT_EQ(ResultStore::load(path("s.tsv"), opts).size(), 1u);
}

TEST_F(ResultStoreTest, LoadRejectsForeignMachineWhenExpected) {
  ResultStore store;
  store.put(key(), result());
  store.save(path("s.tsv"));
  StoreLoadOptions opts;
  opts.expect_machine = "some-other-machine";
  EXPECT_THROW(ResultStore::load(path("s.tsv"), opts), std::runtime_error);
}

TEST_F(ResultStoreTest, LoadRejectsConflictingDuplicateRecords) {
  // `cat a.tsv b.tsv > c.tsv` instead of `amresult merge`, with a stale
  // run of one scenario in b: the same key appears twice with different
  // numbers. load() must refuse to pick a winner (identical duplicates
  // are fine — they dedupe).
  ResultStore fresh, stale;
  fresh.put(key(), result(0.5), "hosta");
  stale.put(key(), result(0.75), "hosta");
  fresh.save(path("fresh.tsv"));
  stale.save(path("stale.tsv"));
  std::ofstream cat(path("cat.tsv"));
  for (const char* name : {"fresh.tsv", "stale.tsv"}) {
    std::ifstream in(path(name));
    cat << in.rdbuf();
  }
  cat.close();
  try {
    ResultStore::load(path("cat.tsv"));
    FAIL() << "expected conflicting duplicate to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("conflicting results"),
              std::string::npos);
  }

  std::ofstream dup(path("dup.tsv"));
  for (int i = 0; i < 2; ++i) {
    std::ifstream in(path("fresh.tsv"));
    dup << in.rdbuf();
  }
  dup.close();
  EXPECT_EQ(ResultStore::load(path("dup.tsv")).size(), 1u);
}

TEST_F(ResultStoreTest, MergeDeduplicatesAndDetectsConflicts) {
  ResultStore a, b;
  a.put(key("w", 1), result(0.5), "hosta");
  b.put(key("w", 1), result(0.5), "hosta");  // identical payload: dedupe
  b.put(key("w", 2), result(0.25), "hosta");
  a.merge(b);
  EXPECT_EQ(a.size(), 2u);

  ResultStore conflicting;
  conflicting.put(key("w", 2), result(0.75), "hosta");  // different payload
  EXPECT_THROW(a.merge(conflicting), std::runtime_error);
}

TEST_F(ResultStoreTest, HostsListsDistinctProvenance) {
  ResultStore store;
  store.put(key("w", 1), result(), "hosta");
  store.put(key("w", 2), result(), "hostb");
  store.put(key("w", 3), result(), "hosta");
  EXPECT_EQ(store.hosts().size(), 2u);
}

TEST_F(ResultStoreTest, MachineFingerprintTracksConfig) {
  const auto base = machine_fingerprint(machine());
  EXPECT_EQ(base, machine_fingerprint(machine()));
  auto m = machine();
  m.l3.size_bytes *= 2;
  EXPECT_NE(machine_fingerprint(m), base);
  m = machine();
  m.mem_bandwidth_bytes_per_sec += 1.0;
  EXPECT_NE(machine_fingerprint(m), base);
  m = machine();
  m.prefetcher.enabled = false;
  EXPECT_NE(machine_fingerprint(m), base);
}

TEST_F(ResultStoreTest, MachineFingerprintKeysMemoryBackend) {
  const auto base = machine_fingerprint(machine());
  // Selecting the banked backend changes results, so it must change the
  // key; its timing knobs must too.
  auto m = machine();
  m.mem_backend = sim::MemBackendKind::kBankedDram;
  const auto banked = machine_fingerprint(m);
  EXPECT_NE(banked, base);
  m.dram.banks *= 2;
  EXPECT_NE(machine_fingerprint(m), banked);
  m = machine();
  sim::apply_mem_backend(m, "ddr4");
  const auto ddr4 = machine_fingerprint(m);
  sim::apply_mem_backend(m, "hbm");
  EXPECT_NE(machine_fingerprint(m), ddr4);
  // Under the default channel backend the dram knobs are inert (the
  // model never reads them), so they must NOT perturb the key — that is
  // what keeps every pre-backend store record reachable.
  m = machine();
  m.dram.t_cas += 7;
  m.dram.channels = 16;
  EXPECT_EQ(machine_fingerprint(m), base);
}

TEST_F(ResultStoreTest, MachineFingerprintKeysSetHashNotFilters) {
  const auto base = machine_fingerprint(machine());
  // H3 reshuffles every set mapping — different placement, different
  // results — so it must cache under a distinct store key.
  auto m = machine();
  sim::apply_set_hash(m, "h3");
  EXPECT_NE(machine_fingerprint(m), base);
  // The explicit default spelling keys identically to the implicit
  // default, so pre-refactor records stay reachable.
  m = machine();
  sim::apply_set_hash(m, "mask");
  EXPECT_EQ(machine_fingerprint(m), base);
  // The filter fast paths are bit-identical by construction: toggling
  // them must keep hitting the same cached results.
  m = machine();
  m.l1_filter = !m.l1_filter;
  EXPECT_EQ(machine_fingerprint(m), base);
  m = machine();
  m.l2_filter = !m.l2_filter;
  EXPECT_EQ(machine_fingerprint(m), base);
}

// ---------------------------------------------------------------------------
// Cache-aware and sharded SweepRunner execution.

struct CountingFactory {
  /// Counts engine instantiations so tests can assert "zero engine runs on
  /// a cached re-run". shared_ptr: factories are copied into plans.
  std::shared_ptr<std::atomic<int>> runs =
      std::make_shared<std::atomic<int>>(0);

  SimBackend::WorkloadFactory factory(double l3_fraction = 1.2,
                                      std::uint64_t accesses = 6'000) const {
    const auto elements = static_cast<std::uint64_t>(
        l3_fraction * static_cast<double>(machine().l3.size_bytes) / 4);
    auto inner = make_synthetic_workload(apps::SyntheticConfig{
        AccessDistribution::uniform(elements, "Uni"), 4, 1, elements / 4,
        accesses});
    return [runs = runs, inner](sim::Engine& engine) {
      runs->fetch_add(1);
      return inner(engine);
    };
  }
};

SweepRunnerOptions options() {
  SweepRunnerOptions opts;
  opts.cs.buffer_bytes = 4ull * 1024 * 1024 / kScale;
  opts.bw.buffer_bytes = 520ull * 1024 / kScale;
  return opts;
}

ExperimentPlan small_plan(const CountingFactory& counter) {
  ExperimentPlan plan;
  const auto a = plan.add_workload({"a", counter.factory(1.2)});
  const auto b = plan.add_workload({"b", counter.factory(0.5)});
  plan.add_sweep(a, Resource::kCacheStorage, 0, 2);
  plan.add_sweep(a, Resource::kBandwidth, 0, 1);
  plan.add_sweep(b, Resource::kCacheStorage, 0, 1);
  return plan;  // 6 unique points (bandwidth k=0 folds into a's baseline)
}

void expect_identical(const ExperimentPlan& plan, const ResultTable& x,
                      const ResultTable& y) {
  ASSERT_EQ(x.size(), y.size());
  for (const auto& pt : plan.points()) {
    const auto& rx = x.at(pt.workload, pt.resource, pt.threads);
    const auto& ry = y.at(pt.workload, pt.resource, pt.threads);
    EXPECT_EQ(rx.seconds, ry.seconds);  // bitwise
    EXPECT_EQ(rx.cycles, ry.cycles);
    EXPECT_EQ(rx.app.loads, ry.app.loads);
    EXPECT_EQ(rx.app.bytes_from_mem, ry.app.bytes_from_mem);
    EXPECT_EQ(rx.app_l3_miss_rate, ry.app_l3_miss_rate);
  }
}

TEST_F(ResultStoreTest, SecondCachedRunExecutesNothingAndIsBitIdentical) {
  const CountingFactory counter;
  const auto plan = small_plan(counter);
  const SweepRunner runner(machine(), options());

  ResultStore store;
  std::size_t executed = ~0u;
  const auto first = runner.run(plan, nullptr, &store, {}, &executed);
  EXPECT_EQ(executed, plan.size());
  const int runs_after_first = counter.runs->load();
  EXPECT_EQ(runs_after_first, static_cast<int>(plan.size()));

  // Persist + reload: the second run must hit the cache for every point.
  store.save(path("cache.tsv"));
  auto reloaded = ResultStore::load(path("cache.tsv"));
  const auto second = runner.run(plan, nullptr, &reloaded, {}, &executed);
  EXPECT_EQ(executed, 0u);
  EXPECT_EQ(counter.runs->load(), runs_after_first);  // zero engine runs
  expect_identical(plan, first, second);
}

TEST_F(ResultStoreTest, CheckpointPersistsEveryCompletedPoint) {
  // The crash-resilience contract behind orchestrated retries: with a
  // checkpoint configured, every completed engine run reaches disk before
  // the next one starts, so a killed process loses only in-flight work.
  const CountingFactory counter;
  const auto plan = small_plan(counter);
  auto opts = options();
  const auto ckpt = path("checkpoint.tsv");
  std::vector<std::size_t> sizes_on_disk;
  opts.checkpoint = [&](const ResultStore& store) {
    store.save(ckpt);
    sizes_on_disk.push_back(ResultStore::load(ckpt).size());
  };
  const SweepRunner runner(machine(), opts);

  ResultStore store;
  runner.run(plan, nullptr, &store, {}, nullptr);
  ASSERT_EQ(sizes_on_disk.size(), plan.size());  // one save per fresh point
  for (std::size_t i = 0; i < sizes_on_disk.size(); ++i)
    EXPECT_EQ(sizes_on_disk[i], i + 1);  // strictly growing on disk

  // A "crashed" process's checkpoint (here: the full file minus nothing —
  // simulate a partial one by reloading an early checkpoint) seeds the
  // retry: re-running against the final checkpoint executes zero points.
  auto resumed = ResultStore::load(ckpt);
  std::size_t executed = ~0u;
  runner.run(plan, nullptr, &resumed, {}, &executed);
  EXPECT_EQ(executed, 0u);
}

TEST_F(ResultStoreTest, PartiallyCachedRunKeysFreshRecordsByPlanPoint) {
  // Regression: with some points already cached, each fresh result must be
  // recorded under its own plan point's key. A slip that keyed fresh
  // records by todo-list position instead silently overwrote correct
  // cached records with other points' results — exactly the state a
  // supervised retry resumes from (its predecessor's partial checkpoint).
  const CountingFactory counter;
  const auto plan = small_plan(counter);
  const SweepRunner runner(machine(), options());
  const auto direct = runner.run(plan);

  // Seed the store with shard 0's half of the grid only.
  ResultStore store;
  std::size_t executed = 0;
  runner.run(plan, nullptr, &store, {0, 2}, &executed);
  ASSERT_EQ(executed, plan.shard(0, 2).size());

  // "Resume": the full plan over the partial store runs only the rest.
  const auto resumed = runner.run(plan, nullptr, &store, {}, &executed);
  EXPECT_EQ(executed, plan.size() - plan.shard(0, 2).size());
  expect_identical(plan, direct, resumed);

  // Every plan point must now sit under its own key...
  for (std::size_t i = 0; i < plan.size(); ++i)
    EXPECT_NE(store.find(runner.key_for(plan, i)), nullptr)
        << "plan point " << i << " missing from the store";
  // ...so a further run is fully cached and still bit-identical.
  const auto rerun = runner.run(plan, nullptr, &store, {}, &executed);
  EXPECT_EQ(executed, 0u);
  expect_identical(plan, direct, rerun);
}

TEST_F(ResultStoreTest, CheckpointerThrottlesFullFileSaves) {
  // The store is rewritten whole per save, so the checkpointer rate-limits
  // itself: first call persists, calls inside the interval are skipped,
  // interval 0 persists every call.
  ResultStoreFile file(dir_.string(), "drv");
  ResultStore store;
  store.put(key("w", 1), result(), "host");

  const auto throttled = file.checkpointer(3600.0);
  throttled(store);
  ASSERT_TRUE(std::filesystem::exists(file.path()));
  store.put(key("w", 2), result(), "host");
  throttled(store);  // within the interval: must not rewrite
  EXPECT_EQ(ResultStore::load(file.path()).size(), 1u);

  const auto eager = file.checkpointer(0.0);
  eager(store);
  EXPECT_EQ(ResultStore::load(file.path()).size(), 2u);
}

TEST_F(ResultStoreTest, ShardedRunsMergeBitIdenticalToUnsharded) {
  const CountingFactory counter;
  const auto plan = small_plan(counter);
  const SweepRunner runner(machine(), options());
  const auto direct = runner.run(plan);

  // Two shard "processes", each with its own store file.
  for (std::size_t i = 0; i < 2; ++i) {
    ResultStore shard_store;
    std::size_t executed = 0;
    runner.run(plan, nullptr, &shard_store, {i, 2}, &executed);
    EXPECT_EQ(executed, plan.shard(i, 2).size());
    shard_store.save(path("shard" + std::to_string(i) + ".tsv"));
  }

  // Merge (what `amresult merge` does), then assemble the full table from
  // cache alone: zero engine runs, bit-identical to the direct run.
  ResultStore merged = ResultStore::load(path("shard0.tsv"));
  merged.merge(ResultStore::load(path("shard1.tsv")));
  EXPECT_EQ(merged.size(), plan.size());

  const int runs_before = counter.runs->load();
  std::size_t executed = ~0u;
  const auto assembled = runner.run(plan, nullptr, &merged, {}, &executed);
  EXPECT_EQ(executed, 0u);
  EXPECT_EQ(counter.runs->load(), runs_before);
  expect_identical(plan, direct, assembled);
}

TEST_F(ResultStoreTest, RunTimesPersistInSidecarNotInTheCanonicalFile) {
  // Wall-clocks feed the scheduler's cost model, so they must survive a
  // save/load round-trip — but through the `.times` sidecar only: the
  // canonical TSV's bytes must be identical with and without them, or
  // lease-scheduled and serial sweeps would stop byte-comparing equal.
  ResultStore with_times, without_times;
  with_times.put(key("w", 1), result(), "host", /*run_seconds=*/2.5);
  without_times.put(key("w", 1), result(), "host");
  with_times.save(path("with.tsv"));
  without_times.save(path("without.tsv"));

  std::ifstream a(path("with.tsv")), b(path("without.tsv"));
  std::stringstream sa, sb;
  sa << a.rdbuf();
  sb << b.rdbuf();
  EXPECT_EQ(sa.str(), sb.str());

  EXPECT_TRUE(std::filesystem::exists(path("with.tsv.times")));
  const auto reloaded = ResultStore::load(path("with.tsv"));
  EXPECT_EQ(reloaded.run_seconds(key("w", 1)), 2.5);
  EXPECT_EQ(reloaded.run_seconds(key("other", 1)), 0.0);

  // A lost/absent sidecar degrades to "unknown", never an error.
  const auto bare = ResultStore::load(path("without.tsv"));
  EXPECT_EQ(bare.run_seconds(key("w", 1)), 0.0);
}

TEST_F(ResultStoreTest, MergeAdoptsRunTimesWithoutOverridingKnownOnes) {
  ResultStore a, b;
  a.put(key("w", 1), result(), "host", 1.5);
  a.put(key("w", 2), result(), "host");  // unknown here...
  b.put(key("w", 1), result(), "host", 9.0);
  b.put(key("w", 2), result(), "host", 3.0);  // ...known there
  a.merge(b);
  EXPECT_EQ(a.run_seconds(key("w", 1)), 1.5);  // ours wins when known
  EXPECT_EQ(a.run_seconds(key("w", 2)), 3.0);  // theirs fills the gap
}

TEST_F(ResultStoreTest, LeasedBatchesMergeBitIdenticalToSerial) {
  // The dynamic-scheduler acceptance contract, in-process: run the plan
  // serially, then as cost-skewed leased batches bounced across two
  // simulated worker stores, and require the merged store *file* to be
  // byte-identical to the serial one.
  const CountingFactory counter;
  const auto plan = small_plan(counter);
  const SweepRunner runner(machine(), options());

  ResultStore serial;
  runner.run(plan, nullptr, &serial, {}, nullptr);
  serial.save(path("serial.tsv"));

  // Deliberately lumpy cost model → uneven batches, exercised across
  // two worker stores round-robin (like two lease-worker processes).
  std::vector<double> costs(plan.size(), 1.0);
  costs[0] = 50.0;
  costs[plan.size() - 1] = 25.0;
  const auto batches = plan.batches(4, costs);
  ResultStore workers[2];
  std::size_t served = 0;
  for (const auto& lease : batches) {
    if (lease.points.empty()) continue;
    std::size_t executed = 0;
    runner.run_points(plan, nullptr, &workers[served++ % 2], lease.points,
                      &executed);
    EXPECT_EQ(executed, lease.points.size());
  }

  ResultStore merged;
  merged.merge(workers[0]);
  merged.merge(workers[1]);
  merged.save(path("merged.tsv"));

  std::ifstream a(path("serial.tsv")), b(path("merged.tsv"));
  std::stringstream sa, sb;
  sa << a.rdbuf();
  sb << b.rdbuf();
  EXPECT_EQ(sa.str(), sb.str());
}

TEST_F(ResultStoreTest, ForLeaseStoreSeedsFromCanonicalCache) {
  // A lease worker's store must start from the canonical cache, so a
  // re-sweep stays fully cached even when the scheduler hands this
  // worker points a different worker ran last time.
  ResultStore canonical;
  canonical.put(key("w", 1), result(), "host", 4.0);
  canonical.save(path("drv.tsv"));

  auto file = ResultStoreFile::for_lease(dir_.string(), "drv",
                                         path("drv.lease0"));
  ASSERT_NE(file.store(), nullptr);
  EXPECT_EQ(file.path(), path("drv.lease0.tsv"));
  EXPECT_TRUE(file.store()->has(key("w", 1)));
  EXPECT_EQ(file.store()->run_seconds(key("w", 1)), 4.0);

  EXPECT_THROW(ResultStoreFile::for_lease(dir_.string(), "drv", ""),
               std::invalid_argument);
}

TEST_F(ResultStoreTest, ShardedTableContainsOnlyOwnedPoints) {
  const CountingFactory counter;
  const auto plan = small_plan(counter);
  const SweepRunner runner(machine(), options());
  ResultStore store;
  const auto table = runner.run(plan, nullptr, &store, {0, 2});
  EXPECT_EQ(table.size(), plan.shard(0, 2).size());
  const auto& pt1 = plan.points()[1];  // owned by shard 1
  EXPECT_EQ(table.get(pt1.workload, pt1.resource, pt1.threads), nullptr);
}

}  // namespace
}  // namespace am::measure

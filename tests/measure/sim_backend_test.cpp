#include "measure/sim_backend.hpp"

#include <gtest/gtest.h>

#include "measure/app_workloads.hpp"
#include "model/distributions.hpp"

namespace am::measure {
namespace {

using model::AccessDistribution;
using sim::MachineConfig;

constexpr std::uint32_t kScale = 32;

MachineConfig machine(std::uint32_t nodes = 1) {
  return MachineConfig::xeon20mb_scaled(kScale, nodes);
}

apps::SyntheticConfig synth_cfg(const MachineConfig& m, double ratio) {
  const auto elements =
      static_cast<std::uint64_t>(ratio * m.l3.size_bytes / 4);
  return apps::SyntheticConfig{AccessDistribution::uniform(elements, "Uni"),
                               4, 1, elements * 2, 200'000};
}

interfere::CSThrConfig cs_cfg() {
  interfere::CSThrConfig c;
  c.buffer_bytes = 4ull * 1024 * 1024 / kScale;
  return c;
}

interfere::BWThrConfig bw_cfg() {
  interfere::BWThrConfig c;
  c.buffer_bytes = 520ull * 1024 / kScale;
  return c;
}

TEST(SimBackend, BaselineRunProducesCounters) {
  SimBackend backend(machine());
  const auto result = backend.run(
      make_synthetic_workload(synth_cfg(machine(), 2.0)),
      InterferenceSpec::none());
  EXPECT_GT(result.seconds, 0.0);
  EXPECT_GT(result.app.loads, 100'000u);
  EXPECT_GT(result.app_l3_miss_rate, 0.3);  // buffer 2x L3, uniform
  EXPECT_FALSE(result.timed_out);
  EXPECT_EQ(result.interference_threads, 0u);
}

TEST(SimBackend, StorageInterferenceRaisesMissRateAndTime) {
  SimBackend backend(machine());
  const auto factory = make_synthetic_workload(synth_cfg(machine(), 2.0));
  const auto base = backend.run(factory, InterferenceSpec::none());
  const auto interfered =
      backend.run(factory, InterferenceSpec::storage(4, cs_cfg()));
  EXPECT_GT(interfered.app_l3_miss_rate, base.app_l3_miss_rate + 0.05);
  EXPECT_GT(interfered.seconds, base.seconds * 1.05);
  EXPECT_EQ(interfered.interference_threads, 4u);
}

TEST(SimBackend, BandwidthInterferenceSlowsMemoryBoundWork) {
  SimBackend backend(machine());
  const auto factory = make_synthetic_workload(synth_cfg(machine(), 3.0));
  const auto base = backend.run(factory, InterferenceSpec::none());
  const auto interfered =
      backend.run(factory, InterferenceSpec::bandwidth(2, bw_cfg()));
  EXPECT_GT(interfered.seconds, base.seconds * 1.02);
}

TEST(SimBackend, InterferencePlacedOnEveryUsedSocket) {
  SimBackend backend(machine(/*nodes=*/2));
  auto cfg = apps::McbConfig::paper(20'000, kScale);
  cfg.steps = 1;
  const auto result = backend.run(make_mcb_workload(4, 1, cfg),
                                  InterferenceSpec::storage(2, cs_cfg()));
  // 4 ranks, 1 per socket => 4 sockets x 2 threads.
  EXPECT_EQ(result.interference_threads, 8u);
}

TEST(SimBackend, ThrowsWhenInterferenceDoesNotFit) {
  SimBackend backend(machine());
  const auto factory = make_synthetic_workload(synth_cfg(machine(), 2.0));
  EXPECT_THROW(backend.run(factory, InterferenceSpec::storage(8, cs_cfg())),
               std::invalid_argument);
}

TEST(SimBackend, TimeoutReported) {
  SimBackend backend(machine());
  const auto factory = make_synthetic_workload(synth_cfg(machine(), 2.0));
  const auto result =
      backend.run(factory, InterferenceSpec::none(), /*max_cycles=*/1000);
  EXPECT_TRUE(result.timed_out);
}

TEST(SimBackend, DeterministicAcrossCalls) {
  SimBackend backend(machine());
  const auto factory = make_synthetic_workload(synth_cfg(machine(), 2.0));
  const auto a = backend.run(factory, InterferenceSpec::storage(2, cs_cfg()));
  const auto b = backend.run(factory, InterferenceSpec::storage(2, cs_cfg()));
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.app.loads, b.app.loads);
}

}  // namespace
}  // namespace am::measure

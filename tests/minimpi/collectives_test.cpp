#include "minimpi/collectives.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace am::minimpi {
namespace {

using sim::Cycles;
using sim::MachineConfig;

MachineConfig machine(std::uint32_t nodes = 1) {
  auto m = MachineConfig::xeon20mb_scaled(64, nodes);
  m.prefetcher.enabled = false;
  return m;
}

/// Performs `epochs` all-reduces, recording entry/exit clocks.
class ReduceAgent final : public sim::Agent {
 public:
  ReduceAgent(Collectives& coll, std::uint32_t rank, std::uint32_t epochs,
              std::uint64_t bytes)
      : sim::Agent("reduce"), coll_(&coll), rank_(rank), epochs_(epochs),
        bytes_(bytes) {}

  void step(sim::AgentContext& ctx) override {
    if (done_ >= epochs_) return;
    if (entry_clock_ == 0) entry_clock_ = ctx.now() + 1;
    if (coll_->try_allreduce(ctx, rank_, bytes_)) {
      exit_clock_ = ctx.now();
      ++done_;
    }
  }
  bool finished() const override { return done_ >= epochs_; }

  Cycles entry_clock() const { return entry_clock_; }
  Cycles exit_clock() const { return exit_clock_; }

 private:
  Collectives* coll_;
  std::uint32_t rank_;
  std::uint32_t epochs_;
  std::uint64_t bytes_;
  std::uint32_t done_ = 0;
  Cycles entry_clock_ = 0;
  Cycles exit_clock_ = 0;
};

struct Fixture {
  Fixture(std::uint32_t nodes, std::uint32_t ranks, std::uint32_t per_socket,
          std::uint32_t epochs, std::uint64_t bytes)
      : engine(machine(nodes)),
        mapping(engine.config(), ranks, per_socket),
        comm(engine, mapping),
        coll(comm, mapping) {
    for (std::uint32_t r = 0; r < ranks; ++r)
      agents.push_back(static_cast<ReduceAgent*>(&engine.agent(
          engine.add_agent(
              std::make_unique<ReduceAgent>(coll, r, epochs, bytes),
              mapping.placement(r).core))));
  }
  sim::Engine engine;
  Mapping mapping;
  Communicator comm;
  Collectives coll;
  std::vector<ReduceAgent*> agents;
};

TEST(Collectives, AllRanksCompleteAllReduce) {
  Fixture f(1, 4, 4, 1, 4096);
  f.engine.run();
  for (std::uint32_t r = 0; r < 4; ++r) EXPECT_EQ(f.coll.completed(r), 1u);
}

TEST(Collectives, MultipleEpochsPipeline) {
  Fixture f(1, 4, 4, 5, 2048);
  f.engine.run();
  for (std::uint32_t r = 0; r < 4; ++r) EXPECT_EQ(f.coll.completed(r), 5u);
}

TEST(Collectives, AllReduceSynchronizes) {
  // No rank can exit the all-reduce before every rank has entered it:
  // data must travel the whole ring.
  Fixture f(1, 6, 6, 1, 4096);
  f.engine.run();
  Cycles max_entry = 0;
  for (auto* a : f.agents) max_entry = std::max(max_entry, a->entry_clock());
  for (auto* a : f.agents) EXPECT_GE(a->exit_clock(), max_entry);
}

TEST(Collectives, WorksAcrossSocketsAndNodes) {
  Fixture f(2, 4, 1, 2, 4096);
  f.engine.run();
  for (std::uint32_t r = 0; r < 4; ++r) EXPECT_EQ(f.coll.completed(r), 2u);
  EXPECT_GT(f.comm.total_bytes_sent(), 0u);
}

TEST(Collectives, CrossNodeReduceIsSlower) {
  Fixture packed(1, 4, 4, 1, 64 * 1024);
  Fixture spread(2, 4, 1, 1, 64 * 1024);
  const Cycles t_packed = packed.engine.run();
  const Cycles t_spread = spread.engine.run();
  EXPECT_GT(t_spread, t_packed);
}

TEST(Collectives, BarrierCompletes) {
  auto m = machine();
  sim::Engine eng(m);
  Mapping map(eng.config(), 3, 3);
  Communicator comm(eng, map);
  Collectives coll(comm, map);
  struct BarrierAgent final : sim::Agent {
    BarrierAgent(Collectives& c, std::uint32_t r)
        : sim::Agent("b"), coll(&c), rank(r) {}
    void step(sim::AgentContext& ctx) override {
      if (!done) done = coll->try_barrier(ctx, rank);
    }
    bool finished() const override { return done; }
    Collectives* coll;
    std::uint32_t rank;
    bool done = false;
  };
  for (std::uint32_t r = 0; r < 3; ++r)
    eng.add_agent(std::make_unique<BarrierAgent>(coll, r),
                  map.placement(r).core);
  eng.run();
  for (std::uint32_t r = 0; r < 3; ++r) EXPECT_EQ(coll.completed(r), 1u);
}

TEST(Collectives, RejectsSingleRank) {
  auto m = machine();
  sim::Engine eng(m);
  Mapping map(eng.config(), 1, 1);
  Communicator comm(eng, map);
  EXPECT_THROW(Collectives(comm, map), std::invalid_argument);
}

}  // namespace
}  // namespace am::minimpi

#include "minimpi/communicator.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace am::minimpi {
namespace {

using sim::Cycles;
using sim::MachineConfig;

MachineConfig machine(std::uint32_t nodes = 1) {
  auto m = MachineConfig::xeon20mb_scaled(64, nodes);
  m.prefetcher.enabled = false;
  return m;
}

/// Rank agent driven by a tiny script: sends then receives one message.
class PingAgent final : public sim::Agent {
 public:
  PingAgent(Communicator& comm, std::uint32_t rank, std::uint32_t peer,
            std::uint64_t bytes, bool initiator)
      : sim::Agent("ping"),
        comm_(&comm),
        rank_(rank),
        peer_(peer),
        bytes_(bytes),
        sender_(initiator) {}

  void step(sim::AgentContext& ctx) override {
    if (done_) return;
    if (sender_) {
      comm_->send(ctx, rank_, peer_, bytes_);
      done_ = true;
    } else if (comm_->try_recv(ctx, peer_, rank_)) {
      done_ = true;
    } else {
      ctx.compute(20);
    }
  }
  bool finished() const override { return done_; }

 private:
  Communicator* comm_;
  std::uint32_t rank_, peer_;
  std::uint64_t bytes_;
  bool sender_;
  bool done_ = false;
};

struct Fixture {
  explicit Fixture(std::uint32_t nodes, std::uint32_t ranks,
                   std::uint32_t per_socket)
      : engine(machine(nodes)),
        mapping(engine.config(), ranks, per_socket),
        comm(engine, mapping) {}
  sim::Engine engine;
  Mapping mapping;
  Communicator comm;
};

TEST(Communicator, DeliversMessage) {
  Fixture f(1, 2, 2);
  f.engine.add_agent(
      std::make_unique<PingAgent>(f.comm, 0, 1, 4096, true),
      f.mapping.placement(0).core);
  f.engine.add_agent(
      std::make_unique<PingAgent>(f.comm, 1, 0, 4096, false),
      f.mapping.placement(1).core);
  f.engine.run();
  EXPECT_EQ(f.comm.pending(0, 1), 0u);
  EXPECT_EQ(f.comm.total_bytes_sent(), 4096u);
}

TEST(Communicator, SameSocketDeliveryHitsSharedL3) {
  Fixture f(1, 2, 2);  // both ranks on socket 0
  f.engine.add_agent(std::make_unique<PingAgent>(f.comm, 0, 1, 8192, true),
                     f.mapping.placement(0).core);
  f.engine.add_agent(std::make_unique<PingAgent>(f.comm, 1, 0, 8192, false),
                     f.mapping.placement(1).core);
  f.engine.run();
  // Receiver (core 1) found most message lines in the shared L3.
  const auto& rx = f.engine.memory().counters(1);
  EXPECT_GT(rx.l3_hits, rx.mem_accesses);
}

TEST(Communicator, CrossSocketDeliveryGoesToMemory) {
  Fixture f(1, 2, 1);  // rank 1 on socket 1
  f.engine.add_agent(std::make_unique<PingAgent>(f.comm, 0, 1, 8192, true),
                     f.mapping.placement(0).core);
  f.engine.add_agent(std::make_unique<PingAgent>(f.comm, 1, 0, 8192, false),
                     f.mapping.placement(1).core);
  f.engine.run();
  const auto& rx = f.engine.memory().counters(f.mapping.placement(1).core);
  EXPECT_GT(rx.mem_accesses, rx.l3_hits);
}

TEST(Communicator, CrossNodeDelayedByLink) {
  Fixture near(1, 2, 1);  // cross-socket, same node
  near.engine.add_agent(
      std::make_unique<PingAgent>(near.comm, 0, 1, 4096, true),
      near.mapping.placement(0).core);
  near.engine.add_agent(
      std::make_unique<PingAgent>(near.comm, 1, 0, 4096, false),
      near.mapping.placement(1).core);
  const Cycles t_near = near.engine.run();

  Fixture far(2, 2, 1);
  // Place rank 1 on node 1: with per_socket=1 rank 1 sits on socket 1
  // (node 0), so use a 3-rank mapping where rank 2 is on node 1.
  Fixture far3(2, 3, 1);
  far3.engine.add_agent(
      std::make_unique<PingAgent>(far3.comm, 0, 2, 4096, true),
      far3.mapping.placement(0).core);
  far3.engine.add_agent(
      std::make_unique<PingAgent>(far3.comm, 2, 0, 4096, false),
      far3.mapping.placement(2).core);
  const Cycles t_far = far3.engine.run();
  EXPECT_GT(t_far, t_near + machine().link_latency / 2);
}

TEST(Communicator, TryRecvBeforeSendReturnsFalse) {
  Fixture f(1, 2, 2);
  struct Probe final : sim::Agent {
    explicit Probe(Communicator& c) : sim::Agent("probe"), comm(&c) {}
    void step(sim::AgentContext& ctx) override {
      result = comm->try_recv(ctx, 1, 0);
      checked = true;
      ctx.compute(1);
    }
    bool finished() const override { return checked; }
    Communicator* comm;
    bool result = true;
    bool checked = false;
  };
  auto probe = std::make_unique<Probe>(f.comm);
  auto* raw = probe.get();
  f.engine.add_agent(std::move(probe), 0);
  f.engine.run();
  EXPECT_FALSE(raw->result);
}

TEST(Communicator, MultipleMessagesQueueInOrder) {
  Fixture f(1, 2, 2);
  struct Burst final : sim::Agent {
    Burst(Communicator& c, int n) : sim::Agent("burst"), comm(&c), left(n) {}
    void step(sim::AgentContext& ctx) override {
      comm->send(ctx, 0, 1, 1024);
      --left;
    }
    bool finished() const override { return left == 0; }
    Communicator* comm;
    int left;
  };
  f.engine.add_agent(std::make_unique<Burst>(f.comm, 3), 0);
  f.engine.run();
  EXPECT_EQ(f.comm.pending(0, 1), 3u);
  EXPECT_EQ(f.comm.total_bytes_sent(), 3u * 1024);
}

TEST(Communicator, RejectsEmptyMessage) {
  Fixture f(1, 2, 2);
  struct Bad final : sim::Agent {
    explicit Bad(Communicator& c) : sim::Agent("bad"), comm(&c) {}
    void step(sim::AgentContext& ctx) override {
      EXPECT_THROW(comm->send(ctx, 0, 1, 0), std::invalid_argument);
      done = true;
    }
    bool finished() const override { return done; }
    Communicator* comm;
    bool done = false;
  };
  f.engine.add_agent(std::make_unique<Bad>(f.comm), 0);
  f.engine.run();
}

}  // namespace
}  // namespace am::minimpi

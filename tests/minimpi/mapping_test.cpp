#include "minimpi/mapping.hpp"

#include <gtest/gtest.h>

namespace am::minimpi {
namespace {

using sim::MachineConfig;

TEST(Mapping, PaperMcbMappingOnePerSocket) {
  // 24 ranks, 1 per processor => 24 sockets = 12 two-socket nodes.
  const auto m = MachineConfig::xeon20mb(/*nodes=*/12);
  const Mapping map(m, 24, 1);
  EXPECT_EQ(map.nodes_used(), 12u);
  EXPECT_EQ(map.placement(0).core, 0u);
  EXPECT_EQ(map.placement(1).socket, 1u);
  EXPECT_EQ(map.placement(23).socket, 23u);
  EXPECT_EQ(map.free_cores(0).size(), 7u);
}

TEST(Mapping, PaperMcbMappingFourPerSocket) {
  // 24 ranks, 4 per processor => 6 sockets = 3 nodes.
  const auto m = MachineConfig::xeon20mb(/*nodes=*/3);
  const Mapping map(m, 24, 4);
  EXPECT_EQ(map.nodes_used(), 3u);
  EXPECT_EQ(map.used_sockets().size(), 6u);
  EXPECT_EQ(map.placement(3).socket, 0u);
  EXPECT_EQ(map.placement(4).socket, 1u);
  EXPECT_EQ(map.free_cores(0).size(), 4u);
}

TEST(Mapping, NodesUsedMatchesPaperFormula) {
  // Paper: 24 ranks with p per processor uses 24/(2p) nodes.
  for (std::uint32_t p : {1u, 2u, 3u, 4u, 6u}) {
    const auto m = MachineConfig::xeon20mb(/*nodes=*/12);
    const Mapping map(m, 24, p);
    EXPECT_EQ(map.nodes_used(), 24 / (2 * p)) << "p=" << p;
  }
}

TEST(Mapping, SocketPeers) {
  const auto m = MachineConfig::xeon20mb(1);
  const Mapping map(m, 4, 2);
  const auto peers = map.socket_peers(0);
  ASSERT_EQ(peers.size(), 1u);
  EXPECT_EQ(peers[0], 1u);
  EXPECT_TRUE(map.socket_peers(0) != map.socket_peers(2));
}

TEST(Mapping, FreeCoresExcludeRankCores) {
  const auto m = MachineConfig::xeon20mb(1);
  const Mapping map(m, 3, 3);
  const auto free = map.free_cores(0);
  EXPECT_EQ(free.size(), 5u);
  for (const auto c : free) EXPECT_GE(c, 3u);
}

TEST(Mapping, RejectsOversubscription) {
  const auto m = MachineConfig::xeon20mb(1);
  EXPECT_THROW(Mapping(m, 24, 9), std::invalid_argument);   // > cores/socket
  EXPECT_THROW(Mapping(m, 24, 1), std::invalid_argument);   // > sockets
  EXPECT_THROW(Mapping(m, 0, 1), std::invalid_argument);
  EXPECT_THROW(Mapping(m, 4, 0), std::invalid_argument);
}

TEST(Mapping, LuleshSixtyFourRanksOnePerSocket) {
  const auto m = MachineConfig::xeon20mb(/*nodes=*/32);
  const Mapping map(m, 64, 1);
  EXPECT_EQ(map.nodes_used(), 32u);
  EXPECT_EQ(map.placement(63).node, 31u);
}

}  // namespace
}  // namespace am::minimpi

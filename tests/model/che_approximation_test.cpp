#include "model/che_approximation.hpp"

#include <gtest/gtest.h>

#include "model/ehr_model.hpp"

namespace am::model {
namespace {

constexpr std::uint64_t kN = 1 << 18;
constexpr std::uint64_t kElem = 4;
constexpr std::uint64_t kLine = 64;

TEST(CheApproximation, FullCapacityHitsEverything) {
  const auto u = AccessDistribution::uniform(kN, "Uni");
  const CheApproximation che(u, kElem, kLine);
  EXPECT_DOUBLE_EQ(che.expected_hit_rate(kN * kElem * 2), 1.0);
}

TEST(CheApproximation, UniformMatchesCapacityRatio) {
  // For uniform references, Che's approximation also yields hit rate ==
  // capacity ratio (every line equally likely to be resident).
  const auto u = AccessDistribution::uniform(kN, "Uni");
  const CheApproximation che(u, kElem, kLine);
  const std::uint64_t cache = kN * kElem / 4;
  EXPECT_NEAR(che.expected_hit_rate(cache), 0.25, 0.01);
}

TEST(CheApproximation, MonotoneInCapacity) {
  const auto d = AccessDistribution::exponential(kN, 6.0 / kN, "Exp_6");
  const CheApproximation che(d, kElem, kLine);
  double prev = -1.0;
  for (int k = 0; k <= 8; ++k) {
    const double hr = che.expected_hit_rate(kN * kElem / 8 * k);
    EXPECT_GE(hr, prev - 1e-9);
    prev = hr;
  }
}

TEST(CheApproximation, AtLeastAsHighAsLinearModelForPeaked) {
  // For a peaked distribution, residency of the hottest lines saturates at
  // 1, so Che's hit rate exceeds the paper's unclamped linear estimate once
  // that estimate is biased down by the clamp at the top.
  const auto d = AccessDistribution::normal(kN, kN / 2.0, kN / 8.0, "Norm_8");
  const CheApproximation che(d, kElem, kLine);
  const EhrModel linear(d, kElem);
  const std::uint64_t cache = kN * kElem / 4;
  EXPECT_GT(che.expected_hit_rate(cache), 0.0);
  EXPECT_LE(std::abs(che.expected_hit_rate(cache) -
                     linear.expected_hit_rate(cache)),
            0.25);
}

TEST(CheApproximation, CharacteristicTimeGrowsWithCapacity) {
  const auto u = AccessDistribution::uniform(kN, "Uni");
  const CheApproximation che(u, kElem, kLine);
  const double t1 = che.characteristic_time(che.num_lines() / 8.0);
  const double t2 = che.characteristic_time(che.num_lines() / 2.0);
  EXPECT_GT(t2, t1);
}

TEST(CheApproximation, RejectsBadGeometry) {
  const auto u = AccessDistribution::uniform(kN, "Uni");
  EXPECT_THROW(CheApproximation(u, 0, kLine), std::invalid_argument);
  EXPECT_THROW(CheApproximation(u, 3, 64), std::invalid_argument);
}

TEST(CheApproximation, LineProbabilitiesCoverBuffer) {
  const auto u = AccessDistribution::uniform(kN, "Uni");
  const CheApproximation che(u, kElem, kLine);
  EXPECT_EQ(che.num_lines(), kN * kElem / kLine);
}

}  // namespace
}  // namespace am::model

#include "model/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace am::model {
namespace {

constexpr std::uint64_t kN = 100000;

// ---------- parameterized over the full Table II set ----------

class Table2Test : public ::testing::TestWithParam<int> {
 protected:
  AccessDistribution dist() const {
    return AccessDistribution::table2(kN)[static_cast<std::size_t>(GetParam())];
  }
};

TEST_P(Table2Test, PdfIntegratesToOne) {
  const auto d = dist();
  // Trapezoid integration of the continuous density over [0, n).
  const int steps = 20000;
  const double h = static_cast<double>(kN) / steps;
  double integral = 0.0;
  for (int i = 0; i < steps; ++i) {
    const double x0 = i * h, x1 = (i + 1) * h;
    integral += 0.5 * (d.pdf(x0) + d.pdf(std::nextafter(x1, x0))) * h;
  }
  EXPECT_NEAR(integral, 1.0, 2e-3) << d.name();
}

TEST_P(Table2Test, CdfIsMonotoneAndNormalized) {
  const auto d = dist();
  EXPECT_DOUBLE_EQ(d.cdf(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(static_cast<double>(kN)), 1.0);
  double prev = 0.0;
  for (int i = 0; i <= 100; ++i) {
    const double x = static_cast<double>(kN) * i / 100.0;
    const double c = d.cdf(x);
    EXPECT_GE(c, prev - 1e-12) << d.name() << " at " << x;
    prev = c;
  }
}

TEST_P(Table2Test, SamplesStayInRange) {
  const auto d = dist();
  Rng rng(99);
  for (int i = 0; i < 20000; ++i) {
    const auto idx = d.sample(rng);
    ASSERT_LT(idx, kN) << d.name();
  }
}

TEST_P(Table2Test, SampleMeanMatchesPdfMean) {
  const auto d = dist();
  // Analytic mean via numeric integration of x * pdf(x).
  const int steps = 20000;
  const double h = static_cast<double>(kN) / steps;
  double mean = 0.0;
  for (int i = 0; i < steps; ++i) {
    const double x = (i + 0.5) * h;
    mean += x * d.pdf(x) * h;
  }
  Rng rng(7);
  RunningStats rs;
  for (int i = 0; i < 200000; ++i)
    rs.add(static_cast<double>(d.sample(rng)));
  EXPECT_NEAR(rs.mean(), mean, static_cast<double>(kN) * 0.01) << d.name();
}

TEST_P(Table2Test, IntegralPdfSqMatchesNumeric) {
  const auto d = dist();
  const int steps = 200000;
  const double h = static_cast<double>(kN) / steps;
  double numeric = 0.0;
  for (int i = 0; i < steps; ++i) {
    const double x = (i + 0.5) * h;
    const double p = d.pdf(x);
    numeric += p * p * h;
  }
  EXPECT_NEAR(d.integral_pdf_sq(), numeric, numeric * 0.01) << d.name();
}

TEST_P(Table2Test, EmpiricalConcentrationMatchesAnalytic) {
  // integral(pdf^2) equals E[pdf(X)]; estimate it from samples.
  const auto d = dist();
  Rng rng(13);
  RunningStats rs;
  for (int i = 0; i < 200000; ++i)
    rs.add(d.pdf(static_cast<double>(d.sample(rng)) + 0.5));
  EXPECT_NEAR(rs.mean(), d.integral_pdf_sq(), d.integral_pdf_sq() * 0.05)
      << d.name();
}

INSTANTIATE_TEST_SUITE_P(AllTable2, Table2Test, ::testing::Range(0, 10),
                         [](const ::testing::TestParamInfo<int>& param_info) {
                           return AccessDistribution::table2(1000)
                               [static_cast<std::size_t>(param_info.param)]
                                   .name();
                         });

// ---------- targeted checks ----------

TEST(Distributions, Table2HasTenNamedPatterns) {
  const auto all = AccessDistribution::table2(kN);
  ASSERT_EQ(all.size(), 10u);
  EXPECT_EQ(all[0].name(), "Norm_4");
  EXPECT_EQ(all[9].name(), "Uni");
}

TEST(Distributions, StddevMatchesTable2Formulas) {
  const auto all = AccessDistribution::table2(kN);
  const double n = static_cast<double>(kN);
  EXPECT_DOUBLE_EQ(all[0].stddev(), n / 4);  // Norm_4
  EXPECT_DOUBLE_EQ(all[1].stddev(), n / 6);  // Norm_6
  EXPECT_DOUBLE_EQ(all[2].stddev(), n / 8);  // Norm_8
  EXPECT_DOUBLE_EQ(all[3].stddev(), n / 4);  // Exp_4: 1/lambda = n/4
  EXPECT_DOUBLE_EQ(all[4].stddev(), n / 6);
  EXPECT_DOUBLE_EQ(all[5].stddev(), n / 8);
  // Triangular(0, m, n): variance (n^2 + m^2 - nm)/18.
  const double m1 = 0.4 * n;
  EXPECT_NEAR(all[6].stddev(), std::sqrt((n * n + m1 * m1 - n * m1) / 18.0),
              1e-9);
  EXPECT_DOUBLE_EQ(all[9].stddev(), n / std::sqrt(12.0));  // Uniform
}

TEST(Distributions, UniformConcentrationIsOneOverN) {
  const auto u = AccessDistribution::uniform(kN, "Uni");
  EXPECT_NEAR(u.integral_pdf_sq(), 1.0 / static_cast<double>(kN), 1e-12);
}

TEST(Distributions, NarrowerNormalIsMoreConcentrated) {
  const auto all = AccessDistribution::table2(kN);
  EXPECT_GT(all[2].integral_pdf_sq(), all[1].integral_pdf_sq());
  EXPECT_GT(all[1].integral_pdf_sq(), all[0].integral_pdf_sq());
}

TEST(Distributions, InvalidParametersThrow) {
  EXPECT_THROW(AccessDistribution::normal(0, 0, 1, "x"),
               std::invalid_argument);
  EXPECT_THROW(AccessDistribution::normal(10, 5, 0, "x"),
               std::invalid_argument);
  EXPECT_THROW(AccessDistribution::exponential(10, 0, "x"),
               std::invalid_argument);
  EXPECT_THROW(AccessDistribution::triangular(10, 11, "x"),
               std::invalid_argument);
  EXPECT_THROW(AccessDistribution::uniform(0, "x"), std::invalid_argument);
}

TEST(Distributions, TriangularSamplerMatchesCdf) {
  const auto d = AccessDistribution::triangular(kN, 0.4 * kN, "Tri_1");
  Rng rng(5);
  int below = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (static_cast<double>(d.sample(rng)) < 0.4 * kN) ++below;
  // CDF at the mode of Tri(0, 0.4n, n) is 0.4.
  EXPECT_NEAR(below / static_cast<double>(n), 0.4, 0.01);
}

}  // namespace
}  // namespace am::model

#include "model/ehr_model.hpp"

#include <gtest/gtest.h>

namespace am::model {
namespace {

constexpr std::uint64_t kN = 1 << 20;  // elements
constexpr std::uint64_t kElem = 4;     // int elements, as in the paper

TEST(EhrModel, UniformEqualsCapacityRatio) {
  // For the uniform pattern Eq. 4 reduces to cache_bytes / buffer_bytes.
  const auto u = AccessDistribution::uniform(kN, "Uni");
  const EhrModel m(u, kElem);
  const std::uint64_t cache = kN * kElem / 4;  // quarter of the buffer
  EXPECT_NEAR(m.expected_hit_rate(cache), 0.25, 1e-9);
}

TEST(EhrModel, HitRateClampedToOne) {
  const auto u = AccessDistribution::uniform(1000, "Uni");
  const EhrModel m(u, kElem);
  EXPECT_DOUBLE_EQ(m.expected_hit_rate(1000 * kElem * 10), 1.0);
}

TEST(EhrModel, ZeroCapacityZeroHits) {
  const auto u = AccessDistribution::uniform(kN, "Uni");
  const EhrModel m(u, kElem);
  EXPECT_DOUBLE_EQ(m.expected_hit_rate(0), 0.0);
  EXPECT_DOUBLE_EQ(m.expected_miss_rate(0), 1.0);
}

TEST(EhrModel, MonotoneInCapacity) {
  const auto d = AccessDistribution::normal(kN, kN / 2.0, kN / 6.0, "Norm_6");
  const EhrModel m(d, kElem);
  double prev = -1.0;
  for (std::uint64_t cap = 0; cap <= kN * kElem; cap += kN * kElem / 16) {
    const double hr = m.expected_hit_rate(cap);
    EXPECT_GE(hr, prev);
    prev = hr;
  }
}

TEST(EhrModel, PeakedDistributionsHitMore) {
  // Same capacity: the more concentrated pattern has the higher hit rate
  // (paper III-C2: larger stddev => higher miss rates).
  const auto wide = AccessDistribution::normal(kN, kN / 2.0, kN / 4.0, "N4");
  const auto narrow = AccessDistribution::normal(kN, kN / 2.0, kN / 8.0, "N8");
  const std::uint64_t cache = kN * kElem / 8;
  EXPECT_GT(EhrModel(narrow, kElem).expected_hit_rate(cache),
            EhrModel(wide, kElem).expected_hit_rate(cache));
}

// Inversion round-trip property over the whole Table II family and a sweep
// of capacities (the paper's III-C3 machinery).
class InversionRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(InversionRoundTrip, CapacityRecovered) {
  const auto [dist_idx, cap_step] = GetParam();
  const auto d =
      AccessDistribution::table2(kN)[static_cast<std::size_t>(dist_idx)];
  const EhrModel m(d, kElem);
  const std::uint64_t cache =
      static_cast<std::uint64_t>(cap_step) * kN * kElem / 16;
  const double hr = m.expected_hit_rate(cache);
  if (hr >= 1.0) GTEST_SKIP() << "saturated: inversion not unique";
  const double recovered = m.invert_capacity(1.0 - hr);
  EXPECT_NEAR(recovered, static_cast<double>(cache),
              static_cast<double>(cache) * 1e-9 + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(AllDistsAndCapacities, InversionRoundTrip,
                         ::testing::Combine(::testing::Range(0, 10),
                                            ::testing::Values(1, 2, 4, 8)));

TEST(EhrModel, InvertCapacityClampsPathologicalMissRates) {
  const auto u = AccessDistribution::uniform(kN, "Uni");
  const EhrModel m(u, kElem);
  EXPECT_DOUBLE_EQ(m.invert_capacity(1.5), 0.0);       // miss rate > 1
  EXPECT_GE(m.invert_capacity(-0.5), 0.0);             // miss rate < 0
}

TEST(EhrModel, ThrowsOnZeroElementSize) {
  const auto u = AccessDistribution::uniform(kN, "Uni");
  EXPECT_THROW(EhrModel(u, 0), std::invalid_argument);
}

}  // namespace
}  // namespace am::model
